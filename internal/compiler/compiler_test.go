package compiler

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/vm"
)

// run compiles src for the given ISA/level, applies scalar-global
// initializers, runs it, and returns the result.
func run(t *testing.T, src string, target *isa.Desc, level OptLevel) vm.Result {
	t.Helper()
	cp := hlc.MustCheck(src)
	prog, err := Compile(cp, target, level)
	if err != nil {
		t.Fatalf("compile %s %v: %v", target.Name, level, err)
	}
	m := vm.New(prog)
	ints, floats, err := GlobalInits(cp)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range ints {
		if err := m.SetInt(name, v); err != nil {
			t.Fatal(err)
		}
	}
	for name, v := range floats {
		if err := m.SetFloat(name, v); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run(vm.Config{MaxInstrs: 50_000_000})
	if err != nil {
		t.Fatalf("run %s %v: %v", target.Name, level, err)
	}
	return res
}

// allTargets runs src at every ISA × level combination and asserts all
// executions print the same output as the reference (x86v at O0).
func allTargets(t *testing.T, src string, wantOutput []string) map[string]vm.Result {
	t.Helper()
	results := make(map[string]vm.Result)
	var ref vm.Result
	first := true
	for _, target := range []*isa.Desc{isa.X86, isa.AMD64, isa.IA64} {
		for _, level := range Levels {
			key := fmt.Sprintf("%s%v", target.Name, level)
			res := run(t, src, target, level)
			results[key] = res
			if first {
				ref = res
				first = false
				if wantOutput != nil {
					if len(res.Output) != len(wantOutput) {
						t.Fatalf("%s: output %v, want %v", key, res.Output, wantOutput)
					}
					for i := range wantOutput {
						if res.Output[i] != wantOutput[i] {
							t.Fatalf("%s: output[%d] = %q, want %q", key, i, res.Output[i], wantOutput[i])
						}
					}
				}
				continue
			}
			if res.OutputHash != ref.OutputHash || res.Prints != ref.Prints {
				t.Errorf("%s: output diverges from reference\n got: %v\nwant: %v",
					key, res.Output, ref.Output)
			}
		}
	}
	return results
}

func TestCompileArithmetic(t *testing.T) {
	allTargets(t, `
void main() {
  int a = 6;
  int b = 7;
  print(a * b);
  print(a + b * 2);
  print((a + b) * 2);
  print(b / a);
  print(b % a);
  print(a - b);
  print(-a);
  print(~a);
  print(a << 2);
  print(100 >> 2);
  print(a & b);
  print(a | b);
  print(a ^ b);
}`, []string{"42", "20", "26", "1", "1", "-1", "-6", "-7", "24", "25", "6", "7", "1"})
}

func TestCompileComparisonsAndLogic(t *testing.T) {
	allTargets(t, `
void main() {
  int a = 3;
  int b = 5;
  print(a < b);
  print(a > b);
  print(a <= 3);
  print(a >= 4);
  print(a == 3);
  print(a != 3);
  print(a < b && b < 10);
  print(a > b || b == 5);
  print(!(a == 3));
  print(a < b && b > 100);
}`, []string{"1", "0", "1", "0", "1", "0", "1", "1", "0", "0"})
}

func TestCompileShortCircuitSideEffects(t *testing.T) {
	// The right operand must not be evaluated when short-circuited.
	allTargets(t, `
int calls;
int bump() {
  calls = calls + 1;
  return 1;
}
void main() {
  int x = 0;
  if (x == 1 && bump() == 1) { print(999); }
  print(calls);
  if (x == 0 || bump() == 1) { print(7); }
  print(calls);
}`, []string{"0", "7", "0"})
}

func TestCompileFloat(t *testing.T) {
	allTargets(t, `
void main() {
  float a = 1.5;
  float b = 2.5;
  print(a + b);
  print(a * b);
  print(b / a);
  print(a - b);
  print(-a);
  print(a < b);
  print(sqrt(16.0));
  print(fabs(-3.25));
  print(itof(3) + 0.5);
  print(ftoi(2.75));
  int i = 10;
  float mixed = a + i;
  print(mixed);
}`, []string{"4", "3.75", "1.66666666667", "-1", "-1.5", "1", "4", "3.25", "3.5", "2", "11.5"})
}

func TestCompileLoops(t *testing.T) {
	allTargets(t, `
void main() {
  int sum = 0;
  for (int i = 0; i < 10; i++) { sum += i; }
  print(sum);
  int j = 0;
  while (j < 5) { j++; }
  print(j);
  int k = 0;
  for (int i = 0; i < 100; i++) {
    if (i == 5) { continue; }
    if (i == 8) { break; }
    k += i;
  }
  print(k);
  int n = 0;
  for (;;) { n++; if (n == 3) { break; } }
  print(n);
}`, []string{"45", "5", "23", "3"})
}

func TestCompileNestedLoops(t *testing.T) {
	allTargets(t, `
void main() {
  int total = 0;
  for (int i = 0; i < 8; i++) {
    for (int j = 0; j < 8; j++) {
      if (j > i) { break; }
      total += 1;
    }
  }
  print(total);
}`, []string{"36"})
}

func TestCompileArrays(t *testing.T) {
	allTargets(t, `
int a[16];
float f[4];
void main() {
  for (int i = 0; i < 16; i++) { a[i] = i * i; }
  int sum = 0;
  for (int i = 0; i < 16; i++) { sum += a[i]; }
  print(sum);
  a[3] += 10;
  print(a[3]);
  f[0] = 1.25;
  f[1] = f[0] * 2.0;
  print(f[1]);
  print(a[a[2]]);
}`, []string{"1240", "19", "2.5", "16"})
}

func TestCompileCallsAndRecursion(t *testing.T) {
	allTargets(t, `
int fact(int n) {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
int add3(int a, int b, int c) { return a + b + c; }
void tell(int x) { print(x); }
void main() {
  print(fact(10));
  print(add3(1, 2, 3));
  print(add3(fact(3), fact(4), 5));
  tell(77);
}`, []string{"3628800", "6", "35", "77"})
}

func TestCompileGlobalScalars(t *testing.T) {
	allTargets(t, `
int counter = 5;
float ratio = 0.5;
int acc;
void step() { counter = counter + 1; acc += counter; }
void main() {
  step();
  step();
  print(counter);
  print(acc);
  print(ratio * 4.0);
}`, []string{"7", "13", "2"})
}

func TestCompileFibonacciExample(t *testing.T) {
	// The paper's running example (Fig. 3).
	allTargets(t, `
int fib(int n) {
  int a = 0;
  int b = 1;
  int sum = 0;
  for (int i = 0; i < n; i++) {
    sum = a + b;
    if (sum < 0) { print(0); break; }
    a = b;
    b = sum;
  }
  return sum;
}
void main() { print(fib(20)); }`, []string{"10946"})
}

func TestCompileMasked32BitOps(t *testing.T) {
	// CRC-style unsigned 32-bit arithmetic emulated with masks.
	allTargets(t, `
void main() {
  int crc = 0xFFFFFFFF;
  int x = 0xEDB88320;
  crc = (crc >> 1) ^ x;
  crc = crc & 0xFFFFFFFF;
  print(crc);
  int v = 0x80000000;
  print(v >> 4);
}`, []string{"2454158559", "134217728"})
}

func TestOptimizationReducesDynCount(t *testing.T) {
	src := `
int data[256];
void main() {
  for (int i = 0; i < 256; i++) { data[i] = i; }
  int sum = 0;
  for (int r = 0; r < 50; r++) {
    for (int i = 0; i < 256; i++) {
      sum += data[i] * 2 + 1;
    }
  }
  print(sum);
}`
	counts := make(map[OptLevel]uint64)
	for _, level := range Levels {
		res := run(t, src, isa.AMD64, level)
		counts[level] = res.DynInstrs
	}
	if counts[O1] >= counts[O0] {
		t.Errorf("O1 (%d) should execute fewer instructions than O0 (%d)", counts[O1], counts[O0])
	}
	if counts[O2] > counts[O1] {
		t.Errorf("O2 (%d) should not exceed O1 (%d)", counts[O2], counts[O1])
	}
	if float64(counts[O1]) > 0.8*float64(counts[O0]) {
		t.Errorf("O1 should cut dynamic instructions substantially: O0=%d O1=%d", counts[O0], counts[O1])
	}
}

func TestRegisterPressureSpills(t *testing.T) {
	// Many simultaneously-live variables force spills on x86v (6 regs)
	// but not on ia64v (48): x86v must execute more loads/stores at O2.
	src := `
void main() {
  int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
  int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
  int sum = 0;
  for (int r = 0; r < 100; r++) {
    sum += a + b + c + d + e + f + g + h + i + j;
    a += 1; b += 2; c += 3; d += 4; e += 5;
    f += 6; g += 7; h += 8; i += 9; j += 10;
  }
  print(sum);
}`
	resX86 := run(t, src, isa.X86, O2)
	resIA := run(t, src, isa.IA64, O2)
	if resX86.OutputHash != resIA.OutputHash {
		t.Fatalf("spilled and unspilled runs disagree: %v vs %v", resX86.Output, resIA.Output)
	}
	if resX86.DynInstrs <= resIA.DynInstrs {
		t.Errorf("x86v (%d instrs) should spill and execute more than ia64v (%d)",
			resX86.DynInstrs, resIA.DynInstrs)
	}
}

func TestEPICBundles(t *testing.T) {
	src := `
int out[64];
void main() {
  int a = 1; int b = 2; int c = 3;
  for (int i = 0; i < 64; i++) {
    out[i] = a * 3 + b * 5 + c * 7 + i;
  }
  print(out[63]);
}`
	cp := hlc.MustCheck(src)
	progO2, err := Compile(cp, isa.IA64, O2)
	if err != nil {
		t.Fatal(err)
	}
	progO0, err := Compile(cp, isa.IA64, O0)
	if err != nil {
		t.Fatal(err)
	}
	// O2 EPIC code must carry bundle annotations with some ILP (at least
	// one bundle holding more than one instruction).
	foundWide := false
	for _, f := range progO2.Funcs {
		for _, b := range f.Blocks {
			if b.Bundle == nil {
				if len(b.Instrs) > 0 {
					t.Fatalf("O2 EPIC block missing bundles")
				}
				continue
			}
			counts := map[int]int{}
			for _, bu := range b.Bundle {
				counts[bu]++
				if counts[bu] > 1 {
					foundWide = true
				}
				if counts[bu] > 3 {
					t.Fatalf("bundle wider than 3")
				}
			}
		}
	}
	if !foundWide {
		t.Error("O2 EPIC schedule has no multi-instruction bundles")
	}
	for _, f := range progO0.Funcs {
		for _, b := range f.Blocks {
			if b.Bundle != nil {
				t.Fatal("O0 code should not be scheduled")
			}
		}
	}
}

func TestInliningAtO3(t *testing.T) {
	src := `
int sq(int x) { return x * x; }
void main() {
  int sum = 0;
  for (int i = 0; i < 100; i++) { sum += sq(i); }
  print(sum);
}`
	cp := hlc.MustCheck(src)
	progO3, err := Compile(cp, isa.AMD64, O3)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	for _, b := range progO3.Funcs[progO3.Entry].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == isa.CALL {
				calls++
			}
		}
	}
	if calls != 0 {
		t.Errorf("O3 should inline sq; %d calls remain in main", calls)
	}
	resO3 := run(t, src, isa.AMD64, O3)
	resO0 := run(t, src, isa.AMD64, O0)
	if resO3.OutputHash != resO0.OutputHash {
		t.Fatalf("inlined output diverges: %v vs %v", resO3.Output, resO0.Output)
	}
}

func TestInstructionMixShiftsWithOptimization(t *testing.T) {
	// The Fig. 6 effect: the load fraction decreases from O0 to O2.
	src := `
int data[128];
void main() {
  for (int i = 0; i < 128; i++) { data[i] = i; }
  int sum = 0;
  for (int r = 0; r < 20; r++) {
    for (int i = 0; i < 128; i++) { sum += data[i]; }
  }
  print(sum);
}`
	loadFrac := func(level OptLevel) float64 {
		cp := hlc.MustCheck(src)
		prog, err := Compile(cp, isa.X86, level)
		if err != nil {
			t.Fatal(err)
		}
		m := vm.New(prog)
		var loads, total uint64
		_, err = m.Run(vm.Config{Hook: func(ev *vm.Event) {
			total++
			if ev.Instr.Class() == isa.ClassLoad {
				loads++
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		return float64(loads) / float64(total)
	}
	f0 := loadFrac(O0)
	f2 := loadFrac(O2)
	if f2 >= f0 {
		t.Errorf("load fraction should drop with optimization: O0=%.3f O2=%.3f", f0, f2)
	}
}

func TestCompileErrors(t *testing.T) {
	cp := hlc.MustCheck("void main() { print(1); }")
	if _, err := Compile(cp, nil, O0); err == nil {
		t.Error("expected error for nil ISA")
	}
	if _, err := Compile(cp, &isa.Desc{Name: "tiny", IntRegs: 2}, O0); err == nil {
		t.Error("expected error for too-few registers")
	}
}

func TestGlobalInitsRejectNonLiteral(t *testing.T) {
	prog := hlc.MustParse("int g = 1 + 2; void main() { print(g); }")
	cp, err := hlc.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := GlobalInits(cp); err == nil ||
		!strings.Contains(err.Error(), "literal") {
		t.Errorf("expected literal-initializer error, got %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
int data[64];
void main() {
  for (int i = 0; i < 64; i++) { data[i] = i * 17 % 23; }
  int sum = 0;
  for (int i = 0; i < 64; i++) { sum += data[i]; }
  print(sum);
}`
	for _, target := range []*isa.Desc{isa.X86, isa.AMD64, isa.IA64} {
		a := run(t, src, target, O2)
		b := run(t, src, target, O2)
		if a.OutputHash != b.OutputHash || a.DynInstrs != b.DynInstrs {
			t.Errorf("%s: nondeterministic execution", target.Name)
		}
	}
}
