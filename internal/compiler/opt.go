package compiler

import (
	"math"
	"math/bits"

	"repro/internal/ir"
	"repro/internal/isa"
)

// This file implements the optimization passes. They operate on
// virtual-register code (an isa.Func before register allocation) and are
// deliberately the textbook passes GCC applies at the corresponding levels,
// because the paper's compiler-space results (Figs. 5, 6, 11) hinge on the
// synthetic benchmarks reacting to exactly these transformations.

// mapUses applies f to every register operand the instruction reads.
func mapUses(in *isa.Instr, f func(isa.RegID) isa.RegID) {
	m := func(r isa.RegID) isa.RegID {
		if r == isa.NoReg {
			return r
		}
		return f(r)
	}
	switch in.Op {
	case isa.NOP, isa.JMP, isa.MOVI, isa.MOVF, isa.LDL, isa.CALL:
		// no register uses
	case isa.MOV, isa.NEG, isa.NOTB, isa.FNEG, isa.ITOF, isa.FTOI,
		isa.FSQRT, isa.FSIN, isa.FCOS, isa.FABS,
		isa.LD, isa.STL, isa.BR, isa.RET, isa.PRINTI, isa.PRINTF:
		in.A = m(in.A)
	case isa.ST:
		in.A = m(in.A)
		in.B = m(in.B)
	default: // binary ALU/FP
		in.A = m(in.A)
		in.B = m(in.B)
	}
}

// tidy removes unreachable blocks, threads trivial jump chains, and drops
// NOPs, keeping block indices dense.
func tidy(f *isa.Func) {
	// Drop NOPs first.
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op != isa.NOP {
				out = append(out, in)
			}
		}
		b.Instrs = out
	}

	// Thread jumps: a block consisting solely of JMP forwards its edges.
	final := make([]int, len(f.Blocks))
	for i := range final {
		t, hops := i, 0
		for hops < len(f.Blocks) {
			b := f.Blocks[t]
			if len(b.Instrs) == 1 && b.Instrs[0].Op == isa.JMP && b.Succs[0] != t {
				t = b.Succs[0]
				hops++
				continue
			}
			break
		}
		final[i] = t
	}
	for _, b := range f.Blocks {
		for i, s := range b.Succs {
			b.Succs[i] = final[s]
		}
	}

	// Remove unreachable blocks and remap indices.
	entry := final[0]
	reach := make([]bool, len(f.Blocks))
	stack := []int{entry}
	reach[entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[b].Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	remap := make([]int, len(f.Blocks))
	var kept []*isa.Block
	// The entry block must come first.
	order := make([]int, 0, len(f.Blocks))
	order = append(order, entry)
	for i := range f.Blocks {
		if i != entry && reach[i] {
			order = append(order, i)
		}
	}
	for newIdx, oldIdx := range order {
		remap[oldIdx] = newIdx
		kept = append(kept, f.Blocks[oldIdx])
	}
	for _, b := range kept {
		for i, s := range b.Succs {
			b.Succs[i] = remap[s]
		}
	}
	f.Blocks = kept
}

// newVReg mints a fresh virtual register on the function.
func newVReg(f *isa.Func) isa.RegID {
	r := isa.RegID(f.NumRegs)
	f.NumRegs++
	return r
}

// mem2reg promotes scalar stack slots to virtual registers (the essential
// O1 transformation: it converts gcc -O0's load/store-everything code into
// register code). Parameter slots are reloaded once at function entry; the
// outgoing-argument area is left untouched because CALL reads it.
func mem2reg(f *isa.Func) {
	slotReg := make(map[int64]isa.RegID)
	regFor := func(slot int64) isa.RegID {
		r, ok := slotReg[slot]
		if !ok {
			r = newVReg(f)
			slotReg[slot] = r
		}
		return r
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case isa.LDL:
				if f.PromotableSlot(int(in.Imm)) {
					*in = isa.Instr{Op: isa.MOV, Dst: in.Dst, A: regFor(in.Imm)}
				}
			case isa.STL:
				if f.PromotableSlot(int(in.Imm)) {
					*in = isa.Instr{Op: isa.MOV, Dst: regFor(in.Imm), A: in.A}
				}
			}
		}
	}
	// Parameters arrive in frame slots (the VM's calling convention copies
	// them there); load each promoted parameter once at entry.
	var loads []isa.Instr
	for p := 0; p < f.NumParams; p++ {
		if r, ok := slotReg[int64(p)]; ok {
			loads = append(loads, isa.Instr{Op: isa.LDL, Dst: r, Imm: int64(p)})
		}
	}
	if len(loads) > 0 {
		entry := f.Blocks[0]
		entry.Instrs = append(loads, entry.Instrs...)
	}
}

// cval is a lattice value for local constant tracking.
type cval struct {
	known   bool
	isFloat bool
	i       int64
	f       float64
}

// constFold evaluates operations whose operands are block-locally known
// constants, rewriting them to MOVI/MOVF.
func constFold(f *isa.Func) {
	known := make(map[isa.RegID]cval)
	for _, b := range f.Blocks {
		clear(known)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			_, def := ir.UseDef(in)
			get := func(r isa.RegID) (cval, bool) {
				v, ok := known[r]
				return v, ok && v.known
			}
			folded := false
			switch {
			case in.Op == isa.MOVI:
				known[in.Dst] = cval{known: true, i: in.Imm}
				continue
			case in.Op == isa.MOVF:
				known[in.Dst] = cval{known: true, isFloat: true, f: in.F}
				continue
			case in.Op == isa.MOV:
				if v, ok := get(in.A); ok {
					if v.isFloat {
						*in = isa.Instr{Op: isa.MOVF, Dst: in.Dst, F: v.f}
					} else {
						*in = isa.Instr{Op: isa.MOVI, Dst: in.Dst, Imm: v.i}
					}
					known[in.Dst] = v
					folded = true
				}
			case isa.IsIntBin(in.Op):
				va, oka := get(in.A)
				vb, okb := get(in.B)
				if oka && okb && !va.isFloat && !vb.isFloat {
					if r, ok := isa.EvalIntBin(in.Op, va.i, vb.i); ok {
						*in = isa.Instr{Op: isa.MOVI, Dst: in.Dst, Imm: r}
						known[in.Dst] = cval{known: true, i: r}
						folded = true
					}
				}
			case in.Op == isa.NEG || in.Op == isa.NOTB:
				if v, ok := get(in.A); ok && !v.isFloat {
					r := isa.EvalIntUn(in.Op, v.i)
					*in = isa.Instr{Op: isa.MOVI, Dst: in.Dst, Imm: r}
					known[in.Dst] = cval{known: true, i: r}
					folded = true
				}
			case isa.IsFloatBin(in.Op):
				va, oka := get(in.A)
				vb, okb := get(in.B)
				if oka && okb && va.isFloat && vb.isFloat {
					r := isa.EvalFloatBin(in.Op, va.f, vb.f)
					*in = isa.Instr{Op: isa.MOVF, Dst: in.Dst, F: r}
					known[in.Dst] = cval{known: true, isFloat: true, f: r}
					folded = true
				}
			case isa.IsFloatCmp(in.Op):
				va, oka := get(in.A)
				vb, okb := get(in.B)
				if oka && okb && va.isFloat && vb.isFloat {
					r := isa.EvalFloatCmp(in.Op, va.f, vb.f)
					*in = isa.Instr{Op: isa.MOVI, Dst: in.Dst, Imm: r}
					known[in.Dst] = cval{known: true, i: r}
					folded = true
				}
			case isa.IsFloatUn(in.Op):
				if v, ok := get(in.A); ok && v.isFloat {
					r := isa.EvalFloatUn(in.Op, v.f)
					*in = isa.Instr{Op: isa.MOVF, Dst: in.Dst, F: r}
					known[in.Dst] = cval{known: true, isFloat: true, f: r}
					folded = true
				}
			case in.Op == isa.ITOF:
				if v, ok := get(in.A); ok && !v.isFloat {
					r := float64(v.i)
					*in = isa.Instr{Op: isa.MOVF, Dst: in.Dst, F: r}
					known[in.Dst] = cval{known: true, isFloat: true, f: r}
					folded = true
				}
			case in.Op == isa.FTOI:
				if v, ok := get(in.A); ok && v.isFloat {
					r := isa.F2I(v.f)
					*in = isa.Instr{Op: isa.MOVI, Dst: in.Dst, Imm: r}
					known[in.Dst] = cval{known: true, i: r}
					folded = true
				}
			}
			if !folded && def != isa.NoReg {
				delete(known, def)
			}
		}
	}
}

// copyProp forwards MOV sources to uses within each block and turns
// self-moves into NOPs.
func copyProp(f *isa.Func) {
	copies := make(map[isa.RegID]isa.RegID)
	for _, b := range f.Blocks {
		clear(copies)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			mapUses(in, func(r isa.RegID) isa.RegID {
				for {
					s, ok := copies[r]
					if !ok {
						return r
					}
					r = s
				}
			})
			_, def := ir.UseDef(in)
			if def != isa.NoReg {
				delete(copies, def)
				for k, v := range copies {
					if v == def {
						delete(copies, k)
					}
				}
			}
			if in.Op == isa.MOV {
				if in.Dst == in.A {
					in.Op = isa.NOP
				} else {
					copies[in.Dst] = in.A
				}
			}
		}
	}
}

// exprKey identifies an available expression for local CSE. Loads carry the
// memory epoch at which they were taken so that intervening stores
// invalidate them.
type exprKey struct {
	op       isa.Opcode
	a, b     isa.RegID
	imm      int64
	fbits    uint64
	sym      int32
	memEpoch int
}

// localCSE eliminates repeated computation of identical pure expressions
// within each block (including redundant loads, which is much of what gcc's
// GCSE does to -O2 code shapes).
func localCSE(f *isa.Func) {
	avail := make(map[exprKey]isa.RegID)
	for _, b := range f.Blocks {
		clear(avail)
		epochG, epochL := 0, 0
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case isa.ST, isa.CALL, isa.PRINTI, isa.PRINTF:
				epochG++
				epochL++ // conservative: treat calls/IO as full barriers
				if in.Op != isa.CALL {
					continue
				}
			case isa.STL:
				epochL++
				continue
			}
			_, def := ir.UseDef(in)
			if def == isa.NoReg || isa.HasSideEffects(in.Op) && in.Op != isa.CALL {
				continue
			}
			if in.Op == isa.CALL || in.Op == isa.NOP {
				// calls are never CSE'd, but their def invalidates
				invalidate(avail, in.Dst)
				continue
			}
			key := exprKey{op: in.Op, a: in.A, b: in.B, imm: in.Imm,
				fbits: math.Float64bits(in.F), sym: in.Sym}
			switch in.Op {
			case isa.LD:
				key.memEpoch = epochG
			case isa.LDL:
				key.memEpoch = epochL
			}
			if prev, ok := avail[key]; ok && prev != def {
				*in = isa.Instr{Op: isa.MOV, Dst: def, A: prev}
				invalidate(avail, def)
				avail[exprKey{op: isa.MOV, a: prev}] = def
				continue
			}
			invalidate(avail, def)
			avail[key] = def
		}
	}
}

// invalidate drops every available expression that mentions reg r.
func invalidate(avail map[exprKey]isa.RegID, r isa.RegID) {
	if r == isa.NoReg {
		return
	}
	for k, v := range avail {
		if v == r || k.a == r || k.b == r {
			delete(avail, k)
		}
	}
}

// strengthReduce rewrites expensive operations whose operand is a
// block-locally known constant: multiplies by powers of two become shifts,
// and algebraic identities collapse to moves.
func strengthReduce(f *isa.Func) {
	for _, b := range f.Blocks {
		knownI := make(map[isa.RegID]int64)
		var out []isa.Instr
		for _, in := range b.Instrs {
			switch in.Op {
			case isa.MOVI:
				out = append(out, in)
				knownI[in.Dst] = in.Imm
				continue
			case isa.MUL:
				ca, oka := knownI[in.A]
				cb, okb := knownI[in.B]
				other, c, okc := in.B, ca, oka
				if okb {
					other, c, okc = in.A, cb, true
				}
				if okc {
					switch {
					case c == 0:
						out = append(out, isa.Instr{Op: isa.MOVI, Dst: in.Dst, Imm: 0})
						knownI[in.Dst] = 0
						continue
					case c == 1:
						out = append(out, isa.Instr{Op: isa.MOV, Dst: in.Dst, A: other})
						delete(knownI, in.Dst)
						continue
					case c > 1 && c&(c-1) == 0:
						sh := newVReg(f)
						shift := int64(bits.TrailingZeros64(uint64(c)))
						out = append(out,
							isa.Instr{Op: isa.MOVI, Dst: sh, Imm: shift},
							isa.Instr{Op: isa.SHL, Dst: in.Dst, A: other, B: sh})
						knownI[sh] = shift
						delete(knownI, in.Dst)
						continue
					}
				}
			case isa.ADD:
				if c, ok := knownI[in.B]; ok && c == 0 {
					out = append(out, isa.Instr{Op: isa.MOV, Dst: in.Dst, A: in.A})
					delete(knownI, in.Dst)
					continue
				}
				if c, ok := knownI[in.A]; ok && c == 0 {
					out = append(out, isa.Instr{Op: isa.MOV, Dst: in.Dst, A: in.B})
					delete(knownI, in.Dst)
					continue
				}
			case isa.SUB:
				if c, ok := knownI[in.B]; ok && c == 0 {
					out = append(out, isa.Instr{Op: isa.MOV, Dst: in.Dst, A: in.A})
					delete(knownI, in.Dst)
					continue
				}
				if in.A == in.B {
					out = append(out, isa.Instr{Op: isa.MOVI, Dst: in.Dst, Imm: 0})
					knownI[in.Dst] = 0
					continue
				}
			case isa.XOR:
				if in.A == in.B {
					out = append(out, isa.Instr{Op: isa.MOVI, Dst: in.Dst, Imm: 0})
					knownI[in.Dst] = 0
					continue
				}
			}
			_, def := ir.UseDef(&in)
			if def != isa.NoReg {
				delete(knownI, def)
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
}

// deadCodeElim removes pure instructions whose results are never used,
// using global liveness. Returns true when anything was removed.
func deadCodeElim(f *isa.Func) bool {
	changed := false
	for {
		_, liveOut := liveness(f)
		roundChanged := false
		for bi, b := range f.Blocks {
			live := liveOut[bi].clone()
			// Walk backward, marking removals.
			keep := make([]bool, len(b.Instrs))
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := &b.Instrs[i]
				uses, def := ir.UseDef(in)
				if in.Op == isa.NOP {
					roundChanged = true
					continue
				}
				if def != isa.NoReg && !live.has(def) && !isa.HasSideEffects(in.Op) {
					roundChanged = true
					continue // drop
				}
				keep[i] = true
				if def != isa.NoReg {
					live.clear(def)
				}
				for _, u := range uses {
					live.set(u)
				}
			}
			if roundChanged {
				out := b.Instrs[:0]
				for i, in := range b.Instrs {
					if keep[i] {
						out = append(out, in)
					}
				}
				b.Instrs = out
			}
		}
		if !roundChanged {
			return changed
		}
		changed = true
	}
}

// licm hoists loop-invariant pure instructions into freshly created
// preheaders. Memory loads are hoisted only from blocks that execute on
// every iteration (they dominate all latches) and only when no store or
// call in the loop could disturb them; trapping operations (DIV/MOD) and
// calls are never hoisted.
func licm(f *isa.Func) {
	processed := make(map[int]bool) // by header block's first-instr identity: use header index after stabilization
	for {
		succs := ir.Succs(f)
		forest := ir.FindLoops(succs, 0)
		// Pick the deepest unprocessed loop.
		pick := -1
		for i := range forest.Loops {
			if processed[forest.Loops[i].Header] {
				continue
			}
			if pick == -1 || forest.Loops[i].Depth > forest.Loops[pick].Depth {
				pick = i
			}
		}
		if pick == -1 {
			return
		}
		loop := forest.Loops[pick]
		processed[loop.Header] = true
		hoistLoop(f, succs, &loop)
	}
}

func hoistLoop(f *isa.Func, succs [][]int, loop *ir.Loop) {
	inLoop := make(map[int]bool)
	for _, b := range loop.Blocks {
		inLoop[b] = true
	}
	// Global def counts and in-loop def counts per register; in-loop
	// stores per global symbol and frame slot; calls in loop.
	defsGlobal := make(map[isa.RegID]int)
	defsInLoop := make(map[isa.RegID]int)
	storedSyms := make(map[int32]bool)
	storedSlots := make(map[int64]bool)
	callInLoop := false
	for bi, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			_, def := ir.UseDef(in)
			if def != isa.NoReg {
				defsGlobal[def]++
				if inLoop[bi] {
					defsInLoop[def]++
				}
			}
			if inLoop[bi] {
				switch in.Op {
				case isa.ST:
					storedSyms[in.Sym] = true
				case isa.STL:
					storedSlots[in.Imm] = true
				case isa.CALL:
					callInLoop = true
				}
			}
		}
	}

	idom := ir.Dominators(succs, 0)
	preds := ir.Preds(succs)
	var latches []int
	for _, p := range preds[loop.Header] {
		if inLoop[p] {
			latches = append(latches, p)
		}
	}
	dominatesAllLatches := func(b int) bool {
		for _, l := range latches {
			if !ir.Dominates(idom, b, l) {
				return false
			}
		}
		return true
	}

	hoisted := make(map[isa.RegID]bool)
	var moved []isa.Instr
	removed := make(map[*isa.Instr]bool)

	invariantUse := func(r isa.RegID) bool {
		return defsInLoop[r] == 0 || hoisted[r]
	}
	for changedRound := true; changedRound; {
		changedRound = false
		for _, bi := range loop.Blocks {
			b := f.Blocks[bi]
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if removed[in] {
					continue
				}
				uses, def := ir.UseDef(in)
				if def == isa.NoReg || hoisted[def] || isa.HasSideEffects(in.Op) {
					continue
				}
				if defsGlobal[def] != 1 {
					continue
				}
				switch in.Op {
				case isa.DIV, isa.MOD, isa.CALL, isa.NOP:
					continue // may trap / not pure
				case isa.LD:
					if callInLoop || storedSyms[in.Sym] || !dominatesAllLatches(bi) {
						continue
					}
				case isa.LDL:
					if storedSlots[in.Imm] || !dominatesAllLatches(bi) {
						continue
					}
				}
				ok := true
				for _, u := range uses {
					if !invariantUse(u) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				moved = append(moved, *in)
				removed[in] = true
				hoisted[def] = true
				changedRound = true
			}
		}
	}
	if len(moved) == 0 {
		return
	}

	// Create the preheader, redirect entry edges, and delete moved instrs.
	pre := &isa.Block{Instrs: append(moved, isa.Instr{Op: isa.JMP}), Succs: []int{loop.Header}}
	f.Blocks = append(f.Blocks, pre)
	preIdx := len(f.Blocks) - 1
	for pi, b := range f.Blocks {
		if pi == preIdx || inLoop[pi] {
			continue
		}
		for si, s := range b.Succs {
			if s == loop.Header {
				b.Succs[si] = preIdx
			}
		}
	}
	for _, bi := range loop.Blocks {
		b := f.Blocks[bi]
		out := b.Instrs[:0]
		for i := range b.Instrs {
			if !removed[&b.Instrs[i]] {
				out = append(out, b.Instrs[i])
			}
		}
		b.Instrs = out
	}
}

// inlineSmallFuncs splices the bodies of small leaf functions into their
// callers (the O3 pass). Arguments already live in the caller's
// outgoing-argument slots, so parameter accesses in the inlined body are
// simply remapped onto those slots.
func inlineSmallFuncs(prog *isa.Program) {
	const (
		maxCalleeSize = 28
		maxPerCaller  = 8
	)
	size := func(f *isa.Func) int {
		n := 0
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
		return n
	}
	leaf := func(f *isa.Func) bool {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == isa.CALL {
					return false
				}
			}
		}
		return true
	}
	for _, caller := range prog.Funcs {
		budget := maxPerCaller
		for budget > 0 {
			bi, ii := findInlinableCall(prog, caller, size, leaf, maxCalleeSize)
			if bi < 0 {
				break
			}
			callee := prog.Funcs[caller.Blocks[bi].Instrs[ii].Sym]
			inlineCall(caller, bi, ii, callee)
			budget--
		}
	}
}

func findInlinableCall(prog *isa.Program, caller *isa.Func,
	size func(*isa.Func) int, leaf func(*isa.Func) bool, maxSize int) (int, int) {
	for bi, b := range caller.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != isa.CALL {
				continue
			}
			callee := prog.Funcs[in.Sym]
			if callee == caller || !leaf(callee) || size(callee) > maxSize {
				continue
			}
			return bi, ii
		}
	}
	return -1, -1
}

func inlineCall(caller *isa.Func, bi, ii int, callee *isa.Func) {
	call := caller.Blocks[bi].Instrs[ii]
	argBase := call.Imm
	regOff := isa.RegID(caller.NumRegs)
	caller.NumRegs += callee.NumRegs
	localOff := int64(caller.NumSlots) // callee's non-param locals land here
	caller.NumSlots += callee.NumSlots - callee.NumParams

	cloneBase := len(caller.Blocks)
	contIdx := cloneBase + len(callee.Blocks)

	mapReg := func(r isa.RegID) isa.RegID {
		if r == isa.NoReg {
			return r
		}
		return r + regOff
	}
	for _, cb := range callee.Blocks {
		nb := &isa.Block{}
		for _, cin := range cb.Instrs {
			ni := cin
			ni.Dst = mapReg(ni.Dst)
			ni.A = mapReg(ni.A)
			ni.B = mapReg(ni.B)
			switch ni.Op {
			case isa.LDL, isa.STL:
				if int(ni.Imm) < callee.NumParams {
					ni.Imm = argBase + ni.Imm
				} else {
					ni.Imm = localOff + (ni.Imm - int64(callee.NumParams))
				}
			case isa.RET:
				if call.Dst != isa.NoReg && ni.A != isa.NoReg {
					nb.Instrs = append(nb.Instrs, isa.Instr{Op: isa.MOV, Dst: call.Dst, A: ni.A})
				}
				nb.Instrs = append(nb.Instrs, isa.Instr{Op: isa.JMP})
				nb.Succs = []int{contIdx}
				continue
			}
			nb.Instrs = append(nb.Instrs, ni)
		}
		if nb.Succs == nil {
			nb.Succs = make([]int, len(cb.Succs))
			for i, s := range cb.Succs {
				nb.Succs[i] = s + cloneBase
			}
		}
		caller.Blocks = append(caller.Blocks, nb)
	}

	// Continuation: the remainder of the split block.
	b := caller.Blocks[bi]
	cont := &isa.Block{
		Instrs: append([]isa.Instr(nil), b.Instrs[ii+1:]...),
		Succs:  b.Succs,
	}
	caller.Blocks = append(caller.Blocks, cont)

	b.Instrs = append(b.Instrs[:ii], isa.Instr{Op: isa.JMP})
	b.Succs = []int{cloneBase}
}
