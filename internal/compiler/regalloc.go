package compiler

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/isa"
)

// bitset is a dense register set used by liveness analysis.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) set(r isa.RegID)      { s[r/64] |= 1 << (r % 64) }
func (s bitset) clear(r isa.RegID)    { s[r/64] &^= 1 << (r % 64) }
func (s bitset) has(r isa.RegID) bool { return s[r/64]&(1<<(r%64)) != 0 }

func (s bitset) clone() bitset {
	out := make(bitset, len(s))
	copy(out, s)
	return out
}

// orInto ors other into s, reporting whether s changed.
func (s bitset) orInto(other bitset) bool {
	changed := false
	for i := range s {
		if n := s[i] | other[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// forEach calls f for every register in the set.
func (s bitset) forEach(f func(isa.RegID)) {
	for w, word := range s {
		for word != 0 {
			b := word & -word
			f(isa.RegID(w*64 + trailingZeros(word)))
			word ^= b
		}
	}
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// liveness computes per-block live-in/live-out register sets.
func liveness(f *isa.Func) (liveIn, liveOut []bitset) {
	nb := len(f.Blocks)
	n := f.NumRegs
	use := make([]bitset, nb)
	def := make([]bitset, nb)
	liveIn = make([]bitset, nb)
	liveOut = make([]bitset, nb)
	for b := range f.Blocks {
		use[b], def[b] = newBitset(n), newBitset(n)
		liveIn[b], liveOut[b] = newBitset(n), newBitset(n)
		for i := range f.Blocks[b].Instrs {
			uses, d := ir.UseDef(&f.Blocks[b].Instrs[i])
			for _, u := range uses {
				if !def[b].has(u) {
					use[b].set(u)
				}
			}
			if d != isa.NoReg {
				def[b].set(d)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for b := nb - 1; b >= 0; b-- {
			for _, s := range f.Blocks[b].Succs {
				if liveOut[b].orInto(liveIn[s]) {
					changed = true
				}
			}
			// liveIn = use ∪ (liveOut − def)
			tmp := liveOut[b].clone()
			for i := range tmp {
				tmp[i] = use[b][i] | (tmp[i] &^ def[b][i])
			}
			if liveIn[b].orInto(tmp) {
				changed = true
			}
		}
	}
	return liveIn, liveOut
}

// interval is a live interval over the linearized instruction numbering.
type interval struct {
	reg        isa.RegID
	begin, end int
}

// allocate performs linear-scan register allocation for the target's
// register file, rewriting virtual registers to physical ones and inserting
// spill loads/stores (via two reserved scratch registers) when the function
// needs more registers than the ISA provides. Register-starved targets like
// x86v therefore execute extra memory traffic — the register-pressure axis
// that separates the paper's x86 machines from x86_64 and IA64.
func allocate(f *isa.Func, target *isa.Desc) error {
	k := target.IntRegs
	if k < 4 {
		return fmt.Errorf("ISA %s has too few registers (%d)", target.Name, k)
	}
	if f.NumRegs <= k {
		return nil // virtual registers already fit the machine
	}

	// Linearize and compute positions.
	startOf := make([]int, len(f.Blocks))
	pos := 0
	for b := range f.Blocks {
		startOf[b] = pos
		pos += len(f.Blocks[b].Instrs)
	}
	liveIn, liveOut := liveness(f)

	begin := make([]int, f.NumRegs)
	end := make([]int, f.NumRegs)
	for r := range begin {
		begin[r] = -1
		end[r] = -1
	}
	extend := func(r isa.RegID, p int) {
		if begin[r] == -1 || p < begin[r] {
			begin[r] = p
		}
		if p > end[r] {
			end[r] = p
		}
	}
	for b := range f.Blocks {
		s := startOf[b]
		e := s + len(f.Blocks[b].Instrs) - 1
		liveIn[b].forEach(func(r isa.RegID) { extend(r, s) })
		liveOut[b].forEach(func(r isa.RegID) { extend(r, e) })
		for i := range f.Blocks[b].Instrs {
			uses, d := ir.UseDef(&f.Blocks[b].Instrs[i])
			for _, u := range uses {
				extend(u, s+i)
			}
			if d != isa.NoReg {
				extend(d, s+i)
			}
		}
	}

	var itvs []interval
	for r := 0; r < f.NumRegs; r++ {
		if begin[r] >= 0 {
			itvs = append(itvs, interval{isa.RegID(r), begin[r], end[r]})
		}
	}
	sort.Slice(itvs, func(i, j int) bool {
		if itvs[i].begin != itvs[j].begin {
			return itvs[i].begin < itvs[j].begin
		}
		return itvs[i].reg < itvs[j].reg
	})

	// Two registers are reserved as spill scratch; the rest are allocatable.
	alloc := k - 2
	scratch0, scratch1 := isa.RegID(k-2), isa.RegID(k-1)

	phys := make(map[isa.RegID]isa.RegID)
	spillSlot := make(map[isa.RegID]int64)
	var free []isa.RegID
	for p := alloc - 1; p >= 0; p-- {
		free = append(free, isa.RegID(p))
	}
	var active []interval // sorted by end ascending

	insertActive := func(it interval) {
		i := sort.Search(len(active), func(i int) bool { return active[i].end >= it.end })
		active = append(active, interval{})
		copy(active[i+1:], active[i:])
		active[i] = it
	}
	spill := func(r isa.RegID) {
		slot := int64(f.NumSlots)
		f.NumSlots++
		spillSlot[r] = slot
	}

	for _, it := range itvs {
		// Expire finished intervals.
		for len(active) > 0 && active[0].end < it.begin {
			free = append(free, phys[active[0].reg])
			active = active[1:]
		}
		if len(free) > 0 {
			p := free[len(free)-1]
			free = free[:len(free)-1]
			phys[it.reg] = p
			insertActive(it)
			continue
		}
		// Spill the interval that ends furthest in the future.
		victim := active[len(active)-1]
		if victim.end > it.end {
			phys[it.reg] = phys[victim.reg]
			delete(phys, victim.reg)
			spill(victim.reg)
			active = active[:len(active)-1]
			insertActive(it)
		} else {
			spill(it.reg)
		}
	}

	// Rewrite instructions: physical renaming plus spill code.
	for _, b := range f.Blocks {
		out := make([]isa.Instr, 0, len(b.Instrs))
		for _, in := range b.Instrs {
			loaded := make(map[isa.RegID]isa.RegID)
			nextScratch := scratch0
			var pre []isa.Instr
			mapUses(&in, func(r isa.RegID) isa.RegID {
				if p, ok := phys[r]; ok {
					return p
				}
				slot, ok := spillSlot[r]
				if !ok {
					return r // untouched (should not happen)
				}
				if s, seen := loaded[r]; seen {
					return s
				}
				s := nextScratch
				nextScratch = scratch1
				pre = append(pre, isa.Instr{Op: isa.LDL, Dst: s, Imm: slot})
				loaded[r] = s
				return s
			})
			out = append(out, pre...)
			_, d := ir.UseDef(&in)
			var post []isa.Instr
			if d != isa.NoReg {
				if p, ok := phys[d]; ok {
					in.Dst = p
				} else if slot, ok := spillSlot[d]; ok {
					in.Dst = scratch0
					post = append(post, isa.Instr{Op: isa.STL, A: scratch0, Imm: slot})
				}
			}
			out = append(out, in)
			out = append(out, post...)
		}
		b.Instrs = out
	}
	f.NumRegs = k
	return nil
}
