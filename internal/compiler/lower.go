package compiler

import (
	"fmt"

	"repro/internal/hlc"
	"repro/internal/isa"
)

// lowerer translates one HLC function into virtual-register machine code.
// Lowering is deliberately naive — it produces the memory-heavy code shape
// of an unoptimized compile (every local access is a stack-slot load or
// store); the optimization passes then earn their keep at O1+.
type lowerer struct {
	cp   *hlc.CheckedProgram
	prog *isa.Program
	fn   *hlc.FuncDecl
	out  *isa.Func

	cur     int // current block index
	nextReg int
	slotOf  map[*hlc.Symbol]int
	maxOut  int // widest outgoing-argument list of any call site

	// Loop context stacks for break/continue targets.
	breakTo    []int
	continueTo []int
}

func lowerFunc(cp *hlc.CheckedProgram, prog *isa.Program, fn *hlc.FuncDecl, out *isa.Func) error {
	out.NumParams = len(fn.Params)
	out.RetKind = kindOf(fn.Ret)
	lw := &lowerer{
		cp:     cp,
		prog:   prog,
		fn:     fn,
		out:    out,
		slotOf: make(map[*hlc.Symbol]int),
	}
	for i, sym := range cp.LocalsOf[fn] {
		lw.slotOf[sym] = i
	}
	lw.out.NumSlots = len(cp.LocalsOf[fn])
	lw.newBlock()

	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("compiler: lowering %s: %v", fn.Name, r)
			}
		}()
		lw.block(fn.Body)
		// Fall-off-the-end return (void functions, or C-style undefined
		// return value modeled as 0).
		if !lw.terminated() {
			lw.emitFallOffReturn()
		}
	}()
	if err != nil {
		return err
	}
	lw.out.NumRegs = lw.nextReg
	if lw.maxOut > 0 {
		lw.out.FirstArgSlot = lw.out.NumSlots
		lw.out.ArgSlots = lw.maxOut
		lw.out.NumSlots += lw.maxOut
	} else {
		lw.out.FirstArgSlot = -1
	}
	return nil
}

func kindOf(t hlc.Type) isa.ValKind {
	switch t {
	case hlc.TypeInt:
		return isa.KindInt
	case hlc.TypeFloat:
		return isa.KindFloat
	default:
		return isa.KindVoid
	}
}

func (lw *lowerer) emitFallOffReturn() {
	if lw.out.RetKind == isa.KindVoid {
		lw.emit(isa.Instr{Op: isa.RET, A: isa.NoReg})
		return
	}
	r := lw.reg()
	if lw.out.RetKind == isa.KindFloat {
		lw.emit(isa.Instr{Op: isa.MOVF, Dst: r, F: 0})
	} else {
		lw.emit(isa.Instr{Op: isa.MOVI, Dst: r, Imm: 0})
	}
	lw.emit(isa.Instr{Op: isa.RET, A: r})
}

// --- block & instruction plumbing ---

func (lw *lowerer) reg() isa.RegID {
	r := lw.nextReg
	lw.nextReg++
	if lw.nextReg >= int(isa.NoReg) {
		panic("virtual register overflow")
	}
	return isa.RegID(r)
}

func (lw *lowerer) newBlock() int {
	lw.out.Blocks = append(lw.out.Blocks, &isa.Block{})
	lw.cur = len(lw.out.Blocks) - 1
	return lw.cur
}

func (lw *lowerer) curBlock() *isa.Block { return lw.out.Blocks[lw.cur] }

func (lw *lowerer) emit(in isa.Instr) {
	b := lw.curBlock()
	b.Instrs = append(b.Instrs, in)
}

// terminated reports whether the current block already ends in control flow.
func (lw *lowerer) terminated() bool {
	b := lw.curBlock()
	if len(b.Instrs) == 0 {
		return false
	}
	switch b.Instrs[len(b.Instrs)-1].Op {
	case isa.BR, isa.JMP, isa.RET:
		return true
	}
	return false
}

// jumpTo ends the current block with JMP to target (no-op if terminated).
func (lw *lowerer) jumpTo(target int) {
	if lw.terminated() {
		return
	}
	lw.emit(isa.Instr{Op: isa.JMP})
	lw.curBlock().Succs = []int{target}
}

// branchTo ends the current block with BR cond -> taken / fall.
func (lw *lowerer) branchTo(cond isa.RegID, taken, fall int) {
	lw.emit(isa.Instr{Op: isa.BR, A: cond})
	lw.curBlock().Succs = []int{taken, fall}
}

// switchTo makes an existing (pre-created) block current.
func (lw *lowerer) switchTo(b int) { lw.cur = b }

// reserveBlock creates a block without making it current.
func (lw *lowerer) reserveBlock() int {
	lw.out.Blocks = append(lw.out.Blocks, &isa.Block{})
	return len(lw.out.Blocks) - 1
}

// --- statements ---

func (lw *lowerer) block(b *hlc.Block) {
	for _, s := range b.Stmts {
		lw.stmt(s)
	}
}

func (lw *lowerer) stmt(s hlc.Stmt) {
	if lw.terminated() {
		// Dead code after return/break/continue: lower into a fresh
		// unreachable block so the builder stays consistent; tidy()
		// removes it.
		lw.newBlock()
	}
	switch st := s.(type) {
	case *hlc.Block:
		lw.block(st)
	case *hlc.DeclStmt:
		sym := lw.resolveDecl(st.Decl)
		if st.Decl.Init != nil {
			r, k := lw.expr(st.Decl.Init)
			r = lw.convert(r, k, kindOf(st.Decl.Type))
			lw.storeLocal(sym, r)
		}
	case *hlc.AssignStmt:
		lw.assign(st)
	case *hlc.IfStmt:
		lw.ifStmt(st)
	case *hlc.ForStmt:
		lw.forStmt(st)
	case *hlc.WhileStmt:
		lw.whileStmt(st)
	case *hlc.BreakStmt:
		lw.jumpTo(lw.breakTo[len(lw.breakTo)-1])
	case *hlc.ContinueStmt:
		lw.jumpTo(lw.continueTo[len(lw.continueTo)-1])
	case *hlc.ReturnStmt:
		if st.X == nil {
			lw.emit(isa.Instr{Op: isa.RET, A: isa.NoReg})
			lw.curBlock().Succs = nil
			return
		}
		r, k := lw.expr(st.X)
		r = lw.convert(r, k, lw.out.RetKind)
		lw.emit(isa.Instr{Op: isa.RET, A: r})
	case *hlc.PrintStmt:
		for _, a := range st.Args {
			r, k := lw.expr(a)
			op := isa.PRINTI
			if k == isa.KindFloat {
				op = isa.PRINTF
			}
			lw.emit(isa.Instr{Op: op, A: r})
		}
	case *hlc.ExprStmt:
		lw.expr(st.X)
	default:
		panic(fmt.Sprintf("unknown statement %T", s))
	}
}

// resolveDecl finds the Symbol the checker created for a local declaration.
func (lw *lowerer) resolveDecl(d *hlc.VarDecl) *hlc.Symbol {
	for _, sym := range lw.cp.LocalsOf[lw.fn] {
		if sym.Decl == d {
			return sym
		}
	}
	panic(fmt.Sprintf("local %s not resolved", d.Name))
}

func (lw *lowerer) assign(st *hlc.AssignStmt) {
	switch lhs := st.LHS.(type) {
	case *hlc.VarRef:
		sym := lw.cp.Resolved[lhs]
		dstKind := kindOf(sym.Type)
		var val isa.RegID
		if st.Op == hlc.Assign {
			r, k := lw.expr(st.RHS)
			val = lw.convert(r, k, dstKind)
		} else {
			cur := lw.loadVar(sym)
			r, k := lw.expr(st.RHS)
			val = lw.binop(compoundOp(st.Op), cur, dstKind, r, k)
			val = lw.convert(val, lw.resultKind(compoundOp(st.Op), dstKind, k), dstKind)
		}
		lw.storeVar(sym, val)
	case *hlc.IndexExpr:
		sym := lw.cp.Resolved[lhs]
		idx, ik := lw.expr(lhs.Idx)
		if ik != isa.KindInt {
			panic("array index must be int")
		}
		gi := lw.globalIndex(sym.Name)
		dstKind := kindOf(sym.Type)
		var val isa.RegID
		if st.Op == hlc.Assign {
			r, k := lw.expr(st.RHS)
			val = lw.convert(r, k, dstKind)
		} else {
			cur := lw.reg()
			lw.emit(isa.Instr{Op: isa.LD, Dst: cur, A: idx, Sym: gi})
			r, k := lw.expr(st.RHS)
			val = lw.binop(compoundOp(st.Op), cur, dstKind, r, k)
			val = lw.convert(val, lw.resultKind(compoundOp(st.Op), dstKind, k), dstKind)
		}
		lw.emit(isa.Instr{Op: isa.ST, A: idx, B: val, Sym: gi})
	default:
		panic(fmt.Sprintf("bad lvalue %T", st.LHS))
	}
}

// compoundOp maps a compound-assignment token to its binary operator.
func compoundOp(t hlc.Token) hlc.Token {
	switch t {
	case hlc.PlusEq:
		return hlc.Plus
	case hlc.MinusEq:
		return hlc.Minus
	case hlc.StarEq:
		return hlc.Star
	case hlc.SlashEq:
		return hlc.Slash
	case hlc.PercentEq:
		return hlc.Percent
	case hlc.AmpEq:
		return hlc.Amp
	case hlc.PipeEq:
		return hlc.Pipe
	case hlc.CaretEq:
		return hlc.Caret
	case hlc.ShlEq:
		return hlc.Shl
	case hlc.ShrEq:
		return hlc.Shr
	}
	panic(fmt.Sprintf("not a compound assignment: %v", t))
}

func (lw *lowerer) ifStmt(st *hlc.IfStmt) {
	cond := lw.condValue(st.Cond)
	thenB := lw.reserveBlock()
	joinB := lw.reserveBlock()
	elseB := joinB
	if st.Else != nil {
		elseB = lw.reserveBlock()
	}
	lw.branchTo(cond, thenB, elseB)

	lw.switchTo(thenB)
	lw.block(st.Then)
	lw.jumpTo(joinB)

	if st.Else != nil {
		lw.switchTo(elseB)
		lw.block(st.Else)
		lw.jumpTo(joinB)
	}
	lw.switchTo(joinB)
}

func (lw *lowerer) forStmt(st *hlc.ForStmt) {
	if st.Init != nil {
		lw.stmt(st.Init)
	}
	header := lw.reserveBlock()
	body := lw.reserveBlock()
	post := lw.reserveBlock()
	exit := lw.reserveBlock()
	lw.jumpTo(header)

	lw.switchTo(header)
	if st.Cond != nil {
		cond := lw.condValue(st.Cond)
		lw.branchTo(cond, body, exit)
	} else {
		lw.jumpTo(body)
	}

	lw.switchTo(body)
	lw.breakTo = append(lw.breakTo, exit)
	lw.continueTo = append(lw.continueTo, post)
	lw.block(st.Body)
	lw.breakTo = lw.breakTo[:len(lw.breakTo)-1]
	lw.continueTo = lw.continueTo[:len(lw.continueTo)-1]
	lw.jumpTo(post)

	lw.switchTo(post)
	if st.Post != nil {
		lw.stmt(st.Post)
	}
	lw.jumpTo(header)

	lw.switchTo(exit)
}

func (lw *lowerer) whileStmt(st *hlc.WhileStmt) {
	header := lw.reserveBlock()
	body := lw.reserveBlock()
	exit := lw.reserveBlock()
	lw.jumpTo(header)

	lw.switchTo(header)
	cond := lw.condValue(st.Cond)
	lw.branchTo(cond, body, exit)

	lw.switchTo(body)
	lw.breakTo = append(lw.breakTo, exit)
	lw.continueTo = append(lw.continueTo, header)
	lw.block(st.Body)
	lw.breakTo = lw.breakTo[:len(lw.breakTo)-1]
	lw.continueTo = lw.continueTo[:len(lw.continueTo)-1]
	lw.jumpTo(header)

	lw.switchTo(exit)
}

// condValue lowers an expression used as a branch condition to an int
// register that is nonzero when the condition holds.
func (lw *lowerer) condValue(e hlc.Expr) isa.RegID {
	r, k := lw.expr(e)
	if k == isa.KindFloat {
		zero := lw.reg()
		lw.emit(isa.Instr{Op: isa.MOVF, Dst: zero, F: 0})
		out := lw.reg()
		lw.emit(isa.Instr{Op: isa.FCMPNE, Dst: out, A: r, B: zero})
		return out
	}
	return r
}

// --- variable access ---

func (lw *lowerer) globalIndex(name string) int32 {
	gi := lw.prog.GlobalIndex(name)
	if gi < 0 {
		panic(fmt.Sprintf("unknown global %s", name))
	}
	return int32(gi)
}

// loadVar loads a scalar variable into a fresh register.
func (lw *lowerer) loadVar(sym *hlc.Symbol) isa.RegID {
	r := lw.reg()
	if sym.Kind == hlc.SymGlobal {
		lw.emit(isa.Instr{Op: isa.LD, Dst: r, A: isa.NoReg, Sym: lw.globalIndex(sym.Name)})
	} else {
		lw.emit(isa.Instr{Op: isa.LDL, Dst: r, Imm: int64(lw.slotOf[sym])})
	}
	return r
}

// storeVar stores a register to a scalar variable.
func (lw *lowerer) storeVar(sym *hlc.Symbol, val isa.RegID) {
	if sym.Kind == hlc.SymGlobal {
		lw.emit(isa.Instr{Op: isa.ST, A: isa.NoReg, B: val, Sym: lw.globalIndex(sym.Name)})
	} else {
		lw.storeLocal(sym, val)
	}
}

func (lw *lowerer) storeLocal(sym *hlc.Symbol, val isa.RegID) {
	lw.emit(isa.Instr{Op: isa.STL, A: val, Imm: int64(lw.slotOf[sym])})
}

// convert inserts a conversion instruction when kinds differ.
func (lw *lowerer) convert(r isa.RegID, from, to isa.ValKind) isa.RegID {
	if from == to || to == isa.KindVoid {
		return r
	}
	out := lw.reg()
	if from == isa.KindInt && to == isa.KindFloat {
		lw.emit(isa.Instr{Op: isa.ITOF, Dst: out, A: r})
	} else {
		lw.emit(isa.Instr{Op: isa.FTOI, Dst: out, A: r})
	}
	return out
}

// --- expressions ---

// expr lowers an expression, returning the result register and its kind.
func (lw *lowerer) expr(e hlc.Expr) (isa.RegID, isa.ValKind) {
	switch x := e.(type) {
	case *hlc.IntLit:
		r := lw.reg()
		lw.emit(isa.Instr{Op: isa.MOVI, Dst: r, Imm: x.Value})
		return r, isa.KindInt
	case *hlc.FloatLit:
		r := lw.reg()
		lw.emit(isa.Instr{Op: isa.MOVF, Dst: r, F: x.Value})
		return r, isa.KindFloat
	case *hlc.VarRef:
		sym := lw.cp.Resolved[x]
		return lw.loadVar(sym), kindOf(sym.Type)
	case *hlc.IndexExpr:
		sym := lw.cp.Resolved[x]
		idx, _ := lw.expr(x.Idx)
		r := lw.reg()
		lw.emit(isa.Instr{Op: isa.LD, Dst: r, A: idx, Sym: lw.globalIndex(sym.Name)})
		return r, kindOf(sym.Type)
	case *hlc.UnaryExpr:
		return lw.unary(x)
	case *hlc.BinaryExpr:
		return lw.binary(x)
	case *hlc.CallExpr:
		return lw.call(x)
	}
	panic(fmt.Sprintf("unknown expression %T", e))
}

func (lw *lowerer) unary(x *hlc.UnaryExpr) (isa.RegID, isa.ValKind) {
	r, k := lw.expr(x.X)
	out := lw.reg()
	switch x.Op {
	case hlc.Minus:
		if k == isa.KindFloat {
			lw.emit(isa.Instr{Op: isa.FNEG, Dst: out, A: r})
			return out, isa.KindFloat
		}
		lw.emit(isa.Instr{Op: isa.NEG, Dst: out, A: r})
		return out, isa.KindInt
	case hlc.Tilde:
		lw.emit(isa.Instr{Op: isa.NOTB, Dst: out, A: r})
		return out, isa.KindInt
	case hlc.Not:
		zero := lw.reg()
		if k == isa.KindFloat {
			lw.emit(isa.Instr{Op: isa.MOVF, Dst: zero, F: 0})
			lw.emit(isa.Instr{Op: isa.FCMPEQ, Dst: out, A: r, B: zero})
		} else {
			lw.emit(isa.Instr{Op: isa.MOVI, Dst: zero, Imm: 0})
			lw.emit(isa.Instr{Op: isa.CMPEQ, Dst: out, A: r, B: zero})
		}
		return out, isa.KindInt
	}
	panic(fmt.Sprintf("bad unary op %v", x.Op))
}

func (lw *lowerer) binary(x *hlc.BinaryExpr) (isa.RegID, isa.ValKind) {
	switch x.Op {
	case hlc.LAnd, hlc.LOr:
		return lw.shortCircuit(x), isa.KindInt
	}
	a, ak := lw.expr(x.X)
	b, bk := lw.expr(x.Y)
	out := lw.binop(x.Op, a, ak, b, bk)
	return out, lw.resultKind(x.Op, ak, bk)
}

// resultKind computes the kind of a binary operation's result.
func (lw *lowerer) resultKind(op hlc.Token, ak, bk isa.ValKind) isa.ValKind {
	switch op {
	case hlc.Eq, hlc.Neq, hlc.Lt, hlc.Le, hlc.Gt, hlc.Ge:
		return isa.KindInt
	}
	if ak == isa.KindFloat || bk == isa.KindFloat {
		return isa.KindFloat
	}
	return isa.KindInt
}

// binop emits the instruction(s) for a binary operator over already-lowered
// operands, widening int operands to float when mixed.
func (lw *lowerer) binop(op hlc.Token, a isa.RegID, ak isa.ValKind, b isa.RegID, bk isa.ValKind) isa.RegID {
	isFloat := ak == isa.KindFloat || bk == isa.KindFloat
	if isFloat {
		a = lw.convert(a, ak, isa.KindFloat)
		b = lw.convert(b, bk, isa.KindFloat)
	}
	out := lw.reg()
	var mop isa.Opcode
	switch op {
	case hlc.Plus:
		mop = pick(isFloat, isa.FADD, isa.ADD)
	case hlc.Minus:
		mop = pick(isFloat, isa.FSUB, isa.SUB)
	case hlc.Star:
		mop = pick(isFloat, isa.FMUL, isa.MUL)
	case hlc.Slash:
		mop = pick(isFloat, isa.FDIV, isa.DIV)
	case hlc.Percent:
		mop = isa.MOD
	case hlc.Amp:
		mop = isa.AND
	case hlc.Pipe:
		mop = isa.OR
	case hlc.Caret:
		mop = isa.XOR
	case hlc.Shl:
		mop = isa.SHL
	case hlc.Shr:
		mop = isa.SHR
	case hlc.Eq:
		mop = pick(isFloat, isa.FCMPEQ, isa.CMPEQ)
	case hlc.Neq:
		mop = pick(isFloat, isa.FCMPNE, isa.CMPNE)
	case hlc.Lt:
		mop = pick(isFloat, isa.FCMPLT, isa.CMPLT)
	case hlc.Le:
		mop = pick(isFloat, isa.FCMPLE, isa.CMPLE)
	case hlc.Gt:
		mop = pick(isFloat, isa.FCMPGT, isa.CMPGT)
	case hlc.Ge:
		mop = pick(isFloat, isa.FCMPGE, isa.CMPGE)
	default:
		panic(fmt.Sprintf("bad binary op %v", op))
	}
	lw.emit(isa.Instr{Op: mop, Dst: out, A: a, B: b})
	return out
}

func pick(cond bool, a, b isa.Opcode) isa.Opcode {
	if cond {
		return a
	}
	return b
}

// shortCircuit lowers && and || with C short-circuit evaluation, producing
// a 0/1 register.
func (lw *lowerer) shortCircuit(x *hlc.BinaryExpr) isa.RegID {
	out := lw.reg()
	evalY := lw.reserveBlock()
	skip := lw.reserveBlock()
	join := lw.reserveBlock()

	cond := lw.condValue(x.X)
	if x.Op == hlc.LAnd {
		lw.branchTo(cond, evalY, skip) // true: need Y; false: result 0
	} else {
		lw.branchTo(cond, skip, evalY) // true: result 1; false: need Y
	}

	lw.switchTo(evalY)
	ry := lw.condValue(x.Y)
	zero := lw.reg()
	lw.emit(isa.Instr{Op: isa.MOVI, Dst: zero, Imm: 0})
	lw.emit(isa.Instr{Op: isa.CMPNE, Dst: out, A: ry, B: zero})
	lw.jumpTo(join)

	lw.switchTo(skip)
	v := int64(0)
	if x.Op == hlc.LOr {
		v = 1
	}
	lw.emit(isa.Instr{Op: isa.MOVI, Dst: out, Imm: v})
	lw.jumpTo(join)

	lw.switchTo(join)
	return out
}

func (lw *lowerer) call(x *hlc.CallExpr) (isa.RegID, isa.ValKind) {
	if b, ok := hlc.Builtins[x.Name]; ok {
		return lw.builtin(b, x)
	}
	callee := lw.prog.FuncIndex(x.Name)
	if callee < 0 {
		panic(fmt.Sprintf("unknown function %s", x.Name))
	}
	fnDecl := lw.cp.Prog.Func(x.Name)
	// Evaluate every argument first (nested calls reuse the same outgoing
	// area and complete before the stores below), then store them into the
	// outgoing-argument slots — stack argument passing, cdecl style.
	var args []isa.RegID
	for i, a := range x.Args {
		r, k := lw.expr(a)
		r = lw.convert(r, k, kindOf(fnDecl.Params[i].Type))
		args = append(args, r)
	}
	argBase := len(lw.cp.LocalsOf[lw.fn]) // outgoing area begins after locals
	for i, r := range args {
		lw.emit(isa.Instr{Op: isa.STL, A: r, Imm: int64(argBase + i)})
	}
	if len(args) > lw.maxOut {
		lw.maxOut = len(args)
	}
	retKind := kindOf(fnDecl.Ret)
	dst := isa.NoReg
	if retKind != isa.KindVoid {
		dst = lw.reg()
	}
	lw.emit(isa.Instr{Op: isa.CALL, Dst: dst, Sym: int32(callee), Imm: int64(argBase)})
	return dst, retKind
}

func (lw *lowerer) builtin(b hlc.Builtin, x *hlc.CallExpr) (isa.RegID, isa.ValKind) {
	r, k := lw.expr(x.Args[0])
	r = lw.convert(r, k, kindOf(b.ArgTyp))
	out := lw.reg()
	var op isa.Opcode
	switch b.Name {
	case "sin":
		op = isa.FSIN
	case "cos":
		op = isa.FCOS
	case "sqrt":
		op = isa.FSQRT
	case "fabs":
		op = isa.FABS
	case "itof":
		op = isa.ITOF
	case "ftoi":
		op = isa.FTOI
	default:
		panic(fmt.Sprintf("unknown builtin %s", b.Name))
	}
	lw.emit(isa.Instr{Op: op, Dst: out, A: r})
	return out, kindOf(b.Ret)
}
