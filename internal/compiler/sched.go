package compiler

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/isa"
)

// scheduleEPIC performs static list scheduling of each basic block into
// issue bundles for EPIC targets (the IA64 axis of the paper's Fig. 11:
// an in-order EPIC machine only extracts instruction-level parallelism the
// compiler exposes, which is why Itanium gains ~25% at O2/O3 over O1 while
// out-of-order machines barely care).
//
// Bundles hold up to three mutually independent instructions with at most
// two memory operations; the block terminator always issues alone, last.
func scheduleEPIC(f *isa.Func) {
	for _, b := range f.Blocks {
		scheduleBlock(b)
	}
}

const (
	bundleWidth  = 3
	bundleMemOps = 2
)

func isMemOp(op isa.Opcode) bool {
	switch op {
	case isa.LD, isa.ST, isa.LDL, isa.STL:
		return true
	}
	return false
}

func isStoreOp(op isa.Opcode) bool { return op == isa.ST || op == isa.STL }

func isBarrierOp(op isa.Opcode) bool {
	switch op {
	case isa.CALL, isa.PRINTI, isa.PRINTF:
		return true
	}
	return false
}

func scheduleBlock(b *isa.Block) {
	n := len(b.Instrs)
	if n == 0 {
		b.Bundle = nil
		return
	}
	adj := make([][]int, n)
	indeg := make([]int, n)
	addEdge := func(i, j int) {
		adj[i] = append(adj[i], j)
		indeg[j]++
	}
	usesOf := make([][]isa.RegID, n)
	defOf := make([]isa.RegID, n)
	for i := range b.Instrs {
		usesOf[i], defOf[i] = ir.UseDef(&b.Instrs[i])
	}
	for j := 1; j < n; j++ {
		oj := b.Instrs[j].Op
		for i := 0; i < j; i++ {
			oi := b.Instrs[i].Op
			dep := false
			if d := defOf[i]; d != isa.NoReg {
				if d == defOf[j] {
					dep = true // WAW
				}
				for _, u := range usesOf[j] {
					if u == d {
						dep = true // RAW
					}
				}
			}
			if d := defOf[j]; d != isa.NoReg && !dep {
				for _, u := range usesOf[i] {
					if u == d {
						dep = true // WAR
					}
				}
			}
			if !dep && (isStoreOp(oi) && isMemOp(oj) || isMemOp(oi) && isStoreOp(oj)) {
				dep = true // conservative memory ordering
			}
			if !dep && (isBarrierOp(oi) || isBarrierOp(oj)) {
				dep = true
			}
			if !dep && j == n-1 {
				dep = true // terminator issues after everything
			}
			if dep {
				addEdge(i, j)
			}
		}
	}

	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]isa.Instr, 0, n)
	bundles := make([]int, 0, n)
	cycle := 0
	remaining := n
	for remaining > 0 {
		memUsed := 0
		var take []int
		for _, i := range ready {
			if len(take) == bundleWidth {
				break
			}
			op := b.Instrs[i].Op
			if isMemOp(op) && memUsed == bundleMemOps {
				continue
			}
			take = append(take, i)
			if isMemOp(op) {
				memUsed++
			}
		}
		if len(take) == 0 {
			// Cannot happen in a valid DAG, but never wedge.
			take = append(take, ready[0])
		}
		taken := make(map[int]bool, len(take))
		for _, i := range take {
			taken[i] = true
			order = append(order, b.Instrs[i])
			bundles = append(bundles, cycle)
		}
		var next []int
		for _, i := range ready {
			if !taken[i] {
				next = append(next, i)
			}
		}
		for _, i := range take {
			for _, s := range adj[i] {
				indeg[s]--
				if indeg[s] == 0 {
					next = append(next, s)
				}
			}
		}
		sort.Ints(next)
		ready = next
		remaining -= len(take)
		cycle++
	}
	b.Instrs = order
	b.Bundle = bundles
}
