// Package compiler translates checked HLC programs into virtual-ISA machine
// code at one of four optimization levels, standing in for GCC in the
// paper's methodology:
//
//	O0 — every local variable lives in a stack slot; every use is a load and
//	     every definition a store (like gcc -O0). Profiling for benchmark
//	     synthesis happens at this level, exactly as in the paper.
//	O1 — promotes locals to registers (mem2reg), folds constants, propagates
//	     copies, and removes dead code.
//	O2 — adds local common-subexpression elimination, strength reduction,
//	     loop-invariant code motion, and (on EPIC targets) static
//	     instruction scheduling into issue bundles.
//	O3 — adds inlining of small functions.
//
// The pass roster per level is what makes the paper's Fig. 5/6/11 shapes
// reappear: dynamic instruction count drops sharply from O0 to O1 and only
// slightly after; the load fraction falls and the arithmetic fraction rises
// with optimization; and only the EPIC target gains substantially from the
// O2 scheduler, which is the Itanium effect in Fig. 11.
package compiler

import (
	"fmt"

	"repro/internal/hlc"
	"repro/internal/isa"
)

// OptLevel selects the optimization level.
type OptLevel int

// Optimization levels, mirroring gcc -O0..-O3.
const (
	O0 OptLevel = iota
	O1
	O2
	O3
)

// String returns the gcc-style spelling of the level.
func (l OptLevel) String() string { return fmt.Sprintf("-O%d", int(l)) }

// Levels lists all optimization levels in ascending order.
var Levels = []OptLevel{O0, O1, O2, O3}

// Compile translates a checked program for the given ISA at the given
// optimization level.
func Compile(cp *hlc.CheckedProgram, target *isa.Desc, level OptLevel) (*isa.Program, error) {
	if target == nil {
		return nil, fmt.Errorf("compiler: nil target ISA")
	}
	prog := &isa.Program{ISA: target}

	// Globals: scalars become length-1 globals. Initializers are evaluated
	// by the VM at program start via a synthetic init sequence baked into
	// the global table (constant initializers only, enforced here).
	for _, g := range cp.Prog.Globals {
		kind := isa.KindInt
		if g.Type == hlc.TypeFloat {
			kind = isa.KindFloat
		}
		length := g.ArrayLen
		if length == 0 {
			length = 1
		}
		prog.Globals = append(prog.Globals, isa.Global{Name: g.Name, Kind: kind, Len: length})
	}

	// Pre-register every function shell so calls can resolve indices
	// while bodies are being lowered, then fill the bodies in.
	for _, fn := range cp.Prog.Funcs {
		prog.Funcs = append(prog.Funcs, &isa.Func{Name: fn.Name})
	}
	for i, fn := range cp.Prog.Funcs {
		if err := lowerFunc(cp, prog, fn, prog.Funcs[i]); err != nil {
			return nil, err
		}
	}
	prog.Entry = -1
	for i, f := range prog.Funcs {
		if f.Name == "main" {
			prog.Entry = i
		}
	}
	if prog.Entry < 0 {
		return nil, fmt.Errorf("compiler: no main function")
	}

	// Optimization pipeline on virtual-register code.
	for _, f := range prog.Funcs {
		tidy(f)
	}
	if level >= O3 {
		inlineSmallFuncs(prog)
	}
	for _, f := range prog.Funcs {
		if level >= O1 {
			mem2reg(f)
			for i := 0; i < 3; i++ {
				constFold(f)
				copyProp(f)
				if level >= O2 {
					localCSE(f)
					strengthReduce(f)
				}
				deadCodeElim(f)
			}
			if level >= O2 {
				licm(f)
				copyProp(f)
				deadCodeElim(f)
			}
		}
		tidy(f)
	}

	// Register allocation maps virtual registers onto the target's
	// register file, spilling to stack slots under pressure.
	for _, f := range prog.Funcs {
		if err := allocate(f, target); err != nil {
			return nil, fmt.Errorf("compiler: %s: %w", f.Name, err)
		}
	}

	// EPIC targets get static schedules at O2+; otherwise each
	// instruction issues alone on in-order machines.
	if target.EPIC && level >= O2 {
		for _, f := range prog.Funcs {
			scheduleEPIC(f)
		}
	}
	return prog, nil
}

// GlobalInits extracts the constant initial values of global scalars so the
// VM can install them before execution. Arrays always start zeroed.
func GlobalInits(cp *hlc.CheckedProgram) (ints map[string]int64, floats map[string]float64, err error) {
	ints = make(map[string]int64)
	floats = make(map[string]float64)
	for _, g := range cp.Prog.Globals {
		if g.Init == nil {
			continue
		}
		switch v := g.Init.(type) {
		case *hlc.IntLit:
			if g.Type == hlc.TypeFloat {
				floats[g.Name] = float64(v.Value)
			} else {
				ints[g.Name] = v.Value
			}
		case *hlc.FloatLit:
			floats[g.Name] = v.Value
		default:
			return nil, nil, fmt.Errorf("compiler: global %s: initializer must be a literal", g.Name)
		}
	}
	return ints, floats, nil
}
