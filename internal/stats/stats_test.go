package stats

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestMean(t *testing.T) {
	approx(t, "Mean", Mean([]float64{1, 2, 3, 4}), 2.5)
	approx(t, "Mean(empty)", Mean(nil), 0)
	approx(t, "Mean(single)", Mean([]float64{7}), 7)
}

func TestGeoMean(t *testing.T) {
	approx(t, "GeoMean", GeoMean([]float64{1, 4}), 2)
	approx(t, "GeoMean", GeoMean([]float64{2, 2, 2}), 2)
	// Non-positive values are skipped, not poisoned into NaN.
	approx(t, "GeoMean(skip)", GeoMean([]float64{0, -3, 8, 2}), 4)
	approx(t, "GeoMean(empty)", GeoMean(nil), 0)
	approx(t, "GeoMean(all non-positive)", GeoMean([]float64{0, -1}), 0)
}

func TestRelErr(t *testing.T) {
	approx(t, "RelErr", RelErr(110, 100), 0.1)
	approx(t, "RelErr(under)", RelErr(90, 100), 0.1)
	approx(t, "RelErr(negative ref)", RelErr(-90, -100), 0.1)
	approx(t, "RelErr(zero ref)", RelErr(5, 0), 0)
}

func TestMeanAndMaxRelErr(t *testing.T) {
	a := []float64{110, 80, 100}
	b := []float64{100, 100, 100}
	approx(t, "MeanRelErr", MeanRelErr(a, b), (0.1+0.2+0.0)/3)
	approx(t, "MaxRelErr", MaxRelErr(a, b), 0.2)
	// Length mismatch truncates to the shorter series.
	approx(t, "MeanRelErr(short)", MeanRelErr([]float64{110}, b), 0.1)
	approx(t, "MeanRelErr(empty)", MeanRelErr(nil, nil), 0)
	approx(t, "MaxRelErr(empty)", MaxRelErr(nil, nil), 0)
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 6}, 2)
	for i, want := range []float64{1, 2, 3} {
		approx(t, "Normalize", out[i], want)
	}
	for _, v := range Normalize([]float64{1, 2}, 0) {
		approx(t, "Normalize(zero base)", v, 0)
	}
}

func TestPearson(t *testing.T) {
	// Perfect positive and negative linear relationships.
	approx(t, "Pearson(+1)", Pearson([]float64{1, 2, 3}, []float64{10, 20, 30}), 1)
	approx(t, "Pearson(-1)", Pearson([]float64{1, 2, 3}, []float64{3, 2, 1}), -1)
	// Known mid value: hand-computed for these points.
	got := Pearson([]float64{1, 2, 3, 4}, []float64{1, 3, 2, 4})
	approx(t, "Pearson(mixed)", got, 0.8)
	// Degenerate inputs.
	approx(t, "Pearson(constant)", Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}), 0)
	approx(t, "Pearson(short)", Pearson([]float64{1}, []float64{2}), 0)
	approx(t, "Pearson(empty)", Pearson(nil, nil), 0)
}
