// Package stats provides the small numeric helpers the experiment harness
// uses to aggregate and compare original-vs-synthetic measurements.
package stats

import "math"

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values (0 for empty input;
// non-positive values are skipped).
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		s += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// RelErr returns |a-b| / b (0 when b is 0).
func RelErr(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Abs(b)
}

// MeanRelErr averages element-wise relative errors of a against reference b.
func MeanRelErr(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		s += RelErr(a[i], b[i])
	}
	return s / float64(n)
}

// MaxRelErr returns the largest element-wise relative error.
func MaxRelErr(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var m float64
	for i := 0; i < n; i++ {
		if e := RelErr(a[i], b[i]); e > m {
			m = e
		}
	}
	return m
}

// Normalize divides every element by base (returns zeros when base is 0).
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series (0 when degenerate). The paper's "tracks well" claims are this,
// quantified.
func Pearson(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n < 2 {
		return 0
	}
	ma, mb := Mean(a[:n]), Mean(b[:n])
	var num, da, db float64
	for i := 0; i < n; i++ {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}
