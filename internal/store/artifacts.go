package store

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/profile"
)

// EncodeProfile serializes a statistical profile. The encoding is the
// profile's own JSON schema (the same shape `synth profile` emits), so a
// stored payload is also directly loadable with profile.Load.
func EncodeProfile(p *profile.Profile) ([]byte, error) {
	if p == nil || p.Graph == nil {
		return nil, fmt.Errorf("store: encode profile: nil profile or graph")
	}
	return json.Marshal(p)
}

// DecodeProfile deserializes a statistical profile.
func DecodeProfile(data []byte) (*profile.Profile, error) {
	var p profile.Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("store: decode profile: %w", err)
	}
	if p.Graph == nil {
		return nil, fmt.Errorf("store: decode profile: missing graph")
	}
	if err := p.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("store: decode profile: %w", err)
	}
	return &p, nil
}

// programJSON is the portable form of a compiled program: the ISA is stored
// by name and re-linked to its descriptor on decode, everything else is the
// isa package's own exported structure.
type programJSON struct {
	ISA     string       `json:"isa"`
	Globals []isa.Global `json:"globals"`
	Funcs   []*isa.Func  `json:"funcs"`
	Entry   int          `json:"entry"`
}

// EncodeProgram serializes a compiled program.
func EncodeProgram(p *isa.Program) ([]byte, error) {
	if p == nil || p.ISA == nil {
		return nil, fmt.Errorf("store: encode program: nil program or ISA")
	}
	return json.Marshal(programJSON{
		ISA:     p.ISA.Name,
		Globals: p.Globals,
		Funcs:   p.Funcs,
		Entry:   p.Entry,
	})
}

// DecodeProgram deserializes a compiled program, re-linking its ISA
// descriptor by name.
func DecodeProgram(data []byte) (*isa.Program, error) {
	var pj programJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, fmt.Errorf("store: decode program: %w", err)
	}
	desc := isa.ByName(pj.ISA)
	if desc == nil {
		return nil, fmt.Errorf("store: decode program: unknown ISA %q", pj.ISA)
	}
	if pj.Entry < 0 || pj.Entry >= len(pj.Funcs) {
		return nil, fmt.Errorf("store: decode program: entry %d out of range", pj.Entry)
	}
	for i, f := range pj.Funcs {
		if f == nil || len(f.Blocks) == 0 {
			return nil, fmt.Errorf("store: decode program: function %d is empty", i)
		}
	}
	return &isa.Program{ISA: desc, Globals: pj.Globals, Funcs: pj.Funcs, Entry: pj.Entry}, nil
}

// Clone is the serialized form of a synthesized benchmark clone. The HLC
// source is the artifact of record — decode callers re-parse and re-check
// it to rebuild the AST forms, exactly as a distributed clone would be
// consumed — alongside the synthesis report and the profile the clone was
// synthesized from.
type Clone struct {
	Source  string           `json:"source"`
	Report  core.Report      `json:"report"`
	Profile *profile.Profile `json:"profile"`
}

// EncodeClone serializes a synthesized clone.
func EncodeClone(c *Clone) ([]byte, error) {
	if c == nil || c.Source == "" {
		return nil, fmt.Errorf("store: encode clone: nil clone or empty source")
	}
	return json.Marshal(c)
}

// DecodeClone deserializes a synthesized clone.
func DecodeClone(data []byte) (*Clone, error) {
	var c Clone
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("store: decode clone: %w", err)
	}
	if c.Source == "" {
		return nil, fmt.Errorf("store: decode clone: empty source")
	}
	return &c, nil
}

// EncodeSim serializes a timing-simulation summary — the artifact the
// pipeline's Simulate stage persists, keyed by workload, compilation
// point, and machine-configuration fingerprint.
func EncodeSim(s cpu.Summary) ([]byte, error) {
	if s.Instrs == 0 {
		return nil, fmt.Errorf("store: encode sim: empty simulation (no instructions)")
	}
	return json.Marshal(s)
}

// DecodeSim deserializes a timing-simulation summary.
func DecodeSim(data []byte) (cpu.Summary, error) {
	var s cpu.Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return cpu.Summary{}, fmt.Errorf("store: decode sim: %w", err)
	}
	if s.Instrs == 0 {
		return cpu.Summary{}, fmt.Errorf("store: decode sim: empty simulation")
	}
	return s, nil
}

// markerPayload is the fixed payload of validation markers.
var markerPayload = []byte(`{"ok":true}`)

// EncodeMarker returns the payload recording that a keyed check passed.
func EncodeMarker() []byte {
	return append([]byte(nil), markerPayload...)
}

// DecodeMarker validates a marker payload.
func DecodeMarker(data []byte) error {
	var m struct {
		OK bool `json:"ok"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("store: decode marker: %w", err)
	}
	if !m.OK {
		return fmt.Errorf("store: decode marker: not ok")
	}
	return nil
}
