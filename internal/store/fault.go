package store

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Fault is a Backend decorator that injects scripted failures for the
// chaos test suites: transient errors, added latency, and payload
// corruption, scheduled per operation and per name. Production code never
// constructs one; it lives in the main package (rather than a _test file)
// so the cluster and cmd/synth chaos tests can wrap their backends with it.
//
// Rules are matched in order against each operation; the first rule whose
// Op and Match accept the call decides its fate. A rule with Count > 0
// fires only that many times, so "fail the first two acks, then recover"
// is one rule. All methods are safe for concurrent use if the wrapped
// Backend is.
type Fault struct {
	inner Backend

	mu    sync.Mutex
	rules []*FaultRule
	fired map[string]int
}

// FaultRule schedules one kind of injected fault. Zero-valued fields mean
// "no constraint": an empty Op matches every operation, an empty Match
// every name, Count == 0 fires forever.
type FaultRule struct {
	// Op restricts the rule to one Backend method, named lower-case:
	// "get", "put", "has", "readfile", "writefile", "createexclusive",
	// "stat", "list", "rename", "remove", "touch". Empty matches all.
	Op string
	// Match, when non-empty, must be a substring of the operation's name
	// argument (the coordination-file name, or "digest/kind" for artifact
	// ops) for the rule to apply.
	Match string
	// Skip lets the first N matching calls through before the rule starts
	// firing (e.g. "the third ack write fails").
	Skip int
	// Count bounds how many times the rule fires; 0 means unlimited.
	Count int
	// Err, when non-nil, is returned from the operation (Get and Has
	// degrade to a miss instead, matching the Backend contract).
	Err error
	// Corrupt, when true, flips bytes in returned payloads (Get, ReadFile)
	// so checksum verification must catch the damage.
	Corrupt bool
	// Delay is added latency before the operation proceeds.
	Delay time.Duration

	seen int // calls that matched, including skipped ones
}

// NewFault wraps inner with an initially empty fault script.
func NewFault(inner Backend) *Fault {
	return &Fault{inner: inner, fired: map[string]int{}}
}

// Inner returns the wrapped backend, so tests that need to reach past the
// fault layer (e.g. to manipulate filesystem state directly) can unwrap it.
func (f *Fault) Inner() Backend { return f.inner }

// Script appends rules to the fault schedule.
func (f *Fault) Script(rules ...FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range rules {
		r := rules[i]
		f.rules = append(f.rules, &r)
	}
}

// Fired reports how many times faults were injected for op (an empty op
// totals every operation), so tests can assert the script actually ran.
func (f *Fault) Fired(op string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if op == "" {
		n := 0
		for _, c := range f.fired {
			n += c
		}
		return n
	}
	return f.fired[op]
}

// check consults the script for one call and returns the rule to apply,
// if any. It mutates rule bookkeeping under the lock; the injected delay
// and error are applied by the caller outside it.
func (f *Fault) check(op, name string) *FaultRule {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Match != "" && !strings.Contains(name, r.Match) {
			continue
		}
		r.seen++
		if r.seen <= r.Skip {
			return nil
		}
		if r.Count > 0 && r.seen > r.Skip+r.Count {
			continue
		}
		f.fired[op]++
		// Copy so the caller reads the verdict without holding the lock.
		v := *r
		return &v
	}
	return nil
}

// corrupt returns a damaged copy of payload: every 16th byte is flipped,
// which breaks both JSON framing and the envelope checksum.
func corrupt(payload []byte) []byte {
	bad := make([]byte, len(payload))
	copy(bad, payload)
	for i := 0; i < len(bad); i += 16 {
		bad[i] ^= 0xff
	}
	return bad
}

// Get implements Backend; injected errors surface as misses.
func (f *Fault) Get(digest, kind, key string) ([]byte, bool) {
	r := f.check("get", digest+"/"+kind)
	if r != nil && r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r != nil && r.Err != nil {
		return nil, false
	}
	payload, ok := f.inner.Get(digest, kind, key)
	if ok && r != nil && r.Corrupt {
		return corrupt(payload), true
	}
	return payload, ok
}

// Put implements Backend.
func (f *Fault) Put(digest, kind, key string, payload []byte) error {
	if err := f.apply("put", digest+"/"+kind); err != nil {
		return err
	}
	return f.inner.Put(digest, kind, key, payload)
}

// Has implements Backend; injected errors read as absent.
func (f *Fault) Has(digest, kind, key string) bool {
	r := f.check("has", digest+"/"+kind)
	if r != nil && r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r != nil && r.Err != nil {
		return false
	}
	return f.inner.Has(digest, kind, key)
}

// apply runs the script for one erroring operation.
func (f *Fault) apply(op, name string) error {
	r := f.check(op, name)
	if r == nil {
		return nil
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.Err != nil {
		return fmt.Errorf("store: injected %s %s: %w", op, name, r.Err)
	}
	return nil
}

// ReadFile implements Backend.
func (f *Fault) ReadFile(name string) ([]byte, error) {
	r := f.check("readfile", name)
	if r != nil && r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r != nil && r.Err != nil {
		return nil, fmt.Errorf("store: injected readfile %s: %w", name, r.Err)
	}
	data, err := f.inner.ReadFile(name)
	if err == nil && r != nil && r.Corrupt {
		return corrupt(data), nil
	}
	return data, err
}

// WriteFile implements Backend.
func (f *Fault) WriteFile(name string, data []byte) error {
	if err := f.apply("writefile", name); err != nil {
		return err
	}
	return f.inner.WriteFile(name, data)
}

// CreateExclusive implements Backend.
func (f *Fault) CreateExclusive(name string, data []byte) error {
	if err := f.apply("createexclusive", name); err != nil {
		return err
	}
	return f.inner.CreateExclusive(name, data)
}

// Stat implements Backend.
func (f *Fault) Stat(name string) (FileInfo, error) {
	if err := f.apply("stat", name); err != nil {
		return FileInfo{}, err
	}
	return f.inner.Stat(name)
}

// List implements Backend.
func (f *Fault) List(dir string) ([]FileInfo, error) {
	if err := f.apply("list", dir); err != nil {
		return nil, err
	}
	return f.inner.List(dir)
}

// Rename implements Backend.
func (f *Fault) Rename(oldname, newname string) error {
	if err := f.apply("rename", oldname); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

// Remove implements Backend.
func (f *Fault) Remove(name string) error {
	if err := f.apply("remove", name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Touch implements Backend.
func (f *Fault) Touch(name string) error {
	if err := f.apply("touch", name); err != nil {
		return err
	}
	return f.inner.Touch(name)
}
