package store

import (
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"net/http"
	"strings"
)

// This file is the server half of the remote store: NewHandler exposes a
// Backend over HTTP, and remote.go's Remote is the matching client. `synth
// serve` mounts the handler under /api/v1/store (behind its bearer-token
// auth), turning the serving node into the cluster's shared storage: worker
// nodes read and write artifacts and coordination files through it instead
// of through a shared filesystem.

// maxPayloadBytes bounds one artifact payload or coordination file crossing
// the HTTP transport. The largest real artifacts (compiled programs,
// stream profiles) are well under a megabyte; 32 MB leaves room without
// letting one request buffer unbounded memory.
const maxPayloadBytes = 32 << 20

// coordPrefixes are the only subtrees remote coordination-file operations
// may touch: the cluster job queue and the pipeline's in-progress markers.
// Artifact entries are reachable only through Get/Put/Has, so a remote
// client cannot rewrite envelopes through the file API.
var coordPrefixes = []string{"cluster/", WIPDir + "/"}

// coordName validates a remote coordination-file name: clean, relative,
// and inside an allowed subtree.
func coordName(name string) (string, error) {
	clean, err := CleanName(name)
	if err != nil {
		return "", err
	}
	for _, p := range coordPrefixes {
		if strings.HasPrefix(clean, p) {
			return clean, nil
		}
	}
	return "", errors.New("store: remote file access is limited to cluster/ and " + WIPDir + "/")
}

// NewHandler exposes b over HTTP for Remote clients. Routes (relative to
// the mount point, so wrap with http.StripPrefix):
//
//	GET  /get?digest=&kind=&key=     artifact payload, or 404
//	PUT  /put?digest=&kind=&key=     store the request body as the payload
//	GET  /has?digest=&kind=&key=     204 when present, 404 when absent
//	GET  /file?name=                 coordination file contents, or 404
//	PUT  /file?name=                 atomically write the body
//	POST /create?name=               exclusive create (409 when it exists)
//	GET  /stat?name=                 {"name","mtime"} metadata, or 404
//	GET  /list?dir=                  JSON array of {"name","mtime"}
//	POST /rename?from=&to=           atomic rename (404 when from is gone)
//	POST /remove?name=               delete (404 when already gone)
//	POST /touch?name=                refresh mtime (404 when gone)
//
// Status codes carry the protocol's only semantics: 404 maps to
// fs.ErrNotExist and 409 to fs.ErrExist on the client, so queue claim
// races and marker claims behave identically over HTTP and on a local
// disk. Coordination-file routes are restricted to the cluster queue and
// in-progress marker subtrees.
func NewHandler(b Backend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/get", func(w http.ResponseWriter, r *http.Request) {
		payload, ok := b.Get(r.URL.Query().Get("digest"), r.URL.Query().Get("kind"), r.URL.Query().Get("key"))
		if !ok {
			http.Error(w, "no such artifact", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(payload)
	})
	mux.HandleFunc("/put", func(w http.ResponseWriter, r *http.Request) {
		if !methodIs(w, r, http.MethodPut, http.MethodPost) {
			return
		}
		payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPayloadBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q := r.URL.Query()
		if err := b.Put(q.Get("digest"), q.Get("kind"), q.Get("key"), payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/has", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if !b.Has(q.Get("digest"), q.Get("kind"), q.Get("key")) {
			http.Error(w, "no such artifact", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/file", func(w http.ResponseWriter, r *http.Request) {
		name, err := coordName(r.URL.Query().Get("name"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			data, err := b.ReadFile(name)
			if err != nil {
				fileError(w, err)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
		case http.MethodPut, http.MethodPost:
			data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPayloadBytes))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := b.WriteFile(name, data); err != nil {
				fileError(w, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			w.Header().Set("Allow", "GET, PUT, POST")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/create", func(w http.ResponseWriter, r *http.Request) {
		if !methodIs(w, r, http.MethodPost, http.MethodPut) {
			return
		}
		name, err := coordName(r.URL.Query().Get("name"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPayloadBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := b.CreateExclusive(name, data); err != nil {
			fileError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/stat", func(w http.ResponseWriter, r *http.Request) {
		name, err := coordName(r.URL.Query().Get("name"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fi, err := b.Stat(name)
		if err != nil {
			fileError(w, err)
			return
		}
		writeFileInfoJSON(w, fi)
	})
	mux.HandleFunc("/list", func(w http.ResponseWriter, r *http.Request) {
		dir, err := coordName(r.URL.Query().Get("dir"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		infos, err := b.List(dir)
		if err != nil {
			fileError(w, err)
			return
		}
		if infos == nil {
			infos = []FileInfo{}
		}
		writeFileInfoJSON(w, infos)
	})
	mux.HandleFunc("/rename", func(w http.ResponseWriter, r *http.Request) {
		if !methodIs(w, r, http.MethodPost) {
			return
		}
		from, err := coordName(r.URL.Query().Get("from"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		to, err := coordName(r.URL.Query().Get("to"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := b.Rename(from, to); err != nil {
			fileError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/remove", func(w http.ResponseWriter, r *http.Request) {
		if !methodIs(w, r, http.MethodPost) {
			return
		}
		name, err := coordName(r.URL.Query().Get("name"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := b.Remove(name); err != nil {
			fileError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/touch", func(w http.ResponseWriter, r *http.Request) {
		if !methodIs(w, r, http.MethodPost) {
			return
		}
		name, err := coordName(r.URL.Query().Get("name"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := b.Touch(name); err != nil {
			fileError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// methodIs enforces an allowed-method set, answering 405 otherwise.
func methodIs(w http.ResponseWriter, r *http.Request, allowed ...string) bool {
	for _, m := range allowed {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	return false
}

// fileError maps a coordination-op error onto the protocol's status codes:
// not-exist → 404, exist → 409, anything else → 500.
func fileError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, fs.ErrNotExist):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, fs.ErrExist):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeFileInfoJSON renders v (FileInfo or []FileInfo) as JSON.
func writeFileInfoJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
