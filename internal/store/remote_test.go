package store_test

import (
	"errors"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// remotePair spins up a filesystem store, serves it over an httptest
// server, and returns a Remote client pointed at it plus the local store
// for cross-checking.
func remotePair(t *testing.T) (*store.Remote, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	srv := httptest.NewServer(http.StripPrefix("/api/v1/store", store.NewHandler(st)))
	t.Cleanup(srv.Close)
	rem, err := store.OpenRemote(srv.URL+"/api/v1/store", "")
	if err != nil {
		t.Fatalf("open remote: %v", err)
	}
	return rem, st
}

func TestRemoteArtifactRoundTrip(t *testing.T) {
	rem, st := remotePair(t)

	payload := []byte(`{"hello":"fabric"}`)
	if err := rem.Put("cafe01", "profile", "some/key", payload); err != nil {
		t.Fatalf("remote put: %v", err)
	}
	// The write landed in the coordinator's local store...
	got, ok := st.Get("cafe01", "profile", "some/key")
	if !ok || string(got) != string(payload) {
		t.Fatalf("local get after remote put: ok=%v payload=%q", ok, got)
	}
	// ...and reads back identically over the wire.
	got, ok = rem.Get("cafe01", "profile", "some/key")
	if !ok || string(got) != string(payload) {
		t.Fatalf("remote get: ok=%v payload=%q", ok, got)
	}
	if !rem.Has("cafe01", "profile", "some/key") {
		t.Fatal("remote has: want true")
	}
	if rem.Has("cafe01", "profile", "other/key") {
		t.Fatal("remote has of absent key: want false")
	}
	if _, ok := rem.Get("beef02", "profile", "k"); ok {
		t.Fatal("remote get of absent digest: want miss")
	}
}

func TestRemoteCoordinationFiles(t *testing.T) {
	rem, st := remotePair(t)

	name := "cluster/pending/job1.json"
	if _, err := rem.ReadFile(name); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("read missing file: err=%v, want fs.ErrNotExist", err)
	}
	if err := rem.WriteFile(name, []byte(`{"job":1}`)); err != nil {
		t.Fatalf("write file: %v", err)
	}
	data, err := rem.ReadFile(name)
	if err != nil || string(data) != `{"job":1}` {
		t.Fatalf("read back: %q, %v", data, err)
	}
	// The bytes live in the coordinator's filesystem store.
	local, err := st.ReadFile(name)
	if err != nil || string(local) != `{"job":1}` {
		t.Fatalf("local read: %q, %v", local, err)
	}

	// Exclusive create: first wins, second maps the 409 to fs.ErrExist.
	marker := "wip/abc.json"
	if err := rem.CreateExclusive(marker, []byte("claim")); err != nil {
		t.Fatalf("create exclusive: %v", err)
	}
	if err := rem.CreateExclusive(marker, []byte("claim")); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("second create: err=%v, want fs.ErrExist", err)
	}

	// Stat and Touch round-trip mtimes.
	before, err := rem.Stat(marker)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := rem.Touch(marker); err != nil {
		t.Fatalf("touch: %v", err)
	}
	after, err := rem.Stat(marker)
	if err != nil {
		t.Fatalf("stat after touch: %v", err)
	}
	if !after.ModTime.After(before.ModTime) {
		t.Fatalf("touch did not advance mtime: %v -> %v", before.ModTime, after.ModTime)
	}

	// List sees exactly the one pending file; a missing dir lists empty.
	infos, err := rem.List("cluster/pending")
	if err != nil || len(infos) != 1 || infos[0].Name != "job1.json" {
		t.Fatalf("list: %+v, %v", infos, err)
	}
	empty, err := rem.List("cluster/leased")
	if err != nil || len(empty) != 0 {
		t.Fatalf("list missing dir: %+v, %v", empty, err)
	}

	// Rename is the claim primitive: one winner, losers get fs.ErrNotExist.
	leased := "cluster/leased/job1@w0.json"
	if err := rem.Rename(name, leased); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if err := rem.Rename(name, leased); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("rename of gone file: err=%v, want fs.ErrNotExist", err)
	}
	if err := rem.Remove(leased); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := rem.Remove(leased); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("double remove: err=%v, want fs.ErrNotExist", err)
	}
}

func TestRemoteRejectsEscapingNames(t *testing.T) {
	rem, _ := remotePair(t)
	for _, name := range []string{
		"../secrets",
		"cluster/../../etc/passwd",
		"/etc/passwd",
		"manifest.json",     // outside the coordination subtrees
		"ab/cafe.json",      // artifact shard: only Get/Put/Has may touch it
		"cluster/../wip/x",  // normalizes outside cluster/ — fine, but check
		"wip/../cluster/..", // normalizes to cluster, a directory escape
	} {
		err := rem.WriteFile(name, []byte("x"))
		if err == nil {
			// "cluster/../wip/x" cleans to "wip/x", which is legal.
			if clean, cerr := store.CleanName(name); cerr == nil &&
				(strings.HasPrefix(clean, "cluster/") || strings.HasPrefix(clean, "wip/")) {
				continue
			}
			t.Errorf("WriteFile(%q) succeeded, want rejection", name)
		}
	}
}

func TestCleanName(t *testing.T) {
	good := map[string]string{
		"cluster/pending/a.json": "cluster/pending/a.json",
		"cluster//x":             "cluster/x",
		"wip/./m.json":           "wip/m.json",
	}
	for in, want := range good {
		got, err := store.CleanName(in)
		if err != nil || got != want {
			t.Errorf("CleanName(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, in := range []string{"", "/abs", "..", "../x", "a/../../x", `a\b`, "c:/x"} {
		if got, err := store.CleanName(in); err == nil {
			t.Errorf("CleanName(%q) = %q, want error", in, got)
		}
	}
}

func TestOpenRemoteURLValidation(t *testing.T) {
	if _, err := store.OpenRemote("not a url", ""); err == nil {
		t.Fatal("want error for garbage URL")
	}
	if _, err := store.OpenRemote("ftp://host/x", ""); err == nil {
		t.Fatal("want error for non-http scheme")
	}
	if _, err := store.OpenRemote("http://host:1234", ""); err != nil {
		t.Fatalf("bare host:port should be accepted: %v", err)
	}
}
