package store_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/compiler"
	"repro/internal/cpu"
	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/sfgl"
	"repro/internal/store"
	"repro/internal/vm"
)

// testProfile builds a small hand-made profile exercising every optional
// field: branch info, loops with parents, mem classes, func calls.
func testProfile() *profile.Profile {
	g := &sfgl.Graph{
		FuncNames: []string{"main", "helper"},
		FuncCalls: []uint64{1, 42},
		Nodes: []*sfgl.Node{
			{ID: 0, Func: 0, Block: 0, Count: 100,
				Instrs: []sfgl.InstrInfo{
					{Op: isa.LD, Class: isa.ClassLoad, MemClass: 3},
					{Op: isa.ADD, Class: isa.ClassIntALU, MemClass: -1},
					{Op: isa.BR, Class: isa.ClassBranch, MemClass: -1},
				},
				Branch: &sfgl.BranchInfo{Taken: 60, Total: 100, Transitions: 20,
					TakenRate: 0.6, TransRate: 0.2020202, Hard: true}},
			{ID: 1, Func: 1, Block: 0, Count: 42,
				Instrs: []sfgl.InstrInfo{{Op: isa.RET, Class: isa.ClassRet, MemClass: -1}}},
		},
		Edges: []*sfgl.Edge{{From: 0, To: 0, Count: 60}, {From: 0, To: 1, Count: 40}},
		Loops: []*sfgl.Loop{
			{ID: 0, Func: 0, Header: 0, Nodes: []int{0}, Parent: -1, Depth: 1,
				Entries: 40, Iterations: 100},
		},
	}
	return &profile.Profile{
		Workload: "test/tiny",
		Graph:    g,
		TotalDyn: 342,
		Mix: func() (m [isa.NumClasses]uint64) {
			m[isa.ClassLoad] = 100
			m[isa.ClassIntALU] = 100
			m[isa.ClassBranch] = 100
			m[isa.ClassRet] = 42
			return
		}(),
		CacheCfg:   cache.Config{Name: "profile-8KB", Size: 8192, LineSize: 32, Assoc: 2},
		OutputHash: 0xdeadbeef,
	}
}

// TestStoreProfileRoundTrip requires marshal → unmarshal → marshal to be
// byte-identical and the decoded structure to deep-equal the original.
func TestStoreProfileRoundTrip(t *testing.T) {
	p := testProfile()
	enc1, err := store.EncodeProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := store.DecodeProfile(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := store.EncodeProfile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Errorf("re-marshal differs:\n%s\nvs\n%s", enc1, enc2)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Error("decoded profile does not deep-equal the original")
	}
}

const progSrc = `
int acc;
void main() {
  int i;
  for (i = 0; i < 10; i = i + 1) {
    acc = acc + i;
  }
  print(acc);
}
`

func compileSrc(t *testing.T, target *isa.Desc, level compiler.OptLevel) *isa.Program {
	t.Helper()
	ast, err := hlc.Parse(progSrc)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := hlc.Check(ast)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(cp, target, level)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestStoreProgramRoundTrip checks that a compiled program survives the
// disk encoding: structure deep-equals, the ISA descriptor is re-linked to
// the canonical pointer, and the decoded program executes identically.
func TestStoreProgramRoundTrip(t *testing.T) {
	for _, target := range []*isa.Desc{isa.X86, isa.AMD64, isa.IA64} {
		prog := compileSrc(t, target, compiler.O2)
		enc, err := store.EncodeProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		got, err := store.DecodeProgram(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got.ISA != target {
			t.Errorf("%s: ISA not re-linked to the canonical descriptor", target.Name)
		}
		if !reflect.DeepEqual(prog.Funcs, got.Funcs) ||
			!reflect.DeepEqual(prog.Globals, got.Globals) || prog.Entry != got.Entry {
			t.Errorf("%s: decoded program differs structurally", target.Name)
		}
		want, err := vm.New(prog).Run(vm.Config{})
		if err != nil {
			t.Fatal(err)
		}
		have, err := vm.New(got).Run(vm.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if want.OutputHash != have.OutputHash || want.DynInstrs != have.DynInstrs {
			t.Errorf("%s: decoded program executes differently", target.Name)
		}
	}
}

// TestStoreProgramDecodeRejects covers the validation paths.
func TestStoreProgramDecodeRejects(t *testing.T) {
	for name, data := range map[string]string{
		"bad json":    `{`,
		"unknown isa": `{"isa":"z80","funcs":[],"entry":0}`,
		"bad entry":   `{"isa":"amd64v","funcs":[],"entry":0}`,
	} {
		if _, err := store.DecodeProgram([]byte(data)); err == nil {
			t.Errorf("%s: decode accepted invalid input", name)
		}
	}
}

// TestStoreCloneRoundTrip round-trips a clone record and re-parses its
// source, the way the pipeline's disk tier rebuilds clone artifacts.
func TestStoreCloneRoundTrip(t *testing.T) {
	c := &store.Clone{Source: progSrc, Profile: testProfile()}
	c.Report.Workload = "test/tiny"
	c.Report.Reduction = 7
	c.Report.Coverage = 0.998
	enc, err := store.EncodeClone(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.DecodeClone(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Error("decoded clone does not deep-equal the original")
	}
	if _, err := hlc.Parse(got.Source); err != nil {
		t.Errorf("round-tripped source no longer parses: %v", err)
	}
	if _, err := store.DecodeClone([]byte(`{"source":""}`)); err == nil {
		t.Error("decode accepted a clone with no source")
	}
}

func TestStoreSimRoundTrip(t *testing.T) {
	s := cpu.Summary{
		Machine: "2-wide OoO", Cycles: 123456, Instrs: 100000,
		CPI: 1.23456, TimeSec: 0.000123456,
		L1:        cache.Stats{Accesses: 40000, Misses: 1200},
		L2:        cache.Stats{Accesses: 1200, Misses: 300},
		BranchAcc: 0.97, Branches: 9000, Mispredicts: 270,
	}
	enc, err := store.EncodeSim(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.DecodeSim(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("decoded summary differs:\n%+v\n%+v", got, s)
	}
	if _, err := store.EncodeSim(cpu.Summary{}); err == nil {
		t.Error("encode accepted an empty simulation")
	}
	if _, err := store.DecodeSim([]byte(`{"instrs":0}`)); err == nil {
		t.Error("decode accepted an empty simulation")
	}
	if _, err := store.DecodeSim([]byte(`not json`)); err == nil {
		t.Error("decode accepted garbage")
	}
}

// TestStoreGetPut exercises the envelope contract: hits require matching
// digest, kind, key, schema, and checksum.
func TestStoreGetPut(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"x":1}`)
	if err := s.Put("0123456789abcdef", store.KindProfile, "k1", payload); err != nil {
		t.Fatal(err)
	}

	got, ok := s.Get("0123456789abcdef", store.KindProfile, "k1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round-trip failed: ok=%v payload=%s", ok, got)
	}
	if _, ok := s.Get("0123456789abcdef", store.KindProgram, "k1"); ok {
		t.Error("kind mismatch must be a miss")
	}
	if _, ok := s.Get("0123456789abcdef", store.KindProfile, "other-key"); ok {
		t.Error("key mismatch (digest collision) must be a miss")
	}
	if _, ok := s.Get("fedcba9876543210", store.KindProfile, "k1"); ok {
		t.Error("absent digest must be a miss")
	}

	// Overwrite is allowed and atomic.
	payload2 := []byte(`{"x":2}`)
	if err := s.Put("0123456789abcdef", store.KindProfile, "k1", payload2); err != nil {
		t.Fatal(err)
	}
	got, ok = s.Get("0123456789abcdef", store.KindProfile, "k1")
	if !ok || !bytes.Equal(got, payload2) {
		t.Error("overwrite did not take effect")
	}

	if n, err := s.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1 entry", n, err)
	}
}

// TestStoreCorruptionIsMiss damages stored entries in several ways and
// requires every one to read as a miss, never an error or a wrong value.
func TestStoreCorruptionIsMiss(t *testing.T) {
	root := t.TempDir()
	s, err := store.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	const digest = "00aa00aa00aa00aa"
	corruptions := map[string]func(path string) error{
		"truncated": func(p string) error {
			data, _ := os.ReadFile(p)
			return os.WriteFile(p, data[:len(data)/2], 0o644)
		},
		"garbage": func(p string) error {
			return os.WriteFile(p, []byte("not json at all"), 0o644)
		},
		"bit flip in payload": func(p string) error {
			data, _ := os.ReadFile(p)
			i := bytes.Index(data, []byte(`"x":1`))
			data[i+4] = '9'
			return os.WriteFile(p, data, 0o644)
		},
		"stale schema": func(p string) error {
			data, _ := os.ReadFile(p)
			data = bytes.Replace(data, []byte(fmt.Sprintf(`"schema":%d`, store.SchemaVersion)), []byte(`"schema":999`), 1)
			return os.WriteFile(p, data, 0o644)
		},
		"empty file": func(p string) error {
			return os.WriteFile(p, nil, 0o644)
		},
	}
	for name, corrupt := range corruptions {
		if err := s.Put(digest, store.KindProfile, "key", []byte(`{"x":1}`)); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(root, digest[:2], digest+".json")
		if err := corrupt(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, ok := s.Get(digest, store.KindProfile, "key"); ok {
			t.Errorf("%s: corrupted entry was served as a hit", name)
		}
	}
}

// TestStoreFingerprintGolden pins the checksum function across processes
// and platforms: these values must never change while the envelope checksum
// is FNV-1a,
// or every existing store silently invalidates.
func TestStoreFingerprintGolden(t *testing.T) {
	golden := map[string]string{
		"":            "cbf29ce484222325",
		"hello":       "a430d84680aabd0b",
		`{"ok":true}`: "1b4b9c59b3854dc5",
	}
	for in, want := range golden {
		if got := store.Fingerprint([]byte(in)); got != want {
			t.Errorf("Fingerprint(%q) = %s, want %s", in, got, want)
		}
	}
}

// TestStoreOpenRejectsEmpty covers the configuration error path.
func TestStoreOpenRejectsEmpty(t *testing.T) {
	if _, err := store.Open(""); err == nil {
		t.Error("Open(\"\") must fail")
	}
}
