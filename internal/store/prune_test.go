package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// prunableStore builds a store holding n entries whose mtimes step one
// hour apart, oldest first, returning the store and the entry digests in
// age order.
func prunableStore(t *testing.T, n int) (*Store, []string) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var digests []string
	base := time.Now().Add(-time.Duration(n) * time.Hour)
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf(`{"i":%d}`, i))
		digest := Fingerprint([]byte(fmt.Sprintf("entry-%d", i)))
		if err := s.Put(digest, KindMarker, fmt.Sprintf("key-%d", i), payload); err != nil {
			t.Fatal(err)
		}
		mtime := base.Add(time.Duration(i) * time.Hour)
		if err := os.Chtimes(s.path(digest), mtime, mtime); err != nil {
			t.Fatal(err)
		}
		digests = append(digests, digest)
	}
	return s, digests
}

// TestStorePruneMaxAge checks the age pass removes exactly the entries
// older than the cutoff.
func TestStorePruneMaxAge(t *testing.T) {
	s, digests := prunableStore(t, 6)
	// Entries are 6h,5h,…,1h old; a 3.5h cutoff removes the oldest three.
	stats, err := s.Prune(PruneOptions{MaxAge: 3*time.Hour + 30*time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 6 || stats.Removed != 3 {
		t.Fatalf("stats: %+v", stats)
	}
	for i, d := range digests {
		_, ok := s.Get(d, KindMarker, fmt.Sprintf("key-%d", i))
		if want := i >= 3; ok != want {
			t.Errorf("entry %d present=%v, want %v", i, ok, want)
		}
	}
}

// TestStorePruneMaxBytes checks the size pass evicts oldest-first until
// the store fits the budget.
func TestStorePruneMaxBytes(t *testing.T) {
	s, digests := prunableStore(t, 5)
	var total int64
	for i, d := range digests {
		info, err := os.Stat(s.path(d))
		if err != nil {
			t.Fatal(err)
		}
		if i >= 3 { // budget: exactly the two newest entries
			total += info.Size()
		}
	}
	stats, err := s.Prune(PruneOptions{MaxBytes: total})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 3 {
		t.Fatalf("stats: %+v (budget %d)", stats, total)
	}
	n, err := s.Len()
	if err != nil || n != 2 {
		t.Fatalf("after prune: %d entries, %v", n, err)
	}
	if _, ok := s.Get(digests[4], KindMarker, "key-4"); !ok {
		t.Error("newest entry evicted")
	}
}

// TestStorePruneDryRun checks DryRun reports without removing.
func TestStorePruneDryRun(t *testing.T) {
	s, _ := prunableStore(t, 4)
	stats, err := s.Prune(PruneOptions{MaxAge: time.Hour, DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed == 0 {
		t.Fatalf("dry run reported nothing removable: %+v", stats)
	}
	if n, _ := s.Len(); n != 4 {
		t.Fatalf("dry run removed entries: %d left", n)
	}
}

// TestStorePruneSkipsTempAndQueue checks in-flight temp files and the
// cluster queue directory are never touched, however old they are.
func TestStorePruneSkipsTempAndQueue(t *testing.T) {
	s, _ := prunableStore(t, 2)
	old := time.Now().Add(-48 * time.Hour)

	tmp := filepath.Join(s.Root(), "ab", ".deadbeef.json.tmp-1")
	if err := os.MkdirAll(filepath.Dir(tmp), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	queueFile := filepath.Join(s.Root(), "cluster", "pending", "job.json")
	if err := os.MkdirAll(filepath.Dir(queueFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(queueFile, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{tmp, queueFile} {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}

	stats, err := s.Prune(PruneOptions{MaxAge: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	for _, p := range []string{tmp, queueFile} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s was pruned", p)
		}
	}
}

// TestStorePruneStaleWIPMarkers checks the wip/ sweep: markers past
// WIPMaxAge (crashed owners — no heartbeat refreshing the mtime) are
// removed, fresh markers and non-marker files survive, and without
// WIPMaxAge the subtree is untouched. This is the regression test for
// orphaned in-progress markers accumulating forever: the main prune pass
// only scans two-hex shard directories, so wip/ was invisible to GC.
func TestStorePruneStaleWIPMarkers(t *testing.T) {
	s, _ := prunableStore(t, 2)
	wip := filepath.Join(s.Root(), WIPDir)
	if err := os.MkdirAll(wip, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(wip, "00000000deadbeef.json")
	fresh := filepath.Join(wip, "00000000cafef00d.json")
	other := filepath.Join(wip, "README.txt")
	for _, p := range []string{stale, fresh, other} {
		if err := os.WriteFile(p, []byte(`{}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-48 * time.Hour)
	for _, p := range []string{stale, other} {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}

	// Without WIPMaxAge, markers are untouched no matter how old.
	stats, err := s.Prune(PruneOptions{MaxAge: 72 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WIPScanned != 0 || stats.WIPRemoved != 0 {
		t.Fatalf("wip swept without WIPMaxAge: %+v", stats)
	}
	if _, err := os.Stat(stale); err != nil {
		t.Fatal("stale marker removed without WIPMaxAge")
	}

	// DryRun reports the stale marker without removing it.
	stats, err = s.Prune(PruneOptions{WIPMaxAge: time.Hour, DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WIPScanned != 2 || stats.WIPRemoved != 1 {
		t.Fatalf("dry-run wip stats: %+v", stats)
	}
	if _, err := os.Stat(stale); err != nil {
		t.Fatal("dry run removed the stale marker")
	}

	// The real pass removes exactly the stale marker.
	stats, err = s.Prune(PruneOptions{WIPMaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WIPScanned != 2 || stats.WIPRemoved != 1 {
		t.Fatalf("wip stats: %+v", stats)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale marker survived")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh marker removed")
	}
	if _, err := os.Stat(other); err != nil {
		t.Error("non-marker file removed")
	}
	for i := 0; i < 2; i++ {
		d := Fingerprint([]byte(fmt.Sprintf("entry-%d", i)))
		if _, ok := s.Get(d, KindMarker, fmt.Sprintf("key-%d", i)); !ok {
			t.Errorf("cache entry %d disturbed by wip sweep", i)
		}
	}
}

// TestStorePruneZeroOptions checks the zero PruneOptions removes nothing.
func TestStorePruneZeroOptions(t *testing.T) {
	s, _ := prunableStore(t, 3)
	stats, err := s.Prune(PruneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 0 || stats.Scanned != 3 {
		t.Fatalf("stats: %+v", stats)
	}
}
