package store_test

import (
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// TestRemoteTelemetryCounts pins the remote store's round-trip accounting:
// every wire operation counts a request, misses are requests (not errors),
// transport failures are errors, and Instrument exposes it all under
// synth_store_remote_* with a latency histogram.
func TestRemoteTelemetryCounts(t *testing.T) {
	rem, _ := remotePair(t)
	reg := telemetry.NewRegistry()
	rem.Instrument(reg)

	if err := rem.Put("cafe01", "profile", "some/key", []byte(`{}`)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, ok := rem.Get("cafe01", "profile", "some/key"); !ok {
		t.Fatal("get: want hit")
	}
	if _, ok := rem.Get("beef02", "profile", "k"); ok {
		t.Fatal("get of absent digest: want miss")
	}
	rem.Has("cafe01", "profile", "some/key")

	st := rem.Stats()
	if st.Requests["put"] != 1 || st.Requests["get"] != 2 || st.Requests["has"] != 1 {
		t.Fatalf("request counts = %+v", st.Requests)
	}
	if len(st.Errors) != 0 {
		t.Fatalf("healthy round-trips counted errors: %+v", st.Errors)
	}
	reqs, errs := st.Total()
	if reqs != 4 || errs != 0 {
		t.Fatalf("Total() = %d, %d; want 4, 0", reqs, errs)
	}

	// A dead endpoint: transport failures are errors.
	dead, err := store.OpenRemote("http://127.0.0.1:1/api/v1/store", "")
	if err != nil {
		t.Fatalf("open dead remote: %v", err)
	}
	if _, ok := dead.Get("cafe01", "profile", "k"); ok {
		t.Fatal("dead remote get: want miss")
	}
	dst := dead.Stats()
	if dst.Requests["get"] != 1 || dst.Errors["get"] != 1 {
		t.Fatalf("dead remote stats = %+v", dst)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := b.String()
	for _, line := range []string{
		`synth_store_remote_requests_total{op="get"} 2`,
		`synth_store_remote_requests_total{op="put"} 1`,
		`synth_store_remote_errors_total{op="get"} 0`,
		"synth_store_remote_seconds_count 4",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("scrape missing %q:\n%s", line, out)
		}
	}
}
