// Package store persists pipeline artifacts on disk as versioned JSON so
// that separate processes — repeated cmd/synth invocations, CI runs, or a
// long-lived `synth serve` — share one content-addressed artifact store
// instead of recompiling and re-profiling the workload × ISA × level cross
// product from scratch.
//
// Every entry is a self-describing envelope: a schema version, an artifact
// kind, the full canonical key the artifact was stored under, a checksum of
// the payload, and the payload itself. Readers validate all four before
// trusting the payload; any mismatch — truncated file, stale schema, digest
// collision, bit rot — is reported as a miss, never as an error, so a
// damaged store degrades to recomputation rather than failure.
//
// The package also owns the (de)serialization of the artifact kinds the
// pipeline persists: statistical profiles, compiled programs, and
// synthesized clones (see artifacts.go).
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// SchemaVersion is the store's on-disk schema. Entries written under a
// different version are treated as misses, so a schema bump invalidates an
// old store directory without breaking readers. Version 2 added the
// simulation-config fingerprint to the pipeline's canonical keys; version
// 3 moved profiling and synthesis to the per-site stride-stream model
// (pipeline canonical keys v3), partitioning stream-keyed artifacts from
// single-class ones; version 4 added the generation stage and its report
// artifacts (pipeline canonical keys v4); version 5 invalidates artifacts
// simulated or synthesized before the timing model's store-queue and
// dependence-chain changes (pipeline canonical keys v5).
const SchemaVersion = 5

// Artifact kinds. An entry's kind must match the reader's expectation, so
// a digest collision between two different artifact types reads as a miss.
const (
	KindProfile = "profile" // a profile.Profile (statistical profile JSON)
	KindProgram = "program" // a compiled isa.Program
	KindClone   = "clone"   // a synthesized clone (source + report + profile)
	KindMarker  = "marker"  // a validation marker carrying no payload data
	KindSim     = "sim"     // a timing-simulation summary (cpu.Summary)
	// KindGenerate is a workload-generation report (generate.Report JSON):
	// the requested-vs-achieved outcome of one directed generation run.
	KindGenerate = "generate"
)

// Store is a content-addressed artifact store rooted at one directory.
// Entries are named by digest and sharded into two-hex-character
// subdirectories. Writes are atomic (temp file + rename), so concurrent
// processes sharing a root never observe partial entries. A Store is safe
// for concurrent use.
type Store struct {
	root string
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty root directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// path maps a digest to its sharded file path.
func (s *Store) path(digest string) string {
	shard := "00"
	if len(digest) >= 2 {
		shard = digest[:2]
	}
	return filepath.Join(s.root, shard, digest+".json")
}

// envelope is the on-disk entry format.
type envelope struct {
	Schema   int             `json:"schema"`
	Kind     string          `json:"kind"`
	Key      string          `json:"key"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// Fingerprint returns the printable 64-bit FNV-1a hash of data. It is the
// checksum used inside envelopes and the content address used for artifacts
// that have no pipeline key of their own (externally loaded profiles).
func Fingerprint(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Get returns the payload stored under digest, or ok=false if the entry is
// absent, unreadable, written under a different schema version, of the
// wrong kind, keyed by a different canonical key (a digest collision), or
// fails its checksum. Corruption is a miss by design: the store is a cache,
// and the caller recomputes.
func (s *Store) Get(digest, kind, key string) (payload []byte, ok bool) {
	data, err := os.ReadFile(s.path(digest))
	if err != nil {
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, false
	}
	if env.Schema != SchemaVersion || env.Kind != kind || env.Key != key {
		return nil, false
	}
	if Fingerprint(env.Payload) != env.Checksum {
		return nil, false
	}
	return env.Payload, true
}

// Has reports whether a valid entry exists for (digest, kind, key) — the
// same validation Get performs, discarding the payload. Dedup decisions
// (skip a cluster job whose artifacts are already stored) use Has so that a
// corrupt or stale entry counts as absent and the work is redone.
func (s *Store) Has(digest, kind, key string) bool {
	_, ok := s.Get(digest, kind, key)
	return ok
}

// Put writes payload under digest, atomically replacing any existing entry.
// kind and key are stored in the envelope and re-verified by Get.
func (s *Store) Put(digest, kind, key string, payload []byte) error {
	path := s.path(digest)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	data, err := json.Marshal(envelope{
		Schema:   SchemaVersion,
		Kind:     kind,
		Key:      key,
		Checksum: Fingerprint(payload),
		Payload:  payload,
	})
	if err != nil {
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	if err := WriteFileAtomic(path, data); err != nil {
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	return nil
}

// WriteFileAtomic writes data to path via a dot-prefixed temp file in the
// same directory followed by a rename, so concurrent readers never observe
// a partial file. It is the store's one write convention, shared with the
// cluster queue's coordination files (and honored by Prune, which skips
// the dot-prefixed in-flight temps).
func WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("write %v, close %v", werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Len walks the store and counts entries, for diagnostics and tests.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
