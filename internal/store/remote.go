package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// WIPDir is the store subtree holding the pipeline's in-progress markers
// (see pipeline's cross-process single-flight gate). It lives here because
// both backends must agree on the name: the filesystem store hosts it, the
// HTTP transport allowlists it, and Prune ignores it (it is not a
// two-hex-character artifact shard).
const WIPDir = "wip"

// Remote is a Backend client speaking to a `synth serve` node's
// /api/v1/store API (see NewHandler for the wire protocol). It lets a
// worker process participate in a cluster without sharing any filesystem
// with the coordinator: artifacts, the job queue, and in-progress markers
// all round-trip through the serving node, which applies them to its local
// store with the same atomicity guarantees local callers get.
//
// Get and Has treat every transport failure as a miss — the store is a
// cache, and the caller recomputes. Mutating operations return errors for
// the caller (the cluster worker's retry/backoff loop) to handle.
type Remote struct {
	base   string
	token  string
	client *http.Client
	// ops counts round-trips per wire operation (always on); latency is
	// the request-latency histogram attached by Instrument (nil until
	// then). See remote_telemetry.go.
	ops     map[string]*remoteOpStats
	latency atomic.Pointer[telemetry.Histogram]
}

// OpenRemote returns a Remote speaking to base — the serve node's store
// mount, e.g. "http://host:8091/api/v1/store" (a bare "http://host:8091"
// is completed with the standard mount path). token, when non-empty, is
// sent as a bearer token on every request, matching `synth serve -token`.
func OpenRemote(base, token string) (*Remote, error) {
	u, err := url.Parse(base)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("store: remote URL %q (want http[s]://host:port[/api/v1/store])", base)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/api/v1/store"
	}
	return &Remote{
		base:  strings.TrimRight(u.String(), "/"),
		token: token,
		// Every operation is one small request; a stuck node should fail a
		// worker's op (and trigger its backoff) rather than hang it.
		client: &http.Client{Timeout: 30 * time.Second},
		ops:    newRemoteOpStats(),
	}, nil
}

// do performs one request and returns the response. Non-2xx statuses are
// returned as the mapped protocol errors (404 → fs.ErrNotExist, 409 →
// fs.ErrExist) with the body's first line as context.
func (r *Remote) do(method, route string, query url.Values, body []byte) (*http.Response, error) {
	op, start := opName(method, route), time.Now()
	u := r.base + "/" + route
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, u, rd)
	if err != nil {
		r.record(op, start, true)
		return nil, err
	}
	if r.token != "" {
		req.Header.Set("Authorization", "Bearer "+r.token)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.record(op, start, true)
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		r.record(op, start, false)
		return resp, nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	detail := strings.TrimSpace(string(msg))
	name := route
	if n := query.Get("name"); n != "" {
		name = n
	} else if n := query.Get("from"); n != "" {
		name = n
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		// A miss is an expected protocol outcome, not a transport error.
		r.record(op, start, false)
		return nil, notExist(name)
	case http.StatusConflict:
		r.record(op, start, false)
		return nil, exist(name)
	}
	r.record(op, start, true)
	return nil, fmt.Errorf("store: remote %s %s: %s: %s", method, route, resp.Status, detail)
}

// vals builds a url.Values from alternating key/value pairs.
func vals(kv ...string) url.Values {
	v := url.Values{}
	for i := 0; i+1 < len(kv); i += 2 {
		v.Set(kv[i], kv[i+1])
	}
	return v
}

// Get returns the payload stored under digest, or ok=false when the entry
// is absent — or unreachable: a network failure is a miss by design.
func (r *Remote) Get(digest, kind, key string) ([]byte, bool) {
	resp, err := r.do(http.MethodGet, "get", vals("digest", digest, "kind", kind, "key", key), nil)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxPayloadBytes))
	if err != nil {
		return nil, false
	}
	return payload, true
}

// Put writes payload under digest on the serving node.
func (r *Remote) Put(digest, kind, key string, payload []byte) error {
	resp, err := r.do(http.MethodPut, "put", vals("digest", digest, "kind", kind, "key", key), payload)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Has reports whether a valid entry exists for (digest, kind, key); an
// unreachable node reads as absent.
func (r *Remote) Has(digest, kind, key string) bool {
	resp, err := r.do(http.MethodGet, "has", vals("digest", digest, "kind", kind, "key", key), nil)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return true
}

// ReadFile returns the named coordination file's contents.
func (r *Remote) ReadFile(name string) ([]byte, error) {
	resp, err := r.do(http.MethodGet, "file", vals("name", name), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(io.LimitReader(resp.Body, maxPayloadBytes))
}

// WriteFile atomically writes the named coordination file on the node.
func (r *Remote) WriteFile(name string, data []byte) error {
	resp, err := r.do(http.MethodPut, "file", vals("name", name), data)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// CreateExclusive creates the named file, failing with fs.ErrExist when it
// already exists (mapped from the protocol's 409).
func (r *Remote) CreateExclusive(name string, data []byte) error {
	resp, err := r.do(http.MethodPost, "create", vals("name", name), data)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Stat returns the named file's metadata.
func (r *Remote) Stat(name string) (FileInfo, error) {
	resp, err := r.do(http.MethodGet, "stat", vals("name", name), nil)
	if err != nil {
		return FileInfo{}, err
	}
	defer resp.Body.Close()
	var fi FileInfo
	if err := json.NewDecoder(resp.Body).Decode(&fi); err != nil {
		return FileInfo{}, fmt.Errorf("store: remote stat %s: %w", name, err)
	}
	return fi, nil
}

// List returns the files directly under dir on the node.
func (r *Remote) List(dir string) ([]FileInfo, error) {
	resp, err := r.do(http.MethodGet, "list", vals("dir", dir), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var infos []FileInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("store: remote list %s: %w", dir, err)
	}
	return infos, nil
}

// Rename atomically moves oldname to newname on the node; a lost claim
// race surfaces as fs.ErrNotExist exactly as it does on a local disk.
func (r *Remote) Rename(oldname, newname string) error {
	resp, err := r.do(http.MethodPost, "rename", vals("from", oldname, "to", newname), nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Remove deletes the named file on the node.
func (r *Remote) Remove(name string) error {
	resp, err := r.do(http.MethodPost, "remove", vals("name", name), nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Touch refreshes the named file's mtime on the node (the heartbeat path:
// one POST per lease renewal).
func (r *Remote) Touch(name string) error {
	resp, err := r.do(http.MethodPost, "touch", vals("name", name), nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
