package store

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// remoteOps are the wire operations a Remote performs, in exposition
// order. "file_get"/"file_put" split the coordination-file route by
// method; everything else maps one route to one op.
var remoteOps = []string{
	"create", "file_get", "file_put", "get", "has", "list",
	"put", "remove", "rename", "stat", "touch",
}

// remoteOpStats counts one operation's requests and errors. The counters
// are always on — they are two atomic adds per round-trip — so `synth
// work -remote` can print a transport summary even without a registry.
type remoteOpStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
}

// RemoteStats is a point-in-time snapshot of a Remote's per-operation
// round-trip counts. Expected protocol outcomes (404 miss, 409 exists) are
// requests, not errors; errors are transport failures and unexpected
// statuses.
type RemoteStats struct {
	// Requests and Errors map operation name (get, put, touch, ...) to
	// counts; operations never performed are omitted.
	Requests map[string]uint64
	Errors   map[string]uint64
}

// Total returns the summed request and error counts across operations.
func (s RemoteStats) Total() (requests, errors uint64) {
	for _, n := range s.Requests {
		requests += n
	}
	for _, n := range s.Errors {
		errors += n
	}
	return
}

// newRemoteOpStats builds the fixed per-operation counter map.
func newRemoteOpStats() map[string]*remoteOpStats {
	m := make(map[string]*remoteOpStats, len(remoteOps))
	for _, op := range remoteOps {
		m[op] = &remoteOpStats{}
	}
	return m
}

// opName maps one request's (method, route) to its operation name.
func opName(method, route string) string {
	if route == "file" {
		if method == "PUT" {
			return "file_put"
		}
		return "file_get"
	}
	return route
}

// record counts one round-trip (and optionally its failure) and feeds the
// latency histogram when the Remote is instrumented.
func (r *Remote) record(op string, start time.Time, failed bool) {
	if s, ok := r.ops[op]; ok {
		s.requests.Add(1)
		if failed {
			s.errors.Add(1)
		}
	}
	if h := r.latency.Load(); h != nil {
		h.ObserveSince(start)
	}
}

// Stats returns a snapshot of the per-operation round-trip counts so far.
func (r *Remote) Stats() RemoteStats {
	st := RemoteStats{Requests: make(map[string]uint64), Errors: make(map[string]uint64)}
	for op, s := range r.ops {
		if n := s.requests.Load(); n > 0 {
			st.Requests[op] = n
		}
		if n := s.errors.Load(); n > 0 {
			st.Errors[op] = n
		}
	}
	return st
}

// Instrument exposes the Remote's round-trip counters in reg
// (synth_store_remote_requests_total / synth_store_remote_errors_total,
// labeled by op) and attaches a request latency histogram
// (synth_store_remote_seconds). Safe to call at most once per Remote;
// no-op on a nil registry.
func (r *Remote) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	ops := make([]string, 0, len(r.ops))
	for op := range r.ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		s := r.ops[op]
		reg.CounterFunc("synth_store_remote_requests_total",
			"Remote store round-trips, by operation.", s.requests.Load, "op", op)
		reg.CounterFunc("synth_store_remote_errors_total",
			"Remote store round-trips that failed (transport or unexpected status), by operation.",
			s.errors.Load, "op", op)
	}
	r.latency.Store(reg.Histogram("synth_store_remote_seconds",
		"Remote store round-trip latency.", telemetry.DefaultLatencyBuckets))
}
