package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// PruneOptions bounds a Prune pass. Zero values disable the corresponding
// limit, so the zero PruneOptions removes nothing.
type PruneOptions struct {
	// MaxAge evicts entries whose mtime is older than now−MaxAge
	// (0 = no age limit).
	MaxAge time.Duration
	// MaxBytes evicts oldest entries until the store's payload files total
	// at most MaxBytes (0 = no size limit).
	MaxBytes int64
	// WIPMaxAge evicts in-progress markers (the wip/ subtree) whose mtime
	// is older than now−WIPMaxAge (0 = leave markers alone). Owners
	// heartbeat their marker's mtime every few seconds while computing, so
	// any marker past a generous multiple of the pipeline's heartbeat TTL
	// is an orphan from a crashed process, not live work.
	WIPMaxAge time.Duration
	// DryRun reports what a real pass would remove without removing it.
	DryRun bool
}

// PruneStats reports one Prune pass.
type PruneStats struct {
	// Scanned counts the entries examined and their total size.
	Scanned      int
	ScannedBytes int64
	// Removed counts the entries evicted (or, under DryRun, that would
	// have been) and their total size.
	Removed      int
	RemovedBytes int64
	// WIPScanned and WIPRemoved count the in-progress markers examined and
	// the stale ones evicted (markers are counted separately from cache
	// entries: they are not payload data and never count toward MaxBytes).
	WIPScanned int
	WIPRemoved int
}

// pruneEntry is one eviction candidate.
type pruneEntry struct {
	path  string
	size  int64
	mtime time.Time
}

// Prune evicts store entries oldest-first by modification time: first every
// entry older than MaxAge, then — if the remainder still exceeds MaxBytes —
// the oldest survivors until the store fits. It considers only completed
// cache entries (sharded *.json files): in-flight temp files are never
// touched, so Prune cannot remove an entry mid-write (writes are atomic
// temp+rename anyway), and non-shard subdirectories such as the cluster job
// queue are skipped entirely. Eviction order is write order — Get does not
// refresh mtimes — so the policy is oldest-written-first, not LRU. Racing a
// concurrent writer is safe: losing an entry is a cache miss by design, and
// a remove that loses the race is ignored.
//
// When WIPMaxAge is set, Prune additionally sweeps the wip/ subtree of
// in-progress markers: a marker whose heartbeat (mtime) stopped more than
// WIPMaxAge ago belongs to a crashed owner and would otherwise accumulate
// forever, since the pipeline only steals — never deletes — markers it is
// not itself waiting on.
func (s *Store) Prune(opts PruneOptions) (PruneStats, error) {
	var stats PruneStats
	if err := s.pruneWIP(opts, &stats); err != nil {
		return stats, err
	}
	var entries []pruneEntry
	shards, err := os.ReadDir(s.root)
	if err != nil {
		return stats, fmt.Errorf("store: prune: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() || !isShardName(shard.Name()) {
			continue
		}
		dir := filepath.Join(s.root, shard.Name())
		files, err := os.ReadDir(dir)
		if err != nil {
			continue // shard vanished under a concurrent prune
		}
		for _, f := range files {
			if f.IsDir() || filepath.Ext(f.Name()) != ".json" || f.Name()[0] == '.' {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			entries = append(entries, pruneEntry{
				path:  filepath.Join(dir, f.Name()),
				size:  info.Size(),
				mtime: info.ModTime(),
			})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path // stable order for equal mtimes
	})

	stats.Scanned = len(entries)
	remaining := int64(0)
	for _, e := range entries {
		stats.ScannedBytes += e.size
		remaining += e.size
	}

	cutoff := time.Time{}
	if opts.MaxAge > 0 {
		cutoff = time.Now().Add(-opts.MaxAge)
	}
	for _, e := range entries {
		tooOld := !cutoff.IsZero() && e.mtime.Before(cutoff)
		overBudget := opts.MaxBytes > 0 && remaining > opts.MaxBytes
		if !tooOld && !overBudget {
			break // entries are oldest-first: nothing later qualifies either
		}
		if !opts.DryRun {
			if err := os.Remove(e.path); err != nil && !os.IsNotExist(err) {
				return stats, fmt.Errorf("store: prune: %w", err)
			}
		}
		stats.Removed++
		stats.RemovedBytes += e.size
		remaining -= e.size
	}
	return stats, nil
}

// pruneWIP removes stale in-progress markers under wip/ per WIPMaxAge.
func (s *Store) pruneWIP(opts PruneOptions, stats *PruneStats) error {
	if opts.WIPMaxAge <= 0 {
		return nil
	}
	dir := filepath.Join(s.root, WIPDir)
	files, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // no markers ever written
		}
		return fmt.Errorf("store: prune: %w", err)
	}
	cutoff := time.Now().Add(-opts.WIPMaxAge)
	for _, f := range files {
		if f.IsDir() || filepath.Ext(f.Name()) != ".json" {
			continue
		}
		info, err := f.Info()
		if err != nil {
			continue // marker released under a concurrent prune
		}
		stats.WIPScanned++
		if !info.ModTime().Before(cutoff) {
			continue
		}
		if !opts.DryRun {
			if err := os.Remove(filepath.Join(dir, f.Name())); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("store: prune: %w", err)
			}
		}
		stats.WIPRemoved++
	}
	return nil
}

// isShardName reports whether name is a two-hex-character shard directory.
func isShardName(name string) bool {
	if len(name) != 2 {
		return false
	}
	for i := 0; i < 2; i++ {
		c := name[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}
