package store_test

// Tests for the fault-injection Backend decorator itself. The decorator
// lives in fault.go (non-test code) so the cluster chaos suite and the
// cmd/synth fabric tests can wrap their backends with it; this file pins
// its scheduling semantics — op/name matching, skip/count windows,
// corruption, and miss-degradation on the cache-facing ops.

import (
	"errors"
	"io/fs"
	"testing"

	"repro/internal/store"
)

func faultPair(t *testing.T) (*store.Fault, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return store.NewFault(st), st
}

var errInjected = errors.New("injected flake")

func TestFaultErrorsAreTransient(t *testing.T) {
	f, _ := faultPair(t)
	f.Script(store.FaultRule{Op: "writefile", Match: "cluster/done/", Count: 2, Err: errInjected})

	// The first two done-dir writes flake, the third lands.
	for i := 0; i < 2; i++ {
		if err := f.WriteFile("cluster/done/a.json", []byte("x")); !errors.Is(err, errInjected) {
			t.Fatalf("write %d: err=%v, want injected", i, err)
		}
	}
	if err := f.WriteFile("cluster/done/a.json", []byte("x")); err != nil {
		t.Fatalf("third write should succeed: %v", err)
	}
	// Writes elsewhere were never affected.
	if err := f.WriteFile("cluster/pending/b.json", []byte("y")); err != nil {
		t.Fatalf("unmatched write: %v", err)
	}
	if got := f.Fired("writefile"); got != 2 {
		t.Fatalf("Fired(writefile) = %d, want 2", got)
	}
}

func TestFaultSkipWindow(t *testing.T) {
	f, _ := faultPair(t)
	f.Script(store.FaultRule{Op: "touch", Skip: 1, Count: 1, Err: errInjected})

	if err := f.WriteFile("cluster/leased/j.json", nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Touch("cluster/leased/j.json"); err != nil {
		t.Fatalf("first touch should pass through: %v", err)
	}
	if err := f.Touch("cluster/leased/j.json"); !errors.Is(err, errInjected) {
		t.Fatalf("second touch: err=%v, want injected", err)
	}
	if err := f.Touch("cluster/leased/j.json"); err != nil {
		t.Fatalf("third touch should recover: %v", err)
	}
}

func TestFaultGetDegradesToMiss(t *testing.T) {
	f, st := faultPair(t)
	if err := st.Put("cafe01", "profile", "k", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	f.Script(store.FaultRule{Op: "get", Count: 1, Err: errInjected})

	if _, ok := f.Get("cafe01", "profile", "k"); ok {
		t.Fatal("faulted get should read as a miss")
	}
	if payload, ok := f.Get("cafe01", "profile", "k"); !ok || string(payload) != `{"v":1}` {
		t.Fatalf("recovered get: ok=%v payload=%q", ok, payload)
	}

	f.Script(store.FaultRule{Op: "has", Count: 1, Err: errInjected})
	if f.Has("cafe01", "profile", "k") {
		t.Fatal("faulted has should read as absent")
	}
	if !f.Has("cafe01", "profile", "k") {
		t.Fatal("recovered has should read as present")
	}
}

func TestFaultCorruption(t *testing.T) {
	f, st := faultPair(t)
	if err := st.Put("cafe01", "profile", "k", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	f.Script(store.FaultRule{Op: "get", Count: 1, Corrupt: true})

	bad, ok := f.Get("cafe01", "profile", "k")
	if !ok {
		t.Fatal("corrupting get still returns a payload")
	}
	if string(bad) == `{"v":1}` {
		t.Fatal("payload was not corrupted")
	}
	good, ok := f.Get("cafe01", "profile", "k")
	if !ok || string(good) != `{"v":1}` {
		t.Fatalf("second get should be clean: ok=%v payload=%q", ok, good)
	}
}

func TestFaultPassThrough(t *testing.T) {
	// With no script, the decorator must be transparent for every op.
	f, _ := faultPair(t)
	name := "wip/m.json"
	if err := f.CreateExclusive(name, []byte("claim")); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateExclusive(name, nil); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("exclusive collision through decorator: %v", err)
	}
	if _, err := f.Stat(name); err != nil {
		t.Fatal(err)
	}
	infos, err := f.List("wip")
	if err != nil || len(infos) != 1 {
		t.Fatalf("list: %+v, %v", infos, err)
	}
	if err := f.Rename(name, "wip/n.json"); err != nil {
		t.Fatal(err)
	}
	data, err := f.ReadFile("wip/n.json")
	if err != nil || string(data) != "claim" {
		t.Fatalf("read: %q, %v", data, err)
	}
	if err := f.Remove("wip/n.json"); err != nil {
		t.Fatal(err)
	}
	if got := f.Fired(""); got != 0 {
		t.Fatalf("no faults should have fired, got %d", got)
	}
}
