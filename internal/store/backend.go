package store

import (
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"strings"
	"time"
)

// Backend is the storage abstraction the pipeline's disk tier and the
// cluster's coordination state run on. It has two facets: the
// content-addressed artifact operations (Get/Put/Has, the store's original
// surface) and a small coordination-file vocabulary — named files with
// atomic writes, exclusive creation, renames, and mtime heartbeats — that
// the cluster job queue and the pipeline's in-progress markers are built
// from. The filesystem Store implements it natively; Remote forwards every
// operation to a `synth serve` node over HTTP, so a worker process needs no
// shared disk at all.
//
// Coordination-file names are slash-separated paths relative to the store
// root (e.g. "cluster/pending/abc.json"). Implementations must reject
// absolute or dot-dot names, report missing files with errors satisfying
// errors.Is(err, fs.ErrNotExist), and report CreateExclusive collisions
// with fs.ErrExist, so callers can distinguish lost races from real
// failures without knowing which backend they run on.
type Backend interface {
	// Get returns the payload stored under digest, or ok=false when the
	// entry is absent, damaged, or unreachable — corruption and transport
	// failure both degrade to recomputation, never to an error.
	Get(digest, kind, key string) (payload []byte, ok bool)
	// Put writes payload under digest, atomically replacing any existing
	// entry.
	Put(digest, kind, key string, payload []byte) error
	// Has reports whether a valid entry exists for (digest, kind, key).
	Has(digest, kind, key string) bool

	// ReadFile returns the named coordination file's contents.
	ReadFile(name string) ([]byte, error)
	// WriteFile atomically writes the named coordination file, creating
	// parent directories as needed.
	WriteFile(name string, data []byte) error
	// CreateExclusive creates the named file with data, failing with
	// fs.ErrExist if it already exists. It is the one-winner claim
	// primitive behind the pipeline's in-progress markers.
	CreateExclusive(name string, data []byte) error
	// Stat returns the named file's metadata.
	Stat(name string) (FileInfo, error)
	// List returns the files directly under dir (subdirectories excluded).
	// A missing directory lists as empty, not as an error.
	List(dir string) ([]FileInfo, error)
	// Rename atomically moves oldname to newname. Exactly one of several
	// concurrent renamers of the same oldname succeeds; the rest observe
	// fs.ErrNotExist.
	Rename(oldname, newname string) error
	// Remove deletes the named file (fs.ErrNotExist when already gone).
	Remove(name string) error
	// Touch refreshes the named file's mtime — the heartbeat primitive for
	// leases and in-progress markers.
	Touch(name string) error
}

// FileInfo describes one coordination file in a Backend listing: its base
// name and last-write (or Touch) time.
type FileInfo struct {
	// Name is the file's base name within the listed directory.
	Name string `json:"name"`
	// ModTime is the last write or Touch.
	ModTime time.Time `json:"mtime"`
}

// CleanName validates and normalizes a coordination-file name: it must be
// a relative, slash-separated path that stays inside the store root (no
// leading "/", no "..", no drive letters). Both backends run every
// coordination operation through it, so a hostile or buggy name can never
// escape the store directory on either end of the HTTP transport.
func CleanName(name string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("store: empty file name")
	}
	if strings.Contains(name, "\\") || strings.Contains(name, ":") {
		return "", fmt.Errorf("store: invalid file name %q", name)
	}
	clean := path.Clean(name)
	if path.IsAbs(clean) || clean == "." || clean == ".." || strings.HasPrefix(clean, "../") {
		return "", fmt.Errorf("store: file name %q escapes the store root", name)
	}
	return clean, nil
}

// filePath maps a coordination-file name to its filesystem path.
func (s *Store) filePath(name string) (string, error) {
	clean, err := CleanName(name)
	if err != nil {
		return "", err
	}
	return filepath.Join(s.root, filepath.FromSlash(clean)), nil
}

// ReadFile returns the named coordination file's contents.
func (s *Store) ReadFile(name string) ([]byte, error) {
	p, err := s.filePath(name)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

// WriteFile atomically writes the named coordination file via the store's
// temp+rename convention, creating parent directories as needed.
func (s *Store) WriteFile(name string, data []byte) error {
	p, err := s.filePath(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: write %s: %w", name, err)
	}
	return WriteFileAtomic(p, data)
}

// CreateExclusive creates the named file with data, failing with an error
// satisfying errors.Is(err, fs.ErrExist) if it already exists. Creation
// (O_CREATE|O_EXCL) is the atomic step; exactly one concurrent creator
// wins.
func (s *Store) CreateExclusive(name string, data []byte) error {
	p, err := s.filePath(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: create %s: %w", name, err)
	}
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(p)
		return fmt.Errorf("store: create %s: write %v, close %v", name, werr, cerr)
	}
	return nil
}

// Stat returns the named coordination file's metadata.
func (s *Store) Stat(name string) (FileInfo, error) {
	p, err := s.filePath(name)
	if err != nil {
		return FileInfo{}, err
	}
	info, err := os.Stat(p)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: path.Base(name), ModTime: info.ModTime()}, nil
}

// List returns the files directly under dir, skipping subdirectories. A
// directory that does not exist yet lists as empty: the cluster queue's
// state directories are created lazily by the first write.
func (s *Store) List(dir string) ([]FileInfo, error) {
	p, err := s.filePath(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: list %s: %w", dir, err)
	}
	out := make([]FileInfo, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // vanished under a concurrent rename
		}
		out = append(out, FileInfo{Name: e.Name(), ModTime: info.ModTime()})
	}
	return out, nil
}

// Rename atomically moves oldname to newname within the store. A missing
// oldname — another renamer won — surfaces as fs.ErrNotExist.
func (s *Store) Rename(oldname, newname string) error {
	from, err := s.filePath(oldname)
	if err != nil {
		return err
	}
	to, err := s.filePath(newname)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(to), 0o755); err != nil {
		return fmt.Errorf("store: rename %s: %w", oldname, err)
	}
	return os.Rename(from, to)
}

// Remove deletes the named coordination file.
func (s *Store) Remove(name string) error {
	p, err := s.filePath(name)
	if err != nil {
		return err
	}
	return os.Remove(p)
}

// Touch refreshes the named file's mtime to now.
func (s *Store) Touch(name string) error {
	p, err := s.filePath(name)
	if err != nil {
		return err
	}
	now := time.Now()
	return os.Chtimes(p, now, now)
}

// Every backend — local disk, HTTP client, fault decorator — satisfies the
// same interface, so any layer of the system can be pointed at any of them.
var (
	_ Backend = (*Store)(nil)
	_ Backend = (*Remote)(nil)
	_ Backend = (*Fault)(nil)
)

// notExist wraps fs.ErrNotExist with context, for backends that must
// synthesize the sentinel (the HTTP client mapping 404s).
func notExist(name string) error {
	return fmt.Errorf("store: %s: %w", name, fs.ErrNotExist)
}

// exist wraps fs.ErrExist with context (the HTTP client mapping 409s).
func exist(name string) error {
	return fmt.Errorf("store: %s: %w", name, fs.ErrExist)
}
