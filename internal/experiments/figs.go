package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// --- Fig. 4: reduction in dynamic instruction count ---

// Fig4Row is one bar of Fig. 4.
type Fig4Row struct {
	Workload  string
	OrigDyn   uint64
	SynDyn    uint64
	Reduction float64 // orig / syn
}

// Fig4Result is the full figure.
type Fig4Result struct {
	Rows         []Fig4Row
	AvgReduction float64
}

// Fig4 measures original-vs-synthetic dynamic instruction counts.
func Fig4(suite []*workloads.Workload) (*Fig4Result, error) {
	return DefaultRunner().Fig4(background(), suite)
}

// Fig4 measures original-vs-synthetic dynamic instruction counts.
func (r *Runner) Fig4(ctx context.Context, suite []*workloads.Workload) (*Fig4Result, error) {
	rows, err := pipeline.Map(ctx, r.P, suite, func(ctx context.Context, w *workloads.Workload) (Fig4Row, error) {
		cl, err := r.P.Synthesize(ctx, w)
		if err != nil {
			return Fig4Row{}, err
		}
		syn, err := r.P.CompileClone(ctx, w, isa.AMD64, compiler.O0)
		if err != nil {
			return Fig4Row{}, err
		}
		res, err := runProgram(syn, nil, nil)
		if err != nil {
			return Fig4Row{}, fmt.Errorf("%s clone: %w", w.Name, err)
		}
		row := Fig4Row{
			Workload: w.Name,
			OrigDyn:  cl.Profile.TotalDyn,
			SynDyn:   res.DynInstrs,
		}
		if res.DynInstrs > 0 {
			row.Reduction = float64(cl.Profile.TotalDyn) / float64(res.DynInstrs)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Rows: rows}
	var ratios []float64
	for _, row := range rows {
		ratios = append(ratios, row.Reduction)
	}
	res.AvgReduction = stats.Mean(ratios)
	return res, nil
}

// Print renders the figure as a table.
func (r *Fig4Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 4 — dynamic instruction count: original relative to synthetic\n")
	fmt.Fprintf(w, "%-24s %14s %14s %10s\n", "workload", "original", "synthetic", "reduction")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %14d %14d %9.1fx\n", row.Workload, row.OrigDyn, row.SynDyn, row.Reduction)
	}
	fmt.Fprintf(w, "%-24s %40.1fx\n", "AVERAGE", r.AvgReduction)
}

// --- Fig. 5: normalized dynamic instruction count across opt levels ---

// Fig5Result carries the per-level averages, normalized to O0.
type Fig5Result struct {
	Levels []string
	Orig   []float64
	Syn    []float64
}

// Fig5 measures how the dynamic instruction count responds to the
// optimization level for originals and clones.
func Fig5(suite []*workloads.Workload) (*Fig5Result, error) {
	return DefaultRunner().Fig5(background(), suite)
}

// fig5Row is one workload's per-level dyn counts, normalized to its O0.
type fig5Row struct {
	orig, syn []float64
}

// Fig5 measures how the dynamic instruction count responds to the
// optimization level for originals and clones.
func (r *Runner) Fig5(ctx context.Context, suite []*workloads.Workload) (*Fig5Result, error) {
	rows, err := pipeline.Map(ctx, r.P, suite, func(ctx context.Context, w *workloads.Workload) (fig5Row, error) {
		var row fig5Row
		var o0Orig, o0Syn float64
		for li, level := range compiler.Levels {
			pair, err := r.P.PairAt(ctx, w, isa.AMD64, level)
			if err != nil {
				return row, err
			}
			ro, err := runProgram(pair.Orig, w.Setup, nil)
			if err != nil {
				return row, fmt.Errorf("%s %v: %w", w.Name, level, err)
			}
			rs, err := runProgram(pair.Syn, nil, nil)
			if err != nil {
				return row, fmt.Errorf("%s clone %v: %w", w.Name, level, err)
			}
			if li == 0 {
				o0Orig, o0Syn = float64(ro.DynInstrs), float64(rs.DynInstrs)
			}
			row.orig = append(row.orig, float64(ro.DynInstrs)/o0Orig)
			row.syn = append(row.syn, float64(rs.DynInstrs)/o0Syn)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	for li, level := range compiler.Levels {
		var po, ps []float64
		for _, row := range rows {
			po = append(po, row.orig[li])
			ps = append(ps, row.syn[li])
		}
		res.Levels = append(res.Levels, level.String())
		res.Orig = append(res.Orig, stats.Mean(po))
		res.Syn = append(res.Syn, stats.Mean(ps))
	}
	return res, nil
}

// Print renders the figure.
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 5 — normalized dynamic instruction count vs optimization level\n")
	fmt.Fprintf(w, "%-10s %10s %10s\n", "level", "original", "synthetic")
	for i := range r.Levels {
		fmt.Fprintf(w, "%-10s %9.1f%% %9.1f%%\n", r.Levels[i], r.Orig[i]*100, r.Syn[i]*100)
	}
}

// --- Fig. 6: instruction mix ---

// MixRow holds loads/stores/branches/others fractions for one benchmark
// family, original vs synthetic.
type MixRow struct {
	Name string
	Orig [4]float64
	Syn  [4]float64
}

// Fig6Result is the mix figure at one optimization level.
type Fig6Result struct {
	Level   string
	Rows    []MixRow
	Average MixRow
}

func measureMix(prog *isa.Program, setup func(*vm.VM) error) ([4]float64, error) {
	var mix [isa.NumClasses]uint64
	var total uint64
	_, err := runProgram(prog, setup, func(ev *vm.Event) {
		total++
		mix[ev.Instr.Class()]++
	})
	var out [4]float64
	if err != nil {
		return out, err
	}
	t := float64(total)
	out[0] = float64(mix[isa.ClassLoad]) / t
	out[1] = float64(mix[isa.ClassStore]) / t
	out[2] = float64(mix[isa.ClassBranch]) / t
	out[3] = 1 - out[0] - out[1] - out[2]
	return out, nil
}

// Fig6 measures the instruction mix per benchmark family at one level
// (the paper shows O0 in Fig. 6(a) and O2 in Fig. 6(b)).
func Fig6(suite []*workloads.Workload, level compiler.OptLevel) (*Fig6Result, error) {
	return DefaultRunner().Fig6(background(), suite, level)
}

// Fig6 measures the instruction mix per benchmark family at one level.
func (r *Runner) Fig6(ctx context.Context, suite []*workloads.Workload, level compiler.OptLevel) (*Fig6Result, error) {
	type mixPair struct {
		orig, syn [4]float64
	}
	rows, err := pipeline.Map(ctx, r.P, suite, func(ctx context.Context, w *workloads.Workload) (mixPair, error) {
		pair, err := r.P.PairAt(ctx, w, isa.AMD64, level)
		if err != nil {
			return mixPair{}, err
		}
		om, err := measureMix(pair.Orig, w.Setup)
		if err != nil {
			return mixPair{}, fmt.Errorf("%s: %w", w.Name, err)
		}
		sm, err := measureMix(pair.Syn, nil)
		if err != nil {
			return mixPair{}, fmt.Errorf("%s clone: %w", w.Name, err)
		}
		return mixPair{orig: om, syn: sm}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Level: level.String()}
	perBench := map[string][]*MixRow{}
	var order []string
	for i, w := range suite {
		if _, ok := perBench[w.Bench]; !ok {
			order = append(order, w.Bench)
		}
		perBench[w.Bench] = append(perBench[w.Bench],
			&MixRow{Name: w.Name, Orig: rows[i].orig, Syn: rows[i].syn})
	}
	var avg MixRow
	avg.Name = "average"
	n := 0.0
	for _, bench := range order {
		var row MixRow
		row.Name = bench
		for _, m := range perBench[bench] {
			for i := 0; i < 4; i++ {
				row.Orig[i] += m.Orig[i] / float64(len(perBench[bench]))
				row.Syn[i] += m.Syn[i] / float64(len(perBench[bench]))
			}
		}
		for i := 0; i < 4; i++ {
			avg.Orig[i] += row.Orig[i]
			avg.Syn[i] += row.Syn[i]
		}
		n++
		res.Rows = append(res.Rows, row)
	}
	for i := 0; i < 4; i++ {
		avg.Orig[i] /= n
		avg.Syn[i] /= n
	}
	res.Average = avg
	return res, nil
}

// Print renders the figure.
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 6 — instruction mix at %s (loads/stores/branches/others)\n", r.Level)
	fmt.Fprintf(w, "%-14s %32s %32s\n", "benchmark", "original", "synthetic")
	rows := append(append([]MixRow(nil), r.Rows...), r.Average)
	for _, row := range rows {
		fmt.Fprintf(w, "%-14s %7.1f%% %7.1f%% %7.1f%% %7.1f%%  %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			row.Name,
			row.Orig[0]*100, row.Orig[1]*100, row.Orig[2]*100, row.Orig[3]*100,
			row.Syn[0]*100, row.Syn[1]*100, row.Syn[2]*100, row.Syn[3]*100)
	}
}

// --- Figs. 7 and 8: data cache hit rates across sizes ---

// CacheRow is one benchmark's hit-rate sweep.
type CacheRow struct {
	Name string
	Orig []float64
	Syn  []float64
}

// FigCacheResult covers Fig. 7 (O0) or Fig. 8 (O2) depending on level.
type FigCacheResult struct {
	Level string
	Sizes []string
	Rows  []CacheRow
}

func measureCacheSweep(prog *isa.Program, setup func(*vm.VM) error) ([]float64, error) {
	ms := cache.NewMultiSim(cache.SweepConfigs())
	_, err := runProgram(prog, setup, func(ev *vm.Event) {
		if ev.IsMem {
			ms.Access(ev.Addr)
		}
	})
	if err != nil {
		return nil, err
	}
	var out []float64
	for _, c := range ms.Caches {
		out = append(out, c.Stats.HitRate())
	}
	return out, nil
}

// FigCache measures data-cache hit rates for 1KB..32KB caches, original vs
// synthetic, at the given level (Fig. 7 uses O0, Fig. 8 uses O2).
func FigCache(suite []*workloads.Workload, level compiler.OptLevel) (*FigCacheResult, error) {
	return DefaultRunner().FigCache(background(), suite, level)
}

// FigCache measures data-cache hit rates for 1KB..32KB caches.
func (r *Runner) FigCache(ctx context.Context, suite []*workloads.Workload, level compiler.OptLevel) (*FigCacheResult, error) {
	rows, err := pipeline.Map(ctx, r.P, suite, func(ctx context.Context, w *workloads.Workload) (CacheRow, error) {
		pair, err := r.P.PairAt(ctx, w, isa.AMD64, level)
		if err != nil {
			return CacheRow{}, err
		}
		oh, err := measureCacheSweep(pair.Orig, w.Setup)
		if err != nil {
			return CacheRow{}, fmt.Errorf("%s: %w", w.Name, err)
		}
		sh, err := measureCacheSweep(pair.Syn, nil)
		if err != nil {
			return CacheRow{}, fmt.Errorf("%s clone: %w", w.Name, err)
		}
		return CacheRow{Name: w.Name, Orig: oh, Syn: sh}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &FigCacheResult{Level: level.String(), Rows: rows}
	for _, cfg := range cache.SweepConfigs() {
		res.Sizes = append(res.Sizes, cfg.Name)
	}
	return res, nil
}

// Print renders the figure.
func (r *FigCacheResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Figs. 7/8 — data cache hit rates at %s\n", r.Level)
	fmt.Fprintf(w, "%-24s %-6s", "workload", "")
	for _, s := range r.Sizes {
		fmt.Fprintf(w, " %7s", s)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %-6s", row.Name, "orig")
		for _, h := range row.Orig {
			fmt.Fprintf(w, " %6.2f%%", h*100)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-24s %-6s", "", "syn")
		for _, h := range row.Syn {
			fmt.Fprintf(w, " %6.2f%%", h*100)
		}
		fmt.Fprintln(w)
	}
}

// --- Fig. 9: branch prediction accuracy ---

// BranchRow is one benchmark's predictor accuracy.
type BranchRow struct {
	Name                         string
	OrigO0, OrigO2, SynO0, SynO2 float64
}

// Fig9Result is the branch prediction figure.
type Fig9Result struct {
	Rows []BranchRow
}

func measureBranchAcc(prog *isa.Program, setup func(*vm.VM) error) (float64, error) {
	meter := &bpred.Meter{P: bpred.DefaultHybrid()}
	_, err := runProgram(prog, setup, func(ev *vm.Event) {
		if ev.Instr.Op == isa.BR {
			pc := uint64(ev.Func)<<24 ^ uint64(ev.Block)<<10 ^ uint64(ev.Index)
			meter.Observe(pc, ev.Taken)
		}
	})
	if err != nil {
		return 0, err
	}
	return meter.S.Accuracy(), nil
}

// Fig9 measures hybrid-predictor accuracy for originals and clones at O0
// and O2.
func Fig9(suite []*workloads.Workload) (*Fig9Result, error) {
	return DefaultRunner().Fig9(background(), suite)
}

// Fig9 measures hybrid-predictor accuracy for originals and clones.
func (r *Runner) Fig9(ctx context.Context, suite []*workloads.Workload) (*Fig9Result, error) {
	rows, err := pipeline.Map(ctx, r.P, suite, func(ctx context.Context, w *workloads.Workload) (BranchRow, error) {
		row := BranchRow{Name: w.Name}
		for _, level := range []compiler.OptLevel{compiler.O0, compiler.O2} {
			pair, err := r.P.PairAt(ctx, w, isa.AMD64, level)
			if err != nil {
				return row, err
			}
			oa, err := measureBranchAcc(pair.Orig, w.Setup)
			if err != nil {
				return row, fmt.Errorf("%s: %w", w.Name, err)
			}
			sa, err := measureBranchAcc(pair.Syn, nil)
			if err != nil {
				return row, fmt.Errorf("%s clone: %w", w.Name, err)
			}
			if level == compiler.O0 {
				row.OrigO0, row.SynO0 = oa, sa
			} else {
				row.OrigO2, row.SynO2 = oa, sa
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Rows: rows}, nil
}

// Print renders the figure.
func (r *Fig9Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 9 — branch prediction accuracy (hybrid predictor)\n")
	fmt.Fprintf(w, "%-24s %9s %9s %9s %9s\n", "workload", "orig -O0", "orig -O2", "syn -O0", "syn -O2")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %8.2f%% %8.2f%% %8.2f%% %8.2f%%\n", row.Name,
			row.OrigO0*100, row.OrigO2*100, row.SynO0*100, row.SynO2*100)
	}
}
