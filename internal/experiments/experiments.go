// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): each ExperimentX function runs the corresponding
// measurement over the workload suite and its synthetic clones and returns
// printable rows. cmd/experiments renders them; bench_test.go wraps each in
// a benchmark; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// CloneSeed is the fixed seed used for every clone in the experiments, so
// results are reproducible run to run.
const CloneSeed = 20100321 // IISWC 2010 paper vintage

// Suite selection: Full is every workload/input pair of Fig. 4; Quick is a
// representative subset (the small inputs plus the single-variant
// benchmarks) used by the per-machine sweeps where the full cross product
// would dominate test time.
func Full() []*workloads.Workload { return workloads.All() }

// Quick returns the representative subset.
func Quick() []*workloads.Workload {
	names := []string{
		"adpcm/small1", "basicmath/small", "bitcount/small", "crc32/small",
		"dijkstra/small", "fft/small1", "gsm/small1", "jpeg/large1",
		"patricia/small", "qsort/large", "sha/small", "stringsearch/small",
		"susan/small2",
	}
	var out []*workloads.Workload
	for _, n := range names {
		if w := workloads.ByName(n); w != nil {
			out = append(out, w)
		}
	}
	return out
}

// compileWorkload compiles a workload source for a target/level.
func compileWorkload(w *workloads.Workload, target *isa.Desc, level compiler.OptLevel) (*isa.Program, error) {
	prog, err := hlc.Parse(w.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	cp, err := hlc.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	out, err := compiler.Compile(cp, target, level)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	return out, nil
}

// runProgram executes a compiled program with an optional setup and hook.
func runProgram(prog *isa.Program, setup func(*vm.VM) error, hook vm.Hook) (vm.Result, error) {
	m := vm.New(prog)
	if setup != nil {
		if err := setup(m); err != nil {
			return vm.Result{}, err
		}
	}
	return m.Run(vm.Config{Hook: hook, MaxInstrs: 200_000_000})
}

// cloneInfo caches one workload's profile, clone, and synthesis report.
type cloneInfo struct {
	prof   *profile.Profile
	clone  *hlc.Program
	cloneC *hlc.CheckedProgram
	report core.Report
	source string
}

var (
	cloneMu    sync.Mutex
	cloneCache = map[string]*cloneInfo{}
)

// cloneOf profiles the workload at -O0 (as the paper prescribes) and
// synthesizes its clone, caching the result for the whole process.
func cloneOf(w *workloads.Workload) (*cloneInfo, error) {
	cloneMu.Lock()
	defer cloneMu.Unlock()
	if ci, ok := cloneCache[w.Name]; ok {
		return ci, nil
	}
	prog, err := compileWorkload(w, isa.AMD64, compiler.O0)
	if err != nil {
		return nil, err
	}
	prof, err := profile.Collect(prog, w.Setup, w.Name, profile.Options{})
	if err != nil {
		return nil, err
	}
	clone, rep, err := core.Synthesize(prof, core.Config{Seed: CloneSeed})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	cp, err := hlc.Check(clone)
	if err != nil {
		return nil, fmt.Errorf("%s clone: %w", w.Name, err)
	}
	ci := &cloneInfo{
		prof:   prof,
		clone:  clone,
		cloneC: cp,
		report: rep,
		source: hlc.Print(clone),
	}
	cloneCache[w.Name] = ci
	return ci, nil
}

// compileClone compiles a cached clone for a target/level.
func compileClone(ci *cloneInfo, target *isa.Desc, level compiler.OptLevel) (*isa.Program, error) {
	return compiler.Compile(ci.cloneC, target, level)
}

// pairPrograms compiles both the original and the clone for target/level.
func pairPrograms(w *workloads.Workload, target *isa.Desc, level compiler.OptLevel) (orig, syn *isa.Program, ci *cloneInfo, err error) {
	ci, err = cloneOf(w)
	if err != nil {
		return nil, nil, nil, err
	}
	orig, err = compileWorkload(w, target, level)
	if err != nil {
		return nil, nil, nil, err
	}
	syn, err = compileClone(ci, target, level)
	if err != nil {
		return nil, nil, nil, err
	}
	return orig, syn, ci, nil
}
