// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): each ExperimentX function runs the corresponding
// measurement over the workload suite and its synthetic clones and returns
// printable rows. `cmd/synth experiments` renders them; bench_test.go wraps
// the suite in benchmarks; EXPERIMENTS.md records paper-vs-measured values.
//
// All measurement plumbing routes through internal/pipeline: a Runner
// submits declarative jobs (workload × ISA × level points) to a shared
// pipeline whose artifact cache computes each compile, profile, and clone
// once across every experiment, and whose worker pool fans the jobs out.
// The package-level ExperimentX functions run on a process-wide default
// Runner seeded with CloneSeed.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// CloneSeed is the fixed seed used for every clone in the experiments, so
// results are reproducible run to run.
const CloneSeed = 20100321 // IISWC 2010 paper vintage

// Suite selection: Full is every workload/input pair of Fig. 4; Quick is a
// representative subset (the small inputs plus the single-variant
// benchmarks) used by the per-machine sweeps where the full cross product
// would dominate test time.
func Full() []*workloads.Workload { return workloads.All() }

// Tiny returns the three-workload smoke suite used by fast CI paths.
func Tiny() []*workloads.Workload {
	var out []*workloads.Workload
	for _, n := range []string{"crc32/small", "dijkstra/small", "fft/small1"} {
		if w := workloads.ByName(n); w != nil {
			out = append(out, w)
		}
	}
	return out
}

// Suite resolves a suite name — tiny, quick, or full — to its workload
// set. It is the single resolution path shared by the CLI, the HTTP
// service, and the exploration engine.
func Suite(name string) ([]*workloads.Workload, error) {
	switch name {
	case "tiny":
		return Tiny(), nil
	case "quick":
		return Quick(), nil
	case "full":
		return Full(), nil
	}
	return nil, fmt.Errorf("unknown suite %q (want tiny, quick, or full)", name)
}

// Quick returns the representative subset.
func Quick() []*workloads.Workload {
	names := []string{
		"adpcm/small1", "basicmath/small", "bitcount/small", "crc32/small",
		"dijkstra/small", "fft/small1", "gsm/small1", "jpeg/large1",
		"patricia/small", "qsort/large", "sha/small", "stringsearch/small",
		"susan/small2",
	}
	var out []*workloads.Workload
	for _, n := range names {
		if w := workloads.ByName(n); w != nil {
			out = append(out, w)
		}
	}
	return out
}

// Runner executes the paper's experiments through a pipeline. Every
// measurement is a job submission: the pipeline owns compilation,
// profiling, synthesis, caching, and fan-out, and the Runner only
// aggregates results (in suite order, so output is deterministic for any
// worker count).
type Runner struct {
	P *pipeline.Pipeline
}

// NewRunner wraps a pipeline in a Runner.
func NewRunner(p *pipeline.Pipeline) *Runner { return &Runner{P: p} }

var (
	defaultOnce   sync.Once
	defaultRunner *Runner
)

// DefaultRunner returns the process-wide Runner used by the package-level
// experiment functions: CloneSeed, paper-default profiling, GOMAXPROCS
// workers, and one shared artifact cache for the life of the process.
func DefaultRunner() *Runner {
	defaultOnce.Do(func() {
		defaultRunner = NewRunner(pipeline.New(pipeline.Options{Seed: CloneSeed}))
	})
	return defaultRunner
}

// runProgram executes a compiled program with an optional setup and hook.
func runProgram(prog *isa.Program, setup func(*vm.VM) error, hook vm.Hook) (vm.Result, error) {
	m := vm.New(prog)
	if setup != nil {
		if err := setup(m); err != nil {
			return vm.Result{}, err
		}
	}
	return m.Run(vm.Config{Hook: hook, MaxInstrs: 200_000_000})
}

// background is the context for the package-level wrappers.
func background() context.Context { return context.Background() }
