package experiments

import (
	"bytes"
	"testing"

	"repro/internal/compiler"
	"repro/internal/workloads"
)

// tiny returns a minimal suite for fast experiment tests.
func tiny() []*workloads.Workload {
	var out []*workloads.Workload
	for _, n := range []string{"crc32/small", "dijkstra/small", "fft/small1"} {
		w := workloads.ByName(n)
		if w == nil {
			panic("missing workload " + n)
		}
		out = append(out, w)
	}
	return out
}

func TestFig4ReductionShape(t *testing.T) {
	res, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SynDyn == 0 || row.OrigDyn == 0 {
			t.Fatalf("%s: empty measurement", row.Workload)
		}
		if row.Reduction < 1 {
			t.Errorf("%s: clone longer than original (%.2fx)", row.Workload, row.Reduction)
		}
	}
	if res.AvgReduction < 1.2 {
		t.Errorf("average reduction %.2fx — clones should be shorter-running", res.AvgReduction)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Error("empty print output")
	}
}

func TestFig5OptimizationTracking(t *testing.T) {
	res, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Both series start at 100% and fall with optimization.
	if res.Orig[0] != 1 || res.Syn[0] != 1 {
		t.Fatalf("O0 should be the 100%% baseline: %v %v", res.Orig[0], res.Syn[0])
	}
	if res.Orig[1] >= 1 {
		t.Errorf("original O1 should shrink: %.3f", res.Orig[1])
	}
	if res.Syn[1] >= 1 {
		t.Errorf("synthetic O1 should shrink: %.3f", res.Syn[1])
	}
	// The paper's claim: the synthetic tracks the original's direction of
	// change; require agreement within 25 percentage points at O2.
	if d := res.Syn[2] - res.Orig[2]; d > 0.25 || d < -0.25 {
		t.Errorf("synthetic O2 ratio %.2f far from original %.2f", res.Syn[2], res.Orig[2])
	}
}

func TestFig6MixSanity(t *testing.T) {
	res, err := Fig6(tiny(), compiler.O0)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range append(res.Rows, res.Average) {
		for i := 0; i < 4; i++ {
			if row.Orig[i] < 0 || row.Orig[i] > 1 || row.Syn[i] < 0 || row.Syn[i] > 1 {
				t.Errorf("%s: fraction out of range: %v %v", row.Name, row.Orig, row.Syn)
			}
		}
		// Load fraction agreement within 15 percentage points (Fig. 6's
		// "not perfect but same conclusions" bar).
		if d := row.Syn[0] - row.Orig[0]; d > 0.15 || d < -0.15 {
			t.Errorf("%s: load fraction orig %.2f vs syn %.2f", row.Name, row.Orig[0], row.Syn[0])
		}
	}
}

func TestFigCacheMonotonicity(t *testing.T) {
	res, err := FigCache(tiny(), compiler.O0)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		for i := 1; i < len(row.Orig); i++ {
			if row.Orig[i] < row.Orig[i-1]-1e-9 {
				t.Errorf("%s: original hit rate not monotone: %v", row.Name, row.Orig)
			}
			if row.Syn[i] < row.Syn[i-1]-1e-9 {
				t.Errorf("%s: synthetic hit rate not monotone: %v", row.Name, row.Syn)
			}
		}
		// Hit rates live in the 60..100% band for these workloads.
		if row.Syn[len(row.Syn)-1] < 0.6 {
			t.Errorf("%s: synthetic 32KB hit rate %.2f suspiciously low",
				row.Name, row.Syn[len(row.Syn)-1])
		}
	}
}

func TestFig9Accuracies(t *testing.T) {
	res, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		for _, acc := range []float64{row.OrigO0, row.OrigO2, row.SynO0, row.SynO2} {
			if acc < 0.5 || acc > 1 {
				t.Errorf("%s: implausible accuracy %v", row.Name, row)
			}
		}
		// Clones should be predictable in the same ballpark (within 12
		// percentage points, the visual error bar of Fig. 9).
		if d := row.SynO0 - row.OrigO0; d > 0.12 || d < -0.12 {
			t.Errorf("%s: branch accuracy orig %.3f vs syn %.3f", row.Name, row.OrigO0, row.SynO0)
		}
	}
}

func TestTableIStridesProduceTargetMissRates(t *testing.T) {
	rows := TableI()
	if len(rows) != 9 {
		t.Fatalf("Table I has %d classes, want 9", len(rows))
	}
	for _, r := range rows {
		if !r.InRange {
			t.Errorf("class %d (stride %dB): measured %.3f outside [%.3f, %.3f]",
				r.Class, r.StrideBytes, r.Measured, r.RangeLo, r.RangeHi)
		}
	}
	var buf bytes.Buffer
	PrintTableI(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestTableIICoverage(t *testing.T) {
	res, err := TableII(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Avg < 0.85 {
		t.Errorf("average pattern coverage %.3f below 0.85", res.Avg)
	}
	if res.Min < 0.7 {
		t.Errorf("minimum pattern coverage %.3f below 0.7", res.Min)
	}
}

func TestObfuscation(t *testing.T) {
	res, err := Obfuscation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.SelfCheck < 0.999 {
			t.Errorf("%s: self check %.3f, want 1.0", row.Workload, row.SelfCheck)
		}
		// The paper's Section V.E: Moss finds no similarity. Winnowing
		// always shares a little generic boilerplate; require under 25%.
		if row.Similarity > 0.25 {
			t.Errorf("%s: clone similarity %.3f too high — obfuscation failed",
				row.Workload, row.Similarity)
		}
	}
}

func TestQuickSuiteCoversAllBenchmarks(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range Quick() {
		seen[w.Bench] = true
	}
	for _, b := range workloads.Benchmarks() {
		if !seen[b] {
			t.Errorf("Quick() misses benchmark family %s", b)
		}
	}
	if len(Full()) != 32 {
		t.Errorf("Full() = %d pairs, want 32", len(Full()))
	}
}
