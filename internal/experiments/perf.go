package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/compiler"
	"repro/internal/cpu"
	"repro/internal/pipeline"
	"repro/internal/plagiarism"
	"repro/internal/sfgl"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// --- Fig. 10: CPI on a 2-wide out-of-order processor, L1 sweep ---

// Fig10L1Sizes are the paper's cache points (KB).
var Fig10L1Sizes = []int{8, 16, 32}

// CPIRow is one benchmark's CPI at the three cache sizes.
type CPIRow struct {
	Name string
	Orig []float64
	Syn  []float64
}

// Fig10Result is the CPI figure.
type Fig10Result struct {
	Rows []CPIRow
	// Correlation is the Pearson correlation between original and
	// synthetic CPIs across all benchmarks and sizes (how well the
	// synthetics "track overall performance").
	Correlation float64
}

// Fig10 runs detailed simulations of a 2-wide out-of-order processor while
// varying the L1 data cache (the PTLSim experiment).
func Fig10(suite []*workloads.Workload) (*Fig10Result, error) {
	return DefaultRunner().Fig10(background(), suite)
}

// Fig10 runs detailed simulations of a 2-wide out-of-order processor.
func (r *Runner) Fig10(ctx context.Context, suite []*workloads.Workload) (*Fig10Result, error) {
	rows, err := pipeline.Map(ctx, r.P, suite, func(ctx context.Context, w *workloads.Workload) (CPIRow, error) {
		pair, err := r.P.PairAt(ctx, w, cpu.Simulated2Wide(8).ISA, compiler.O2)
		if err != nil {
			return CPIRow{}, err
		}
		row := CPIRow{Name: w.Name}
		for _, kb := range Fig10L1Sizes {
			cfg := cpu.Simulated2Wide(kb)
			ro, err := cpu.Simulate(pair.Orig, w.Setup, cfg, 0)
			if err != nil {
				return CPIRow{}, fmt.Errorf("%s: %w", w.Name, err)
			}
			rs, err := cpu.Simulate(pair.Syn, nil, cfg, 0)
			if err != nil {
				return CPIRow{}, fmt.Errorf("%s clone: %w", w.Name, err)
			}
			row.Orig = append(row.Orig, ro.CPI)
			row.Syn = append(row.Syn, rs.CPI)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{Rows: rows}
	var allOrig, allSyn []float64
	for _, row := range rows {
		allOrig = append(allOrig, row.Orig...)
		allSyn = append(allSyn, row.Syn...)
	}
	res.Correlation = stats.Pearson(allOrig, allSyn)
	return res, nil
}

// Print renders the figure.
func (r *Fig10Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 10 — CPI on a 2-wide out-of-order core (L1D 8/16/32KB)\n")
	fmt.Fprintf(w, "%-24s %23s %23s\n", "workload", "original", "synthetic")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f\n", row.Name,
			row.Orig[0], row.Orig[1], row.Orig[2], row.Syn[0], row.Syn[1], row.Syn[2])
	}
	fmt.Fprintf(w, "orig/syn CPI correlation: %.3f\n", r.Correlation)
}

// --- Fig. 11: normalized execution time across machines and compilers ---

// Fig11Result holds normalized execution times per machine and level.
type Fig11Result struct {
	Machines []string
	Levels   []string
	// Orig[m][l] and Syn[m][l] are total suite execution times normalized
	// to the corresponding -O0 / Pentium 4 3GHz value.
	Orig [][]float64
	Syn  [][]float64
	// AvgSpeedupErr is the paper's headline metric: the mean relative
	// error of the synthetic's normalized time against the original's
	// across all machines and levels (the paper reports 7.4%).
	AvgSpeedupErr float64
	// MaxSpeedupErr is the worst case (the paper reports <20%).
	MaxSpeedupErr float64
}

// Fig11 measures normalized execution time across the five Table III
// machines and four optimization levels, for the original suite and the
// synthetic clones.
func Fig11(suite []*workloads.Workload) (*Fig11Result, error) {
	return DefaultRunner().Fig11(background(), suite)
}

// fig11Job is one cell of the machine × level × workload cross product.
type fig11Job struct {
	machine  int
	level    int
	workload *workloads.Workload
}

// Fig11 measures normalized execution time across machines and levels by
// fanning the full cross product out as one job list.
func (r *Runner) Fig11(ctx context.Context, suite []*workloads.Workload) (*Fig11Result, error) {
	var jobs []fig11Job
	for mi := range cpu.Machines {
		for li := range compiler.Levels {
			for _, w := range suite {
				jobs = append(jobs, fig11Job{machine: mi, level: li, workload: w})
			}
		}
	}
	type cell struct{ orig, syn float64 }
	cells, err := pipeline.Map(ctx, r.P, jobs, func(ctx context.Context, j fig11Job) (cell, error) {
		machine := cpu.Machines[j.machine]
		pair, err := r.P.PairAt(ctx, j.workload, machine.ISA, compiler.Levels[j.level])
		if err != nil {
			return cell{}, err
		}
		ro, err := cpu.Simulate(pair.Orig, j.workload.Setup, machine, 0)
		if err != nil {
			return cell{}, fmt.Errorf("%s on %s: %w", j.workload.Name, machine.Name, err)
		}
		rs, err := cpu.Simulate(pair.Syn, nil, machine, 0)
		if err != nil {
			return cell{}, fmt.Errorf("%s clone on %s: %w", j.workload.Name, machine.Name, err)
		}
		return cell{orig: ro.TimeSec, syn: rs.TimeSec}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig11Result{}
	for _, level := range compiler.Levels {
		res.Levels = append(res.Levels, level.String())
	}
	res.Orig = make([][]float64, len(cpu.Machines))
	res.Syn = make([][]float64, len(cpu.Machines))
	for mi, machine := range cpu.Machines {
		res.Machines = append(res.Machines, machine.Name)
		res.Orig[mi] = make([]float64, len(compiler.Levels))
		res.Syn[mi] = make([]float64, len(compiler.Levels))
	}
	// Aggregate in job order so the floating-point sums are identical for
	// any worker count.
	for i, j := range jobs {
		res.Orig[j.machine][j.level] += cells[i].orig
		res.Syn[j.machine][j.level] += cells[i].syn
	}

	// Normalize both series to their own P4-3.0GHz -O0 value.
	var flatOrig, flatSyn []float64
	baseO := res.Orig[0][0]
	baseS := res.Syn[0][0]
	for mi := range res.Orig {
		for li := range res.Orig[mi] {
			res.Orig[mi][li] /= baseO
			res.Syn[mi][li] /= baseS
			flatOrig = append(flatOrig, res.Orig[mi][li])
			flatSyn = append(flatSyn, res.Syn[mi][li])
		}
	}
	res.AvgSpeedupErr = stats.MeanRelErr(flatSyn, flatOrig)
	res.MaxSpeedupErr = stats.MaxRelErr(flatSyn, flatOrig)
	return res, nil
}

// Print renders the figure.
func (r *Fig11Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 11 — normalized execution time across machines and optimization levels\n")
	fmt.Fprintf(w, "%-18s %-5s", "machine", "")
	for _, l := range r.Levels {
		fmt.Fprintf(w, " %7s", l)
	}
	fmt.Fprintln(w)
	for mi, m := range r.Machines {
		fmt.Fprintf(w, "%-18s %-5s", m, "orig")
		for _, v := range r.Orig[mi] {
			fmt.Fprintf(w, " %7.3f", v)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-18s %-5s", "", "syn")
		for _, v := range r.Syn[mi] {
			fmt.Fprintf(w, " %7.3f", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "speedup prediction error: avg %.1f%%, max %.1f%%\n",
		r.AvgSpeedupErr*100, r.MaxSpeedupErr*100)
}

// --- Table I: memory-access classes ---

// TableIRow verifies one stride class against its target miss-rate range.
type TableIRow struct {
	Class       int
	StrideBytes int
	RangeLo     float64
	RangeHi     float64
	Measured    float64
	InRange     bool
}

// TableI replays each class's stride pattern against the profiling cache
// and reports the measured miss rate (the construction behind the paper's
// Table I).
func TableI() []TableIRow {
	var rows []TableIRow
	for class := 0; class < sfgl.NumMemClasses; class++ {
		stride := sfgl.StrideBytes(class)
		c := cache.New(profileCacheCfg())
		span := uint64(64 * 1024)
		var addr uint64
		const accesses = 200000
		for i := 0; i < accesses; i++ {
			if stride == 0 {
				c.Access(0x1000)
				continue
			}
			c.Access(addr)
			addr = (addr + uint64(stride)) % span
		}
		lo := float64(class)*0.125 - 0.0625
		hi := float64(class)*0.125 + 0.0625
		if lo < 0 {
			lo = 0
		}
		if hi > 1 {
			hi = 1
		}
		m := c.Stats.MissRate()
		rows = append(rows, TableIRow{
			Class: class, StrideBytes: stride,
			RangeLo: lo, RangeHi: hi, Measured: m,
			InRange: m >= lo-0.02 && m <= hi+0.02,
		})
	}
	return rows
}

func profileCacheCfg() cache.Config {
	return cache.Config{Name: "tableI", Size: 8 * 1024, LineSize: 32, Assoc: 2}
}

// PrintTableI renders the table.
func PrintTableI(w io.Writer, rows []TableIRow) {
	fmt.Fprintf(w, "Table I — memory access strides vs target miss rates (32B lines)\n")
	fmt.Fprintf(w, "%5s %7s %17s %9s %3s\n", "class", "stride", "target range", "measured", "ok")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d %6dB %7.2f%% - %6.2f%% %8.2f%% %3v\n",
			r.Class, r.StrideBytes, r.RangeLo*100, r.RangeHi*100, r.Measured*100, r.InRange)
	}
}

// --- Table II: pattern coverage ---

// TableIIRow is one workload's Table II pattern coverage.
type TableIIRow struct {
	Workload string
	Coverage float64
}

// TableIIResult summarizes pattern coverage over the suite (the paper
// claims the patterns cover >95% of dynamic instructions).
type TableIIResult struct {
	Rows []TableIIRow
	Min  float64
	Avg  float64
}

// TableII reports the pattern-recognition coverage of every clone.
func TableII(suite []*workloads.Workload) (*TableIIResult, error) {
	return DefaultRunner().TableII(background(), suite)
}

// TableII reports the pattern-recognition coverage of every clone.
func (r *Runner) TableII(ctx context.Context, suite []*workloads.Workload) (*TableIIResult, error) {
	rows, err := pipeline.Map(ctx, r.P, suite, func(ctx context.Context, w *workloads.Workload) (TableIIRow, error) {
		cl, err := r.P.Synthesize(ctx, w)
		if err != nil {
			return TableIIRow{}, err
		}
		return TableIIRow{Workload: w.Name, Coverage: cl.Report.Coverage}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &TableIIResult{Rows: rows, Min: 1}
	var sum float64
	for _, row := range rows {
		if row.Coverage < res.Min {
			res.Min = row.Coverage
		}
		sum += row.Coverage
	}
	if len(rows) > 0 {
		res.Avg = sum / float64(len(rows))
	}
	return res, nil
}

// Print renders the table.
func (r *TableIIResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Table II — pattern recognition coverage of dynamic instructions\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %6.1f%%\n", row.Workload, row.Coverage*100)
	}
	fmt.Fprintf(w, "%-24s %6.1f%% (min %.1f%%)\n", "AVERAGE", r.Avg*100, r.Min*100)
}

// PrintTableIII renders the machine configurations.
func PrintTableIII(w io.Writer) {
	fmt.Fprintf(w, "Table III — machines used in this study\n")
	fmt.Fprintf(w, "%-18s %-8s %6s %6s %6s %6s %5s\n",
		"machine", "ISA", "GHz", "width", "L1KB", "L2KB", "EPIC")
	for _, m := range cpu.Machines {
		fmt.Fprintf(w, "%-18s %-8s %6.2f %6d %6d %6d %5v\n",
			m.Name, m.ISA.Name, m.FreqGHz, m.Width, m.L1KB, m.L2KB, m.EPIC)
	}
}

// --- Section V.E: benchmark obfuscation ---

// ObfRow is one workload's plagiarism comparison against its clone.
type ObfRow struct {
	Workload   string
	Similarity float64 // clone vs original (should be ~0)
	SelfCheck  float64 // original vs itself (sanity: 1.0)
}

// ObfuscationResult is the Section V.E experiment.
type ObfuscationResult struct {
	Rows []ObfRow
	Max  float64
}

// Obfuscation fingerprints each workload against its synthetic clone with
// the Moss algorithm (winnowing).
func Obfuscation(suite []*workloads.Workload) (*ObfuscationResult, error) {
	return DefaultRunner().Obfuscation(background(), suite)
}

// Obfuscation fingerprints each workload against its synthetic clone.
func (r *Runner) Obfuscation(ctx context.Context, suite []*workloads.Workload) (*ObfuscationResult, error) {
	opts := plagiarism.DefaultOptions()
	rows, err := pipeline.Map(ctx, r.P, suite, func(ctx context.Context, w *workloads.Workload) (ObfRow, error) {
		cl, err := r.P.Synthesize(ctx, w)
		if err != nil {
			return ObfRow{}, err
		}
		sim, err := plagiarism.CompareSources(w.Source, cl.Source, opts)
		if err != nil {
			return ObfRow{}, fmt.Errorf("%s: %w", w.Name, err)
		}
		self, err := plagiarism.CompareSources(w.Source, w.Source, opts)
		if err != nil {
			return ObfRow{}, err
		}
		return ObfRow{Workload: w.Name, Similarity: sim.Score(), SelfCheck: self.Score()}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &ObfuscationResult{Rows: rows}
	for _, row := range rows {
		if row.Similarity > res.Max {
			res.Max = row.Similarity
		}
	}
	return res, nil
}

// Print renders the experiment.
func (r *ObfuscationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Section V.E — obfuscation (Moss/winnowing similarity, original vs clone)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s similarity %5.1f%% (self check %5.1f%%)\n",
			row.Workload, row.Similarity*100, row.SelfCheck*100)
	}
	fmt.Fprintf(w, "maximum original/clone similarity: %.1f%%\n", r.Max*100)
}
