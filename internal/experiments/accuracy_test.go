package experiments

import (
	"math"
	"testing"
)

// This file is the accuracy regression gate: the repo's headline fidelity
// numbers may only ratchet up. Scale-out and performance PRs that would
// silently trade accuracy for speed fail here instead. The floors and
// ceilings are set just under the currently measured values (see
// EXPERIMENTS.md); when accuracy improves, tighten them.

// Accuracy floors/ceilings. Measured at the time of writing (after the
// store-forwarding timing model and dependence-chain emission landed):
// Fig. 10 quick-suite correlation 0.725, qsort relative CPI error 0.26,
// susan 0.04, patricia 0.02, Fig. 11 average speedup-prediction error
// 11.0%, max 29.9%.
const (
	fig10CorrFloor     = 0.70
	qsortCPIErrCeil    = 0.35
	susanCPIErrCeil    = 0.10
	patriciaCPIErrCeil = 0.50 // the paper's 1.5x CPI acceptance band
	fig11AvgErrCeil    = 0.12
	fig11MaxErrCeil    = 0.30
	tableIIMinCovFlr   = 0.85
	tableIIAvgCovFlr   = 0.95
)

// relErr returns |a-b| / |b|.
func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestAccuracyGateFig10 asserts the quick-suite CPI correlation floor and
// the per-workload CPI error ceilings for the memory-irregular workloads
// (qsort, susan) that the stride-stream model was built to fix.
func TestAccuracyGateFig10(t *testing.T) {
	res, err := Fig10(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Correlation < fig10CorrFloor {
		t.Errorf("Fig. 10 quick-suite CPI correlation %.3f below the %.2f floor — accuracy regressed",
			res.Correlation, fig10CorrFloor)
	}
	ceilings := map[string]float64{
		"qsort/large":    qsortCPIErrCeil,
		"susan/small2":   susanCPIErrCeil,
		"patricia/small": patriciaCPIErrCeil,
	}
	for _, row := range res.Rows {
		ceil, ok := ceilings[row.Name]
		if !ok {
			continue
		}
		delete(ceilings, row.Name)
		for i := range row.Orig {
			if e := relErr(row.Syn[i], row.Orig[i]); e > ceil {
				t.Errorf("%s: CPI error %.2f at L1 point %d exceeds ceiling %.2f (orig %.2f syn %.2f)",
					row.Name, e, i, ceil, row.Orig[i], row.Syn[i])
			}
		}
	}
	for name := range ceilings {
		t.Errorf("gated workload %s missing from the quick suite", name)
	}
}

// TestAccuracyGateTableI asserts every Table I stride class still lands in
// its target miss-rate band.
func TestAccuracyGateTableI(t *testing.T) {
	rows := TableI()
	if len(rows) != 9 {
		t.Fatalf("Table I has %d classes, want 9", len(rows))
	}
	for _, r := range rows {
		if !r.InRange {
			t.Errorf("class %d (stride %dB): measured %.3f outside [%.3f, %.3f]",
				r.Class, r.StrideBytes, r.Measured, r.RangeLo, r.RangeHi)
		}
	}
}

// TestAccuracyGateFig11 asserts the speedup-prediction error ceilings over
// the full machine × optimization-level grid on the quick suite.
func TestAccuracyGateFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("fig11 sweeps the full machine grid; skipped with -short")
	}
	res, err := Fig11(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgSpeedupErr > fig11AvgErrCeil {
		t.Errorf("Fig. 11 average speedup-prediction error %.1f%% exceeds the %.0f%% ceiling — accuracy regressed",
			res.AvgSpeedupErr*100, fig11AvgErrCeil*100)
	}
	if res.MaxSpeedupErr > fig11MaxErrCeil {
		t.Errorf("Fig. 11 max speedup-prediction error %.1f%% exceeds the %.0f%% ceiling — accuracy regressed",
			res.MaxSpeedupErr*100, fig11MaxErrCeil*100)
	}
}

// TestAccuracyGateTableII asserts pattern coverage floors on the quick
// suite (the paper claims >95% average).
func TestAccuracyGateTableII(t *testing.T) {
	res, err := TableII(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Avg < tableIIAvgCovFlr {
		t.Errorf("average pattern coverage %.3f below %.2f", res.Avg, tableIIAvgCovFlr)
	}
	if res.Min < tableIIMinCovFlr {
		t.Errorf("minimum pattern coverage %.3f below %.2f", res.Min, tableIIMinCovFlr)
	}
}
