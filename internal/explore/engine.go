package explore

import (
	"context"

	"repro/internal/compiler"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// cell is one (point, workload, level) evaluation of a sweep.
type cell struct {
	pi, wi, li int
}

// cells enumerates a sweep's evaluation grid in deterministic order:
// point-major, then workload, then level. Cell index is the aggregation
// order, so results are identical for any worker count.
func (sw *Sweep) cells() []cell {
	out := make([]cell, 0, len(sw.Points)*len(sw.Workloads)*len(sw.Levels))
	for pi := range sw.Points {
		for wi := range sw.Workloads {
			for li := range sw.Levels {
				out = append(out, cell{pi: pi, wi: wi, li: li})
			}
		}
	}
	return out
}

// Run evaluates the sweep on p's worker pool: every cell simulates the
// original and its clone through the pipeline's cached Simulate stage,
// then the per-point metrics and the ranked report are aggregated in
// deterministic cell order. A warm rerun of the same sweep over the same
// store computes zero simulate-stage artifacts.
func Run(ctx context.Context, p *pipeline.Pipeline, sw *Sweep) (*Report, error) {
	cs := sw.cells()
	pairs, err := pipeline.Map(ctx, p, cs, func(ctx context.Context, c cell) (pipeline.SimPair, error) {
		pt := sw.Points[c.pi]
		return p.SimulatePair(ctx, sw.Workloads[c.wi], pt.Config().ISA, sw.Levels[c.li],
			pt.Config(), sw.Spec.MaxInstrs)
	})
	if err != nil {
		return nil, err
	}
	return buildReport(sw, cs, pairs), nil
}

// RunWorkload evaluates every (point, level) cell of one workload,
// populating the simulation cache without aggregating a report — the
// library entry point for embedding a per-workload drain. It mirrors
// cluster.Worker's exploration-job execution (which re-implements the
// same SimulatePair loop because cluster cannot import this package);
// both paths reduce to identical SimulatePair calls, and two tests pin
// them together: TestRunWorkloadWarmsRun (RunWorkload leaves Run with
// zero simulate computations) and cmd/synth's TestClusterExploreSharded
// (a sharded drain's store is byte-identical to a solo run's).
func RunWorkload(ctx context.Context, p *pipeline.Pipeline, sw *Sweep, w *workloads.Workload) error {
	type pl struct {
		pi int
		l  compiler.OptLevel
	}
	var jobs []pl
	for pi := range sw.Points {
		for _, l := range sw.Levels {
			jobs = append(jobs, pl{pi: pi, l: l})
		}
	}
	return pipeline.ForEach(ctx, p, jobs, func(ctx context.Context, j pl) error {
		pt := sw.Points[j.pi]
		_, err := p.SimulatePair(ctx, w, pt.Config().ISA, j.l, pt.Config(), sw.Spec.MaxInstrs)
		return err
	})
}

// buildReport aggregates the sweep's cell results into per-point rows,
// speedup predictions against the baseline point, and the Pareto
// frontier over (clone accuracy, design performance).
func buildReport(sw *Sweep, cs []cell, pairs []pipeline.SimPair) *Report {
	rep := &Report{
		Name:      sw.Spec.Name,
		Levels:    levelNames(sw.Levels),
		Workloads: workloadNames(sw.Workloads),
		Cells:     len(cs),
	}

	points := make([]*PointResult, len(sw.Points))
	for pi, pt := range sw.Points {
		points[pi] = &PointResult{Point: pt}
	}
	var allOrig, allSyn []float64
	for i, c := range cs {
		pr := points[c.pi]
		pr.origCPI = append(pr.origCPI, pairs[i].Orig.CPI)
		pr.synCPI = append(pr.synCPI, pairs[i].Syn.CPI)
		pr.origIPC = append(pr.origIPC, pairs[i].Orig.IPC())
		pr.OrigCycles += pairs[i].Orig.Cycles
		pr.SynCycles += pairs[i].Syn.Cycles
		pr.OrigTimeSec += pairs[i].Orig.TimeSec
		pr.SynTimeSec += pairs[i].Syn.TimeSec
		allOrig = append(allOrig, pairs[i].Orig.CPI)
		allSyn = append(allSyn, pairs[i].Syn.CPI)
	}
	for _, pr := range points {
		pr.OrigCPI = stats.Mean(pr.origCPI)
		pr.SynCPI = stats.Mean(pr.synCPI)
		pr.MeanIPC = stats.Mean(pr.origIPC)
		pr.CPIErr = stats.MeanRelErr(pr.synCPI, pr.origCPI)
		pr.MaxCPIErr = stats.MaxRelErr(pr.synCPI, pr.origCPI)
		pr.CPICorr = stats.Pearson(pr.origCPI, pr.synCPI)
	}

	// Speedup against the baseline (point 0): the original's measured
	// speedup versus the clone's predicted one. Wall-clock time when the
	// configurations carry frequencies, total cycles otherwise.
	base := points[0]
	for _, pr := range points {
		pr.SpeedupOrig = ratio(base.OrigTimeSec, pr.OrigTimeSec, base.OrigCycles, pr.OrigCycles)
		pr.SpeedupSyn = ratio(base.SynTimeSec, pr.SynTimeSec, base.SynCycles, pr.SynCycles)
		if pr.SpeedupOrig > 0 {
			pr.SpeedupErr = abs(pr.SpeedupSyn-pr.SpeedupOrig) / pr.SpeedupOrig
		}
	}

	markPareto(points)

	rep.Points = make([]PointResult, len(points))
	for i, pr := range points {
		rep.Points[i] = *pr
	}
	rep.Correlation = stats.Pearson(allOrig, allSyn)
	rep.rank(sw.Spec.TopK)
	return rep
}

// ratio computes base/point over times when both are positive, falling
// back to cycles (frequency-less configurations simulate time as zero).
func ratio(baseTime, ptTime float64, baseCycles, ptCycles uint64) float64 {
	if baseTime > 0 && ptTime > 0 {
		return baseTime / ptTime
	}
	if ptCycles == 0 {
		return 0
	}
	return float64(baseCycles) / float64(ptCycles)
}

// abs avoids importing math for one absolute value.
func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// markPareto flags the points on the Pareto frontier of (CPIErr down,
// MeanIPC up): a point is dominated if some other point tracks the
// original at least as accurately and runs at least as fast, strictly
// better in one of the two.
func markPareto(points []*PointResult) {
	for _, p := range points {
		p.Pareto = true
		for _, q := range points {
			if q == p {
				continue
			}
			if q.CPIErr <= p.CPIErr && q.MeanIPC >= p.MeanIPC &&
				(q.CPIErr < p.CPIErr || q.MeanIPC > p.MeanIPC) {
				p.Pareto = false
				break
			}
		}
	}
}

// levelNames renders an optimization-level list.
func levelNames(levels []compiler.OptLevel) []string {
	out := make([]string, len(levels))
	for i, l := range levels {
		out[i] = l.String()
	}
	return out
}

// workloadNames renders a workload list.
func workloadNames(ws []*workloads.Workload) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}
