package explore

import (
	"fmt"
	"io"
	"sort"
)

// PointResult is one design point's aggregated evaluation: how
// faithfully the synthetic clones track the originals there, how fast
// the design is, and how well the clones predict its speedup over the
// sweep's baseline.
type PointResult struct {
	// Point identifies the configuration.
	Point Point `json:"point"`
	// OrigCPI and SynCPI are the mean CPIs over the point's cells.
	OrigCPI float64 `json:"origCPI"`
	SynCPI  float64 `json:"synCPI"`
	// CPIErr and MaxCPIErr are the mean and worst per-cell relative CPI
	// errors of the clones against the originals; CPICorr is the
	// Pearson correlation across the point's cells.
	CPIErr    float64 `json:"cpiErr"`
	MaxCPIErr float64 `json:"maxCPIErr"`
	CPICorr   float64 `json:"cpiCorr"`
	// MeanIPC is the mean original IPC — the design's performance axis.
	MeanIPC float64 `json:"meanIPC"`
	// OrigCycles/SynCycles and OrigTimeSec/SynTimeSec total the point's
	// simulated execution.
	OrigCycles  uint64  `json:"origCycles"`
	SynCycles   uint64  `json:"synCycles"`
	OrigTimeSec float64 `json:"origTimeSec"`
	SynTimeSec  float64 `json:"synTimeSec"`
	// SpeedupOrig is the measured suite speedup of this point over the
	// baseline point; SpeedupSyn is the clones' prediction of it;
	// SpeedupErr is the prediction's relative error.
	SpeedupOrig float64 `json:"speedupOrig"`
	SpeedupSyn  float64 `json:"speedupSyn"`
	SpeedupErr  float64 `json:"speedupErr"`
	// Pareto marks the point as non-dominated on (CPIErr, MeanIPC).
	Pareto bool `json:"pareto"`

	origCPI, synCPI, origIPC []float64
}

// Report is one sweep's full evaluation, ranked most-accurate first.
type Report struct {
	// Name echoes the spec's label.
	Name string `json:"name,omitempty"`
	// Workloads, Levels, and Cells describe the evaluation grid.
	Workloads []string `json:"workloads"`
	Levels    []string `json:"levels"`
	Cells     int      `json:"cells"`
	// Points holds every design point's result; Points[0] is the
	// baseline, the rest are sorted by ascending CPIErr (accuracy
	// rank), IPC-descending on ties.
	Points []PointResult `json:"points"`
	// Correlation is the Pearson correlation between original and
	// synthetic CPIs across every cell of the sweep — the Fig. 10-style
	// "do the clones track performance" headline.
	Correlation float64 `json:"correlation"`
	// TopK is the ranked-table row bound used when printing.
	TopK int `json:"topK"`
}

// rank orders Points[1:] by accuracy (baseline stays first as the
// speedup reference) and records the print bound.
func (r *Report) rank(topK int) {
	if topK <= 0 {
		topK = 10
	}
	r.TopK = topK
	if len(r.Points) > 1 {
		rest := r.Points[1:]
		sort.SliceStable(rest, func(i, j int) bool {
			if rest[i].CPIErr != rest[j].CPIErr {
				return rest[i].CPIErr < rest[j].CPIErr
			}
			if rest[i].MeanIPC != rest[j].MeanIPC {
				return rest[i].MeanIPC > rest[j].MeanIPC
			}
			return rest[i].Point.Name < rest[j].Point.Name
		})
	}
}

// Best returns the most accurate non-baseline point, or the baseline
// when the sweep has no other points.
func (r *Report) Best() PointResult {
	if len(r.Points) > 1 {
		return r.Points[1]
	}
	return r.Points[0]
}

// ParetoFront returns the non-dominated points in rank order.
func (r *Report) ParetoFront() []PointResult {
	var out []PointResult
	for _, p := range r.Points {
		if p.Pareto {
			out = append(out, p)
		}
	}
	return out
}

// Print renders the report: the grid summary, the baseline row, the
// ranked top-K table, and the Pareto frontier.
func (r *Report) Print(w io.Writer) {
	name := r.Name
	if name == "" {
		name = "design-space sweep"
	}
	fmt.Fprintf(w, "explore — %s: %d points × %d workloads × %d levels (%d cells)\n",
		name, len(r.Points), len(r.Workloads), len(r.Levels), r.Cells)
	fmt.Fprintf(w, "orig/syn CPI correlation across all cells: %.3f\n", r.Correlation)

	fmt.Fprintf(w, "%-34s %8s %8s %7s %7s %7s %9s %9s %7s %3s\n",
		"point", "origCPI", "synCPI", "cpiErr", "maxErr", "corr", "speedup", "predicted", "spdErr", "par")
	row := func(p PointResult) {
		pareto := ""
		if p.Pareto {
			pareto = "*"
		}
		fmt.Fprintf(w, "%-34s %8.3f %8.3f %6.1f%% %6.1f%% %7.3f %8.3fx %8.3fx %6.1f%% %3s\n",
			truncName(p.Point.Name, 34), p.OrigCPI, p.SynCPI,
			p.CPIErr*100, p.MaxCPIErr*100, p.CPICorr,
			p.SpeedupOrig, p.SpeedupSyn, p.SpeedupErr*100, pareto)
	}
	row(r.Points[0])
	shown := 0
	for _, p := range r.Points[1:] {
		if shown >= r.TopK {
			break
		}
		row(p)
		shown++
	}
	if hidden := len(r.Points) - 1 - shown; hidden > 0 {
		fmt.Fprintf(w, "  ... %d more points (raise topK or use JSON output)\n", hidden)
	}

	front := r.ParetoFront()
	fmt.Fprintf(w, "pareto frontier (accuracy vs. IPC), %d of %d points:\n", len(front), len(r.Points))
	for _, p := range front {
		fmt.Fprintf(w, "  %-34s cpiErr %5.1f%%  IPC %.3f\n", truncName(p.Point.Name, 34), p.CPIErr*100, p.MeanIPC)
	}
}

// truncName bounds a point label for the fixed-width table.
func truncName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
