package explore

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/cpu"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// tinySpec is a 3-point sweep over the tiny suite, small enough for unit
// tests yet exercising axes, dedup, and the baseline reference.
const tinySpec = `{
  "name": "test-sweep",
  "suite": "tiny",
  "levels": [2],
  "base": "2-wide OoO",
  "axes": {"l1KB": [8, 32], "width": [2]}
}`

func TestParseSpecResolvesTinySweep(t *testing.T) {
	sw, err := ParseSpec([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Workloads) != 3 {
		t.Errorf("tiny suite resolved to %d workloads", len(sw.Workloads))
	}
	if len(sw.Levels) != 1 || sw.Levels[0] != compiler.O2 {
		t.Errorf("levels = %v", sw.Levels)
	}
	// base (l1KB=8, width=2) + {8,32}×{2}: the l1KB=8,width=2 point
	// collapses onto the baseline, leaving base + l1KB=32.
	if len(sw.Points) != 2 {
		t.Fatalf("expected 2 deduplicated points, got %d: %+v", len(sw.Points), sw.Points)
	}
	if sw.Points[0].Name != "base" {
		t.Errorf("point 0 is %q, want the baseline", sw.Points[0].Name)
	}
	if sw.Points[1].Name != "l1KB=32,width=2" {
		t.Errorf("point 1 is %q", sw.Points[1].Name)
	}
	for _, pt := range sw.Points {
		if pt.Fingerprint != pt.Config().Fingerprint() {
			t.Errorf("point %s fingerprint drifted", pt.Name)
		}
	}
}

func TestParseSpecRejections(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"unknown field", `{"sweep": 1}`, "unknown field"},
		{"no workloads", `{"axes": {"width": [2]}}`, "no workloads"},
		{"unknown workload", `{"workloads": ["nope/tiny"]}`, "unknown workload"},
		{"unknown suite", `{"suite": "huge"}`, "unknown suite"},
		{"bad level", `{"suite": "tiny", "levels": [9]}`, "out of range"},
		{"unknown base", `{"suite": "tiny", "base": "PDP-11"}`, "unknown baseline"},
		{"unknown axis", `{"suite": "tiny", "axes": {"cores": [2]}}`, "unknown axis"},
		{"empty axis", `{"suite": "tiny", "axes": {"width": []}}`, "no values"},
		{"bad axis value", `{"suite": "tiny", "axes": {"width": ["wide"]}}`, "integer"},
		{"invalid point", `{"suite": "tiny", "axes": {"l1KB": [12]}}`, "power of two"},
		{"bad base config", `{"suite": "tiny", "config": {"isa": "amd64v"}}`, "baseline"},
	}
	for _, tc := range cases {
		_, err := ParseSpec([]byte(tc.spec))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseSpecPointExplosionBounded(t *testing.T) {
	spec := `{"suite": "tiny", "axes": {
	  "width": [1,2,3,4,5,6,7,8],
	  "rob": [1,2,3,4,5,6,7,8],
	  "memLat": [1,2,3,4,5,6,7,8],
	  "l2Lat": [1,2,3,4,5,6,7,8]
	}}`
	if _, err := ParseSpec([]byte(spec)); err == nil || !strings.Contains(err.Error(), "points") {
		t.Fatalf("4096-point sweep not rejected: %v", err)
	}
}

func TestExplicitBaseConfig(t *testing.T) {
	spec := `{"workloads": ["crc32/small"],
	  "config": {"name": "little", "isa": "amd64v", "width": 1, "mispredictPenalty": 4,
	    "l1KB": 4, "l1Assoc": 2, "l1Lat": 1, "l2KB": 64, "l2Assoc": 4, "l2Lat": 8, "memLat": 100}}`
	sw, err := ParseSpec([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 1 || sw.Points[0].Config().Width != 1 {
		t.Fatalf("explicit base not honored: %+v", sw.Points)
	}
}

func TestPresetCalibrationResolves(t *testing.T) {
	spec, err := Preset("calibration")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) < 10 || len(sw.Workloads) == 0 {
		t.Fatalf("calibration preset resolved to %d points × %d workloads", len(sw.Points), len(sw.Workloads))
	}
	if _, err := Preset("turbo"); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestExploreRunAndWarmRerun is the tentpole property at unit scope: a
// sweep evaluates every cell, ranks points with the baseline first, marks
// a consistent Pareto frontier — and a rerun over the same store computes
// zero simulate-stage artifacts while producing the identical report.
func TestExploreRunAndWarmRerun(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := ParseSpec([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}

	cold := pipeline.New(pipeline.Options{Workers: 4, Seed: 7, Store: st})
	rep, err := Run(ctx, cold, sw)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(sw.Points) * len(sw.Workloads) * len(sw.Levels)
	if rep.Cells != wantCells {
		t.Errorf("report covers %d cells, want %d", rep.Cells, wantCells)
	}
	if got := cold.CacheStats().ComputedFor(pipeline.StageSimulate); got != uint64(2*wantCells) {
		t.Errorf("cold run computed %d simulations, want %d", got, 2*wantCells)
	}
	if rep.Points[0].Point.Name != "base" {
		t.Errorf("ranked report lost the baseline row: %+v", rep.Points[0].Point)
	}
	if rep.Points[0].SpeedupOrig != 1 || rep.Points[0].SpeedupSyn != 1 {
		t.Errorf("baseline speedup must be 1.0, got %+v", rep.Points[0])
	}
	for i := 2; i < len(rep.Points); i++ {
		if rep.Points[i].CPIErr < rep.Points[i-1].CPIErr {
			t.Errorf("points not ranked by CPI error: %v after %v",
				rep.Points[i].CPIErr, rep.Points[i-1].CPIErr)
		}
	}
	front := rep.ParetoFront()
	if len(front) == 0 {
		t.Error("empty Pareto frontier")
	}
	for _, p := range rep.Points {
		dominated := false
		for _, q := range rep.Points {
			if q.Point.Fingerprint != p.Point.Fingerprint &&
				q.CPIErr <= p.CPIErr && q.MeanIPC >= p.MeanIPC &&
				(q.CPIErr < p.CPIErr || q.MeanIPC > p.MeanIPC) {
				dominated = true
			}
		}
		if p.Pareto == dominated {
			t.Errorf("point %s: pareto=%v but dominated=%v", p.Point.Name, p.Pareto, dominated)
		}
	}

	// Warm rerun: fresh pipeline, same store — zero simulate computations,
	// identical report.
	warm := pipeline.New(pipeline.Options{Workers: 4, Seed: 7, Store: st})
	rep2, err := Run(ctx, warm, sw)
	if err != nil {
		t.Fatal(err)
	}
	cs := warm.CacheStats()
	if cs.ComputedFor(pipeline.StageSimulate) != 0 || cs.ComputedFor(pipeline.StageCompile) != 0 {
		t.Errorf("warm rerun recomputed artifacts: %+v", cs)
	}
	if rep2.Correlation != rep.Correlation || len(rep2.Points) != len(rep.Points) {
		t.Errorf("warm report differs: %v vs %v", rep2.Correlation, rep.Correlation)
	}
	got, _ := json.Marshal(rep2)
	want, _ := json.Marshal(rep)
	if string(got) != string(want) {
		t.Errorf("warm report differs from cold:\ncold %s\nwarm %s", want, got)
	}
}

// TestRunWorkloadWarmsRun verifies the cluster worker's entry point: per-
// workload evaluation over a shared store leaves Run with nothing to
// compute — the sharded path and the solo path agree by construction.
func TestRunWorkloadWarmsRun(t *testing.T) {
	ctx := context.Background()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sw, err := ParseSpec([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range sw.Workloads {
		worker := pipeline.New(pipeline.Options{Workers: 2, Seed: 7, Store: st})
		if err := RunWorkload(ctx, worker, sw, w); err != nil {
			t.Fatal(err)
		}
	}
	agg := pipeline.New(pipeline.Options{Workers: 2, Seed: 7, Store: st})
	if _, err := Run(ctx, agg, sw); err != nil {
		t.Fatal(err)
	}
	if got := agg.CacheStats().ComputedFor(pipeline.StageSimulate); got != 0 {
		t.Errorf("aggregation after RunWorkload computed %d simulations", got)
	}
}

func TestClusterSpecBridge(t *testing.T) {
	sw, err := ParseSpec([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	spec := sw.ClusterSpec(42, "amd64v", 0)
	if len(spec.Workloads) != 3 || len(spec.Explore) != len(sw.Points) {
		t.Fatalf("bridge lost workloads or points: %+v", spec)
	}
	if len(spec.ISAs) != 1 || spec.ISAs[0] != "amd64v" {
		t.Errorf("ISAs = %v, want the deduplicated point ISA", spec.ISAs)
	}
	if spec.Seed != 42 || spec.ProfileISA != "amd64v" || spec.ProfileLevel != 0 {
		t.Errorf("pipeline pins lost: %+v", spec)
	}
	jobs := spec.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("%d jobs", len(jobs))
	}
	for _, j := range jobs {
		if j.Kind != "explore" || len(j.Sims) != len(sw.Points) {
			t.Errorf("job %s: kind=%q sims=%d", j.Workload, j.Kind, len(j.Sims))
		}
		if j.Cells() != len(sw.Points)*len(sw.Levels) {
			t.Errorf("job %s: %d cells", j.Workload, j.Cells())
		}
	}
	// The simulation bound is part of the dispatch identity.
	bounded := *sw
	bounded.Spec.MaxInstrs = 1000
	if bounded.ClusterSpec(42, "amd64v", 0).Canonical() == spec.Canonical() {
		t.Error("SimMaxInstrs not in the dispatch canonical")
	}
}

func TestReportPrintShape(t *testing.T) {
	sw, err := ParseSpec([]byte(`{"workloads": ["crc32/small"], "axes": {"width": [2, 4]}}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), pipeline.New(pipeline.Options{Workers: 2, Seed: 7}), sw)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	rep.Print(&b)
	out := b.String()
	for _, want := range []string{"explore —", "CPI correlation", "pareto frontier", "base"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
	if rep.Best().Point.Name == "base" && len(rep.Points) > 1 {
		t.Error("Best returned the baseline despite other points")
	}
	if cpu.Simulated2Wide(8).Name != "2-wide OoO" {
		t.Error("default baseline machine renamed; update the explore docs")
	}
}
