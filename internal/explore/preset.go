package explore

import "fmt"

// Presets are named, built-in sweep specifications: `synth explore
// -preset NAME` runs them without a spec file, and EXPERIMENTS.md's
// regeneration blocks reference them so recorded sweeps stay
// reproducible as the presets evolve in lockstep with the code.

// Calibration returns the sweep that picked the default Fig. 10
// simulated-OoO configuration: a quick-suite sweep around the paper's
// 2-wide PTLSim setup over the axes that set how far memory behavior
// separates the workloads' CPIs (window shape and memory-system depth).
// The winning point — highest orig/syn CPI correlation with CPIs spread
// over a usable range — became cpu.Simulated2Wide's defaults; see
// EXPERIMENTS.md for the recorded before/after.
func Calibration() Spec {
	return Spec{
		Name:   "fig10-calibration",
		Suite:  "quick",
		Levels: []int{2},
		Base:   "2-wide OoO",
		Axes: map[string][]any{
			"memLat":     []any{150.0, 300.0, 500.0},
			"l2KB":       []any{64.0, 512.0},
			"l2Lat":      []any{12.0, 24.0},
			"rob":        []any{16.0, 64.0},
			"storeQueue": []any{4.0, 8.0},
		},
	}
}

// Preset returns a named built-in sweep spec.
func Preset(name string) (Spec, error) {
	switch name {
	case "calibration":
		return Calibration(), nil
	}
	return Spec{}, fmt.Errorf("explore: unknown preset %q (known: calibration)", name)
}
