// Package explore is the design-space exploration engine: it takes a
// declarative sweep specification — a baseline machine configuration,
// value lists over the sweepable cpu.Config axes, and workload ×
// optimization-level selectors — expands it into concrete design points,
// evaluates every (point, workload, level) cell through the pipeline's
// cached Simulate stage, and ranks the points by how faithfully the
// synthetic clones track the originals and how fast the design runs.
//
// This is the purpose the source paper builds toward: synthetic clones
// exist so that architects can sweep microarchitectures without
// distributing proprietary workloads. The engine makes that sweep a
// first-class, resumable computation: every simulation is a pipeline
// artifact keyed by the machine configuration's content fingerprint, so
// a warm rerun of the same spec recomputes nothing, and large grids can
// be sharded across a worker fleet through the cluster queue (one
// exploration job per workload — simulation keys are workload-scoped,
// so shards stay artifact-disjoint and the cluster's zero-duplication
// guarantee carries over unchanged).
package explore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/compiler"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

// MaxPoints bounds a spec's expanded design-point count, so a fat-
// fingered axis list fails fast instead of enqueueing a million
// simulations.
const MaxPoints = 1024

// Spec is the declarative sweep specification `synth explore` and
// POST /api/v1/explore consume as JSON.
type Spec struct {
	// Name labels the sweep in reports.
	Name string `json:"name,omitempty"`
	// Suite selects a workload suite (tiny, quick, full); Workloads
	// names additional workload/input pairs. The union, deduplicated in
	// listed order, is the evaluation suite.
	Suite     string   `json:"suite,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	// Levels lists the optimization levels to evaluate at (default: O2,
	// the paper's performance-measurement level).
	Levels []int `json:"levels,omitempty"`
	// Base names the baseline machine (a Table III name or "2-wide
	// OoO"; default "2-wide OoO"). Config, when non-nil, is an explicit
	// baseline overriding Base.
	Base   string          `json:"base,omitempty"`
	Config *cpu.ConfigSpec `json:"config,omitempty"`
	// Axes maps sweepable axis names (see cpu.Axes) to the values to
	// cross. The design points are the baseline plus the full cross
	// product of all axis value lists.
	Axes map[string][]any `json:"axes,omitempty"`
	// MaxInstrs bounds each simulation's dynamic instruction count
	// (0 = run to completion). It is part of the simulation cache key.
	MaxInstrs uint64 `json:"maxInstrs,omitempty"`
	// TopK bounds the ranked table in the printed report (0 = 10).
	TopK int `json:"topK,omitempty"`
}

// ParseSpec decodes and resolves a JSON sweep specification. Unknown
// fields are rejected, so a typoed axis name outside "axes" fails
// loudly instead of silently sweeping nothing.
func ParseSpec(data []byte) (*Sweep, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("explore: bad spec: %w", err)
	}
	return s.Resolve()
}

// Sweep is a resolved, validated specification: concrete workloads,
// levels, and design points, ready for Run or for cluster dispatch.
type Sweep struct {
	// Spec is the specification the sweep was resolved from.
	Spec Spec
	// Workloads is the evaluation suite in deterministic order.
	Workloads []*workloads.Workload
	// Levels is the optimization-level list.
	Levels []compiler.OptLevel
	// Points is the design-point list; Points[0] is always the
	// baseline configuration (the speedup reference).
	Points []Point
}

// Point is one concrete design point of a sweep.
type Point struct {
	// Name renders the point's axis assignment ("base" for the
	// baseline).
	Name string `json:"name"`
	// Spec is the point's serializable configuration.
	Spec cpu.ConfigSpec `json:"spec"`
	// Fingerprint is the configuration's content address, the identity
	// its simulation artifacts are cached under.
	Fingerprint string `json:"fingerprint"`

	cfg cpu.Config // resolved, validated
}

// Config returns the point's resolved machine configuration.
func (p Point) Config() cpu.Config { return p.cfg }

// Resolve validates the spec and expands it into a Sweep.
func (s Spec) Resolve() (*Sweep, error) {
	sw := &Sweep{Spec: s}

	// Evaluation suite: the named suite, then the extra workloads,
	// deduplicated in order.
	var names []string
	if s.Suite != "" {
		ws, err := experiments.Suite(s.Suite)
		if err != nil {
			return nil, fmt.Errorf("explore: %w", err)
		}
		for _, w := range ws {
			names = append(names, w.Name)
		}
	}
	names = append(names, s.Workloads...)
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		w := workloads.ByName(n)
		if w == nil {
			return nil, fmt.Errorf("explore: unknown workload %q", n)
		}
		sw.Workloads = append(sw.Workloads, w)
	}
	if len(sw.Workloads) == 0 {
		return nil, fmt.Errorf("explore: no workloads (set suite and/or workloads)")
	}

	// Levels: default to the paper's performance-measurement level.
	levels := s.Levels
	if len(levels) == 0 {
		levels = []int{int(compiler.O2)}
	}
	for _, l := range levels {
		if l < 0 || l >= len(compiler.Levels) {
			return nil, fmt.Errorf("explore: optimization level %d out of range 0-%d", l, len(compiler.Levels)-1)
		}
		sw.Levels = append(sw.Levels, compiler.Levels[l])
	}

	// Baseline: explicit config wins, then the named machine.
	var base cpu.Config
	switch {
	case s.Config != nil:
		c, err := s.Config.Config()
		if err != nil {
			return nil, fmt.Errorf("explore: baseline: %w", err)
		}
		base = c
	default:
		name := s.Base
		if name == "" {
			name = "2-wide OoO"
		}
		m, ok := cpu.MachineByName(name)
		if !ok {
			return nil, fmt.Errorf("explore: unknown baseline machine %q", name)
		}
		base = m
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("explore: baseline: %w", err)
	}

	points, err := expandPoints(base, s.Axes)
	if err != nil {
		return nil, err
	}
	sw.Points = points
	return sw, nil
}

// expandPoints crosses the axis value lists over the baseline. The
// baseline itself is always point 0; axis-derived points that collapse
// onto an already-seen configuration (including the baseline) are
// deduplicated by fingerprint.
func expandPoints(base cpu.Config, axes map[string][]any) ([]Point, error) {
	names := make([]string, 0, len(axes))
	for n := range axes {
		names = append(names, n)
	}
	sort.Strings(names)

	total := 1
	for _, n := range names {
		ax := cpu.AxisByName(n)
		if ax == nil {
			return nil, fmt.Errorf("explore: unknown axis %q (known: %s)", n, axisNames())
		}
		if len(axes[n]) == 0 {
			return nil, fmt.Errorf("explore: axis %q has no values", n)
		}
		total *= len(axes[n])
		if total > MaxPoints {
			return nil, fmt.Errorf("explore: sweep expands to more than %d points", MaxPoints)
		}
	}

	basePoint, err := makePoint("base", base)
	if err != nil {
		return nil, err
	}
	points := []Point{basePoint}
	seen := map[string]bool{basePoint.Fingerprint: true}

	// Odometer enumeration keeps the order deterministic: the last axis
	// varies fastest, mirroring nested loops over the sorted names.
	idx := make([]int, len(names))
	for n := 0; n < total; n++ {
		cfg := base
		label := ""
		for i, name := range names {
			v := axes[name][idx[i]]
			if err := cpu.AxisByName(name).Apply(&cfg, v); err != nil {
				return nil, fmt.Errorf("explore: %w", err)
			}
			if label != "" {
				label += ","
			}
			label += fmt.Sprintf("%s=%v", name, v)
		}
		pt, err := makePoint(label, cfg)
		if err != nil {
			return nil, fmt.Errorf("explore: point %s: %w", label, err)
		}
		if !seen[pt.Fingerprint] {
			seen[pt.Fingerprint] = true
			points = append(points, pt)
		}
		for i := len(idx) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(axes[names[i]]) {
				break
			}
			idx[i] = 0
		}
	}
	return points, nil
}

// makePoint validates a configuration and packages it as a design point.
func makePoint(name string, cfg cpu.Config) (Point, error) {
	if err := cfg.Validate(); err != nil {
		return Point{}, err
	}
	cfg.Name = name
	return Point{
		Name:        name,
		Spec:        cpu.SpecOf(cfg),
		Fingerprint: cfg.Fingerprint(),
		cfg:         cfg,
	}, nil
}

// axisNames renders the known axis names for error messages.
func axisNames() string {
	out := ""
	for i, a := range cpu.Axes {
		if i > 0 {
			out += ", "
		}
		out += a.Name
	}
	return out
}
