package explore

import (
	"repro/internal/cluster"
	"repro/internal/cpu"
)

// ClusterSpec translates a resolved sweep into a cluster dispatch spec:
// one exploration job per workload, each simulating every design point
// at every level. seed, profileISA, and profileLevel pin the pipeline
// options every worker must share (see cluster.PipelineOptions), so the
// fleet's simulation keys match the dispatcher's by construction.
//
// After the queue drains, Run over the same store aggregates the report
// without recomputing anything — every cell is a warm simulate hit.
func (sw *Sweep) ClusterSpec(seed int64, profileISA string, profileLevel int) cluster.Spec {
	names := make([]string, len(sw.Workloads))
	for i, w := range sw.Workloads {
		names[i] = w.Name
	}
	// The compile grid's ISAs are the distinct point ISAs, in point
	// order (a sweep normally has exactly one: the baseline's).
	var isas []string
	seen := map[string]bool{}
	points := make([]cpu.ConfigSpec, len(sw.Points))
	for i, pt := range sw.Points {
		points[i] = pt.Spec
		if !seen[pt.Spec.ISA] {
			seen[pt.Spec.ISA] = true
			isas = append(isas, pt.Spec.ISA)
		}
	}
	levels := make([]int, len(sw.Levels))
	for i, l := range sw.Levels {
		levels[i] = int(l)
	}
	suite := sw.Spec.Suite
	if suite == "" {
		suite = "explore"
	}
	return cluster.Spec{
		Suite:        suite,
		Workloads:    names,
		ISAs:         isas,
		Levels:       levels,
		Seed:         seed,
		ProfileISA:   profileISA,
		ProfileLevel: profileLevel,
		Explore:      points,
		SimMaxInstrs: sw.Spec.MaxInstrs,
	}
}
