package isa

import (
	"math"
	"strings"
	"testing"
)

// allOpcodes enumerates every defined opcode (NOP through PRINTF).
func allOpcodes() []Opcode {
	var out []Opcode
	for op := NOP; op <= PRINTF; op++ {
		out = append(out, op)
	}
	return out
}

func TestOpcodeTableComplete(t *testing.T) {
	for _, op := range allOpcodes() {
		name := op.String()
		if name == "" || strings.HasPrefix(name, "op(") {
			t.Errorf("opcode %d has no mnemonic", int(op))
		}
		cls := op.ClassOf()
		if cls < 0 || int(cls) >= NumClasses {
			t.Errorf("%v: class %d out of range", op, cls)
		}
		if cls.String() == "" {
			t.Errorf("%v: class has no name", op)
		}
	}
	if Opcode(9999).String() != "op(9999)" {
		t.Error("unknown opcode should render as op(N)")
	}
}

func TestOpcodeClassification(t *testing.T) {
	// The class predicates partition the arithmetic opcodes: every opcode
	// answers true to at most one of them, and the classic members land
	// where expected.
	for _, op := range allOpcodes() {
		n := 0
		for _, ok := range []bool{IsIntBin(op), IsFloatBin(op), IsFloatCmp(op), IsFloatUn(op)} {
			if ok {
				n++
			}
		}
		if n > 1 {
			t.Errorf("%v matches %d arithmetic predicates", op, n)
		}
	}
	cases := []struct {
		op    Opcode
		class Class
	}{
		{LD, ClassLoad}, {LDL, ClassLoad}, {ST, ClassStore}, {STL, ClassStore},
		{BR, ClassBranch}, {JMP, ClassJump}, {CALL, ClassCall}, {RET, ClassRet},
		{ADD, ClassIntALU}, {MUL, ClassIntMul}, {DIV, ClassIntDiv}, {MOD, ClassIntDiv},
		{FADD, ClassFPAdd}, {FMUL, ClassFPMul}, {FDIV, ClassFPDiv}, {FSQRT, ClassFPDiv},
		{MOVI, ClassOther}, {PRINTI, ClassSys},
	}
	for _, c := range cases {
		if got := c.op.ClassOf(); got != c.class {
			t.Errorf("%v: class %v, want %v", c.op, got, c.class)
		}
	}
}

func TestHasSideEffects(t *testing.T) {
	effectful := map[Opcode]bool{
		ST: true, STL: true, BR: true, JMP: true, RET: true, CALL: true,
		PRINTI: true, PRINTF: true,
	}
	for _, op := range allOpcodes() {
		if got := HasSideEffects(op); got != effectful[op] {
			t.Errorf("HasSideEffects(%v) = %v, want %v", op, got, effectful[op])
		}
	}
}

func TestEvalIntBin(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b int64
		want int64
		ok   bool
	}{
		{ADD, 3, 4, 7, true},
		{SUB, 3, 4, -1, true},
		{MUL, -3, 4, -12, true},
		{DIV, 7, 2, 3, true},
		{DIV, 7, 0, 0, false}, // trap
		{MOD, 7, 3, 1, true},
		{MOD, 7, 0, 0, false}, // trap
		{AND, 0b1100, 0b1010, 0b1000, true},
		{OR, 0b1100, 0b1010, 0b1110, true},
		{XOR, 0b1100, 0b1010, 0b0110, true},
		{SHL, 1, 4, 16, true},
		{SHL, 1, 64, 1, true}, // count masked to 0..63
		{SHR, -8, 1, -4, true},
		{CMPEQ, 5, 5, 1, true},
		{CMPNE, 5, 5, 0, true},
		{CMPLT, 4, 5, 1, true},
		{CMPLE, 5, 5, 1, true},
		{CMPGT, 5, 4, 1, true},
		{CMPGE, 4, 5, 0, true},
	}
	for _, c := range cases {
		got, ok := EvalIntBin(c.op, c.a, c.b)
		if got != c.want || ok != c.ok {
			t.Errorf("EvalIntBin(%v, %d, %d) = (%d, %v), want (%d, %v)",
				c.op, c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestEvalUnaryAndFloat(t *testing.T) {
	if got := EvalIntUn(NEG, 5); got != -5 {
		t.Errorf("neg 5 = %d", got)
	}
	if got := EvalIntUn(NOTB, 0); got != -1 {
		t.Errorf("notb 0 = %d", got)
	}
	if got := EvalFloatBin(FDIV, 1, 2); got != 0.5 {
		t.Errorf("fdiv = %g", got)
	}
	if got := EvalFloatCmp(FCMPLE, 1, 1); got != 1 {
		t.Errorf("fcmple = %d", got)
	}
	if got := EvalFloatUn(FSQRT, 9); got != 3 {
		t.Errorf("fsqrt 9 = %g", got)
	}
	if got := EvalFloatUn(FABS, -2.5); got != 2.5 {
		t.Errorf("fabs = %g", got)
	}
}

// TestF2ITotal pins the deterministic C-truncation semantics the VM and
// the constant folder must share.
func TestF2ITotal(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{1.9, 1},
		{-1.9, -1},
		{0, 0},
		{math.NaN(), 0},
		{math.Inf(1), math.MaxInt64},
		{math.Inf(-1), math.MinInt64},
		{1e300, math.MaxInt64},
		{-1e300, math.MinInt64},
	}
	for _, c := range cases {
		if got := F2I(c.in); got != c.want {
			t.Errorf("F2I(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestProgramLookups(t *testing.T) {
	p := &Program{
		Globals: []Global{{Name: "a", Kind: KindInt, Len: 4}, {Name: "f", Kind: KindFloat, Len: 1}},
		Funcs: []*Func{
			{Name: "main", Blocks: []*Block{{Instrs: []Instr{{Op: MOVI}, {Op: RET, A: NoReg}}}}},
			{Name: "work", Blocks: []*Block{{Instrs: []Instr{{Op: RET, A: NoReg}}}}},
		},
	}
	if i := p.GlobalIndex("f"); i != 1 {
		t.Errorf("GlobalIndex(f) = %d", i)
	}
	if i := p.GlobalIndex("missing"); i != -1 {
		t.Errorf("GlobalIndex(missing) = %d", i)
	}
	if i := p.FuncIndex("work"); i != 1 {
		t.Errorf("FuncIndex(work) = %d", i)
	}
	if i := p.FuncIndex("missing"); i != -1 {
		t.Errorf("FuncIndex(missing) = %d", i)
	}
	if n := p.NumStaticInstrs(); n != 3 {
		t.Errorf("NumStaticInstrs = %d, want 3", n)
	}
	if b := p.Globals[0].ElemBytes(); b != IntBytes {
		t.Errorf("int ElemBytes = %d", b)
	}
	if b := p.Globals[1].ElemBytes(); b != FloatBytes {
		t.Errorf("float ElemBytes = %d", b)
	}
}

func TestISADescriptors(t *testing.T) {
	for _, d := range []*Desc{X86, AMD64, IA64} {
		if got := ByName(d.Name); got != d {
			t.Errorf("ByName(%q) = %v", d.Name, got)
		}
		if d.IntRegs < 4 {
			t.Errorf("%s: implausible register count %d", d.Name, d.IntRegs)
		}
	}
	if ByName("pdp11") != nil {
		t.Error("ByName should return nil for unknown ISAs")
	}
	if !IA64.EPIC || X86.EPIC || AMD64.EPIC {
		t.Error("EPIC flag misassigned: only ia64v is statically scheduled")
	}
}

func TestInstrString(t *testing.T) {
	cases := []Instr{
		{Op: MOVI, Dst: 1, Imm: 42},
		{Op: LD, Dst: 2, A: 3, Sym: 1, Imm: 4},
		{Op: ST, A: 3, B: 2, Sym: 1},
		{Op: BR, A: 5},
		{Op: RET, A: NoReg},
		{Op: ADD, Dst: 1, A: 2, B: 3},
	}
	for _, in := range cases {
		if s := in.String(); s == "" {
			t.Errorf("%v: empty String()", in.Op)
		}
	}
}
