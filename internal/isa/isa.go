// Package isa defines the virtual instruction-set architectures targeted by
// the compiler and executed by the VM. It plays the role of x86, x86_64 and
// IA64 in the paper: three load/store ISAs that differ along the axes that
// matter for the paper's cross-ISA claims — integer register count (register
// pressure and spill traffic) and static (EPIC) versus dynamic scheduling.
package isa

import "fmt"

// RegID identifies a machine (or, in the compiler's virtual-register form, a
// virtual) register operand. NoReg marks an unused operand slot.
type RegID = uint16

// NoReg is the sentinel for an absent register operand.
const NoReg RegID = 0xffff

// Class is the functional-unit class of an instruction. The profiler's
// instruction-mix histograms (Fig. 6) and the timing models' latency tables
// are keyed by Class.
type Class int

// Instruction classes.
const (
	ClassOther  Class = iota // register moves and constant materialization
	ClassIntALU              // add/sub/logic/shift/compare
	ClassIntMul
	ClassIntDiv
	ClassFPAdd // fp add/sub/compare/abs/neg/convert
	ClassFPMul
	ClassFPDiv // divide, sqrt, and the trig intrinsics
	ClassLoad
	ClassStore
	ClassBranch // conditional branch
	ClassJump   // unconditional jump
	ClassCall
	ClassRet
	ClassSys // print
)

var classNames = [...]string{
	"other", "ialu", "imul", "idiv", "fpadd", "fpmul", "fpdiv",
	"load", "store", "branch", "jump", "call", "ret", "sys",
}

// String returns a short lowercase name for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// NumClasses is the number of distinct instruction classes.
const NumClasses = len(classNames)

// Opcode enumerates the virtual machine operations. All ISAs share one
// opcode set; they differ only in register count and scheduling regime
// (see Desc). This mirrors how the paper treats ISAs: the interesting
// differences are structural, not in the operation repertoire.
type Opcode int

// Opcodes.
const (
	NOP Opcode = iota

	// Data movement and constants.
	MOVI // Dst <- Imm
	MOVF // Dst <- F
	MOV  // Dst <- A (int or float bits; untyped move)

	// Integer arithmetic; Dst <- A op B.
	ADD
	SUB
	MUL
	DIV
	MOD
	AND
	OR
	XOR
	SHL
	SHR
	NEG  // Dst <- -A
	NOTB // Dst <- ^A (bitwise complement)

	// Integer comparisons producing 0/1.
	CMPEQ
	CMPNE
	CMPLT
	CMPLE
	CMPGT
	CMPGE

	// Floating point.
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FCMPEQ
	FCMPNE
	FCMPLT
	FCMPLE
	FCMPGT
	FCMPGE
	ITOF
	FTOI
	FSQRT
	FSIN
	FCOS
	FABS

	// Memory. Globals are addressed as Sym(base) indexed by register A
	// (element index; NoReg means scalar/element 0) plus constant Imm.
	// Locals and spill slots live in the stack frame, addressed by slot
	// number in Imm.
	LD  // Dst <- global[Sym][A + Imm]
	ST  // global[Sym][A + Imm] <- B
	LDL // Dst <- frame slot Imm
	STL // frame slot Imm <- A

	// Control flow. Branch targets are expressed through Block.Succs:
	// BR takes Succs[0] when reg A != 0, else Succs[1]; JMP goes to
	// Succs[0]. RET returns register A (or NoReg for void).
	BR
	JMP
	RET

	// CALL invokes function Sym. Arguments are passed through the stack:
	// the caller stores them (STL) into its outgoing-argument slots
	// starting at frame slot Imm, and the VM copies them into the
	// callee's parameter slots 0..NumParams-1. The callee's RET value is
	// delivered to Dst (NoReg when unused). Stack argument passing is
	// the 32-bit cdecl convention the paper's x86 experiments used.
	CALL

	// PRINTI/PRINTF emit the value of register A to the program output.
	PRINTI
	PRINTF
)

// NumOpcodes is the number of defined opcodes; opcode values are dense in
// [0, NumOpcodes). The name and class tables below are arrays indexed by
// opcode — ClassOf sits on the per-executed-instruction path of every
// profiling hook, where a map lookup would dominate.
const NumOpcodes = int(PRINTF) + 1

var opcodeNames = [NumOpcodes]string{
	NOP: "nop",
	MOVI: "movi", MOVF: "movf", MOV: "mov",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", MOD: "mod",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
	NEG: "neg", NOTB: "notb",
	CMPEQ: "cmpeq", CMPNE: "cmpne", CMPLT: "cmplt",
	CMPLE: "cmple", CMPGT: "cmpgt", CMPGE: "cmpge",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FNEG: "fneg",
	FCMPEQ: "fcmpeq", FCMPNE: "fcmpne", FCMPLT: "fcmplt",
	FCMPLE: "fcmple", FCMPGT: "fcmpgt", FCMPGE: "fcmpge",
	ITOF: "itof", FTOI: "ftoi",
	FSQRT: "fsqrt", FSIN: "fsin", FCOS: "fcos", FABS: "fabs",
	LD: "ld", ST: "st", LDL: "ldl", STL: "stl",
	BR: "br", JMP: "jmp", RET: "ret", CALL: "call",
	PRINTI: "printi", PRINTF: "printf",
}

var opcodeClasses = [NumOpcodes]Class{
	NOP: ClassOther, MOVI: ClassOther, MOVF: ClassOther, MOV: ClassOther,
	ADD: ClassIntALU, SUB: ClassIntALU, MUL: ClassIntMul,
	DIV: ClassIntDiv, MOD: ClassIntDiv,
	AND: ClassIntALU, OR: ClassIntALU, XOR: ClassIntALU,
	SHL: ClassIntALU, SHR: ClassIntALU,
	NEG: ClassIntALU, NOTB: ClassIntALU,
	CMPEQ: ClassIntALU, CMPNE: ClassIntALU, CMPLT: ClassIntALU,
	CMPLE: ClassIntALU, CMPGT: ClassIntALU, CMPGE: ClassIntALU,
	FADD: ClassFPAdd, FSUB: ClassFPAdd, FMUL: ClassFPMul, FDIV: ClassFPDiv,
	FNEG:   ClassFPAdd,
	FCMPEQ: ClassFPAdd, FCMPNE: ClassFPAdd, FCMPLT: ClassFPAdd,
	FCMPLE: ClassFPAdd, FCMPGT: ClassFPAdd, FCMPGE: ClassFPAdd,
	ITOF: ClassFPAdd, FTOI: ClassFPAdd,
	FSQRT: ClassFPDiv, FSIN: ClassFPDiv, FCOS: ClassFPDiv, FABS: ClassFPAdd,
	LD: ClassLoad, ST: ClassStore, LDL: ClassLoad, STL: ClassStore,
	BR: ClassBranch, JMP: ClassJump, RET: ClassRet, CALL: ClassCall,
	PRINTI: ClassSys, PRINTF: ClassSys,
}

// String returns the mnemonic of the opcode.
func (op Opcode) String() string {
	if op >= 0 && int(op) < NumOpcodes {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// ClassOf returns the functional-unit class of the opcode.
func (op Opcode) ClassOf() Class {
	if op >= 0 && int(op) < NumOpcodes {
		return opcodeClasses[op]
	}
	return ClassOther
}

// Instr is one machine instruction. Operand roles depend on the opcode; see
// the opcode documentation above.
type Instr struct {
	Op   Opcode
	Dst  RegID
	A, B RegID
	Imm  int64
	F    float64
	Sym  int32 // global index (LD/ST) or callee function index (CALL)
}

// Class returns the functional-unit class of the instruction.
func (in *Instr) Class() Class { return in.Op.ClassOf() }

// String renders the instruction for dumps and debugging.
func (in Instr) String() string {
	switch in.Op {
	case MOVI:
		return fmt.Sprintf("movi r%d, %d", in.Dst, in.Imm)
	case MOVF:
		return fmt.Sprintf("movf r%d, %g", in.Dst, in.F)
	case LD:
		return fmt.Sprintf("ld r%d, g%d[r%d+%d]", in.Dst, in.Sym, int16(in.A), in.Imm)
	case ST:
		return fmt.Sprintf("st g%d[r%d+%d], r%d", in.Sym, int16(in.A), in.Imm, in.B)
	case LDL:
		return fmt.Sprintf("ldl r%d, [%d]", in.Dst, in.Imm)
	case STL:
		return fmt.Sprintf("stl [%d], r%d", in.Imm, in.A)
	case BR:
		return fmt.Sprintf("br r%d", in.A)
	case JMP:
		return "jmp"
	case RET:
		if in.A == NoReg {
			return "ret"
		}
		return fmt.Sprintf("ret r%d", in.A)
	case CALL:
		return fmt.Sprintf("call f%d -> r%d (args at slot %d)", in.Sym, int16(in.Dst), in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, int16(in.Dst), int16(in.A), int16(in.B))
	}
}

// ValKind distinguishes integer from floating-point storage.
type ValKind int

// Value kinds.
const (
	KindInt ValKind = iota
	KindFloat
	KindVoid
)

// Data element sizes in bytes, fixed across ISAs (as if the C sources used
// int32_t and double): they determine the addresses fed to the cache
// simulator, matching the paper's 32-bit / 32-byte-line assumptions (Table I).
const (
	IntBytes   = 4
	FloatBytes = 8
	SlotBytes  = 8 // stack frame slots
)

// Global describes one global variable; scalars have Len 1.
type Global struct {
	Name string
	Kind ValKind
	Len  int
}

// ElemBytes returns the byte size of one element of the global.
func (g Global) ElemBytes() int {
	if g.Kind == KindFloat {
		return FloatBytes
	}
	return IntBytes
}

// Block is a basic block: straight-line instructions ending in a terminator
// (BR, JMP, or RET). Succs holds the indices of successor blocks within the
// function: for BR, Succs[0] is the taken target and Succs[1] the
// fall-through; for JMP, Succs[0]; for RET, none.
type Block struct {
	Instrs []Instr
	Succs  []int
	// Bundle assigns each instruction to an EPIC issue group; instructions
	// sharing a bundle index were declared independent by the compiler's
	// static scheduler and may issue in the same cycle on an EPIC machine.
	// nil means no scheduling was performed (every instruction issues
	// alone, as IA64 code compiled at -O0 effectively does).
	Bundle []int
}

// Terminator returns the final instruction of the block.
func (b *Block) Terminator() *Instr { return &b.Instrs[len(b.Instrs)-1] }

// Func is a compiled function.
//
// The stack frame layout (in 8-byte slots) is:
//
//	[0, FirstArgSlot)                    scalar locals, parameters first
//	[FirstArgSlot, FirstArgSlot+ArgSlots) outgoing call arguments
//	[FirstArgSlot+ArgSlots, NumSlots)     spill slots and inlined locals
//
// FirstArgSlot is -1 for functions that make no calls (then every slot
// below NumSlots is a local or spill slot).
type Func struct {
	Name         string
	NumParams    int
	RetKind      ValKind
	Blocks       []*Block
	NumRegs      int // registers used (VM frame register-file size)
	NumSlots     int // total stack-frame slots
	FirstArgSlot int // start of the outgoing-argument area, or -1
	ArgSlots     int // size of the outgoing-argument area
}

// PromotableSlot reports whether frame slot s holds an ordinary scalar
// variable that mem2reg may promote to a register (outgoing-argument slots
// are real memory the calling convention depends on).
func (f *Func) PromotableSlot(s int) bool {
	if f.FirstArgSlot < 0 {
		return true
	}
	return s < f.FirstArgSlot || s >= f.FirstArgSlot+f.ArgSlots
}

// Program is a complete compiled program for one ISA.
type Program struct {
	ISA     *Desc
	Globals []Global
	Funcs   []*Func
	Entry   int // index of main
}

// GlobalIndex returns the index of the named global, or -1.
func (p *Program) GlobalIndex(name string) int {
	for i, g := range p.Globals {
		if g.Name == name {
			return i
		}
	}
	return -1
}

// FuncIndex returns the index of the named function, or -1.
func (p *Program) FuncIndex(name string) int {
	for i, f := range p.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// NumStaticInstrs counts instructions across all functions.
func (p *Program) NumStaticInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// Desc describes one virtual ISA.
type Desc struct {
	Name    string
	IntRegs int  // allocatable general-purpose registers
	EPIC    bool // statically scheduled: compiler emits issue bundles,
	// machines execute in order (the Itanium axis of Fig. 11)
}

// The three ISAs of Table III. x86v is register-starved like IA-32, amd64v
// has the 16 architectural registers of x86_64, and ia64v models Itanium's
// large register file plus EPIC static scheduling.
var (
	X86   = &Desc{Name: "x86v", IntRegs: 6}
	AMD64 = &Desc{Name: "amd64v", IntRegs: 14}
	IA64  = &Desc{Name: "ia64v", IntRegs: 48, EPIC: true}
)

// ByName returns the ISA descriptor with the given name, or nil.
func ByName(name string) *Desc {
	switch name {
	case X86.Name:
		return X86
	case AMD64.Name:
		return AMD64
	case IA64.Name:
		return IA64
	}
	return nil
}
