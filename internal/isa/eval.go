package isa

import "math"

// The evaluation helpers below define the arithmetic semantics of the
// virtual ISA in exactly one place, shared by the VM interpreter and the
// compiler's constant folder — if they disagreed, optimized and unoptimized
// code could compute different results.

// EvalIntBin evaluates an integer binary opcode over two operands. The
// second result is false when the operation would trap (divide or modulo by
// zero). Shift counts are masked to 0..63.
func EvalIntBin(op Opcode, a, b int64) (int64, bool) {
	switch op {
	case ADD:
		return a + b, true
	case SUB:
		return a - b, true
	case MUL:
		return a * b, true
	case DIV:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case MOD:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case AND:
		return a & b, true
	case OR:
		return a | b, true
	case XOR:
		return a ^ b, true
	case SHL:
		return a << (uint64(b) & 63), true
	case SHR:
		return a >> (uint64(b) & 63), true
	case CMPEQ:
		return b2i(a == b), true
	case CMPNE:
		return b2i(a != b), true
	case CMPLT:
		return b2i(a < b), true
	case CMPLE:
		return b2i(a <= b), true
	case CMPGT:
		return b2i(a > b), true
	case CMPGE:
		return b2i(a >= b), true
	}
	panic("isa: EvalIntBin: not an integer binary opcode: " + op.String())
}

// EvalIntUn evaluates an integer unary opcode.
func EvalIntUn(op Opcode, a int64) int64 {
	switch op {
	case NEG:
		return -a
	case NOTB:
		return ^a
	case MOV:
		return a
	}
	panic("isa: EvalIntUn: not an integer unary opcode: " + op.String())
}

// EvalFloatBin evaluates a floating-point arithmetic opcode.
func EvalFloatBin(op Opcode, a, b float64) float64 {
	switch op {
	case FADD:
		return a + b
	case FSUB:
		return a - b
	case FMUL:
		return a * b
	case FDIV:
		return a / b
	}
	panic("isa: EvalFloatBin: not a float binary opcode: " + op.String())
}

// EvalFloatCmp evaluates a floating-point comparison, returning 0 or 1.
func EvalFloatCmp(op Opcode, a, b float64) int64 {
	switch op {
	case FCMPEQ:
		return b2i(a == b)
	case FCMPNE:
		return b2i(a != b)
	case FCMPLT:
		return b2i(a < b)
	case FCMPLE:
		return b2i(a <= b)
	case FCMPGT:
		return b2i(a > b)
	case FCMPGE:
		return b2i(a >= b)
	}
	panic("isa: EvalFloatCmp: not a float comparison: " + op.String())
}

// EvalFloatUn evaluates a floating-point unary opcode.
func EvalFloatUn(op Opcode, a float64) float64 {
	switch op {
	case FNEG:
		return -a
	case FSQRT:
		return math.Sqrt(a)
	case FSIN:
		return math.Sin(a)
	case FCOS:
		return math.Cos(a)
	case FABS:
		return math.Abs(a)
	}
	panic("isa: EvalFloatUn: not a float unary opcode: " + op.String())
}

// IsIntBin reports whether op is a two-operand integer ALU operation
// (including comparisons).
func IsIntBin(op Opcode) bool {
	switch op {
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR,
		CMPEQ, CMPNE, CMPLT, CMPLE, CMPGT, CMPGE:
		return true
	}
	return false
}

// IsFloatBin reports whether op is a two-operand FP arithmetic operation.
func IsFloatBin(op Opcode) bool {
	switch op {
	case FADD, FSUB, FMUL, FDIV:
		return true
	}
	return false
}

// IsFloatCmp reports whether op is an FP comparison.
func IsFloatCmp(op Opcode) bool {
	switch op {
	case FCMPEQ, FCMPNE, FCMPLT, FCMPLE, FCMPGT, FCMPGE:
		return true
	}
	return false
}

// IsFloatUn reports whether op is a one-operand FP operation.
func IsFloatUn(op Opcode) bool {
	switch op {
	case FNEG, FSQRT, FSIN, FCOS, FABS:
		return true
	}
	return false
}

// HasSideEffects reports whether the instruction writes memory, transfers
// control, or performs I/O — i.e. whether dead-code elimination must keep it
// even when its destination is unused.
func HasSideEffects(op Opcode) bool {
	switch op {
	case ST, STL, BR, JMP, RET, CALL, PRINTI, PRINTF:
		return true
	}
	return false
}

// F2I converts a float to an integer with C truncation semantics, made
// total (and deterministic across the VM and the constant folder) by mapping
// NaN to 0 and clamping out-of-range values.
func F2I(f float64) int64 {
	switch {
	case f != f: // NaN
		return 0
	case f >= 9.223372036854775e18:
		return math.MaxInt64
	case f <= -9.223372036854775e18:
		return math.MinInt64
	}
	return int64(f)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
