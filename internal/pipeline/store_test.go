package pipeline_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/store"
	"repro/internal/workloads"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPipelineDiskWarmSharedStore is the PR's core property: a second
// Runner (a fresh pipeline, as a second process would build) sharing the
// first one's store directory performs zero Compile/Profile/Synthesize
// computations — disk hits only — and produces byte-identical artifacts.
func TestPipelineDiskWarmSharedStore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	w := mustWorkload(t, "crc32/small")

	cold := pipeline.New(pipeline.Options{Workers: 2, Seed: 1, Store: openStore(t, dir)})
	coldPair, err := cold.PairAt(ctx, w, isa.AMD64, compiler.O2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Validate(ctx, w); err != nil {
		t.Fatal(err)
	}
	cs := cold.CacheStats()
	if cs.Misses == 0 || cs.DiskHits != 0 {
		t.Fatalf("cold run should compute everything: %+v", cs)
	}

	warm := pipeline.New(pipeline.Options{Workers: 2, Seed: 1, Store: openStore(t, dir)})
	warmPair, err := warm.PairAt(ctx, w, isa.AMD64, compiler.O2)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Validate(ctx, w); err != nil {
		t.Fatal(err)
	}
	ws := warm.CacheStats()
	for _, st := range []pipeline.Stage{
		pipeline.StageCompile, pipeline.StageProfile,
		pipeline.StageSynthesize, pipeline.StageValidate,
	} {
		if n := ws.ComputedFor(st); n != 0 {
			t.Errorf("warm run recomputed %d %v artifacts; want 0 (stats %+v)", n, st, ws)
		}
	}
	if ws.DiskHits == 0 {
		t.Error("warm run reported no disk hits")
	}
	if ws.DiskErrors != 0 {
		t.Errorf("warm run reported %d disk errors", ws.DiskErrors)
	}

	if coldPair.Clone.Source != warmPair.Clone.Source {
		t.Error("clone source differs between cold and warm runs")
	}
	if coldPair.Orig.NumStaticInstrs() != warmPair.Orig.NumStaticInstrs() ||
		coldPair.Syn.NumStaticInstrs() != warmPair.Syn.NumStaticInstrs() {
		t.Error("compiled artifacts differ between cold and warm runs")
	}
}

// TestPipelineDiskWriteThrough verifies that a cold run populates the
// store on disk (write-through on miss), one entry per persistable stage.
func TestPipelineDiskWriteThrough(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	p := pipeline.New(pipeline.Options{Workers: 1, Seed: 1, Store: openStore(t, dir)})
	w := mustWorkload(t, "crc32/small")
	if _, err := p.PairAt(ctx, w, isa.AMD64, compiler.O0); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dir)
	n, err := s.Len()
	if err != nil {
		t.Fatal(err)
	}
	// compile@O0, profile, synthesize, clone-compile@O0 = 4 disk entries
	// (parse/check are memory-only).
	if n != 4 {
		t.Errorf("store holds %d entries, want 4", n)
	}
}

// TestPipelineDiskCorruptionIsMiss damages every stored entry and checks a
// fresh pipeline silently recomputes: corrupted files are misses, never
// errors, and the store heals (entries are rewritten).
func TestPipelineDiskCorruptionIsMiss(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	w := mustWorkload(t, "crc32/small")

	cold := pipeline.New(pipeline.Options{Workers: 1, Seed: 1, Store: openStore(t, dir)})
	if _, err := cold.PairAt(ctx, w, isa.AMD64, compiler.O0); err != nil {
		t.Fatal(err)
	}

	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			files = append(files, path)
		}
		return err
	})
	if err != nil || len(files) == 0 {
		t.Fatalf("walk: %v, %d files", err, len(files))
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte("{corrupted"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	warm := pipeline.New(pipeline.Options{Workers: 1, Seed: 1, Store: openStore(t, dir)})
	pair, err := warm.PairAt(ctx, w, isa.AMD64, compiler.O0)
	if err != nil {
		t.Fatalf("corrupted store must recompute, not fail: %v", err)
	}
	ws := warm.CacheStats()
	if ws.DiskHits != 0 {
		t.Errorf("corrupted entries served as %d disk hits", ws.DiskHits)
	}
	if ws.Misses == 0 || pair.Clone.Source == "" {
		t.Error("recomputation did not happen")
	}

	// The rewrite healed the store: a third pipeline is all disk hits.
	healed := pipeline.New(pipeline.Options{Workers: 1, Seed: 1, Store: openStore(t, dir)})
	if _, err := healed.PairAt(ctx, w, isa.AMD64, compiler.O0); err != nil {
		t.Fatal(err)
	}
	if hs := healed.CacheStats(); hs.ComputedFor(pipeline.StageCompile) != 0 ||
		hs.ComputedFor(pipeline.StageProfile) != 0 {
		t.Errorf("store did not heal after recomputation: %+v", hs)
	}
}

// TestPipelineDiskOptionsPartitionStore checks that pipelines with
// different artifact-shaping options sharing one store directory do not
// exchange artifacts: the seed, target size, and profiling bounds are all
// part of the content address.
func TestPipelineDiskOptionsPartitionStore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	w := mustWorkload(t, "crc32/small")

	a := pipeline.New(pipeline.Options{Workers: 1, Seed: 1, Store: openStore(t, dir)})
	ca, err := a.Synthesize(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	b := pipeline.New(pipeline.Options{Workers: 1, Seed: 2, Store: openStore(t, dir)})
	cb, err := b.Synthesize(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if bs := b.CacheStats(); bs.ComputedFor(pipeline.StageSynthesize) != 1 {
		t.Errorf("different seed must synthesize fresh: %+v", bs)
	}
	if ca.Source == cb.Source {
		t.Error("different seeds produced identical clones (keys too coarse?)")
	}

	// Editing a workload's source under the same name must also
	// partition: the source fingerprint is part of the content address,
	// so a stale store never serves artifacts for edited code.
	src1 := "int x; void main() { int i; for (i = 0; i < 50; i = i + 1) { x = x + i; } print(x); }"
	src2 := "int x; void main() { int i; for (i = 0; i < 99; i = i + 1) { x = x + 2*i; } print(x); }"
	v1 := &workloads.Workload{Name: "edited/w", Bench: "edited", Source: src1}
	v2 := &workloads.Workload{Name: "edited/w", Bench: "edited", Source: src2}
	c1 := pipeline.New(pipeline.Options{Workers: 1, Seed: 1, Store: openStore(t, dir)})
	p1, err := c1.Compile(ctx, v1, isa.AMD64, compiler.O0)
	if err != nil {
		t.Fatal(err)
	}
	c2 := pipeline.New(pipeline.Options{Workers: 1, Seed: 1, Store: openStore(t, dir)})
	p2, err := c2.Compile(ctx, v2, isa.AMD64, compiler.O0)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.CacheStats(); st.ComputedFor(pipeline.StageCompile) != 1 || st.DiskHits != 0 {
		t.Errorf("edited source must recompile, not disk-hit the stale artifact: %+v", st)
	}
	if p1.NumStaticInstrs() == p2.NumStaticInstrs() {
		t.Error("edited source compiled to a suspiciously identical program")
	}
}

// TestPipelineSynthesizeProfile checks the profile-load flow: synthesizing
// from a profile value produces the same clone as the named-workload flow,
// and the artifact is cached under the profile's fingerprint.
func TestPipelineSynthesizeProfile(t *testing.T) {
	ctx := context.Background()
	w := mustWorkload(t, "crc32/small")
	p := pipeline.New(pipeline.Options{Workers: 1, Seed: 1})

	prof, err := p.Profile(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	named, err := p.Synthesize(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	fromProf, err := p.SynthesizeProfile(ctx, prof)
	if err != nil {
		t.Fatal(err)
	}
	if named.Source != fromProf.Source {
		t.Error("SynthesizeProfile differs from Synthesize for the same profile")
	}

	before := p.CacheStats().ComputedFor(pipeline.StageSynthesize)
	if _, err := p.SynthesizeProfile(ctx, prof); err != nil {
		t.Fatal(err)
	}
	if after := p.CacheStats().ComputedFor(pipeline.StageSynthesize); after != before {
		t.Error("repeated SynthesizeProfile recomputed the clone")
	}

	if _, err := p.SynthesizeProfile(ctx, nil); err == nil {
		t.Error("nil profile must be rejected")
	}
}

// TestPairKeysMatchStoredDigests guards PairKeys against drifting from the
// stage methods' own key construction: after a cold PairAt run, every key
// PairKeys predicts must exist in the store — this is exactly the probe the
// cluster coordinator uses to deduplicate jobs — and together they must
// account for every entry the run wrote.
func TestPairKeysMatchStoredDigests(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	w := mustWorkload(t, "crc32/small")
	p := pipeline.New(pipeline.Options{Workers: 1, Seed: 1, Store: openStore(t, dir)})
	if _, err := p.PairAt(ctx, w, isa.IA64, compiler.O2); err != nil {
		t.Fatal(err)
	}

	s := openStore(t, dir)
	keys := p.PairKeys(w, isa.IA64, compiler.O2)
	// Grid point ≠ profiling point: orig compile, profiling compile,
	// profile, synthesize, clone compile.
	if len(keys) != 5 {
		t.Fatalf("PairKeys returned %d keys, want 5", len(keys))
	}
	for _, k := range keys {
		if k.StoreKind() == "" {
			t.Errorf("key %v has no store kind", k.Stage)
			continue
		}
		if !s.Has(k.Digest(), k.StoreKind(), k.Canonical()) {
			t.Errorf("PairKeys predicts %v/%s but the store has no such entry (drift from the stage methods?)",
				k.Stage, k.Digest())
		}
	}
	if n, err := s.Len(); err != nil || n != len(keys) {
		t.Errorf("store holds %d entries, PairKeys predicts %d: %v", n, len(keys), err)
	}

	// At the profiling point the orig compile and the profiling compile
	// coincide, so the prediction shrinks by one.
	if n := len(p.PairKeys(w, isa.AMD64, compiler.O0)); n != 4 {
		t.Errorf("profiling-point PairKeys returned %d keys, want 4", n)
	}

	// Memory-only stages never claim a store kind.
	if kind := (pipeline.Key{Stage: pipeline.StageParse}).StoreKind(); kind != "" {
		t.Errorf("parse stage claims store kind %q", kind)
	}
}

// TestCacheStatsAddSub checks the merge arithmetic cluster reports rely
// on: Add is counter-wise, and Sub recovers an exact per-job delta.
func TestCacheStatsAddSub(t *testing.T) {
	var a, b pipeline.CacheStats
	a.Hits, a.DiskHits, a.Misses, a.DiskErrors = 5, 3, 2, 1
	a.Computed[pipeline.StageCompile] = 2
	b.Hits, b.DiskHits = 1, 1
	b.Computed[pipeline.StageCompile] = 1
	b.Computed[pipeline.StageProfile] = 4

	sum := a.Add(b)
	if sum.Hits != 6 || sum.DiskHits != 4 || sum.Misses != 2 || sum.DiskErrors != 1 ||
		sum.Computed[pipeline.StageCompile] != 3 || sum.Computed[pipeline.StageProfile] != 4 {
		t.Fatalf("Add: %+v", sum)
	}
	if back := sum.Sub(b); back != a {
		t.Fatalf("Sub did not invert Add: %+v != %+v", back, a)
	}
}

// TestPipelineKeyGoldenDigests pins digests across processes and builds:
// the disk store files artifacts by these strings, so any drift silently
// invalidates every existing store. Bump store.SchemaVersion if a change
// here is intentional.
func TestPipelineKeyGoldenDigests(t *testing.T) {
	profCache := cache.Config{Name: "profile-8KB", Size: 8192, LineSize: 32, Assoc: 2}
	golden := []struct {
		key  pipeline.Key
		want string
	}{
		{pipeline.Key{Stage: pipeline.StageCompile, Workload: "crc32/small",
			ISA: "amd64v", Level: compiler.O2}, "232916afb5c50b10"},
		{pipeline.Key{Stage: pipeline.StageProfile, Workload: "crc32/small",
			ISA: "amd64v", Level: compiler.O0, Cache: profCache}, "a1f4efa5f08d74f1"},
		{pipeline.Key{Stage: pipeline.StageSynthesize, Workload: "crc32/small",
			ISA: "amd64v", Level: compiler.O0, Seed: 20100321, Clone: true,
			Cache: profCache}, "f7a24f8e528aed50"},
		{pipeline.Key{Stage: pipeline.StageGenerate, Workload: "generate:0123456789abcdef",
			ISA: "amd64v", Level: compiler.O0, Seed: 20100321,
			Cache: profCache}, "925ea2378ba494ca"},
	}
	for i, g := range golden {
		if got := g.key.Digest(); got != g.want {
			t.Errorf("golden digest %d drifted: got %s, want %s (canonical %q)",
				i, got, g.want, g.key.Canonical())
		}
	}
}
