package pipeline_test

import (
	"context"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/workloads"
)

// benchUses is the request pattern of one full experiment run over a
// suite: Fig. 5 touches every level once, and Figs. 6(a), 7, and 9 touch
// -O0 again while Figs. 6(b), 8, and 9 touch -O2 again. Each use needs the
// original and the clone compiled for that point.
var benchUses = []struct {
	level compiler.OptLevel
	count int
}{
	{compiler.O0, 4},
	{compiler.O1, 1},
	{compiler.O2, 4},
	{compiler.O3, 1},
}

// BenchmarkPipelineSequentialSeed reproduces the seed repository's code
// shape: a strictly sequential loop with a per-workload clone cache
// (cloneOf) but no artifact cache, so the original and the clone are
// recompiled for every experiment that touches a (workload, level) point.
func BenchmarkPipelineSequentialSeed(b *testing.B) {
	suite := experiments.Quick()
	for i := 0; i < b.N; i++ {
		type cloneInfo struct {
			prof   *profile.Profile
			cloneC *hlc.CheckedProgram
		}
		cloneCache := map[string]*cloneInfo{}
		cloneOf := func(w *workloads.Workload) *cloneInfo {
			if ci, ok := cloneCache[w.Name]; ok {
				return ci
			}
			cp := hlc.MustCheck(w.Source)
			prog, err := compiler.Compile(cp, isa.AMD64, compiler.O0)
			if err != nil {
				b.Fatal(err)
			}
			prof, err := profile.Collect(prog, w.Setup, w.Name, profile.Options{})
			if err != nil {
				b.Fatal(err)
			}
			clone, _, err := core.Synthesize(prof, core.Config{Seed: experiments.CloneSeed})
			if err != nil {
				b.Fatal(err)
			}
			ccp, err := hlc.Check(clone)
			if err != nil {
				b.Fatal(err)
			}
			ci := &cloneInfo{prof: prof, cloneC: ccp}
			cloneCache[w.Name] = ci
			return ci
		}
		for _, use := range benchUses {
			for n := 0; n < use.count; n++ {
				for _, w := range suite {
					ci := cloneOf(w)
					cp := hlc.MustCheck(w.Source)
					if _, err := compiler.Compile(cp, isa.AMD64, use.level); err != nil {
						b.Fatal(err)
					}
					if _, err := compiler.Compile(ci.cloneC, isa.AMD64, use.level); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

// BenchmarkPipelineParallelCached runs the same request pattern through the
// pipeline with four workers and a shared artifact cache: repeated uses of
// a point are hits, and independent points fan out.
func BenchmarkPipelineParallelCached(b *testing.B) {
	suite := experiments.Quick()
	ctx := context.Background()
	type job struct {
		w     *workloads.Workload
		level compiler.OptLevel
	}
	var jobs []job
	for _, use := range benchUses {
		for n := 0; n < use.count; n++ {
			for _, w := range suite {
				jobs = append(jobs, job{w, use.level})
			}
		}
	}
	for i := 0; i < b.N; i++ {
		p := pipeline.New(pipeline.Options{Workers: 4, Seed: experiments.CloneSeed})
		if _, err := pipeline.Map(ctx, p, jobs, func(ctx context.Context, j job) (pipeline.Pair, error) {
			return p.PairAt(ctx, j.w, isa.AMD64, j.level)
		}); err != nil {
			b.Fatal(err)
		}
	}
}
