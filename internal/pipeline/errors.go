package pipeline

import (
	"fmt"

	"repro/internal/compiler"
)

// Stage identifies one step of the synthesis framework. The stages mirror
// the paper's per-workload flow: parse and type-check the source, compile
// it for a target/level, profile the low-optimization binary, synthesize
// the clone, and validate that the clone is itself a well-formed,
// executable benchmark.
type Stage int

// Pipeline stages, in execution order. Later additions (Simulate, then
// Generate) are appended after Validate regardless of where they sit in
// the dataflow: the order is part of the CacheStats.Computed indexing
// contract.
const (
	StageParse Stage = iota
	StageCheck
	StageCompile
	StageProfile
	StageSynthesize
	StageValidate
	StageSimulate
	StageGenerate
)

var stageNames = [...]string{
	"parse", "check", "compile", "profile", "synthesize", "validate", "simulate", "generate",
}

// NumStages is the number of pipeline stages; CacheStats.Computed is
// indexed by Stage.
const NumStages = len(stageNames)

// String returns the stage's lowercase name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// StageError ties a failure to the pipeline coordinates that produced it,
// so a fan-out over hundreds of (workload, ISA, level) jobs reports exactly
// which stage of which job broke instead of a bare wrapped string.
type StageError struct {
	Stage    Stage
	Workload string
	ISA      string            // target ISA name, if the stage has one
	Level    compiler.OptLevel // optimization level, if the stage has one
	Clone    bool              // the failing artifact was the synthetic clone
	Err      error
}

// Error renders the coordinates followed by the underlying cause.
func (e *StageError) Error() string {
	what := e.Workload
	if e.Clone {
		what += " (clone)"
	}
	if e.ISA != "" {
		what = fmt.Sprintf("%s [%s %v]", what, e.ISA, e.Level)
	}
	return fmt.Sprintf("pipeline: %v %s: %v", e.Stage, what, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }
