package pipeline_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/store"
	"repro/internal/workloads"
)

// quickSuite returns the quick-suite workloads for determinism runs
// (duplicated from internal/experiments to avoid an import cycle risk;
// the suite's exact membership is irrelevant here).
func quickSuite(t *testing.T) []*workloads.Workload {
	t.Helper()
	names := []string{
		"adpcm/small1", "basicmath/small", "bitcount/small", "crc32/small",
		"dijkstra/small", "fft/small1", "gsm/small1", "jpeg/large1",
		"patricia/small", "qsort/large", "sha/small", "stringsearch/small",
		"susan/small2",
	}
	var out []*workloads.Workload
	for _, n := range names {
		w := workloads.ByName(n)
		if w == nil {
			t.Fatalf("missing workload %s", n)
		}
		out = append(out, w)
	}
	return out
}

// TestPipelineProfileDeterminism profiles the quick suite through two
// pipelines — one serial, one with full worker fan-out — and requires the
// serialized stream profiles to be byte-identical. Profiles are
// content-addressed cache artifacts, and the stride-stream profiler keeps
// online per-site state (space-saving stride counters, reuse windows):
// any ordering sensitivity there would poison shared stores. Mirrors
// TestSimulateDeterminism; run under -race it also proves Collect shares
// no hidden state across the pool.
func TestPipelineProfileDeterminism(t *testing.T) {
	ctx := context.Background()
	suite := quickSuite(t)

	serial := pipeline.New(pipeline.Options{Workers: 1, Seed: 7})
	fanout := pipeline.New(pipeline.Options{Workers: 8, Seed: 7})

	type keyed struct {
		name    string
		payload []byte
	}
	collect := func(p *pipeline.Pipeline) []keyed {
		rows, err := pipeline.Map(ctx, p, suite, func(ctx context.Context, w *workloads.Workload) (keyed, error) {
			prof, err := p.Profile(ctx, w)
			if err != nil {
				return keyed{}, err
			}
			payload, err := store.EncodeProfile(prof)
			if err != nil {
				return keyed{}, err
			}
			return keyed{name: w.Name, payload: payload}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}

	a := collect(serial)
	b := collect(fanout)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].name != b[i].name {
			t.Fatalf("row %d order differs: %s vs %s", i, a[i].name, b[i].name)
		}
		if !bytes.Equal(a[i].payload, b[i].payload) {
			t.Errorf("%s: serialized profile differs between workers=1 and workers=8", a[i].name)
		}
	}

	// The profiles must actually carry stream descriptors — a silent
	// regression to class-only profiles would make this test vacuous.
	prof, err := serial.Profile(ctx, suite[0])
	if err != nil {
		t.Fatal(err)
	}
	streams := 0
	for _, n := range prof.Graph.Nodes {
		for i := range n.Instrs {
			if n.Instrs[i].Stream != nil {
				streams++
			}
		}
	}
	if streams == 0 {
		t.Error("quick-suite profile carries no stream descriptors")
	}
}
