package pipeline

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/compiler"
	"repro/internal/store"
)

// Key identifies one artifact in the content-addressed cache. Two jobs that
// agree on every field share the artifact: a compile of crc32/small for
// amd64 -O2 is the same whether Fig. 6, Fig. 8, or Fig. 11 asked for it.
//
// Keys address both cache tiers. In memory the struct itself is the map
// key; on disk the artifact is filed under Digest with Canonical stored in
// the entry envelope and re-verified on read, so a 64-bit digest collision
// degrades to a miss instead of a silently wrong artifact.
type Key struct {
	Stage    Stage
	Workload string
	ISA      string
	Level    compiler.OptLevel
	Seed     int64        // clone-synthesis seed (clone artifacts only)
	Clone    bool         // artifact derives from the synthetic clone
	Cache    cache.Config // profiling cache configuration (profile-derived artifacts)
	// TargetDyn and MaxInstrs carry the pipeline options that shape
	// profile- and clone-derived artifacts, so two processes sharing a
	// persistent store with different bounds never exchange artifacts.
	TargetDyn uint64
	MaxInstrs uint64
	// Src fingerprints the workload's HLC source on keys whose artifacts
	// are persisted, so editing a workload self-invalidates its disk
	// entries instead of serving stale artifacts under the same name.
	// (Compiler or profiler changes are not fingerprinted: those require
	// a store.SchemaVersion bump or a fresh store directory.)
	Src string
	// Sim scopes Simulate artifacts to one machine configuration and
	// simulation bound: the cpu.Config fingerprint plus the instruction
	// budget ("<fingerprint>:<maxInstrs>"). Empty on every other stage.
	Sim string
}

// Canonical returns the versioned, unambiguous encoding of the key that
// disk entries store and verify. Changing this format is a store schema
// change: bump store.SchemaVersion alongside it (v2 added the Sim field;
// v3 partitions stream-profiled artifacts — profiles carry per-site
// stride-stream descriptors and clones are synthesized from them, so
// artifacts computed under the v2 single-class model must never be
// served to a v3 pipeline; v4 adds the Generate stage, whose reports
// embed whole-corpus coverage statistics keyed by a generation-spec
// fingerprint carried in Workload; v5 invalidates everything simulated
// or synthesized before the timing model learned memory dependences —
// store-queue forwarding and the dependence-chain emission change both
// cycle counts and clone sources, so pre-v5 artifacts are stale).
func (k Key) Canonical() string {
	return fmt.Sprintf("v5|%d|%s|%s|%d|%d|%t|%s|%d|%d|%d|%d|%d|%s|%s",
		k.Stage, k.Workload, k.ISA, k.Level, k.Seed, k.Clone,
		k.Cache.Name, k.Cache.Size, k.Cache.LineSize, k.Cache.Assoc,
		k.TargetDyn, k.MaxInstrs, k.Src, k.Sim)
}

// Digest returns the printable content address: a 64-bit FNV-1a hash over
// Canonical, used as the disk filename and in logs and diagnostics.
func (k Key) Digest() string {
	h := fnv.New64a()
	h.Write([]byte(k.Canonical()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// StoreKind returns the store artifact kind the key's stage persists, or
// "" for memory-only stages (Parse, Check). Callers probing a store for an
// artifact's presence — the cluster coordinator deduplicating jobs against
// already-stored work — pass it alongside Digest and Canonical so a digest
// collision between artifact types reads as absent.
func (k Key) StoreKind() string {
	switch k.Stage {
	case StageCompile:
		return store.KindProgram
	case StageProfile:
		return store.KindProfile
	case StageSynthesize:
		return store.KindClone
	case StageValidate:
		return store.KindMarker
	case StageSimulate:
		return store.KindSim
	case StageGenerate:
		return store.KindGenerate
	}
	return ""
}

// CacheStats reports artifact-cache effectiveness across both tiers.
type CacheStats struct {
	Hits     uint64 // requests satisfied by (or coalesced onto) an in-memory entry
	Misses   uint64 // requests that computed the artifact
	DiskHits uint64 // memory misses satisfied by the persistent store
	// DiskErrors counts store entries that failed to decode and store
	// writes that failed; both degrade to recomputation, never failure.
	DiskErrors uint64
	// Computed counts artifact computations per stage, so a warm-store run
	// can assert that no Compile or Profile work was redone.
	Computed [NumStages]uint64
}

// ComputedFor returns the number of artifacts computed for one stage.
func (s CacheStats) ComputedFor(st Stage) uint64 {
	if int(st) < len(s.Computed) {
		return s.Computed[st]
	}
	return 0
}

// Add returns the counter-wise sum s+t. The cluster consolidator uses it to
// merge per-shard statistics into one cluster-wide report.
func (s CacheStats) Add(t CacheStats) CacheStats {
	s.Hits += t.Hits
	s.Misses += t.Misses
	s.DiskHits += t.DiskHits
	s.DiskErrors += t.DiskErrors
	for i := range s.Computed {
		s.Computed[i] += t.Computed[i]
	}
	return s
}

// Sub returns the counter-wise difference s−t. Counters only grow, so a
// worker that snapshots stats before and after a job gets that job's exact
// delta with later.Sub(earlier).
func (s CacheStats) Sub(t CacheStats) CacheStats {
	s.Hits -= t.Hits
	s.Misses -= t.Misses
	s.DiskHits -= t.DiskHits
	s.DiskErrors -= t.DiskErrors
	for i := range s.Computed {
		s.Computed[i] -= t.Computed[i]
	}
	return s
}

// entry is one in-flight or completed artifact. Waiters block on ready, so
// concurrent requests for the same key coalesce onto a single computation.
type entry struct {
	ready chan struct{}
	val   any
	err   error
}

// codec (de)serializes one artifact kind for the disk tier. Stages whose
// artifacts are process-bound (ASTs with pointer identity) have no codec
// and stay memory-only.
type codec struct {
	kind   string
	encode func(any) ([]byte, error)
	decode func([]byte) (any, error)
}

// artifactCache is the content-addressed store behind a Pipeline: an
// in-memory map with single-flight coalescing, optionally backed by a
// persistent disk tier shared across processes. The map is keyed by the
// full Key struct — Digest is the printable content address, but using it
// as the map key would turn a 64-bit hash collision into a silently wrong
// artifact.
type artifactCache struct {
	mu         sync.Mutex
	m          map[Key]*entry
	disk       store.Backend // nil = memory-only
	hits       atomic.Uint64
	misses     atomic.Uint64
	diskHits   atomic.Uint64
	diskErrors atomic.Uint64
	computed   [NumStages]atomic.Uint64
	// tm mirrors the atomics above into the telemetry registry (and traces
	// computations); every increment site updates both, so /metrics always
	// agrees with CacheStats.
	tm *cacheTelemetry
}

func newArtifactCache(disk store.Backend, tm *cacheTelemetry) *artifactCache {
	return &artifactCache{m: make(map[Key]*entry), disk: disk, tm: tm}
}

func (c *artifactCache) stats() CacheStats {
	s := CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		DiskHits:   c.diskHits.Load(),
		DiskErrors: c.diskErrors.Load(),
	}
	for i := range c.computed {
		s.Computed[i] = c.computed[i].Load()
	}
	return s
}

// fromDisk tries to satisfy k from the persistent tier. A damaged or
// mismatched entry is a miss.
func (c *artifactCache) fromDisk(k Key, cd *codec) (any, bool) {
	if c.disk == nil || cd == nil {
		return nil, false
	}
	// Backend.Get verifies the envelope checksum and canonical key; any
	// transport- or corruption-level damage reads as a miss here and the
	// decode below catches payloads that are valid JSON but wrong shape.
	payload, ok := c.disk.Get(k.Digest(), cd.kind, k.Canonical())
	if !ok {
		return nil, false
	}
	v, err := cd.decode(payload)
	if err != nil {
		c.diskErrors.Add(1)
		c.tm.diskErrors.Inc()
		return nil, false
	}
	return v, true
}

// toDisk writes a freshly computed artifact through to the persistent
// tier. Failures are counted, not propagated: the store is a cache.
func (c *artifactCache) toDisk(k Key, cd *codec, v any) {
	if c.disk == nil || cd == nil {
		return
	}
	payload, err := cd.encode(v)
	if err == nil {
		err = c.disk.Put(k.Digest(), cd.kind, k.Canonical(), payload)
	}
	if err != nil {
		c.diskErrors.Add(1)
		c.tm.diskErrors.Inc()
	}
}

// do returns the artifact for k, computing it with fn at most once across
// all concurrent callers. Lookup order is memory, then disk (when cd and a
// store are configured), then fn with a write-through to disk. Failed
// computations are not cached, and waiters that coalesced onto a
// computation whose owner got canceled retry under their own context
// instead of inheriting the cancellation — the pipeline is shared, and one
// run's cancel must not fail an unrelated run's jobs.
//
// fn receives the context to run under: when tracing is enabled this is
// the computation's span context, so nested stage calls made inside fn
// parent their spans under this artifact's span.
func (c *artifactCache) do(ctx context.Context, k Key, cd *codec, fn func(context.Context) (any, error)) (any, error) {
	for {
		c.mu.Lock()
		if e, ok := c.m[k]; ok {
			c.mu.Unlock()
			c.hits.Add(1)
			c.tm.hits.Inc()
			select {
			case <-e.ready:
				if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					continue // owner canceled, we were not: retry
				}
				return e.val, e.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		e := &entry{ready: make(chan struct{})}
		c.m[k] = e
		c.mu.Unlock()

		if v, ok := c.fromDisk(k, cd); ok {
			c.diskHits.Add(1)
			c.tm.diskHits.Inc()
			e.val = v
			close(e.ready)
			return v, nil
		}

		if c.disk != nil && cd != nil {
			// Persisted stage over a shared store: gate the computation on a
			// cross-process in-progress marker so concurrent processes never
			// duplicate it. computeGated writes the artifact through itself.
			e.val, e.err = c.computeGated(ctx, k, cd, fn)
		} else {
			e.val, e.err = c.compute(ctx, k, fn)
		}
		if e.err != nil {
			c.mu.Lock()
			delete(c.m, k)
			c.mu.Unlock()
		}
		close(e.ready)
		return e.val, e.err
	}
}

// compute runs fn, counting it as an actual artifact computation, timing
// it into the stage duration histogram, and wrapping it in a span named
// after the stage so nested stage calls trace as children.
func (c *artifactCache) compute(ctx context.Context, k Key, fn func(context.Context) (any, error)) (any, error) {
	c.misses.Add(1)
	c.tm.misses.Inc()
	inRange := int(k.Stage) < len(c.computed)
	if inRange {
		c.computed[k.Stage].Add(1)
		c.tm.computed[k.Stage].Inc()
	}
	ctx, span := c.tm.tracer.Start(ctx, k.Stage.String())
	span.SetAttr("workload", k.Workload)
	if k.ISA != "" {
		span.SetAttr("isa", k.ISA)
	}
	if k.Clone {
		span.SetAttr("clone", "true")
	}
	start := time.Now()
	v, err := fn(ctx)
	if inRange {
		c.tm.seconds[k.Stage].ObserveSince(start)
	}
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	return v, err
}

// The in-progress marker timings. A process that vanishes mid-computation
// (crash, SIGKILL) leaves its marker behind; waiters steal it once the
// heartbeat goes stale, so wipTTL bounds how long a crash can stall other
// processes. Variables rather than constants so tests can compress time.
var (
	wipTTL  = 30 * time.Second
	wipPoll = 25 * time.Millisecond
)

// wipName is the in-progress marker path for one artifact.
func wipName(k Key) string {
	return store.WIPDir + "/" + k.Digest() + ".json"
}

// computeGated computes a persisted artifact under a store-level
// in-progress marker, so processes sharing a store — including ones on
// different machines sharing it over HTTP — single-flight the computation
// exactly like goroutines sharing the in-memory map do. The winner of the
// exclusive marker creation computes, writes the artifact through, then
// removes the marker; losers poll for the artifact and adopt it as a disk
// hit. A stale marker (no heartbeat for wipTTL) is stolen, and any marker
// operation failing for other reasons degrades to an uncoordinated compute:
// the gate is a dedup optimization, never a correctness gate.
func (c *artifactCache) computeGated(ctx context.Context, k Key, cd *codec, fn func(context.Context) (any, error)) (any, error) {
	marker := wipName(k)
	retried := false
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		err := c.disk.CreateExclusive(marker, []byte(k.Canonical()))
		if err == nil {
			if retried {
				// We waited on another process's marker before winning the
				// claim; it may have finished between our last poll and now.
				if v, ok := c.fromDisk(k, cd); ok {
					c.disk.Remove(marker)
					c.diskHits.Add(1)
					c.tm.diskHits.Inc()
					c.tm.wipAdopted.Inc()
					return v, nil
				}
			}
			return c.computeOwned(ctx, k, cd, marker, fn)
		}
		if !errors.Is(err, fs.ErrExist) {
			// Store flake on the marker path: fall back to computing without
			// coordination rather than blocking the pipeline.
			c.diskErrors.Add(1)
			c.tm.diskErrors.Inc()
			v, ferr := c.compute(ctx, k, fn)
			if ferr == nil {
				c.toDisk(k, cd, v)
			}
			return v, ferr
		}
		// Another process holds the claim: wait for its artifact.
		retried = true
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wipPoll):
		}
		if v, ok := c.fromDisk(k, cd); ok {
			c.diskHits.Add(1)
			c.tm.diskHits.Inc()
			c.tm.wipAdopted.Inc()
			return v, nil
		}
		if fi, serr := c.disk.Stat(marker); serr == nil {
			if time.Since(fi.ModTime) > wipTTL {
				// The owner stopped heartbeating: steal the stale marker and
				// loop back to claim it ourselves.
				c.disk.Remove(marker)
			}
		}
		// Marker gone without an artifact (owner failed): loop reclaims it.
	}
}

// computeOwned runs fn while holding the in-progress marker, heartbeating
// it so waiters can tell a live computation from a dead process. The
// artifact is written through before the marker is released, so a waiter
// that observes the marker disappear without an artifact knows the owner
// failed.
func (c *artifactCache) computeOwned(ctx context.Context, k Key, cd *codec, marker string, fn func(context.Context) (any, error)) (any, error) {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(wipTTL / 3)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.disk.Touch(marker)
			}
		}
	}()
	v, err := c.compute(ctx, k, fn)
	if err == nil {
		c.toDisk(k, cd, v)
	}
	close(stop)
	<-done
	c.disk.Remove(marker)
	return v, err
}
