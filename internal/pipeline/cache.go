package pipeline

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/compiler"
)

// Key identifies one artifact in the content-addressed cache. Two jobs that
// agree on every field share the artifact: a compile of crc32/small for
// amd64 -O2 is the same whether Fig. 6, Fig. 8, or Fig. 11 asked for it.
type Key struct {
	Stage    Stage
	Workload string
	ISA      string
	Level    compiler.OptLevel
	Seed     int64        // clone-synthesis seed (clone artifacts only)
	Clone    bool         // artifact derives from the synthetic clone
	Cache    cache.Config // profiling cache configuration (profile-derived artifacts)
}

// Digest returns the printable content address: a 64-bit FNV-1a hash over
// the canonical encoding of every field, for logs and diagnostics.
func (k Key) Digest() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d|%d|%t|%s|%d|%d|%d",
		k.Stage, k.Workload, k.ISA, k.Level, k.Seed, k.Clone,
		k.Cache.Name, k.Cache.Size, k.Cache.LineSize, k.Cache.Assoc)
	return fmt.Sprintf("%016x", h.Sum64())
}

// CacheStats reports artifact-cache effectiveness.
type CacheStats struct {
	Hits   uint64 // requests satisfied by (or coalesced onto) an existing entry
	Misses uint64 // requests that computed the artifact
}

// entry is one in-flight or completed artifact. Waiters block on ready, so
// concurrent requests for the same key coalesce onto a single computation.
type entry struct {
	ready chan struct{}
	val   any
	err   error
}

// artifactCache is the in-memory content-addressed store behind a Pipeline.
// The map is keyed by the full Key struct — Digest is the printable content
// address, but using it as the map key would turn a 64-bit hash collision
// into a silently wrong artifact.
type artifactCache struct {
	mu     sync.Mutex
	m      map[Key]*entry
	hits   atomic.Uint64
	misses atomic.Uint64
}

func newArtifactCache() *artifactCache {
	return &artifactCache{m: make(map[Key]*entry)}
}

func (c *artifactCache) stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// do returns the artifact for k, computing it with fn at most once across
// all concurrent callers. Failed computations are not cached, and waiters
// that coalesced onto a computation whose owner got canceled retry under
// their own context instead of inheriting the cancellation — the pipeline
// is shared, and one run's cancel must not fail an unrelated run's jobs.
func (c *artifactCache) do(ctx context.Context, k Key, fn func() (any, error)) (any, error) {
	for {
		c.mu.Lock()
		if e, ok := c.m[k]; ok {
			c.mu.Unlock()
			c.hits.Add(1)
			select {
			case <-e.ready:
				if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					continue // owner canceled, we were not: retry
				}
				return e.val, e.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		e := &entry{ready: make(chan struct{})}
		c.m[k] = e
		c.mu.Unlock()
		c.misses.Add(1)

		e.val, e.err = fn()
		if e.err != nil {
			c.mu.Lock()
			delete(c.m, k)
			c.mu.Unlock()
		}
		close(e.ready)
		return e.val, e.err
	}
}
