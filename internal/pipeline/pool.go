package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// PanicError is a panic recovered from a stage function running on the
// fan-out pool, converted into an ordinary job failure. Without the
// conversion a panicking stage would kill the whole process: the panic
// unwinds a pool goroutine, where no caller's recover can reach it. The
// cluster worker depends on this — it must observe a panicking job as an
// error so it can release the lease instead of leaking it until TTL expiry.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error renders the panic value; the stack is kept separate so callers can
// log it without doubling every error message.
func (e *PanicError) Error() string {
	return fmt.Sprintf("pipeline: job panicked: %v", e.Value)
}

// Map fans fn out over jobs on the pipeline's bounded worker pool and
// returns the results in job order, which keeps aggregation deterministic
// regardless of worker count or completion order. The first failing job
// cancels the context seen by the others; jobs not yet started are skipped.
// The returned error is the lowest-indexed failure among the jobs that ran
// (cancellation noise from siblings is filtered out).
func Map[J, R any](ctx context.Context, p *Pipeline, jobs []J, fn func(context.Context, J) (R, error)) ([]R, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.Workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]R, len(jobs))
	errs := make([]error, len(jobs))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				r, err := runJob(ctx, jobs[i], fn)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = r
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	// Every failure was a cancellation: surface the caller's own
	// cancellation if any, otherwise the first one observed.
	if err := context.Cause(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runJob invokes fn for one job, recovering a panic into a *PanicError so
// it propagates as the job's failure instead of tearing down the process.
func runJob[J, R any](ctx context.Context, job J, fn func(context.Context, J) (R, error)) (r R, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, job)
}

// ForEach is Map for jobs that produce no result.
func ForEach[J any](ctx context.Context, p *Pipeline, jobs []J, fn func(context.Context, J) error) error {
	_, err := Map(ctx, p, jobs, func(ctx context.Context, j J) (struct{}, error) {
		return struct{}{}, fn(ctx, j)
	})
	return err
}
