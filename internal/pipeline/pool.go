package pipeline

import (
	"context"
	"errors"
	"sync"
)

// Map fans fn out over jobs on the pipeline's bounded worker pool and
// returns the results in job order, which keeps aggregation deterministic
// regardless of worker count or completion order. The first failing job
// cancels the context seen by the others; jobs not yet started are skipped.
// The returned error is the lowest-indexed failure among the jobs that ran
// (cancellation noise from siblings is filtered out).
func Map[J, R any](ctx context.Context, p *Pipeline, jobs []J, fn func(context.Context, J) (R, error)) ([]R, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.Workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]R, len(jobs))
	errs := make([]error, len(jobs))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				r, err := fn(ctx, jobs[i])
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = r
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	// Every failure was a cancellation: surface the caller's own
	// cancellation if any, otherwise the first one observed.
	if err := context.Cause(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// ForEach is Map for jobs that produce no result.
func ForEach[J any](ctx context.Context, p *Pipeline, jobs []J, fn func(context.Context, J) error) error {
	_, err := Map(ctx, p, jobs, func(ctx context.Context, j J) (struct{}, error) {
		return struct{}{}, fn(ctx, j)
	})
	return err
}
