package pipeline_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

func mustWorkload(t *testing.T, name string) *workloads.Workload {
	t.Helper()
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("missing workload %s", name)
	}
	return w
}

func tinySuite(t *testing.T) []*workloads.Workload {
	t.Helper()
	var out []*workloads.Workload
	for _, n := range []string{"crc32/small", "dijkstra/small", "fft/small1"} {
		out = append(out, mustWorkload(t, n))
	}
	return out
}

// TestPipelineCacheAccounting verifies that artifacts are computed once and
// shared: a repeated identical request is all hits, and a new optimization
// level adds exactly the two compiles (original and clone) it needs.
func TestPipelineCacheAccounting(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 2, Seed: 1})
	ctx := context.Background()
	w := mustWorkload(t, "crc32/small")

	if _, err := p.PairAt(ctx, w, isa.AMD64, compiler.O0); err != nil {
		t.Fatal(err)
	}
	first := p.CacheStats()
	if first.Misses == 0 {
		t.Fatal("first request should populate the cache")
	}

	if _, err := p.PairAt(ctx, w, isa.AMD64, compiler.O0); err != nil {
		t.Fatal(err)
	}
	second := p.CacheStats()
	if second.Misses != first.Misses {
		t.Errorf("repeated request recomputed artifacts: misses %d -> %d", first.Misses, second.Misses)
	}
	if second.Hits <= first.Hits {
		t.Errorf("repeated request did not hit the cache: hits %d -> %d", first.Hits, second.Hits)
	}

	if _, err := p.PairAt(ctx, w, isa.AMD64, compiler.O2); err != nil {
		t.Fatal(err)
	}
	third := p.CacheStats()
	if got := third.Misses - second.Misses; got != 2 {
		t.Errorf("new level should add exactly 2 compiles (orig+clone), added %d misses", got)
	}
}

// TestPipelineCacheSharedAcrossStages verifies the cross-stage reuse the
// seed code lacked: profiling compiles the workload at the profiling point,
// and a later explicit compile at that same point is a cache hit.
func TestPipelineCacheSharedAcrossStages(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 1, Seed: 1})
	ctx := context.Background()
	w := mustWorkload(t, "crc32/small")

	if _, err := p.Profile(ctx, w); err != nil {
		t.Fatal(err)
	}
	before := p.CacheStats()
	if _, err := p.Compile(ctx, w, isa.AMD64, compiler.O0); err != nil {
		t.Fatal(err)
	}
	after := p.CacheStats()
	if after.Misses != before.Misses {
		t.Errorf("compile at the profiling point should be cached: misses %d -> %d",
			before.Misses, after.Misses)
	}
}

// TestPipelineConcurrentSingleflight hammers one artifact from many
// goroutines through Map and checks it is computed exactly once.
func TestPipelineConcurrentSingleflight(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 8, Seed: 1})
	ctx := context.Background()
	w := mustWorkload(t, "crc32/small")

	jobs := make([]int, 32)
	_, err := pipeline.Map(ctx, p, jobs, func(ctx context.Context, _ int) (*isa.Program, error) {
		return p.Compile(ctx, w, isa.AMD64, compiler.O1)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := p.CacheStats()
	// parse + check + compile = 3 artifacts; everything else coalesced.
	if st.Misses != 3 {
		t.Errorf("expected 3 artifact computations (parse, check, compile), got %d misses", st.Misses)
	}
	if st.Hits < uint64(len(jobs)-1) {
		t.Errorf("expected at least %d coalesced hits, got %d", len(jobs)-1, st.Hits)
	}
}

// TestPipelineCancellation cancels the context mid-fan-out and expects the
// run to stop early with context.Canceled instead of finishing every job.
func TestPipelineCancellation(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 2, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	suite := tinySuite(t)
	var jobs []int
	for i := 0; i < 64; i++ {
		jobs = append(jobs, i)
	}
	var started atomic.Int32
	_, err := pipeline.Map(ctx, p, jobs, func(ctx context.Context, i int) (int, error) {
		if started.Add(1) == 1 {
			cancel() // first job pulls the plug on everyone
		}
		w := suite[i%len(suite)]
		if _, err := p.Compile(ctx, w, isa.AMD64, compiler.Levels[i%len(compiler.Levels)]); err != nil {
			return 0, err
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := started.Load(); n == int32(len(jobs)) {
		t.Errorf("cancellation did not stop the fan-out: all %d jobs ran", n)
	}
}

// TestPipelineDeterministicAcrossWorkers runs the same job set on a serial
// and a wide pipeline and requires identical artifacts and orderings.
func TestPipelineDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	suite := tinySuite(t)

	type point struct {
		w     *workloads.Workload
		level compiler.OptLevel
	}
	var jobs []point
	for _, w := range suite {
		for _, level := range compiler.Levels {
			jobs = append(jobs, point{w, level})
		}
	}

	type outcome struct {
		CloneSource string
		OrigStatic  int
		SynStatic   int
	}
	runWith := func(workers int) []outcome {
		p := pipeline.New(pipeline.Options{Workers: workers, Seed: 7})
		res, err := pipeline.Map(ctx, p, jobs, func(ctx context.Context, pt point) (outcome, error) {
			pair, err := p.PairAt(ctx, pt.w, isa.AMD64, pt.level)
			if err != nil {
				return outcome{}, err
			}
			return outcome{
				CloneSource: pair.Clone.Source,
				OrigStatic:  pair.Orig.NumStaticInstrs(),
				SynStatic:   pair.Syn.NumStaticInstrs(),
			}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	serial := runWith(1)
	wide := runWith(8)
	for i := range jobs {
		if serial[i] != wide[i] {
			t.Fatalf("job %d (%s %v) differs between -workers=1 and -workers=8",
				i, jobs[i].w.Name, jobs[i].level)
		}
	}
}

// TestPipelineStageErrors checks that failures carry their stage and
// workload coordinates.
func TestPipelineStageErrors(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 1})
	ctx := context.Background()

	bad := &workloads.Workload{Name: "bad/parse", Bench: "bad", Source: "void main( {"}
	_, err := p.Compile(ctx, bad, isa.AMD64, compiler.O0)
	var se *pipeline.StageError
	if !errors.As(err, &se) {
		t.Fatalf("want *StageError, got %T: %v", err, err)
	}
	if se.Stage != pipeline.StageParse || se.Workload != "bad/parse" {
		t.Errorf("wrong coordinates: stage=%v workload=%q", se.Stage, se.Workload)
	}
	if se.Error() == "" || se.Unwrap() == nil {
		t.Error("StageError must render and unwrap")
	}

	// The error was not cached: a later request retries the computation.
	missesAfterFailure := p.CacheStats().Misses
	_, err2 := p.Compile(ctx, bad, isa.AMD64, compiler.O0)
	if !errors.As(err2, &se) {
		t.Fatalf("second attempt: want *StageError, got %v", err2)
	}
	if p.CacheStats().Misses == missesAfterFailure {
		t.Error("failed artifact should not be cached")
	}
}

// TestPipelineMapErrorDeterminism makes one job fail and requires that
// exact failure (not a sibling's cancellation) to be the error reported,
// for any worker count.
func TestPipelineMapErrorDeterminism(t *testing.T) {
	ctx := context.Background()
	jobs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 4} {
		p := pipeline.New(pipeline.Options{Workers: workers})
		_, err := pipeline.Map(ctx, p, jobs, func(ctx context.Context, i int) (int, error) {
			if i == 3 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("workers=%d: want the failing job's error, got %v", workers, err)
		}
	}
}

// TestPipelineValidate runs the Validate stage end to end.
func TestPipelineValidate(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 2, Seed: 1})
	ctx := context.Background()
	if err := p.Validate(ctx, mustWorkload(t, "crc32/small")); err != nil {
		t.Fatalf("clone failed validation: %v", err)
	}
}

// TestPipelineKeyDigest pins the content-address property: equal keys agree,
// and changing any field changes the digest.
func TestPipelineKeyDigest(t *testing.T) {
	base := pipeline.Key{Stage: pipeline.StageCompile, Workload: "crc32/small",
		ISA: "amd64v", Level: compiler.O2, Seed: 9}
	if base.Digest() != base.Digest() {
		t.Fatal("digest is not stable")
	}
	variants := []pipeline.Key{base, base, base, base, base}
	variants[0].Stage = pipeline.StageProfile
	variants[1].Workload = "crc32/large"
	variants[2].Level = compiler.O3
	variants[3].Seed = 10
	variants[4].Clone = true
	seen := map[string]bool{base.Digest(): true}
	for i, k := range variants {
		d := k.Digest()
		if seen[d] {
			t.Errorf("variant %d collides with a previous digest", i)
		}
		seen[d] = true
	}
}
