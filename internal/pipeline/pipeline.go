// Package pipeline models the paper's framework as typed, composable
// stages — Parse → Check → Compile → Profile → Synthesize → Validate —
// executed by a bounded worker pool over the workload × ISA × optimization
// level cross product, with an in-memory content-addressed artifact cache
// so each compile and each profile is computed once and shared across every
// experiment that needs it.
//
// The seed repository ran the same flow as ad-hoc sequential loops with
// private compile/profile helpers duplicated through internal/experiments;
// this package is the orchestration layer those experiments (and cmd/synth)
// now submit declarative jobs to. Every stage takes a context.Context and
// returns structured *StageError failures, cancellation is observed at
// stage boundaries and between fan-out jobs, and results are deterministic
// for a fixed seed regardless of worker count.
package pipeline

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/cache"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Options configures a Pipeline.
type Options struct {
	// Workers bounds the fan-out pool (0 = GOMAXPROCS).
	Workers int
	// Seed drives clone synthesis; equal seeds reproduce clones exactly.
	Seed int64
	// TargetDyn overrides the clone's intended dynamic instruction count
	// (0 = the core package default).
	TargetDyn uint64
	// ProfileISA and ProfileLevel fix where profiling happens. The paper
	// profiles at a low optimization level; defaults are amd64 and -O0.
	ProfileISA   *isa.Desc
	ProfileLevel compiler.OptLevel
	// ProfileCache is the cache simulated while profiling (zero value =
	// the profile package default).
	ProfileCache cache.Config
	// MaxInstrs bounds profiled executions (0 = VM default).
	MaxInstrs uint64
	// Store, when non-nil, adds a persistent tier under the artifact
	// cache: memory misses probe the backend first, and computed artifacts
	// are written through under a cross-process in-progress marker, so
	// separate processes sharing one backend — a store directory, or a
	// `synth serve` node reached over HTTP — never duplicate a compile,
	// profile, or synthesis. Off by default (nil = memory-only caching,
	// the pre-store behavior). Callers holding a concrete backend pointer
	// must take care not to store a typed nil here; pass a literal nil.
	Store store.Backend
	// Metrics, when non-nil, receives the pipeline's cache and per-stage
	// metrics (synth_pipeline_*). The counters mirror CacheStats increment
	// for increment, so a /metrics scrape always matches the printed stats.
	// Nil disables metric recording at zero cost.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records one span per artifact computation,
	// named after the stage and nested along the stage dataflow (a cold
	// synthesize span contains profile, compile, check, and parse spans).
	// Nil disables tracing at zero cost.
	Tracer *telemetry.Tracer
}

// Pipeline executes framework stages with caching and bounded parallelism.
// It is safe for concurrent use; experiments running in parallel share one
// pipeline and therefore one artifact cache.
type Pipeline struct {
	opts  Options
	cache *artifactCache
}

// New builds a pipeline. The zero Options value gives the paper's setup:
// profile at amd64 -O0 with the default 8KB profiling cache, GOMAXPROCS
// workers, seed 0.
func New(opts Options) *Pipeline {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.ProfileISA == nil {
		opts.ProfileISA = isa.AMD64
	}
	if opts.ProfileCache == (cache.Config{}) {
		opts.ProfileCache = profile.DefaultCache
	}
	return &Pipeline{opts: opts,
		cache: newArtifactCache(opts.Store, newCacheTelemetry(opts.Metrics, opts.Tracer))}
}

// Workers returns the fan-out bound.
func (p *Pipeline) Workers() int { return p.opts.Workers }

// Seed returns the synthesis seed.
func (p *Pipeline) Seed() int64 { return p.opts.Seed }

// CacheStats reports artifact-cache hit/miss counts so far.
func (p *Pipeline) CacheStats() CacheStats { return p.cache.stats() }

// ProfilePoint returns the (ISA, level) compilation point profiling and
// clone measurement run at.
func (p *Pipeline) ProfilePoint() (*isa.Desc, compiler.OptLevel) {
	return p.opts.ProfileISA, p.opts.ProfileLevel
}

// ProfileCacheConfig returns the profiling cache configuration.
func (p *Pipeline) ProfileCacheConfig() cache.Config { return p.opts.ProfileCache }

// Clone bundles every artifact of one synthesized benchmark.
type Clone struct {
	Prog    *hlc.Program
	Checked *hlc.CheckedProgram
	Report  core.Report
	Source  string
	Profile *profile.Profile // the profile the clone was synthesized from
}

// Pair holds the original and synthetic programs compiled for one
// (workload, ISA, level) point, plus the clone artifacts.
type Pair struct {
	Orig  *isa.Program
	Syn   *isa.Program
	Clone *Clone
}

func (p *Pipeline) fail(s Stage, w string, err error) *StageError {
	return &StageError{Stage: s, Workload: w, Err: err}
}

// Parse runs the Parse stage: workload source to AST.
func (p *Pipeline) Parse(ctx context.Context, w *workloads.Workload) (*hlc.Program, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, err := p.cache.do(ctx, Key{Stage: StageParse, Workload: w.Name}, nil, func(context.Context) (any, error) {
		prog, err := hlc.Parse(w.Source)
		if err != nil {
			return nil, p.fail(StageParse, w.Name, err)
		}
		return prog, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*hlc.Program), nil
}

// Check runs the Check stage: AST to typed program.
func (p *Pipeline) Check(ctx context.Context, w *workloads.Workload) (*hlc.CheckedProgram, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, err := p.cache.do(ctx, Key{Stage: StageCheck, Workload: w.Name}, nil, func(ctx context.Context) (any, error) {
		prog, err := p.Parse(ctx, w)
		if err != nil {
			return nil, err
		}
		cp, err := hlc.Check(prog)
		if err != nil {
			return nil, p.fail(StageCheck, w.Name, err)
		}
		return cp, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*hlc.CheckedProgram), nil
}

// Compile runs the Compile stage for the original workload at one
// (ISA, level) point.
func (p *Pipeline) Compile(ctx context.Context, w *workloads.Workload, target *isa.Desc, level compiler.OptLevel) (*isa.Program, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := Key{Stage: StageCompile, Workload: w.Name, ISA: target.Name, Level: level,
		Src: srcID(w)}
	v, err := p.cache.do(ctx, key, codecProgram, func(ctx context.Context) (any, error) {
		cp, err := p.Check(ctx, w)
		if err != nil {
			return nil, err
		}
		out, err := compiler.Compile(cp, target, level)
		if err != nil {
			return nil, &StageError{Stage: StageCompile, Workload: w.Name,
				ISA: target.Name, Level: level, Err: err}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*isa.Program), nil
}

// Profile runs the Profile stage: execute the workload compiled at the
// pipeline's profiling point under instrumentation and build its SFGL.
func (p *Pipeline) Profile(ctx context.Context, w *workloads.Workload) (*profile.Profile, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := Key{Stage: StageProfile, Workload: w.Name, ISA: p.opts.ProfileISA.Name,
		Level: p.opts.ProfileLevel, Cache: p.opts.ProfileCache,
		MaxInstrs: p.opts.MaxInstrs, Src: srcID(w)}
	v, err := p.cache.do(ctx, key, codecProfile, func(ctx context.Context) (any, error) {
		prog, err := p.Compile(ctx, w, p.opts.ProfileISA, p.opts.ProfileLevel)
		if err != nil {
			return nil, err
		}
		prof, err := profile.Collect(prog, w.Setup, w.Name, profile.Options{
			Cache:     p.opts.ProfileCache,
			MaxInstrs: p.opts.MaxInstrs,
		})
		if err != nil {
			return nil, p.fail(StageProfile, w.Name, err)
		}
		return prof, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*profile.Profile), nil
}

// srcID fingerprints a workload's HLC source for persistent cache keys.
func srcID(w *workloads.Workload) string {
	return store.Fingerprint([]byte(w.Source))
}

func (p *Pipeline) cloneKey(s Stage, w *workloads.Workload) Key {
	return Key{Stage: s, Workload: w.Name, ISA: p.opts.ProfileISA.Name,
		Level: p.opts.ProfileLevel, Seed: p.opts.Seed, Clone: true,
		Cache: p.opts.ProfileCache, TargetDyn: p.opts.TargetDyn,
		MaxInstrs: p.opts.MaxInstrs, Src: srcID(w)}
}

// Synthesize runs the Synthesize stage: profile to benchmark clone.
func (p *Pipeline) Synthesize(ctx context.Context, w *workloads.Workload) (*Clone, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, err := p.cache.do(ctx, p.cloneKey(StageSynthesize, w), codecClone, func(ctx context.Context) (any, error) {
		prof, err := p.Profile(ctx, w)
		if err != nil {
			return nil, err
		}
		cl, err := p.synthesizeClone(prof, w.Name)
		if err != nil {
			return nil, err
		}
		return cl, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Clone), nil
}

// synthesizeClone runs the synthesis core on a profile and packages the
// result, shared by Synthesize and SynthesizeProfile.
func (p *Pipeline) synthesizeClone(prof *profile.Profile, workload string) (*Clone, error) {
	prog, rep, err := core.Synthesize(prof, core.Config{
		Seed:      p.opts.Seed,
		TargetDyn: p.opts.TargetDyn,
	})
	if err != nil {
		return nil, &StageError{Stage: StageSynthesize, Workload: workload, Clone: true, Err: err}
	}
	cp, err := hlc.Check(prog)
	if err != nil {
		return nil, &StageError{Stage: StageSynthesize, Workload: workload, Clone: true, Err: err}
	}
	return &Clone{
		Prog:    prog,
		Checked: cp,
		Report:  rep,
		Source:  hlc.Print(prog),
		Profile: prof,
	}, nil
}

// SynthesizeProfile runs the Synthesize stage on an externally supplied
// profile — one loaded from disk (`synth synthesize -from`) or merged by
// core.Consolidate — instead of a named workload. The artifact is cached
// and persisted under the profile's content fingerprint, so repeated
// synthesis from the same saved profile is as incremental as the named
// flow.
func (p *Pipeline) SynthesizeProfile(ctx context.Context, prof *profile.Profile) (*Clone, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if prof == nil || prof.Graph == nil {
		return nil, p.fail(StageSynthesize, "(profile)", fmt.Errorf("nil profile"))
	}
	payload, err := store.EncodeProfile(prof)
	if err != nil {
		return nil, p.fail(StageSynthesize, prof.Workload, err)
	}
	key := p.cloneKey(StageSynthesize, &workloads.Workload{
		Name: "profile:" + store.Fingerprint(payload),
	})
	v, err := p.cache.do(ctx, key, codecClone, func(context.Context) (any, error) {
		return p.synthesizeClone(prof, prof.Workload)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Clone), nil
}

// GenerateArtifact runs the Generate stage: it returns the cached
// generation report stored under the given spec fingerprint, computing it
// with the supplied function on a miss. The payload is opaque JSON —
// the generate package owns the report schema — but the key carries every
// pipeline option that shapes generated clones (profiling point, cache,
// seed, synthesis bounds), so two pipelines sharing a store with
// different options never exchange reports. Failed computations are not
// cached.
func (p *Pipeline) GenerateArtifact(ctx context.Context, fingerprint string, compute func(context.Context) ([]byte, error)) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := Key{Stage: StageGenerate, Workload: "generate:" + fingerprint,
		ISA: p.opts.ProfileISA.Name, Level: p.opts.ProfileLevel,
		Seed: p.opts.Seed, Cache: p.opts.ProfileCache,
		TargetDyn: p.opts.TargetDyn, MaxInstrs: p.opts.MaxInstrs}
	v, err := p.cache.do(ctx, key, codecGenerate, func(ctx context.Context) (any, error) {
		data, err := compute(ctx)
		if err != nil {
			return nil, p.fail(StageGenerate, fingerprint, err)
		}
		return data, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// CompileClone compiles the workload's synthetic clone for one
// (ISA, level) point.
func (p *Pipeline) CompileClone(ctx context.Context, w *workloads.Workload, target *isa.Desc, level compiler.OptLevel) (*isa.Program, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := p.cloneKey(StageCompile, w)
	key.ISA, key.Level = target.Name, level
	v, err := p.cache.do(ctx, key, codecProgram, func(ctx context.Context) (any, error) {
		cl, err := p.Synthesize(ctx, w)
		if err != nil {
			return nil, err
		}
		out, err := compiler.Compile(cl.Checked, target, level)
		if err != nil {
			return nil, &StageError{Stage: StageCompile, Workload: w.Name,
				ISA: target.Name, Level: level, Clone: true, Err: err}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*isa.Program), nil
}

// validateBudget bounds the Validate stage's execution of the clone.
const validateBudget = 4_000_000

// Validate runs the Validate stage: the clone must compile at the
// profiling point and execute on its own (clones are self-contained and
// need no inputs), producing a nonzero dynamic instruction count.
func (p *Pipeline) Validate(ctx context.Context, w *workloads.Workload) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_, err := p.cache.do(ctx, p.cloneKey(StageValidate, w), codecMarker, func(ctx context.Context) (any, error) {
		prog, err := p.CompileClone(ctx, w, p.opts.ProfileISA, p.opts.ProfileLevel)
		if err != nil {
			return nil, err
		}
		res, err := vm.New(prog).Run(vm.Config{MaxInstrs: validateBudget})
		if err != nil {
			if t, ok := err.(*vm.Trap); !ok || t.Reason != vm.TrapBudgetExhausted {
				return nil, &StageError{Stage: StageValidate, Workload: w.Name, Clone: true, Err: err}
			}
		}
		if res.DynInstrs == 0 {
			return nil, &StageError{Stage: StageValidate, Workload: w.Name, Clone: true,
				Err: fmt.Errorf("clone executed no instructions")}
		}
		return struct{}{}, nil
	})
	return err
}

// PairKeys returns the keys of every artifact a PairAt(w, target, level)
// job persists to a store: the original compile at the job point, the
// compile at the profiling point (when distinct), the profile, the
// synthesized clone, and the clone compile at the job point. A caller
// holding a store can therefore decide — without running anything — whether
// the job's work already exists, by probing each key's Digest, StoreKind,
// and Canonical; the cluster coordinator uses exactly this to deduplicate
// dispatched jobs against prior runs. The construction mirrors Compile,
// Profile, Synthesize, and CompileClone; TestPairKeysMatchStoredDigests
// guards against drift.
func (p *Pipeline) PairKeys(w *workloads.Workload, target *isa.Desc, level compiler.OptLevel) []Key {
	orig := Key{Stage: StageCompile, Workload: w.Name, ISA: target.Name, Level: level,
		Src: srcID(w)}
	keys := []Key{orig}
	profCompile := Key{Stage: StageCompile, Workload: w.Name, ISA: p.opts.ProfileISA.Name,
		Level: p.opts.ProfileLevel, Src: srcID(w)}
	if profCompile != orig {
		keys = append(keys, profCompile)
	}
	keys = append(keys, Key{Stage: StageProfile, Workload: w.Name, ISA: p.opts.ProfileISA.Name,
		Level: p.opts.ProfileLevel, Cache: p.opts.ProfileCache,
		MaxInstrs: p.opts.MaxInstrs, Src: srcID(w)})
	keys = append(keys, p.cloneKey(StageSynthesize, w))
	cloneCompile := p.cloneKey(StageCompile, w)
	cloneCompile.ISA, cloneCompile.Level = target.Name, level
	keys = append(keys, cloneCompile)
	return keys
}

// PairAt compiles both the original and the clone for one (ISA, level)
// point, sharing profile and synthesis work through the cache.
func (p *Pipeline) PairAt(ctx context.Context, w *workloads.Workload, target *isa.Desc, level compiler.OptLevel) (Pair, error) {
	cl, err := p.Synthesize(ctx, w)
	if err != nil {
		return Pair{}, err
	}
	orig, err := p.Compile(ctx, w, target, level)
	if err != nil {
		return Pair{}, err
	}
	syn, err := p.CompileClone(ctx, w, target, level)
	if err != nil {
		return Pair{}, err
	}
	return Pair{Orig: orig, Syn: syn, Clone: cl}, nil
}
