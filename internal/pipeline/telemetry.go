package pipeline

import (
	"repro/internal/telemetry"
)

// stageSecondsBuckets spans the observed range of stage wall times: a parse
// is microseconds, a cold profile of a large workload tens of seconds.
var stageSecondsBuckets = []float64{
	0.0001, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// cacheTelemetry holds the pipeline's pre-resolved metric handles and the
// span tracer. Built from a nil registry/tracer it is entirely no-op
// handles, so the cache's hot path pays only nil checks when telemetry is
// disabled. The counters mirror CacheStats exactly — every increment site
// updates both — so a /metrics scrape and the printed stats can never
// disagree.
type cacheTelemetry struct {
	hits       *telemetry.Counter
	misses     *telemetry.Counter
	diskHits   *telemetry.Counter
	diskErrors *telemetry.Counter
	wipAdopted *telemetry.Counter
	computed   [NumStages]*telemetry.Counter
	seconds    [NumStages]*telemetry.Histogram
	tracer     *telemetry.Tracer
}

// newCacheTelemetry resolves the pipeline's metric handles in reg and
// attaches tracer. Both may be nil.
func newCacheTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) *cacheTelemetry {
	t := &cacheTelemetry{tracer: tracer}
	t.hits = reg.Counter("synth_pipeline_cache_hits_total",
		"Requests satisfied by (or coalesced onto) an in-memory cache entry.")
	t.misses = reg.Counter("synth_pipeline_cache_misses_total",
		"Requests that computed the artifact.")
	t.diskHits = reg.Counter("synth_pipeline_cache_disk_hits_total",
		"Memory misses satisfied by the persistent store.")
	t.diskErrors = reg.Counter("synth_pipeline_cache_disk_errors_total",
		"Store entries that failed to decode and store writes that failed.")
	t.wipAdopted = reg.Counter("synth_pipeline_wip_adopted_total",
		"Artifacts adopted after waiting on another process's in-progress marker.")
	for s := Stage(0); int(s) < NumStages; s++ {
		t.computed[s] = reg.Counter("synth_pipeline_stage_computed_total",
			"Artifact computations by pipeline stage.", "stage", s.String())
		t.seconds[s] = reg.Histogram("synth_pipeline_stage_seconds",
			"Wall time of artifact computations by pipeline stage.",
			stageSecondsBuckets, "stage", s.String())
	}
	return t
}
