package pipeline

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// traceEvents decodes an exported Chrome trace into its event list.
func traceEvents(t *testing.T, tr *telemetry.Tracer) []struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args"`
} {
	t.Helper()
	var b strings.Builder
	if err := tr.Export(&b); err != nil {
		t.Fatalf("Export: %v", err)
	}
	var f struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Tid  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return f.TraceEvents
}

// TestPipelineTraceNesting runs a cold synthesis under a tracer and
// asserts the exported Chrome trace contains one span per computed stage,
// nested along the dataflow: synthesize contains profile contains compile
// contains check contains parse, all on one tid.
func TestPipelineTraceNesting(t *testing.T) {
	tr := telemetry.NewTracer(256)
	p := New(Options{Workers: 1, Tracer: tr})
	w := workloads.ByName("crc32/small")
	if w == nil {
		t.Fatal("workload crc32/small not found")
	}
	if _, err := p.Synthesize(context.Background(), w); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	evs := traceEvents(t, tr)
	byName := map[string]int{}
	for _, e := range evs {
		byName[e.Name] = byName[e.Name] + 1
		if e.Ph != "X" {
			t.Fatalf("span %q has phase %q, want X", e.Name, e.Ph)
		}
	}
	for _, name := range []string{"parse", "check", "compile", "profile", "synthesize"} {
		if byName[name] != 1 {
			t.Fatalf("stage %q has %d spans, want 1 (have: %v)", name, byName[name], byName)
		}
	}
	find := func(name string) (ev struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Tid  uint64            `json:"tid"`
		Args map[string]string `json:"args"`
	}) {
		for _, e := range evs {
			if e.Name == name {
				return e
			}
		}
		t.Fatalf("span %q missing", name)
		return
	}
	chain := []string{"synthesize", "profile", "compile", "check", "parse"}
	for i := 1; i < len(chain); i++ {
		outer, inner := find(chain[i-1]), find(chain[i])
		if inner.Tid != outer.Tid {
			t.Fatalf("%s (tid %d) not on %s's tid %d", chain[i], inner.Tid, chain[i-1], outer.Tid)
		}
		if inner.Ts < outer.Ts || inner.Ts+inner.Dur > outer.Ts+outer.Dur {
			t.Fatalf("%s [%v,%v] not contained in %s [%v,%v]",
				chain[i], inner.Ts, inner.Ts+inner.Dur,
				chain[i-1], outer.Ts, outer.Ts+outer.Dur)
		}
	}
	if find("synthesize").Args["workload"] != "crc32/small" {
		t.Fatalf("synthesize span lacks workload attr: %v", find("synthesize").Args)
	}
}

// TestPipelineMetricsMatchCacheStats drains a small run under a registry
// and asserts the scraped counters equal the CacheStats the run reports —
// the contract the CI observability job curls /metrics to verify.
func TestPipelineMetricsMatchCacheStats(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := New(Options{Workers: 2, Metrics: reg})
	ctx := context.Background()
	w := workloads.ByName("crc32/small")
	if w == nil {
		t.Fatal("workload crc32/small not found")
	}
	if _, err := p.Synthesize(ctx, w); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := p.Validate(ctx, w); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Warm re-run: pure hits, so the hit counter must move too.
	if _, err := p.Synthesize(ctx, w); err != nil {
		t.Fatalf("warm Synthesize: %v", err)
	}
	stats := p.CacheStats()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := b.String()
	wantLine := func(line string) {
		t.Helper()
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("scrape missing %q:\n%s", line, out)
		}
	}
	wantLine(fmt.Sprintf("synth_pipeline_cache_hits_total %d", stats.Hits))
	wantLine(fmt.Sprintf("synth_pipeline_cache_misses_total %d", stats.Misses))
	wantLine(fmt.Sprintf("synth_pipeline_cache_disk_hits_total %d", stats.DiskHits))
	wantLine(fmt.Sprintf("synth_pipeline_cache_disk_errors_total %d", stats.DiskErrors))
	for s := Stage(0); int(s) < NumStages; s++ {
		wantLine(fmt.Sprintf("synth_pipeline_stage_computed_total{stage=%q} %d",
			s.String(), stats.ComputedFor(s)))
	}
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Fatalf("run exercised no cache traffic: %+v", stats)
	}
}
