package pipeline

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/store"
)

// This file wires pipeline artifact types to the store package's
// serialization, giving the artifact cache its persistent tier. Parse and
// Check artifacts are deliberately absent: ASTs carry pointer-identity maps
// that do not serialize, and both stages are cheap enough that a disk round
// trip would cost more than recomputation.

// codecProgram persists compiled programs (original and clone compiles).
var codecProgram = &codec{
	kind: store.KindProgram,
	encode: func(v any) ([]byte, error) {
		return store.EncodeProgram(v.(*isa.Program))
	},
	decode: func(data []byte) (any, error) {
		return store.DecodeProgram(data)
	},
}

// codecProfile persists statistical profiles.
var codecProfile = &codec{
	kind: store.KindProfile,
	encode: func(v any) ([]byte, error) {
		return store.EncodeProfile(v.(*profile.Profile))
	},
	decode: func(data []byte) (any, error) {
		return store.DecodeProfile(data)
	},
}

// codecClone persists synthesized clones. The HLC source is the stored
// artifact of record; decoding re-parses and re-checks it to rebuild the
// AST forms, exactly as a distributed clone would be consumed.
var codecClone = &codec{
	kind: store.KindClone,
	encode: func(v any) ([]byte, error) {
		cl := v.(*Clone)
		return store.EncodeClone(&store.Clone{
			Source:  cl.Source,
			Report:  cl.Report,
			Profile: cl.Profile,
		})
	},
	decode: func(data []byte) (any, error) {
		sc, err := store.DecodeClone(data)
		if err != nil {
			return nil, err
		}
		prog, err := hlc.Parse(sc.Source)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stored clone does not parse: %w", err)
		}
		cp, err := hlc.Check(prog)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stored clone does not check: %w", err)
		}
		return &Clone{
			Prog:    prog,
			Checked: cp,
			Report:  sc.Report,
			Source:  sc.Source,
			Profile: sc.Profile,
		}, nil
	},
}

// codecSim persists timing-simulation summaries, keyed by workload,
// compilation point, and machine-configuration fingerprint, so design-
// space sweeps resuming over a shared store recompute nothing.
var codecSim = &codec{
	kind: store.KindSim,
	encode: func(v any) ([]byte, error) {
		return store.EncodeSim(v.(cpu.Summary))
	},
	decode: func(data []byte) (any, error) {
		return store.DecodeSim(data)
	},
}

// codecGenerate persists workload-generation reports. The report is
// produced and consumed as JSON (generate.Report marshals itself before
// handing the bytes to GenerateArtifact), so the codec is a checked
// passthrough rather than a typed round trip — the pipeline package never
// needs to import the generate package it serves.
var codecGenerate = &codec{
	kind: store.KindGenerate,
	encode: func(v any) ([]byte, error) {
		b, ok := v.([]byte)
		if !ok {
			return nil, fmt.Errorf("pipeline: generate artifact is %T, want []byte", v)
		}
		return b, nil
	},
	decode: func(data []byte) (any, error) {
		return data, nil
	},
}

// codecMarker persists validation outcomes, which carry no data beyond
// "this keyed check passed".
var codecMarker = &codec{
	kind: store.KindMarker,
	encode: func(any) ([]byte, error) {
		return store.EncodeMarker(), nil
	},
	decode: func(data []byte) (any, error) {
		if err := store.DecodeMarker(data); err != nil {
			return nil, err
		}
		return struct{}{}, nil
	},
}
