package pipeline

// In-package tests for the cross-process in-progress gate: two pipelines
// sharing one store must single-flight persisted computations through the
// wip/ marker subtree, and a marker abandoned by a crashed process must be
// stolen rather than stalling everyone forever.

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/store"
	"repro/internal/workloads"
)

// wipPipeline builds a pipeline over the shared store directory exactly as
// a second process would: a fresh Pipeline (cold memory cache) over a
// fresh *store.Store handle.
func wipPipeline(t *testing.T, dir string) *Pipeline {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return New(Options{Workers: 2, Seed: 1, Store: st})
}

// TestWIPGateCrossProcessDedup is the gate's core property: two pipelines
// (standing in for two processes) racing to profile the same workload over
// one store perform the underlying compile and profile exactly once in
// total — the loser of each marker claim adopts the winner's artifact as a
// disk hit instead of recomputing it.
func TestWIPGateCrossProcessDedup(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	w := workloads.ByName("crc32/small")
	if w == nil {
		t.Fatal("workload crc32/small missing")
	}
	a, b := wipPipeline(t, dir), wipPipeline(t, dir)

	start := make(chan struct{})
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	for _, p := range []*Pipeline{a, b} {
		wg.Add(1)
		go func(p *Pipeline) {
			defer wg.Done()
			<-start
			_, err := p.Profile(ctx, w)
			errs <- err
		}(p)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("profile: %v", err)
		}
	}

	sum := a.CacheStats().Add(b.CacheStats())
	if got := sum.ComputedFor(StageProfile); got != 1 {
		t.Errorf("profile computed %d times across both pipelines, want 1", got)
	}
	if got := sum.ComputedFor(StageCompile); got != 1 {
		t.Errorf("profiling compile computed %d times across both pipelines, want 1", got)
	}
	if sum.DiskErrors != 0 {
		t.Errorf("gated run reported %d disk errors", sum.DiskErrors)
	}

	// The gate cleans up after itself: no in-progress markers survive.
	entries, err := os.ReadDir(filepath.Join(dir, store.WIPDir))
	if err == nil && len(entries) != 0 {
		t.Errorf("%d stale wip markers left behind", len(entries))
	}
}

// TestWIPStaleMarkerStolen simulates a process that claimed an artifact
// and died without heartbeating: its marker must be stolen after wipTTL
// and the computation must proceed, so a crash can only stall the fleet
// briefly, never wedge it.
func TestWIPStaleMarkerStolen(t *testing.T) {
	savedTTL, savedPoll := wipTTL, wipPoll
	wipTTL, wipPoll = 60*time.Millisecond, 5*time.Millisecond
	defer func() { wipTTL, wipPoll = savedTTL, savedPoll }()

	ctx := context.Background()
	dir := t.TempDir()
	w := workloads.ByName("crc32/small")
	if w == nil {
		t.Fatal("workload crc32/small missing")
	}
	p := wipPipeline(t, dir)

	// Plant the dead process's marker on the profile artifact.
	var profileKey Key
	for _, k := range p.PairKeys(w, isa.AMD64, compiler.O0) {
		if k.Stage == StageProfile {
			profileKey = k
		}
	}
	if profileKey.Stage != StageProfile {
		t.Fatal("no profile key in PairKeys")
	}
	if err := p.opts.Store.CreateExclusive(wipName(profileKey), []byte("{}")); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := p.Profile(ctx, w)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("profile after stale steal: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline wedged on an abandoned wip marker")
	}
	if got := p.CacheStats().ComputedFor(StageProfile); got != 1 {
		t.Errorf("profile computed %d times, want 1", got)
	}
	if _, err := p.opts.Store.Stat(wipName(profileKey)); err == nil {
		t.Error("stolen marker still present after the computation")
	}
}
