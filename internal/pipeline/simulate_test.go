package pipeline_test

import (
	"context"
	"testing"

	"repro/internal/compiler"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

// simCfg is the machine the Simulate-stage tests run on.
func simCfg() cpu.Config { return cpu.Simulated2Wide(16) }

// TestPipelineSimulateCached verifies the Simulate stage is a first-class
// cached artifact: the pair's two simulations compute exactly twice, a
// repeat is all hits, and a different machine configuration (or bound, or
// program side) is a distinct artifact.
func TestPipelineSimulateCached(t *testing.T) {
	ctx := context.Background()
	p := pipeline.New(pipeline.Options{Workers: 2, Seed: 7})
	w := mustWorkload(t, "crc32/small")

	pair, err := p.SimulatePair(ctx, w, isa.AMD64, compiler.O2, simCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Orig.Instrs == 0 || pair.Syn.Instrs == 0 || pair.Orig.CPI == 0 || pair.Syn.CPI == 0 {
		t.Fatalf("empty simulation summaries: %+v", pair)
	}
	if got := p.CacheStats().ComputedFor(pipeline.StageSimulate); got != 2 {
		t.Fatalf("pair computed %d simulations, want 2", got)
	}

	again, err := p.SimulatePair(ctx, w, isa.AMD64, compiler.O2, simCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if again != pair {
		t.Fatalf("cached pair differs: %+v vs %+v", again, pair)
	}
	if got := p.CacheStats().ComputedFor(pipeline.StageSimulate); got != 2 {
		t.Fatalf("warm repeat recomputed simulations: %d", got)
	}

	// A different machine configuration is a different artifact.
	other := simCfg()
	other.MemLat *= 2
	if _, err := p.Simulate(ctx, w, isa.AMD64, compiler.O2, other, false, 0); err != nil {
		t.Fatal(err)
	}
	if got := p.CacheStats().ComputedFor(pipeline.StageSimulate); got != 3 {
		t.Fatalf("config change did not trigger a computation: %d", got)
	}
	// A different simulation bound is a different artifact too.
	if _, err := p.Simulate(ctx, w, isa.AMD64, compiler.O2, simCfg(), false, 50_000); err != nil {
		t.Fatal(err)
	}
	if got := p.CacheStats().ComputedFor(pipeline.StageSimulate); got != 4 {
		t.Fatalf("bound change did not trigger a computation: %d", got)
	}
}

// TestPipelineSimulateInvalidConfig verifies structural validation runs
// before any work.
func TestPipelineSimulateInvalidConfig(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 1})
	w := mustWorkload(t, "crc32/small")
	bad := simCfg()
	bad.L1Lat = 0
	if _, err := p.Simulate(context.Background(), w, isa.AMD64, compiler.O2, bad, false, 0); err == nil {
		t.Fatal("invalid config accepted")
	}
	if got := p.CacheStats().ComputedFor(pipeline.StageSimulate); got != 0 {
		t.Fatalf("invalid config counted as a computation: %d", got)
	}
}

// TestPipelineSimulateDiskWarm verifies the Simulate stage's persistent
// tier: a fresh pipeline over the first one's store serves every
// simulation from disk and the summaries agree exactly.
func TestPipelineSimulateDiskWarm(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	w := mustWorkload(t, "crc32/small")

	cold := pipeline.New(pipeline.Options{Workers: 2, Seed: 7, Store: openStore(t, dir)})
	pair, err := cold.SimulatePair(ctx, w, isa.AMD64, compiler.O2, simCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}

	warm := pipeline.New(pipeline.Options{Workers: 2, Seed: 7, Store: openStore(t, dir)})
	got, err := warm.SimulatePair(ctx, w, isa.AMD64, compiler.O2, simCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != pair {
		t.Fatalf("disk round trip changed the pair:\ncold %+v\nwarm %+v", pair, got)
	}
	cs := warm.CacheStats()
	if cs.ComputedFor(pipeline.StageSimulate) != 0 || cs.DiskHits != 2 || cs.DiskErrors != 0 {
		t.Fatalf("warm pipeline did not serve simulations from disk: %+v", cs)
	}
}

// TestSimKeysMatchStoredDigests guards SimKeys against drifting from the
// keys Simulate actually persists under, the way PairKeys is guarded:
// after one SimulatePair, both advertised keys must exist in the store.
func TestSimKeysMatchStoredDigests(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s := openStore(t, dir)
	p := pipeline.New(pipeline.Options{Workers: 2, Seed: 7, Store: s})
	w := mustWorkload(t, "crc32/small")

	if _, err := p.SimulatePair(ctx, w, isa.AMD64, compiler.O2, simCfg(), 12345); err != nil {
		t.Fatal(err)
	}
	keys := p.SimKeys(w, isa.AMD64, compiler.O2, simCfg(), 12345)
	if len(keys) != 2 {
		t.Fatalf("SimKeys returned %d keys, want 2", len(keys))
	}
	for _, k := range keys {
		if k.StoreKind() == "" {
			t.Fatalf("stage %v advertises no store kind", k.Stage)
		}
		if !s.Has(k.Digest(), k.StoreKind(), k.Canonical()) {
			t.Errorf("advertised key (clone=%v, digest %s) was not persisted", k.Clone, k.Digest())
		}
	}
	// A different bound must advertise different digests.
	other := p.SimKeys(w, isa.AMD64, compiler.O2, simCfg(), 0)
	for i := range keys {
		if keys[i].Digest() == other[i].Digest() {
			t.Errorf("key %d ignores the simulation bound", i)
		}
	}
}
