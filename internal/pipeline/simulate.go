package pipeline

import (
	"context"
	"fmt"

	"repro/internal/compiler"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/workloads"
)

// This file is the Simulate stage: timing simulation of a compiled
// program — original or clone — on one machine configuration, as a
// first-class cached pipeline artifact. The key carries the machine
// config's content fingerprint (cpu.Config.Fingerprint) alongside the
// usual workload/ISA/level coordinates, so a design-space sweep that
// revisits a (workload, level, config) point — a warm `synth explore`
// rerun, a cluster worker re-leasing a shard, an overlapping sweep —
// recomputes nothing.

// simKey builds the Simulate-stage cache key. Clone simulations extend
// the clone-artifact key (seed, profiling point, target-dyn, profiling
// bound) so that clones synthesized under different options never share
// simulation artifacts; original simulations are keyed by the compile
// point alone. The simulation bound rides inside Sim, not MaxInstrs —
// the MaxInstrs field means "profiling bound" on clone-derived keys and
// must keep meaning that.
func (p *Pipeline) simKey(w *workloads.Workload, target *isa.Desc, level compiler.OptLevel, cfg cpu.Config, clone bool, maxInstrs uint64) Key {
	var k Key
	if clone {
		k = p.cloneKey(StageSimulate, w)
	} else {
		k = Key{Stage: StageSimulate, Workload: w.Name, Src: srcID(w)}
	}
	k.ISA, k.Level = target.Name, level
	k.Sim = fmt.Sprintf("%s:%d", cfg.Fingerprint(), maxInstrs)
	return k
}

// Simulate runs the Simulate stage: execute the workload (clone=false)
// or its synthetic clone (clone=true), compiled at (target, level), on
// the machine configuration cfg, bounded by maxInstrs dynamic
// instructions (0 = unbounded). Results are cached and persisted under
// the config's fingerprint.
func (p *Pipeline) Simulate(ctx context.Context, w *workloads.Workload, target *isa.Desc, level compiler.OptLevel, cfg cpu.Config, clone bool, maxInstrs uint64) (cpu.Summary, error) {
	if err := ctx.Err(); err != nil {
		return cpu.Summary{}, err
	}
	if err := cfg.Validate(); err != nil {
		return cpu.Summary{}, &StageError{Stage: StageSimulate, Workload: w.Name,
			ISA: target.Name, Level: level, Clone: clone, Err: err}
	}
	key := p.simKey(w, target, level, cfg, clone, maxInstrs)
	v, err := p.cache.do(ctx, key, codecSim, func(ctx context.Context) (any, error) {
		var (
			prog *isa.Program
			err  error
		)
		if clone {
			prog, err = p.CompileClone(ctx, w, target, level)
		} else {
			prog, err = p.Compile(ctx, w, target, level)
		}
		if err != nil {
			return nil, err
		}
		setup := w.Setup
		if clone {
			setup = nil // clones are self-contained and need no inputs
		}
		res, err := cpu.Simulate(prog, setup, cfg, maxInstrs)
		if err != nil {
			return nil, &StageError{Stage: StageSimulate, Workload: w.Name,
				ISA: target.Name, Level: level, Clone: clone, Err: err}
		}
		return res.Summary(), nil
	})
	if err != nil {
		return cpu.Summary{}, err
	}
	return v.(cpu.Summary), nil
}

// SimPair holds the original's and the clone's simulation summaries at
// one (workload, level, machine configuration) design point.
type SimPair struct {
	// Orig and Syn are the original's and clone's summaries.
	Orig cpu.Summary `json:"orig"`
	Syn  cpu.Summary `json:"syn"`
}

// SimulatePair simulates both the original and the synthetic clone at
// one design point, sharing compile/profile/synthesis work through the
// cache. It is the unit of work one exploration cell costs.
func (p *Pipeline) SimulatePair(ctx context.Context, w *workloads.Workload, target *isa.Desc, level compiler.OptLevel, cfg cpu.Config, maxInstrs uint64) (SimPair, error) {
	orig, err := p.Simulate(ctx, w, target, level, cfg, false, maxInstrs)
	if err != nil {
		return SimPair{}, err
	}
	syn, err := p.Simulate(ctx, w, target, level, cfg, true, maxInstrs)
	if err != nil {
		return SimPair{}, err
	}
	return SimPair{Orig: orig, Syn: syn}, nil
}

// SimKeys returns the keys of the two simulation artifacts a
// SimulatePair call persists (original first, clone second), mirroring
// Simulate's key construction the way PairKeys mirrors PairAt's. The
// cluster coordinator probes these (on top of PairKeys) to deduplicate
// exploration jobs against already-stored sweeps;
// TestSimKeysMatchStoredDigests guards against drift.
func (p *Pipeline) SimKeys(w *workloads.Workload, target *isa.Desc, level compiler.OptLevel, cfg cpu.Config, maxInstrs uint64) []Key {
	return []Key{
		p.simKey(w, target, level, cfg, false, maxInstrs),
		p.simKey(w, target, level, cfg, true, maxInstrs),
	}
}
