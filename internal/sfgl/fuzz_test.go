package sfgl_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sfgl"
)

// validGraphJSON returns a round-trippable graph payload for seeding.
func validGraphJSON(t testing.TB) []byte {
	t.Helper()
	g := &sfgl.Graph{
		FuncNames: []string{"main"},
		FuncCalls: []uint64{1},
		Nodes: []*sfgl.Node{{
			ID: 0, Count: 3,
			Instrs: []sfgl.InstrInfo{{MemClass: 2, Stream: &sfgl.Stream{
				V: sfgl.StreamVersion, Accesses: 3, MissRate: 0.5,
				Strides: []sfgl.StrideBin{{Stride: 8, Frac: 0.9}, {Stride: -4, Frac: 0.1}},
			}}},
			Branch: &sfgl.BranchInfo{Taken: 1, Total: 3, TakenRate: 0.33, TransRate: 0.5, Hard: true},
		}},
		Edges: []*sfgl.Edge{{From: 0, To: 0, Count: 2}},
		Loops: []*sfgl.Loop{{ID: 0, Header: 0, Nodes: []int{0}, Parent: -1, Entries: 1, Iterations: 3}},
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSFGLLoad asserts sfgl.Load never panics and never accepts a graph
// that fails its own validation: corrupt, truncated, or future-versioned
// stream descriptors must surface as errors.
func FuzzSFGLLoad(f *testing.F) {
	valid := validGraphJSON(f)
	f.Add(valid)
	f.Add(valid[:len(valid)*2/3])                                      // truncated
	f.Add([]byte(`{"nodes":[null]}`))                                  // nil node
	f.Add([]byte(strings.Replace(string(valid), `"v":1`, `"v":2`, 1))) // future stream version
	f.Add([]byte(strings.Replace(string(valid), `"v":1`, `"v":0`, 1))) // zero stream version
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := sfgl.Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Load returned invalid graph without error: %v", err)
		}
	})
}
