// Package sfgl implements the Statistical Flow Graph with Loop annotation,
// the paper's central profile structure (Section III.A.1, Fig. 2). Nodes
// are basic blocks annotated with execution counts and per-instruction
// information (including the Table I memory-access class and branch
// taken/transition rates); edges carry control-flow transition counts; and
// the loop annotation records nesting and iteration counts, which is what
// lets the synthesizer emit real (nested) loops instead of prior work's
// linear block sequences.
package sfgl

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/isa"
)

// InstrInfo describes one static instruction of a basic block: its opcode
// and class (the paper's "instruction types" with operand kinds, which our
// opcodes encode), plus the memory-access class of Table I for loads and
// stores.
type InstrInfo struct {
	Op       isa.Opcode `json:"op"`
	Class    isa.Class  `json:"class"`
	MemClass int        `json:"memClass"` // Table I class 0..8; -1 for non-memory ops
}

// BranchInfo is the paper's Section III.A.2 branch characterization.
type BranchInfo struct {
	Taken       uint64  `json:"taken"`
	Total       uint64  `json:"total"`
	Transitions uint64  `json:"transitions"`
	TakenRate   float64 `json:"takenRate"`
	TransRate   float64 `json:"transRate"`
	Hard        bool    `json:"hard"` // medium transition rate = hard to predict
}

// Node is one basic block of the SFGL.
type Node struct {
	ID    int    `json:"id"`
	Func  int    `json:"func"`  // function index in the profiled binary
	Block int    `json:"block"` // block index within the function
	Count uint64 `json:"count"` // execution count

	Instrs []InstrInfo `json:"instrs"`

	// Branch describes the terminating conditional branch, if any.
	Branch *BranchInfo `json:"branch,omitempty"`
}

// Edge is a control-flow transition with its observed count.
type Edge struct {
	From  int    `json:"from"` // node ID
	To    int    `json:"to"`   // node ID
	Count uint64 `json:"count"`
}

// Loop is a natural loop with the paper's iteration annotation.
type Loop struct {
	ID     int   `json:"id"`
	Func   int   `json:"func"`
	Header int   `json:"header"` // node ID of the loop header
	Nodes  []int `json:"nodes"`  // node IDs in the body (including header)
	Parent int   `json:"parent"` // enclosing loop ID, or -1
	Depth  int   `json:"depth"`

	// Entries counts how many times the loop was entered from outside;
	// Iterations counts header executions. Their ratio is the average
	// trip count used when the synthesizer emits a for loop.
	Entries    uint64 `json:"entries"`
	Iterations uint64 `json:"iterations"`
}

// AvgTrip returns the average number of iterations per entry.
func (l *Loop) AvgTrip() float64 {
	if l.Entries == 0 {
		return 0
	}
	return float64(l.Iterations) / float64(l.Entries)
}

// Graph is the complete SFGL.
type Graph struct {
	FuncNames []string `json:"funcNames"`
	Nodes     []*Node  `json:"nodes"`
	Edges     []*Edge  `json:"edges"`
	Loops     []*Loop  `json:"loops"`
	// FuncCalls counts dynamic calls per function index.
	FuncCalls []uint64 `json:"funcCalls"`
}

// NodeAt returns the node for a (func, block) location, or nil.
func (g *Graph) NodeAt(fn, block int) *Node {
	for _, n := range g.Nodes {
		if n.Func == fn && n.Block == block {
			return n
		}
	}
	return nil
}

// Node returns the node with the given ID, or nil. IDs are not slice
// indices: scaled-down graphs drop nodes but keep the original IDs.
func (g *Graph) Node(id int) *Node {
	for _, n := range g.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// TotalCount sums all node execution counts.
func (g *Graph) TotalCount() uint64 {
	var t uint64
	for _, n := range g.Nodes {
		t += n.Count
	}
	return t
}

// OutEdges returns the edges leaving node id.
func (g *Graph) OutEdges(id int) []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if e.From == id {
			out = append(out, e)
		}
	}
	return out
}

// InnermostLoopOf returns the deepest loop containing node id, or nil.
func (g *Graph) InnermostLoopOf(id int) *Loop {
	var best *Loop
	for _, l := range g.Loops {
		for _, n := range l.Nodes {
			if n == id && (best == nil || l.Depth > best.Depth) {
				best = l
			}
		}
	}
	return best
}

// Children returns the loops directly nested inside loop id.
func (g *Graph) Children(id int) []*Loop {
	var out []*Loop
	for _, l := range g.Loops {
		if l.Parent == id {
			out = append(out, l)
		}
	}
	return out
}

// ScaleDown produces the scaled-down SFGL of Section III.B.1 / Fig. 2:
// node counts are divided by the reduction factor R and blocks executed
// fewer than R times disappear; loop iteration counts are scaled
// nest-aware — the outer loop absorbs as much of R as its trip count
// allows, and the remainder is pushed into the nested loops.
func (g *Graph) ScaleDown(r uint64) *Graph {
	if r == 0 {
		r = 1
	}
	out := &Graph{
		FuncNames: append([]string(nil), g.FuncNames...),
		FuncCalls: make([]uint64, len(g.FuncCalls)),
	}
	for i, c := range g.FuncCalls {
		out.FuncCalls[i] = c / r
	}

	keep := make(map[int]bool)
	for _, n := range g.Nodes {
		scaled := n.Count / r
		if scaled == 0 {
			continue // infrequent blocks are removed (and hide semantics)
		}
		nn := *n
		nn.Count = scaled
		if n.Branch != nil {
			b := *n.Branch
			b.Taken /= r
			b.Total /= r
			b.Transitions /= r
			nn.Branch = &b
		}
		nn.Instrs = append([]InstrInfo(nil), n.Instrs...)
		out.Nodes = append(out.Nodes, &nn)
		keep[n.ID] = true
	}
	for _, e := range g.Edges {
		if !keep[e.From] || !keep[e.To] {
			continue
		}
		scaled := e.Count / r
		if scaled == 0 {
			continue
		}
		out.Edges = append(out.Edges, &Edge{From: e.From, To: e.To, Count: scaled})
	}

	// Loop scaling: total iterations divide by R (consistent with the
	// header's node count), entries divide by R but a surviving loop is
	// entered at least once, and iterations never drop below entries.
	// This realizes the paper's nest-aware rule automatically: an outer
	// loop whose trip count cannot absorb R bottoms out at one iteration
	// per entry, and the nested loop — whose total iterations also shrank
	// by R while its entry count collapsed — carries the remaining factor
	// in its per-entry trip count.
	survives := make(map[int]bool)
	for _, l := range g.Loops {
		if keep[l.Header] {
			survives[l.ID] = true
		}
	}
	loopByID := make(map[int]*Loop)
	for _, l := range g.Loops {
		loopByID[l.ID] = l
	}
	for _, l := range g.Loops {
		if !survives[l.ID] {
			continue // the whole loop fell below the threshold
		}
		nl := *l
		nl.Nodes = nil
		for _, n := range l.Nodes {
			if keep[n] {
				nl.Nodes = append(nl.Nodes, n)
			}
		}
		// Reattach to the nearest surviving ancestor (a dropped outer
		// loop promotes its surviving children).
		for nl.Parent != -1 && !survives[nl.Parent] {
			nl.Parent = loopByID[nl.Parent].Parent
		}
		nl.Entries = maxU64(l.Entries/r, 1)
		nl.Iterations = maxU64(l.Iterations/r, nl.Entries)
		out.Loops = append(out.Loops, &nl)
	}
	return out
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Table I: memory-access classes. Class k covers miss rates around
// k*12.5% and maps to a stride of 4k bytes on a 32-byte-line cache.

// NumMemClasses is the number of Table I classes.
const NumMemClasses = 9

// MemClassFor quantizes a miss rate (0..1) to its Table I class.
func MemClassFor(missRate float64) int {
	c := int(missRate*8 + 0.5)
	if c < 0 {
		c = 0
	}
	if c > 8 {
		c = 8
	}
	return c
}

// StrideBytes returns the Table I stride for a memory class.
func StrideBytes(class int) int {
	if class < 0 {
		class = 0
	}
	if class > 8 {
		class = 8
	}
	return class * 4
}

// Save writes the graph as JSON.
func (g *Graph) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(g)
}

// Load reads a graph from JSON.
func Load(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("sfgl: decode: %w", err)
	}
	return &g, nil
}
