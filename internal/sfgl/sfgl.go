// Package sfgl implements the Statistical Flow Graph with Loop annotation,
// the paper's central profile structure (Section III.A.1, Fig. 2). Nodes
// are basic blocks annotated with execution counts and per-instruction
// information (including the Table I memory-access class and branch
// taken/transition rates); edges carry control-flow transition counts; and
// the loop annotation records nesting and iteration counts, which is what
// lets the synthesizer emit real (nested) loops instead of prior work's
// linear block sequences.
package sfgl

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/isa"
)

// InstrInfo describes one static instruction of a basic block: its opcode
// and class (the paper's "instruction types" with operand kinds, which our
// opcodes encode), plus the memory-access class of Table I for loads and
// stores and — on stream-profiled graphs — the per-site stride-stream
// descriptor. Stream is optional and versioned: profiles written before
// stream profiling existed decode with a nil Stream, and the synthesizer
// falls back to the Table I class.
type InstrInfo struct {
	Op       isa.Opcode `json:"op"`
	Class    isa.Class  `json:"class"`
	MemClass int        `json:"memClass"` // Table I class 0..8; -1 for non-memory ops
	Stream   *Stream    `json:"stream,omitempty"`
}

// StreamVersion is the current Stream descriptor serialization version.
// Load rejects descriptors from a newer (unknown) version instead of
// silently misreading them; older versions remain decodable forever.
const StreamVersion = 1

// StreamStrides is how many top strides a Stream descriptor retains. The
// profiler tracks exactly this many online (space-saving counters), so
// per-access profiling state stays O(1).
const StreamStrides = 4

// Stream is the per-static-access memory stream descriptor: the observed
// stride histogram (top strides by frequency) and a coarse reuse summary,
// captured online during profiling. It refines the single Table I class —
// which collapses an access pattern into one miss-rate bucket — enough for
// the synthesizer to reproduce *how* a site misses (regular strides that
// prefetch-like walks can overlap vs. irregular, dependence-serialized
// pointer chasing), not just how often.
type Stream struct {
	// V is the descriptor version (StreamVersion when written by this
	// profiler).
	V int `json:"v"`
	// Accesses is the site's dynamic access count.
	Accesses uint64 `json:"accesses"`
	// MissRate is the measured miss rate at the profiling cache.
	MissRate float64 `json:"missRate"`
	// MissWide is the measured miss rate at the wide (8x) profiling
	// cache. The two-point miss curve bounds the site's working set: a
	// site missing the primary cache but hitting the wide one is
	// locality-bound, not streaming, and its walker's range must stay
	// within the wide capacity.
	MissWide float64 `json:"missWide"`
	// Strides holds the top observed address strides by frequency,
	// descending; fractions are relative to all stride transitions
	// (Accesses-1). The tail beyond StreamStrides entries is discarded.
	Strides []StrideBin `json:"strides,omitempty"`
	// Regularity is the fraction of stride transitions that repeated the
	// previous stride — near 1 for array walks, near 0 for pointer chasing.
	Regularity float64 `json:"regularity"`
	// ShortReuse is the fraction of accesses that touched one of the
	// site's four most recently accessed cache lines: a coarse, O(1)
	// reuse-distance summary separating temporal locality from streaming.
	ShortReuse float64 `json:"shortReuse"`
}

// StrideBin is one bucket of a Stream's stride histogram.
type StrideBin struct {
	// Stride is the address delta in bytes (may be negative).
	Stride int64 `json:"stride"`
	// Frac is the fraction of stride transitions with this delta.
	Frac float64 `json:"frac"`
}

// TopFrac returns the combined frequency of the n most frequent strides.
func (s *Stream) TopFrac(n int) float64 {
	var f float64
	for i, b := range s.Strides {
		if i >= n {
			break
		}
		f += b.Frac
	}
	return f
}

// Validate checks a graph's stream descriptors: every version must be
// known and positive. Load calls it so that corrupt or future-versioned
// profiles fail loudly instead of synthesizing from garbage.
func (g *Graph) Validate() error {
	for _, n := range g.Nodes {
		if n == nil {
			return fmt.Errorf("sfgl: nil node")
		}
		for i := range n.Instrs {
			s := n.Instrs[i].Stream
			if s == nil {
				continue
			}
			if s.V < 1 || s.V > StreamVersion {
				return fmt.Errorf("sfgl: node %d instr %d: unsupported stream version %d (max %d)",
					n.ID, i, s.V, StreamVersion)
			}
		}
	}
	return nil
}

// BranchInfo is the paper's Section III.A.2 branch characterization.
type BranchInfo struct {
	Taken       uint64  `json:"taken"`
	Total       uint64  `json:"total"`
	Transitions uint64  `json:"transitions"`
	TakenRate   float64 `json:"takenRate"`
	TransRate   float64 `json:"transRate"`
	Hard        bool    `json:"hard"` // medium transition rate = hard to predict
}

// Node is one basic block of the SFGL.
type Node struct {
	ID    int    `json:"id"`
	Func  int    `json:"func"`  // function index in the profiled binary
	Block int    `json:"block"` // block index within the function
	Count uint64 `json:"count"` // execution count

	Instrs []InstrInfo `json:"instrs"`

	// Branch describes the terminating conditional branch, if any.
	Branch *BranchInfo `json:"branch,omitempty"`
}

// Edge is a control-flow transition with its observed count.
type Edge struct {
	From  int    `json:"from"` // node ID
	To    int    `json:"to"`   // node ID
	Count uint64 `json:"count"`
}

// Loop is a natural loop with the paper's iteration annotation.
type Loop struct {
	ID     int   `json:"id"`
	Func   int   `json:"func"`
	Header int   `json:"header"` // node ID of the loop header
	Nodes  []int `json:"nodes"`  // node IDs in the body (including header)
	Parent int   `json:"parent"` // enclosing loop ID, or -1
	Depth  int   `json:"depth"`

	// Entries counts how many times the loop was entered from outside;
	// Iterations counts header executions. Their ratio is the average
	// trip count used when the synthesizer emits a for loop.
	Entries    uint64 `json:"entries"`
	Iterations uint64 `json:"iterations"`
}

// AvgTrip returns the average number of iterations per entry.
func (l *Loop) AvgTrip() float64 {
	if l.Entries == 0 {
		return 0
	}
	return float64(l.Iterations) / float64(l.Entries)
}

// Graph is the complete SFGL.
type Graph struct {
	FuncNames []string `json:"funcNames"`
	Nodes     []*Node  `json:"nodes"`
	Edges     []*Edge  `json:"edges"`
	Loops     []*Loop  `json:"loops"`
	// FuncCalls counts dynamic calls per function index.
	FuncCalls []uint64 `json:"funcCalls"`
}

// NodeAt returns the node for a (func, block) location, or nil.
func (g *Graph) NodeAt(fn, block int) *Node {
	for _, n := range g.Nodes {
		if n.Func == fn && n.Block == block {
			return n
		}
	}
	return nil
}

// Node returns the node with the given ID, or nil. IDs are not slice
// indices: scaled-down graphs drop nodes but keep the original IDs.
func (g *Graph) Node(id int) *Node {
	for _, n := range g.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// TotalCount sums all node execution counts.
func (g *Graph) TotalCount() uint64 {
	var t uint64
	for _, n := range g.Nodes {
		t += n.Count
	}
	return t
}

// OutEdges returns the edges leaving node id.
func (g *Graph) OutEdges(id int) []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if e.From == id {
			out = append(out, e)
		}
	}
	return out
}

// InnermostLoopOf returns the deepest loop containing node id, or nil.
func (g *Graph) InnermostLoopOf(id int) *Loop {
	var best *Loop
	for _, l := range g.Loops {
		for _, n := range l.Nodes {
			if n == id && (best == nil || l.Depth > best.Depth) {
				best = l
			}
		}
	}
	return best
}

// Children returns the loops directly nested inside loop id.
func (g *Graph) Children(id int) []*Loop {
	var out []*Loop
	for _, l := range g.Loops {
		if l.Parent == id {
			out = append(out, l)
		}
	}
	return out
}

// ScaleDown produces the scaled-down SFGL of Section III.B.1 / Fig. 2:
// node counts are divided by the reduction factor R and blocks executed
// fewer than R times disappear; loop iteration counts are scaled
// nest-aware — the outer loop absorbs as much of R as its trip count
// allows, and the remainder is pushed into the nested loops.
func (g *Graph) ScaleDown(r uint64) *Graph {
	if r == 0 {
		r = 1
	}
	out := &Graph{
		FuncNames: append([]string(nil), g.FuncNames...),
		FuncCalls: make([]uint64, len(g.FuncCalls)),
	}
	for i, c := range g.FuncCalls {
		out.FuncCalls[i] = c / r
	}

	keep := make(map[int]bool)
	for _, n := range g.Nodes {
		scaled := n.Count / r
		if scaled == 0 {
			continue // infrequent blocks are removed (and hide semantics)
		}
		nn := *n
		nn.Count = scaled
		if n.Branch != nil {
			b := *n.Branch
			b.Taken /= r
			b.Total /= r
			b.Transitions /= r
			nn.Branch = &b
		}
		nn.Instrs = append([]InstrInfo(nil), n.Instrs...)
		out.Nodes = append(out.Nodes, &nn)
		keep[n.ID] = true
	}
	for _, e := range g.Edges {
		if !keep[e.From] || !keep[e.To] {
			continue
		}
		scaled := e.Count / r
		if scaled == 0 {
			continue
		}
		out.Edges = append(out.Edges, &Edge{From: e.From, To: e.To, Count: scaled})
	}

	// Loop scaling: total iterations divide by R (consistent with the
	// header's node count), entries divide by R but a surviving loop is
	// entered at least once, and iterations never drop below entries.
	// This realizes the paper's nest-aware rule automatically: an outer
	// loop whose trip count cannot absorb R bottoms out at one iteration
	// per entry, and the nested loop — whose total iterations also shrank
	// by R while its entry count collapsed — carries the remaining factor
	// in its per-entry trip count.
	survives := make(map[int]bool)
	for _, l := range g.Loops {
		if keep[l.Header] {
			survives[l.ID] = true
		}
	}
	loopByID := make(map[int]*Loop)
	for _, l := range g.Loops {
		loopByID[l.ID] = l
	}
	for _, l := range g.Loops {
		if !survives[l.ID] {
			continue // the whole loop fell below the threshold
		}
		nl := *l
		nl.Nodes = nil
		for _, n := range l.Nodes {
			if keep[n] {
				nl.Nodes = append(nl.Nodes, n)
			}
		}
		// Reattach to the nearest surviving ancestor (a dropped outer
		// loop promotes its surviving children).
		for nl.Parent != -1 && !survives[nl.Parent] {
			nl.Parent = loopByID[nl.Parent].Parent
		}
		nl.Entries = max(l.Entries/r, 1)
		nl.Iterations = max(l.Iterations/r, nl.Entries)
		out.Loops = append(out.Loops, &nl)
	}
	return out
}

// Table I: memory-access classes. Class k covers miss rates around
// k*12.5% and maps to a stride of 4k bytes on a 32-byte-line cache.

// NumMemClasses is the number of Table I classes.
const NumMemClasses = 9

// MemClassFor quantizes a miss rate (0..1) to its Table I class.
func MemClassFor(missRate float64) int {
	c := int(missRate*8 + 0.5)
	if c < 0 {
		c = 0
	}
	if c > 8 {
		c = 8
	}
	return c
}

// StrideBytes returns the Table I stride for a memory class.
func StrideBytes(class int) int {
	if class < 0 {
		class = 0
	}
	if class > 8 {
		class = 8
	}
	return class * 4
}

// Save writes the graph as JSON.
func (g *Graph) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(g)
}

// Load reads a graph from JSON. Graphs with corrupt structure or stream
// descriptors from an unknown version are rejected with an error.
func Load(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("sfgl: decode: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}
