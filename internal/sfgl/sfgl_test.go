package sfgl

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// paperExample builds the SFGL of the paper's Fig. 2(a):
// A(500) -> B(420), C(80); B,C -> D(500); D -> loop{E(5000), F(1000),
// G(4000), H(5000)} -> I(500).
func paperExample() *Graph {
	g := &Graph{FuncNames: []string{"main"}, FuncCalls: []uint64{0}}
	counts := []uint64{500, 420, 80, 500, 5000, 1000, 4000, 5000, 500}
	for i, c := range counts {
		g.Nodes = append(g.Nodes, &Node{ID: i, Func: 0, Block: i, Count: c})
	}
	// Names for readability: A=0 B=1 C=2 D=3 E=4 F=5 G=6 H=7 I=8.
	edges := [][3]uint64{
		{0, 1, 420}, {0, 2, 80}, {1, 3, 420}, {2, 3, 80},
		{3, 4, 500}, {4, 5, 1000}, {4, 6, 4000}, {5, 7, 1000}, {6, 7, 4000},
		{7, 4, 4500}, {7, 8, 500},
	}
	for _, e := range edges {
		g.Edges = append(g.Edges, &Edge{From: int(e[0]), To: int(e[1]), Count: e[2]})
	}
	g.Loops = append(g.Loops, &Loop{
		ID: 0, Func: 0, Header: 4, Nodes: []int{4, 5, 6, 7},
		Parent: -1, Depth: 1, Entries: 500, Iterations: 5000,
	})
	return g
}

func TestScaleDownPaperFigure2(t *testing.T) {
	g := paperExample()
	s := g.ScaleDown(100)

	// Fig. 2(b): A(5) B(4) D(5) E(50) F(10) G(40) H(50) I(5); C removed.
	want := map[int]uint64{0: 5, 1: 4, 3: 5, 4: 50, 5: 10, 6: 40, 7: 50, 8: 5}
	got := make(map[int]uint64)
	for _, n := range s.Nodes {
		got[n.ID] = n.Count
	}
	if len(got) != len(want) {
		t.Fatalf("scaled nodes = %v, want %v", got, want)
	}
	for id, c := range want {
		if got[id] != c {
			t.Errorf("node %d count = %d, want %d", id, got[id], c)
		}
	}
	if _, hasC := got[2]; hasC {
		t.Error("block C should be removed (executed < R times)")
	}
	// Edges touching C must be gone.
	for _, e := range s.Edges {
		if e.From == 2 || e.To == 2 {
			t.Errorf("edge %d->%d should have been removed with node C", e.From, e.To)
		}
	}
	// The loop survives with trip count 10 (5000/500), entries scaled to 5.
	if len(s.Loops) != 1 {
		t.Fatalf("scaled loops = %d, want 1", len(s.Loops))
	}
	l := s.Loops[0]
	if l.Entries != 5 {
		t.Errorf("loop entries = %d, want 5", l.Entries)
	}
	if trip := l.AvgTrip(); trip < 9.5 || trip > 10.5 {
		t.Errorf("loop trip = %.2f, want ≈10 (unchanged per-entry trip)", trip)
	}
}

func TestScaleDownNestedLoops(t *testing.T) {
	// Outer loop: 10 iterations/entry; inner: 100 iterations/outer-iter.
	// R=100: the outer header only executes 10 (< R) times, so per the
	// paper's rule the outer loop is removed entirely; the inner loop is
	// promoted to top level with total iterations scaled by R
	// (1000/100 = 10 per remaining entry) — the nested loop carries the
	// part of R the outer loop could not absorb.
	g := &Graph{FuncNames: []string{"main"}, FuncCalls: []uint64{0}}
	g.Nodes = []*Node{
		{ID: 0, Count: 1},    // preheader
		{ID: 1, Count: 10},   // outer header
		{ID: 2, Count: 1000}, // inner header
		{ID: 3, Count: 1000}, // inner body
	}
	g.Loops = []*Loop{
		{ID: 0, Header: 1, Nodes: []int{1, 2, 3}, Parent: -1, Depth: 1, Entries: 1, Iterations: 10},
		{ID: 1, Header: 2, Nodes: []int{2, 3}, Parent: 0, Depth: 2, Entries: 10, Iterations: 1000},
	}
	s := g.ScaleDown(100)
	if len(s.Loops) != 1 {
		t.Fatalf("surviving loops = %d, want 1 (outer dropped, inner kept): %+v", len(s.Loops), s.Loops)
	}
	inner := s.Loops[0]
	if inner.ID != 1 {
		t.Fatalf("wrong survivor: %+v", inner)
	}
	if inner.Parent != -1 {
		t.Errorf("inner should be promoted to top level, parent = %d", inner.Parent)
	}
	if trip := inner.AvgTrip(); trip < 9 || trip > 11 {
		t.Errorf("inner trip = %.2f, want ≈10", trip)
	}
	// A milder factor keeps both loops: R=5 scales outer trips 10 -> 2.
	s2 := g.ScaleDown(5)
	if len(s2.Loops) != 2 {
		t.Fatalf("R=5 should keep both loops, got %d", len(s2.Loops))
	}
	for _, l := range s2.Loops {
		if l.ID == 0 {
			if trip := l.AvgTrip(); trip < 1.9 || trip > 2.1 {
				t.Errorf("outer trip at R=5 = %.2f, want ≈2", trip)
			}
		}
	}
}

func TestScaleDownIdentity(t *testing.T) {
	g := paperExample()
	s := g.ScaleDown(1)
	if len(s.Nodes) != len(g.Nodes) {
		t.Errorf("R=1 should keep all nodes: %d vs %d", len(s.Nodes), len(g.Nodes))
	}
	for i, n := range s.Nodes {
		if n.Count != g.Nodes[i].Count {
			t.Errorf("R=1 changed node %d count", i)
		}
	}
	if s.ScaleDown(0).TotalCount() != s.TotalCount() {
		t.Errorf("R=0 should behave as R=1")
	}
}

func TestScaleDownDoesNotMutateOriginal(t *testing.T) {
	g := paperExample()
	before := g.TotalCount()
	_ = g.ScaleDown(100)
	if g.TotalCount() != before {
		t.Error("ScaleDown mutated the source graph")
	}
	if len(g.Nodes) != 9 {
		t.Error("ScaleDown removed nodes from the source graph")
	}
}

func TestScaleDownProperty(t *testing.T) {
	// Property: for any R, every surviving node count equals original/R
	// and totals shrink by at least ~R.
	f := func(rRaw uint8) bool {
		r := uint64(rRaw%200) + 1
		g := paperExample()
		s := g.ScaleDown(r)
		for _, n := range s.Nodes {
			orig := g.Node(n.ID)
			if n.Count != orig.Count/r || n.Count == 0 {
				return false
			}
		}
		return s.TotalCount() <= g.TotalCount()/r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemClassTable(t *testing.T) {
	// The exact Table I ranges.
	cases := []struct {
		miss  float64
		class int
	}{
		{0.0, 0}, {0.05, 0}, {0.0625, 1}, {0.10, 1}, {0.1875, 2},
		{0.25, 2}, {0.50, 4}, {0.75, 6}, {0.9375, 8}, {1.0, 8},
	}
	for _, tc := range cases {
		if got := MemClassFor(tc.miss); got != tc.class {
			t.Errorf("MemClassFor(%.4f) = %d, want %d", tc.miss, got, tc.class)
		}
	}
	// Stride column of Table I.
	for class, want := range []int{0, 4, 8, 12, 16, 20, 24, 28, 32} {
		if got := StrideBytes(class); got != want {
			t.Errorf("StrideBytes(%d) = %d, want %d", class, got, want)
		}
	}
	if StrideBytes(-1) != 0 || StrideBytes(99) != 32 {
		t.Error("StrideBytes should clamp out-of-range classes")
	}
}

func TestGraphQueries(t *testing.T) {
	g := paperExample()
	if n := g.NodeAt(0, 4); n == nil || n.ID != 4 {
		t.Errorf("NodeAt(0,4) = %+v", n)
	}
	if g.NodeAt(3, 0) != nil {
		t.Error("NodeAt for unknown function should be nil")
	}
	out := g.OutEdges(4)
	if len(out) != 2 {
		t.Errorf("OutEdges(E) = %d edges, want 2", len(out))
	}
	if l := g.InnermostLoopOf(5); l == nil || l.ID != 0 {
		t.Error("F should be inside the loop")
	}
	if g.InnermostLoopOf(0) != nil {
		t.Error("A is not in a loop")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := paperExample()
	g.Nodes[0].Instrs = []InstrInfo{
		{Op: isa.LD, Class: isa.ClassLoad, MemClass: 3},
		{Op: isa.ADD, Class: isa.ClassIntALU, MemClass: -1},
	}
	g.Nodes[0].Branch = &BranchInfo{Taken: 10, Total: 20, Transitions: 5,
		TakenRate: 0.5, TransRate: 0.26, Hard: true}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(g.Nodes) || len(got.Edges) != len(g.Edges) || len(got.Loops) != len(g.Loops) {
		t.Fatal("round trip changed graph shape")
	}
	if got.Nodes[0].Instrs[0].MemClass != 3 || !got.Nodes[0].Branch.Hard {
		t.Error("round trip lost node annotations")
	}
	if _, err := Load(bytes.NewBufferString("{bad json")); err == nil {
		t.Error("expected decode error")
	}
}
