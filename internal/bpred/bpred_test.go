package bpred

import (
	"math/rand"
	"testing"
)

func TestBimodalLearnsBias(t *testing.T) {
	m := &Meter{P: NewBimodal(10)}
	for i := 0; i < 1000; i++ {
		m.Observe(0x40, true)
	}
	if acc := m.S.Accuracy(); acc < 0.99 {
		t.Errorf("always-taken branch accuracy = %.3f, want >0.99", acc)
	}
}

func TestBimodalMostlyTaken(t *testing.T) {
	// 90% taken: bimodal should approach 90% accuracy.
	rng := rand.New(rand.NewSource(1))
	m := &Meter{P: NewBimodal(10)}
	for i := 0; i < 20000; i++ {
		m.Observe(0x40, rng.Float64() < 0.9)
	}
	if acc := m.S.Accuracy(); acc < 0.85 || acc > 0.95 {
		t.Errorf("90%%-taken accuracy = %.3f, want ≈0.9", acc)
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	// Alternating T/N/T/N defeats bimodal but not gshare.
	bi := &Meter{P: NewBimodal(10)}
	gs := &Meter{P: NewGShare(10, 8)}
	for i := 0; i < 10000; i++ {
		taken := i%2 == 0
		bi.Observe(0x40, taken)
		gs.Observe(0x40, taken)
	}
	if acc := gs.S.Accuracy(); acc < 0.98 {
		t.Errorf("gshare on alternating pattern = %.3f, want >0.98", acc)
	}
	if biAcc, gsAcc := bi.S.Accuracy(), gs.S.Accuracy(); gsAcc <= biAcc {
		t.Errorf("gshare (%.3f) should beat bimodal (%.3f) on a periodic pattern", gsAcc, biAcc)
	}
}

func TestGShareLearnsLongerPattern(t *testing.T) {
	gs := &Meter{P: NewGShare(12, 12)}
	pattern := []bool{true, true, false, true, false, false, true, false}
	for i := 0; i < 40000; i++ {
		gs.Observe(0x80, pattern[i%len(pattern)])
	}
	if acc := gs.S.Accuracy(); acc < 0.95 {
		t.Errorf("gshare on period-8 pattern = %.3f, want >0.95", acc)
	}
}

func TestHybridAtLeastAsGoodAsComponentsOnMix(t *testing.T) {
	// A mix of biased branches and a patterned branch: the tournament
	// predictor should not lose badly to either component.
	run := func(p Predictor) float64 {
		m := &Meter{P: p}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 60000; i++ {
			m.Observe(0x100, true)                 // always taken
			m.Observe(0x200, i%2 == 0)             // alternating
			m.Observe(0x300, rng.Float64() < 0.95) // strongly biased
		}
		return m.S.Accuracy()
	}
	hy := run(NewHybrid(12, 12))
	bi := run(NewBimodal(12))
	if hy < bi-0.01 {
		t.Errorf("hybrid (%.4f) notably worse than bimodal (%.4f)", hy, bi)
	}
	if hy < 0.9 {
		t.Errorf("hybrid accuracy %.4f too low on easy mix", hy)
	}
}

func TestPredictorsAreDeterministic(t *testing.T) {
	mk := []func() Predictor{
		func() Predictor { return NewBimodal(8) },
		func() Predictor { return NewGShare(8, 6) },
		func() Predictor { return NewHybrid(8, 6) },
	}
	for _, f := range mk {
		a, b := &Meter{P: f()}, &Meter{P: f()}
		rng1 := rand.New(rand.NewSource(3))
		rng2 := rand.New(rand.NewSource(3))
		for i := 0; i < 5000; i++ {
			a.Observe(uint64(i%17)*8, rng1.Float64() < 0.6)
			b.Observe(uint64(i%17)*8, rng2.Float64() < 0.6)
		}
		if a.S != b.S {
			t.Errorf("%s: nondeterministic stats %+v vs %+v", a.P.Name(), a.S, b.S)
		}
	}
}

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.train(false)
	}
	if c != 0 {
		t.Errorf("counter underflow: %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.train(true)
	}
	if c != 3 {
		t.Errorf("counter did not saturate high: %d", c)
	}
	if !c.taken() {
		t.Error("saturated counter should predict taken")
	}
}

func TestAliasingDegradesSmallTables(t *testing.T) {
	// Two branches with opposite bias aliasing into one entry should hurt
	// a 1-entry bimodal relative to a big one.
	small := &Meter{P: NewBimodal(0)} // single counter
	big := &Meter{P: NewBimodal(10)}
	for i := 0; i < 5000; i++ {
		small.Observe(0, true)
		small.Observe(1, false)
		big.Observe(0, true)
		big.Observe(1<<6, false)
	}
	if small.S.Accuracy() >= big.S.Accuracy() {
		t.Errorf("aliased table (%.3f) should underperform large table (%.3f)",
			small.S.Accuracy(), big.S.Accuracy())
	}
}

func TestStatsAccuracyEdgeCases(t *testing.T) {
	var s Stats
	if s.Accuracy() != 1 {
		t.Error("idle accuracy should be 1")
	}
	s = Stats{Lookups: 4, Correct: 1}
	if s.Accuracy() != 0.25 {
		t.Errorf("accuracy = %v, want 0.25", s.Accuracy())
	}
}
