// Package bpred implements the dynamic branch predictors used by the timing
// models and by the Fig. 9 experiment: a bimodal predictor, a global-history
// (gshare) predictor, and the hybrid of the two with a chooser — the same
// predictor family the paper configures in PTLSim ("a hybrid branch
// predictor with a bimodal component along with a history-based component").
package bpred

// Predictor is a dynamic branch direction predictor.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

// counter is a 2-bit saturating counter; values 0..3, taken when >= 2.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) train(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a table of 2-bit counters indexed by PC.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal builds a bimodal predictor with 2^logSize counters,
// initialized weakly taken.
func NewBimodal(logSize int) *Bimodal {
	n := 1 << logSize
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: uint64(n - 1)}
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[pc&b.mask].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := pc & b.mask
	b.table[i] = b.table[i].train(taken)
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// GShare xors a global history register into the PC index.
type GShare struct {
	table   []counter
	mask    uint64
	history uint64
	histLen uint
}

// NewGShare builds a gshare predictor with 2^logSize counters and histBits
// of global history.
func NewGShare(logSize, histBits int) *GShare {
	n := 1 << logSize
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &GShare{table: t, mask: uint64(n - 1), histLen: uint(histBits)}
}

func (g *GShare) index(pc uint64) uint64 { return (pc ^ g.history) & g.mask }

// Predict implements Predictor.
func (g *GShare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor.
func (g *GShare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].train(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histLen) - 1
}

// Name implements Predictor.
func (g *GShare) Name() string { return "gshare" }

// Hybrid combines a bimodal and a gshare component with a per-PC chooser
// (a McFarling-style tournament predictor).
type Hybrid struct {
	bimodal *Bimodal
	gshare  *GShare
	chooser []counter // >= 2 selects gshare
	mask    uint64
}

// NewHybrid builds the tournament predictor used in the paper's evaluation.
func NewHybrid(logSize, histBits int) *Hybrid {
	n := 1 << logSize
	ch := make([]counter, n)
	for i := range ch {
		ch[i] = 2
	}
	return &Hybrid{
		bimodal: NewBimodal(logSize),
		gshare:  NewGShare(logSize, histBits),
		chooser: ch,
		mask:    uint64(n - 1),
	}
}

// Predict implements Predictor.
func (h *Hybrid) Predict(pc uint64) bool {
	if h.chooser[pc&h.mask].taken() {
		return h.gshare.Predict(pc)
	}
	return h.bimodal.Predict(pc)
}

// Update implements Predictor.
func (h *Hybrid) Update(pc uint64, taken bool) {
	pb := h.bimodal.Predict(pc)
	pg := h.gshare.Predict(pc)
	if pb != pg {
		i := pc & h.mask
		h.chooser[i] = h.chooser[i].train(pg == taken)
	}
	h.bimodal.Update(pc, taken)
	h.gshare.Update(pc, taken)
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return "hybrid" }

// DefaultHybrid returns the evaluation predictor configuration: 4K-entry
// tables with 12 bits of global history.
func DefaultHybrid() *Hybrid { return NewHybrid(12, 12) }

// Stats measures a predictor over a branch stream.
type Stats struct {
	Lookups uint64
	Correct uint64
}

// Accuracy returns the fraction of correct predictions (1.0 when idle).
func (s Stats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 1
	}
	return float64(s.Correct) / float64(s.Lookups)
}

// Meter wraps a predictor and scores its predictions as it trains.
type Meter struct {
	P Predictor
	S Stats
}

// Observe predicts, scores, and trains on one executed branch.
func (m *Meter) Observe(pc uint64, taken bool) {
	m.S.Lookups++
	if m.P.Predict(pc) == taken {
		m.S.Correct++
	}
	m.P.Update(pc, taken)
}
