package generate_test

import (
	"math"
	"testing"

	"repro/internal/generate"
)

// FuzzGenerateSpec asserts ParseSpec never panics and never returns an
// out-of-bounds spec: whatever decodes must pass Validate, carry a stable
// fingerprint, and stay inside the sampler's documented ranges. Specs
// arrive over process boundaries (POST /api/v1/generate, `-spec` files,
// cluster job payloads), so hostile bytes must fail loudly.
func FuzzGenerateSpec(f *testing.F) {
	f.Add([]byte(`{"n": 8, "seed": 1}`))
	f.Add([]byte(`{"name": "gen", "suite": "quick", "n": 4, "seed": 20100321}`))
	f.Add([]byte(`{"n": 2, "seed": 1, "axes": ["miss", "taken"], "strength": 0.9, "candidates": 48}`))
	f.Add([]byte(`{"n": 2, "seed": 1, "workloads": ["dijkstra/small"]}`))
	f.Add([]byte(`{"n": 0}`))               // below range
	f.Add([]byte(`{"n": 100000}`))          // above range
	f.Add([]byte(`{"n": 2, "typo": 1}`))    // unknown field
	f.Add([]byte(`{"n": 2, "axes": [""]}`)) // unknown axis
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := generate.ParseSpec(data)
		if err != nil {
			return
		}
		// Whatever parses must satisfy the documented invariants.
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseSpec returned invalid spec without error: %v", err)
		}
		if spec.N < 1 || spec.N > generate.MaxPoints {
			t.Fatalf("ParseSpec accepted n=%d", spec.N)
		}
		if spec.Strength < 0 || spec.Strength > 1 {
			t.Fatalf("ParseSpec accepted strength=%v", spec.Strength)
		}
		if spec.Fingerprint() == "" || spec.Fingerprint() != spec.Fingerprint() {
			t.Fatal("unstable fingerprint")
		}
	})
}

// FuzzFeaturesLoad asserts LoadFeatures never panics and enforces the
// embedding contract: anything it accepts has the exact dimension count,
// a known version, and only finite components — so a damaged vector can
// never skew a coverage analysis silently.
func FuzzFeaturesLoad(f *testing.F) {
	valid, err := generate.Features{
		V:        generate.FeaturesVersion,
		Workload: "fuzz/seed",
		Vec:      make([]float64, generate.NumFeatures),
	}.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                              // truncated
	f.Add([]byte(`{}`))                                      // empty
	f.Add([]byte(`{"v": 99, "workload": "x", "vec": [0]}`))  // future version
	f.Add([]byte(`{"v": 1, "workload": "x", "vec": [0.5]}`)) // wrong dims
	f.Add([]byte(`{"v": 1, "vec": [1e308, 1e308]}`))         // huge components
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		feats, err := generate.LoadFeatures(data)
		if err != nil {
			return
		}
		if feats.V < 1 || feats.V > generate.FeaturesVersion {
			t.Fatalf("accepted version %d", feats.V)
		}
		if len(feats.Vec) != generate.NumFeatures {
			t.Fatalf("accepted %d dimensions", len(feats.Vec))
		}
		for i, v := range feats.Vec {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted non-finite component %d", i)
			}
		}
		// An accepted vector is self-comparable under the metric.
		if d := generate.Distance(feats, feats); d != 0 {
			t.Fatalf("self-distance %v", d)
		}
	})
}
