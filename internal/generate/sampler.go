package generate

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/sfgl"
)

// MutableAxes lists the feature axes the sampler can perturb. Each axis
// mutates the underlying profile statistics the synthesizer actually
// consumes — mix counts, stream descriptors, branch rates — never the
// embedding directly, so every sampled point remains a realizable profile.
var MutableAxes = []string{
	"load", "store", "branch", "fp", "fpdiv", "intmuldiv",
	"hardbranch", "taken", "miss", "chase", "stridetop", "reuse",
}

// axisKnown reports whether name is a mutable axis.
func axisKnown(name string) bool {
	for _, a := range MutableAxes {
		if a == name {
			return true
		}
	}
	return false
}

// axisBounds maps each mutable axis to the range its perturbations aim
// for, index-aligned with MutableAxes. The bounds stay inside what the
// synthesizer can express (a clone cannot be 90% loads), so directed
// points remain realizable instead of piling up rejects.
var axisBounds = map[string][2]float64{
	"load":       {0.02, 0.45},
	"store":      {0.01, 0.30},
	"branch":     {0.02, 0.35},
	"fp":         {0.00, 0.40},
	"fpdiv":      {0.00, 0.60}, // share of FP ops
	"intmuldiv":  {0.00, 0.25},
	"hardbranch": {0.02, 0.98}, // realized via transition-rate mutation
	"taken":      {0.05, 0.95},
	"miss":       {0.00, 0.65},
	"chase":      {0.05, 0.95}, // realized via stream regularity
	"stridetop":  {0.15, 1.00},
	"reuse":      {0.00, 0.90},
}

// SampledPoint is one directed sample: the synthetic profile and the
// metadata the report carries.
type SampledPoint struct {
	// Name is the point's corpus-unique name (e.g. "gen-003").
	Name string
	// Base names the real workload the point was perturbed from.
	Base string
	// Axes lists the perturbed feature axes.
	Axes []string
	// Profile is the synthetic profile, ready for SynthesizeProfile.
	Profile *profile.Profile
	// Requested is the profile's embedding — the point the sampler asked
	// the synthesizer to realize.
	Requested Features
}

// Sample runs the directed sampler: for each of spec.N points it scores
// spec.Candidates() candidate mutants — a random baseline profile
// perturbed along 2-4 random axes — by their distance to the nearest
// already-covered point (baseline plus earlier samples) and keeps the
// farthest. The sampler is sequential and seeded, so the same spec and
// baseline produce the identical corpus on any machine or worker count.
func Sample(spec *Spec, baseline []*profile.Profile) ([]SampledPoint, error) {
	if len(baseline) == 0 {
		return nil, fmt.Errorf("generate: no baseline profiles to perturb")
	}
	covered := make([]Features, 0, len(baseline)+spec.N)
	for _, p := range baseline {
		covered = append(covered, FromProfile(p))
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	axes := spec.axes()
	out := make([]SampledPoint, 0, spec.N)
	usedBase := make(map[string]bool)
	for i := 0; i < spec.N; i++ {
		name := fmt.Sprintf("%s-%03d", spec.name(), i)
		var best SampledPoint
		bestScore := math.Inf(-1)
		for c := 0; c < spec.candidates(); c++ {
			base := baseline[rng.Intn(len(baseline))]
			picked := pickAxes(rng, axes, 2+rng.Intn(3))
			mutant := cloneProfile(base)
			mutant.Workload = name
			for _, axis := range picked {
				mutateAxis(rng, mutant, axis, spec.strength())
			}
			if err := CheckProfile(mutant); err != nil {
				continue // a mutation drove the profile out of bounds
			}
			feats := FromProfile(mutant)
			score := nearestDistance(feats, covered)
			// Synthesis can saturate mutations, so two mutants of one base
			// may realize to near-identical clones even when their requested
			// vectors differ. Discount repeat bases to spread the corpus
			// across distinct source behaviors.
			if usedBase[base.Workload] {
				score *= 0.9
			}
			if score > bestScore {
				bestScore = score
				best = SampledPoint{Name: name, Base: base.Workload, Axes: picked,
					Profile: mutant, Requested: feats}
			}
		}
		if best.Profile == nil {
			return nil, fmt.Errorf("generate: point %s: every candidate mutation was invalid", name)
		}
		covered = append(covered, best.Requested)
		usedBase[best.Base] = true
		out = append(out, best)
	}
	return out, nil
}

// pickAxes selects n distinct axes in deterministic (rng-driven) order.
func pickAxes(rng *rand.Rand, axes []string, n int) []string {
	if n > len(axes) {
		n = len(axes)
	}
	perm := rng.Perm(len(axes))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = axes[perm[i]]
	}
	return out
}

// lerp moves v a fraction s of the way toward target.
func lerp(v, target, s float64) float64 { return v + (target-v)*s }

// mutateAxis perturbs one axis of the profile toward a random end of its
// bound, scaled by strength. Every mutation preserves the profile
// invariants CheckProfile enforces.
func mutateAxis(rng *rand.Rand, p *profile.Profile, axis string, strength float64) {
	b := axisBounds[axis]
	target := b[0]
	if rng.Intn(2) == 1 {
		target = b[1]
	}
	// Randomize the step so candidate mutants spread along the axis
	// instead of piling onto one point.
	s := strength * (0.5 + 0.5*rng.Float64())
	switch axis {
	case "load":
		setMixFraction(p, isa.ClassLoad, lerpFrac(p, isa.ClassLoad, target, s))
	case "store":
		setMixFraction(p, isa.ClassStore, lerpFrac(p, isa.ClassStore, target, s))
	case "branch":
		setMixFraction(p, isa.ClassBranch, lerpFrac(p, isa.ClassBranch, target, s))
	case "intmuldiv":
		cur := mixFrac(p, isa.ClassIntMul) + mixFrac(p, isa.ClassIntDiv)
		setMixFraction(p, isa.ClassIntMul, lerp(cur, target, s))
	case "fp":
		mutateFPShare(p, target, s)
	case "fpdiv":
		mutateFPDivShare(p, target, s)
	case "taken":
		forEachBranch(p, func(bi *sfgl.BranchInfo) {
			bi.TakenRate = clamp01(lerp(bi.TakenRate, target, s))
			bi.Taken = uint64(bi.TakenRate * float64(bi.Total))
		})
	case "hardbranch":
		// Hard sites have mid-range transition rates (0.15 < t < 0.85).
		// Pull every site's transition rate toward 0.5 to harden the
		// mixture, or toward its nearest extreme to soften it.
		harden := target >= 0.5
		forEachBranch(p, func(bi *sfgl.BranchInfo) {
			goal := 0.5
			if !harden {
				goal = 0.02
				if bi.TransRate >= 0.5 {
					goal = 0.98
				}
			}
			bi.TransRate = clamp01(lerp(bi.TransRate, goal, s))
			bi.Transitions = uint64(bi.TransRate * float64(bi.Total))
			bi.Hard = bi.TransRate > 0.15 && bi.TransRate < 0.85
		})
	case "miss":
		forEachStream(p, func(st *sfgl.Stream) {
			st.MissRate = clamp01(lerp(st.MissRate, target, s))
			st.MissWide = math.Min(st.MissWide, st.MissRate)
			if target > 0.3 {
				// Streaming misses escape the wide cache too.
				st.MissWide = clamp01(lerp(st.MissWide, st.MissRate, s))
			}
		})
	case "chase":
		// Chase sites are irregular (regularity < 0.5) with scattered
		// strides; regular walks are the opposite.
		irregular := target >= 0.5
		forEachStream(p, func(st *sfgl.Stream) {
			goal := 0.95
			if irregular {
				goal = 0.05
			}
			st.Regularity = clamp01(lerp(st.Regularity, goal, s))
		})
	case "stridetop":
		forEachStream(p, func(st *sfgl.Stream) {
			reshapeStrides(st, target, s)
		})
	case "reuse":
		forEachStream(p, func(st *sfgl.Stream) {
			st.ShortReuse = clamp01(lerp(st.ShortReuse, target, s))
		})
	}
}

// mixFrac returns one class's dynamic fraction.
func mixFrac(p *profile.Profile, class isa.Class) float64 {
	if p.TotalDyn == 0 {
		return 0
	}
	return float64(p.Mix[class]) / float64(p.TotalDyn)
}

// lerpFrac interpolates a class's fraction toward target.
func lerpFrac(p *profile.Profile, class isa.Class, target, s float64) float64 {
	return lerp(mixFrac(p, class), target, s)
}

// setMixFraction sets one class's dynamic fraction, compensating the
// difference out of the filler classes (int ALU, then other) so the mix
// still sums to TotalDyn. The move saturates when the filler classes run
// dry rather than going negative.
func setMixFraction(p *profile.Profile, class isa.Class, frac float64) {
	want := uint64(clamp01(frac) * float64(p.TotalDyn))
	moveMixCount(p, class, want)
}

// moveMixCount sets Mix[class] = want, balancing against the fillers.
func moveMixCount(p *profile.Profile, class isa.Class, want uint64) {
	cur := p.Mix[class]
	if want > cur {
		need := want - cur
		for _, filler := range []isa.Class{isa.ClassIntALU, isa.ClassOther} {
			take := min64(need, p.Mix[filler])
			p.Mix[filler] -= take
			p.Mix[class] += take
			need -= take
			if need == 0 {
				break
			}
		}
	} else {
		p.Mix[isa.ClassIntALU] += cur - want
		p.Mix[class] = want
	}
}

// mutateFPShare moves the total FP-operation fraction toward target,
// distributing the change over the FP classes proportionally (all into
// FPAdd when the profile had none).
func mutateFPShare(p *profile.Profile, target, s float64) {
	cur := mixFrac(p, isa.ClassFPAdd) + mixFrac(p, isa.ClassFPMul) + mixFrac(p, isa.ClassFPDiv)
	want := uint64(clamp01(lerp(cur, target, s)) * float64(p.TotalDyn))
	have := p.Mix[isa.ClassFPAdd] + p.Mix[isa.ClassFPMul] + p.Mix[isa.ClassFPDiv]
	if want > have {
		need := want - have
		for _, filler := range []isa.Class{isa.ClassIntALU, isa.ClassOther} {
			take := min64(need, p.Mix[filler])
			p.Mix[filler] -= take
			p.Mix[isa.ClassFPAdd] += take
			need -= take
			if need == 0 {
				break
			}
		}
		return
	}
	// Shrink proportionally, largest class first to absorb rounding.
	give := have - want
	for _, cls := range []isa.Class{isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv} {
		take := min64(give, p.Mix[cls])
		p.Mix[cls] -= take
		p.Mix[isa.ClassIntALU] += take
		give -= take
		if give == 0 {
			break
		}
	}
}

// mutateFPDivShare moves the divide share of FP operations toward target,
// keeping the FP total constant by trading FPDiv against FPAdd/FPMul.
func mutateFPDivShare(p *profile.Profile, target, s float64) {
	fpTotal := p.Mix[isa.ClassFPAdd] + p.Mix[isa.ClassFPMul] + p.Mix[isa.ClassFPDiv]
	if fpTotal == 0 {
		return // no FP work to reshape; the fp axis creates some first
	}
	cur := float64(p.Mix[isa.ClassFPDiv]) / float64(fpTotal)
	want := uint64(clamp01(lerp(cur, target, s)) * float64(fpTotal))
	if want > p.Mix[isa.ClassFPDiv] {
		need := want - p.Mix[isa.ClassFPDiv]
		for _, cls := range []isa.Class{isa.ClassFPAdd, isa.ClassFPMul} {
			take := min64(need, p.Mix[cls])
			p.Mix[cls] -= take
			p.Mix[isa.ClassFPDiv] += take
			need -= take
			if need == 0 {
				break
			}
		}
	} else {
		give := p.Mix[isa.ClassFPDiv] - want
		p.Mix[isa.ClassFPDiv] -= give
		p.Mix[isa.ClassFPAdd] += give
	}
}

// reshapeStrides moves a site's dominant-stride concentration toward
// target while preserving the total stride mass, so the stream stays a
// valid histogram.
func reshapeStrides(st *sfgl.Stream, target, s float64) {
	if len(st.Strides) == 0 {
		return
	}
	var mass float64
	for _, b := range st.Strides {
		mass += b.Frac
	}
	if mass <= 0 {
		return
	}
	topShare := st.Strides[0].Frac / mass
	wantShare := clamp01(lerp(topShare, target, s))
	if len(st.Strides) == 1 {
		return // a single bin is always 100% concentrated
	}
	// Rescale: the top bin takes wantShare of the mass, the tail splits
	// the rest in its existing proportions.
	tail := mass - st.Strides[0].Frac
	st.Strides[0].Frac = wantShare * mass
	rest := mass - st.Strides[0].Frac
	for i := 1; i < len(st.Strides); i++ {
		if tail > 0 {
			st.Strides[i].Frac = rest * (st.Strides[i].Frac / tail)
		} else {
			st.Strides[i].Frac = rest / float64(len(st.Strides)-1)
		}
	}
}

// forEachBranch applies fn to every conditional-branch site.
func forEachBranch(p *profile.Profile, fn func(*sfgl.BranchInfo)) {
	for _, n := range p.Graph.Nodes {
		if n != nil && n.Branch != nil && n.Branch.Total > 0 {
			fn(n.Branch)
		}
	}
}

// forEachStream applies fn to every memory-access stream descriptor.
func forEachStream(p *profile.Profile, fn func(*sfgl.Stream)) {
	for _, n := range p.Graph.Nodes {
		if n == nil {
			continue
		}
		for i := range n.Instrs {
			if s := n.Instrs[i].Stream; s != nil {
				fn(s)
			}
		}
	}
}

// cloneProfile deep-copies a profile so mutations never alias the cached
// baseline artifact (the pipeline shares cached profiles by pointer).
func cloneProfile(p *profile.Profile) *profile.Profile {
	out := *p
	g := p.Graph
	ng := &sfgl.Graph{
		FuncNames: append([]string(nil), g.FuncNames...),
		FuncCalls: append([]uint64(nil), g.FuncCalls...),
	}
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		nn := *n
		nn.Instrs = make([]sfgl.InstrInfo, len(n.Instrs))
		for i, ins := range n.Instrs {
			nn.Instrs[i] = ins
			if ins.Stream != nil {
				st := *ins.Stream
				st.Strides = append([]sfgl.StrideBin(nil), ins.Stream.Strides...)
				nn.Instrs[i].Stream = &st
			}
		}
		if n.Branch != nil {
			b := *n.Branch
			nn.Branch = &b
		}
		ng.Nodes = append(ng.Nodes, &nn)
	}
	for _, e := range g.Edges {
		ne := *e
		ng.Edges = append(ng.Edges, &ne)
	}
	for _, l := range g.Loops {
		nl := *l
		nl.Nodes = append([]int(nil), l.Nodes...)
		ng.Loops = append(ng.Loops, &nl)
	}
	out.Graph = ng
	return &out
}

// CheckProfile verifies the invariants a realizable synthetic profile
// must satisfy: a valid SFGL (known stream versions), an instruction mix
// summing to the dynamic total, and every stream and branch statistic in
// range. The sampler discards candidates that fail it, and tests assert
// every emitted point passes it.
func CheckProfile(p *profile.Profile) error {
	if p == nil || p.Graph == nil {
		return fmt.Errorf("generate: nil profile or graph")
	}
	if err := p.Graph.Validate(); err != nil {
		return err
	}
	if p.TotalDyn == 0 {
		return fmt.Errorf("generate: profile has no dynamic instructions")
	}
	var sum uint64
	for _, c := range p.Mix {
		sum += c
	}
	if sum != p.TotalDyn {
		return fmt.Errorf("generate: mix sums to %d, want TotalDyn=%d", sum, p.TotalDyn)
	}
	var err error
	check01 := func(what string, v float64) {
		if err == nil && (math.IsNaN(v) || v < 0 || v > 1) {
			err = fmt.Errorf("generate: %s=%v out of [0,1]", what, v)
		}
	}
	forEachStream(p, func(st *sfgl.Stream) {
		check01("missRate", st.MissRate)
		check01("missWide", st.MissWide)
		check01("regularity", st.Regularity)
		check01("shortReuse", st.ShortReuse)
		var mass float64
		for _, b := range st.Strides {
			if err == nil && (b.Frac < 0 || math.IsNaN(b.Frac)) {
				err = fmt.Errorf("generate: negative stride fraction %v", b.Frac)
			}
			mass += b.Frac
		}
		if err == nil && mass > 1+1e-9 {
			err = fmt.Errorf("generate: stride fractions sum to %v > 1", mass)
		}
	})
	forEachBranch(p, func(bi *sfgl.BranchInfo) {
		check01("takenRate", bi.TakenRate)
		check01("transRate", bi.TransRate)
	})
	return err
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
