// Package generate turns the synthesis framework from "clone these
// thirteen programs" into an open-ended benchmark-suite factory: it
// embeds statistical profiles into a fixed-length feature space, analyzes
// how well the existing suite covers that space, samples new synthetic
// profiles directed at the coverage holes, and realizes each one through
// the pipeline's Synthesize → Validate path, measuring the achieved
// features of the realized clone against the requested ones.
//
// The feature space is the profile vocabulary the paper's synthesizer
// consumes (Section III.A): instruction-mix fractions, the per-site
// stride-stream summary (miss curve, stride concentration, pointer-chase
// fraction, short reuse), and the branch hard/easy mixture. Because the
// sampler only ever perturbs real profiles along these axes — under the
// same invariants profile.Load enforces — every generated point is a
// profile the synthesizer can realize, not an arbitrary vector.
package generate

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/profile"
)

// FeaturesVersion is the feature-vector serialization version. Load
// rejects vectors from a newer (unknown) version instead of silently
// comparing incompatible embeddings; changing the dimension list or the
// semantics of any dimension requires bumping it.
const FeaturesVersion = 1

// NumFeatures is the embedding dimension. Every Features vector has
// exactly this length, and Distance is only defined between vectors of
// the same version.
const NumFeatures = 16

// FeatureNames labels the embedding dimensions, index-aligned with
// Features.Vec. All dimensions are normalized to [0, 1], so the unweighted
// distance metric treats them comparably.
var FeatureNames = [NumFeatures]string{
	"load",       // dynamic load fraction
	"store",      // dynamic store fraction
	"branch",     // dynamic conditional-branch fraction
	"fp",         // FP operation fraction (add+mul+div classes)
	"fpdiv",      // divide/sqrt share of FP operations
	"intmuldiv",  // integer multiply/divide fraction
	"hardbranch", // execution-weighted share of hard-to-predict branch sites
	"taken",      // execution-weighted mean branch taken rate
	"trans",      // execution-weighted mean branch transition rate
	"entropy",    // execution-weighted mean branch outcome entropy
	"miss",       // access-weighted mean miss rate at the profiling cache
	"misswide",   // access-weighted mean miss rate at the wide (8x) cache
	"chase",      // access-weighted share of irregular (pointer-chase) sites
	"stridetop",  // access-weighted mean dominant-stride concentration
	"reuse",      // access-weighted mean short-reuse fraction
	"block",      // mean dynamic basic-block size, normalized
}

// blockSizeScale normalizes the mean dynamic basic-block size (in
// instructions) into [0, 1]; blocks at or beyond this size saturate the
// dimension. The suite's blocks run from ~4 to ~20 instructions.
const blockSizeScale = 24.0

// Features is one profile's embedding: a versioned, fixed-length point in
// the generation feature space, with canonical JSON encoding.
type Features struct {
	// V is the embedding version (FeaturesVersion when produced here).
	V int `json:"v"`
	// Workload names the profile the vector embeds.
	Workload string `json:"workload"`
	// Vec is the feature vector, index-aligned with FeatureNames.
	Vec []float64 `json:"vec"`
}

// FromProfile embeds a profile into the feature space. The embedding is a
// pure function of the profile's statistics, so equal profiles embed to
// equal vectors regardless of how they were produced.
func FromProfile(p *profile.Profile) Features {
	f := Features{V: FeaturesVersion, Workload: p.Workload, Vec: make([]float64, NumFeatures)}
	total := float64(p.TotalDyn)
	if total <= 0 {
		return f
	}
	f.Vec[0] = float64(p.Mix[isa.ClassLoad]) / total
	f.Vec[1] = float64(p.Mix[isa.ClassStore]) / total
	f.Vec[2] = float64(p.Mix[isa.ClassBranch]) / total
	fpOps := float64(p.Mix[isa.ClassFPAdd] + p.Mix[isa.ClassFPMul] + p.Mix[isa.ClassFPDiv])
	f.Vec[3] = fpOps / total
	if fpOps > 0 {
		f.Vec[4] = float64(p.Mix[isa.ClassFPDiv]) / fpOps
	}
	f.Vec[5] = float64(p.Mix[isa.ClassIntMul]+p.Mix[isa.ClassIntDiv]) / total

	// Branch dimensions: weighted by each site's dynamic execution count,
	// so one hot inner-loop branch dominates a hundred cold ones.
	var brTotal, brHard, takenSum, transSum, entSum float64
	var blockInstrs, blockCount float64
	for _, n := range p.Graph.Nodes {
		if n == nil {
			continue
		}
		blockInstrs += float64(n.Count) * float64(len(n.Instrs))
		blockCount += float64(n.Count)
		b := n.Branch
		if b == nil || b.Total == 0 {
			continue
		}
		w := float64(b.Total)
		brTotal += w
		if b.Hard {
			brHard += w
		}
		takenSum += w * b.TakenRate
		transSum += w * b.TransRate
		entSum += w * binaryEntropy(b.TakenRate)
	}
	if brTotal > 0 {
		f.Vec[6] = brHard / brTotal
		f.Vec[7] = takenSum / brTotal
		f.Vec[8] = transSum / brTotal
		f.Vec[9] = entSum / brTotal
	}

	// Stream dimensions: weighted by each site's dynamic access count.
	var acc, missSum, wideSum, chaseSum, strideSum, reuseSum float64
	for _, n := range p.Graph.Nodes {
		if n == nil {
			continue
		}
		for i := range n.Instrs {
			s := n.Instrs[i].Stream
			if s == nil || s.Accesses == 0 {
				continue
			}
			w := float64(s.Accesses)
			acc += w
			missSum += w * s.MissRate
			wideSum += w * s.MissWide
			if s.Regularity < 0.5 {
				chaseSum += w
			}
			strideSum += w * s.TopFrac(1)
			reuseSum += w * s.ShortReuse
		}
	}
	if acc > 0 {
		f.Vec[10] = missSum / acc
		f.Vec[11] = wideSum / acc
		f.Vec[12] = chaseSum / acc
		f.Vec[13] = strideSum / acc
		f.Vec[14] = reuseSum / acc
	}

	if blockCount > 0 {
		f.Vec[15] = math.Min(blockInstrs/blockCount/blockSizeScale, 1)
	}
	for i, v := range f.Vec {
		f.Vec[i] = clamp01(v)
	}
	return f
}

// binaryEntropy is H(p) in bits, normalized to [0, 1] (max at p = 0.5).
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -(p*math.Log2(p) + (1-p)*math.Log2(1-p))
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// Distance is the root-mean-square distance between two feature vectors —
// the metric coverage analysis, hole detection, and the requested-vs-
// achieved error all share. Vectors of different versions or lengths are
// infinitely far apart rather than silently comparable.
func Distance(a, b Features) float64 {
	if a.V != b.V || len(a.Vec) != len(b.Vec) || len(a.Vec) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for i := range a.Vec {
		d := a.Vec[i] - b.Vec[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a.Vec)))
}

// Encode renders the vector as canonical JSON (fixed field order, no
// indentation), the byte form reports and fingerprints use.
func (f Features) Encode() ([]byte, error) {
	return json.Marshal(f)
}

// LoadFeatures decodes and validates a feature vector: the version must
// be known, the dimension must match, and every component must be finite.
// Malformed or future-versioned vectors fail loudly instead of skewing a
// coverage analysis.
func LoadFeatures(data []byte) (Features, error) {
	var f Features
	if err := json.Unmarshal(data, &f); err != nil {
		return Features{}, fmt.Errorf("generate: bad features: %w", err)
	}
	if f.V < 1 || f.V > FeaturesVersion {
		return Features{}, fmt.Errorf("generate: unsupported features version %d (max %d)", f.V, FeaturesVersion)
	}
	if len(f.Vec) != NumFeatures {
		return Features{}, fmt.Errorf("generate: features have %d dimensions, want %d", len(f.Vec), NumFeatures)
	}
	for i, v := range f.Vec {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Features{}, fmt.Errorf("generate: feature %q is not finite", FeatureNames[i])
		}
	}
	return f, nil
}
