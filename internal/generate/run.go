package generate

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/compiler"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/workloads"
)

// PointReport records one generated point's requested-vs-achieved outcome.
type PointReport struct {
	// Name is the point's corpus-unique name; Base the real workload it
	// was perturbed from; Axes the perturbed feature axes.
	Name string   `json:"name"`
	Base string   `json:"base"`
	Axes []string `json:"axes"`
	// Requested is the sampled profile's embedding; Achieved is the
	// embedding measured by re-profiling the realized clone at the
	// pipeline's profiling point. Err is the distance between them.
	Requested Features `json:"requested"`
	Achieved  Features `json:"achieved"`
	Err       float64  `json:"err"`
	// Separation is the achieved point's distance to its nearest baseline
	// neighbor: how much new feature-space volume the point actually fills.
	Separation float64 `json:"separation"`
	// CloneDyn is the realized clone's measured dynamic instruction count
	// (nonzero for every accepted point — the Validate criterion).
	CloneDyn uint64 `json:"cloneDyn"`
	// Source is the realized clone's HLC source, the corpus deliverable.
	Source string `json:"source,omitempty"`
	// Reject carries the failure reason of a point that did not realize;
	// rejected points have no Achieved/Source.
	Reject string `json:"reject,omitempty"`
}

// Report is the outcome of one generation run.
type Report struct {
	// Name is the corpus label; SpecDigest the spec's fingerprint; Seed
	// the sampler seed.
	Name       string `json:"name"`
	SpecDigest string `json:"specDigest"`
	Seed       int64  `json:"seed"`
	// Baseline is the suite's coverage before generation; After embeds
	// the baseline plus every accepted achieved point.
	Baseline Coverage `json:"baseline"`
	After    Coverage `json:"after"`
	// Points reports every sampled point in corpus order.
	Points []PointReport `json:"points"`
	// Accepted and Rejected count the points that did and did not realize.
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	// MinSeparation is the smallest Separation over accepted points. The
	// coverage claim "holes filled" means MinSeparation exceeds
	// Baseline.MinPairDist: every generated point sits farther from the
	// existing suite than the suite's two closest members sit from each
	// other (see docs/generate.md).
	MinSeparation float64 `json:"minSeparation"`
	// MeanErr and MaxErr summarize requested-vs-achieved error over
	// accepted points.
	MeanErr float64 `json:"meanErr"`
	MaxErr  float64 `json:"maxErr"`
}

// BaselineWorkloads resolves the spec's baseline suite: the named suite
// (default quick) plus the extra workloads, deduplicated in order.
func BaselineWorkloads(spec *Spec) ([]*workloads.Workload, error) {
	suite := spec.Suite
	if suite == "" {
		suite = "quick"
	}
	ws, err := experiments.Suite(suite)
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}
	var names []string
	for _, w := range ws {
		names = append(names, w.Name)
	}
	names = append(names, spec.Workloads...)
	seen := map[string]bool{}
	var out []*workloads.Workload
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		w := workloads.ByName(n)
		if w == nil {
			return nil, fmt.Errorf("generate: unknown workload %q", n)
		}
		out = append(out, w)
	}
	return out, nil
}

// samplePoints profiles the baseline through the cached pipeline and runs
// the directed sampler over it.
func samplePoints(ctx context.Context, p *pipeline.Pipeline, spec *Spec) ([]SampledPoint, []Features, error) {
	ws, err := BaselineWorkloads(spec)
	if err != nil {
		return nil, nil, err
	}
	profs, err := pipeline.Map(ctx, p, ws,
		func(ctx context.Context, w *workloads.Workload) (*profile.Profile, error) {
			return p.Profile(ctx, w)
		})
	if err != nil {
		return nil, nil, err
	}
	baseline := make([]Features, len(profs))
	for i, pr := range profs {
		baseline[i] = FromProfile(pr)
	}
	points, err := Sample(spec, profs)
	if err != nil {
		return nil, nil, err
	}
	return points, baseline, nil
}

// realizePoint feeds one sampled profile through the pipeline's cached
// Synthesize stage, then validates and measures the realized clone by
// compiling it at the profiling point and re-profiling it under the same
// cache — the achieved feature vector is the clone's own embedding, so
// requested-vs-achieved error is measured in the exact space the sampler
// targeted. Failures land in the point's Reject field, never as errors:
// one unrealizable point must not void the corpus.
func realizePoint(ctx context.Context, p *pipeline.Pipeline, sp SampledPoint) PointReport {
	rep := PointReport{Name: sp.Name, Base: sp.Base, Axes: sp.Axes, Requested: sp.Requested}
	cl, err := p.SynthesizeProfile(ctx, sp.Profile)
	if err != nil {
		rep.Reject = fmt.Sprintf("synthesize: %v", err)
		return rep
	}
	target, level := p.ProfilePoint()
	prog, err := compiler.Compile(cl.Checked, target, level)
	if err != nil {
		rep.Reject = fmt.Sprintf("compile: %v", err)
		return rep
	}
	// Clones are self-contained (no inputs) and terminate by construction;
	// a clone that traps or executes nothing is rejected, the same
	// criterion the Validate stage applies to named workloads.
	measured, err := profile.Collect(prog, nil, sp.Name, profile.Options{Cache: p.ProfileCacheConfig()})
	if err != nil {
		rep.Reject = fmt.Sprintf("validate: %v", err)
		return rep
	}
	if measured.TotalDyn == 0 {
		rep.Reject = "validate: clone executed no instructions"
		return rep
	}
	rep.Achieved = FromProfile(measured)
	rep.Err = Distance(rep.Requested, rep.Achieved)
	rep.CloneDyn = measured.TotalDyn
	rep.Source = cl.Source
	return rep
}

// Run executes a generation run end to end: profile the baseline suite,
// sample spec.N directed synthetic profiles, realize each through
// Synthesize → Validate, and report requested vs. achieved features with
// coverage before and after. The whole report is a StageGenerate artifact
// cached under the spec's fingerprint and the pipeline's options, so a
// warm rerun of the same spec over the same store computes nothing, and
// the report bytes are identical for a fixed spec regardless of worker
// count.
func Run(ctx context.Context, p *pipeline.Pipeline, spec *Spec) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	data, err := p.GenerateArtifact(ctx, spec.Fingerprint(), func(ctx context.Context) ([]byte, error) {
		rep, err := run(ctx, p, spec)
		if err != nil {
			return nil, err
		}
		return json.Marshal(rep)
	})
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("generate: bad cached report: %w", err)
	}
	return &rep, nil
}

// run is the uncached generation flow behind Run.
func run(ctx context.Context, p *pipeline.Pipeline, spec *Spec) (*Report, error) {
	points, baseline, err := samplePoints(ctx, p, spec)
	if err != nil {
		return nil, err
	}
	// Realization fans out on the pipeline pool; Map preserves order, so
	// the report is deterministic for any worker count.
	reports, err := pipeline.Map(ctx, p, points,
		func(ctx context.Context, sp SampledPoint) (PointReport, error) {
			return realizePoint(ctx, p, sp), nil
		})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Name:          spec.name(),
		SpecDigest:    spec.Fingerprint(),
		Seed:          spec.Seed,
		Baseline:      Analyze(baseline),
		Points:        reports,
		MinSeparation: math.Inf(1),
	}
	after := append([]Features(nil), baseline...)
	var errSum float64
	for i := range rep.Points {
		pt := &rep.Points[i]
		if pt.Reject != "" {
			rep.Rejected++
			continue
		}
		pt.Separation = nearestDistance(pt.Achieved, baseline)
		rep.Accepted++
		errSum += pt.Err
		if pt.Err > rep.MaxErr {
			rep.MaxErr = pt.Err
		}
		if pt.Separation < rep.MinSeparation {
			rep.MinSeparation = pt.Separation
		}
		after = append(after, pt.Achieved)
	}
	if rep.Accepted > 0 {
		rep.MeanErr = errSum / float64(rep.Accepted)
	} else {
		rep.MinSeparation = 0
	}
	rep.After = Analyze(after)
	return rep, nil
}

// RealizePoint realizes exactly one sampled point of a spec — the unit a
// cluster generate job executes. The sampler is deterministic, so every
// worker derives the identical point list and realizes only its index;
// the synthesis artifact lands in the shared store, where the
// dispatcher's final Run (or any explore consumer) finds it warm.
func RealizePoint(ctx context.Context, p *pipeline.Pipeline, spec *Spec, index int) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if index < 0 || index >= spec.N {
		return fmt.Errorf("generate: point index %d out of range 0-%d", index, spec.N-1)
	}
	points, _, err := samplePoints(ctx, p, spec)
	if err != nil {
		return err
	}
	pt := realizePoint(ctx, p, points[index])
	if pt.Reject != "" {
		return fmt.Errorf("generate: point %s: %s", pt.Name, pt.Reject)
	}
	return nil
}

// Corpus materializes a run's accepted points as registrable workloads:
// each clone's HLC source becomes a self-contained workload named
// "gen/<point>", ready for workloads.Register and consumption by `synth
// explore`. Rejected points are skipped.
func Corpus(ctx context.Context, p *pipeline.Pipeline, spec *Spec) ([]*workloads.Workload, error) {
	rep, err := Run(ctx, p, spec)
	if err != nil {
		return nil, err
	}
	var out []*workloads.Workload
	for _, pt := range rep.Points {
		if pt.Reject != "" || pt.Source == "" {
			continue
		}
		out = append(out, &workloads.Workload{
			Name:   "gen/" + pt.Name,
			Bench:  "gen/" + rep.Name,
			Source: pt.Source,
		})
	}
	return out, nil
}
