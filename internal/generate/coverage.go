package generate

import "math"

// Coverage summarizes how a point set occupies the feature space:
// pairwise-distance statistics (the farthest-point view of how spread the
// set is) and per-dimension extremes (which workload pins each end of each
// axis, and how much of the axis the set leaves empty).
type Coverage struct {
	// Points is the number of embedded profiles.
	Points int `json:"points"`
	// MinPairDist and MeanPairDist are the minimum and mean pairwise
	// distances: a small minimum means two near-duplicate workloads, a
	// small mean means the whole suite clusters in one region.
	MinPairDist  float64 `json:"minPairDist"`
	MeanPairDist float64 `json:"meanPairDist"`
	// ClosestPair names the two nearest points.
	ClosestPair [2]string `json:"closestPair"`
	// Dims reports per-dimension extremes, index-aligned with FeatureNames.
	Dims []DimCoverage `json:"dims"`
}

// DimCoverage is one dimension's occupied range.
type DimCoverage struct {
	// Name is the FeatureNames entry.
	Name string `json:"name"`
	// Min and Max are the extreme observed values; MinWorkload and
	// MaxWorkload name the points attaining them.
	Min         float64 `json:"min"`
	Max         float64 `json:"max"`
	MinWorkload string  `json:"minWorkload"`
	MaxWorkload string  `json:"maxWorkload"`
}

// Analyze computes the coverage summary of a point set. Fewer than two
// points have no pairwise statistics (zeros).
func Analyze(points []Features) Coverage {
	cov := Coverage{Points: len(points)}
	for d := 0; d < NumFeatures; d++ {
		dim := DimCoverage{Name: FeatureNames[d]}
		for i, f := range points {
			if len(f.Vec) != NumFeatures {
				continue
			}
			v := f.Vec[d]
			if i == 0 || v < dim.Min {
				dim.Min, dim.MinWorkload = v, f.Workload
			}
			if i == 0 || v > dim.Max {
				dim.Max, dim.MaxWorkload = v, f.Workload
			}
		}
		cov.Dims = append(cov.Dims, dim)
	}
	if len(points) < 2 {
		return cov
	}
	cov.MinPairDist = math.Inf(1)
	var sum float64
	var pairs int
	for i := 0; i < len(points); i++ {
		for j := i + 1; j < len(points); j++ {
			d := Distance(points[i], points[j])
			sum += d
			pairs++
			if d < cov.MinPairDist {
				cov.MinPairDist = d
				cov.ClosestPair = [2]string{points[i].Workload, points[j].Workload}
			}
		}
	}
	cov.MeanPairDist = sum / float64(pairs)
	return cov
}

// nearestDistance returns the distance from f to its nearest neighbor in
// points (infinite for an empty set) — the separation score the sampler
// maximizes and the report gates on.
func nearestDistance(f Features, points []Features) float64 {
	best := math.Inf(1)
	for _, p := range points {
		if d := Distance(f, p); d < best {
			best = d
		}
	}
	return best
}
