package generate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/store"
)

// MaxPoints bounds a spec's corpus size, so a fat-fingered count fails
// fast instead of enqueueing a thousand syntheses.
const MaxPoints = 256

// Spec declares one generation run: the baseline suite whose coverage to
// extend, how many synthetic points to sample, the seed, and the sampler
// knobs. It is the JSON body `synth generate -spec` and
// POST /api/v1/generate consume.
type Spec struct {
	// Name labels the generated corpus; point names are derived from it.
	// Empty means "gen".
	Name string `json:"name,omitempty"`
	// Suite selects the baseline workload suite (tiny, quick, full;
	// default quick); Workloads names additional workload/input pairs.
	// The union, deduplicated in listed order, is the baseline whose
	// profiles seed the sampler and define current coverage.
	Suite     string   `json:"suite,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	// N is the number of synthetic points to generate (1..MaxPoints).
	N int `json:"n"`
	// Seed drives the sampler. Same seed + same spec ⇒ byte-identical
	// corpus, regardless of worker count (see docs/generate.md).
	Seed int64 `json:"seed"`
	// Axes restricts which feature axes the sampler may perturb (names
	// from MutableAxes); empty means all of them.
	Axes []string `json:"axes,omitempty"`
	// Strength scales how far a perturbation moves along an axis toward
	// its bound, in (0, 1]. 0 selects DefaultStrength.
	Strength float64 `json:"strength,omitempty"`
	// Candidates is how many candidate mutants the sampler scores per
	// emitted point (farthest-point selection); 0 selects
	// DefaultCandidates.
	Candidates int `json:"candidates,omitempty"`
}

// Sampler defaults. Strength is deliberately aggressive: synthesis pulls
// realized clones back toward the feature-space region the suite already
// occupies (requested-vs-achieved error runs ~0.2-0.3 RMS), so sampling
// must overshoot the coverage holes for the achieved points to land in
// them.
const (
	DefaultStrength   = 0.9
	DefaultCandidates = 48
)

// ParseSpec decodes and validates a JSON generation spec. Unknown fields
// are rejected, so a typoed knob fails loudly instead of silently running
// the defaults.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("generate: bad spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec's bounds and axis names.
func (s *Spec) Validate() error {
	if s.N < 1 || s.N > MaxPoints {
		return fmt.Errorf("generate: n=%d out of range 1-%d", s.N, MaxPoints)
	}
	if s.Strength < 0 || s.Strength > 1 {
		return fmt.Errorf("generate: strength=%v out of range (0, 1]", s.Strength)
	}
	if s.Candidates < 0 || s.Candidates > 1024 {
		return fmt.Errorf("generate: candidates=%d out of range 0-1024", s.Candidates)
	}
	for _, a := range s.Axes {
		if !axisKnown(a) {
			return fmt.Errorf("generate: unknown axis %q (known: %s)", a, strings.Join(MutableAxes, ", "))
		}
	}
	return nil
}

// name returns the corpus label ("gen" when unnamed).
func (s *Spec) name() string {
	if s.Name == "" {
		return "gen"
	}
	return s.Name
}

// strength returns the effective perturbation strength.
func (s *Spec) strength() float64 {
	if s.Strength == 0 {
		return DefaultStrength
	}
	return s.Strength
}

// candidates returns the effective candidate pool size.
func (s *Spec) candidates() int {
	if s.Candidates == 0 {
		return DefaultCandidates
	}
	return s.Candidates
}

// axes returns the effective perturbation axis list.
func (s *Spec) axes() []string {
	if len(s.Axes) == 0 {
		return MutableAxes
	}
	return s.Axes
}

// Canonical returns the versioned, unambiguous encoding of the spec. Two
// runs with equal canonicals generate the same corpus; the generation
// report is cached under its fingerprint.
func (s *Spec) Canonical() string {
	return fmt.Sprintf("gen-v1|%s|%s|%s|%d|%d|%s|%g|%d",
		s.name(), s.Suite, strings.Join(s.Workloads, ","), s.N, s.Seed,
		strings.Join(s.Axes, ","), s.Strength, s.Candidates)
}

// Fingerprint returns the spec's content address — the digest of its
// canonical encoding — used to key the cached generation report.
func (s *Spec) Fingerprint() string {
	return store.Fingerprint([]byte(s.Canonical()))
}
