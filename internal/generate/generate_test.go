package generate

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/store"
	"repro/internal/workloads"
)

// suiteProfiles profiles a suite through a fresh pipeline, giving tests a
// realistic baseline without duplicating workload plumbing.
func suiteProfiles(t *testing.T, p *pipeline.Pipeline, suite string) []*profile.Profile {
	t.Helper()
	ws, err := experiments.Suite(suite)
	if err != nil {
		t.Fatal(err)
	}
	profs := make([]*profile.Profile, len(ws))
	for i, w := range ws {
		if profs[i], err = p.Profile(context.Background(), w); err != nil {
			t.Fatalf("profile %s: %v", w.Name, err)
		}
	}
	return profs
}

func TestFeaturesRoundTrip(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 2, Seed: 1})
	profs := suiteProfiles(t, p, "tiny")
	for _, pr := range profs {
		f := FromProfile(pr)
		if f.V != FeaturesVersion || len(f.Vec) != NumFeatures {
			t.Fatalf("%s: embedding shape v=%d dims=%d", pr.Workload, f.V, len(f.Vec))
		}
		for i, v := range f.Vec {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Errorf("%s: feature %s = %v outside [0,1]", pr.Workload, FeatureNames[i], v)
			}
		}
		if d := Distance(f, f); d != 0 {
			t.Errorf("%s: self-distance %v", pr.Workload, d)
		}
		data, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := LoadFeatures(data)
		if err != nil {
			t.Fatalf("%s: round trip: %v", pr.Workload, err)
		}
		if !reflect.DeepEqual(f, got) {
			t.Errorf("%s: round trip drifted:\n%+v\n%+v", pr.Workload, f, got)
		}
		// Embedding is a pure function of the profile.
		if again := FromProfile(pr); !reflect.DeepEqual(f, again) {
			t.Errorf("%s: embedding not deterministic", pr.Workload)
		}
	}
	// The tiny suite's members are distinct programs; their embeddings
	// must not collide.
	for i := 0; i < len(profs); i++ {
		for j := i + 1; j < len(profs); j++ {
			a, b := FromProfile(profs[i]), FromProfile(profs[j])
			if Distance(a, b) == 0 {
				t.Errorf("%s and %s embed identically", a.Workload, b.Workload)
			}
		}
	}
}

func TestDistanceVersionAndShapeMismatch(t *testing.T) {
	a := Features{V: FeaturesVersion, Vec: make([]float64, NumFeatures)}
	b := Features{V: FeaturesVersion + 1, Vec: make([]float64, NumFeatures)}
	if d := Distance(a, b); !math.IsInf(d, 1) {
		t.Errorf("cross-version distance = %v, want +Inf", d)
	}
	c := Features{V: FeaturesVersion, Vec: make([]float64, 3)}
	if d := Distance(a, c); !math.IsInf(d, 1) {
		t.Errorf("cross-shape distance = %v, want +Inf", d)
	}
	if d := Distance(Features{V: 1}, Features{V: 1}); !math.IsInf(d, 1) {
		t.Errorf("empty-vector distance = %v, want +Inf", d)
	}
}

func TestLoadFeaturesRejections(t *testing.T) {
	cases := []struct {
		name, data, want string
	}{
		{"garbage", `{`, "bad features"},
		{"future version", `{"v": 99, "workload": "x", "vec": [0]}`, "unsupported features version"},
		{"zero version", `{"v": 0, "workload": "x", "vec": [0]}`, "unsupported features version"},
		{"wrong dims", `{"v": 1, "workload": "x", "vec": [0.5, 0.5]}`, "dimensions"},
	}
	for _, tc := range cases {
		if _, err := LoadFeatures([]byte(tc.data)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// vec builds a NumFeatures-dim test vector with the given leading values.
func vec(workload string, lead ...float64) Features {
	f := Features{V: FeaturesVersion, Workload: workload, Vec: make([]float64, NumFeatures)}
	copy(f.Vec, lead)
	return f
}

func TestAnalyzeCoverage(t *testing.T) {
	a := vec("a", 0.1)
	b := vec("b", 0.2)
	c := vec("c", 0.9)
	cov := Analyze([]Features{a, b, c})
	if cov.Points != 3 {
		t.Fatalf("points = %d", cov.Points)
	}
	wantMin := Distance(a, b)
	if math.Abs(cov.MinPairDist-wantMin) > 1e-12 {
		t.Errorf("MinPairDist = %v, want %v", cov.MinPairDist, wantMin)
	}
	if cov.ClosestPair != [2]string{"a", "b"} {
		t.Errorf("ClosestPair = %v", cov.ClosestPair)
	}
	if len(cov.Dims) != NumFeatures {
		t.Fatalf("dims = %d", len(cov.Dims))
	}
	d0 := cov.Dims[0]
	if d0.Name != FeatureNames[0] || d0.Min != 0.1 || d0.Max != 0.9 ||
		d0.MinWorkload != "a" || d0.MaxWorkload != "c" {
		t.Errorf("dim 0 = %+v", d0)
	}
	// Degenerate sets have no pairwise stats.
	if cov := Analyze([]Features{a}); cov.MinPairDist != 0 || cov.MeanPairDist != 0 {
		t.Errorf("single-point coverage has pairwise stats: %+v", cov)
	}
}

func TestNearestDistance(t *testing.T) {
	pts := []Features{vec("a", 0.1), vec("b", 0.5)}
	probe := vec("p", 0.45)
	want := Distance(probe, pts[1])
	if got := nearestDistance(probe, pts); math.Abs(got-want) > 1e-12 {
		t.Errorf("nearestDistance = %v, want %v", got, want)
	}
	if got := nearestDistance(probe, nil); !math.IsInf(got, 1) {
		t.Errorf("empty-set nearest = %v, want +Inf", got)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"unknown field", `{"n": 2, "seed": 1, "sampler": "x"}`, "unknown field"},
		{"zero n", `{"n": 0, "seed": 1}`, "out of range"},
		{"huge n", `{"n": 10000, "seed": 1}`, "out of range"},
		{"bad strength", `{"n": 2, "seed": 1, "strength": 1.5}`, "strength"},
		{"bad candidates", `{"n": 2, "seed": 1, "candidates": 9999}`, "candidates"},
		{"unknown axis", `{"n": 2, "seed": 1, "axes": ["vliw"]}`, "unknown axis"},
	}
	for _, tc := range cases {
		if _, err := ParseSpec([]byte(tc.spec)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	spec, err := ParseSpec([]byte(`{"n": 4, "seed": 9, "suite": "tiny", "axes": ["miss", "taken"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 4 || spec.Seed != 9 || len(spec.Axes) != 2 {
		t.Errorf("parsed spec = %+v", spec)
	}
}

func TestSpecFingerprintSeparatesSpecs(t *testing.T) {
	a := &Spec{N: 4, Seed: 1, Suite: "tiny"}
	b := &Spec{N: 4, Seed: 2, Suite: "tiny"}
	c := &Spec{N: 4, Seed: 1, Suite: "tiny"}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different seeds share a fingerprint")
	}
	if a.Fingerprint() != c.Fingerprint() {
		t.Error("equal specs disagree on fingerprint")
	}
	if !strings.HasPrefix(a.Canonical(), "gen-v1|") {
		t.Errorf("canonical %q lacks version tag", a.Canonical())
	}
}

func TestSampleDeterministicAndValid(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 2, Seed: 1})
	profs := suiteProfiles(t, p, "tiny")
	spec := &Spec{N: 6, Seed: 42, Suite: "tiny"}
	first, err := Sample(spec, profs)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != spec.N {
		t.Fatalf("sampled %d points, want %d", len(first), spec.N)
	}
	for _, sp := range first {
		if err := CheckProfile(sp.Profile); err != nil {
			t.Errorf("%s: sampled profile invalid: %v", sp.Name, err)
		}
		if got := FromProfile(sp.Profile); !reflect.DeepEqual(got, sp.Requested) {
			t.Errorf("%s: Requested is not the profile's embedding", sp.Name)
		}
		if len(sp.Axes) < 2 {
			t.Errorf("%s: only %d axes perturbed", sp.Name, len(sp.Axes))
		}
	}
	second, err := Sample(spec, profs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("same spec sampled two different corpora")
	}
	other, err := Sample(&Spec{N: 6, Seed: 43, Suite: "tiny"}, profs)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first, other) {
		t.Error("different seeds sampled the identical corpus")
	}
}

func TestCheckProfileRejectsCorruptMutant(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 2, Seed: 1})
	prof := suiteProfiles(t, p, "tiny")[0]
	if err := CheckProfile(prof); err != nil {
		t.Fatalf("real profile rejected: %v", err)
	}
	bad := cloneProfile(prof)
	bad.TotalDyn = prof.TotalDyn + 12345 // mix no longer sums to the total
	if err := CheckProfile(bad); err == nil {
		t.Error("corrupt mix total accepted")
	}
}

// TestGenerateQuickSuiteGate is the PR's acceptance gate: generating eight
// points against the quick suite with seed 1 and default sampler knobs must
// realize every point, and the achieved corpus must genuinely extend
// coverage — every accepted point farther from the suite than the suite's
// own closest pair — with bounded requested-vs-achieved error.
func TestGenerateQuickSuiteGate(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-suite generation is expensive")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.New(pipeline.Options{Workers: 4, Seed: 1, Store: st})
	spec := &Spec{N: 8, Seed: 1}
	rep, err := Run(context.Background(), p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 8 || rep.Rejected != 0 {
		t.Fatalf("accepted=%d rejected=%d, want 8/0; points: %+v", rep.Accepted, rep.Rejected, rep.Points)
	}
	if rep.Baseline.Points != 13 {
		t.Errorf("quick baseline has %d points, want 13", rep.Baseline.Points)
	}
	if rep.After.Points != rep.Baseline.Points+rep.Accepted {
		t.Errorf("after coverage has %d points, want %d", rep.After.Points, rep.Baseline.Points+rep.Accepted)
	}
	// The coverage claim: every generated point opens more feature-space
	// distance than the baseline's tightest pair spans.
	if rep.MinSeparation <= rep.Baseline.MinPairDist {
		t.Errorf("MinSeparation %.4f does not exceed baseline MinPairDist %.4f",
			rep.MinSeparation, rep.Baseline.MinPairDist)
	}
	// Requested-vs-achieved error regression gate: the realized error runs
	// ~0.27 mean / ~0.31 max at this spec; 0.45 is drift headroom, not slack.
	if rep.MaxErr >= 0.45 {
		t.Errorf("MaxErr %.4f breaches the 0.45 regression gate", rep.MaxErr)
	}
	if rep.MeanErr <= 0 || rep.MeanErr > rep.MaxErr {
		t.Errorf("MeanErr %.4f inconsistent with MaxErr %.4f", rep.MeanErr, rep.MaxErr)
	}
	for _, pt := range rep.Points {
		if pt.CloneDyn == 0 {
			t.Errorf("%s: accepted with zero dynamic instructions", pt.Name)
		}
		if pt.Source == "" {
			t.Errorf("%s: accepted without clone source", pt.Name)
		}
		if pt.Separation <= 0 {
			t.Errorf("%s: separation %.4f", pt.Name, pt.Separation)
		}
	}

	// A warm pipeline over the same store replays the cached report
	// byte-for-byte without recomputing any stage.
	warm := pipeline.New(pipeline.Options{Workers: 4, Seed: 1, Store: st})
	rep2, err := Run(context.Background(), warm, spec)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(rep2)
	if string(a) != string(b) {
		t.Error("warm rerun produced a different report")
	}
	cs := warm.CacheStats()
	for s := pipeline.Stage(0); s < pipeline.Stage(pipeline.NumStages); s++ {
		if n := cs.ComputedFor(s); n != 0 {
			t.Errorf("warm rerun recomputed %d %s artifacts", n, s)
		}
	}
}

// TestGenerateDeterminismAcrossWorkers pins the determinism contract: the
// same spec run cold on one worker and on eight, in separate stores,
// produces byte-identical reports.
func TestGenerateDeterminismAcrossWorkers(t *testing.T) {
	spec := &Spec{N: 3, Seed: 7, Suite: "tiny"}
	var reports [][]byte
	for _, workers := range []int{1, 8} {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		p := pipeline.New(pipeline.Options{Workers: workers, Seed: 7, Store: st})
		rep, err := Run(context.Background(), p, spec)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, data)
	}
	if string(reports[0]) != string(reports[1]) {
		t.Error("worker count changed the generation report")
	}
}

func TestRealizePointAndCorpus(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.New(pipeline.Options{Workers: 2, Seed: 7, Store: st})
	spec := &Spec{N: 2, Seed: 7, Suite: "tiny", Name: "tg"}
	if err := RealizePoint(context.Background(), p, spec, 0); err != nil {
		t.Fatalf("RealizePoint: %v", err)
	}
	if err := RealizePoint(context.Background(), p, spec, spec.N); err == nil {
		t.Error("out-of-range index accepted")
	}
	corpus, err := Corpus(context.Background(), p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("corpus is empty")
	}
	for _, w := range corpus {
		if !strings.HasPrefix(w.Name, "gen/tg-") || w.Source == "" {
			t.Errorf("corpus workload %q malformed", w.Name)
		}
		if err := workloads.Register(w); err != nil {
			t.Errorf("register %s: %v", w.Name, err)
		}
		if workloads.ByName(w.Name) != w {
			t.Errorf("%s not resolvable after Register", w.Name)
		}
	}
}

func TestBaselineWorkloadsDedup(t *testing.T) {
	ws, err := BaselineWorkloads(&Spec{N: 1, Seed: 1, Suite: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	base := len(ws)
	if base == 0 {
		t.Fatal("empty baseline")
	}
	// Repeating a suite member adds nothing; an unknown name fails loudly.
	dup, err := BaselineWorkloads(&Spec{N: 1, Seed: 1, Suite: "tiny", Workloads: []string{ws[0].Name}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dup) != base {
		t.Errorf("duplicate workload grew the baseline to %d", len(dup))
	}
	if _, err := BaselineWorkloads(&Spec{N: 1, Seed: 1, Suite: "tiny", Workloads: []string{"no/such"}}); err == nil {
		t.Error("unknown workload accepted")
	}
}
