// Package hlc implements HLC ("high-level C"), the small C-like language in
// which both the original workloads and the synthetic benchmark clones are
// expressed. HLC plays the role C plays in the paper: workloads are written
// in it, the synthesizer emits it, the compiler consumes it, and the
// plagiarism checker fingerprints it.
//
// The language is a strict subset of C in spirit: global scalars and
// fixed-size arrays of int/float, functions with scalar parameters and
// scalar/void results, if/else, for, while, break/continue/return, the usual
// expression operators with C precedence, and a print builtin used as an
// observable side effect (the paper uses printf the same way, to keep the
// compiler from deleting computation).
package hlc

import "fmt"

// Token identifies a lexical token kind.
type Token int

// Token kinds. The order within the operator groups is relied upon by the
// parser's precedence tables; keep new tokens out of those ranges.
const (
	EOF Token = iota
	IDENT
	INTLIT
	FLOATLIT

	// Keywords.
	KwInt
	KwFloat
	KwVoid
	KwIf
	KwElse
	KwFor
	KwWhile
	KwBreak
	KwContinue
	KwReturn
	KwPrint

	// Punctuation.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon

	// Operators.
	Assign    // =
	PlusEq    // +=
	MinusEq   // -=
	StarEq    // *=
	SlashEq   // /=
	PercentEq // %=
	AmpEq     // &=
	PipeEq    // |=
	CaretEq   // ^=
	ShlEq     // <<=
	ShrEq     // >>=
	Inc       // ++
	Dec       // --

	LOr   // ||
	LAnd  // &&
	Pipe  // |
	Caret // ^
	Amp   // &
	Eq    // ==
	Neq   // !=
	Lt    // <
	Le    // <=
	Gt    // >
	Ge    // >=
	Shl   // <<
	Shr   // >>
	Plus  // +
	Minus // -
	Star  // *
	Slash // /
	Percent
	Not   // !
	Tilde // ~
)

var tokenNames = map[Token]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "int literal", FLOATLIT: "float literal",
	KwInt: "int", KwFloat: "float", KwVoid: "void", KwIf: "if", KwElse: "else",
	KwFor: "for", KwWhile: "while", KwBreak: "break", KwContinue: "continue",
	KwReturn: "return", KwPrint: "print",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBracket: "[", RBracket: "]",
	Comma: ",", Semicolon: ";",
	Assign: "=", PlusEq: "+=", MinusEq: "-=", StarEq: "*=", SlashEq: "/=",
	PercentEq: "%=", AmpEq: "&=", PipeEq: "|=", CaretEq: "^=", ShlEq: "<<=", ShrEq: ">>=",
	Inc: "++", Dec: "--",
	LOr: "||", LAnd: "&&", Pipe: "|", Caret: "^", Amp: "&",
	Eq: "==", Neq: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	Shl: "<<", Shr: ">>", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Percent: "%", Not: "!", Tilde: "~",
}

// String returns the source spelling (or a description) of the token.
func (t Token) String() string {
	if s, ok := tokenNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Token(%d)", int(t))
}

var keywords = map[string]Token{
	"int": KwInt, "float": KwFloat, "void": KwVoid,
	"if": KwIf, "else": KwElse, "for": KwFor, "while": KwWhile,
	"break": KwBreak, "continue": KwContinue, "return": KwReturn,
	"print": KwPrint,
}

// Pos is a source position, 1-based.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Lexeme is a token together with its spelling and position.
type Lexeme struct {
	Tok  Token
	Text string
	Pos  Pos
}
