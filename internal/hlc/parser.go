package hlc

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for HLC.
type Parser struct {
	toks []Lexeme
	pos  int
}

// Parse parses a complete HLC program from source text. The result is
// syntactically valid but not yet type checked; call Check to validate it.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.program()
}

// MustParse parses src and panics on error. Intended for tests and for the
// embedded workload sources, which are validated by the test suite.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) cur() Lexeme  { return p.toks[p.pos] }
func (p *Parser) tok() Token   { return p.toks[p.pos].Tok }
func (p *Parser) next() Lexeme { l := p.toks[p.pos]; p.pos++; return l }

func (p *Parser) peekTok(n int) Token {
	if p.pos+n >= len(p.toks) {
		return EOF
	}
	return p.toks[p.pos+n].Tok
}

func (p *Parser) expect(t Token) (Lexeme, error) {
	if p.tok() != t {
		return Lexeme{}, fmt.Errorf("hlc: %v: expected %v, found %v", p.cur().Pos, t, p.tok())
	}
	return p.next(), nil
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("hlc: %v: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) program() (*Program, error) {
	prog := &Program{}
	for p.tok() != EOF {
		typ, err := p.typeName()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.tok() == LParen {
			fn, err := p.funcDecl(typ, name)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		if typ == TypeVoid {
			return nil, p.errf("variable %s cannot have type void", name.Text)
		}
		g, err := p.varDeclRest(typ, name, true)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, g)
	}
	return prog, nil
}

func (p *Parser) typeName() (Type, error) {
	switch p.tok() {
	case KwInt:
		p.next()
		return TypeInt, nil
	case KwFloat:
		p.next()
		return TypeFloat, nil
	case KwVoid:
		p.next()
		return TypeVoid, nil
	}
	return TypeVoid, p.errf("expected type name, found %v", p.tok())
}

// varDeclRest parses the remainder of a variable declaration after the type
// and name have been consumed. Arrays are permitted only at global scope.
func (p *Parser) varDeclRest(typ Type, name Lexeme, allowArray bool) (*VarDecl, error) {
	d := &VarDecl{Name: name.Text, Type: typ, Pos: name.Pos}
	if p.tok() == LBracket {
		if !allowArray {
			return nil, p.errf("arrays are only permitted at global scope")
		}
		p.next()
		lenTok, err := p.expect(INTLIT)
		if err != nil {
			return nil, err
		}
		n, err := parseIntLit(lenTok.Text)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("hlc: %v: bad array length %q", lenTok.Pos, lenTok.Text)
		}
		d.ArrayLen = int(n)
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
	} else if p.tok() == Assign {
		p.next()
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) funcDecl(ret Type, name Lexeme) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name.Text, Ret: ret, Pos: name.Pos}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if p.tok() != RParen {
		for {
			typ, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if typ == TypeVoid {
				return nil, p.errf("parameter cannot have type void")
			}
			pname, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, Param{Name: pname.Text, Type: typ})
			if p.tok() != Comma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) block() (*Block, error) {
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	b := &Block{}
	for p.tok() != RBrace {
		if p.tok() == EOF {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume }
	return b, nil
}

// blockOrStmt parses either a braced block or a single statement, always
// returning a Block (normalizing `if (c) x = 1;` to `if (c) { x = 1; }`).
func (p *Parser) blockOrStmt() (*Block, error) {
	if p.tok() == LBrace {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &Block{Stmts: []Stmt{s}}, nil
}

func (p *Parser) stmt() (Stmt, error) {
	switch p.tok() {
	case KwInt, KwFloat:
		typ, _ := p.typeName()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d, err := p.varDeclRest(typ, name, false)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d}, nil
	case KwIf:
		return p.ifStmt()
	case KwFor:
		return p.forStmt()
	case KwWhile:
		return p.whileStmt()
	case KwBreak:
		pos := p.next().Pos
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, nil
	case KwContinue:
		pos := p.next().Pos
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, nil
	case KwReturn:
		pos := p.next().Pos
		var x Expr
		if p.tok() != Semicolon {
			var err error
			x, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x, Pos: pos}, nil
	case KwPrint:
		return p.printStmt()
	case LBrace:
		return p.block()
	}
	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return s, nil
}

// simpleStmt parses an assignment, increment/decrement, or call statement
// without the trailing semicolon (shared by stmt and for-headers).
func (p *Parser) simpleStmt() (Stmt, error) {
	if p.tok() == IDENT && p.peekTok(1) == LParen {
		call, err := p.primary()
		if err != nil {
			return nil, err
		}
		c := call.(*CallExpr)
		return &ExprStmt{X: c, Pos: c.Pos}, nil
	}
	lv, err := p.lvalue()
	if err != nil {
		return nil, err
	}
	pos := p.cur().Pos
	switch p.tok() {
	case Inc:
		p.next()
		return &AssignStmt{LHS: lv, Op: PlusEq, RHS: &IntLit{Value: 1, Pos: pos}, Pos: pos}, nil
	case Dec:
		p.next()
		return &AssignStmt{LHS: lv, Op: MinusEq, RHS: &IntLit{Value: 1, Pos: pos}, Pos: pos}, nil
	case Assign, PlusEq, MinusEq, StarEq, SlashEq, PercentEq, AmpEq, PipeEq, CaretEq, ShlEq, ShrEq:
		op := p.next().Tok
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lv, Op: op, RHS: rhs, Pos: pos}, nil
	}
	return nil, p.errf("expected assignment operator, found %v", p.tok())
}

func (p *Parser) lvalue() (LValue, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if p.tok() == LBracket {
		p.next()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		return &IndexExpr{Name: name.Text, Idx: idx, Pos: name.Pos}, nil
	}
	return &VarRef{Name: name.Text, Pos: name.Pos}, nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	pos := p.next().Pos // if
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: pos}
	if p.tok() == KwElse {
		p.next()
		els, err := p.blockOrStmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *Parser) forStmt() (Stmt, error) {
	pos := p.next().Pos // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: pos}
	if p.tok() != Semicolon {
		if p.tok() == KwInt || p.tok() == KwFloat {
			typ, _ := p.typeName()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			d := &VarDecl{Name: name.Text, Type: typ, Pos: name.Pos}
			if p.tok() == Assign {
				p.next()
				init, err := p.expr()
				if err != nil {
					return nil, err
				}
				d.Init = init
			}
			st.Init = &DeclStmt{Decl: d}
		} else {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			st.Init = s
		}
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.tok() != Semicolon {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.tok() != RParen {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	pos := p.next().Pos // while
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: pos}, nil
}

func (p *Parser) printStmt() (Stmt, error) {
	pos := p.next().Pos // print
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	st := &PrintStmt{Pos: pos}
	if p.tok() != RParen {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Args = append(st.Args, a)
			if p.tok() != Comma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return st, nil
}

// Expression parsing: precedence climbing with C's precedence levels.

var binPrec = map[Token]int{
	LOr:  1,
	LAnd: 2,
	Pipe: 3, Caret: 4, Amp: 5,
	Eq: 6, Neq: 6,
	Lt: 7, Le: 7, Gt: 7, Ge: 7,
	Shl: 8, Shr: 8,
	Plus: 9, Minus: 9,
	Star: 10, Slash: 10, Percent: 10,
}

func (p *Parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *Parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.tok()]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Tok, X: lhs, Y: rhs, Pos: op.Pos}
	}
}

func (p *Parser) unary() (Expr, error) {
	switch p.tok() {
	case Minus, Not, Tilde:
		op := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op.Tok, X: x, Pos: op.Pos}, nil
	case Plus:
		p.next()
		return p.unary()
	}
	return p.primary()
}

func (p *Parser) primary() (Expr, error) {
	switch p.tok() {
	case INTLIT:
		l := p.next()
		v, err := parseIntLit(l.Text)
		if err != nil {
			return nil, fmt.Errorf("hlc: %v: bad integer literal %q", l.Pos, l.Text)
		}
		return &IntLit{Value: v, Pos: l.Pos}, nil
	case FLOATLIT:
		l := p.next()
		v, err := strconv.ParseFloat(l.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("hlc: %v: bad float literal %q", l.Pos, l.Text)
		}
		return &FloatLit{Value: v, Pos: l.Pos}, nil
	case LParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	case IDENT:
		name := p.next()
		switch p.tok() {
		case LParen:
			p.next()
			call := &CallExpr{Name: name.Text, Pos: name.Pos}
			if p.tok() != RParen {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.tok() != Comma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return call, nil
		case LBracket:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: name.Text, Idx: idx, Pos: name.Pos}, nil
		}
		return &VarRef{Name: name.Text, Pos: name.Pos}, nil
	}
	return nil, p.errf("expected expression, found %v", p.tok())
}

func parseIntLit(text string) (int64, error) {
	if len(text) > 2 && (text[0:2] == "0x" || text[0:2] == "0X") {
		u, err := strconv.ParseUint(text[2:], 16, 64)
		return int64(u), err
	}
	return strconv.ParseInt(text, 10, 64)
}
