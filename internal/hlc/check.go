package hlc

import "fmt"

// CheckedProgram is a type-checked program together with the symbol
// information the compiler front end needs.
type CheckedProgram struct {
	Prog *Program
	// ExprTypes records the type of every expression node.
	ExprTypes map[Expr]Type
	// VarKinds records how each VarRef/IndexExpr name resolves in context;
	// keyed by the expression node because names may shadow.
	Resolved map[Expr]*Symbol
	// LocalsOf lists the local variables (including parameters) per function.
	LocalsOf map[*FuncDecl][]*Symbol
}

// SymbolKind distinguishes storage classes.
type SymbolKind int

// Symbol storage classes.
const (
	SymGlobal SymbolKind = iota
	SymLocal
	SymParam
)

// Symbol describes a resolved variable.
type Symbol struct {
	Name     string
	Kind     SymbolKind
	Type     Type
	ArrayLen int // >0 only for globals
	Decl     *VarDecl
	Index    int // parameter index, or per-function local slot order
}

type checker struct {
	prog    *Program
	out     *CheckedProgram
	globals map[string]*Symbol
	scopes  []map[string]*Symbol
	fn      *FuncDecl
	loops   int
	errs    []error
}

// Check type checks a parsed program. All errors found are joined into the
// returned error; on success the CheckedProgram carries resolution results.
func Check(prog *Program) (*CheckedProgram, error) {
	c := &checker{
		prog: prog,
		out: &CheckedProgram{
			Prog:      prog,
			ExprTypes: make(map[Expr]Type),
			Resolved:  make(map[Expr]*Symbol),
			LocalsOf:  make(map[*FuncDecl][]*Symbol),
		},
		globals: make(map[string]*Symbol),
	}
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			c.errorf(g.Pos, "duplicate global %s", g.Name)
			continue
		}
		if g.Init != nil {
			t := c.exprType(g.Init)
			if !assignable(g.Type, t) {
				c.errorf(g.Pos, "cannot initialize %s %s with %s", g.Type, g.Name, t)
			}
		}
		c.globals[g.Name] = &Symbol{Name: g.Name, Kind: SymGlobal, Type: g.Type, ArrayLen: g.ArrayLen, Decl: g}
	}
	seenFn := make(map[string]bool)
	for _, fn := range prog.Funcs {
		if seenFn[fn.Name] {
			c.errorf(fn.Pos, "duplicate function %s", fn.Name)
		}
		seenFn[fn.Name] = true
		if _, isBuiltin := Builtins[fn.Name]; isBuiltin {
			c.errorf(fn.Pos, "function %s shadows a builtin", fn.Name)
		}
	}
	for _, fn := range prog.Funcs {
		c.checkFunc(fn)
	}
	if prog.Func("main") == nil {
		c.errs = append(c.errs, fmt.Errorf("hlc: program has no main function"))
	}
	if len(c.errs) > 0 {
		return nil, joinErrors(c.errs)
	}
	return c.out, nil
}

// MustCheck parses and checks src, panicking on any error. For tests and
// embedded workloads.
func MustCheck(src string) *CheckedProgram {
	cp, err := Check(MustParse(src))
	if err != nil {
		panic(err)
	}
	return cp
}

func joinErrors(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	msg := errs[0].Error()
	for _, e := range errs[1:] {
		msg += "\n" + e.Error()
	}
	return fmt.Errorf("%s", msg)
}

func (c *checker) errorf(pos Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("hlc: %v: %s", pos, fmt.Sprintf(format, args...)))
}

func assignable(dst, src Type) bool {
	if dst == src {
		return true
	}
	// Implicit int->float widening, as in C.
	return dst == TypeFloat && src == TypeInt
}

func (c *checker) checkFunc(fn *FuncDecl) {
	c.fn = fn
	c.scopes = []map[string]*Symbol{make(map[string]*Symbol)}
	c.loops = 0
	for i, prm := range fn.Params {
		sym := &Symbol{Name: prm.Name, Kind: SymParam, Type: prm.Type, Index: i}
		if _, dup := c.scopes[0][prm.Name]; dup {
			c.errorf(fn.Pos, "duplicate parameter %s", prm.Name)
		}
		c.scopes[0][prm.Name] = sym
		c.out.LocalsOf[fn] = append(c.out.LocalsOf[fn], sym)
	}
	c.checkBlock(fn.Body)
	c.fn = nil
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) declareLocal(d *VarDecl) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[d.Name]; dup {
		c.errorf(d.Pos, "duplicate local %s", d.Name)
		return
	}
	sym := &Symbol{Name: d.Name, Kind: SymLocal, Type: d.Type, Decl: d,
		Index: len(c.out.LocalsOf[c.fn])}
	top[d.Name] = sym
	c.out.LocalsOf[c.fn] = append(c.out.LocalsOf[c.fn], sym)
}

func (c *checker) checkBlock(b *Block) {
	c.push()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.pop()
}

func (c *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		c.checkBlock(st)
	case *DeclStmt:
		if st.Decl.Init != nil {
			t := c.exprType(st.Decl.Init)
			if !assignable(st.Decl.Type, t) {
				c.errorf(st.Decl.Pos, "cannot initialize %s %s with %s", st.Decl.Type, st.Decl.Name, t)
			}
		}
		c.declareLocal(st.Decl)
	case *AssignStmt:
		lt := c.exprType(st.LHS)
		rt := c.exprType(st.RHS)
		if st.Op == Assign {
			if !assignable(lt, rt) {
				c.errorf(st.Pos, "cannot assign %s to %s", rt, lt)
			}
		} else {
			// Compound assignments: bitwise/shift/mod require int on both sides.
			switch st.Op {
			case PercentEq, AmpEq, PipeEq, CaretEq, ShlEq, ShrEq:
				if lt != TypeInt || rt != TypeInt {
					c.errorf(st.Pos, "operator %v requires int operands", st.Op)
				}
			default:
				if !assignable(lt, rt) {
					c.errorf(st.Pos, "cannot apply %v with %s to %s", st.Op, rt, lt)
				}
			}
		}
	case *IfStmt:
		if t := c.exprType(st.Cond); t == TypeVoid {
			c.errorf(st.Pos, "if condition has no value")
		}
		c.checkBlock(st.Then)
		if st.Else != nil {
			c.checkBlock(st.Else)
		}
	case *ForStmt:
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			if t := c.exprType(st.Cond); t == TypeVoid {
				c.errorf(st.Pos, "for condition has no value")
			}
		}
		c.loops++
		c.checkBlock(st.Body)
		c.loops--
		if st.Post != nil {
			c.checkStmt(st.Post)
		}
		c.pop()
	case *WhileStmt:
		if t := c.exprType(st.Cond); t == TypeVoid {
			c.errorf(st.Pos, "while condition has no value")
		}
		c.loops++
		c.checkBlock(st.Body)
		c.loops--
	case *BreakStmt:
		if c.loops == 0 {
			c.errorf(st.Pos, "break outside loop")
		}
	case *ContinueStmt:
		if c.loops == 0 {
			c.errorf(st.Pos, "continue outside loop")
		}
	case *ReturnStmt:
		want := c.fn.Ret
		if st.X == nil {
			if want != TypeVoid {
				c.errorf(st.Pos, "missing return value in %s", c.fn.Name)
			}
			return
		}
		got := c.exprType(st.X)
		if want == TypeVoid {
			c.errorf(st.Pos, "void function %s returns a value", c.fn.Name)
		} else if !assignable(want, got) {
			c.errorf(st.Pos, "function %s returns %s, got %s", c.fn.Name, want, got)
		}
	case *PrintStmt:
		for _, a := range st.Args {
			if t := c.exprType(a); t == TypeVoid {
				c.errorf(st.Pos, "cannot print void value")
			}
		}
	case *ExprStmt:
		c.exprType(st.X)
	default:
		panic(fmt.Sprintf("hlc: unknown statement %T", s))
	}
}

func (c *checker) exprType(e Expr) Type {
	t := c.exprType1(e)
	c.out.ExprTypes[e] = t
	return t
}

func (c *checker) exprType1(e Expr) Type {
	switch x := e.(type) {
	case *IntLit:
		return TypeInt
	case *FloatLit:
		return TypeFloat
	case *VarRef:
		sym := c.lookup(x.Name)
		if sym == nil {
			c.errorf(x.Pos, "undefined variable %s", x.Name)
			return TypeInt
		}
		if sym.ArrayLen > 0 {
			c.errorf(x.Pos, "array %s used without index", x.Name)
		}
		c.out.Resolved[x] = sym
		return sym.Type
	case *IndexExpr:
		sym := c.lookup(x.Name)
		if sym == nil {
			c.errorf(x.Pos, "undefined array %s", x.Name)
			return TypeInt
		}
		if sym.ArrayLen == 0 {
			c.errorf(x.Pos, "%s is not an array", x.Name)
		}
		if t := c.exprType(x.Idx); t != TypeInt {
			c.errorf(x.Pos, "array index must be int, got %s", t)
		}
		c.out.Resolved[x] = sym
		return sym.Type
	case *UnaryExpr:
		t := c.exprType(x.X)
		switch x.Op {
		case Minus:
			return t
		case Not:
			if t == TypeVoid {
				c.errorf(x.Pos, "! requires a value")
			}
			return TypeInt
		case Tilde:
			if t != TypeInt {
				c.errorf(x.Pos, "~ requires int operand")
			}
			return TypeInt
		}
		c.errorf(x.Pos, "bad unary operator %v", x.Op)
		return TypeInt
	case *BinaryExpr:
		xt := c.exprType(x.X)
		yt := c.exprType(x.Y)
		switch x.Op {
		case Plus, Minus, Star, Slash:
			if xt == TypeFloat || yt == TypeFloat {
				return TypeFloat
			}
			return TypeInt
		case Percent, Amp, Pipe, Caret, Shl, Shr:
			if xt != TypeInt || yt != TypeInt {
				c.errorf(x.Pos, "operator %v requires int operands", x.Op)
			}
			return TypeInt
		case Eq, Neq, Lt, Le, Gt, Ge:
			if (xt == TypeVoid) || (yt == TypeVoid) {
				c.errorf(x.Pos, "comparison of void value")
			}
			return TypeInt
		case LAnd, LOr:
			if xt == TypeVoid || yt == TypeVoid {
				c.errorf(x.Pos, "logical operator on void value")
			}
			return TypeInt
		}
		c.errorf(x.Pos, "bad binary operator %v", x.Op)
		return TypeInt
	case *CallExpr:
		if b, ok := Builtins[x.Name]; ok {
			if len(x.Args) != b.Arity {
				c.errorf(x.Pos, "%s expects %d argument(s), got %d", x.Name, b.Arity, len(x.Args))
			}
			for _, a := range x.Args {
				if at := c.exprType(a); !assignable(b.ArgTyp, at) {
					c.errorf(x.Pos, "%s argument has type %s, want %s", x.Name, at, b.ArgTyp)
				}
			}
			return b.Ret
		}
		fn := c.prog.Func(x.Name)
		if fn == nil {
			c.errorf(x.Pos, "undefined function %s", x.Name)
			return TypeInt
		}
		if len(x.Args) != len(fn.Params) {
			c.errorf(x.Pos, "%s expects %d argument(s), got %d", x.Name, len(fn.Params), len(x.Args))
		}
		for i, a := range x.Args {
			at := c.exprType(a)
			if i < len(fn.Params) && !assignable(fn.Params[i].Type, at) {
				c.errorf(x.Pos, "argument %d of %s has type %s, want %s", i+1, x.Name, at, fn.Params[i].Type)
			}
		}
		return fn.Ret
	}
	panic(fmt.Sprintf("hlc: unknown expression %T", e))
}
