package hlc

import (
	"fmt"
	"strings"
)

// Lexer turns HLC source text into a stream of Lexemes. It supports // line
// comments and /* block */ comments.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize lexes an entire source text. It is the convenience entry point
// used by the parser and the plagiarism fingerprinter.
func Tokenize(src string) ([]Lexeme, error) {
	lx := NewLexer(src)
	var out []Lexeme
	for {
		l, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, l)
		if l.Tok == EOF {
			return out, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := Pos{lx.line, lx.col}
			lx.advance()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return fmt.Errorf("hlc: %v: unterminated block comment", start)
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool  { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isAlnum(c byte) bool  { return isAlpha(c) || isDigit(c) }
func isHexDig(c byte) bool { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }

// Next returns the next lexeme, or an EOF lexeme at end of input.
func (lx *Lexer) Next() (Lexeme, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Lexeme{}, err
	}
	pos := Pos{lx.line, lx.col}
	if lx.off >= len(lx.src) {
		return Lexeme{Tok: EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isDigit(c):
		return lx.number(pos)
	case isAlpha(c):
		start := lx.off
		for lx.off < len(lx.src) && isAlnum(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Lexeme{Tok: kw, Text: text, Pos: pos}, nil
		}
		return Lexeme{Tok: IDENT, Text: text, Pos: pos}, nil
	}
	return lx.operator(pos)
}

func (lx *Lexer) number(pos Pos) (Lexeme, error) {
	start := lx.off
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		if !isHexDig(lx.peek()) {
			return Lexeme{}, fmt.Errorf("hlc: %v: malformed hex literal", pos)
		}
		for lx.off < len(lx.src) && isHexDig(lx.peek()) {
			lx.advance()
		}
		return Lexeme{Tok: INTLIT, Text: lx.src[start:lx.off], Pos: pos}, nil
	}
	for lx.off < len(lx.src) && isDigit(lx.peek()) {
		lx.advance()
	}
	isFloat := false
	if lx.peek() == '.' && isDigit(lx.peek2()) {
		isFloat = true
		lx.advance()
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	if lx.peek() == 'e' || lx.peek() == 'E' {
		save := lx.off
		lx.advance()
		if lx.peek() == '+' || lx.peek() == '-' {
			lx.advance()
		}
		if isDigit(lx.peek()) {
			isFloat = true
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		} else {
			lx.off = save // not an exponent; leave 'e' for the ident lexer
		}
	}
	tok := INTLIT
	if isFloat {
		tok = FLOATLIT
	}
	return Lexeme{Tok: tok, Text: lx.src[start:lx.off], Pos: pos}, nil
}

// operator table ordered longest-first so maximal munch falls out of the scan.
var operators = []struct {
	text string
	tok  Token
}{
	{"<<=", ShlEq}, {">>=", ShrEq},
	{"<<", Shl}, {">>", Shr}, {"<=", Le}, {">=", Ge}, {"==", Eq}, {"!=", Neq},
	{"&&", LAnd}, {"||", LOr}, {"+=", PlusEq}, {"-=", MinusEq}, {"*=", StarEq},
	{"/=", SlashEq}, {"%=", PercentEq}, {"&=", AmpEq}, {"|=", PipeEq}, {"^=", CaretEq},
	{"++", Inc}, {"--", Dec},
	{"(", LParen}, {")", RParen}, {"{", LBrace}, {"}", RBrace},
	{"[", LBracket}, {"]", RBracket}, {",", Comma}, {";", Semicolon},
	{"=", Assign}, {"<", Lt}, {">", Gt}, {"+", Plus}, {"-", Minus},
	{"*", Star}, {"/", Slash}, {"%", Percent}, {"&", Amp}, {"|", Pipe},
	{"^", Caret}, {"!", Not}, {"~", Tilde},
}

func (lx *Lexer) operator(pos Pos) (Lexeme, error) {
	rest := lx.src[lx.off:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op.text) {
			for range op.text {
				lx.advance()
			}
			return Lexeme{Tok: op.tok, Text: op.text, Pos: pos}, nil
		}
	}
	return Lexeme{}, fmt.Errorf("hlc: %v: unexpected character %q", pos, lx.peek())
}
