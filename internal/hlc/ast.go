package hlc

// Type is an HLC value type. Arrays are not first-class: a declaration may
// carry an array length, but expressions always have scalar type.
type Type int

// HLC types.
const (
	TypeVoid Type = iota
	TypeInt
	TypeFloat
)

// String returns the HLC spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	default:
		return "void"
	}
}

// Program is a complete HLC translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Func returns the declared function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global declaration with the given name, or nil.
func (p *Program) Global(name string) *VarDecl {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// VarDecl declares a scalar or array variable. ArrayLen == 0 means scalar.
// Init, if non-nil, is the scalar initializer (constant expression).
type VarDecl struct {
	Name     string
	Type     Type
	ArrayLen int
	Init     Expr
	Pos      Pos
}

// Param is a function parameter (always scalar).
type Param struct {
	Name string
	Type Type
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Ret    Type
	Params []Param
	Body   *Block
	Pos    Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

// Block is a brace-delimited statement list.
type Block struct{ Stmts []Stmt }

// DeclStmt is a local variable declaration (scalars only).
type DeclStmt struct{ Decl *VarDecl }

// AssignStmt assigns RHS to LHS with operator Op (Assign or a compound
// assignment token such as PlusEq). Inc/Dec are desugared by the parser into
// PlusEq/MinusEq with RHS == IntLit(1).
type AssignStmt struct {
	LHS LValue
	Op  Token
	RHS Expr
	Pos Pos
}

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // nil when absent
	Pos  Pos
}

// ForStmt is a C-style counted loop. Init and Post may be nil; Cond may be
// nil (infinite loop, must exit via break/return).
type ForStmt struct {
	Init Stmt // DeclStmt or AssignStmt
	Cond Expr
	Post Stmt // AssignStmt
	Body *Block
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Pos  Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ReturnStmt returns from the enclosing function; X is nil for void returns.
type ReturnStmt struct {
	X   Expr
	Pos Pos
}

// PrintStmt evaluates and prints its arguments. It is the observable side
// effect of HLC programs: like printf in the paper, it anchors computation
// so optimizing compilers cannot delete it.
type PrintStmt struct {
	Args []Expr
	Pos  Pos
}

// ExprStmt evaluates an expression (a call) for its side effects.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*Block) stmt()        {}
func (*DeclStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*ForStmt) stmt()      {}
func (*WhileStmt) stmt()    {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ReturnStmt) stmt()   {}
func (*PrintStmt) stmt()    {}
func (*ExprStmt) stmt()     {}

// Expr is implemented by all expression nodes.
type Expr interface{ expr() }

// LValue is an assignable expression: a variable reference or array index.
type LValue interface {
	Expr
	lvalue()
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Pos   Pos
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Value float64
	Pos   Pos
}

// VarRef names a scalar variable (local, parameter, or global).
type VarRef struct {
	Name string
	Pos  Pos
}

// IndexExpr is an array element access: Name[Idx].
type IndexExpr struct {
	Name string
	Idx  Expr
	Pos  Pos
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   Token
	X, Y Expr
	Pos  Pos
}

// UnaryExpr applies a unary operator (Minus, Not, Tilde).
type UnaryExpr struct {
	Op  Token
	X   Expr
	Pos Pos
}

// CallExpr calls a user function or a builtin by name.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*IntLit) expr()     {}
func (*FloatLit) expr()   {}
func (*VarRef) expr()     {}
func (*IndexExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*CallExpr) expr()   {}

func (*VarRef) lvalue()    {}
func (*IndexExpr) lvalue() {}

// Builtin describes one of the intrinsic math functions. The compiler lowers
// these to single FPU instructions (the long-latency units that make fft the
// highest-CPI benchmark, as in Fig. 10 of the paper).
type Builtin struct {
	Name   string
	Arity  int
	Ret    Type
	ArgTyp Type
}

// Builtins is the table of intrinsic functions available to HLC programs.
var Builtins = map[string]Builtin{
	"sin":  {Name: "sin", Arity: 1, Ret: TypeFloat, ArgTyp: TypeFloat},
	"cos":  {Name: "cos", Arity: 1, Ret: TypeFloat, ArgTyp: TypeFloat},
	"sqrt": {Name: "sqrt", Arity: 1, Ret: TypeFloat, ArgTyp: TypeFloat},
	"fabs": {Name: "fabs", Arity: 1, Ret: TypeFloat, ArgTyp: TypeFloat},
	"itof": {Name: "itof", Arity: 1, Ret: TypeFloat, ArgTyp: TypeInt},
	"ftoi": {Name: "ftoi", Arity: 1, Ret: TypeInt, ArgTyp: TypeFloat},
}
