package hlc

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a program back to HLC (C-like) source text. The synthesizer
// uses it to emit the distributable clone; the plagiarism checker and the
// parser round-trip tests consume its output.
func Print(p *Program) string {
	var pr printer
	for _, g := range p.Globals {
		pr.global(g)
	}
	if len(p.Globals) > 0 {
		pr.nl()
	}
	for i, fn := range p.Funcs {
		if i > 0 {
			pr.nl()
		}
		pr.funcDecl(fn)
	}
	return pr.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (pr *printer) ws()                      { pr.b.WriteString(strings.Repeat("  ", pr.indent)) }
func (pr *printer) nl()                      { pr.b.WriteByte('\n') }
func (pr *printer) emit(s string)            { pr.b.WriteString(s) }
func (pr *printer) line(s string)            { pr.ws(); pr.emit(s); pr.nl() }
func (pr *printer) linef(f string, a ...any) { pr.line(fmt.Sprintf(f, a...)) }

func (pr *printer) global(g *VarDecl) {
	if g.ArrayLen > 0 {
		pr.linef("%s %s[%d];", g.Type, g.Name, g.ArrayLen)
	} else if g.Init != nil {
		pr.linef("%s %s = %s;", g.Type, g.Name, ExprString(g.Init))
	} else {
		pr.linef("%s %s;", g.Type, g.Name)
	}
}

func (pr *printer) funcDecl(fn *FuncDecl) {
	var params []string
	for _, p := range fn.Params {
		params = append(params, fmt.Sprintf("%s %s", p.Type, p.Name))
	}
	pr.ws()
	pr.emit(fmt.Sprintf("%s %s(%s) ", fn.Ret, fn.Name, strings.Join(params, ", ")))
	pr.block(fn.Body)
	pr.nl()
}

func (pr *printer) block(b *Block) {
	pr.emit("{")
	pr.nl()
	pr.indent++
	for _, s := range b.Stmts {
		pr.stmt(s)
	}
	pr.indent--
	pr.ws()
	pr.emit("}")
}

func (pr *printer) blockLine(b *Block) {
	pr.ws()
	pr.block(b)
	pr.nl()
}

func (pr *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		pr.blockLine(st)
	case *DeclStmt:
		d := st.Decl
		if d.Init != nil {
			pr.linef("%s %s = %s;", d.Type, d.Name, ExprString(d.Init))
		} else {
			pr.linef("%s %s;", d.Type, d.Name)
		}
	case *AssignStmt:
		pr.linef("%s;", assignString(st))
	case *IfStmt:
		pr.ws()
		pr.emit(fmt.Sprintf("if (%s) ", ExprString(st.Cond)))
		pr.block(st.Then)
		if st.Else != nil {
			pr.emit(" else ")
			pr.block(st.Else)
		}
		pr.nl()
	case *ForStmt:
		init, post := "", ""
		if st.Init != nil {
			init = simpleString(st.Init)
		}
		if st.Post != nil {
			post = simpleString(st.Post)
		}
		cond := ""
		if st.Cond != nil {
			cond = ExprString(st.Cond)
		}
		pr.ws()
		pr.emit(fmt.Sprintf("for (%s; %s; %s) ", init, cond, post))
		pr.block(st.Body)
		pr.nl()
	case *WhileStmt:
		pr.ws()
		pr.emit(fmt.Sprintf("while (%s) ", ExprString(st.Cond)))
		pr.block(st.Body)
		pr.nl()
	case *BreakStmt:
		pr.line("break;")
	case *ContinueStmt:
		pr.line("continue;")
	case *ReturnStmt:
		if st.X != nil {
			pr.linef("return %s;", ExprString(st.X))
		} else {
			pr.line("return;")
		}
	case *PrintStmt:
		var args []string
		for _, a := range st.Args {
			args = append(args, ExprString(a))
		}
		pr.linef("print(%s);", strings.Join(args, ", "))
	case *ExprStmt:
		pr.linef("%s;", ExprString(st.X))
	default:
		panic(fmt.Sprintf("hlc: print: unknown statement %T", s))
	}
}

func simpleString(s Stmt) string {
	switch st := s.(type) {
	case *AssignStmt:
		return assignString(st)
	case *DeclStmt:
		d := st.Decl
		if d.Init != nil {
			return fmt.Sprintf("%s %s = %s", d.Type, d.Name, ExprString(d.Init))
		}
		return fmt.Sprintf("%s %s", d.Type, d.Name)
	case *ExprStmt:
		return ExprString(st.X)
	}
	panic(fmt.Sprintf("hlc: print: bad simple statement %T", s))
}

func assignString(st *AssignStmt) string {
	return fmt.Sprintf("%s %s %s", ExprString(st.LHS), st.Op, ExprString(st.RHS))
}

// ExprString renders an expression with minimal but sufficient parentheses
// (child operators of lower precedence than the parent are parenthesized).
func ExprString(e Expr) string {
	return exprString(e, 0)
}

func exprString(e Expr, parentPrec int) string {
	switch x := e.(type) {
	case *IntLit:
		return strconv.FormatInt(x.Value, 10)
	case *FloatLit:
		s := strconv.FormatFloat(x.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *VarRef:
		return x.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", x.Name, exprString(x.Idx, 0))
	case *UnaryExpr:
		const unaryPrec = 11
		s := fmt.Sprintf("%s%s", x.Op, exprString(x.X, unaryPrec))
		if parentPrec > unaryPrec {
			return "(" + s + ")"
		}
		return s
	case *BinaryExpr:
		prec := binPrec[x.Op]
		s := fmt.Sprintf("%s %s %s", exprString(x.X, prec), x.Op, exprString(x.Y, prec+1))
		if prec < parentPrec {
			return "(" + s + ")"
		}
		return s
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, exprString(a, 0))
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	}
	panic(fmt.Sprintf("hlc: print: unknown expression %T", e))
}
