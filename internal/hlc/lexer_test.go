package hlc

import (
	"strings"
	"testing"
)

func TestTokenizeOperators(t *testing.T) {
	src := "<<= >>= << >> <= >= == != && || += -= *= /= %= &= |= ^= ++ -- = < > + - * / % & | ^ ! ~"
	want := []Token{
		ShlEq, ShrEq, Shl, Shr, Le, Ge, Eq, Neq, LAnd, LOr,
		PlusEq, MinusEq, StarEq, SlashEq, PercentEq, AmpEq, PipeEq, CaretEq,
		Inc, Dec, Assign, Lt, Gt, Plus, Minus, Star, Slash, Percent, Amp, Pipe,
		Caret, Not, Tilde, EOF,
	}
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Tok != w {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Tok, w)
		}
	}
}

func TestTokenizeKeywordsAndIdents(t *testing.T) {
	toks, err := Tokenize("int floaty while whiles return print printx")
	if err != nil {
		t.Fatal(err)
	}
	want := []Token{KwInt, IDENT, KwWhile, IDENT, KwReturn, KwPrint, IDENT, EOF}
	for i, w := range want {
		if toks[i].Tok != w {
			t.Errorf("token %d (%q): got %v, want %v", i, toks[i].Text, toks[i].Tok, w)
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []struct {
		src  string
		tok  Token
		text string
	}{
		{"42", INTLIT, "42"},
		{"0", INTLIT, "0"},
		{"0xff", INTLIT, "0xff"},
		{"0XDEADBEEF", INTLIT, "0XDEADBEEF"},
		{"3.25", FLOATLIT, "3.25"},
		{"1e9", FLOATLIT, "1e9"},
		{"2.5e-3", FLOATLIT, "2.5e-3"},
	}
	for _, tc := range cases {
		toks, err := Tokenize(tc.src)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		if toks[0].Tok != tc.tok || toks[0].Text != tc.text {
			t.Errorf("%q: got (%v,%q), want (%v,%q)", tc.src, toks[0].Tok, toks[0].Text, tc.tok, tc.text)
		}
	}
}

func TestTokenizeEFollowedByIdent(t *testing.T) {
	// "3e" is not a float; the 'e' must be left for the next token.
	toks, err := Tokenize("3 exp")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Tok != INTLIT || toks[1].Tok != IDENT || toks[1].Text != "exp" {
		t.Fatalf("unexpected tokens: %+v", toks)
	}
}

func TestTokenizeComments(t *testing.T) {
	src := `
// a line comment
int x; /* block
comment */ int y;`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Token
	for _, tk := range toks {
		kinds = append(kinds, tk.Tok)
	}
	want := []Token{KwInt, IDENT, Semicolon, KwInt, IDENT, Semicolon, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("got %v, want %v", kinds, want)
		}
	}
}

func TestTokenizeUnterminatedComment(t *testing.T) {
	if _, err := Tokenize("int x; /* never closed"); err == nil {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestTokenizeBadChar(t *testing.T) {
	if _, err := Tokenize("int @x;"); err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Fatalf("expected unexpected-character error, got %v", err)
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("int x;\n  x = 3;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("first token pos = %v, want 1:1", toks[0].Pos)
	}
	// "x" on line 2 begins at column 3.
	if toks[3].Pos != (Pos{2, 3}) {
		t.Errorf("token %q pos = %v, want 2:3", toks[3].Text, toks[3].Pos)
	}
}
