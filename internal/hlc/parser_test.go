package hlc

import (
	"strings"
	"testing"
)

const sampleProgram = `
int data[64];
int n = 10;
float scale = 2.5;

int add(int a, int b) {
  return a + b;
}

void main() {
  int sum = 0;
  for (int i = 0; i < n; i++) {
    sum = sum + data[i];
    if (sum > 100 && i != 3) {
      sum -= 1;
    } else {
      sum |= 2;
    }
  }
  while (sum > 0) {
    sum = sum - add(1, 2);
    if (sum == 7) { break; }
    if (sum == 9) { continue; }
  }
  print(sum);
}
`

func TestParseSample(t *testing.T) {
	prog, err := Parse(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 3 {
		t.Errorf("globals = %d, want 3", len(prog.Globals))
	}
	if len(prog.Funcs) != 2 {
		t.Errorf("funcs = %d, want 2", len(prog.Funcs))
	}
	if prog.Global("data").ArrayLen != 64 {
		t.Errorf("data array length = %d, want 64", prog.Global("data").ArrayLen)
	}
	main := prog.Func("main")
	if main == nil || main.Ret != TypeVoid {
		t.Fatalf("main not found or wrong return type")
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("void main() { int x; x = 1 + 2 * 3; }")
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Funcs[0].Body.Stmts
	asn := body[1].(*AssignStmt)
	bin := asn.RHS.(*BinaryExpr)
	if bin.Op != Plus {
		t.Fatalf("top operator = %v, want +", bin.Op)
	}
	inner := bin.Y.(*BinaryExpr)
	if inner.Op != Star {
		t.Fatalf("inner operator = %v, want *", inner.Op)
	}
}

func TestParseShiftVsComparison(t *testing.T) {
	prog, err := Parse("void main() { int x; x = 1 << 2 < 3; }")
	if err != nil {
		t.Fatal(err)
	}
	asn := prog.Funcs[0].Body.Stmts[1].(*AssignStmt)
	top := asn.RHS.(*BinaryExpr)
	if top.Op != Lt {
		t.Fatalf("top operator = %v, want < (shift binds tighter)", top.Op)
	}
}

func TestParseIncDecDesugar(t *testing.T) {
	prog, err := Parse("void main() { int i = 0; i++; i--; }")
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Funcs[0].Body.Stmts
	inc := body[1].(*AssignStmt)
	if inc.Op != PlusEq {
		t.Errorf("i++ desugar op = %v, want +=", inc.Op)
	}
	dec := body[2].(*AssignStmt)
	if dec.Op != MinusEq {
		t.Errorf("i-- desugar op = %v, want -=", dec.Op)
	}
}

func TestParseUnbracedBodies(t *testing.T) {
	prog, err := Parse(`
void main() {
  int s = 0;
  for (int i = 0; i < 4; i++) s += i;
  if (s > 0) s = 1; else s = 2;
  while (s > 0) s--;
  print(s);
}`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Funcs[0].Body.Stmts
	if _, ok := body[1].(*ForStmt); !ok {
		t.Errorf("statement 1 is %T, want *ForStmt", body[1])
	}
	ifs := body[2].(*IfStmt)
	if ifs.Else == nil || len(ifs.Else.Stmts) != 1 {
		t.Errorf("else branch not normalized to block")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"void main() { int x = ; }",
		"void main() { x ++ 3; }",
		"int main(void v) { }",
		"void main() { if x > 1 {} }",
		"void main() { int a[4]; }", // local arrays rejected
		"void v; ",
		"void main() { break }",
		"int g[0];",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParseForHeaderVariants(t *testing.T) {
	srcs := []string{
		"void main() { for (;;) { break; } }",
		"void main() { int i; for (i = 0; i < 3; i++) { } }",
		"void main() { int i = 9; for (; i > 0; i--) { } }",
		"void main() { for (int i = 0; i < 3;) { i++; } }",
	}
	for _, src := range srcs {
		if _, err := Parse(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	prog, err := Parse(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(prog)
	reparsed, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, printed)
	}
	printed2 := Print(reparsed)
	if printed != printed2 {
		t.Fatalf("print/parse round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

func TestPrintPreservesPrecedence(t *testing.T) {
	// (1 + 2) * 3 must keep its parentheses through a round trip.
	src := "void main() { int x; x = (1 + 2) * 3; }"
	prog := MustParse(src)
	out := Print(prog)
	if !strings.Contains(out, "(1 + 2) * 3") {
		t.Fatalf("printer lost required parentheses:\n%s", out)
	}
}

func TestCheckSample(t *testing.T) {
	prog := MustParse(sampleProgram)
	cp, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Func("main")
	// main declares sum and the loop variable i.
	if got := len(cp.LocalsOf[main]); got != 2 {
		t.Errorf("main locals = %d, want 2", got)
	}
	add := prog.Func("add")
	if got := len(cp.LocalsOf[add]); got != 2 {
		t.Errorf("add locals (params) = %d, want 2", got)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undefined var", "void main() { x = 1; }", "undefined variable"},
		{"undefined fn", "void main() { int x; x = f(); }", "undefined function"},
		{"no main", "int f() { return 1; }", "no main"},
		{"void assign", "void f() { } void main() { int x; x = f(); }", "cannot assign"},
		{"array no index", "int a[4]; void main() { int x; x = a; }", "without index"},
		{"index scalar", "int s; void main() { int x; x = s[0]; }", "not an array"},
		{"float mod", "void main() { float f; f = 1.5; int x; x = x % 1; x = x; f = f; } void g() { }", ""},
		{"bad mod", "void main() { float f = 1.0; int x; x = x; f %= 2; }", "requires int"},
		{"break outside", "void main() { break; }", "outside loop"},
		{"return type", "int f() { return 1.5; } void main() { }", "returns int, got float"},
		{"void return value", "void main() { return 3; }", "returns a value"},
		{"dup global", "int g; int g; void main() { }", "duplicate global"},
		{"dup param", "void f(int a, int a) { } void main() { }", "duplicate parameter"},
		{"builtin arity", "void main() { float f; f = sqrt(1.0, 2.0); }", "expects 1"},
		{"call arity", "int f(int a) { return a; } void main() { int x; x = f(); }", "expects 1"},
		{"float shift", "void main() { int x; x = 1 << 2; float f; f = 1.0; x = x << f; }", "requires int operands"},
		{"print void", "void f() { } void main() { print(f()); }", "cannot print void"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = Check(prog)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected check error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCheckIntToFloatWidening(t *testing.T) {
	src := `
float acc;
void main() {
  acc = 1;            // int -> float assign
  float f = 3;        // int -> float init
  f = f + 2;          // mixed arithmetic is float
  acc = f * 2 + 1;
  print(acc);
}`
	cp := MustCheck(src)
	main := cp.Prog.Func("main")
	asn := main.Body.Stmts[2].(*AssignStmt)
	if typ := cp.ExprTypes[asn.RHS]; typ != TypeFloat {
		t.Errorf("f + 2 has type %v, want float", typ)
	}
}

func TestCheckShadowing(t *testing.T) {
	src := `
int x;
void main() {
  int x = 1;
  for (int x = 0; x < 3; x++) { print(x); }
  print(x);
}`
	cp := MustCheck(src)
	if cp == nil {
		t.Fatal("check failed")
	}
	main := cp.Prog.Func("main")
	if got := len(cp.LocalsOf[main]); got != 2 {
		t.Errorf("main locals = %d, want 2 (shadowing x's)", got)
	}
}
