// Package cluster shards the workload × ISA × optimization-level cross
// product across multiple cooperating processes that share one artifact
// store. A coordinator enumerates jobs from a suite spec, deduplicates them
// against already-stored artifacts, and enqueues the rest into a durable
// job queue persisted under the store; workers lease jobs, execute them
// through a pipeline, heartbeat while working, and acknowledge results; a
// consolidator merges per-shard cache statistics into one cluster report.
//
// The queue is plain files under <store root>/cluster, following the store
// package's conventions: every write is a temp file + atomic rename, and
// every state transition is a rename, so concurrent processes — however
// they are scheduled or killed — never observe a partial entry and never
// both win the same job. A worker that crashes mid-job stops heartbeating;
// its lease expires and any other participant renames the job back to
// pending, so the shard is re-leased, not lost.
//
// Jobs are sharded on the workload axis: one job covers every (ISA, level)
// point of one workload. This granularity is deliberate — every pipeline
// cache key is workload-scoped (see pipeline.Key), so jobs of different
// workloads share no artifacts, and lease exclusivity alone guarantees that
// N workers draining a queue duplicate zero stage computations versus a
// single cold process, without any cross-process locking.
package cluster

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/cpu"
	"repro/internal/generate"
)

// SchemaVersion is the queue's on-disk schema. Manifests written under a
// different version are rejected, so mixed-binary fleets fail loudly
// instead of corrupting each other's queues. Version 2 added exploration
// dispatches (Spec.Explore, Job.Kind/Sims); version 3 added generation
// dispatches (Spec.Generate, Job.GenIndex); version 4 cut over to the
// store-queue timing model and its v5 artifact keys, so mixed fleets
// can't blend pre- and post-forwarding cycle counts in one queue.
const SchemaVersion = 4

// Spec declares one dispatch: which workloads to synthesize, over which
// (ISA, level) grid, and the pipeline options that shape the artifacts.
// Workers rebuild their pipeline from the manifest's Spec, so every
// participant derives identical cache keys by construction.
type Spec struct {
	// Suite names the workload suite the spec was built from (tiny, quick,
	// full); informational — Workloads is authoritative.
	Suite string `json:"suite"`
	// Workloads lists the workload/input pairs to clone, one job each.
	Workloads []string `json:"workloads"`
	// ISAs and Levels define the per-workload compilation grid.
	ISAs   []string `json:"isas"`
	Levels []int    `json:"levels"`
	// Seed, TargetDyn, and MaxInstrs mirror the pipeline options of the
	// same names.
	Seed      int64  `json:"seed"`
	TargetDyn uint64 `json:"targetDyn"`
	MaxInstrs uint64 `json:"maxInstrs"`
	// ProfileISA and ProfileLevel fix the profiling point.
	ProfileISA   string `json:"profileIsa"`
	ProfileLevel int    `json:"profileLevel"`
	// Explore, when non-empty, makes this an exploration dispatch: each
	// job simulates its workload's original and synthetic clone on every
	// one of these machine configurations at every level of the grid,
	// through the pipeline's cached Simulate stage. Jobs remain sharded
	// per workload, and simulation keys are workload-scoped, so the
	// queue's zero-duplication guarantee is unchanged.
	Explore []cpu.ConfigSpec `json:"explore,omitempty"`
	// SimMaxInstrs bounds each exploration simulation's dynamic
	// instruction count (0 = run to completion); part of the simulation
	// cache key, so every participant must agree on it.
	SimMaxInstrs uint64 `json:"simMaxInstrs,omitempty"`
	// Generate, when set, makes this a generation dispatch: the fleet
	// realizes one directed synthetic workload per job (Job.GenIndex picks
	// the point). The sampler is deterministic, so every worker derives the
	// identical point list from this spec alone; the realized clones land
	// in the shared store, where the dispatcher's closing generate.Run
	// finds every synthesis warm. Workloads/ISAs/Levels are unused.
	Generate *generate.Spec `json:"generate,omitempty"`
}

// Canonical returns the versioned, unambiguous encoding of the spec. Two
// dispatches with equal canonicals are the same dispatch; a manifest whose
// canonical differs from a new dispatch's marks a conflicting queue.
func (s Spec) Canonical() string {
	sims := make([]string, len(s.Explore))
	for i, cs := range s.Explore {
		sims[i] = cs.Canonical()
	}
	gen := ""
	if s.Generate != nil {
		gen = s.Generate.Canonical()
	}
	return fmt.Sprintf("v3|%s|%s|%s|%s|%d|%d|%d|%s|%d|%s|%d|%s",
		s.Suite, strings.Join(s.Workloads, ","), strings.Join(s.ISAs, ","),
		joinInts(s.Levels), s.Seed, s.TargetDyn, s.MaxInstrs,
		s.ProfileISA, s.ProfileLevel,
		strings.Join(sims, ";"), s.SimMaxInstrs, gen)
}

// Digest returns the spec's dispatch identity — the digest of its
// canonical encoding. Every job carries it (Job.Dispatch), and workers
// compare it against the manifest they built their pipeline from, so a
// queue re-dispatched under a worker's feet aborts the worker instead of
// executing foreign jobs with stale options.
func (s Spec) Digest() string {
	return digestOf(s.Canonical())
}

// Jobs enumerates the spec's job list: one job per workload carrying the
// full (ISA, level) grid (see the package comment for why sharding is
// per-workload). Exploration specs additionally stamp every job with the
// machine configurations to simulate. Generation specs shard on the point
// axis instead: one job per directed sample, so N workers realize N
// synthetic workloads concurrently.
func (s Spec) Jobs() []Job {
	specDigest := s.Digest()
	if s.Generate != nil {
		jobs := make([]Job, 0, s.Generate.N)
		for i := 0; i < s.Generate.N; i++ {
			jobs = append(jobs, Job{
				Workload: fmt.Sprintf("gen[%d]", i),
				Dispatch: specDigest,
				Kind:     KindGenerate,
				Gen:      s.Generate,
				GenIndex: i,
			})
		}
		return jobs
	}
	kind := ""
	if len(s.Explore) > 0 {
		kind = KindExplore
	}
	jobs := make([]Job, 0, len(s.Workloads))
	for _, w := range s.Workloads {
		jobs = append(jobs, Job{
			Workload:     w,
			ISAs:         s.ISAs,
			Levels:       s.Levels,
			Dispatch:     specDigest,
			Kind:         kind,
			Sims:         s.Explore,
			SimMaxInstrs: s.SimMaxInstrs,
		})
	}
	return jobs
}

// Manifest is the queue's root document, written by the coordinator and
// read by every worker: the dispatch spec, its canonical encoding, and the
// total job count that Wait and status reporting converge on.
type Manifest struct {
	// Version is the queue schema the manifest was written under.
	Version int `json:"version"`
	// Spec is the dispatch being executed.
	Spec Spec `json:"spec"`
	// Canonical is Spec.Canonical(), stored for cheap conflict checks.
	Canonical string `json:"canonical"`
	// Total is the number of jobs the dispatch enumerated.
	Total int `json:"total"`
}

// digestOf returns the printable 64-bit FNV-1a hash of s, the queue's file
// naming scheme (mirroring pipeline.Key.Digest).
func digestOf(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}

// joinInts renders ints comma-separated.
func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}
