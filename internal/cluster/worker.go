package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/compiler"
	"repro/internal/generate"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// Worker is one lease-execute-ack participant. Any number of workers (in
// one process or many) may drain one queue; the store they share guarantees
// a re-executed job recomputes nothing that was already acked.
type Worker struct {
	// Queue is the job queue to drain.
	Queue *Queue
	// Pipe executes jobs. It must be built from the manifest's Spec (see
	// PipelineOptions) and backed by the queue's store, or the worker's
	// artifacts would not land where the dispatch's dedup looks.
	Pipe *pipeline.Pipeline
	// ID names the worker in lease files and results.
	ID string
	// Dispatch, when non-empty, is the Spec.Digest of the dispatch the
	// pipeline was built for. A claimed job carrying a different dispatch
	// digest — the queue was reset and re-dispatched under this worker —
	// is released and aborts the run, since executing it with the old
	// pipeline options would ack jobs whose artifacts were never computed
	// under the new spec's keys.
	Dispatch string
	// TTL is the lease expiry the worker enforces on others and the
	// heartbeat budget it must stay within itself (0 = DefaultLeaseTTL).
	TTL time.Duration
	// Poll is the idle polling interval (0 = DefaultPoll).
	Poll time.Duration
	// OnJob, when non-nil, observes every acked result (for CLI logging).
	OnJob func(Result)
	// Metrics, when non-nil, receives job-lifecycle telemetry (claims,
	// acks, ack retries, reclaims, panics, job durations).
	Metrics *Metrics

	// exec, when non-nil, replaces the real job execution — a test hook
	// so supervisor and chaos tests can script job behavior (block, fail,
	// panic) without running the pipeline.
	exec func(context.Context, Job) error
}

// Summary reports one worker's run.
type Summary struct {
	// Jobs counts acked jobs, Failed the subset that failed.
	Jobs   int
	Failed int
	// Panics counts jobs whose execution panicked. The first panic of a
	// job releases its lease for an immediate retry (the panic may be a
	// transient of this process); a job that panics again is acked as
	// failed so the queue still converges.
	Panics int
}

// PipelineOptions translates a dispatch spec into the pipeline options a
// worker must run with, so every participant derives identical artifact
// keys. The caller supplies Workers and Store (the per-process knobs the
// spec deliberately does not pin).
func PipelineOptions(spec Spec) (pipeline.Options, error) {
	target := isa.ByName(spec.ProfileISA)
	if target == nil {
		return pipeline.Options{}, fmt.Errorf("cluster: unknown profiling ISA %q", spec.ProfileISA)
	}
	if spec.ProfileLevel < 0 || spec.ProfileLevel >= len(compiler.Levels) {
		return pipeline.Options{}, fmt.Errorf("cluster: profiling level %d out of range", spec.ProfileLevel)
	}
	return pipeline.Options{
		Seed:         spec.Seed,
		TargetDyn:    spec.TargetDyn,
		MaxInstrs:    spec.MaxInstrs,
		ProfileISA:   target,
		ProfileLevel: compiler.Levels[spec.ProfileLevel],
	}, nil
}

// Run drains the queue: claim a job, execute its grid, ack the result,
// repeat. When nothing is pending it reclaims expired leases (recovering
// crashed siblings' jobs) and exits once the queue has converged: the done
// count reaches the manifest total. (Counts' per-state reads are not one
// atomic snapshot — a job mid-rename is briefly in neither state — so
// "pending and leased both empty" would be a racy exit condition; the done
// count is monotone. Without a manifest the emptiness heuristic is all
// there is.) On cancellation a held lease is released back to pending so
// the job is immediately re-claimable.
func (w *Worker) Run(ctx context.Context) (Summary, error) {
	var sum Summary
	ttl, poll := w.TTL, w.Poll
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if poll <= 0 {
		poll = DefaultPoll
	}
	total := -1
	if m, err := w.Queue.Manifest(); err != nil {
		return sum, err
	} else if m != nil {
		total = m.Total
	}
	var stalledSince time.Time
	panickedJobs := make(map[string]bool)
	for {
		if err := ctx.Err(); err != nil {
			return sum, err
		}
		lease, err := w.Queue.Claim(w.ID)
		if err != nil {
			return sum, err
		}
		if lease == nil {
			if n, err := w.Queue.Reclaim(ttl); err != nil {
				return sum, err
			} else if n > 0 {
				w.Metrics.Reclaimed(n)
				continue // recovered jobs are pending again: go claim
			}
			c, err := w.Queue.Counts()
			if err != nil {
				return sum, err
			}
			if total >= 0 && c.Done >= total {
				return sum, nil // queue converged
			}
			if total < 0 && c.Pending == 0 && c.Leased == 0 {
				return sum, nil // no manifest: best-effort emptiness check
			}
			if c.Pending == 0 && c.Leased == 0 {
				// Fewer jobs exist than the manifest promises: the
				// residue of an interrupted dispatch, not a transient
				// mid-rename window (see errStalled), tolerated for one
				// lease TTL before giving up.
				if stalledSince.IsZero() {
					stalledSince = time.Now()
				} else if time.Since(stalledSince) >= ttl {
					return sum, errStalled(c.Done, total)
				}
			} else {
				stalledSince = time.Time{}
			}
			select { // work is in flight elsewhere: wait for it or for a crash
			case <-ctx.Done():
				return sum, ctx.Err()
			case <-time.After(poll):
			}
			continue
		}
		stalledSince = time.Time{}
		w.Metrics.Claim()
		if w.Dispatch != "" && lease.Job.Dispatch != w.Dispatch {
			lease.Release()
			return sum, fmt.Errorf("cluster: queue was re-dispatched (job %s belongs to dispatch %s, this worker was built for %s); restart the worker",
				lease.Job.Workload, lease.Job.Dispatch, w.Dispatch)
		}
		if w.Queue.HasResult(lease.Job.ID()) {
			lease.Drop() // stale pending duplicate from a reclaim race
			continue
		}
		res, panicked, err := w.execute(ctx, lease, ttl)
		if err != nil { // canceled mid-job: hand the job back
			lease.Release()
			return sum, err
		}
		if panicked {
			sum.Panics++
			w.Metrics.Panic()
			if id := lease.Job.ID(); !panickedJobs[id] {
				// First panic of this job: the lease must not leak until
				// TTL expiry. Release it for an immediate retry — by us or
				// any other node — in case the panic was transient here.
				panickedJobs[id] = true
				lease.Release()
				continue
			}
			// Second panic of the same job: deterministic. Fall through and
			// ack it as failed so the queue converges instead of bouncing
			// the job between panicking workers forever.
		}
		if err := w.ack(lease, res); err != nil {
			return sum, err
		}
		sum.Jobs++
		if res.Err != "" {
			sum.Failed++
		}
		if w.OnJob != nil {
			w.OnJob(res)
		}
	}
}

// Ack retry policy: transient store errors (an HTTP backend riding out a
// blip, a full-disk hiccup) are retried with exponential backoff before
// the worker gives the job back. Variables so tests can compress time.
var (
	ackAttempts = 6
	ackBackoff  = 50 * time.Millisecond
)

// ack records the result, retrying transient store failures with
// exponential backoff. If the store stays broken the lease is released —
// the job returns to pending for a healthier node — and the error is
// returned to stop this worker.
func (w *Worker) ack(lease *Lease, res Result) error {
	var err error
	delay := ackBackoff
	for attempt := 0; attempt < ackAttempts; attempt++ {
		if err = lease.Ack(res); err == nil {
			w.Metrics.Acked(time.Duration(res.Millis)*time.Millisecond, res.Err != "")
			return nil
		}
		w.Metrics.AckRetry()
		time.Sleep(delay)
		delay *= 2
	}
	lease.Release()
	return fmt.Errorf("cluster: ack failed after %d attempts: %w", ackAttempts, err)
}

// execute runs one job's (ISA, level) grid through the pipeline,
// heartbeating the lease in the background. Job failures are recorded in
// the Result, not returned: only cancellation aborts the worker. The
// second return reports that the job's execution panicked (recovered into
// the Result), which Run turns into release-and-retry instead of an ack.
func (w *Worker) execute(ctx context.Context, lease *Lease, ttl time.Duration) (Result, bool, error) {
	res := Result{Job: lease.Job, Worker: w.ID}

	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				lease.Heartbeat() // a lost lease only means a benign redo
			}
		}
	}()
	defer func() { stopHB(); <-hbDone }()

	start := time.Now()
	var before pipeline.CacheStats
	if w.Pipe != nil { // nil only under the exec test hook
		before = w.Pipe.CacheStats()
	}
	err := w.runRecovered(ctx, lease.Job)
	if w.Pipe != nil {
		res.Stats = w.Pipe.CacheStats().Sub(before)
	}
	res.Millis = time.Since(start).Milliseconds()
	var pe *pipeline.PanicError
	panicked := errors.As(err, &pe)
	if err != nil {
		if ctx.Err() != nil && !panicked {
			return res, false, ctx.Err()
		}
		res.Err = err.Error()
	}
	return res, panicked, nil
}

// runRecovered executes one job, converting a panic on the calling
// goroutine into a *pipeline.PanicError. Panics inside pipeline stage
// fan-out arrive already converted (pipeline.Map recovers its pool
// goroutines — a recover here could not reach those); this guards the
// worker's own frame so no panic path leaks the lease until TTL expiry.
func (w *Worker) runRecovered(ctx context.Context, j Job) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &pipeline.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if w.exec != nil {
		return w.exec(ctx, j)
	}
	return w.runJob(ctx, j)
}

// runJob fans the job's grid points out on the pipeline's worker pool.
// Generate jobs dispatch before the workload lookup: their Workload field
// is a synthetic point label ("gen[i]"), not a registry name.
func (w *Worker) runJob(ctx context.Context, j Job) error {
	if j.Kind == KindGenerate {
		if j.Gen == nil {
			return fmt.Errorf("cluster: generate job %s carries no spec", j.Workload)
		}
		return generate.RealizePoint(ctx, w.Pipe, j.Gen, j.GenIndex)
	}
	wl := workloads.ByName(j.Workload)
	if wl == nil {
		return fmt.Errorf("cluster: unknown workload %q", j.Workload)
	}
	if j.Kind == KindExplore {
		return w.runExploreJob(ctx, wl, j)
	}
	if j.Kind != "" {
		return fmt.Errorf("cluster: unknown job kind %q (mixed binaries?)", j.Kind)
	}
	return pipeline.ForEach(ctx, w.Pipe, j.Points(), func(ctx context.Context, pt Point) error {
		target := isa.ByName(pt.ISA)
		if target == nil {
			return fmt.Errorf("cluster: unknown ISA %q", pt.ISA)
		}
		if pt.Level < 0 || pt.Level >= len(compiler.Levels) {
			return fmt.Errorf("cluster: level %d out of range", pt.Level)
		}
		_, err := w.Pipe.PairAt(ctx, wl, target, compiler.Levels[pt.Level])
		return err
	})
}

// runExploreJob executes one exploration shard: simulate the workload's
// original and clone on every (machine configuration, level) cell
// through the pipeline's cached Simulate stage. Every simulation (and
// the compiles, profile, and synthesis underneath) lands in the shared
// store, so the dispatcher can aggregate the sweep report warm.
func (w *Worker) runExploreJob(ctx context.Context, wl *workloads.Workload, j Job) error {
	type simCell struct {
		sim, level int
	}
	var cells []simCell
	for si := range j.Sims {
		for _, l := range j.Levels {
			cells = append(cells, simCell{sim: si, level: l})
		}
	}
	return pipeline.ForEach(ctx, w.Pipe, cells, func(ctx context.Context, c simCell) error {
		cfg, err := j.Sims[c.sim].Config()
		if err != nil {
			return fmt.Errorf("cluster: explore job %s: %w", j.Workload, err)
		}
		if c.level < 0 || c.level >= len(compiler.Levels) {
			return fmt.Errorf("cluster: level %d out of range", c.level)
		}
		_, err = w.Pipe.SimulatePair(ctx, wl, cfg.ISA, compiler.Levels[c.level], cfg, j.SimMaxInstrs)
		return err
	})
}
