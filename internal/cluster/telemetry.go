package cluster

import (
	"time"

	"repro/internal/telemetry"
)

// jobSecondsBuckets spans job wall times: a warm job is milliseconds, a
// cold explore shard tens of seconds.
var jobSecondsBuckets = []float64{
	0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Metrics holds the cluster's job-lifecycle metric handles: claims, acks
// (by result), ack retries, lease reclaims, panics, and timeouts, plus a
// job duration histogram. Build one per registry with NewMetrics and share
// it across the workers and supervisor of a node; all methods are no-ops
// on a nil *Metrics, so unplumbed paths cost nothing.
type Metrics struct {
	claims     *telemetry.Counter
	jobsOK     *telemetry.Counter
	jobsFailed *telemetry.Counter
	ackRetries *telemetry.Counter
	reclaims   *telemetry.Counter
	panics     *telemetry.Counter
	timeouts   *telemetry.Counter
	jobSeconds *telemetry.Histogram
}

// NewMetrics resolves the cluster metric handles in reg (nil reg yields
// no-op handles).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		claims: reg.Counter("synth_cluster_claims_total",
			"Job leases claimed by this node's workers."),
		jobsOK: reg.Counter("synth_cluster_jobs_total",
			"Jobs acked by this node, by result.", "result", "ok"),
		jobsFailed: reg.Counter("synth_cluster_jobs_total",
			"Jobs acked by this node, by result.", "result", "failed"),
		ackRetries: reg.Counter("synth_cluster_ack_retries_total",
			"Failed ack attempts that were retried with backoff."),
		reclaims: reg.Counter("synth_cluster_reclaims_total",
			"Expired leases returned to pending by this node."),
		panics: reg.Counter("synth_cluster_panics_total",
			"Job executions that panicked (recovered)."),
		timeouts: reg.Counter("synth_cluster_job_timeouts_total",
			"Jobs acked as failed because they outran the job timeout."),
		jobSeconds: reg.Histogram("synth_cluster_job_seconds",
			"Wall time of acked jobs.", jobSecondsBuckets),
	}
}

// Claim records one successful lease claim.
func (m *Metrics) Claim() {
	if m != nil {
		m.claims.Inc()
	}
}

// AckRetry records one failed ack attempt that will be retried.
func (m *Metrics) AckRetry() {
	if m != nil {
		m.ackRetries.Inc()
	}
}

// Acked records one acked job: its duration and result.
func (m *Metrics) Acked(d time.Duration, failed bool) {
	if m == nil {
		return
	}
	if failed {
		m.jobsFailed.Inc()
	} else {
		m.jobsOK.Inc()
	}
	m.jobSeconds.Observe(d.Seconds())
}

// Reclaimed records n expired leases returned to pending.
func (m *Metrics) Reclaimed(n int) {
	if m != nil && n > 0 {
		m.reclaims.Add(uint64(n))
	}
}

// Panic records one recovered job panic.
func (m *Metrics) Panic() {
	if m != nil {
		m.panics.Inc()
	}
}

// Timeout records one job acked as failed after outrunning its timeout.
func (m *Metrics) Timeout() {
	if m != nil {
		m.timeouts.Inc()
	}
}

// MetricsSnapshot is a point-in-time copy of a node's job-lifecycle
// counters, JSON-shaped for the cluster status endpoint.
type MetricsSnapshot struct {
	Claims     uint64 `json:"claims"`
	JobsOK     uint64 `json:"jobs_ok"`
	JobsFailed uint64 `json:"jobs_failed"`
	AckRetries uint64 `json:"ack_retries"`
	Reclaims   uint64 `json:"reclaims"`
	Panics     uint64 `json:"panics"`
	Timeouts   uint64 `json:"timeouts"`
}

// Snapshot reads every counter once (all zeros on a nil or unregistered
// *Metrics).
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		Claims:     m.claims.Value(),
		JobsOK:     m.jobsOK.Value(),
		JobsFailed: m.jobsFailed.Value(),
		AckRetries: m.ackRetries.Value(),
		Reclaims:   m.reclaims.Value(),
		Panics:     m.panics.Value(),
		Timeouts:   m.timeouts.Value(),
	}
}

// RegisterQueueGauges registers scrape-time gauges over q in reg: the
// pending/leased/done depths and the oldest lease age. Reads hit the
// queue's backing store at scrape time; a flaking store reads as zero
// rather than failing the scrape.
func RegisterQueueGauges(reg *telemetry.Registry, q *Queue) {
	if reg == nil || q == nil {
		return
	}
	depth := func(pick func(Counts) int) func() float64 {
		return func() float64 {
			c, err := q.Counts()
			if err != nil {
				return 0
			}
			return float64(pick(c))
		}
	}
	reg.GaugeFunc("synth_cluster_queue_pending", "Jobs waiting to be claimed.",
		depth(func(c Counts) int { return c.Pending }))
	reg.GaugeFunc("synth_cluster_queue_leased", "Jobs currently leased to workers.",
		depth(func(c Counts) int { return c.Leased }))
	reg.GaugeFunc("synth_cluster_queue_done", "Jobs with recorded results.",
		depth(func(c Counts) int { return c.Done }))
	reg.GaugeFunc("synth_cluster_lease_age_seconds",
		"Age of the stalest held lease (heartbeats reset it; 0 = none held).",
		func() float64 {
			age, err := q.OldestLeaseAge()
			if err != nil {
				return 0
			}
			return age.Seconds()
		})
}
