package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// SupervisorOptions configures an embedded worker pool.
type SupervisorOptions struct {
	// Node names this supervisor; worker IDs are derived from it
	// ("<node>-w3"), so lease files and results identify which process ran
	// a job.
	Node string
	// Min and Max bound the pool size the autoscaler moves between.
	// Defaults: Min 1, Max max(Min, 4).
	Min, Max int
	// TTL is the lease expiry enforced on (and heartbeat budget granted
	// to) every worker (0 = DefaultLeaseTTL).
	TTL time.Duration
	// Poll is each worker's idle polling interval (0 = DefaultPoll).
	Poll time.Duration
	// Interval is the coordinator tick: lease reclaim plus one autoscale
	// decision per tick (0 = 1s).
	Interval time.Duration
	// JobTimeout bounds one job's execution; an overrunning job is acked
	// as failed so the queue converges (0 = no bound).
	JobTimeout time.Duration
	// PipelineWorkers bounds each job's stage fan-out pool
	// (0 = GOMAXPROCS).
	PipelineWorkers int
	// OnEvent, when non-nil, observes every supervisor event — scaling
	// decisions, reclaims, job completions, shutdown — for structured
	// logging. Called from supervisor goroutines; must be safe for
	// concurrent use (telemetry.Sink gives a ready-made serialized writer).
	OnEvent func(Event)
	// Telemetry, when non-nil, receives the node's job-lifecycle metrics
	// and pool gauges (synth_cluster_*), and is plumbed into every
	// per-dispatch pipeline the pool builds so stage metrics land in the
	// same registry.
	Telemetry *telemetry.Registry

	// exec, when non-nil, replaces real job execution (test hook; see
	// Worker.exec).
	exec func(context.Context, Job) error
}

// Event is one structured supervisor occurrence, emitted through
// SupervisorOptions.OnEvent and rendered by `synth serve` as JSON log
// lines.
type Event struct {
	// Time is when the event happened.
	Time time.Time `json:"time"`
	// Type is the event kind: "scale-up", "scale-down", "reclaim",
	// "job-done", "job-failed", "job-timeout", "panic", "release",
	// "shutdown".
	Type string `json:"type"`
	// Worker is the worker ID involved, when any.
	Worker string `json:"worker,omitempty"`
	// Job is the job ID involved, when any.
	Job string `json:"job,omitempty"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// Decision records one autoscaler verdict with the queue observation that
// produced it, so /api/v1/cluster/status can explain the pool's size.
type Decision struct {
	// Time is when the decision was taken.
	Time time.Time `json:"time"`
	// Action is "scale-up" or "scale-down".
	Action string `json:"action"`
	// From and To are the pool sizes before and after.
	From int `json:"from"`
	To   int `json:"to"`
	// Pending and Busy are the observations the decision was based on.
	Pending int `json:"pending"`
	Busy    int `json:"busy"`
	// Reason is a human-readable justification.
	Reason string `json:"reason"`
}

// SupervisorStatus is a point-in-time snapshot of an embedded pool for the
// status endpoint.
type SupervisorStatus struct {
	// Node is the supervisor's node name.
	Node string `json:"node"`
	// Workers is the current pool size, Busy how many are executing a job.
	Workers int `json:"workers"`
	Busy    int `json:"busy"`
	// Min and Max are the autoscaler bounds.
	Min int `json:"min"`
	Max int `json:"max"`
	// Jobs, Failed, and Panics count acked jobs, the failed subset, and
	// recovered execution panics since the supervisor started.
	Jobs   int `json:"jobs"`
	Failed int `json:"failed"`
	Panics int `json:"panics"`
	// Reclaimed counts expired leases returned to pending by the
	// coordinator ticker.
	Reclaimed int `json:"reclaimed"`
	// Decisions is the most recent autoscaler history, newest last.
	Decisions []Decision `json:"decisions,omitempty"`
}

// decisionHistory bounds the decision ring kept for the status endpoint.
const decisionHistory = 16

// idleTicksBeforeShrink is the autoscaler's scale-down hysteresis: the
// pool must be fully idle for this many consecutive coordinator ticks
// before one worker is retired, so a bursty queue does not thrash the pool.
const idleTicksBeforeShrink = 3

// Supervisor runs an embedded, self-scaling worker pool inside a process —
// `synth serve`'s node mode. N goroutine workers drain the cluster queue
// with panic recovery, per-job timeout, and ack retry; a coordinator loop
// reclaims expired leases on a ticker and autoscales the pool between Min
// and Max from observed queue depth. On context cancellation the pool
// drains gracefully: idle workers exit immediately, busy workers release
// their leases back to pending, and Run returns only when every worker is
// gone — a supervised node never abandons a leased job.
type Supervisor struct {
	q       *Queue
	opts    SupervisorOptions
	metrics *Metrics

	mu        sync.Mutex
	runCtx    context.Context // the Run context; mid-run spawns inherit it
	workers   map[string]*supWorker
	seq       int
	decisions []Decision
	panicked  map[string]bool
	pipes     map[string]*pipeline.Pipeline
	idleTicks int
	running   bool

	wg        sync.WaitGroup
	busy      atomic.Int64
	jobs      atomic.Int64
	failed    atomic.Int64
	panics    atomic.Int64
	reclaimed atomic.Int64
}

// supWorker is the supervisor's handle on one pool goroutine. Closing stop
// asks the worker to exit at its next idle moment (a scale-down lets the
// current job finish); context cancellation preempts a running job.
type supWorker struct {
	id   string
	stop chan struct{}
}

// NewSupervisor builds a supervisor over q. Options are defaulted, not
// validated to death: Min < 1 becomes 1, Max < Min becomes max(Min, 4).
func NewSupervisor(q *Queue, opts SupervisorOptions) (*Supervisor, error) {
	if q == nil {
		return nil, fmt.Errorf("cluster: supervisor: nil queue")
	}
	if opts.Node == "" {
		opts.Node = "node"
	}
	if opts.Min < 1 {
		opts.Min = 1
	}
	if opts.Max < opts.Min {
		opts.Max = opts.Min
		if opts.Max < 4 {
			opts.Max = 4
		}
	}
	if opts.TTL <= 0 {
		opts.TTL = DefaultLeaseTTL
	}
	if opts.Poll <= 0 {
		opts.Poll = DefaultPoll
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	s := &Supervisor{
		q:        q,
		opts:     opts,
		metrics:  NewMetrics(opts.Telemetry),
		workers:  make(map[string]*supWorker),
		panicked: make(map[string]bool),
		pipes:    make(map[string]*pipeline.Pipeline),
	}
	if opts.Telemetry != nil {
		opts.Telemetry.GaugeFunc("synth_cluster_pool_workers",
			"Current size of the embedded worker pool.", func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(len(s.workers))
			})
		opts.Telemetry.GaugeFunc("synth_cluster_pool_busy",
			"Pool workers currently executing a job.", func() float64 {
				return float64(s.busy.Load())
			})
	}
	return s, nil
}

// event emits e through OnEvent (never while holding the lock).
func (s *Supervisor) event(typ, worker, job, detail string) {
	if s.opts.OnEvent == nil {
		return
	}
	s.opts.OnEvent(Event{Time: time.Now(), Type: typ, Worker: worker, Job: job, Detail: detail})
}

// Run starts Min workers and the coordinator loop, and blocks until ctx is
// canceled and the pool has fully drained. It returns ctx's error.
func (s *Supervisor) Run(ctx context.Context) error {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return fmt.Errorf("cluster: supervisor already running")
	}
	s.running = true
	s.runCtx = ctx
	for i := 0; i < s.opts.Min; i++ {
		s.spawnLocked(ctx)
	}
	s.mu.Unlock()

	t := time.NewTicker(s.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			s.wg.Wait() // workers observe ctx themselves
			s.mu.Lock()
			s.workers = make(map[string]*supWorker)
			s.running = false
			s.mu.Unlock()
			s.event("shutdown", "", "", "pool drained")
			return ctx.Err()
		case <-t.C:
			s.tick()
		}
	}
}

// spawnLocked starts one worker goroutine. Caller holds s.mu.
func (s *Supervisor) spawnLocked(ctx context.Context) string {
	s.seq++
	sw := &supWorker{
		id:   fmt.Sprintf("%s-w%d", s.opts.Node, s.seq),
		stop: make(chan struct{}),
	}
	s.workers[sw.id] = sw
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.workerLoop(ctx, sw)
	}()
	return sw.id
}

// tick is one coordinator pass: reclaim expired leases, then decide
// whether the pool should grow or shrink.
func (s *Supervisor) tick() {
	if n, err := s.q.Reclaim(s.opts.TTL); err == nil && n > 0 {
		s.reclaimed.Add(int64(n))
		s.metrics.Reclaimed(n)
		s.event("reclaim", "", "", fmt.Sprintf("re-pended %d expired lease(s)", n))
	}
	c, err := s.q.Counts()
	if err != nil {
		return // a flaking store fails a tick, not the supervisor
	}
	busy := int(s.busy.Load())

	s.mu.Lock()
	cur := len(s.workers)
	var d *Decision
	switch {
	case c.Pending > 0 && cur < s.opts.Max:
		add := c.Pending
		if add > s.opts.Max-cur {
			add = s.opts.Max - cur
		}
		ctx := s.runCtx
		for i := 0; i < add; i++ {
			s.spawnLocked(ctx)
		}
		s.idleTicks = 0
		d = &Decision{Time: time.Now(), Action: "scale-up", From: cur, To: cur + add,
			Pending: c.Pending, Busy: busy,
			Reason: fmt.Sprintf("%d pending job(s) with %d worker(s)", c.Pending, cur)}
	case c.Pending == 0 && busy == 0 && cur > s.opts.Min:
		s.idleTicks++
		if s.idleTicks >= idleTicksBeforeShrink {
			s.idleTicks = 0
			// Retire one worker per decision; it exits at its next idle
			// check, which is immediate since the pool is idle.
			for id, sw := range s.workers {
				close(sw.stop)
				delete(s.workers, id)
				break
			}
			d = &Decision{Time: time.Now(), Action: "scale-down", From: cur, To: cur - 1,
				Pending: 0, Busy: 0,
				Reason: fmt.Sprintf("idle for %d tick(s)", idleTicksBeforeShrink)}
		}
	default:
		s.idleTicks = 0
	}
	if d != nil {
		s.decisions = append(s.decisions, *d)
		if len(s.decisions) > decisionHistory {
			s.decisions = s.decisions[len(s.decisions)-decisionHistory:]
		}
	}
	s.mu.Unlock()
	if d != nil {
		s.event(d.Action, "", "", d.Reason)
	}
}

// workerLoop is one pool goroutine: claim, execute, ack, repeat, until the
// context is canceled or the worker is retired. It never exits on queue
// convergence — an embedded node idles, awaiting the next dispatch.
func (s *Supervisor) workerLoop(ctx context.Context, sw *supWorker) {
	w := &Worker{Queue: s.q, ID: sw.id, TTL: s.opts.TTL, Metrics: s.metrics, exec: s.opts.exec}
	for {
		select {
		case <-ctx.Done():
			return
		case <-sw.stop:
			return
		default:
		}
		lease, err := s.q.Claim(sw.id)
		if err == nil && lease != nil {
			s.metrics.Claim()
		}
		if err != nil || lease == nil {
			select {
			case <-ctx.Done():
				return
			case <-sw.stop:
				return
			case <-time.After(s.opts.Poll):
			}
			continue
		}
		s.runOne(ctx, w, lease)
	}
}

// runOne executes one claimed job with panic recovery, per-job timeout,
// and ack retry. On parent-context cancellation the lease is released —
// graceful shutdown must never strand a leased job until TTL expiry.
func (s *Supervisor) runOne(ctx context.Context, w *Worker, lease *Lease) {
	id := lease.Job.ID()
	if s.q.HasResult(id) {
		lease.Drop() // stale pending duplicate from a reclaim race
		return
	}
	pipe, err := s.pipelineFor(lease.Job.Dispatch)
	if err != nil {
		// The job belongs to a dispatch this node cannot reconstruct
		// (manifest unreadable or replaced mid-flight). Hand it back and
		// let a reclaim or a correctly-configured worker take it.
		lease.Release()
		s.event("release", w.ID, id, err.Error())
		time.Sleep(s.opts.Poll) // avoid hot-looping on the same job
		return
	}
	w.Pipe = pipe

	jobCtx, cancel := ctx, context.CancelFunc(func() {})
	if s.opts.JobTimeout > 0 {
		jobCtx, cancel = context.WithTimeout(ctx, s.opts.JobTimeout)
	}
	s.busy.Add(1)
	res, panicked, execErr := w.execute(jobCtx, lease, s.opts.TTL)
	cancel()
	s.busy.Add(-1)

	if execErr != nil {
		if ctx.Err() != nil {
			// Shutdown (or a canceled serve request tree): release so the
			// job is immediately re-claimable, never abandoned mid-lease.
			lease.Release()
			s.event("release", w.ID, id, "shutdown mid-job")
			return
		}
		// The job's own deadline expired: ack it as failed so the queue
		// converges instead of retrying a hung job forever.
		res.Err = fmt.Sprintf("job timeout after %s: %v", s.opts.JobTimeout, execErr)
		s.metrics.Timeout()
		s.event("job-timeout", w.ID, id, res.Err)
	}
	if panicked {
		s.panics.Add(1)
		s.metrics.Panic()
		s.mu.Lock()
		first := !s.panicked[id]
		s.panicked[id] = true
		s.mu.Unlock()
		if first {
			lease.Release()
			s.event("panic", w.ID, id, res.Err+" (released for retry)")
			return
		}
		s.event("panic", w.ID, id, res.Err+" (second panic, acking as failed)")
	}
	if err := w.ack(lease, res); err != nil {
		s.event("job-failed", w.ID, id, err.Error())
		return
	}
	s.jobs.Add(1)
	typ := "job-done"
	if res.Err != "" {
		s.failed.Add(1)
		typ = "job-failed"
	}
	s.event(typ, w.ID, id, fmt.Sprintf("%s in %dms: %s", lease.Job.Workload, res.Millis, res.Err))
}

// pipelineFor returns the pipeline for one dispatch digest, built from the
// queue's manifest and cached per digest — a re-dispatch under new options
// gets a fresh pipeline whose artifact keys match, while jobs of one
// dispatch share cache state across the whole pool.
func (s *Supervisor) pipelineFor(digest string) (*pipeline.Pipeline, error) {
	if s.opts.exec != nil {
		return nil, nil // scripted execution needs no pipeline
	}
	s.mu.Lock()
	if p, ok := s.pipes[digest]; ok {
		s.mu.Unlock()
		return p, nil
	}
	s.mu.Unlock()

	m, err := s.q.Manifest()
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("cluster: job %s has no manifest", digest)
	}
	if m.Spec.Digest() != digest {
		return nil, fmt.Errorf("cluster: job belongs to dispatch %s but the manifest holds %s", digest, m.Spec.Digest())
	}
	opts, err := PipelineOptions(m.Spec)
	if err != nil {
		return nil, err
	}
	opts.Workers = s.opts.PipelineWorkers
	opts.Store = s.q.Store()
	opts.Metrics = s.opts.Telemetry
	p := pipeline.New(opts)

	s.mu.Lock()
	if cached, ok := s.pipes[digest]; ok { // lost a benign build race
		p = cached
	} else {
		s.pipes[digest] = p
	}
	s.mu.Unlock()
	return p, nil
}

// Metrics returns the supervisor's job-lifecycle metric handles, shared by
// its pool workers; the status endpoint snapshots them.
func (s *Supervisor) Metrics() *Metrics { return s.metrics }

// Status returns a point-in-time snapshot for the status endpoint.
func (s *Supervisor) Status() SupervisorStatus {
	s.mu.Lock()
	st := SupervisorStatus{
		Node:      s.opts.Node,
		Workers:   len(s.workers),
		Min:       s.opts.Min,
		Max:       s.opts.Max,
		Decisions: append([]Decision(nil), s.decisions...),
	}
	s.mu.Unlock()
	st.Busy = int(s.busy.Load())
	st.Jobs = int(s.jobs.Load())
	st.Failed = int(s.failed.Load())
	st.Panics = int(s.panics.Load())
	st.Reclaimed = int(s.reclaimed.Load())
	return st
}
