package cluster

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/pipeline"
)

// Report is the cluster-wide consolidation of a dispatch's results:
// per-shard cache statistics merged into one total, plus per-worker
// progress. Because jobs are artifact-disjoint shards, the merged Computed
// counters of a cold cluster run equal a single-process cold run's — the
// report is where that zero-duplication property becomes checkable.
type Report struct {
	// Total is the dispatched job count; Done, Failed, and Deduped break
	// down the results.
	Total   int `json:"total"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Deduped int `json:"deduped"`
	// Stats is the sum of every executed job's cache-stats delta.
	Stats pipeline.CacheStats `json:"stats"`
	// Elapsed is the summed per-job execution wall time.
	Elapsed time.Duration `json:"elapsed"`
	// Workers maps worker IDs to their share of the run ("dispatch" owns
	// deduplicated jobs).
	Workers map[string]WorkerReport `json:"workers"`
	// Failures lists the failed jobs' workloads and messages.
	Failures []string `json:"failures,omitempty"`
}

// WorkerReport is one worker's share of a dispatch.
type WorkerReport struct {
	// Jobs and Failed count the worker's acked jobs; Stats sums its
	// per-job deltas.
	Jobs   int                 `json:"jobs"`
	Failed int                 `json:"failed"`
	Stats  pipeline.CacheStats `json:"stats"`
}

// BuildReport consolidates a dispatch's results.
func BuildReport(m *Manifest, results []Result) Report {
	r := Report{Workers: map[string]WorkerReport{}}
	if m != nil {
		r.Total = m.Total
	}
	for _, res := range results {
		r.Done++
		if res.Deduped {
			r.Deduped++
		}
		if res.Err != "" {
			r.Failed++
			r.Failures = append(r.Failures, fmt.Sprintf("%s: %s", res.Job.Workload, res.Err))
		}
		r.Stats = r.Stats.Add(res.Stats)
		r.Elapsed += time.Duration(res.Millis) * time.Millisecond
		wr := r.Workers[res.Worker]
		wr.Jobs++
		if res.Err != "" {
			wr.Failed++
		}
		wr.Stats = wr.Stats.Add(res.Stats)
		r.Workers[res.Worker] = wr
	}
	return r
}

// Print renders the report: one summary line, one line per worker, and the
// failures. The stats line uses the same per-stage computed format the CLI
// prints elsewhere, so CI can grep either.
func (r Report) Print(w io.Writer) {
	fmt.Fprintf(w, "cluster: %d/%d jobs done (%d deduped from store, %d failed), %s job time\n",
		r.Done, r.Total, r.Deduped, r.Failed, r.Elapsed.Round(time.Millisecond))
	names := make([]string, 0, len(r.Workers))
	for n := range r.Workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		wr := r.Workers[n]
		fmt.Fprintf(w, "  worker %-12s jobs=%d failed=%d computed compile=%d profile=%d synthesize=%d simulate=%d\n",
			n, wr.Jobs, wr.Failed,
			wr.Stats.ComputedFor(pipeline.StageCompile),
			wr.Stats.ComputedFor(pipeline.StageProfile),
			wr.Stats.ComputedFor(pipeline.StageSynthesize),
			wr.Stats.ComputedFor(pipeline.StageSimulate))
	}
	fmt.Fprintf(w, "  total computed compile=%d profile=%d synthesize=%d simulate=%d (%d disk hits, %d disk errors)\n",
		r.Stats.ComputedFor(pipeline.StageCompile),
		r.Stats.ComputedFor(pipeline.StageProfile),
		r.Stats.ComputedFor(pipeline.StageSynthesize),
		r.Stats.ComputedFor(pipeline.StageSimulate),
		r.Stats.DiskHits, r.Stats.DiskErrors)
	for _, f := range r.Failures {
		fmt.Fprintf(w, "  failed: %s\n", f)
	}
}
