package cluster

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestClusterTelemetryWorkerDrain drains a scripted queue through a
// metered worker and asserts the job-lifecycle counters: claims, acks by
// result, panics, and the duration histogram all move, and the exposition
// carries them under the synth_cluster_* names.
func TestClusterTelemetryWorkerDrain(t *testing.T) {
	q := testQueue(t)
	fakeJobs(t, q, 3)

	reg := telemetry.NewRegistry()
	w := &Worker{
		Queue: q, ID: "metered", TTL: time.Hour, Poll: 5 * time.Millisecond,
		Metrics: NewMetrics(reg),
		exec: func(ctx context.Context, j Job) error {
			if strings.HasSuffix(j.Workload, "job0") {
				return fmt.Errorf("scripted failure")
			}
			return nil
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := w.Run(ctx); err != nil {
		t.Fatalf("run: %v", err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := b.String()
	for _, line := range []string{
		"synth_cluster_claims_total 3",
		`synth_cluster_jobs_total{result="ok"} 2`,
		`synth_cluster_jobs_total{result="failed"} 1`,
		"synth_cluster_job_seconds_count 3",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("scrape missing %q:\n%s", line, out)
		}
	}
}

// TestClusterTelemetrySupervisorPool runs a supervised drain with a
// registry attached and asserts the pool gauges and lifecycle counters are
// scrapable, including a panic and the queue-depth gauges over the drained
// queue.
func TestClusterTelemetrySupervisorPool(t *testing.T) {
	q := testQueue(t)
	fakeJobs(t, q, 2)

	reg := telemetry.NewRegistry()
	RegisterQueueGauges(reg, q)
	panicked := false
	sup, err := NewSupervisor(q, SupervisorOptions{
		Node: "tele", Min: 1, Max: 2, TTL: time.Hour,
		Poll: 5 * time.Millisecond, Interval: 10 * time.Millisecond,
		Telemetry: reg,
		exec: func(ctx context.Context, j Job) error {
			if !panicked && strings.HasSuffix(j.Workload, "job0") {
				panicked = true
				panic("scripted panic")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("supervisor: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		sup.Run(ctx)
	}()
	waitFor(t, 30*time.Second, "queue to converge", func() bool {
		c, err := q.Counts()
		return err == nil && c.Done == 2
	})
	cancel()
	<-done

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := b.String()
	for _, line := range []string{
		"synth_cluster_panics_total 1",
		"synth_cluster_queue_done 2",
		"synth_cluster_queue_pending 0",
		"synth_cluster_pool_busy 0",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("scrape missing %q:\n%s", line, out)
		}
	}
	if !strings.Contains(out, "synth_cluster_jobs_total") ||
		!strings.Contains(out, "synth_cluster_pool_workers") {
		t.Fatalf("scrape missing cluster families:\n%s", out)
	}
	if age, err := q.OldestLeaseAge(); err != nil || age != 0 {
		t.Fatalf("OldestLeaseAge on drained queue = %v, %v; want 0", age, err)
	}
}
