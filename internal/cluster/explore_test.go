package cluster

import (
	"context"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// testExploreSpec builds a 2-point exploration dispatch over the given
// workloads.
func testExploreSpec(names ...string) Spec {
	small := cpu.SpecOf(cpu.Simulated2Wide(8))
	big := cpu.SpecOf(cpu.Simulated2Wide(32))
	return Spec{
		Suite: "test", Workloads: names,
		ISAs: []string{"amd64v"}, Levels: []int{2},
		Seed: 1, ProfileISA: "amd64v", ProfileLevel: 0,
		Explore:      []cpu.ConfigSpec{small, big},
		SimMaxInstrs: 100_000,
	}
}

// TestClusterExploreDispatchExecuteDedup covers the exploration job
// lifecycle: dispatch enqueues explore-kind jobs, a worker drains them by
// simulating every (config, level) cell, and — after resetting the queue
// but keeping the store — a fresh dispatch dedups every job against the
// stored simulation artifacts without enqueueing anything.
func TestClusterExploreDispatchExecuteDedup(t *testing.T) {
	ctx := context.Background()
	q := testQueue(t)
	spec := testExploreSpec("crc32/small", "dijkstra/small")
	p := testPipeline(t, q, spec)

	out, err := Dispatch(ctx, q, p, spec, DispatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Enqueued != 2 {
		t.Fatalf("dispatch: %+v", out)
	}

	w := &Worker{Queue: q, Pipe: p, ID: "w1", Dispatch: spec.Digest()}
	sum, err := w.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 2 || sum.Failed != 0 {
		t.Fatalf("worker summary: %+v", sum)
	}
	results, err := q.Results()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		// 2 configs × 1 level × 2 sides = 4 simulations per workload.
		if got := r.Stats.ComputedFor(pipeline.StageSimulate); got != 4 {
			t.Errorf("job %s computed %d simulations, want 4", r.Job.Workload, got)
		}
	}

	// Fresh queue over the warm store: everything dedups.
	if err := q.Reset(); err != nil {
		t.Fatal(err)
	}
	out, err = Dispatch(ctx, q, p, spec, DispatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Deduped != 2 || out.Enqueued != 0 {
		t.Fatalf("warm dispatch should dedup everything: %+v", out)
	}

	// A different simulation bound is different work: nothing dedups.
	if err := q.Reset(); err != nil {
		t.Fatal(err)
	}
	bounded := spec
	bounded.SimMaxInstrs = 50_000
	out, err = Dispatch(ctx, q, p, bounded, DispatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Enqueued != 2 || out.Deduped != 0 {
		t.Fatalf("bound change should invalidate dedup: %+v", out)
	}
}

// TestClusterExploreSpecValidation rejects bad exploration points and
// unknown job kinds before any queue mutation.
func TestClusterExploreSpecValidation(t *testing.T) {
	ctx := context.Background()
	q := testQueue(t)
	spec := testExploreSpec("crc32/small")
	spec.Explore[1].L1KB = 12 // not a power of two
	p := testPipeline(t, q, spec)
	if _, err := Dispatch(ctx, q, p, spec, DispatchOptions{}); err == nil ||
		!strings.Contains(err.Error(), "explore point") {
		t.Fatalf("invalid explore point accepted: %v", err)
	}

	// A worker that claims a job of an unknown kind fails it loudly
	// rather than acking bogus work.
	good := testExploreSpec("crc32/small")
	if _, err := Dispatch(ctx, q, p, good, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}
	lease, err := q.Claim("w1")
	if err != nil || lease == nil {
		t.Fatalf("claim: %v %v", lease, err)
	}
	lease.Job.Kind = "teleport"
	w := &Worker{Queue: q, Pipe: p, ID: "w1"}
	res, panicked, err := w.execute(ctx, lease, DefaultLeaseTTL)
	if err != nil || panicked {
		t.Fatalf("execute: err=%v panicked=%v", err, panicked)
	}
	if !strings.Contains(res.Err, "unknown job kind") {
		t.Errorf("unknown kind result: %+v", res)
	}
	lease.Release()
}

// TestClusterExploreCanonicalCoversPoints pins the dispatch identity to
// the exploration grid: reordering, changing, or dropping points changes
// the digest, so stale workers abort instead of simulating the wrong
// machines.
func TestClusterExploreCanonicalCoversPoints(t *testing.T) {
	spec := testExploreSpec("crc32/small")
	base := spec.Digest()
	mutated := testExploreSpec("crc32/small")
	mutated.Explore[0].MemLat++
	if mutated.Digest() == base {
		t.Error("config change invisible to the dispatch digest")
	}
	swapped := testExploreSpec("crc32/small")
	swapped.Explore[0], swapped.Explore[1] = swapped.Explore[1], swapped.Explore[0]
	if swapped.Digest() == base {
		t.Error("point order invisible to the dispatch digest")
	}
	plain := testExploreSpec("crc32/small")
	plain.Explore = nil
	if plain.Digest() == base {
		t.Error("dropping the exploration grid invisible to the dispatch digest")
	}
	if plain.Jobs()[0].Kind != "" || spec.Jobs()[0].Kind != KindExplore {
		t.Error("job kinds do not follow the spec's exploration grid")
	}
}

// TestClusterExploreWorkerExecutesPair sanity-checks that an exploration
// job's simulations land under the same keys a local SimulatePair uses,
// which is what makes dispatcher-side aggregation free.
func TestClusterExploreWorkerExecutesPair(t *testing.T) {
	ctx := context.Background()
	q := testQueue(t)
	spec := testExploreSpec("crc32/small")
	p := testPipeline(t, q, spec)
	if _, err := Dispatch(ctx, q, p, spec, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}
	w := &Worker{Queue: q, Pipe: p, ID: "w1"}
	if _, err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	wl := workloads.ByName("crc32/small")
	st := q.Store()
	for _, cs := range spec.Explore {
		cfg, err := cs.Config()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range p.SimKeys(wl, isa.AMD64, compiler.O2, cfg, spec.SimMaxInstrs) {
			if !st.Has(k.Digest(), k.StoreKind(), k.Canonical()) {
				t.Errorf("simulation artifact missing for %s (clone=%v)", cfg.Name, k.Clone)
			}
		}
	}
}
