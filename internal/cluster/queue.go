package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path"
	"sort"
	"strings"
	"time"

	"repro/internal/store"
)

// Queue is the durable job queue persisted under one artifact store
// backend. A job is exactly one file in exactly one state directory:
//
//	<store root>/cluster/
//	    manifest.json            the dispatch being executed
//	    pending/<id>.json        enqueued, unowned
//	    leased/<id>@<worker>.json  owned; mtime is the last heartbeat
//	    done/<id>.json           finished (a Result envelope)
//
// Every state transition is a single atomic rename, so exactly one claimer
// wins a pending job and a reader never sees a partial entry. A Queue is
// safe for concurrent use by any number of processes sharing the backend —
// a common store directory, or a `synth serve` node's store reached over
// HTTP, in which case the serving node's filesystem provides the atomicity
// and no worker needs the coordinator's disk.
type Queue struct {
	be store.Backend
}

// queue directory and file names, relative to the store root.
const (
	queueDir     = "cluster"
	pendingDir   = queueDir + "/pending"
	leasedDir    = queueDir + "/leased"
	doneDir      = queueDir + "/done"
	manifestName = queueDir + "/manifest.json"
)

// OpenQueue returns the job queue living under be. State directories are
// created lazily by the first write, so opening a queue performs no I/O.
func OpenQueue(be store.Backend) (*Queue, error) {
	if be == nil {
		return nil, fmt.Errorf("cluster: open queue: nil backend")
	}
	return &Queue{be: be}, nil
}

// Store returns the backend the queue lives under — the same backend
// workers should hand to pipeline.Options.Store, so job coordination and
// artifact sharing travel together.
func (q *Queue) Store() store.Backend { return q.be }

// writeJSON marshals v and writes it atomically under name.
func (q *Queue) writeJSON(name string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return q.be.WriteFile(name, data)
}

// readJSON unmarshals the file under name into v.
func (q *Queue) readJSON(name string, v any) error {
	data, err := q.be.ReadFile(name)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// WriteManifest installs m as the queue's dispatch document.
func (q *Queue) WriteManifest(m *Manifest) error {
	if err := q.writeJSON(manifestName, m); err != nil {
		return fmt.Errorf("cluster: write manifest: %w", err)
	}
	return nil
}

// Manifest returns the queue's dispatch document, or nil if nothing has
// been dispatched. A manifest written under a different schema version is
// an error, not a silent mismatch.
func (q *Queue) Manifest() (*Manifest, error) {
	var m Manifest
	err := q.readJSON(manifestName, &m)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: read manifest: %w", err)
	}
	if m.Version != SchemaVersion {
		return nil, fmt.Errorf("cluster: manifest schema %d, want %d (mixed binaries?)", m.Version, SchemaVersion)
	}
	return &m, nil
}

// Reset removes every queued job and result, preparing the queue for a
// dispatch with a different spec. The manifest itself is left for the
// caller to overwrite.
func (q *Queue) Reset() error {
	for _, dir := range []string{pendingDir, leasedDir, doneDir} {
		infos, err := q.be.List(dir)
		if err != nil {
			return fmt.Errorf("cluster: reset: %w", err)
		}
		for _, fi := range infos {
			if err := q.be.Remove(path.Join(dir, fi.Name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("cluster: reset: %w", err)
			}
		}
	}
	return nil
}

// pendingName maps a job ID to its pending-state file.
func (q *Queue) pendingName(id string) string {
	return pendingDir + "/" + id + ".json"
}

// doneName maps a job ID to its done-state file.
func (q *Queue) doneName(id string) string {
	return doneDir + "/" + id + ".json"
}

// leasedName maps a job ID and worker to the lease file encoding both.
func (q *Queue) leasedName(id, worker string) string {
	return leasedDir + "/" + id + "@" + sanitizeWorker(worker) + ".json"
}

// sanitizeWorker restricts a worker ID to filename-safe characters, since
// the ID is encoded in lease file names.
func sanitizeWorker(worker string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '-'
	}, worker)
}

// isEntry reports whether a listed file is a live queue entry (a .json
// file that is not an in-flight atomic-write temporary).
func isEntry(name string) bool {
	return path.Ext(name) == ".json" && name[0] != '.'
}

// Enqueue adds j to the pending state unless the job already exists in any
// state. It reports whether the job was actually enqueued. Concurrent
// enqueues of the same job are harmless: both write identical content.
func (q *Queue) Enqueue(j Job) (bool, error) {
	id := j.ID()
	if q.HasResult(id) {
		return false, nil
	}
	if leases, err := q.leases(); err != nil {
		return false, err
	} else if _, leased := leases[id]; leased {
		return false, nil
	}
	if _, err := q.be.Stat(q.pendingName(id)); err == nil {
		return false, nil
	}
	if err := q.writeJSON(q.pendingName(id), j); err != nil {
		return false, fmt.Errorf("cluster: enqueue %s: %w", j.Workload, err)
	}
	return true, nil
}

// HasResult reports whether the job has reached the done state.
func (q *Queue) HasResult(id string) bool {
	_, err := q.be.Stat(q.doneName(id))
	return err == nil
}

// WriteResult records r in the done state, atomically replacing any
// earlier result for the same job (last writer wins; see Lease.Ack for why
// duplicates are benign).
func (q *Queue) WriteResult(r Result) error {
	if err := q.writeJSON(q.doneName(r.Job.ID()), r); err != nil {
		return fmt.Errorf("cluster: write result %s: %w", r.Job.Workload, err)
	}
	return nil
}

// Results returns every recorded result, sorted by workload name.
func (q *Queue) Results() ([]Result, error) {
	infos, err := q.be.List(doneDir)
	if err != nil {
		return nil, fmt.Errorf("cluster: results: %w", err)
	}
	var out []Result
	for _, fi := range infos {
		if !isEntry(fi.Name) {
			continue
		}
		var r Result
		if err := q.readJSON(path.Join(doneDir, fi.Name), &r); err != nil {
			continue // mid-rename or damaged: the next poll sees it
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job.Workload < out[j].Job.Workload })
	return out, nil
}

// Counts summarizes the queue's states for progress tracking.
type Counts struct {
	// Pending, Leased, and Done count jobs per state.
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
}

// Counts returns the queue's current state populations. The three reads
// are not one atomic snapshot — a job mid-transition can be counted in
// neither state — so callers polling for completion must check Done against
// the manifest total rather than Pending+Leased reaching zero.
func (q *Queue) Counts() (Counts, error) {
	var c Counts
	for _, d := range []struct {
		dir string
		n   *int
	}{{pendingDir, &c.Pending}, {leasedDir, &c.Leased}, {doneDir, &c.Done}} {
		infos, err := q.be.List(d.dir)
		if err != nil {
			return c, fmt.Errorf("cluster: counts: %w", err)
		}
		for _, fi := range infos {
			if isEntry(fi.Name) {
				*d.n++
			}
		}
	}
	return c, nil
}

// activeJobs counts the pending and leased jobs that have not reached the
// done state, removing stale pending copies of done jobs as it goes (the
// residue of an ack that raced a reclaim). Raw Counts would report such
// residue as live work; the dispatch conflict check needs the truth.
func (q *Queue) activeJobs() (active int, err error) {
	infos, err := q.be.List(pendingDir)
	if err != nil {
		return 0, fmt.Errorf("cluster: active jobs: %w", err)
	}
	for _, fi := range infos {
		if !isEntry(fi.Name) {
			continue
		}
		if id := strings.TrimSuffix(fi.Name, ".json"); q.HasResult(id) {
			q.be.Remove(q.pendingName(id))
			continue
		}
		active++
	}
	leases, err := q.leases()
	if err != nil {
		return 0, err
	}
	for id := range leases {
		if !q.HasResult(id) { // done-but-unremoved leases are Reclaim's job
			active++
		}
	}
	return active, nil
}

// Claim attempts to take ownership of one pending job for worker. It
// returns (nil, nil) when nothing is pending. Ownership is won by renaming
// the pending file into the leased state: exactly one concurrent claimer's
// rename succeeds, the rest observe not-exist and move to the next
// candidate. The job is read and the heartbeat clock started *before* the
// rename — rename preserves mtime — so the new lease is born fresh, never
// momentarily expired (a pending file's own mtime may be older than the
// TTL on a slow-draining queue), and a lost race costs nothing.
func (q *Queue) Claim(worker string) (*Lease, error) {
	infos, err := q.be.List(pendingDir)
	if err != nil {
		return nil, fmt.Errorf("cluster: claim: %w", err)
	}
	for _, fi := range infos {
		if !isEntry(fi.Name) {
			continue
		}
		id := strings.TrimSuffix(fi.Name, ".json")
		pendingName := q.pendingName(id)
		var j Job
		if err := q.readJSON(pendingName, &j); err != nil {
			continue // another worker claimed it between List and here
		}
		q.be.Touch(pendingName) // harmless if the rename is lost
		leasedName := q.leasedName(id, worker)
		if err := q.be.Rename(pendingName, leasedName); err != nil {
			continue // another worker won this job
		}
		return &Lease{q: q, Job: j, Worker: worker, name: leasedName}, nil
	}
	return nil, nil
}

// leaseInfo is one parsed lease-state file.
type leaseInfo struct {
	id     string
	worker string
	name   string
	mtime  time.Time
}

// leases parses the leased state directory.
func (q *Queue) leases() (map[string]leaseInfo, error) {
	infos, err := q.be.List(leasedDir)
	if err != nil {
		return nil, fmt.Errorf("cluster: leases: %w", err)
	}
	out := make(map[string]leaseInfo)
	for _, fi := range infos {
		if !isEntry(fi.Name) {
			continue
		}
		base := strings.TrimSuffix(fi.Name, ".json")
		id, worker, ok := strings.Cut(base, "@")
		if !ok {
			continue
		}
		out[id] = leaseInfo{id: id, worker: worker,
			name: path.Join(leasedDir, fi.Name), mtime: fi.ModTime}
	}
	return out, nil
}

// OldestLeaseAge returns how long ago the stalest held lease last
// heartbeat (zero when no leases are held). It is the telemetry signal for
// "a worker stopped heartbeating": a healthy pool keeps every lease age
// well under the TTL.
func (q *Queue) OldestLeaseAge() (time.Duration, error) {
	leases, err := q.leases()
	if err != nil {
		return 0, err
	}
	var oldest time.Time
	for _, l := range leases {
		if oldest.IsZero() || l.mtime.Before(oldest) {
			oldest = l.mtime
		}
	}
	if oldest.IsZero() {
		return 0, nil
	}
	return time.Since(oldest), nil
}

// Workers returns the worker IDs currently holding leases and how many
// jobs each holds.
func (q *Queue) Workers() (map[string]int, error) {
	leases, err := q.leases()
	if err != nil {
		return nil, err
	}
	out := make(map[string]int)
	for _, l := range leases {
		out[l.worker]++
	}
	return out, nil
}

// Reclaim returns expired leases — no heartbeat for longer than ttl — to
// the pending state and reports how many jobs it re-pended. A lease whose
// job already reached done (the worker crashed between acking and removing
// its lease) is simply cleaned up. Concurrent reclaimers race on renames,
// which is safe: one wins, the rest observe not-exist.
func (q *Queue) Reclaim(ttl time.Duration) (int, error) {
	leases, err := q.leases()
	if err != nil {
		return 0, err
	}
	cutoff := time.Now().Add(-ttl)
	reclaimed := 0
	for _, l := range leases {
		if !l.mtime.Before(cutoff) {
			continue
		}
		if q.HasResult(l.id) {
			q.be.Remove(l.name)
			continue
		}
		if err := q.be.Rename(l.name, q.pendingName(l.id)); err == nil {
			reclaimed++
		}
	}
	return reclaimed, nil
}

// Lease is a worker's ownership of one claimed job. The lease file's mtime
// is the heartbeat: Heartbeat refreshes it, and a lease idle longer than
// the reclaim TTL is returned to pending by whoever notices first.
type Lease struct {
	q *Queue
	// Job is the claimed job.
	Job Job
	// Worker is the owning worker's ID.
	Worker string
	name   string
}

// Heartbeat renews the lease by refreshing its file's mtime. Errors are
// returned for observability but a worker need not abort on them: a lost
// lease at worst means the job is redone by someone else, and the store
// makes the redo cheap.
func (l *Lease) Heartbeat() error {
	return l.q.be.Touch(l.name)
}

// Ack records the job's result and releases the lease. If the lease was
// reclaimed while the worker was executing (a heartbeat gap), the result
// still lands in done — last writer wins, and both writers computed
// byte-identical artifacts through the shared store, so a duplicate ack is
// benign.
func (l *Lease) Ack(r Result) error {
	if err := l.q.WriteResult(r); err != nil {
		return err
	}
	if err := l.q.be.Remove(l.name); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("cluster: ack %s: %w", l.Job.Workload, err)
	}
	return nil
}

// Release returns the claimed job to pending without a result, for a
// worker shutting down mid-job: the job is immediately re-claimable
// instead of waiting out the lease TTL.
func (l *Lease) Release() error {
	if err := l.q.be.Rename(l.name, l.q.pendingName(l.Job.ID())); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("cluster: release %s: %w", l.Job.Workload, err)
	}
	return nil
}

// Drop removes the lease without recording a result, for a claimed job
// found to be already done (a stale pending duplicate left by a reclaim
// race).
func (l *Lease) Drop() error {
	if err := l.q.be.Remove(l.name); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("cluster: drop %s: %w", l.Job.Workload, err)
	}
	return nil
}
