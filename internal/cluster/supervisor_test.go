package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeJobs writes a manifest promising total jobs and enqueues them. The
// jobs carry synthetic workload names; they are only meaningful to tests
// driving execution through the exec hook.
func fakeJobs(t *testing.T, q *Queue, total int) []Job {
	t.Helper()
	spec := testSpec("crc32/small")
	if err := q.WriteManifest(&Manifest{Version: SchemaVersion, Spec: spec,
		Canonical: spec.Canonical(), Total: total}); err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, total)
	for i := range jobs {
		jobs[i] = Job{Workload: fmt.Sprintf("fake/job%d", i), Dispatch: "fake"}
		if ok, err := q.Enqueue(jobs[i]); err != nil || !ok {
			t.Fatalf("enqueue %d: ok=%v err=%v", i, ok, err)
		}
	}
	return jobs
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestWorkerPanicReleasesLease pins the satellite fix: a panic inside job
// execution must release the lease for an immediate retry — with an
// hour-long TTL, convergence within the test timeout is only possible if
// the release happens eagerly rather than by expiry. The second panic of
// the same job is acked as a failure so the queue still converges.
func TestWorkerPanicReleasesLease(t *testing.T) {
	q := testQueue(t)
	fakeJobs(t, q, 1)

	var calls atomic.Int64
	w := &Worker{
		Queue: q, ID: "panicky", TTL: time.Hour, Poll: 5 * time.Millisecond,
		exec: func(ctx context.Context, j Job) error {
			calls.Add(1)
			panic("synthetic fault in job execution")
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sum, err := w.Run(ctx)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("job executed %d times, want 2 (retry after first panic)", calls.Load())
	}
	if sum.Panics != 2 || sum.Jobs != 1 || sum.Failed != 1 {
		t.Fatalf("summary = %+v, want 2 panics, 1 acked job, 1 failed", sum)
	}
	c, err := q.Counts()
	if err != nil || c.Leased != 0 || c.Pending != 0 || c.Done != 1 {
		t.Fatalf("queue after panics: %+v, %v; want everything in done", c, err)
	}
	results, err := q.Results()
	if err != nil || len(results) != 1 || !strings.Contains(results[0].Err, "panicked") {
		t.Fatalf("results = %+v, %v; want one failure recording the panic", results, err)
	}
}

// TestSupervisorGracefulShutdownReleasesLease is the regression test for
// the drain guarantee: canceling the supervisor mid-job must release the
// held lease back to pending, never abandon it in the leased state.
func TestSupervisorGracefulShutdownReleasesLease(t *testing.T) {
	q := testQueue(t)
	fakeJobs(t, q, 1)

	started := make(chan struct{})
	var once sync.Once
	sup, err := NewSupervisor(q, SupervisorOptions{
		Node: "test", Min: 1, Max: 1,
		Poll: 5 * time.Millisecond, Interval: 10 * time.Millisecond,
		exec: func(ctx context.Context, j Job) error {
			once.Do(func() { close(started) })
			<-ctx.Done() // hold the job until shutdown
			return ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- sup.Run(ctx) }()

	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never claimed the job")
	}
	cancel()
	select {
	case err := <-runDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor did not drain after cancel")
	}
	c, err := q.Counts()
	if err != nil || c.Leased != 0 || c.Pending != 1 || c.Done != 0 {
		t.Fatalf("queue after shutdown: %+v, %v; want the job released to pending", c, err)
	}
}

// TestSupervisorAutoscaleRace exercises concurrent scale-up/scale-down
// while jobs drain, with Status and Enqueue churning from other
// goroutines — the -race target for the supervisor paths. The pool must
// grow beyond Min under backlog, complete every job exactly once, and
// shrink back to Min once idle.
func TestSupervisorAutoscaleRace(t *testing.T) {
	q := testQueue(t)
	const total = 12
	jobs := fakeJobs(t, q, total)

	var executions atomic.Int64
	sup, err := NewSupervisor(q, SupervisorOptions{
		Node: "test", Min: 1, Max: 4,
		Poll: 2 * time.Millisecond, Interval: 10 * time.Millisecond,
		TTL: time.Hour, // reclaim must never fire: every execution is deliberate
		exec: func(ctx context.Context, j Job) error {
			executions.Add(1)
			time.Sleep(15 * time.Millisecond)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- sup.Run(ctx) }()

	// Churn the observation and enqueue paths while the pool scales.
	stopChurn := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(2)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stopChurn:
				return
			default:
				_ = sup.Status()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	go func() {
		defer churn.Done()
		for _, j := range jobs { // duplicate enqueues must all be rejected
			q.Enqueue(j)
			time.Sleep(time.Millisecond)
		}
		close(stopChurn)
	}()

	waitFor(t, 30*time.Second, "queue to drain", func() bool {
		c, err := q.Counts()
		return err == nil && c.Done == total
	})
	churn.Wait()

	if n := executions.Load(); n != total {
		t.Fatalf("jobs executed %d times, want exactly %d (no loss, no duplication)", n, total)
	}
	st := sup.Status()
	if st.Jobs != total || st.Failed != 0 {
		t.Fatalf("status counters: %+v", st)
	}
	scaledUp := false
	for _, d := range st.Decisions {
		if d.Action == "scale-up" && d.To > 1 {
			scaledUp = true
		}
	}
	if !scaledUp {
		t.Fatalf("pool never scaled up under a %d-job backlog: %+v", total, st.Decisions)
	}

	// Idle hysteresis: the pool must shrink back to Min.
	waitFor(t, 30*time.Second, "pool to shrink to Min", func() bool {
		return sup.Status().Workers == 1
	})
	cancel()
	select {
	case <-runDone:
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor did not exit after cancel")
	}
}

// TestSupervisorJobTimeout: a hung job is cut off at JobTimeout and acked
// as failed, so one stuck job cannot wedge the node or the queue.
func TestSupervisorJobTimeout(t *testing.T) {
	q := testQueue(t)
	fakeJobs(t, q, 1)

	sup, err := NewSupervisor(q, SupervisorOptions{
		Node: "test", Min: 1, Max: 1,
		Poll: 5 * time.Millisecond, Interval: 10 * time.Millisecond,
		JobTimeout: 30 * time.Millisecond,
		exec: func(ctx context.Context, j Job) error {
			<-ctx.Done() // hang until the job deadline fires
			return ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- sup.Run(ctx) }()

	waitFor(t, 10*time.Second, "timed-out job to be acked", func() bool {
		c, err := q.Counts()
		return err == nil && c.Done == 1
	})
	results, err := q.Results()
	if err != nil || len(results) != 1 || !strings.Contains(results[0].Err, "job timeout") {
		t.Fatalf("results = %+v, %v; want one job-timeout failure", results, err)
	}
	cancel()
	<-runDone
}
