package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// testPipeline builds the pipeline a worker for spec would run with,
// exactly as the CLI does: manifest options plus the queue's store.
func testPipeline(t *testing.T, q *Queue, spec Spec) *pipeline.Pipeline {
	t.Helper()
	opts, err := PipelineOptions(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 2
	opts.Store = q.Store()
	return pipeline.New(opts)
}

// TestClusterDispatchDrainDedup is the coordinator's core property chain:
// a dispatch enqueues everything, one worker drains it, an identical
// re-dispatch is a no-op, and after clearing the results a third dispatch
// dedups every job straight from the store without re-enqueueing anything.
func TestClusterDispatchDrainDedup(t *testing.T) {
	ctx := context.Background()
	q := testQueue(t)
	spec := testSpec("crc32/small", "dijkstra/small")
	p := testPipeline(t, q, spec)

	out, err := Dispatch(ctx, q, p, spec, DispatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Total != 2 || out.Enqueued != 2 || out.Deduped != 0 {
		t.Fatalf("cold dispatch: %+v", out)
	}

	w := &Worker{Queue: q, Pipe: p, ID: "w1"}
	sum, err := w.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 2 || sum.Failed != 0 {
		t.Fatalf("worker summary: %+v", sum)
	}
	results, err := Wait(ctx, q, WaitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results: %d", len(results))
	}
	for _, r := range results {
		if r.Worker != "w1" || r.Stats.ComputedFor(pipeline.StageSynthesize) != 1 {
			t.Errorf("result %s: worker=%s stats=%+v", r.Job.Workload, r.Worker, r.Stats)
		}
	}

	// Identical re-dispatch: results already recorded, nothing moves.
	out, err = Dispatch(ctx, q, p, spec, DispatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.AlreadyDone != 2 || out.Enqueued != 0 {
		t.Fatalf("idempotent re-dispatch: %+v", out)
	}

	// Clear the queue but keep the store: every job dedups against the
	// artifacts and goes straight to done.
	if err := q.Reset(); err != nil {
		t.Fatal(err)
	}
	out, err = Dispatch(ctx, q, p, spec, DispatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Deduped != 2 || out.Enqueued != 0 {
		t.Fatalf("warm dispatch must dedup from store: %+v", out)
	}
	if c, _ := q.Counts(); c.Done != 2 || c.Pending != 0 {
		t.Fatalf("counts after dedup dispatch: %+v", c)
	}

	// Force re-enqueues regardless; the worker then recomputes nothing
	// because the store is warm.
	out, err = Dispatch(ctx, q, p, spec, DispatchOptions{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Enqueued != 2 {
		t.Fatalf("forced dispatch: %+v", out)
	}
	warmPipe := testPipeline(t, q, spec)
	w2 := &Worker{Queue: q, Pipe: warmPipe, ID: "w2"}
	if _, err := w2.Run(ctx); err != nil {
		t.Fatal(err)
	}
	results, err = q.Results()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		for _, st := range []pipeline.Stage{pipeline.StageCompile, pipeline.StageProfile, pipeline.StageSynthesize} {
			if n := r.Stats.ComputedFor(st); n != 0 {
				t.Errorf("forced warm job %s recomputed %d %v artifacts", r.Job.Workload, n, st)
			}
		}
	}
}

// TestClusterDispatchConflict checks a different spec cannot hijack a
// queue with unfinished jobs, but can replace a drained one.
func TestClusterDispatchConflict(t *testing.T) {
	ctx := context.Background()
	q := testQueue(t)
	specA := testSpec("crc32/small")
	p := testPipeline(t, q, specA)
	if _, err := Dispatch(ctx, q, p, specA, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}

	specB := testSpec("dijkstra/small")
	if _, err := Dispatch(ctx, q, p, specB, DispatchOptions{}); err == nil ||
		!strings.Contains(err.Error(), "busy") {
		t.Fatalf("conflicting dispatch over pending jobs: %v", err)
	}

	// Drain spec A; then spec B may reset and take over.
	w := &Worker{Queue: q, Pipe: p, ID: "w1"}
	if _, err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	out, err := Dispatch(ctx, q, p, specB, DispatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Enqueued != 1 {
		t.Fatalf("replacement dispatch: %+v", out)
	}
	m, err := q.Manifest()
	if err != nil || m.Canonical != specB.Canonical() {
		t.Fatalf("manifest after replacement: %+v, %v", m, err)
	}
	if c, _ := q.Counts(); c.Done != 0 {
		t.Fatalf("old results must not survive a spec change: %+v", c)
	}

	// A stale pending copy of a done job — the residue of an ack racing a
	// reclaim — must not hold the queue hostage: spec B's job finishes,
	// its result lands, but a pending duplicate reappears; a third spec
	// still takes over.
	jobB := specB.Jobs()[0]
	if err := q.WriteResult(Result{Job: jobB, Worker: "w1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.be.Stat(q.pendingName(jobB.ID())); err != nil {
		t.Fatalf("test setup: pending copy missing: %v", err)
	}
	specC := testSpec("fft/small1")
	if _, err := Dispatch(ctx, q, p, specC, DispatchOptions{}); err != nil {
		t.Fatalf("stale pending residue blocked a new dispatch: %v", err)
	}
}

// TestClusterDispatchValidation checks bad specs fail before anything is
// enqueued.
func TestClusterDispatchValidation(t *testing.T) {
	ctx := context.Background()
	q := testQueue(t)
	good := testSpec("crc32/small")
	p := testPipeline(t, q, good)

	bad := []Spec{
		{},
		func() Spec { s := testSpec("no/such"); return s }(),
		func() Spec { s := testSpec("crc32/small"); s.ISAs = []string{"z80"}; return s }(),
		func() Spec { s := testSpec("crc32/small"); s.Levels = []int{9}; return s }(),
		func() Spec { s := testSpec("crc32/small"); s.ProfileISA = "z80"; return s }(),
	}
	for i, s := range bad {
		if _, err := Dispatch(ctx, q, p, s, DispatchOptions{}); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if c, _ := q.Counts(); c.Pending != 0 {
		t.Fatalf("failed dispatches enqueued jobs: %+v", c)
	}
}

// TestClusterWorkerFailedJob checks a job that cannot execute converges to
// done with an error recorded instead of wedging the queue.
func TestClusterWorkerFailedJob(t *testing.T) {
	ctx := context.Background()
	q := testQueue(t)
	spec := testSpec("crc32/small")
	p := testPipeline(t, q, spec)

	// Enqueue a poisoned job directly, bypassing Dispatch's validation —
	// modeling a workload that exists at dispatch time but fails in the
	// worker's binary.
	poisoned := Job{Workload: "no/such", ISAs: spec.ISAs, Levels: spec.Levels, Dispatch: "x"}
	if _, err := q.Enqueue(poisoned); err != nil {
		t.Fatal(err)
	}
	w := &Worker{Queue: q, Pipe: p, ID: "w1"}
	sum, err := w.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 1 || sum.Failed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	results, err := q.Results()
	if err != nil || len(results) != 1 || results[0].Err == "" {
		t.Fatalf("failed job result: %+v, %v", results, err)
	}
}

// TestClusterWorkerCanceled checks cancellation releases a held lease back
// to pending instead of letting it wait out the TTL.
func TestClusterWorkerCanceled(t *testing.T) {
	q := testQueue(t)
	spec := testSpec("crc32/small")
	p := testPipeline(t, q, spec)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Dispatch(context.Background(), q, p, spec, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}
	w := &Worker{Queue: q, Pipe: p, ID: "w1"}
	if _, err := w.Run(ctx); err == nil {
		t.Fatal("canceled worker must return an error")
	}
	if c, _ := q.Counts(); c.Pending != 1 || c.Leased != 0 {
		t.Fatalf("counts after canceled worker: %+v", c)
	}
}

// TestClusterDispatchDedupClearsStalePending covers the no-worker dedup
// path: jobs enqueued by an earlier dispatch whose artifacts later appear
// in the store (computed by any other route) must leave the queue fully
// drained — done recorded, stale pending file removed — so a different
// spec can take over afterwards.
func TestClusterDispatchDedupClearsStalePending(t *testing.T) {
	ctx := context.Background()
	q := testQueue(t)
	spec := testSpec("crc32/small")
	p := testPipeline(t, q, spec)

	if _, err := Dispatch(ctx, q, p, spec, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}
	// No worker runs; the store fills through another route (here: the
	// same pipeline, as `synth experiments -store` would).
	if err := runJobInline(ctx, t, p, spec); err != nil {
		t.Fatal(err)
	}
	out, err := Dispatch(ctx, q, p, spec, DispatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Deduped != 1 {
		t.Fatalf("re-dispatch over a warm store: %+v", out)
	}
	if c, _ := q.Counts(); c.Pending != 0 || c.Done != 1 {
		t.Fatalf("dedup left the queue busy: %+v", c)
	}
	other := testSpec("dijkstra/small")
	if _, err := Dispatch(ctx, q, p, other, DispatchOptions{}); err != nil {
		t.Fatalf("drained queue rejected a new spec: %v", err)
	}
}

// runJobInline computes one spec's artifacts directly on the pipeline,
// bypassing the queue.
func runJobInline(ctx context.Context, t *testing.T, p *pipeline.Pipeline, spec Spec) error {
	t.Helper()
	for _, j := range spec.Jobs() {
		w := &Worker{Pipe: p}
		if err := w.runJob(ctx, j); err != nil {
			return err
		}
	}
	return nil
}

// TestClusterStalledQueueDetected checks that a queue promising more jobs
// than exist — the residue of an interrupted dispatch — is reported by
// both Worker.Run and Wait instead of being polled forever.
func TestClusterStalledQueueDetected(t *testing.T) {
	ctx := context.Background()
	q := testQueue(t)
	spec := testSpec("crc32/small")
	p := testPipeline(t, q, spec)
	// Manifest promises two jobs; only one was ever enqueued.
	if err := q.WriteManifest(&Manifest{Version: SchemaVersion, Spec: spec,
		Canonical: spec.Canonical(), Total: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue(spec.Jobs()[0]); err != nil {
		t.Fatal(err)
	}

	w := &Worker{Queue: q, Pipe: p, ID: "w1", Poll: time.Millisecond, TTL: 30 * time.Millisecond}
	if _, err := w.Run(ctx); err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("worker on a stalled queue: %v", err)
	}
	if _, err := Wait(ctx, q, WaitOptions{Poll: time.Millisecond, TTL: 30 * time.Millisecond}); err == nil ||
		!strings.Contains(err.Error(), "stalled") {
		t.Fatalf("wait on a stalled queue: %v", err)
	}
}

// TestClusterWorkerRejectsForeignDispatch checks an idle worker that
// claims a job from a *different* dispatch — the queue was drained, reset,
// and re-dispatched under it — aborts instead of executing the job with
// its stale pipeline, and hands the job back.
func TestClusterWorkerRejectsForeignDispatch(t *testing.T) {
	ctx := context.Background()
	q := testQueue(t)
	specA := testSpec("crc32/small")
	p := testPipeline(t, q, specA)
	if err := q.WriteManifest(&Manifest{Version: SchemaVersion, Spec: specA,
		Canonical: specA.Canonical(), Total: 1}); err != nil {
		t.Fatal(err)
	}
	specB := testSpec("crc32/small")
	specB.Seed = 99
	if _, err := q.Enqueue(specB.Jobs()[0]); err != nil {
		t.Fatal(err)
	}

	w := &Worker{Queue: q, Pipe: p, ID: "stale", Dispatch: specA.Digest()}
	if _, err := w.Run(ctx); err == nil || !strings.Contains(err.Error(), "re-dispatched") {
		t.Fatalf("stale worker must abort on a foreign job: %v", err)
	}
	if c, _ := q.Counts(); c.Pending != 1 || c.Leased != 0 || c.Done != 0 {
		t.Fatalf("foreign job must be handed back: %+v", c)
	}
}

// TestClusterReportMerge checks the consolidator's arithmetic and
// rendering.
func TestClusterReportMerge(t *testing.T) {
	spec := testSpec("a/1", "b/2", "c/3")
	jobs := spec.Jobs()
	m := &Manifest{Version: SchemaVersion, Spec: spec, Canonical: spec.Canonical(), Total: 3}
	stats := func(compiled uint64) pipeline.CacheStats {
		var s pipeline.CacheStats
		s.Computed[pipeline.StageCompile] = compiled
		s.DiskHits = compiled * 2
		return s
	}
	results := []Result{
		{Job: jobs[0], Worker: "w1", Stats: stats(3), Millis: 100},
		{Job: jobs[1], Worker: "w2", Stats: stats(4), Millis: 50, Err: "boom"},
		{Job: jobs[2], Worker: "dispatch", Deduped: true},
	}
	r := BuildReport(m, results)
	if r.Total != 3 || r.Done != 3 || r.Failed != 1 || r.Deduped != 1 {
		t.Fatalf("report: %+v", r)
	}
	if r.Stats.ComputedFor(pipeline.StageCompile) != 7 || r.Stats.DiskHits != 14 {
		t.Fatalf("merged stats: %+v", r.Stats)
	}
	if r.Workers["w1"].Jobs != 1 || r.Workers["w2"].Failed != 1 || r.Workers["dispatch"].Jobs != 1 {
		t.Fatalf("per-worker: %+v", r.Workers)
	}
	var b strings.Builder
	r.Print(&b)
	out := b.String()
	for _, want := range []string{"3/3 jobs done", "1 deduped", "1 failed", "worker w1", "compile=7", "failed: b/2: boom"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

// TestClusterPipelineOptions checks the spec→options translation workers
// rely on for key agreement.
func TestClusterPipelineOptions(t *testing.T) {
	spec := testSpec("crc32/small")
	spec.Seed = 7
	spec.TargetDyn = 1000
	spec.MaxInstrs = 2000
	opts, err := PipelineOptions(spec)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Seed != 7 || opts.TargetDyn != 1000 || opts.MaxInstrs != 2000 ||
		opts.ProfileISA.Name != "amd64v" {
		t.Fatalf("options: %+v", opts)
	}
	if _, err := PipelineOptions(Spec{ProfileISA: "z80"}); err == nil {
		t.Error("unknown profile ISA accepted")
	}
	if _, err := PipelineOptions(Spec{ProfileISA: "amd64v", ProfileLevel: 9}); err == nil {
		t.Error("out-of-range profile level accepted")
	}
}
