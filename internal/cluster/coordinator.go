package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/compiler"
	"repro/internal/generate"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// DispatchOptions tunes a Dispatch call.
type DispatchOptions struct {
	// Force re-enqueues every job even if its artifacts are already stored
	// or it has already completed. The store still serves warm artifacts,
	// so forced jobs recompute nothing — CI's warm verification pass uses
	// exactly this to assert zero recomputation through the worker path.
	Force bool
}

// DispatchOutcome summarizes what a Dispatch call did with each job.
type DispatchOutcome struct {
	// Total is the number of jobs the spec enumerated.
	Total int
	// Enqueued jobs await a worker.
	Enqueued int
	// Deduped jobs were satisfied entirely from the store — every artifact
	// the job would compute already exists — and went straight to done.
	Deduped int
	// AlreadyDone jobs had a recorded result from an earlier identical
	// dispatch; AlreadyQueued jobs were still pending or leased.
	AlreadyDone   int
	AlreadyQueued int
}

// Dispatch validates spec, installs it as the queue's manifest, and
// enqueues its jobs. Jobs whose artifacts all exist in the store are
// deduplicated: they go straight to the done state (marked Deduped) without
// a worker ever seeing them, using the same pipeline.Key.Digest addressing
// the cache tiers use. Re-dispatching an identical spec is an idempotent
// top-up; dispatching a different spec over a queue with unfinished jobs is
// an error, and over a drained queue resets it.
func Dispatch(ctx context.Context, q *Queue, p *pipeline.Pipeline, spec Spec, opts DispatchOptions) (DispatchOutcome, error) {
	var out DispatchOutcome
	if err := validateSpec(spec); err != nil {
		return out, err
	}
	jobs := spec.Jobs()
	out.Total = len(jobs)

	existing, err := q.Manifest()
	if err != nil {
		return out, err
	}
	if existing != nil && existing.Canonical != spec.Canonical() {
		// Count only jobs that are genuinely still in flight: a stale
		// pending or leased copy of a done job (an ack that raced a
		// reclaim) must not hold the queue hostage forever.
		active, err := q.activeJobs()
		if err != nil {
			return out, err
		}
		if active > 0 {
			return out, fmt.Errorf("cluster: queue is busy with a different dispatch (%d jobs in flight); drain it or use a fresh store", active)
		}
		if err := q.Reset(); err != nil {
			return out, err
		}
	}
	if err := q.WriteManifest(&Manifest{
		Version:   SchemaVersion,
		Spec:      spec,
		Canonical: spec.Canonical(),
		Total:     len(jobs),
	}); err != nil {
		return out, err
	}

	for _, j := range jobs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if opts.Force {
			q.be.Remove(q.doneName(j.ID()))
		} else {
			if q.HasResult(j.ID()) {
				// Clear any stale pending copy (left by an earlier
				// no-worker dispatch or a reclaim race) so the done job
				// cannot keep the queue counting as busy.
				q.be.Remove(q.pendingName(j.ID()))
				out.AlreadyDone++
				continue
			}
			if jobStored(q, p, j) {
				if err := q.WriteResult(Result{Job: j, Worker: "dispatch", Deduped: true}); err != nil {
					return out, err
				}
				q.be.Remove(q.pendingName(j.ID()))
				out.Deduped++
				continue
			}
		}
		enqueued, err := q.Enqueue(j)
		if err != nil {
			return out, err
		}
		if enqueued {
			out.Enqueued++
		} else {
			out.AlreadyQueued++
		}
	}
	return out, nil
}

// validateSpec resolves every name in the spec, so a bad dispatch fails
// before anything is enqueued rather than as N failed jobs.
func validateSpec(spec Spec) error {
	if spec.Generate != nil {
		// Generation dispatches have no workload grid of their own: the
		// generate spec names the baseline suite, and its own validation
		// covers bounds and axis names. The profiling point below still
		// applies — workers profile the baseline through it.
		if err := spec.Generate.Validate(); err != nil {
			return fmt.Errorf("cluster: dispatch: %w", err)
		}
		if _, err := generate.BaselineWorkloads(spec.Generate); err != nil {
			return fmt.Errorf("cluster: dispatch: %w", err)
		}
		if isa.ByName(spec.ProfileISA) == nil {
			return fmt.Errorf("cluster: dispatch: unknown ISA %q", spec.ProfileISA)
		}
		if spec.ProfileLevel < 0 || spec.ProfileLevel >= len(compiler.Levels) {
			return fmt.Errorf("cluster: dispatch: optimization level %d out of range 0-%d", spec.ProfileLevel, len(compiler.Levels)-1)
		}
		return nil
	}
	if len(spec.Workloads) == 0 {
		return fmt.Errorf("cluster: dispatch: no workloads")
	}
	if len(spec.ISAs) == 0 || len(spec.Levels) == 0 {
		return fmt.Errorf("cluster: dispatch: empty ISA or level grid")
	}
	for _, w := range spec.Workloads {
		if workloads.ByName(w) == nil {
			return fmt.Errorf("cluster: dispatch: unknown workload %q", w)
		}
	}
	for _, name := range append([]string{spec.ProfileISA}, spec.ISAs...) {
		if isa.ByName(name) == nil {
			return fmt.Errorf("cluster: dispatch: unknown ISA %q", name)
		}
	}
	for _, l := range append([]int{spec.ProfileLevel}, spec.Levels...) {
		if l < 0 || l >= len(compiler.Levels) {
			return fmt.Errorf("cluster: dispatch: optimization level %d out of range 0-%d", l, len(compiler.Levels)-1)
		}
	}
	for i, cs := range spec.Explore {
		if _, err := cs.Config(); err != nil {
			return fmt.Errorf("cluster: dispatch: explore point %d: %w", i, err)
		}
	}
	return nil
}

// jobStored reports whether every artifact the job would persist already
// exists in the queue's store. Exploration jobs additionally require the
// simulation summaries of every (config, level) cell whose config runs
// on the grid point's ISA.
func jobStored(q *Queue, p *pipeline.Pipeline, j Job) bool {
	if j.Kind == KindGenerate {
		// A generate job's synthesis key depends on the sampled profile's
		// content fingerprint, which only the sampler knows; probing it here
		// would mean re-sampling at dispatch time. Always enqueue — a warm
		// store makes the job a fast no-op on the worker instead.
		return false
	}
	w := workloads.ByName(j.Workload)
	if w == nil {
		return false
	}
	st := q.Store()
	for _, pt := range j.Points() {
		target := isa.ByName(pt.ISA)
		if target == nil {
			return false
		}
		keys := p.PairKeys(w, target, compiler.Levels[pt.Level])
		for _, cs := range j.Sims {
			cfg, err := cs.Config()
			if err != nil {
				return false
			}
			if cfg.ISA != target {
				continue // this config simulates on a different grid ISA
			}
			keys = append(keys, p.SimKeys(w, target, compiler.Levels[pt.Level], cfg, j.SimMaxInstrs)...)
		}
		for _, k := range keys {
			if !st.Has(k.Digest(), k.StoreKind(), k.Canonical()) {
				return false
			}
		}
	}
	return true
}

// WaitOptions tunes a Wait call.
type WaitOptions struct {
	// TTL is the lease expiry used while reclaiming stalled jobs
	// (0 = DefaultLeaseTTL).
	TTL time.Duration
	// Poll is the queue polling interval (0 = DefaultPoll).
	Poll time.Duration
	// Progress, when non-nil, is called with the queue counts after every
	// poll.
	Progress func(Counts, int)
}

// Default lease and polling intervals shared by Wait, Worker, and the CLI.
const (
	DefaultLeaseTTL = time.Minute
	DefaultPoll     = 250 * time.Millisecond
)

// The stall horizon: how long Wait and Worker.Run tolerate an impossible
// queue state — nothing pending, nothing leased, yet fewer done than the
// manifest total — before declaring the queue stalled. The horizon is the
// lease TTL: a job mid-rename sits in "neither state" for microseconds,
// and a dispatch still dedup-probing a large warm store enqueues its first
// job well within the TTL (the same trust horizon the whole protocol
// grants a silent participant). A shortfall persisting past it means jobs
// were lost — an interrupted dispatch — and re-running the same dispatch
// re-enqueues them.

// errStalled diagnoses a queue whose jobs cannot all arrive.
func errStalled(done, total int) error {
	return fmt.Errorf("cluster: queue stalled at %d/%d jobs with nothing pending or leased (dispatch interrupted before enqueueing everything?); re-run the same dispatch to top it up", done, total)
}

// Wait blocks until every dispatched job reaches the done state,
// reclaiming expired leases while it waits so a crashed worker's jobs are
// re-leased even if no other worker is around to notice. It returns the
// final results. A queue that cannot converge — fewer jobs exist than the
// manifest total, the residue of an interrupted dispatch — is reported as
// an error instead of polling forever.
func Wait(ctx context.Context, q *Queue, opts WaitOptions) ([]Result, error) {
	m, err := q.Manifest()
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("cluster: wait: nothing dispatched")
	}
	ttl, poll := opts.TTL, opts.Poll
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if poll <= 0 {
		poll = DefaultPoll
	}
	var stalledSince time.Time
	for {
		c, err := q.Counts()
		if err != nil {
			return nil, err
		}
		if opts.Progress != nil {
			opts.Progress(c, m.Total)
		}
		if c.Done >= m.Total {
			return q.Results()
		}
		if c.Pending == 0 && c.Leased == 0 {
			if stalledSince.IsZero() {
				stalledSince = time.Now()
			} else if time.Since(stalledSince) >= ttl {
				return nil, errStalled(c.Done, m.Total)
			}
		} else {
			stalledSince = time.Time{}
		}
		if _, err := q.Reclaim(ttl); err != nil {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}
