package cluster

// The chaos suite: fault scenarios — worker crash mid-job, store flake
// during ack, lease expiry under a stalled worker, artifact corruption —
// must all converge to a complete store byte-identical to a clean solo
// run, with no lost and no double-executed jobs. Faults are injected with
// store.Fault, the scripted Backend decorator.

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/store"
	"repro/internal/workloads"
)

// chaosSpec is the workload set every chaos scenario drains: two jobs, so
// crash/reclaim interleavings have room to differ from the happy path.
func chaosSpec() Spec {
	return testSpec("crc32/small", "dijkstra/small")
}

// storeSnapshot maps every artifact file under dir (excluding the cluster
// queue and in-progress marker subtrees, which are coordination state, not
// artifacts) to its exact bytes.
func storeSnapshot(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.Walk(dir, func(path string, info fs.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		if info.IsDir() {
			if rel == queueDir || rel == store.WIPDir {
				return filepath.SkipDir
			}
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[filepath.ToSlash(rel)] = string(data)
		return nil
	})
	if err != nil {
		t.Fatalf("snapshot %s: %v", dir, err)
	}
	if len(out) == 0 {
		t.Fatalf("snapshot %s: empty store", dir)
	}
	return out
}

// assertSameStore fails unless both directories hold byte-identical
// artifact sets.
func assertSameStore(t *testing.T, gotDir, wantDir string) {
	t.Helper()
	got, want := storeSnapshot(t, gotDir), storeSnapshot(t, wantDir)
	if len(got) != len(want) {
		t.Errorf("store has %d artifacts, reference has %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("artifact %s missing from converged store", name)
			continue
		}
		if g != w {
			t.Errorf("artifact %s differs from the solo reference", name)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("artifact %s not present in the solo reference", name)
		}
	}
}

// soloReference cold-drains spec on a clean store with one fault-free
// worker and returns the store directory and the summed per-stage compute
// counters — the ground truth each chaos scenario must reproduce.
func soloReference(t *testing.T, spec Spec) (string, pipeline.CacheStats) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	q, err := OpenQueue(st)
	if err != nil {
		t.Fatal(err)
	}
	p := testPipeline(t, q, spec)
	ctx := context.Background()
	if _, err := Dispatch(ctx, q, p, spec, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}
	w := &Worker{Queue: q, Pipe: p, ID: "solo", Poll: 5 * time.Millisecond}
	if _, err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	return dir, summedStats(t, q, spec)
}

// summedStats adds up the per-job compute counters recorded in the queue's
// results.
func summedStats(t *testing.T, q *Queue, spec Spec) pipeline.CacheStats {
	t.Helper()
	results, err := q.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(spec.Jobs()) {
		t.Fatalf("queue holds %d results, want %d", len(results), len(spec.Jobs()))
	}
	var sum pipeline.CacheStats
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("job %s failed: %s", r.Job.Workload, r.Err)
		}
		sum = sum.Add(r.Stats)
	}
	return sum
}

// chaosQueue builds a queue whose backend is a fault decorator over a
// fresh filesystem store, returning the store directory for snapshotting.
func chaosQueue(t *testing.T) (*Queue, *store.Fault, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := store.NewFault(st)
	q, err := OpenQueue(f)
	if err != nil {
		t.Fatal(err)
	}
	return q, f, dir
}

// TestChaosWorkerCrashMidJob: a worker claims a job and dies without
// heartbeating. A healthy worker must reclaim the expired lease, execute
// everything exactly once, and leave a store byte-identical to a solo run.
func TestChaosWorkerCrashMidJob(t *testing.T) {
	spec := chaosSpec()
	refDir, refStats := soloReference(t, spec)

	q, _, dir := chaosQueue(t)
	p := testPipeline(t, q, spec)
	ctx := context.Background()
	if _, err := Dispatch(ctx, q, p, spec, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}
	lease, err := q.Claim("crashed")
	if err != nil || lease == nil {
		t.Fatalf("crash setup claim: %v %v", lease, err)
	}
	backdate(t, lease, time.Minute) // the dead worker stops heartbeating

	w := &Worker{Queue: q, Pipe: p, ID: "healthy", TTL: time.Second, Poll: 5 * time.Millisecond}
	if _, err := w.Run(ctx); err != nil {
		t.Fatalf("healthy worker: %v", err)
	}
	sum := summedStats(t, q, spec)
	if sum != refStats {
		t.Errorf("computed %+v, solo reference computed %+v (lost or duplicated work)", sum, refStats)
	}
	results, _ := q.Results()
	for _, r := range results {
		if r.Worker != "healthy" {
			t.Errorf("job %s acked by %q, want the healthy worker", r.Job.Workload, r.Worker)
		}
	}
	assertSameStore(t, dir, refDir)
}

// TestChaosStoreFlakeDuringAck: the first two result writes fail with a
// transient error. The worker's ack retry must ride the flake out and the
// queue must converge with every job acked exactly once.
func TestChaosStoreFlakeDuringAck(t *testing.T) {
	spec := chaosSpec()
	refDir, refStats := soloReference(t, spec)

	q, f, dir := chaosQueue(t)

	// Compress the retry backoff so the test rides the flake out quickly.
	savedAttempts, savedBackoff := ackAttempts, ackBackoff
	ackAttempts, ackBackoff = 4, time.Millisecond
	defer func() { ackAttempts, ackBackoff = savedAttempts, savedBackoff }()

	p := testPipeline(t, q, spec)
	ctx := context.Background()
	if _, err := Dispatch(ctx, q, p, spec, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}
	// Script the flake only after dispatch: the fault under test is an ack
	// blip mid-drain, not a broken dispatch.
	f.Script(store.FaultRule{Op: "writefile", Match: "cluster/done/", Count: 2, Err: errInjectedChaos})
	w := &Worker{Queue: q, Pipe: p, ID: "w1", Poll: 5 * time.Millisecond}
	if _, err := w.Run(ctx); err != nil {
		t.Fatalf("worker under ack flake: %v", err)
	}
	if f.Fired("writefile") != 2 {
		t.Fatalf("fault script fired %d times, want 2", f.Fired("writefile"))
	}
	sum := summedStats(t, q, spec)
	if sum != refStats {
		t.Errorf("computed %+v, solo reference computed %+v", sum, refStats)
	}
	assertSameStore(t, dir, refDir)
}

// TestChaosLeaseExpiryUnderStalledWorker: a worker stalls mid-job past the
// TTL; its job is reclaimed and redone by a healthy worker. The stalled
// worker then wakes up and acks late — which must be benign: the store is
// content-addressed, so both executions produced identical artifacts.
func TestChaosLeaseExpiryUnderStalledWorker(t *testing.T) {
	spec := chaosSpec()
	refDir, _ := soloReference(t, spec)

	q, _, dir := chaosQueue(t)
	p := testPipeline(t, q, spec)
	ctx := context.Background()
	if _, err := Dispatch(ctx, q, p, spec, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}
	stalled, err := q.Claim("stalled")
	if err != nil || stalled == nil {
		t.Fatalf("stall setup claim: %v %v", stalled, err)
	}
	backdate(t, stalled, time.Minute)

	w := &Worker{Queue: q, Pipe: p, ID: "healthy", TTL: time.Second, Poll: 5 * time.Millisecond}
	if _, err := w.Run(ctx); err != nil {
		t.Fatalf("healthy worker: %v", err)
	}
	// The stalled worker finally finishes and acks its long-lost lease.
	if err := stalled.Ack(Result{Job: stalled.Job, Worker: "stalled"}); err != nil {
		t.Fatalf("late ack must be benign: %v", err)
	}
	c, err := q.Counts()
	if err != nil || c.Done != len(spec.Jobs()) || c.Pending != 0 || c.Leased != 0 {
		t.Fatalf("queue after late ack: %+v, %v", c, err)
	}
	assertSameStore(t, dir, refDir)
}

// TestChaosCorruptedArtifactRecomputed: a corrupted store read must
// degrade to recomputation — the pipeline re-derives the artifact and the
// store converges back to the reference bytes.
func TestChaosCorruptedArtifactRecomputed(t *testing.T) {
	spec := chaosSpec()
	refDir, _ := soloReference(t, spec)

	// Warm a store, then read it through a corrupting backend.
	q, f, dir := chaosQueue(t)
	p := testPipeline(t, q, spec)
	ctx := context.Background()
	if _, err := Dispatch(ctx, q, p, spec, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}
	w := &Worker{Queue: q, Pipe: p, ID: "warmup", Poll: 5 * time.Millisecond}
	if _, err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	f.Script(store.FaultRule{Op: "get", Count: 1, Corrupt: true})

	// A fresh pipeline over the same (now corrupting) backend: its first
	// disk read comes back damaged, fails decode, and is recomputed.
	opts, err := PipelineOptions(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 2
	opts.Store = q.Store()
	p2 := pipeline.New(opts)
	wl := workloads.ByName("crc32/small")
	if _, err := p2.Profile(ctx, wl); err != nil {
		t.Fatalf("profile through corrupting store: %v", err)
	}
	if f.Fired("get") != 1 {
		t.Fatalf("corruption fired %d times, want 1", f.Fired("get"))
	}
	if stats := p2.CacheStats(); stats.DiskErrors == 0 {
		t.Errorf("corrupted read was not counted as a disk error: %+v", stats)
	}
	assertSameStore(t, dir, refDir)
}

// errInjectedChaos distinguishes scripted faults in failure messages.
var errInjectedChaos = errors.New("injected chaos flake")

// TestChaosSupervisorStoreFlake drives the embedded pool against a flaky
// backend end to end: claims, heartbeats, and acks all hit injected
// errors, and the supervisor must still converge the queue.
func TestChaosSupervisorStoreFlake(t *testing.T) {
	spec := chaosSpec()
	refDir, refStats := soloReference(t, spec)

	q, f, dir := chaosQueue(t)
	savedAttempts, savedBackoff := ackAttempts, ackBackoff
	ackAttempts, ackBackoff = 4, time.Millisecond
	defer func() { ackAttempts, ackBackoff = savedAttempts, savedBackoff }()

	p := testPipeline(t, q, spec)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := Dispatch(ctx, q, p, spec, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}
	// Script flakes on every coordination path the pool exercises — an ack
	// write, claim listings, and a claim-time touch — after dispatch, so the
	// supervisor (not the dispatcher) has to ride them out.
	f.Script(
		store.FaultRule{Op: "writefile", Match: "cluster/done/", Count: 1, Err: errInjectedChaos},
		store.FaultRule{Op: "list", Match: "cluster/pending", Skip: 2, Count: 2, Err: errInjectedChaos},
		store.FaultRule{Op: "touch", Match: "cluster/pending/", Count: 1, Err: errInjectedChaos},
	)
	// Max 1: per-job stat deltas are snapshots of the pool's shared
	// pipeline, so they only partition exactly (making the strict
	// no-duplication sum below valid) when jobs run sequentially.
	// Concurrent-pool paths are covered by TestSupervisorAutoscaleRace.
	sup, err := NewSupervisor(q, SupervisorOptions{
		Node: "flaky", Min: 1, Max: 1,
		Poll: 5 * time.Millisecond, Interval: 20 * time.Millisecond,
		PipelineWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- sup.Run(ctx) }()

	waitFor(t, 60*time.Second, "queue to converge under store flakes", func() bool {
		c, err := q.Counts()
		return err == nil && c.Done == len(spec.Jobs())
	})
	cancel()
	<-runDone

	sum := summedStats(t, q, spec)
	if sum != refStats {
		t.Errorf("computed %+v, solo reference computed %+v", sum, refStats)
	}
	if f.Fired("writefile") != 1 {
		t.Errorf("ack flake fired %d times, want 1", f.Fired("writefile"))
	}
	if !strings.HasPrefix(sup.Status().Node, "flaky") {
		t.Fatalf("status node = %q", sup.Status().Node)
	}
	assertSameStore(t, dir, refDir)
}
