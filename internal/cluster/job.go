package cluster

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/generate"
	"repro/internal/pipeline"
)

// KindExplore marks a job as an exploration shard: beyond the pair grid,
// the worker simulates the workload's original and clone on every machine
// configuration in Sims at every level.
const KindExplore = "explore"

// KindGenerate marks a job as a generation shard: the worker realizes one
// directed synthetic workload — point GenIndex of the dispatch spec's
// generate.Spec — through the pipeline's Synthesize → Validate path.
const KindGenerate = "generate"

// Job is one shard of a dispatch: every (ISA, level) point of one
// workload. Jobs are self-describing — a pending file carries the whole
// struct — so a worker needs only the manifest (for pipeline options) and
// the job file to execute.
type Job struct {
	// Workload is the workload/input pair to clone.
	Workload string `json:"workload"`
	// ISAs and Levels are the compilation grid, copied from the spec.
	ISAs   []string `json:"isas"`
	Levels []int    `json:"levels"`
	// Dispatch is the digest of the owning spec's canonical encoding.
	// It scopes job IDs, so results from a superseded dispatch can never
	// be mistaken for this one's.
	Dispatch string `json:"dispatch"`
	// Kind discriminates job flavors: "" is pair synthesis, KindExplore
	// an exploration shard.
	Kind string `json:"kind,omitempty"`
	// Sims and SimMaxInstrs carry an exploration spec's machine
	// configurations and simulation bound (KindExplore jobs only).
	Sims         []cpu.ConfigSpec `json:"sims,omitempty"`
	SimMaxInstrs uint64           `json:"simMaxInstrs,omitempty"`
	// Gen and GenIndex carry a generation spec and which of its sampled
	// points this job realizes (KindGenerate jobs only). The spec rides in
	// every job so jobs stay self-describing; the point index is also baked
	// into Workload ("gen[i]"), which is what keeps generate job IDs
	// distinct within a dispatch.
	Gen      *generate.Spec `json:"gen,omitempty"`
	GenIndex int            `json:"genIndex,omitempty"`
}

// ID returns the job's queue identity: a digest over the dispatch digest
// and the workload name. Stable across processes, unique within a
// dispatch, and distinct across different dispatch specs.
func (j Job) ID() string {
	return digestOf(fmt.Sprintf("v1|%s|%s", j.Dispatch, j.Workload))
}

// Cells returns the number of evaluation cells the job executes: the
// (ISA, level) compile grid for pair-synthesis jobs, the (machine
// configuration, level) simulation grid for exploration jobs.
func (j Job) Cells() int {
	switch j.Kind {
	case KindExplore:
		return len(j.Sims) * len(j.Levels)
	case KindGenerate:
		return 1 // one directed point per job
	}
	return len(j.ISAs) * len(j.Levels)
}

// Points returns the job's (ISA, level) grid in deterministic order.
func (j Job) Points() []Point {
	pts := make([]Point, 0, len(j.ISAs)*len(j.Levels))
	for _, isaName := range j.ISAs {
		for _, level := range j.Levels {
			pts = append(pts, Point{ISA: isaName, Level: level})
		}
	}
	return pts
}

// Point is one (ISA, level) cell of a job's grid.
type Point struct {
	// ISA names the target ISA.
	ISA string `json:"isa"`
	// Level is the optimization level index.
	Level int `json:"level"`
}

// Result records one finished job in the queue's done state. Results are
// written with the store's atomic conventions and merged by BuildReport.
type Result struct {
	// Job is the job the result answers.
	Job Job `json:"job"`
	// Worker identifies who executed (or deduplicated) the job.
	Worker string `json:"worker"`
	// Stats is the job's exact artifact-cache delta on the executing
	// worker (zero for deduplicated jobs).
	Stats pipeline.CacheStats `json:"stats"`
	// Deduped marks a job satisfied entirely from the store at dispatch
	// time, without ever being enqueued.
	Deduped bool `json:"deduped,omitempty"`
	// Millis is the job's wall-clock execution time.
	Millis int64 `json:"millis"`
	// Err carries the failure message of a job whose execution failed.
	// Failed jobs still reach the done state — the queue converges and the
	// report lists them — rather than being retried forever.
	Err string `json:"error,omitempty"`
}
