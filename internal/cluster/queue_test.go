package cluster

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

func testQueue(t *testing.T) *Queue {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q, err := OpenQueue(st)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func testSpec(workloads ...string) Spec {
	return Spec{
		Suite: "test", Workloads: workloads,
		ISAs: []string{"amd64v"}, Levels: []int{0},
		Seed: 1, ProfileISA: "amd64v", ProfileLevel: 0,
	}
}

// backdate pushes a lease file's heartbeat into the past. It reaches
// through to the filesystem (Backend has no "set mtime backwards" op —
// production code never needs one), unwrapping a fault decorator if the
// chaos suite is in play.
func backdate(t *testing.T, l *Lease, age time.Duration) {
	t.Helper()
	old := time.Now().Add(-age)
	be := l.q.be
	if f, ok := be.(*store.Fault); ok {
		be = f.Inner()
	}
	st := be.(*store.Store)
	if err := os.Chtimes(filepath.Join(st.Root(), filepath.FromSlash(l.name)), old, old); err != nil {
		t.Fatal(err)
	}
}

// TestClusterQueueLifecycle walks one job through every state:
// manifest → pending → leased (with heartbeat) → done.
func TestClusterQueueLifecycle(t *testing.T) {
	q := testQueue(t)
	spec := testSpec("crc32/small")

	if m, err := q.Manifest(); err != nil || m != nil {
		t.Fatalf("fresh queue manifest = %v, %v; want nil, nil", m, err)
	}
	want := &Manifest{Version: SchemaVersion, Spec: spec, Canonical: spec.Canonical(), Total: 1}
	if err := q.WriteManifest(want); err != nil {
		t.Fatal(err)
	}
	m, err := q.Manifest()
	if err != nil || m == nil || m.Canonical != spec.Canonical() || m.Total != 1 {
		t.Fatalf("manifest round trip: %+v, %v", m, err)
	}

	job := spec.Jobs()[0]
	if ok, err := q.Enqueue(job); err != nil || !ok {
		t.Fatalf("enqueue: %v, %v", ok, err)
	}
	if ok, err := q.Enqueue(job); err != nil || ok {
		t.Fatalf("re-enqueue of pending job must be a no-op: %v, %v", ok, err)
	}
	if c, _ := q.Counts(); c.Pending != 1 || c.Leased != 0 || c.Done != 0 {
		t.Fatalf("counts after enqueue: %+v", c)
	}

	lease, err := q.Claim("w1")
	if err != nil || lease == nil {
		t.Fatalf("claim: %v, %v", lease, err)
	}
	if lease.Job.Workload != "crc32/small" || lease.Worker != "w1" {
		t.Fatalf("claimed lease: %+v", lease)
	}
	if ok, err := q.Enqueue(job); err != nil || ok {
		t.Fatalf("enqueue of leased job must be a no-op: %v, %v", ok, err)
	}
	if c, _ := q.Counts(); c.Pending != 0 || c.Leased != 1 {
		t.Fatalf("counts after claim: %+v", c)
	}
	if extra, err := q.Claim("w2"); err != nil || extra != nil {
		t.Fatalf("empty-queue claim: %v, %v", extra, err)
	}
	if err := lease.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	workers, err := q.Workers()
	if err != nil || workers["w1"] != 1 {
		t.Fatalf("workers: %v, %v", workers, err)
	}

	if err := lease.Ack(Result{Job: job, Worker: "w1", Millis: 5}); err != nil {
		t.Fatal(err)
	}
	if c, _ := q.Counts(); c.Pending != 0 || c.Leased != 0 || c.Done != 1 {
		t.Fatalf("counts after ack: %+v", c)
	}
	if !q.HasResult(job.ID()) {
		t.Fatal("HasResult after ack = false")
	}
	if ok, err := q.Enqueue(job); err != nil || ok {
		t.Fatalf("enqueue of done job must be a no-op: %v, %v", ok, err)
	}
	results, err := q.Results()
	if err != nil || len(results) != 1 || results[0].Worker != "w1" {
		t.Fatalf("results: %+v, %v", results, err)
	}
}

// TestClusterClaimExclusive races many claimers over a job set and checks
// every job is won exactly once: the rename-based claim is the mutual
// exclusion.
func TestClusterClaimExclusive(t *testing.T) {
	q := testQueue(t)
	spec := testSpec("a/1", "b/2", "c/3", "d/4", "e/5", "f/6", "g/7", "h/8")
	for _, j := range spec.Jobs() {
		if _, err := q.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}

	const claimers = 8
	var mu sync.Mutex
	won := map[string]int{}
	var wg sync.WaitGroup
	for i := 0; i < claimers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				l, err := q.Claim(string(rune('A' + worker)))
				if err != nil {
					t.Error(err)
					return
				}
				if l == nil {
					return
				}
				mu.Lock()
				won[l.Job.ID()]++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if len(won) != len(spec.Workloads) {
		t.Fatalf("claimed %d distinct jobs, want %d", len(won), len(spec.Workloads))
	}
	for id, n := range won {
		if n != 1 {
			t.Errorf("job %s claimed %d times", id, n)
		}
	}
}

// TestClusterReclaimExpired checks the crash-recovery path: an expired
// lease goes back to pending and is claimable by another worker, while a
// heartbeating lease is left alone.
func TestClusterReclaimExpired(t *testing.T) {
	q := testQueue(t)
	job := testSpec("crc32/small").Jobs()[0]
	if _, err := q.Enqueue(job); err != nil {
		t.Fatal(err)
	}
	lease, err := q.Claim("crasher")
	if err != nil || lease == nil {
		t.Fatalf("claim: %v, %v", lease, err)
	}

	// A fresh lease is not reclaimable.
	if n, err := q.Reclaim(time.Minute); err != nil || n != 0 {
		t.Fatalf("reclaimed fresh lease: %d, %v", n, err)
	}

	// A heartbeat keeps an old lease alive.
	backdate(t, lease, 2*time.Minute)
	if err := lease.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if n, err := q.Reclaim(time.Minute); err != nil || n != 0 {
		t.Fatalf("reclaimed heartbeating lease: %d, %v", n, err)
	}

	// Silence (the crash) expires it.
	backdate(t, lease, 2*time.Minute)
	if n, err := q.Reclaim(time.Minute); err != nil || n != 1 {
		t.Fatalf("reclaim expired lease: %d, %v", n, err)
	}
	if c, _ := q.Counts(); c.Pending != 1 || c.Leased != 0 {
		t.Fatalf("counts after reclaim: %+v", c)
	}
	second, err := q.Claim("rescuer")
	if err != nil || second == nil || second.Job.ID() != job.ID() {
		t.Fatalf("re-claim after reclaim: %+v, %v", second, err)
	}
}

// TestClusterReclaimAfterAckCrash covers a worker dying between writing its
// result and removing its lease: reclaim must clean the lease up without
// re-pending an already-done job.
func TestClusterReclaimAfterAckCrash(t *testing.T) {
	q := testQueue(t)
	job := testSpec("crc32/small").Jobs()[0]
	if _, err := q.Enqueue(job); err != nil {
		t.Fatal(err)
	}
	lease, err := q.Claim("w1")
	if err != nil || lease == nil {
		t.Fatal(err)
	}
	if err := q.WriteResult(Result{Job: job, Worker: "w1"}); err != nil {
		t.Fatal(err)
	}
	// Crash here: result written, lease never removed.
	backdate(t, lease, 2*time.Minute)
	if n, err := q.Reclaim(time.Minute); err != nil || n != 0 {
		t.Fatalf("done job re-pended: %d, %v", n, err)
	}
	if c, _ := q.Counts(); c.Pending != 0 || c.Leased != 0 || c.Done != 1 {
		t.Fatalf("counts after cleanup: %+v", c)
	}
}

// TestClusterRelease checks the graceful-shutdown path: a released job is
// pending again immediately, without waiting out the TTL.
func TestClusterRelease(t *testing.T) {
	q := testQueue(t)
	job := testSpec("crc32/small").Jobs()[0]
	if _, err := q.Enqueue(job); err != nil {
		t.Fatal(err)
	}
	lease, err := q.Claim("w1")
	if err != nil || lease == nil {
		t.Fatal(err)
	}
	if err := lease.Release(); err != nil {
		t.Fatal(err)
	}
	if c, _ := q.Counts(); c.Pending != 1 || c.Leased != 0 {
		t.Fatalf("counts after release: %+v", c)
	}
}

// TestClusterJobIdentity pins the ID scheme's properties: stable for equal
// jobs, distinct across workloads and across dispatch specs.
func TestClusterJobIdentity(t *testing.T) {
	a := testSpec("crc32/small", "dijkstra/small")
	jobs := a.Jobs()
	if jobs[0].ID() != a.Jobs()[0].ID() {
		t.Error("job ID not stable")
	}
	if jobs[0].ID() == jobs[1].ID() {
		t.Error("distinct workloads share a job ID")
	}
	b := testSpec("crc32/small", "dijkstra/small")
	b.Seed = 2
	if jobs[0].ID() == b.Jobs()[0].ID() {
		t.Error("distinct specs share a job ID")
	}
	if len(jobs[0].Points()) != 1 {
		t.Errorf("points: %v", jobs[0].Points())
	}
	if sanitizeWorker("host/1@x") != "host-1-x" {
		t.Errorf("sanitizeWorker: %q", sanitizeWorker("host/1@x"))
	}
}

// TestClusterManifestSchemaMismatch checks a manifest from a different
// schema version is an error, not a silent mismatch.
func TestClusterManifestSchemaMismatch(t *testing.T) {
	q := testQueue(t)
	if err := q.WriteManifest(&Manifest{Version: SchemaVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Manifest(); err == nil {
		t.Fatal("mismatched manifest schema must be an error")
	}
}
