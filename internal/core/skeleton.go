package core

import (
	"math/rand"
	"sort"

	"repro/internal/sfgl"
)

// The skeleton is the intermediate form between the scaled SFGL and HLC
// code: an ordered forest of loops and basic-block occurrences
// (Section III.B.2, "Generate basic blocks and loops").

// item is a skeleton element.
type item interface{ skItem() }

// blockItem is one occurrence of a basic block.
type blockItem struct {
	node *sfgl.Node
	// freq is the per-iteration execution fraction when the block sits
	// inside a loop body (1 = every iteration). The code generator turns
	// sub-unity frequencies into conditional execution.
	freq float64
	// latch marks blocks whose terminating branch is a loop back edge
	// (the for statement models it; no extra branch is emitted).
	latch bool
}

// loopItem is one emission of a loop.
type loopItem struct {
	loop *sfgl.Loop
	trip int
	body []item
	// freq is the per-iteration entry fraction when nested in an outer
	// loop (entries per outer iteration, capped at 1).
	freq float64
}

func (*blockItem) skItem() {}
func (*loopItem) skItem()  {}

type skeleton struct {
	items     []item
	truncated bool
}

type skeletonBuilder struct {
	g         *sfgl.Graph
	rng       *rand.Rand
	remaining map[int]float64 // node ID -> execution budget left
	itemCount int
	maxItems  int
	latches   map[int]bool // node IDs whose branch is a back edge
}

// buildSkeleton realizes the paper's generation loop: pick a random block
// weighted by remaining execution count; if it is inside a loop, generate
// that whole loop (outermost first, nested loops inside); otherwise chain
// along its hottest successors; decrement counts; repeat until the scaled
// SFGL is exhausted.
func buildSkeleton(g *sfgl.Graph, rng *rand.Rand, maxItems int) *skeleton {
	b := &skeletonBuilder{
		g:         g,
		rng:       rng,
		remaining: make(map[int]float64),
		maxItems:  maxItems,
		latches:   make(map[int]bool),
	}
	for _, n := range g.Nodes {
		b.remaining[n.ID] = float64(n.Count)
	}
	for _, l := range g.Loops {
		for _, e := range g.Edges {
			if e.To == l.Header && contains(l.Nodes, e.From) {
				b.latches[e.From] = true
			}
		}
	}

	sk := &skeleton{}
	for {
		id := b.pickWeighted()
		if id < 0 {
			break
		}
		if b.itemCount >= b.maxItems {
			sk.truncated = true
			break
		}
		n := b.g.Node(id)
		if l := b.outermostLoop(id); l != nil {
			sk.items = append(sk.items, b.emitLoop(l, 1))
			continue
		}
		// Straight-line region: emit the block, then follow the hottest
		// remaining successors (restart when the chain dies out, per the
		// paper).
		budget := b.remaining[id]
		if budget > 16 {
			// Hot block outside any surviving loop: wrap the whole chain
			// in a synthetic counted loop so code size stays bounded
			// while the execution count is preserved.
			trip := int(budget)
			var body []item
			body = append(body, b.emitBlockOnce(n, 1))
			for next := b.hottestSuccessor(id); next != nil; next = b.hottestSuccessor(next.ID) {
				body = append(body, b.emitBlockOnce(next, 1))
			}
			for _, it := range body {
				if bi, ok := it.(*blockItem); ok {
					b.remaining[bi.node.ID] -= float64(trip - 1) // emitBlockOnce took 1
				}
			}
			sk.items = append(sk.items, &loopItem{trip: trip, body: body, freq: 1})
			continue
		}
		sk.items = append(sk.items, b.emitBlockOnce(n, 1))
		for next := b.hottestSuccessor(id); next != nil; next = b.hottestSuccessor(next.ID) {
			if b.itemCount >= b.maxItems {
				sk.truncated = true
				break
			}
			sk.items = append(sk.items, b.emitBlockOnce(next, 1))
		}
	}
	return sk
}

// pickWeighted selects a node ID with probability proportional to its
// remaining count, or -1 when the graph is exhausted.
func (b *skeletonBuilder) pickWeighted() int {
	var total float64
	for _, n := range b.g.Nodes {
		if r := b.remaining[n.ID]; r >= 1 {
			total += r
		}
	}
	if total < 1 {
		return -1
	}
	x := b.rng.Float64() * total
	for _, n := range b.g.Nodes {
		r := b.remaining[n.ID]
		if r < 1 {
			continue
		}
		x -= r
		if x <= 0 {
			return n.ID
		}
	}
	// Floating-point slack: return the last eligible node.
	for i := len(b.g.Nodes) - 1; i >= 0; i-- {
		if b.remaining[b.g.Nodes[i].ID] >= 1 {
			return b.g.Nodes[i].ID
		}
	}
	return -1
}

// outermostLoop returns the top-level loop containing the node, or nil.
func (b *skeletonBuilder) outermostLoop(id int) *sfgl.Loop {
	l := b.g.InnermostLoopOf(id)
	if l == nil {
		return nil
	}
	for l.Parent != -1 {
		l = b.loopByID(l.Parent)
	}
	return l
}

func (b *skeletonBuilder) loopByID(id int) *sfgl.Loop {
	for _, l := range b.g.Loops {
		if l.ID == id {
			return l
		}
	}
	return nil
}

// emitBlockOnce emits one occurrence of a block and decrements its budget.
func (b *skeletonBuilder) emitBlockOnce(n *sfgl.Node, freq float64) *blockItem {
	b.remaining[n.ID]--
	b.itemCount++
	return &blockItem{node: n, freq: freq, latch: b.latches[n.ID]}
}

// hottestSuccessor picks the successor (outside loops) with the largest
// remaining budget, or nil when the chain ends.
func (b *skeletonBuilder) hottestSuccessor(id int) *sfgl.Node {
	var best *sfgl.Node
	var bestCount float64
	for _, e := range b.g.OutEdges(id) {
		r := b.remaining[e.To]
		if r < 1 {
			continue
		}
		if b.g.InnermostLoopOf(e.To) != nil {
			continue // loops are generated as wholes, not via chains
		}
		if r > bestCount {
			bestCount = r
			best = b.g.Node(e.To)
		}
	}
	return best
}

// emitLoop generates one entry of a loop — the loop's own blocks in block
// order with nested loops inserted at the position of their headers — and
// decrements every contained block's budget by its per-entry share.
func (b *skeletonBuilder) emitLoop(l *sfgl.Loop, freq float64) *loopItem {
	it := b.emitLoopNested(l, freq)
	entries := float64(l.Entries)
	if entries < 1 {
		entries = 1
	}
	for _, id := range l.Nodes {
		if n := b.g.Node(id); n != nil {
			b.remaining[id] -= float64(n.Count) / entries
		}
	}
	return it
}

// emitLoopNested builds a loop's structural body without touching budgets
// (emitLoop accounts for the entire nest in one step).
func (b *skeletonBuilder) emitLoopNested(l *sfgl.Loop, freq float64) *loopItem {
	trip := int(l.AvgTrip() + 0.5)
	if trip < 1 {
		trip = 1
	}
	it := &loopItem{loop: l, trip: trip, freq: freq}

	childOf := make(map[int]*sfgl.Loop)
	covered := make(map[int]bool)
	for _, c := range b.g.Loops {
		if c.Parent != l.ID {
			continue
		}
		childOf[c.Header] = c
		for _, id := range c.Nodes {
			covered[id] = true
		}
	}
	own := make([]int, 0, len(l.Nodes))
	for _, id := range l.Nodes {
		if !covered[id] {
			own = append(own, id)
		}
	}
	headers := make([]int, 0, len(childOf))
	for h := range childOf {
		headers = append(headers, h)
	}
	merged := append(append([]int(nil), own...), headers...)
	sort.Ints(merged)

	iters := float64(l.Iterations)
	if iters < 1 {
		iters = 1
	}
	b.itemCount++
	for _, id := range merged {
		if c, ok := childOf[id]; ok {
			entriesPerIter := float64(c.Entries) / iters
			if entriesPerIter > 1 {
				entriesPerIter = 1
			}
			it.body = append(it.body, b.emitLoopNested(c, entriesPerIter))
			continue
		}
		n := b.g.Node(id)
		if n == nil {
			continue // dropped during scale-down
		}
		perIter := float64(n.Count) / iters
		if perIter > 1 {
			perIter = 1
		}
		it.body = append(it.body, &blockItem{node: n, freq: perIter, latch: b.latches[id]})
		b.itemCount++
	}
	return it
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
