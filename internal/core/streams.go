package core

import (
	"fmt"

	"repro/internal/hlc"
	"repro/internal/sfgl"
)

// This file implements the stream-walker layer of the synthesizer: the
// translation of per-site stride streams (sfgl.Stream) into memory walkers.
// Where the Table I machinery gives every memory class one shared
// fixed-stride array, stream walkers are allocated per stride signature —
// a fractional-stride walk for regular sites (the index lives in
// quarter-element units and references shift it down, so miss rates are
// reproduced at ~3% granularity instead of the Table I classes' 12.5%
// steps), a pointer-chase walk over a shuffled index permutation for
// irregular sites (whose address stream no cache can pattern away, and
// whose advances form a load-to-load dependence chain), and scalar pools
// for always-hit sites. A walk advances one stride per reference sharing
// the statement: the per-class design advanced one shared index per
// statement, which diluted the clone's miss volume by the number of
// references sharing it. Sites profiled without streams (old profiles)
// keep the Table I class path untouched.

// Walker geometry. Stride arrays keep the Table I walking ranges (64KB,
// beyond the largest Fig. 7/8 cache); chase arrays are sized per miss
// rate. Pads give same-statement references line-spread offsets without
// re-masking.
const (
	strideWalkLen  = 16384 // int stride-walker walking range (64KB of 4-byte elements)
	strideWalkLenF = 8192  // float walking range (64KB of 8-byte elements)
	walkPad        = 128   // headroom for line-spread reference offsets
	refLineStep    = 8     // elements between same-statement refs (one 32B line)
	maxRefSlots    = walkPad/refLineStep - 1
)

// Chase working-set sizes and the miss-rate thresholds that select them.
// At the 8KB profiling cache a full-period chase over W bytes misses at
// roughly 1-8KB/W, so the three sizes land near 0, 0.5, and 0.875; the
// missScale feedback in Synthesize trues up the aggregate.
const (
	chaseSmallLen = 1024  // 4KB: fits the profiling cache — dependence, no misses
	chaseMidLen   = 4096  // 16KB
	chaseBigLen   = 16384 // 64KB
	chaseMidMiss  = 0.15
	chaseBigMiss  = 0.55
	// chaseStep is the permutation multiplier (≡ 1 mod 4, so the affine
	// map i -> i*step+1 mod 2^k is a full-period permutation for any
	// power-of-two length ≥ 4).
	chaseStep = 25033
	// chaseLineSpread spaces chase elements one cache line apart (8
	// 4-byte ints = 32B) for sites whose misses survive the wide
	// profiling cache: a dense chase of the same period fits mid-level
	// caches and its misses stop there, while the original's walk keeps
	// missing all the way to memory. Spreading multiplies the footprint
	// by 8 without growing the init loop (the permutation period — the
	// init cost — is unchanged).
	chaseLineSpread = 8
)

// Stream classification thresholds: a site is irregular when no single
// stride dominates and consecutive strides rarely repeat; it is resident
// (locality-bound) when its misses mostly vanish at the wide cache.
const (
	irregularTop1 = 0.7
	irregularReg  = 0.5
	residentRatio = 0.2
)

// walkerKind distinguishes stride walks, pointer chases, and scalar
// pools.
type walkerKind int

const (
	walkStride walkerKind = iota
	walkChase
	// walkScalar is a pool of scalar globals for always-hit sites: the
	// profile's scalar traffic is -O0 stack reloads, and a direct scalar
	// load is both denser and more faithful than a constant-indexed
	// array access.
	walkScalar
)

// scalarPool is the number of scalar globals a walkScalar walker rotates
// through (two cache lines — always hit, like the stack slots they model).
const scalarPool = 16

// walkerSpec is a walker's materialized signature; walkers are deduplicated
// on it, so sites with equal quantized behavior share arrays.
type walkerSpec struct {
	kind  walkerKind
	float bool
	// Stride walkers: the index advances qstep quarter-elements per
	// reference (references shift the index down two bits), encoding
	// fractional strides — fractional miss rates — without any extra
	// per-advance state. short walkers wrap at half the standard range:
	// their sites' working sets fit the wide profiling cache, so the
	// walk must stay second-level resident instead of streaming.
	qstep int
	short bool
	long  bool
	// xlong walkers (misses survive even the wide cache nearly intact)
	// stream over 16x the standard range so their misses reach memory
	// instead of re-warming mid-level caches.
	xlong bool
	// Chase walkers: the permutation length in elements, and the element
	// spacing (1 = dense, chaseLineSpread = one line per element).
	chaseLen int
	spread   int
}

// walker is one allocated stream walker.
type walker struct {
	walkerSpec
	id     int
	weight float64 // profiled access weight routed through this walker
}

// memRef names one memory-access source: a stream walker, or (w == nil)
// a legacy Table I class stream.
type memRef struct {
	w   *walker
	cls int
}

// small reports whether the ref is an always-hit source with no walking
// index (a legacy class-0 constant-index access or a scalar-pool global).
func (r memRef) small() bool {
	if r.w != nil {
		return r.w.kind == walkScalar
	}
	return r.cls == 0
}

// walker caps: stride walkers beyond the cap reuse the nearest existing
// signature so global count (and the clone's allocated footprint) stays
// bounded; chase walkers are naturally capped by their three sizes.
const maxStrideWalkers = 12

// refFor maps one profiled load/store token to its memory source. Tokens
// without a stream descriptor (pre-stream profiles) keep the Table I
// class path.
func (gen *generator) refFor(t tok, float bool) memRef {
	if t.stream == nil {
		return memRef{cls: gen.memClassOf(t)}
	}
	spec, _ := gen.streamSpec(t.stream, float)
	return memRef{w: gen.walkerForSpec(spec)}
}

// streamSpec classifies a stream descriptor into a walker signature.
// ok=false means the site is effectively scalar (always-hit) and should
// use the small constant-index array.
func (gen *generator) streamSpec(s *sfgl.Stream, float bool) (walkerSpec, bool) {
	m := s.MissRate * gen.missScale
	if m > 1 {
		m = 1
	}
	irregular := s.TopFrac(1) < irregularTop1 && s.Regularity < irregularReg
	if irregular && m < 0.02 && s.ShortReuse > 0.9 {
		irregular = false // hot window, no misses: scalar-like
	}
	// The two-point miss curve bounds the working set: a site whose
	// misses vanish at the wide cache must not stream past it.
	resident := s.MissRate > 0.02 && s.MissWide <= residentRatio*s.MissRate
	if irregular {
		ln := chaseSmallLen
		switch {
		case m >= chaseBigMiss:
			ln = chaseBigLen
		case m >= chaseMidMiss:
			ln = chaseMidLen
		}
		if resident && ln > chaseMidLen {
			ln = chaseMidLen
		}
		// High-miss chases whose misses survive the wide cache walk a
		// structure bigger than any mid-level cache: spread the elements
		// one line apart so the (budget-capped) permutation covers a
		// working set that misses to memory, like the original's.
		spread := 1
		if !resident && m >= chaseBigMiss && s.MissWide >= 0.5*s.MissRate {
			spread = chaseLineSpread
		}
		return walkerSpec{kind: walkChase, float: float, chaseLen: ln, spread: spread}, true
	}
	// Regular: fractional stride from the measured miss rate. A stride of
	// missRate*lineSize bytes reproduces the rate; quarter-elements are
	// 1 byte for int walkers and 2 for float ones.
	maxQ := 32
	if float {
		maxQ = 16
	}
	q := int(m*float64(maxQ) + 0.5)
	if q > maxQ {
		q = maxQ
	}
	if q == 0 {
		return walkerSpec{kind: walkScalar, float: float}, true // always-hit site
	}
	// Pure streaming (misses survive even the wide cache): quadruple the
	// range so the walk stays compulsory-cold instead of re-warming the
	// second level when compensation traffic laps the array; when the
	// wide-cache misses are nearly all of the narrow-cache ones the
	// stream never re-warms anything and the range grows 16x so its
	// misses go to memory on machines with mid-sized second levels.
	long := !resident && s.MissRate >= 0.05 && s.MissWide >= 0.7*s.MissRate
	xlong := long && s.MissRate >= 0.1 && s.MissWide >= 0.85*s.MissRate
	return walkerSpec{kind: walkStride, float: float, qstep: q, short: resident, long: long, xlong: xlong}, true
}

// walkerForSpec returns the walker for a signature, materializing it if
// the caps allow and mapping to the nearest existing walker otherwise.
func (gen *generator) walkerForSpec(spec walkerSpec) *walker {
	if w, ok := gen.walkerBySig[spec]; ok {
		return w
	}
	requested := spec
	if spec.kind == walkChase {
		// Cap total chase-permutation footprint: the init loop in main is
		// real dynamic work, and a small clone cannot afford to shuffle
		// 16K elements before doing anything. Downgrade until it fits.
		for spec.chaseLen > chaseSmallLen && float64(spec.chaseLen) > gen.chaseBudget {
			spec.chaseLen /= 4
		}
		if w, ok := gen.walkerBySig[spec]; ok {
			gen.walkerBySig[requested] = w // later same-signature sites share it
			return w
		}
		gen.chaseBudget -= float64(spec.chaseLen)
	} else {
		n := 0
		for _, w := range gen.walkers {
			if w.kind == walkStride && w.float == spec.float {
				n++
			}
		}
		if n >= maxStrideWalkers {
			return gen.nearestStride(spec)
		}
	}
	w := &walker{walkerSpec: spec, id: len(gen.walkers)}
	gen.walkers = append(gen.walkers, w)
	gen.walkerBySig[spec] = w
	gen.walkerBySig[requested] = w
	return w
}

// nearestStride finds the existing stride walker whose quarter-element
// stride is closest to the requested signature.
func (gen *generator) nearestStride(spec walkerSpec) *walker {
	var best *walker
	bestD := 1 << 30
	for _, w := range gen.walkers {
		if w.kind != walkStride || w.float != spec.float {
			continue
		}
		d := w.qstep - spec.qstep
		if d < 0 {
			d = -d
		}
		if d < bestD {
			best, bestD = w, d
		}
	}
	return best // caps guarantee at least one exists
}

// --- naming ---

func (w *walker) arrName() string {
	switch {
	case w.kind == walkChase:
		return fmt.Sprintf("cA%d", w.id)
	case w.short && w.float:
		return "shF" // wide-resident walkers share one arena per type:
	case w.short:
		return "shA" // their sites share buffers in the original too
	case w.float:
		return fmt.Sprintf("sF%d", w.id)
	}
	return fmt.Sprintf("sA%d", w.id)
}

// dataName is the array data references read and write. For stride walkers
// it is the walking array itself; chase walkers keep a separate payload
// array (cD/cF) so that stores through the walker cannot corrupt the cA
// permutation the advance chain follows.
func (w *walker) dataName() string {
	if w.kind != walkChase {
		return w.arrName()
	}
	if w.float {
		return fmt.Sprintf("cF%d", w.id)
	}
	return fmt.Sprintf("cD%d", w.id)
}

func (w *walker) idxName() string { return fmt.Sprintf("wp%d", w.id) }

// scalarName returns the j-th scalar of a walkScalar pool.
func (w *walker) scalarName(j int) string {
	if w.float {
		return fmt.Sprintf("zf%d_%d", w.id, j)
	}
	return fmt.Sprintf("zi%d_%d", w.id, j)
}

// chaseSpan is a chase walker's walked element range: the permutation
// period times the element spacing.
func (w *walker) chaseSpan() int {
	if w.spread > 1 {
		return w.chaseLen * w.spread
	}
	return w.chaseLen
}

func (w *walker) walkLen() int {
	if w.kind == walkChase {
		return w.chaseLen
	}
	n := strideWalkLen
	if w.float {
		n = strideWalkLenF
	}
	switch {
	case w.short:
		n /= 2 // 32KB: misses the small caches, stays wide-resident
	case w.xlong:
		n *= 16 // 1MB: streaming misses reach memory past mid-sized L2s
	case w.long:
		n *= 4 // 256KB: compulsory-cold streaming
	}
	return n
}

// --- reference and advance emission ---

// walkerRefOff returns the walker's data reference at an element offset
// from its index. Stride-walker indices live in quarter-element units and
// are shifted down here; chase indices are element-valued already.
func (gen *generator) walkerRefOff(w *walker, off int) *hlc.IndexExpr {
	idx := hlc.Expr(&hlc.VarRef{Name: w.idxName()})
	if w.kind == walkStride {
		idx = &hlc.BinaryExpr{Op: hlc.Shr, X: idx, Y: intLit(2)}
	}
	if off != 0 {
		idx = &hlc.BinaryExpr{Op: hlc.Plus, X: idx, Y: intLit(int64(off))}
	}
	return &hlc.IndexExpr{Name: w.dataName(), Idx: idx}
}

// srcWalk returns the reference for one memory source at a statement slot.
// Walker slots are spaced a cache line apart so each profiled access the
// statement translates contributes its own line visit (one shared index
// advanced per statement must not dilute the per-access miss rate by the
// number of references sharing it).
func (gen *generator) srcWalk(r memRef, slot int, float bool) hlc.LValue {
	if r.w != nil {
		if r.w.kind == walkScalar {
			return &hlc.VarRef{Name: r.w.scalarName(slot % scalarPool)}
		}
		if slot > maxRefSlots {
			slot = slot % (maxRefSlots + 1)
		}
		return gen.walkerRefOff(r.w, slot*refLineStep)
	}
	if float {
		return gen.floatStreamWalk(r.cls, int64(slot))
	}
	return gen.intStreamWalk(r.cls, int64(slot))
}

// intTwin returns the integer-array walker spec with the same byte-level
// advance behavior as spec. The compensation loop is integer arithmetic,
// so float-site access weight compensates through an int walker whose
// strides cover the same bytes per advance (int quarter-elements are 1
// byte, so rb bytes decompose exactly).
func intTwin(spec walkerSpec) walkerSpec {
	if !spec.float {
		return spec
	}
	spec.float = false
	if spec.kind == walkStride {
		spec.qstep *= 2 // float quarters are 2 bytes, int quarters 1
	}
	return spec
}

// advanceWalker emits a walker's index update on behalf of mult
// references.
//
// Stride walkers move mult stride-lengths per statement: all lanes of one
// linear walk share its line stream (the trailing lane always hits lines
// the leading lane fetched), so per-reference miss rates survive only if
// the walk covers one stride per reference. The index lives in
// quarter-element units (references shift it down two bits), so the
// fractional strides that encode fractional miss rates are a single
// masked add:
//
//	wp = (wp + mult*qstep) & (4*len - 1)
//
// Chase walkers load their next index from the permutation itself,
//
//	wp = cA[wp]
//
// which makes consecutive walker positions a load-to-load dependence chain
// over an unpredictable address stream — the irregular-site behavior one
// fixed stride per class could not express. One jump per statement
// suffices for any mult: a jump teleports the index, so the line-spread
// reference slots each land on their own cold line.
func (gen *generator) advanceWalker(w *walker, mult int, weight float64) []hlc.Stmt {
	idx := &hlc.VarRef{Name: w.idxName()}
	if w.kind == walkScalar || mult < 1 || (w.kind == walkStride && w.qstep == 0) {
		return nil
	}
	if w.kind == walkChase {
		gen.account(stmtFootprint{loads: 2, stores: 1, ialu: 1}, weight)
		return []hlc.Stmt{&hlc.AssignStmt{
			LHS: idx, Op: hlc.Assign,
			RHS: &hlc.IndexExpr{Name: w.arrName(), Idx: &hlc.VarRef{Name: w.idxName()}},
		}}
	}
	mask := int64(4*w.walkLen() - 1)
	gen.account(stmtFootprint{loads: 1, stores: 1, ialu: 2}, weight)
	return []hlc.Stmt{&hlc.AssignStmt{
		LHS: idx, Op: hlc.Assign,
		RHS: &hlc.BinaryExpr{Op: hlc.Amp,
			X: &hlc.BinaryExpr{Op: hlc.Plus, X: idx, Y: intLit(int64(mult * w.qstep))},
			Y: intLit(mask)},
	}}
}

// advancesFor emits index updates for the sources a statement's references
// touched — one advance per distinct source, scaled by how many references
// shared it — and charges each source's profiled weight for compensation
// targeting. Small always-hit sources never advance. refs must hold one
// entry per emitted reference.
func (gen *generator) advancesFor(refs []memRef, float bool, weight float64) []hlc.Stmt {
	countW := map[int]int{}
	countC := map[int]int{}
	var orderW []*walker
	var orderC []int
	for _, r := range refs {
		if r.w != nil {
			r.w.weight += weight
			if countW[r.w.id] == 0 {
				orderW = append(orderW, r.w)
			}
			countW[r.w.id]++
			continue
		}
		gen.classWeight[boolIdx(float)][r.cls] += weight
		if r.cls == 0 {
			continue
		}
		if countC[r.cls] == 0 {
			orderC = append(orderC, r.cls)
		}
		countC[r.cls]++
	}
	var out []hlc.Stmt
	for _, w := range orderW {
		out = append(out, gen.advanceWalker(w, countW[w.id], weight)...)
	}
	for _, c := range orderC {
		out = append(out, gen.advanceStmt(c, float, weight))
	}
	return out
}

func boolIdx(b bool) int {
	if b {
		return 1
	}
	return 0
}

// walkerDecls returns the global declarations for all materialized
// walkers, in allocation order.
func (gen *generator) walkerDecls() []*hlc.VarDecl {
	var out []*hlc.VarDecl
	for _, w := range gen.walkers {
		if w.kind == walkScalar {
			typ := hlc.TypeInt
			if w.float {
				typ = hlc.TypeFloat
			}
			for j := 0; j < scalarPool; j++ {
				out = append(out, &hlc.VarDecl{Name: w.scalarName(j), Type: typ})
			}
			continue
		}
		if w.kind == walkChase {
			out = append(out, &hlc.VarDecl{Name: w.arrName(), Type: hlc.TypeInt,
				ArrayLen: w.chaseSpan() + walkPad})
			typ := hlc.TypeInt
			if w.float {
				typ = hlc.TypeFloat
			}
			out = append(out, &hlc.VarDecl{Name: w.dataName(), Type: typ,
				ArrayLen: w.chaseSpan() + walkPad})
			out = append(out, &hlc.VarDecl{Name: w.idxName(), Type: hlc.TypeInt})
			continue
		}
		typ := hlc.TypeInt
		if w.float {
			typ = hlc.TypeFloat
		}
		if !w.short || !gen.sharedArena[boolIdx(w.float)] {
			if w.short {
				gen.sharedArena[boolIdx(w.float)] = true
			}
			out = append(out, &hlc.VarDecl{Name: w.arrName(), Type: typ,
				ArrayLen: w.walkLen() + walkPad})
		}
		out = append(out, &hlc.VarDecl{Name: w.idxName(), Type: hlc.TypeInt})
	}
	return out
}

// chaseInitStmts builds the permutation-shuffle loops that run at the top
// of main: cA[i] = (i*chaseStep + 1) & (len-1), a full-period affine
// permutation, so following cA from any start visits every element in a
// pseudo-random line order. Spread walkers scale both the slot and the
// stored successor by the element spacing: the walked positions are
// i*spread, one line apart, and the init loop stays O(period).
func (gen *generator) chaseInitStmts() []hlc.Stmt {
	var out []hlc.Stmt
	for _, w := range gen.walkers {
		if w.kind != walkChase {
			continue
		}
		iter := fmt.Sprintf("ci%d", w.id)
		slot := hlc.Expr(&hlc.VarRef{Name: iter})
		perm := hlc.Expr(&hlc.BinaryExpr{Op: hlc.Amp,
			X: &hlc.BinaryExpr{Op: hlc.Plus,
				X: &hlc.BinaryExpr{Op: hlc.Star, X: &hlc.VarRef{Name: iter}, Y: intLit(chaseStep)},
				Y: intLit(1)},
			Y: intLit(int64(w.chaseLen - 1))})
		if w.spread > 1 {
			slot = &hlc.BinaryExpr{Op: hlc.Star, X: slot, Y: intLit(int64(w.spread))}
			perm = &hlc.BinaryExpr{Op: hlc.Star, X: perm, Y: intLit(int64(w.spread))}
		}
		body := []hlc.Stmt{&hlc.AssignStmt{
			LHS: &hlc.IndexExpr{Name: w.arrName(), Idx: slot},
			Op:  hlc.Assign,
			RHS: perm,
		}}
		out = append(out, &hlc.ForStmt{
			Init: &hlc.DeclStmt{Decl: &hlc.VarDecl{Name: iter, Type: hlc.TypeInt, Init: intLit(0)}},
			Cond: &hlc.BinaryExpr{Op: hlc.Lt, X: &hlc.VarRef{Name: iter}, Y: intLit(int64(w.chaseLen))},
			Post: &hlc.AssignStmt{LHS: &hlc.VarRef{Name: iter}, Op: hlc.PlusEq, RHS: intLit(1)},
			Body: &hlc.Block{Stmts: body},
		})
		gen.account(stmtFootprint{loads: 2, stores: 2, ialu: 5, branches: 1}, float64(w.chaseLen))
	}
	return out
}

// --- hard-branch entropy ---

// Hard-branch LCG parameters: a full-period 16-bit affine generator
// (multiplier ≡ 1 mod 4, increment odd).
const (
	hbMul  = 25173
	hbInc  = 13849
	hbMask = 65535
)

// hardBranchState returns the per-site entropy variable for a profiled
// hard branch, allocating one on first use. ScaleDown gives every node its
// own BranchInfo copy, so the pointer identifies the static branch site
// across all its skeleton occurrences.
func (gen *generator) hardBranchState(b *sfgl.BranchInfo) string {
	id, ok := gen.hardBranches[b]
	if !ok {
		id = len(gen.hardBranches)
		gen.hardBranches[b] = id
	}
	return fmt.Sprintf("hb%d", id)
}

// hardBranchStmts emits the data-entropy conditional for a hard branch:
// the site's LCG state advances, and the branch tests its low bits against
// the profiled taken rate. Unlike a modulo test on a loop iterator — a
// short periodic pattern every history-based predictor learns perfectly —
// the LCG sequence is unlearnable at predictor scale, so the clone's hard
// branches mispredict like the original's data-dependent ones.
func (gen *generator) hardBranchStmts(b *sfgl.BranchInfo, thenS, elseS []hlc.Stmt, weight float64) []hlc.Stmt {
	name := gen.hardBranchState(b)
	state := &hlc.VarRef{Name: name}
	k := int64(b.TakenRate*256 + 0.5)
	if k < 1 {
		k = 1
	}
	if k > 255 {
		k = 255
	}
	gen.account(stmtFootprint{loads: 1, stores: 1, ialu: 5, branches: 1}, weight)
	adv := &hlc.AssignStmt{
		LHS: state, Op: hlc.Assign,
		RHS: &hlc.BinaryExpr{Op: hlc.Amp,
			X: &hlc.BinaryExpr{Op: hlc.Plus,
				X: &hlc.BinaryExpr{Op: hlc.Star, X: state, Y: intLit(hbMul)},
				Y: intLit(hbInc)},
			Y: intLit(hbMask)},
	}
	cond := &hlc.BinaryExpr{Op: hlc.Lt,
		X: &hlc.BinaryExpr{Op: hlc.Amp, X: state, Y: intLit(255)},
		Y: intLit(k)}
	ifs := &hlc.IfStmt{Cond: cond, Then: &hlc.Block{Stmts: thenS}}
	if len(elseS) > 0 {
		ifs.Else = &hlc.Block{Stmts: elseS}
	}
	return []hlc.Stmt{adv, ifs}
}

// hardBranchDecls returns the entropy-state globals in allocation order.
func (gen *generator) hardBranchDecls() []*hlc.VarDecl {
	var out []*hlc.VarDecl
	for id := 0; id < len(gen.hardBranches); id++ {
		out = append(out, &hlc.VarDecl{Name: fmt.Sprintf("hb%d", id), Type: hlc.TypeInt})
	}
	return out
}
