package core

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/vm"
)

// profileSrc compiles src at O0 (as the paper prescribes) and profiles it.
func profileSrc(t *testing.T, name, src string) *profile.Profile {
	t.Helper()
	cp := hlc.MustCheck(src)
	prog, err := compiler.Compile(cp, isa.AMD64, compiler.O0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profile.Collect(prog, nil, name, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runClone compiles and executes a synthesized clone, returning the VM
// result and the dynamic mix.
func runClone(t *testing.T, clone *hlc.Program, target *isa.Desc, level compiler.OptLevel) (vm.Result, [isa.NumClasses]uint64) {
	t.Helper()
	cp, err := hlc.Check(clone)
	if err != nil {
		t.Fatalf("clone does not check: %v", err)
	}
	prog, err := compiler.Compile(cp, target, level)
	if err != nil {
		t.Fatalf("clone does not compile: %v", err)
	}
	var mix [isa.NumClasses]uint64
	m := vm.New(prog)
	res, err := m.Run(vm.Config{MaxInstrs: 100_000_000, Hook: func(ev *vm.Event) {
		mix[ev.Instr.Class()]++
	}})
	if err != nil {
		t.Fatalf("clone traps: %v", err)
	}
	return res, mix
}

const loopyWorkload = `
int table[4096];
int acc;
int mixv(int x) { return (x * 31 + 7) & 4095; }
void main() {
  int seed = 1;
  for (int i = 0; i < 4096; i++) {
    seed = mixv(seed + i);
    table[i] = seed;
  }
  for (int r = 0; r < 40; r++) {
    for (int i = 0; i < 4096; i++) {
      if (table[i] > 2048) { acc += table[i] >> 3; } else { acc -= 1; }
    }
  }
  print(acc);
}`

func TestSynthesizeRoundTrip(t *testing.T) {
	p := profileSrc(t, "loopy", loopyWorkload)
	clone, rep, err := Synthesize(p, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reduction < 2 {
		t.Errorf("expected a substantial reduction factor, got %d", rep.Reduction)
	}
	res, _ := runClone(t, clone, isa.AMD64, compiler.O0)
	if res.DynInstrs == 0 {
		t.Fatal("clone executed nothing")
	}
	// The clone must be much shorter-running than the original...
	if res.DynInstrs*2 > p.TotalDyn {
		t.Errorf("clone too long: %d vs original %d", res.DynInstrs, p.TotalDyn)
	}
	// ...but within a factor ~4 of the configured target.
	if res.DynInstrs < DefaultTargetDyn/4 || res.DynInstrs > DefaultTargetDyn*4 {
		t.Errorf("clone dynamic count %d far from target %d", res.DynInstrs, DefaultTargetDyn)
	}
}

func TestSynthesizeCoverage(t *testing.T) {
	// Table II's claim: patterns cover >95% of instructions. Our
	// threshold is slightly softer (>85%) since coverage depends on the
	// compiler's exact instruction selection.
	p := profileSrc(t, "loopy", loopyWorkload)
	_, rep, err := Synthesize(p, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage < 0.85 {
		t.Errorf("pattern coverage %.3f below 0.85", rep.Coverage)
	}
	if rep.Coverage > 1.0001 {
		t.Errorf("coverage > 1: %f", rep.Coverage)
	}
}

func TestSynthesizeDeterministicBySeed(t *testing.T) {
	p := profileSrc(t, "loopy", loopyWorkload)
	a, _, err := Synthesize(p, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Synthesize(p, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := Synthesize(p, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if hlc.Print(a) != hlc.Print(b) {
		t.Error("same seed should reproduce the clone exactly")
	}
	if hlc.Print(a) == hlc.Print(c) {
		t.Error("different seeds should vary the clone")
	}
}

func TestCloneRunsAtAllLevelsAndISAs(t *testing.T) {
	p := profileSrc(t, "loopy", loopyWorkload)
	clone, _, err := Synthesize(p, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []*isa.Desc{isa.X86, isa.AMD64, isa.IA64} {
		var ref vm.Result
		for i, level := range compiler.Levels {
			res, _ := runClone(t, clone, target, level)
			if i == 0 {
				ref = res
				continue
			}
			if res.OutputHash != ref.OutputHash {
				t.Errorf("%s %v: clone output diverges across levels", target.Name, level)
			}
		}
	}
}

func TestCloneMixResemblesOriginal(t *testing.T) {
	p := profileSrc(t, "loopy", loopyWorkload)
	clone, _, err := Synthesize(p, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	_, mix := runClone(t, clone, isa.AMD64, compiler.O0)
	var cloneTotal uint64
	for _, c := range mix {
		cloneTotal += c
	}
	origLoads := float64(p.Mix[isa.ClassLoad]) / float64(p.TotalDyn)
	cloneLoads := float64(mix[isa.ClassLoad]) / float64(cloneTotal)
	origBranches := float64(p.Mix[isa.ClassBranch]) / float64(p.TotalDyn)
	cloneBranches := float64(mix[isa.ClassBranch]) / float64(cloneTotal)
	// Fig. 6-style agreement: same ballpark, not exact.
	if diff := cloneLoads - origLoads; diff < -0.15 || diff > 0.15 {
		t.Errorf("load fraction: original %.3f, clone %.3f", origLoads, cloneLoads)
	}
	if diff := cloneBranches - origBranches; diff < -0.10 || diff > 0.10 {
		t.Errorf("branch fraction: original %.3f, clone %.3f", origBranches, cloneBranches)
	}
}

func TestCloneContainsLoopsAndFunctions(t *testing.T) {
	p := profileSrc(t, "loopy", loopyWorkload)
	clone, rep, err := Synthesize(p, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	src := hlc.Print(clone)
	if !strings.Contains(src, "for (") {
		t.Error("clone should contain for loops (SFGL loop annotation)")
	}
	if rep.Functions < 1 {
		t.Error("clone should have work functions")
	}
	if clone.Func("main") == nil {
		t.Fatal("clone has no main")
	}
	// The obfuscation property at the source level: no identifier of the
	// original survives (Section V.E precondition).
	for _, ident := range []string{"table", "acc", "mixv", "seed"} {
		if strings.Contains(src, ident) {
			t.Errorf("clone leaks original identifier %q", ident)
		}
	}
}

func TestSynthesizeFixedReduction(t *testing.T) {
	p := profileSrc(t, "loopy", loopyWorkload)
	cloneBig, repBig, err := Synthesize(p, Config{Reduction: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cloneSmall, repSmall, err := Synthesize(p, Config{Reduction: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if repBig.Reduction != 10 || repSmall.Reduction != 100 {
		t.Fatalf("explicit reduction not honored: %d/%d", repBig.Reduction, repSmall.Reduction)
	}
	resBig, _ := runClone(t, cloneBig, isa.AMD64, compiler.O0)
	resSmall, _ := runClone(t, cloneSmall, isa.AMD64, compiler.O0)
	if resSmall.DynInstrs >= resBig.DynInstrs {
		t.Errorf("R=100 clone (%d instrs) should run shorter than R=10 (%d)",
			resSmall.DynInstrs, resBig.DynInstrs)
	}
}

func TestSynthesizeFloatWorkload(t *testing.T) {
	src := `
float sig[1024];
float outp[1024];
void main() {
  for (int i = 0; i < 1024; i++) { sig[i] = itof(i) * 0.01; }
  for (int r = 0; r < 30; r++) {
    for (int i = 0; i < 1024; i++) {
      outp[i] = sin(sig[i]) * 0.5 + sqrt(fabs(sig[i]));
    }
  }
  print(outp[10]);
}`
	p := profileSrc(t, "fft-ish", src)
	clone, _, err := Synthesize(p, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_, mix := runClone(t, clone, isa.AMD64, compiler.O0)
	var total uint64
	for _, c := range mix {
		total += c
	}
	origFP := float64(p.Mix[isa.ClassFPAdd]+p.Mix[isa.ClassFPMul]+p.Mix[isa.ClassFPDiv]) / float64(p.TotalDyn)
	cloneFP := float64(mix[isa.ClassFPAdd]+mix[isa.ClassFPMul]+mix[isa.ClassFPDiv]) / float64(total)
	if origFP < 0.05 {
		t.Fatalf("test workload should be FP-heavy, got %.3f", origFP)
	}
	if cloneFP < origFP/3 {
		t.Errorf("clone FP fraction %.3f too far below original %.3f", cloneFP, origFP)
	}
}

func TestConsolidate(t *testing.T) {
	p1 := profileSrc(t, "w1", loopyWorkload)
	p2 := profileSrc(t, "w2", `
int buf[256];
void main() {
  for (int r = 0; r < 500; r++) {
    for (int i = 0; i < 256; i++) { buf[i] = buf[i] ^ (i * 3); }
  }
  print(buf[0]);
}`)
	merged, err := Consolidate("both", p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if merged.TotalDyn != p1.TotalDyn+p2.TotalDyn {
		t.Error("consolidated totals should add")
	}
	if len(merged.Graph.Nodes) != len(p1.Graph.Nodes)+len(p2.Graph.Nodes) {
		t.Error("consolidated nodes should concatenate")
	}
	// IDs must stay unique.
	seen := map[int]bool{}
	for _, n := range merged.Graph.Nodes {
		if seen[n.ID] {
			t.Fatalf("duplicate node ID %d after consolidation", n.ID)
		}
		seen[n.ID] = true
	}
	clone, _, err := Synthesize(merged, Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := runClone(t, clone, isa.AMD64, compiler.O0)
	if res.DynInstrs == 0 {
		t.Fatal("consolidated clone executed nothing")
	}
	if _, err := Consolidate("empty"); err == nil {
		t.Error("expected error for empty consolidation")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, _, err := Synthesize(nil, Config{}); err == nil {
		t.Error("expected error for nil profile")
	}
}

func TestModuloFor(t *testing.T) {
	cases := []struct {
		taken, trans float64
	}{
		{0.5, 0.5}, {0.3, 0.3}, {0.9, 0.1}, {0.1, 0.9}, {0.0, 0.0}, {1.0, 1.0},
	}
	for _, tc := range cases {
		m, k := moduloFor(tc.taken, tc.trans)
		if m < 2 || m > 64 {
			t.Errorf("moduloFor(%v,%v): m=%d out of range", tc.taken, tc.trans, m)
		}
		if k < 1 || k > m-1 {
			t.Errorf("moduloFor(%v,%v): k=%d out of range for m=%d", tc.taken, tc.trans, k, m)
		}
	}
	// A 50% taken rate should split the period roughly in half.
	m, k := moduloFor(0.5, 0.5)
	frac := float64(k) / float64(m)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("moduloFor(0.5): k/m = %.2f, want ≈0.5", frac)
	}
}
