package core

import (
	"fmt"
	"math/rand"

	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/sfgl"
)

// Stream geometry: stride arrays must exceed the largest cache of the
// Fig. 7/8 sweep (32KB) so that stride-class miss rates materialize. The
// walking index is masked only when it advances (pi = (pi+s) & mask), and
// arrays carry streamPad extra elements so accesses can use small constant
// offsets without re-masking — keeping the compiled access as dense in
// loads as the original code's (index load + element load).
const (
	intStreamLen    = 16384 // walking range: 64KB of 4-byte elements
	intStreamMask   = intStreamLen - 1
	floatStreamLen  = 8192 // walking range: 64KB of 8-byte elements
	floatStreamMask = floatStreamLen - 1
	streamPad       = 16 // headroom for constant offsets past the index
	smallStreamLen  = 64 // class 0 (always hit) working set
	guardLen        = 64
)

// generator turns a skeleton into an HLC program.
type generator struct {
	g   *sfgl.Graph
	rng *rand.Rand

	usedInt   [sfgl.NumMemClasses]bool
	usedFloat [sfgl.NumMemClasses]bool
	guardUsed bool

	// Mix accounting for the paper's compensation mechanism: target
	// accumulates the instruction classes of translated profile blocks,
	// emitted accumulates the estimated O0 footprint of generated
	// statements; deficits steer pattern variants.
	target  [isa.NumClasses]float64
	emitted [isa.NumClasses]float64

	// Pattern coverage (Table II's >95% claim), dynamically weighted.
	consumedInstrs float64
	totalInstrs    float64

	// compDyn is the dynamic-instruction budget for the mix-compensation
	// loop (0 = derive a warm start from the footprint deficit);
	// compDensity reports the loads-per-instruction density the emitted
	// loop achieves, for Synthesize's feedback calibration.
	compDyn     float64
	compDensity float64

	funcs []*hlc.FuncDecl
}

func newGenerator(g *sfgl.Graph, rng *rand.Rand) *generator {
	return &generator{g: g, rng: rng}
}

func (gen *generator) coverage() float64 {
	if gen.totalInstrs == 0 {
		return 1
	}
	cov := gen.consumedInstrs / gen.totalInstrs
	if cov > 1 {
		cov = 1
	}
	return cov
}

func (gen *generator) usedClasses() []int {
	var out []int
	for c := 0; c < sfgl.NumMemClasses; c++ {
		if gen.usedInt[c] || gen.usedFloat[c] {
			out = append(out, c)
		}
	}
	return out
}

// program assembles the full clone: functions from skeleton chunks, global
// stream arrays and indices, and a main that calls every function and
// prints stream heads so no compiler can discard the computation.
func (gen *generator) program(items []item) *hlc.Program {
	for start := 0; start < len(items); {
		size := 3 + gen.rng.Intn(6)
		end := start + size
		if end > len(items) {
			end = len(items)
		}
		name := fmt.Sprintf("work%d", len(gen.funcs))
		fn := &hlc.FuncDecl{
			Name: name,
			Ret:  hlc.TypeVoid,
			Body: &hlc.Block{Stmts: gen.stmts(items[start:end], nil, 1)},
		}
		gen.funcs = append(gen.funcs, fn)
		start = end
	}
	if len(gen.funcs) == 0 {
		// Degenerate profile: still produce a valid, runnable clone.
		gen.funcs = append(gen.funcs, &hlc.FuncDecl{
			Name: "work0", Ret: hlc.TypeVoid,
			Body: &hlc.Block{Stmts: []hlc.Stmt{
				&hlc.AssignStmt{LHS: gen.intStreamRef(0, 0), Op: hlc.Assign, RHS: intLit(1)},
			}},
		})
		gen.usedInt[0] = true
	}
	if fn := gen.mixCompensationFunc(); fn != nil {
		gen.funcs = append(gen.funcs, fn)
	}

	prog := &hlc.Program{}
	// Globals: stream arrays and walking indices for every used class.
	for c := 0; c < sfgl.NumMemClasses; c++ {
		if gen.usedInt[c] {
			prog.Globals = append(prog.Globals,
				&hlc.VarDecl{Name: intStreamName(c), Type: hlc.TypeInt, ArrayLen: intLenFor(c)})
			if c > 0 {
				prog.Globals = append(prog.Globals,
					&hlc.VarDecl{Name: intIdxName(c), Type: hlc.TypeInt})
			}
		}
		if gen.usedFloat[c] {
			prog.Globals = append(prog.Globals,
				&hlc.VarDecl{Name: floatStreamName(c), Type: hlc.TypeFloat, ArrayLen: floatLenFor(c)})
			if c > 0 {
				prog.Globals = append(prog.Globals,
					&hlc.VarDecl{Name: floatIdxName(c), Type: hlc.TypeInt})
			}
		}
	}
	if gen.guardUsed {
		prog.Globals = append(prog.Globals,
			&hlc.VarDecl{Name: "gKeep", Type: hlc.TypeInt, ArrayLen: guardLen})
	}

	prog.Funcs = append(prog.Funcs, gen.funcs...)

	// main: run the work functions in order, then print anchors.
	var mainStmts []hlc.Stmt
	for _, f := range gen.funcs {
		mainStmts = append(mainStmts, &hlc.ExprStmt{X: &hlc.CallExpr{Name: f.Name}})
	}
	for c := 0; c < sfgl.NumMemClasses; c++ {
		if gen.usedInt[c] {
			mainStmts = append(mainStmts, &hlc.PrintStmt{Args: []hlc.Expr{
				&hlc.IndexExpr{Name: intStreamName(c), Idx: intLit(0)}}})
		}
		if gen.usedFloat[c] {
			mainStmts = append(mainStmts, &hlc.PrintStmt{Args: []hlc.Expr{
				&hlc.IndexExpr{Name: floatStreamName(c), Idx: intLit(0)}}})
		}
	}
	prog.Funcs = append(prog.Funcs, &hlc.FuncDecl{
		Name: "main", Ret: hlc.TypeVoid, Body: &hlc.Block{Stmts: mainStmts},
	})
	return prog
}

// compDensityEstimate is the load density Synthesize assumes for the
// compensation loop before one has been generated and its exact density
// reported via compDensity.
const compDensityEstimate = 0.6

// mixCompensationFunc is the paper's global mix compensation: after pattern
// translation, a final work function makes up the clone's load deficit with
// a counted loop of load-dense stride statements. Translation overhead
// (loop iterators, walking indices, address masks) is constant- and
// ALU-heavy, so without this step clones systematically under-represent
// loads relative to their originals (Fig. 6). The loop's dynamic size comes
// from gen.compDyn, which Synthesize calibrates by executing the candidate
// clone and measuring its actual mix; a zero budget emits nothing.
func (gen *generator) mixCompensationFunc() *hlc.FuncDecl {
	if gen.compDyn < 1 {
		return nil
	}
	// Rotate through the walking classes already in use so the extra
	// traffic keeps the clone's Table I stride behavior; a clone with no
	// walking traffic at all gets one mid-stride class.
	var classes []int
	for c := 1; c < sfgl.NumMemClasses; c++ {
		if gen.usedInt[c] || gen.usedFloat[c] {
			classes = append(classes, c)
		}
	}
	if len(classes) == 0 {
		classes = []int{2}
	}

	// Compound assignment over a sum of stride walks is the densest load
	// idiom the compiler emits: A[pa] += B[pb] + ... + G[pg] with six
	// source terms is 14 loads in 22 -O0 instructions. The store between
	// statements keeps local CSE from collapsing the loads at higher
	// optimization levels.
	const stmtsPerIter = 12
	const termsPerStmt = 6
	var body []hlc.Stmt
	var loadsPerIter, instrsPerIter float64
	for s := 0; s < stmtsPerIter; s++ {
		dst := classes[s%len(classes)]
		rhs := hlc.Expr(gen.intStreamWalk(classes[(s+1)%len(classes)], int64(s%streamPad)))
		for t := 1; t < termsPerStmt; t++ {
			rhs = &hlc.BinaryExpr{Op: hlc.Plus, X: rhs,
				Y: gen.intStreamWalk(classes[(s+1+t)%len(classes)], int64((s+t)%streamPad))}
		}
		body = append(body, &hlc.AssignStmt{
			LHS: gen.intStreamWalk(dst, 0), Op: hlc.PlusEq, RHS: rhs,
		})
		// Each walking reference costs an index load and an element load;
		// term offsets add a constant and an add; chained terms and the
		// compound assignment add one ALU op each, plus the final store.
		loadsPerIter += 2 + 2*termsPerStmt
		instrsPerIter += 3*termsPerStmt + 4
	}
	body = append(body, gen.advances(false, 0, classes...)...)
	loadsPerIter += float64(len(classes)) // each advance reloads its index
	instrsPerIter += 6 * float64(len(classes))
	loadsPerIter += 2 // loop iterator compare and increment
	instrsPerIter += 9

	trip := int(gen.compDyn / instrsPerIter)
	if trip < 1 {
		return nil
	}
	if trip > 1<<20 {
		trip = 1 << 20
	}
	gen.compDensity = loadsPerIter / instrsPerIter
	iter := "mcomp"
	gen.account(stmtFootprint{
		loads:    loadsPerIter,
		stores:   stmtsPerIter + float64(len(classes)),
		ialu:     float64(stmtsPerIter*termsPerStmt) + 2*float64(len(classes)) + 2,
		branches: 1,
	}, float64(trip))
	return &hlc.FuncDecl{
		Name: fmt.Sprintf("work%d", len(gen.funcs)),
		Ret:  hlc.TypeVoid,
		Body: &hlc.Block{Stmts: []hlc.Stmt{&hlc.ForStmt{
			Init: &hlc.DeclStmt{Decl: &hlc.VarDecl{Name: iter, Type: hlc.TypeInt, Init: intLit(0)}},
			Cond: &hlc.BinaryExpr{Op: hlc.Lt, X: &hlc.VarRef{Name: iter}, Y: intLit(int64(trip))},
			Post: &hlc.AssignStmt{LHS: &hlc.VarRef{Name: iter}, Op: hlc.PlusEq, RHS: intLit(1)},
			Body: &hlc.Block{Stmts: body},
		}}},
	}
}

// loopCtx tracks enclosing synthetic loop iterator names.
type loopCtx []string

func (c loopCtx) innermost() (string, bool) {
	if len(c) == 0 {
		return "", false
	}
	return c[len(c)-1], true
}

func (gen *generator) stmts(items []item, ctx loopCtx, w float64) []hlc.Stmt {
	var out []hlc.Stmt
	for _, it := range items {
		switch v := it.(type) {
		case *loopItem:
			out = append(out, gen.loopStmt(v, ctx, w)...)
		case *blockItem:
			out = append(out, gen.blockStmts(v, ctx, w)...)
		}
	}
	if len(out) == 0 {
		// Never emit an empty function/loop body: keep one anchor store.
		gen.usedInt[0] = true
		out = append(out, &hlc.AssignStmt{
			LHS: gen.intStreamRef(0, 0), Op: hlc.PlusEq, RHS: intLit(1)})
	}
	return out
}

func (gen *generator) loopStmt(it *loopItem, ctx loopCtx, w float64) []hlc.Stmt {
	iter := fmt.Sprintf("li%d", len(ctx))
	wBody := w * it.freq * float64(it.trip)
	body := gen.stmts(it.body, append(ctx, iter), wBody)
	loop := &hlc.ForStmt{
		Init: &hlc.DeclStmt{Decl: &hlc.VarDecl{Name: iter, Type: hlc.TypeInt, Init: intLit(0)}},
		Cond: &hlc.BinaryExpr{Op: hlc.Lt, X: &hlc.VarRef{Name: iter}, Y: intLit(int64(it.trip))},
		Post: &hlc.AssignStmt{LHS: &hlc.VarRef{Name: iter}, Op: hlc.PlusEq, RHS: intLit(1)},
		Body: &hlc.Block{Stmts: body},
	}
	gen.account(stmtFootprint{branches: 1, ialu: 2, loads: 2, stores: 1}, w*it.freq*float64(it.trip))
	if it.freq < 0.95 {
		return []hlc.Stmt{gen.wrapFreq(loop, it.freq, ctx, w)}
	}
	return []hlc.Stmt{loop}
}

// blockStmts translates one basic-block occurrence: Table II pattern
// recognition over its instruction types, then branch modeling, then
// frequency wrapping.
func (gen *generator) blockStmts(it *blockItem, ctx loopCtx, w float64) []hlc.Stmt {
	n := it.node
	wEff := w * it.freq
	if it.freq < 0.05 {
		wEff = 0 // never-executed arm
	}
	stmts := gen.translate(n, wEff)
	if n.Branch != nil && !it.latch {
		stmts = append(stmts, gen.branchStmt(n.Branch, ctx, wEff))
	}
	if it.freq < 0.95 && len(stmts) > 0 {
		// Low-frequency blocks execute conditionally; below 5% the paper
		// drops them into the never-executed arm of an easy branch whose
		// body prints results.
		if it.freq < 0.05 {
			gen.guardUsed = true
			return []hlc.Stmt{gen.neverTakenIf(stmts, w)}
		}
		return []hlc.Stmt{gen.wrapFreq(&hlc.Block{Stmts: stmts}, it.freq, ctx, w)}
	}
	return stmts
}

// wrapFreq makes stmt execute approximately frac of the time using a
// modulo test on the innermost loop iterator (the paper's hard-branch
// mechanism); outside loops it falls back to a guard test.
func (gen *generator) wrapFreq(stmt hlc.Stmt, frac float64, ctx loopCtx, w float64) hlc.Stmt {
	iter, ok := ctx.innermost()
	if !ok {
		gen.guardUsed = true
		if frac >= 0.5 {
			return gen.alwaysTakenIf([]hlc.Stmt{stmt}, w)
		}
		return gen.neverTakenIf([]hlc.Stmt{stmt}, w)
	}
	m, k := moduloFor(frac, 0.5)
	gen.account(stmtFootprint{branches: 1, ialu: 2, loads: 1}, w)
	return &hlc.IfStmt{
		Cond: &hlc.BinaryExpr{Op: hlc.Lt,
			X: &hlc.BinaryExpr{Op: hlc.Amp, X: &hlc.VarRef{Name: iter}, Y: intLit(int64(m - 1))},
			Y: intLit(int64(k))},
		Then: toBlock(stmt),
	}
}

// moduloFor picks modulo parameters (m, k) so that (i mod m) < k holds for
// about takenFrac of consecutive i, with a period reflecting transRate.
// m is a power of two so the test compiles to a mask (i & (m-1)) < k:
// originals have essentially no integer divides, and a `%` here would
// flood the clone's mix with idiv-class instructions the profile lacks.
func moduloFor(takenFrac, transRate float64) (int, int) {
	m := 4
	if transRate > 0 {
		m = int(2.0/transRate + 0.5)
	}
	for p := 2; p <= 64; p *= 2 {
		if p >= m {
			m = p
			break
		}
	}
	if m > 64 {
		m = 64
	}
	k := int(takenFrac*float64(m) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > m-1 {
		k = m - 1
	}
	return m, k
}

// branchStmt models a non-loop conditional branch per Section III.B.4.
func (gen *generator) branchStmt(b *sfgl.BranchInfo, ctx loopCtx, w float64) hlc.Stmt {
	gen.account(stmtFootprint{branches: 1, ialu: 1, loads: 1}, w)
	if !b.Hard {
		gen.guardUsed = true
		if b.TakenRate >= 0.5 {
			return gen.alwaysTakenIf([]hlc.Stmt{gen.smallStmt(w)}, w)
		}
		return gen.neverTakenIf([]hlc.Stmt{gen.smallStmt(0)}, w)
	}
	iter, ok := ctx.innermost()
	if !ok {
		gen.guardUsed = true
		return gen.neverTakenIf([]hlc.Stmt{gen.smallStmt(0)}, w)
	}
	m, k := moduloFor(b.TakenRate, b.TransRate)
	gen.account(stmtFootprint{ialu: 2}, w)
	return &hlc.IfStmt{
		Cond: &hlc.BinaryExpr{Op: hlc.Lt,
			X: &hlc.BinaryExpr{Op: hlc.Amp, X: &hlc.VarRef{Name: iter}, Y: intLit(int64(m - 1))},
			Y: intLit(int64(k))},
		Then: toBlock(gen.smallStmt(w * b.TakenRate)),
		Else: toBlock(gen.smallStmt(w * (1 - b.TakenRate))),
	}
}

// neverTakenIf wraps statements in a condition that is never true at run
// time (the guard array is never written), adding the paper's print-the-
// results filler so the compiler must keep everything reachable.
func (gen *generator) neverTakenIf(inner []hlc.Stmt, w float64) hlc.Stmt {
	gen.guardUsed = true
	gen.account(stmtFootprint{branches: 1, ialu: 1, loads: 1}, w)
	body := append([]hlc.Stmt{}, inner...)
	body = append(body, gen.printFiller())
	return &hlc.IfStmt{
		Cond: &hlc.BinaryExpr{Op: hlc.Eq, X: gen.guardRef(), Y: intLit(99)},
		Then: &hlc.Block{Stmts: body},
	}
}

// alwaysTakenIf wraps statements in a condition that always holds; the dead
// else arm prints results.
func (gen *generator) alwaysTakenIf(inner []hlc.Stmt, w float64) hlc.Stmt {
	gen.guardUsed = true
	gen.account(stmtFootprint{branches: 1, ialu: 1, loads: 1}, w)
	return &hlc.IfStmt{
		Cond: &hlc.BinaryExpr{Op: hlc.Lt, X: gen.guardRef(), Y: intLit(99)},
		Then: &hlc.Block{Stmts: inner},
		Else: &hlc.Block{Stmts: []hlc.Stmt{gen.printFiller()}},
	}
}

func (gen *generator) guardRef() hlc.Expr {
	return &hlc.IndexExpr{Name: "gKeep", Idx: intLit(int64(gen.rng.Intn(guardLen)))}
}

func (gen *generator) printFiller() hlc.Stmt {
	cls := gen.anyUsedIntClass()
	return &hlc.PrintStmt{Args: []hlc.Expr{gen.intStreamRef(cls, int64(gen.rng.Intn(8)))}}
}

// smallStmt emits a minimal stride statement for branch arms; w is the
// expected execution weight of the arm.
func (gen *generator) smallStmt(w float64) hlc.Stmt {
	cls := gen.anyUsedIntClass()
	gen.account(stmtFootprint{loads: 2, stores: 1, ialu: 2}, w)
	return &hlc.AssignStmt{
		LHS: gen.intStreamWalk(cls, 0),
		Op:  hlc.Assign,
		RHS: &hlc.BinaryExpr{Op: hlc.Plus, X: gen.intStreamWalk(cls, 1), Y: intLit(int64(1 + gen.rng.Intn(9)))},
	}
}

func (gen *generator) anyUsedIntClass() int {
	for c := range gen.usedInt {
		if gen.usedInt[c] {
			return c
		}
	}
	gen.usedInt[0] = true
	return 0
}

func toBlock(s hlc.Stmt) *hlc.Block {
	if b, ok := s.(*hlc.Block); ok {
		return b
	}
	return &hlc.Block{Stmts: []hlc.Stmt{s}}
}

func intLit(v int64) *hlc.IntLit { return &hlc.IntLit{Value: v} }

// --- stream naming and references ---

func intStreamName(c int) string   { return fmt.Sprintf("mStream%d", c) }
func floatStreamName(c int) string { return fmt.Sprintf("fStream%d", c) }
func intIdxName(c int) string      { return fmt.Sprintf("pi%d", c) }
func floatIdxName(c int) string    { return fmt.Sprintf("pf%d", c) }

func intLenFor(c int) int {
	if c == 0 {
		return smallStreamLen
	}
	return intStreamLen + streamPad
}

func floatLenFor(c int) int {
	if c == 0 {
		return smallStreamLen
	}
	return floatStreamLen + streamPad
}

// intStreamRef returns mStreamC[off] (a fixed element).
func (gen *generator) intStreamRef(c int, off int64) *hlc.IndexExpr {
	gen.usedInt[c] = true
	return &hlc.IndexExpr{Name: intStreamName(c), Idx: intLit(off)}
}

// intStreamWalk returns mStreamC[piC + off]: the stride-walking reference
// of Section III.B.4 / Table I. The index stays in range because only the
// advance statement changes it (masked there) and off is below streamPad.
// Class 0 (always hit) uses plain constant indices into a small array, like
// the paper's Fig. 3 example.
func (gen *generator) intStreamWalk(c int, off int64) *hlc.IndexExpr {
	gen.usedInt[c] = true
	if c == 0 {
		return &hlc.IndexExpr{Name: intStreamName(0),
			Idx: intLit(int64(gen.rng.Intn(smallStreamLen)))}
	}
	idx := hlc.Expr(&hlc.VarRef{Name: intIdxName(c)})
	if off != 0 {
		idx = &hlc.BinaryExpr{Op: hlc.Plus, X: idx, Y: intLit(off % streamPad)}
	}
	return &hlc.IndexExpr{Name: intStreamName(c), Idx: idx}
}

func (gen *generator) floatStreamWalk(c int, off int64) *hlc.IndexExpr {
	gen.usedFloat[c] = true
	if c == 0 {
		return &hlc.IndexExpr{Name: floatStreamName(0),
			Idx: intLit(int64(gen.rng.Intn(smallStreamLen)))}
	}
	idx := hlc.Expr(&hlc.VarRef{Name: floatIdxName(c)})
	if off != 0 {
		idx = &hlc.BinaryExpr{Op: hlc.Plus, X: idx, Y: intLit(off % streamPad)}
	}
	return &hlc.IndexExpr{Name: floatStreamName(c), Idx: idx}
}

// advanceStmt walks a stream index by its Table I stride, wrapping with a
// power-of-two mask so subsequent offset accesses stay within the padded
// array.
func (gen *generator) advanceStmt(c int, float bool, w float64) hlc.Stmt {
	gen.account(stmtFootprint{loads: 1, stores: 1, ialu: 2}, w)
	name := intIdxName(c)
	mask := int64(intStreamMask)
	step := int64(sfgl.StrideBytes(c) / isa.IntBytes)
	if float {
		name = floatIdxName(c)
		mask = floatStreamMask
		step = int64((sfgl.StrideBytes(c) + isa.FloatBytes - 1) / isa.FloatBytes)
	}
	if step < 1 {
		step = 1 // class 0 walks within its tiny always-hit array
	}
	return &hlc.AssignStmt{
		LHS: &hlc.VarRef{Name: name},
		Op:  hlc.Assign,
		RHS: &hlc.BinaryExpr{Op: hlc.Amp,
			X: &hlc.BinaryExpr{Op: hlc.Plus, X: &hlc.VarRef{Name: name}, Y: intLit(step)},
			Y: intLit(mask)},
	}
}

// stmtFootprint estimates the O0 instruction classes a generated statement
// compiles to; the compensation accounting runs on these estimates.
type stmtFootprint struct {
	loads, stores, ialu, fpu, branches float64
}

func (gen *generator) account(f stmtFootprint, w float64) {
	gen.emitted[isa.ClassLoad] += f.loads * w
	gen.emitted[isa.ClassStore] += f.stores * w
	gen.emitted[isa.ClassIntALU] += f.ialu * w
	gen.emitted[isa.ClassFPAdd] += f.fpu * w
	gen.emitted[isa.ClassBranch] += f.branches * w
}
