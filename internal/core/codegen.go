package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/sfgl"
)

// Stream geometry: stride arrays must exceed the largest cache of the
// Fig. 7/8 sweep (32KB) so that stride-class miss rates materialize. The
// walking index is masked only when it advances (pi = (pi+s) & mask), and
// arrays carry streamPad extra elements so accesses can use small constant
// offsets without re-masking — keeping the compiled access as dense in
// loads as the original code's (index load + element load).
const (
	intStreamLen    = 16384 // walking range: 64KB of 4-byte elements
	intStreamMask   = intStreamLen - 1
	floatStreamLen  = 8192 // walking range: 64KB of 8-byte elements
	floatStreamMask = floatStreamLen - 1
	streamPad       = 16 // headroom for constant offsets past the index
	smallStreamLen  = 64 // class 0 (always hit) working set
	guardLen        = 64
)

// generator turns a skeleton into an HLC program.
type generator struct {
	g   *sfgl.Graph
	rng *rand.Rand

	usedInt   [sfgl.NumMemClasses]bool
	usedFloat [sfgl.NumMemClasses]bool
	guardUsed bool

	// Stream-walker state (streams.go): per-signature walkers for
	// stream-profiled sites, profiled access weight per legacy class
	// stream, and the hard-branch entropy sites.
	walkers      []*walker
	walkerBySig  map[walkerSpec]*walker
	classWeight  [2][sfgl.NumMemClasses]float64
	hardBranches map[*sfgl.BranchInfo]int
	sharedArena  [2]bool // shared short-walker arena declared (int, float)
	compBrUsed   bool    // the compensation loop allocated its entropy state
	aluChainUsed bool    // the compensation loop published its ALU-chain sink
	fpDivThird   bool    // FP compensation mixes divides into its chains
	fpAccs       int     // loop-carried FP accumulator globals allocated

	// missScale is Synthesize's miss-rate feedback knob: walker strides
	// and chase working sets are derived from site miss rates multiplied
	// by it, so the measured clone's aggregate miss rate can be steered
	// onto the profile's. chaseBudget caps the total chase-permutation
	// elements (their init loops are real dynamic work).
	missScale   float64
	chaseBudget float64

	// Mix accounting for the paper's compensation mechanism: target
	// accumulates the instruction classes of translated profile blocks,
	// emitted accumulates the estimated O0 footprint of generated
	// statements; deficits steer pattern variants.
	target  [isa.NumClasses]float64
	emitted [isa.NumClasses]float64

	// Pattern coverage (Table II's >95% claim), dynamically weighted.
	consumedInstrs float64
	totalInstrs    float64

	// compDyn is the dynamic-instruction budget for the mix-compensation
	// loop (0 = derive a warm start from the footprint deficit);
	// compDensity reports the loads-per-instruction density the emitted
	// loop achieves and compTrips its emitted trip count, for Synthesize's
	// feedback calibration. fpShare is the fraction of compensation
	// statements emitted as float chains, closing the FP-operation
	// dilution the same way compDyn closes the load one; brPerIter is the
	// number of branch statements per compensation iteration, closing the
	// branch-density dilution with the profile's own hardness mix.
	compDyn     float64
	compDensity float64
	compTrips   int
	fpShare     float64
	brPerIter   float64

	funcs []*hlc.FuncDecl
}

func newGenerator(g *sfgl.Graph, rng *rand.Rand) *generator {
	return &generator{
		g: g, rng: rng,
		walkerBySig:  make(map[walkerSpec]*walker),
		hardBranches: make(map[*sfgl.BranchInfo]int),
		missScale:    1,
		chaseBudget:  float64(chaseBigLen),
	}
}

func (gen *generator) coverage() float64 {
	if gen.totalInstrs == 0 {
		return 1
	}
	cov := gen.consumedInstrs / gen.totalInstrs
	if cov > 1 {
		cov = 1
	}
	return cov
}

func (gen *generator) usedClasses() []int {
	var out []int
	for c := 0; c < sfgl.NumMemClasses; c++ {
		if gen.usedInt[c] || gen.usedFloat[c] {
			out = append(out, c)
		}
	}
	return out
}

// program assembles the full clone: functions from skeleton chunks, global
// stream arrays and indices, and a main that calls every function and
// prints stream heads so no compiler can discard the computation.
func (gen *generator) program(items []item) *hlc.Program {
	for start := 0; start < len(items); {
		size := 3 + gen.rng.Intn(6)
		end := start + size
		if end > len(items) {
			end = len(items)
		}
		name := fmt.Sprintf("work%d", len(gen.funcs))
		fn := &hlc.FuncDecl{
			Name: name,
			Ret:  hlc.TypeVoid,
			Body: &hlc.Block{Stmts: gen.stmts(items[start:end], nil, 1)},
		}
		gen.funcs = append(gen.funcs, fn)
		start = end
	}
	if len(gen.funcs) == 0 {
		// Degenerate profile: still produce a valid, runnable clone.
		gen.funcs = append(gen.funcs, &hlc.FuncDecl{
			Name: "work0", Ret: hlc.TypeVoid,
			Body: &hlc.Block{Stmts: []hlc.Stmt{
				&hlc.AssignStmt{LHS: gen.intStreamRef(0, 0), Op: hlc.Assign, RHS: intLit(1)},
			}},
		})
		gen.usedInt[0] = true
	}
	if fn := gen.mixCompensationFunc(); fn != nil {
		gen.funcs = append(gen.funcs, fn)
	}

	prog := &hlc.Program{}
	// Globals: stream arrays and walking indices for every used class.
	for c := 0; c < sfgl.NumMemClasses; c++ {
		if gen.usedInt[c] {
			prog.Globals = append(prog.Globals,
				&hlc.VarDecl{Name: intStreamName(c), Type: hlc.TypeInt, ArrayLen: intLenFor(c)})
			if c > 0 {
				prog.Globals = append(prog.Globals,
					&hlc.VarDecl{Name: intIdxName(c), Type: hlc.TypeInt})
			}
		}
		if gen.usedFloat[c] {
			prog.Globals = append(prog.Globals,
				&hlc.VarDecl{Name: floatStreamName(c), Type: hlc.TypeFloat, ArrayLen: floatLenFor(c)})
			if c > 0 {
				prog.Globals = append(prog.Globals,
					&hlc.VarDecl{Name: floatIdxName(c), Type: hlc.TypeInt})
			}
		}
	}
	prog.Globals = append(prog.Globals, gen.walkerDecls()...)
	for i := 0; i < gen.fpAccs; i++ {
		prog.Globals = append(prog.Globals,
			&hlc.VarDecl{Name: fpAccName(i), Type: hlc.TypeFloat})
	}
	prog.Globals = append(prog.Globals, gen.hardBranchDecls()...)
	if gen.compBrUsed {
		prog.Globals = append(prog.Globals, &hlc.VarDecl{Name: "hbc", Type: hlc.TypeInt})
	}
	if gen.aluChainUsed {
		prog.Globals = append(prog.Globals, &hlc.VarDecl{Name: "uax", Type: hlc.TypeInt})
	}
	if gen.guardUsed {
		prog.Globals = append(prog.Globals,
			&hlc.VarDecl{Name: "gKeep", Type: hlc.TypeInt, ArrayLen: guardLen})
	}

	prog.Funcs = append(prog.Funcs, gen.funcs...)

	// main: shuffle the chase permutations, run the work functions in
	// order, then print anchors.
	mainStmts := gen.chaseInitStmts()
	for _, f := range gen.funcs {
		mainStmts = append(mainStmts, &hlc.ExprStmt{X: &hlc.CallExpr{Name: f.Name}})
	}
	for c := 0; c < sfgl.NumMemClasses; c++ {
		if gen.usedInt[c] {
			mainStmts = append(mainStmts, &hlc.PrintStmt{Args: []hlc.Expr{
				&hlc.IndexExpr{Name: intStreamName(c), Idx: intLit(0)}}})
		}
		if gen.usedFloat[c] {
			mainStmts = append(mainStmts, &hlc.PrintStmt{Args: []hlc.Expr{
				&hlc.IndexExpr{Name: floatStreamName(c), Idx: intLit(0)}}})
		}
	}
	for _, w := range gen.walkers {
		if w.kind == walkScalar {
			mainStmts = append(mainStmts, &hlc.PrintStmt{Args: []hlc.Expr{
				&hlc.VarRef{Name: w.scalarName(0)}}})
			continue
		}
		mainStmts = append(mainStmts, &hlc.PrintStmt{Args: []hlc.Expr{
			&hlc.IndexExpr{Name: w.arrName(), Idx: intLit(0)}}})
		if w.kind == walkChase {
			mainStmts = append(mainStmts, &hlc.PrintStmt{Args: []hlc.Expr{
				&hlc.IndexExpr{Name: w.dataName(), Idx: intLit(0)}}})
		}
	}
	for i := 0; i < gen.fpAccs; i++ {
		mainStmts = append(mainStmts, &hlc.PrintStmt{Args: []hlc.Expr{
			&hlc.VarRef{Name: fpAccName(i)}}})
	}
	if gen.aluChainUsed {
		mainStmts = append(mainStmts, &hlc.PrintStmt{Args: []hlc.Expr{
			&hlc.VarRef{Name: "uax"}}})
	}
	prog.Funcs = append(prog.Funcs, &hlc.FuncDecl{
		Name: "main", Ret: hlc.TypeVoid, Body: &hlc.Block{Stmts: mainStmts},
	})
	return prog
}

// compDensityEstimate is the load density Synthesize assumes for the
// compensation loop before one has been generated and its exact density
// reported via compDensity.
const compDensityEstimate = 0.6

// compSlots is the number of memory sources the compensation loop rotates
// through per iteration.
const compSlots = 12

// compSources returns the integer memory sources the compensation loop
// rotates through, allocated proportionally to each source's profiled
// access weight (largest remainder, descending weight). This is what makes
// the compensation traffic carry the profile's per-stream miss mix: a
// profile dominated by always-hit scalar sites compensates with
// constant-index loads, one with a hot irregular site compensates through
// its chase walker, and the clone's aggregate miss rate survives the added
// load volume. Legacy profiles without stream descriptors fall back to the
// walking classes in use, the pre-stream behavior.
func (gen *generator) compSources(float bool) []memRef {
	type cand struct {
		ref    memRef
		weight float64
	}
	var cands []cand
	var total float64
	for _, w := range gen.walkers {
		if w.weight <= 0 {
			continue
		}
		ref := memRef{w: w}
		switch {
		case float && !w.float:
			continue
		case !float && w.float:
			ref = memRef{w: gen.walkerForSpec(intTwin(w.walkerSpec))}
		}
		cands = append(cands, cand{ref, w.weight})
		total += w.weight
	}
	for c := 0; c < sfgl.NumMemClasses; c++ {
		wgt := gen.classWeight[boolIdx(float)][c]
		if wgt <= 0 {
			continue
		}
		ref := memRef{cls: c}
		if c == 0 {
			// Scalar weight compensates through a scalar pool, the same
			// dense always-hit idiom the translated sites use.
			ref = memRef{w: gen.walkerForSpec(walkerSpec{kind: walkScalar, float: float})}
		}
		cands = append(cands, cand{ref, wgt})
		total += wgt
	}
	if total == 0 {
		if float {
			return []memRef{{w: gen.walkerForSpec(walkerSpec{kind: walkScalar, float: true})}}
		}
		var out []memRef
		for c := 1; c < sfgl.NumMemClasses; c++ {
			if gen.usedInt[c] || gen.usedFloat[c] {
				out = append(out, memRef{cls: c})
			}
		}
		if len(out) == 0 {
			out = []memRef{{cls: 2}}
		}
		return out
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].weight > cands[j].weight })
	var out []memRef
	for _, c := range cands {
		n := int(float64(compSlots)*c.weight/total + 0.5)
		if n == 0 && len(out) == 0 {
			n = 1
		}
		for i := 0; i < n && len(out) < compSlots; i++ {
			out = append(out, c.ref)
		}
		if len(out) >= compSlots {
			break
		}
	}
	for len(out) < compSlots {
		out = append(out, cands[0].ref)
	}
	// Cap walking sources at a third of the slots: walker references are
	// markedly less load-dense than scalar ones, and an over-walked loop
	// cannot reach load-heavy profiles' fractions within the size
	// ceiling. The miss volume trimmed here comes back through the
	// missScale feedback on the translated walkers.
	nonSmall := 0
	for i, r := range out {
		if !r.small() {
			nonSmall++
			if nonSmall > compSlots/3 {
				out[i] = memRef{w: gen.walkerForSpec(walkerSpec{kind: walkScalar, float: float})}
			}
		}
	}
	return out
}

// refCost estimates one compensation reference's -O0 footprint.
func refCost(r memRef) (loads, instrs float64) {
	if r.w != nil && r.w.kind == walkScalar {
		return 1, 1.2
	}
	if r.small() {
		return 1, 2
	}
	return 2, 4
}

// advCost estimates one source's per-iteration advance footprint.
func advCost(r memRef) (loads, instrs float64) {
	switch {
	case r.small():
		return 0, 0
	case r.w == nil:
		return 1, 4
	case r.w.kind == walkChase:
		return 2, 3
	}
	return 1, 4
}

// branchMixture summarizes the scaled profile's conditional branches: the
// dynamic fraction executed at hard (entropy-worthy) sites, and those hard
// sites ordered by execution weight for the compensation loop to draw
// taken rates from.
func (gen *generator) branchMixture() (hardFrac float64, hard []*sfgl.BranchInfo) {
	var total, hardTotal float64
	for _, n := range gen.g.Nodes {
		if n.Branch == nil {
			continue
		}
		total += float64(n.Branch.Total)
		if n.Branch.Hard {
			hardTotal += float64(n.Branch.Total)
			hard = append(hard, n.Branch)
		}
	}
	sort.SliceStable(hard, func(i, j int) bool { return hard[i].Total > hard[j].Total })
	if total == 0 {
		return 0, hard
	}
	return hardTotal / total, hard
}

// mixCompensationFunc is the paper's global mix compensation: after pattern
// translation, a final work function makes up the clone's load deficit with
// a counted loop of load-dense statements over the clone's own memory
// sources (see compSources). Translation overhead (loop iterators, walking
// indices, address masks) is constant- and ALU-heavy, so without this step
// clones systematically under-represent loads relative to their originals
// (Fig. 6). The loop's dynamic size comes from gen.compDyn, which
// Synthesize calibrates by executing the candidate clone and measuring its
// actual mix; a zero budget emits nothing.
func (gen *generator) mixCompensationFunc() *hlc.FuncDecl {
	if gen.compDyn < 1 {
		return nil
	}
	srcs := gen.compSources(false)
	nFloat := int(float64(compSlots)*gen.fpShare + 0.5)
	var fsrcs []memRef
	if nFloat > 0 {
		fsrcs = gen.compSources(true)
	}

	// Compound assignment over a sum of walks is the densest load idiom
	// the compiler emits. The store between statements keeps local CSE
	// from collapsing the loads at higher optimization levels. The first
	// nFloat statements are float multiply-add chains over the clone's
	// float sources — FP compensation riding the same loop.
	// termsPerStmt loads feed each slot; subTerms of them go into each
	// C-sized sub-statement (the flush granularity of the local chains).
	const termsPerStmt = 8
	const subTerms = 1
	const iter = "mcomp"
	var body []hlc.Stmt
	var emitted, emittedF []memRef
	var loadsPerIter, instrsPerIter, fpPerIter, storesPerIter float64
	// Scalar references rotate through a pool of four per statement:
	// at -O0 every occurrence is its own reload (like the stack traffic
	// it models), and at higher levels CSE registerizes the repeats —
	// reproducing how optimization shrinks the original (Fig. 5).
	slotOf := func(r memRef, raw int) int {
		if r.w != nil && r.w.kind == walkScalar {
			return raw % 4
		}
		return raw % maxRefSlots
	}
	for s := 0; s < compSlots; s++ {
		if s < nFloat {
			// Float slots are loop-carried accumulator chains: a local
			// scalar accumulates the statement's FP-op mixture, so each
			// iteration's chain starts from the previous iteration's
			// result. The accumulator is a function local on purpose: at
			// -O0 it lives in a stack slot and the recurrence serializes
			// through the timing model's store-to-load forwarding, while
			// mem2reg at -O1+ turns it into a register chain — the same
			// O0-to-O1 transition the original's locals go through.
			acc := &hlc.VarRef{Name: fpAccLocal(s)}
			if s+1 > gen.fpAccs {
				gen.fpAccs = s + 1
			}
			rhs := hlc.Expr(acc)
			loadsPerIter, instrsPerIter = loadsPerIter+1, instrsPerIter+1.2
			for t := 1; t < termsPerStmt; t++ {
				term := fsrcs[(s+1+t)%len(fsrcs)]
				op := hlc.Plus
				if t%2 == 1 {
					op = hlc.Star
					if gen.fpDivThird && t%4 == 1 {
						// FP-divide-heavy profiles chain a 24-cycle divide
						// into the accumulator's dependence spine (IEEE: a
						// zero divisor yields Inf, never a trap).
						op = hlc.Slash
					}
				}
				rhs = &hlc.BinaryExpr{Op: op, X: rhs,
					Y: gen.srcWalk(term, slotOf(term, s+t), true)}
				l, in := refCost(term)
				loadsPerIter, instrsPerIter = loadsPerIter+l, instrsPerIter+in+1
				fpPerIter++
				emittedF = append(emittedF, term)
				if t%subTerms == 0 && t < termsPerStmt-1 {
					// Flush the partial chain into the accumulator, C
					// statement style. At -O0 the store and reload
					// serialize the sub-statements through forwarding;
					// mem2reg erases both at -O1+.
					body = append(body, &hlc.AssignStmt{LHS: acc, Op: hlc.Assign, RHS: rhs})
					rhs = hlc.Expr(acc)
					loadsPerIter, instrsPerIter = loadsPerIter+1, instrsPerIter+2
					storesPerIter++
				}
			}
			body = append(body, &hlc.AssignStmt{LHS: acc, Op: hlc.Assign, RHS: rhs})
			instrsPerIter += 2
			storesPerIter++
			continue
		}
		pool := srcs
		dst := pool[s%len(pool)]
		first := pool[(s+1)%len(pool)]
		// Integer slots decompose into C-sized sub-statements chained
		// through a named local: at -O0 every sub-statement reloads and
		// re-stores the local (the stack traffic real -O0 code drowns
		// in, serialized by forwarding), and mem2reg erases the local at
		// -O1+, shrinking and parallelizing the slot the way
		// optimization shrinks the original.
		mt := &hlc.VarRef{Name: fmt.Sprintf("mt%d", s)}
		rhs := hlc.Expr(gen.srcWalk(first, slotOf(first, s), false))
		l, in := refCost(first)
		loadsPerIter, instrsPerIter = loadsPerIter+l, instrsPerIter+in
		declared := false
		for t := 1; t < termsPerStmt; t++ {
			term := pool[(s+1+t)%len(pool)]
			rhs = &hlc.BinaryExpr{Op: hlc.Plus, X: rhs,
				Y: gen.srcWalk(term, slotOf(term, s+t), false)}
			l, in = refCost(term)
			loadsPerIter, instrsPerIter = loadsPerIter+l, instrsPerIter+in+1
			emitted = append(emitted, term)
			if t%subTerms == 0 && t < termsPerStmt-1 {
				if !declared {
					body = append(body, &hlc.DeclStmt{Decl: &hlc.VarDecl{
						Name: mt.Name, Type: hlc.TypeInt, Init: rhs}})
					declared = true
					instrsPerIter++
				} else {
					body = append(body, &hlc.AssignStmt{LHS: mt, Op: hlc.Assign, RHS: rhs})
					instrsPerIter += 2
					loadsPerIter++
				}
				rhs = hlc.Expr(mt)
				storesPerIter++
			}
		}
		if declared {
			// The final sub-statement reloads the local.
			loadsPerIter, instrsPerIter = loadsPerIter+1, instrsPerIter+1
		}
		body = append(body, &hlc.AssignStmt{
			LHS: gen.srcWalk(dst, slotOf(dst, s), false), Op: hlc.PlusEq, RHS: rhs,
		})
		l, in = refCost(dst)
		loadsPerIter, instrsPerIter = loadsPerIter+l, instrsPerIter+in+2
		storesPerIter++
		emitted = append(emitted, first, dst)
	}
	seen := map[memRef]bool{}
	for _, r := range append(append([]memRef{}, srcs...), fsrcs...) {
		if seen[r] {
			continue
		}
		seen[r] = true
		l, in := advCost(r)
		loadsPerIter, instrsPerIter = loadsPerIter+l, instrsPerIter+in
	}
	body = append(body, gen.advancesFor(emitted, false, 0)...)
	body = append(body, gen.advancesFor(emittedF, true, 0)...)
	loadsPerIter += 2 // loop iterator compare and increment
	instrsPerIter += 9

	// ALU compensation: pure register arithmetic over rotating locals, in
	// proportion to the profile's integer-ALU share. This is the mass
	// that separates optimization-friendly originals from memory-bound
	// ones: at -O0 every statement is two stack reloads and a spill
	// around the arithmetic, and at -O1+ mem2reg melts it into
	// register-resident work that wide machines overlap — so an ALU-heavy
	// profile's clone speeds up under optimization (and on wide cores)
	// the way its original does, instead of staying pinned to the memory
	// traffic the globals-based slots can never shed.
	nA := 0
	if totalT := gen.target[isa.ClassLoad] + gen.target[isa.ClassStore] +
		gen.target[isa.ClassIntALU] + gen.target[isa.ClassFPAdd] +
		gen.target[isa.ClassBranch]; totalT > 0 {
		nA = min(int(gen.target[isa.ClassIntALU]/totalT*48+0.5), 32)
	}
	aluLocals := min(nA, 4)
	for j := 0; j < nA; j++ {
		ua := &hlc.VarRef{Name: fmt.Sprintf("ua%d", j%aluLocals)}
		other := hlc.Expr(&hlc.VarRef{Name: fmt.Sprintf("ua%d", (j+1)%aluLocals)})
		if j%3 == 2 {
			other = &hlc.VarRef{Name: iter} // loop-varying, never folds
		}
		body = append(body, &hlc.AssignStmt{
			LHS: ua, Op: hlc.Assign,
			RHS: &hlc.BinaryExpr{Op: hlc.Amp,
				X: &hlc.BinaryExpr{Op: hlc.Plus,
					X: &hlc.BinaryExpr{Op: hlc.Star, X: ua, Y: intLit(int64(37 + 2*j))},
					Y: other},
				Y: intLit(65535)},
		})
		loadsPerIter += 2
		instrsPerIter += 6
		storesPerIter++
	}
	if nA > 0 {
		gen.aluChainUsed = true
	}

	// Branch compensation: nB branch statements per iteration, hard vs.
	// easy in the profile's own proportion, with hard taken rates drawn
	// from the profile's hottest hard sites. Without them the
	// compensation mass dilutes the clone's mispredict density to
	// nothing, and the timing figures lose the branch stalls that
	// dominate irregular workloads. One shared entropy state advances per
	// iteration and each slot tests its own bit window, so a branch costs
	// ~7 instructions — an original's natural branch density (one per
	// 8-10 instructions) stays reachable.
	nB := int(gen.brPerIter + 0.5)
	if nB > 0 {
		gen.compBrUsed = true
		state := &hlc.VarRef{Name: "hbc"}
		body = append(body, &hlc.AssignStmt{
			LHS: state, Op: hlc.Assign,
			RHS: &hlc.BinaryExpr{Op: hlc.Amp,
				X: &hlc.BinaryExpr{Op: hlc.Plus,
					X: &hlc.BinaryExpr{Op: hlc.Star, X: state, Y: intLit(hbMul)},
					Y: intLit(hbInc)},
				Y: intLit(hbMask)},
		})
		loadsPerIter += 1
		instrsPerIter += 8
		hardFrac, kList := gen.branchMixture()
		nHard := int(float64(nB)*hardFrac + 0.5)
		scalar := memRef{w: gen.walkerForSpec(walkerSpec{kind: walkScalar})}
		for j := 0; j < nB; j++ {
			// Arms carry a scalar load chain so branch mass stays
			// load-dense instead of trading against the mix target; the
			// accumulation is masked so scalar values stay bounded and
			// the easy conditions below never flip.
			arm := &hlc.AssignStmt{
				LHS: gen.srcWalk(scalar, j, false), Op: hlc.Assign,
				RHS: &hlc.BinaryExpr{Op: hlc.Amp,
					X: &hlc.BinaryExpr{Op: hlc.Plus,
						X: gen.srcWalk(scalar, j, false),
						Y: gen.srcWalk(scalar, j+5, false)},
					Y: intLit(65535)},
			}
			var cond hlc.Expr
			if j < nHard && len(kList) > 0 {
				b := kList[j%len(kList)]
				k := min(max(int64(b.TakenRate*256+0.5), 1), 255)
				cond = &hlc.BinaryExpr{Op: hlc.Lt,
					X: &hlc.BinaryExpr{Op: hlc.Amp,
						X: &hlc.BinaryExpr{Op: hlc.Shr, X: state, Y: intLit(int64(j % 9))},
						Y: intLit(255)},
					Y: intLit(k)}
				loadsPerIter += 1 + 2*float64(k)/256
				instrsPerIter += 6 + 5*float64(k)/256
			} else {
				// Easy: a scalar comparison that always (or never) holds —
				// predictable like the original's biased branches, and two
				// more always-hit loads either way.
				op := hlc.Lt
				if j%2 == 1 {
					op = hlc.Gt // scalar sums never exceed the huge bound
				}
				cond = &hlc.BinaryExpr{Op: op,
					X: &hlc.BinaryExpr{Op: hlc.Plus,
						X: gen.srcWalk(scalar, j+3, false),
						Y: gen.srcWalk(scalar, j+7, false)},
					Y: intLit(1 << 40)}
				loadsPerIter += 2 + float64(1-j%2)*2
				instrsPerIter += 6 + float64(1-j%2)*5
			}
			body = append(body, &hlc.IfStmt{Cond: cond, Then: &hlc.Block{Stmts: []hlc.Stmt{arm}}})
		}
	}

	trip := int(gen.compDyn / instrsPerIter)
	if trip < 1 {
		return nil
	}
	if trip > 1<<20 {
		trip = 1 << 20
	}
	gen.compTrips = trip
	gen.compDensity = loadsPerIter / instrsPerIter
	gen.account(stmtFootprint{
		loads:    loadsPerIter,
		stores:   storesPerIter + 2,
		ialu:     float64((compSlots-nFloat)*termsPerStmt) + 6 + 3*float64(nB) + 3*float64(nA),
		fpu:      fpPerIter,
		branches: 1 + float64(nB),
	}, float64(trip))
	// The accumulator locals wrap the loop: declared (stack slots at -O0,
	// registers after mem2reg) before it, and published to the printed
	// globals after it so the chains stay live.
	stmts := make([]hlc.Stmt, 0, 2*nFloat+aluLocals+2)
	for i := 0; i < nFloat; i++ {
		stmts = append(stmts, &hlc.DeclStmt{Decl: &hlc.VarDecl{
			Name: fpAccLocal(i), Type: hlc.TypeFloat,
			Init: &hlc.FloatLit{Value: 0.5 + float64(i)*0.25},
		}})
	}
	for i := 0; i < aluLocals; i++ {
		stmts = append(stmts, &hlc.DeclStmt{Decl: &hlc.VarDecl{
			Name: fmt.Sprintf("ua%d", i), Type: hlc.TypeInt, Init: intLit(int64(3 + i)),
		}})
	}
	stmts = append(stmts, &hlc.ForStmt{
		Init: &hlc.DeclStmt{Decl: &hlc.VarDecl{Name: iter, Type: hlc.TypeInt, Init: intLit(0)}},
		Cond: &hlc.BinaryExpr{Op: hlc.Lt, X: &hlc.VarRef{Name: iter}, Y: intLit(int64(trip))},
		Post: &hlc.AssignStmt{LHS: &hlc.VarRef{Name: iter}, Op: hlc.PlusEq, RHS: intLit(1)},
		Body: &hlc.Block{Stmts: body},
	})
	for i := 0; i < nFloat; i++ {
		stmts = append(stmts, &hlc.AssignStmt{
			LHS: &hlc.VarRef{Name: fpAccName(i)}, Op: hlc.Assign,
			RHS: &hlc.VarRef{Name: fpAccLocal(i)},
		})
	}
	if nA > 0 {
		sum := hlc.Expr(&hlc.VarRef{Name: "ua0"})
		for i := 1; i < aluLocals; i++ {
			sum = &hlc.BinaryExpr{Op: hlc.Plus, X: sum,
				Y: &hlc.VarRef{Name: fmt.Sprintf("ua%d", i)}}
		}
		stmts = append(stmts, &hlc.AssignStmt{
			LHS: &hlc.VarRef{Name: "uax"}, Op: hlc.Assign, RHS: sum,
		})
	}
	return &hlc.FuncDecl{
		Name: fmt.Sprintf("work%d", len(gen.funcs)),
		Ret:  hlc.TypeVoid,
		Body: &hlc.Block{Stmts: stmts},
	}
}

// loopCtx tracks enclosing synthetic loop iterator names.
type loopCtx []string

func (c loopCtx) innermost() (string, bool) {
	if len(c) == 0 {
		return "", false
	}
	return c[len(c)-1], true
}

func (gen *generator) stmts(items []item, ctx loopCtx, w float64) []hlc.Stmt {
	var out []hlc.Stmt
	for _, it := range items {
		switch v := it.(type) {
		case *loopItem:
			out = append(out, gen.loopStmt(v, ctx, w)...)
		case *blockItem:
			out = append(out, gen.blockStmts(v, ctx, w)...)
		}
	}
	if len(out) == 0 {
		// Never emit an empty function/loop body: keep one anchor store.
		gen.usedInt[0] = true
		out = append(out, &hlc.AssignStmt{
			LHS: gen.intStreamRef(0, 0), Op: hlc.PlusEq, RHS: intLit(1)})
	}
	return out
}

func (gen *generator) loopStmt(it *loopItem, ctx loopCtx, w float64) []hlc.Stmt {
	iter := fmt.Sprintf("li%d", len(ctx))
	wBody := w * it.freq * float64(it.trip)
	body := gen.stmts(it.body, append(ctx, iter), wBody)
	loop := &hlc.ForStmt{
		Init: &hlc.DeclStmt{Decl: &hlc.VarDecl{Name: iter, Type: hlc.TypeInt, Init: intLit(0)}},
		Cond: &hlc.BinaryExpr{Op: hlc.Lt, X: &hlc.VarRef{Name: iter}, Y: intLit(int64(it.trip))},
		Post: &hlc.AssignStmt{LHS: &hlc.VarRef{Name: iter}, Op: hlc.PlusEq, RHS: intLit(1)},
		Body: &hlc.Block{Stmts: body},
	}
	gen.account(stmtFootprint{branches: 1, ialu: 2, loads: 2, stores: 1}, w*it.freq*float64(it.trip))
	if it.freq < 0.95 {
		return []hlc.Stmt{gen.wrapFreq(loop, it.freq, ctx, w)}
	}
	return []hlc.Stmt{loop}
}

// blockStmts translates one basic-block occurrence: Table II pattern
// recognition over its instruction types, then branch modeling, then
// frequency wrapping.
func (gen *generator) blockStmts(it *blockItem, ctx loopCtx, w float64) []hlc.Stmt {
	n := it.node
	wEff := w * it.freq
	if it.freq < 0.05 {
		wEff = 0 // never-executed arm
	}
	stmts := gen.translate(n, wEff)
	if n.Branch != nil && !it.latch {
		stmts = append(stmts, gen.branchStmt(n.Branch, ctx, wEff))
	}
	if it.freq < 0.95 && len(stmts) > 0 {
		// Low-frequency blocks execute conditionally; below 5% the paper
		// drops them into the never-executed arm of an easy branch whose
		// body prints results.
		if it.freq < 0.05 {
			gen.guardUsed = true
			return []hlc.Stmt{gen.neverTakenIf(stmts, w)}
		}
		return []hlc.Stmt{gen.wrapFreq(&hlc.Block{Stmts: stmts}, it.freq, ctx, w)}
	}
	return stmts
}

// wrapFreq makes stmt execute approximately frac of the time using a
// modulo test on the innermost loop iterator (the paper's hard-branch
// mechanism); outside loops it falls back to a guard test.
func (gen *generator) wrapFreq(stmt hlc.Stmt, frac float64, ctx loopCtx, w float64) hlc.Stmt {
	iter, ok := ctx.innermost()
	if !ok {
		gen.guardUsed = true
		if frac >= 0.5 {
			return gen.alwaysTakenIf([]hlc.Stmt{stmt}, w)
		}
		return gen.neverTakenIf([]hlc.Stmt{stmt}, w)
	}
	m, k := moduloFor(frac, 0.5)
	gen.account(stmtFootprint{branches: 1, ialu: 2, loads: 1}, w)
	return &hlc.IfStmt{
		Cond: &hlc.BinaryExpr{Op: hlc.Lt,
			X: &hlc.BinaryExpr{Op: hlc.Amp, X: &hlc.VarRef{Name: iter}, Y: intLit(int64(m - 1))},
			Y: intLit(int64(k))},
		Then: toBlock(stmt),
	}
}

// moduloFor picks modulo parameters (m, k) so that (i mod m) < k holds for
// about takenFrac of consecutive i, with a period reflecting transRate.
// m is a power of two so the test compiles to a mask (i & (m-1)) < k:
// originals have essentially no integer divides, and a `%` here would
// flood the clone's mix with idiv-class instructions the profile lacks.
func moduloFor(takenFrac, transRate float64) (int, int) {
	m := 4
	if transRate > 0 {
		m = int(2.0/transRate + 0.5)
	}
	for p := 2; p <= 64; p *= 2 {
		if p >= m {
			m = p
			break
		}
	}
	if m > 64 {
		m = 64
	}
	k := int(takenFrac*float64(m) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > m-1 {
		k = m - 1
	}
	return m, k
}

// branchStmt models a non-loop conditional branch per Section III.B.4.
// Easy branches become always/never-taken guard tests whose dead arm
// prints results; hard branches draw their condition from a per-site
// entropy stream (see hardBranchStmts), so they mispredict like the
// original's data-dependent branches instead of settling into a
// predictor-learnable iterator pattern.
func (gen *generator) branchStmt(b *sfgl.BranchInfo, ctx loopCtx, w float64) hlc.Stmt {
	gen.account(stmtFootprint{branches: 1, ialu: 1, loads: 1}, w)
	if !b.Hard {
		gen.guardUsed = true
		if b.TakenRate >= 0.5 {
			return gen.alwaysTakenIf([]hlc.Stmt{gen.smallStmt(w)}, w)
		}
		return gen.neverTakenIf([]hlc.Stmt{gen.smallStmt(0)}, w)
	}
	return &hlc.Block{Stmts: gen.hardBranchStmts(b,
		[]hlc.Stmt{gen.smallStmt(w * b.TakenRate)},
		[]hlc.Stmt{gen.smallStmt(w * (1 - b.TakenRate))}, w)}
}

// neverTakenIf wraps statements in a condition that is never true at run
// time (the guard array is never written), adding the paper's print-the-
// results filler so the compiler must keep everything reachable.
func (gen *generator) neverTakenIf(inner []hlc.Stmt, w float64) hlc.Stmt {
	gen.guardUsed = true
	gen.account(stmtFootprint{branches: 1, ialu: 1, loads: 1}, w)
	body := append([]hlc.Stmt{}, inner...)
	body = append(body, gen.printFiller())
	return &hlc.IfStmt{
		Cond: &hlc.BinaryExpr{Op: hlc.Eq, X: gen.guardRef(), Y: intLit(99)},
		Then: &hlc.Block{Stmts: body},
	}
}

// alwaysTakenIf wraps statements in a condition that always holds; the dead
// else arm prints results.
func (gen *generator) alwaysTakenIf(inner []hlc.Stmt, w float64) hlc.Stmt {
	gen.guardUsed = true
	gen.account(stmtFootprint{branches: 1, ialu: 1, loads: 1}, w)
	return &hlc.IfStmt{
		Cond: &hlc.BinaryExpr{Op: hlc.Lt, X: gen.guardRef(), Y: intLit(99)},
		Then: &hlc.Block{Stmts: inner},
		Else: &hlc.Block{Stmts: []hlc.Stmt{gen.printFiller()}},
	}
}

func (gen *generator) guardRef() hlc.Expr {
	return &hlc.IndexExpr{Name: "gKeep", Idx: intLit(int64(gen.rng.Intn(guardLen)))}
}

func (gen *generator) printFiller() hlc.Stmt {
	cls := gen.anyUsedIntClass()
	return &hlc.PrintStmt{Args: []hlc.Expr{gen.intStreamRef(cls, int64(gen.rng.Intn(8)))}}
}

// smallStmt emits a minimal stride statement for branch arms; w is the
// expected execution weight of the arm.
func (gen *generator) smallStmt(w float64) hlc.Stmt {
	cls := gen.anyUsedIntClass()
	gen.account(stmtFootprint{loads: 2, stores: 1, ialu: 2}, w)
	return &hlc.AssignStmt{
		LHS: gen.intStreamWalk(cls, 0),
		Op:  hlc.Assign,
		RHS: &hlc.BinaryExpr{Op: hlc.Plus, X: gen.intStreamWalk(cls, 1), Y: intLit(int64(1 + gen.rng.Intn(9)))},
	}
}

func (gen *generator) anyUsedIntClass() int {
	for c := range gen.usedInt {
		if gen.usedInt[c] {
			return c
		}
	}
	gen.usedInt[0] = true
	return 0
}

func toBlock(s hlc.Stmt) *hlc.Block {
	if b, ok := s.(*hlc.Block); ok {
		return b
	}
	return &hlc.Block{Stmts: []hlc.Stmt{s}}
}

func intLit(v int64) *hlc.IntLit { return &hlc.IntLit{Value: v} }

// --- stream naming and references ---

// fpAccName names the i-th loop-carried FP accumulator global (the
// published, printed copy of the chain's final value).
func fpAccName(i int) string { return fmt.Sprintf("facc%d", i) }

// fpAccLocal names the i-th accumulator's in-loop local.
func fpAccLocal(i int) string { return fmt.Sprintf("fl%d", i) }

func intStreamName(c int) string   { return fmt.Sprintf("mStream%d", c) }
func floatStreamName(c int) string { return fmt.Sprintf("fStream%d", c) }
func intIdxName(c int) string      { return fmt.Sprintf("pi%d", c) }
func floatIdxName(c int) string    { return fmt.Sprintf("pf%d", c) }

func intLenFor(c int) int {
	if c == 0 {
		return smallStreamLen
	}
	return intStreamLen + streamPad
}

func floatLenFor(c int) int {
	if c == 0 {
		return smallStreamLen
	}
	return floatStreamLen + streamPad
}

// intStreamRef returns mStreamC[off] (a fixed element).
func (gen *generator) intStreamRef(c int, off int64) *hlc.IndexExpr {
	gen.usedInt[c] = true
	return &hlc.IndexExpr{Name: intStreamName(c), Idx: intLit(off)}
}

// intStreamWalk returns mStreamC[piC + off]: the stride-walking reference
// of Section III.B.4 / Table I. The index stays in range because only the
// advance statement changes it (masked there) and off is below streamPad.
// Class 0 (always hit) uses plain constant indices into a small array, like
// the paper's Fig. 3 example.
func (gen *generator) intStreamWalk(c int, off int64) *hlc.IndexExpr {
	gen.usedInt[c] = true
	if c == 0 {
		return &hlc.IndexExpr{Name: intStreamName(0),
			Idx: intLit(int64(gen.rng.Intn(smallStreamLen)))}
	}
	idx := hlc.Expr(&hlc.VarRef{Name: intIdxName(c)})
	if off != 0 {
		idx = &hlc.BinaryExpr{Op: hlc.Plus, X: idx, Y: intLit(off % streamPad)}
	}
	return &hlc.IndexExpr{Name: intStreamName(c), Idx: idx}
}

func (gen *generator) floatStreamWalk(c int, off int64) *hlc.IndexExpr {
	gen.usedFloat[c] = true
	if c == 0 {
		return &hlc.IndexExpr{Name: floatStreamName(0),
			Idx: intLit(int64(gen.rng.Intn(smallStreamLen)))}
	}
	idx := hlc.Expr(&hlc.VarRef{Name: floatIdxName(c)})
	if off != 0 {
		idx = &hlc.BinaryExpr{Op: hlc.Plus, X: idx, Y: intLit(off % streamPad)}
	}
	return &hlc.IndexExpr{Name: floatStreamName(c), Idx: idx}
}

// advanceStmt walks a stream index by its Table I stride, wrapping with a
// power-of-two mask so subsequent offset accesses stay within the padded
// array.
func (gen *generator) advanceStmt(c int, float bool, w float64) hlc.Stmt {
	gen.account(stmtFootprint{loads: 1, stores: 1, ialu: 2}, w)
	name := intIdxName(c)
	mask := int64(intStreamMask)
	step := int64(sfgl.StrideBytes(c) / isa.IntBytes)
	if float {
		name = floatIdxName(c)
		mask = floatStreamMask
		step = int64((sfgl.StrideBytes(c) + isa.FloatBytes - 1) / isa.FloatBytes)
	}
	if step < 1 {
		step = 1 // class 0 walks within its tiny always-hit array
	}
	return &hlc.AssignStmt{
		LHS: &hlc.VarRef{Name: name},
		Op:  hlc.Assign,
		RHS: &hlc.BinaryExpr{Op: hlc.Amp,
			X: &hlc.BinaryExpr{Op: hlc.Plus, X: &hlc.VarRef{Name: name}, Y: intLit(step)},
			Y: intLit(mask)},
	}
}

// stmtFootprint estimates the O0 instruction classes a generated statement
// compiles to; the compensation accounting runs on these estimates.
type stmtFootprint struct {
	loads, stores, ialu, fpu, branches float64
}

func (gen *generator) account(f stmtFootprint, w float64) {
	gen.emitted[isa.ClassLoad] += f.loads * w
	gen.emitted[isa.ClassStore] += f.stores * w
	gen.emitted[isa.ClassIntALU] += f.ialu * w
	gen.emitted[isa.ClassFPAdd] += f.fpu * w
	gen.emitted[isa.ClassBranch] += f.branches * w
}
