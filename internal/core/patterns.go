package core

import (
	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/sfgl"
)

// This file implements Section III.B.4 / Table II: scanning a profiled
// basic block's instruction types and emitting C statements whose compiled
// form reproduces those sequences. The recognizer groups a maximal
// load/const/arith run ending in a store into one assignment statement —
// Table II's load-store, load-arith-store, load-load-arith-store,
// three-load, and store rows are exactly the small instances of this rule,
// and load-cmp-br sequences are claimed by branch modeling. Instructions no
// group covers are compensated afterwards, as the paper prescribes.

// tkind classifies instruction types for pattern matching.
type tkind int

const (
	kSkip tkind = iota
	kLoad
	kStore
	kArithI
	kArithF
	kUnaryF
	kConst
	kCmp
	kBr
)

type tok struct {
	kind   tkind
	op     isa.Opcode
	mem    int          // Table I class for loads/stores (-1 unknown)
	stream *sfgl.Stream // per-site stride stream (nil on legacy profiles)
}

func kindOf(in sfgl.InstrInfo) tkind {
	switch in.Op {
	case isa.LD, isa.LDL:
		return kLoad
	case isa.ST, isa.STL:
		return kStore
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.NEG, isa.NOTB:
		return kArithI
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FNEG, isa.ITOF, isa.FTOI:
		return kArithF
	case isa.FSQRT, isa.FSIN, isa.FCOS, isa.FABS:
		return kUnaryF
	case isa.MOVI, isa.MOVF:
		return kConst
	case isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE,
		isa.FCMPEQ, isa.FCMPNE, isa.FCMPLT, isa.FCMPLE, isa.FCMPGT, isa.FCMPGE:
		return kCmp
	case isa.BR:
		return kBr
	}
	return kSkip
}

// group is one recognized statement: loads feeding a chain of operations
// into a store.
type group struct {
	loads   []tok
	ops     []isa.Opcode
	store   tok
	isFloat bool
	nTokens int // tokens consumed, for coverage accounting
	// synthStore marks store-less patterns (Table II's three-load row and
	// long expression runs): the group closes with an accumulator store
	// that the profile did not contain.
	synthStore bool
}

// maxGroupLen bounds how many instruction tokens one statement absorbs.
// Real O0 blocks routinely carry 14+ instruction runs between stores
// (crc32's table lookup is one), so the bound sits well above Table II's
// largest listed pattern.
const maxGroupLen = 24

// translate emits C statements for one basic-block occurrence expected to
// execute w times.
func (gen *generator) translate(n *sfgl.Node, w float64) []hlc.Stmt {
	var seq []tok
	for _, in := range n.Instrs {
		gen.target[in.Class] += w
		k := kindOf(in)
		if k == kSkip {
			continue
		}
		seq = append(seq, tok{kind: k, op: in.Op, mem: in.MemClass, stream: in.Stream})
	}
	gen.totalInstrs += w * float64(len(seq))

	kindAt := func(i int) tkind {
		if i >= len(seq) {
			return kSkip
		}
		return seq[i].kind
	}

	var out []hlc.Stmt
	var leftoverI, leftoverF []isa.Opcode
	var leftoverLoads int

	// branchHeaderLen reports how many tokens starting at i form a branch
	// condition — a short run of loads, constants, and integer arithmetic
	// feeding a compare and a conditional branch, the generalized
	// "load-cmp-br" of Table II (`x & MASK == 0`-style conditions compile
	// to load-const-arith-const-cmp-br at O0). Zero means no branch
	// pattern starts here.
	branchHeaderLen := func(i int) int {
		j := i
		for j-i < 6 {
			switch kindAt(j) {
			case kLoad, kConst, kArithI:
				j++
				continue
			}
			break
		}
		if kindAt(j) == kCmp && kindAt(j+1) == kBr {
			return j + 2 - i
		}
		if kindAt(j) == kBr && j > i {
			return j + 1 - i // direct test of a loaded value
		}
		return 0
	}

	i := 0
	for i < len(seq) {
		if n := branchHeaderLen(i); n > 0 {
			gen.consumedInstrs += float64(n) * w
			i += n
			continue
		}
		if kindAt(i) == kBr {
			gen.consumedInstrs += w
			i++
			continue
		}

		// Maximal-munch group collection.
		g := group{}
		j := i
	scan:
		for j < len(seq) && j-i < maxGroupLen {
			t := seq[j]
			switch t.kind {
			case kLoad, kConst:
				// Loads feeding a cmp+br belong to the branch pattern.
				if branchHeaderLen(j) > 0 {
					break scan
				}
				if t.kind == kLoad {
					g.loads = append(g.loads, t)
				}
				j++
			case kArithI:
				g.ops = append(g.ops, t.op)
				j++
			case kArithF, kUnaryF:
				g.isFloat = true
				g.ops = append(g.ops, t.op)
				j++
			case kCmp:
				// A comparison not feeding a branch produces a 0/1 value
				// usable as an ordinary operand.
				if kindAt(j+1) == kBr {
					break scan
				}
				g.ops = append(g.ops, t.op)
				j++
			case kStore:
				g.store = t
				j++
				g.nTokens = j - i
				break scan
			default:
				break scan
			}
		}
		// A run that never reached a store still matches Table II's
		// store-less rows (three-load and long expression runs feeding a
		// value kept live across blocks): close it with a synthetic
		// accumulator store so its loads and operations survive with
		// their classes intact.
		if g.nTokens == 0 && j > i && (len(g.loads) > 0 || len(g.ops) >= 2) {
			g.store = tok{kind: kStore, op: isa.ST, mem: 0}
			g.synthStore = true
			g.nTokens = j - i
		}
		if g.nTokens > 0 {
			out = append(out, gen.emitGroup(&g, w)...)
			gen.consumedInstrs += w * float64(g.nTokens)
			i = j
			continue
		}
		// No pattern claimed the run: the scanned operations are
		// uncovered; queue them for compensation.
		if j == i {
			i++ // lone cmp or stray token
			continue
		}
		for _, t := range seq[i:j] {
			switch t.kind {
			case kArithI:
				leftoverI = append(leftoverI, t.op)
			case kArithF, kUnaryF:
				leftoverF = append(leftoverF, t.op)
			case kLoad:
				leftoverLoads++
			}
		}
		i = j
	}

	out = append(out, gen.compensateInt(leftoverI, leftoverLoads, w)...)
	out = append(out, gen.compensateFloat(leftoverF, w)...)
	return out
}

// emitGroup renders one recognized group as an assignment statement,
// chaining every load and operation so the clone's dynamic instruction
// classes match the profile's. Each load keeps its profiled memory source:
// a stream walker matching its stride signature when the profile carries
// stream descriptors, or its Table I class stream otherwise.
func (gen *generator) emitGroup(g *group, w float64) []hlc.Stmt {
	dst := gen.refFor(g.store, g.isFloat)
	var srcs []memRef
	for _, l := range g.loads {
		srcs = append(srcs, gen.refFor(l, g.isFloat))
	}

	walk := func(r memRef, slot int) hlc.Expr {
		return gen.srcWalk(r, slot, g.isFloat)
	}
	cst := func(tk hlc.Token) hlc.Expr {
		if g.isFloat {
			return gen.floatConst()
		}
		return gen.rhsConst(tk)
	}

	var expr hlc.Expr
	loadIdx := 0
	if len(srcs) > 0 {
		expr = walk(srcs[0], 0)
		loadIdx = 1
	} else if g.isFloat {
		expr = gen.floatConst()
	} else {
		expr = gen.smallConst()
	}

	nInt, nFP := 0.0, 0.0
	for _, op := range g.ops {
		if op == isa.FSQRT || op == isa.FSIN || op == isa.FCOS || op == isa.FABS {
			name := intrinsicName(op)
			if name == "sqrt" {
				expr = &hlc.CallExpr{Name: "fabs", Args: []hlc.Expr{expr}}
			}
			expr = &hlc.CallExpr{Name: name, Args: []hlc.Expr{expr}}
			nFP++
			continue
		}
		tk, constOnly := opToken(op)
		if g.isFloat {
			tk = floatSafe(tk)
			constOnly = false
		}
		var operand hlc.Expr
		if !constOnly && loadIdx < len(srcs) {
			operand = walk(srcs[loadIdx], loadIdx)
			loadIdx++
		} else {
			operand = cst(tk)
		}
		expr = &hlc.BinaryExpr{Op: tk, X: expr, Y: operand}
		if g.isFloat {
			nFP++
		} else {
			nInt++
		}
	}
	// Chain any loads the operations did not absorb so the load count
	// still matches the profile.
	plus := hlc.Plus
	for loadIdx < len(srcs) {
		expr = &hlc.BinaryExpr{Op: plus, X: expr, Y: walk(srcs[loadIdx], loadIdx)}
		loadIdx++
		if g.isFloat {
			nFP++
		} else {
			nInt++
		}
	}

	stmt := &hlc.AssignStmt{LHS: gen.srcWalk(dst, 0, g.isFloat), Op: hlc.Assign, RHS: expr}

	// Accounting: element accesses plus index-variable overhead (each
	// access through a walker or walking class reads its index; small
	// always-hit sources use constant indices and cost only the element
	// access).
	walkAccesses := 0.0
	if !dst.small() {
		walkAccesses++
	}
	for _, r := range srcs {
		if !r.small() {
			walkAccesses++
		}
	}
	gen.account(stmtFootprint{
		loads:  float64(len(srcs)) + walkAccesses,
		stores: 1,
		ialu:   nInt + walkAccesses,
		fpu:    nFP,
	}, w)

	refs := append([]memRef{dst}, srcs...)
	return append([]hlc.Stmt{stmt}, gen.advancesFor(refs, g.isFloat, w)...)
}

func intrinsicName(op isa.Opcode) string {
	switch op {
	case isa.FSIN:
		return "sin"
	case isa.FCOS:
		return "cos"
	case isa.FABS:
		return "fabs"
	default:
		return "sqrt"
	}
}

// opToken maps an arithmetic opcode to an HLC operator, with a flag for
// operators that are only safe against constant right-hand sides (division
// and modulo can trap; shifts need small counts).
func opToken(op isa.Opcode) (tk hlc.Token, constOnly bool) {
	switch op {
	case isa.ADD, isa.FADD, isa.ITOF, isa.FTOI:
		return hlc.Plus, false
	case isa.SUB, isa.FSUB, isa.NEG, isa.FNEG:
		return hlc.Minus, false
	case isa.MUL, isa.FMUL:
		return hlc.Star, false
	case isa.DIV, isa.MOD:
		return hlc.Slash, true
	case isa.FDIV:
		return hlc.Slash, false // float division cannot trap
	case isa.AND:
		return hlc.Amp, false
	case isa.OR:
		return hlc.Pipe, false
	case isa.XOR, isa.NOTB:
		return hlc.Caret, false
	case isa.SHL:
		return hlc.Shl, true
	case isa.SHR:
		return hlc.Shr, true
	case isa.CMPEQ, isa.FCMPEQ:
		return hlc.Eq, false
	case isa.CMPNE, isa.FCMPNE:
		return hlc.Neq, false
	case isa.CMPLT, isa.FCMPLT:
		return hlc.Lt, false
	case isa.CMPLE, isa.FCMPLE:
		return hlc.Le, false
	case isa.CMPGT, isa.FCMPGT:
		return hlc.Gt, false
	case isa.CMPGE, isa.FCMPGE:
		return hlc.Ge, false
	}
	return hlc.Plus, false
}

func (gen *generator) memClassOf(t tok) int {
	if t.mem >= 0 {
		return t.mem
	}
	return 0
}

func (gen *generator) smallConst() *hlc.IntLit { return intLit(int64(1 + gen.rng.Intn(9))) }
func (gen *generator) shiftConst() *hlc.IntLit { return intLit(int64(1 + gen.rng.Intn(5))) }
func (gen *generator) floatConst() *hlc.FloatLit {
	return &hlc.FloatLit{Value: float64(gen.rng.Intn(64))/8 + 0.5}
}

// rhsConst returns a right-hand-side constant appropriate for the operator.
func (gen *generator) rhsConst(tk hlc.Token) hlc.Expr {
	switch tk {
	case hlc.Shl, hlc.Shr:
		return gen.shiftConst()
	case hlc.Slash, hlc.Percent:
		return intLit(int64(2 + gen.rng.Intn(8)))
	}
	return gen.smallConst()
}

// compensateInt folds leftover integer operations (instructions no pattern
// covered) into chained statements — the paper's "compensate for those
// instructions on a later occasion". Leftover loads keep their class: they
// become stream reads rather than constant operands.
func (gen *generator) compensateInt(ops []isa.Opcode, loads int, w float64) []hlc.Stmt {
	var out []hlc.Stmt
	for len(ops) > 0 || loads > 0 {
		take := len(ops)
		if take > 3 {
			take = 3
		}
		cls := gen.anyUsedIntClass()
		expr := hlc.Expr(gen.intStreamWalk(cls, 0))
		nLoads := 1.0
		for _, op := range ops[:take] {
			tk, constOnly := opToken(op)
			var operand hlc.Expr
			if !constOnly && loads > 0 {
				operand = gen.intStreamWalk(cls, int64(loads))
				loads--
				nLoads++
			} else {
				operand = gen.rhsConst(tk)
			}
			expr = &hlc.BinaryExpr{Op: tk, X: expr, Y: operand}
		}
		// Loads with no operation left to carry them chain on with adds.
		for extra := 0; take == 0 && loads > 0 && extra < 3; extra++ {
			expr = &hlc.BinaryExpr{Op: hlc.Plus, X: expr, Y: gen.intStreamWalk(cls, int64(loads))}
			loads--
			nLoads++
		}
		gen.account(stmtFootprint{loads: 1 + nLoads, stores: 2, ialu: 2 + float64(take)}, w)
		out = append(out, &hlc.AssignStmt{
			LHS: gen.intStreamWalk(cls, 1), Op: hlc.Assign, RHS: expr,
		})
		out = append(out, gen.advances(false, w, cls)...)
		ops = ops[take:]
	}
	return out
}

func (gen *generator) compensateFloat(ops []isa.Opcode, w float64) []hlc.Stmt {
	var out []hlc.Stmt
	for len(ops) > 0 {
		take := len(ops)
		if take > 3 {
			take = 3
		}
		cls := 0
		expr := hlc.Expr(gen.floatStreamWalk(cls, 0))
		for _, op := range ops[:take] {
			if op == isa.FSQRT || op == isa.FSIN || op == isa.FCOS || op == isa.FABS {
				name := intrinsicName(op)
				if name == "sqrt" {
					expr = &hlc.CallExpr{Name: "fabs", Args: []hlc.Expr{expr}}
				}
				expr = &hlc.CallExpr{Name: name, Args: []hlc.Expr{expr}}
				continue
			}
			tk, _ := opToken(op)
			expr = &hlc.BinaryExpr{Op: floatSafe(tk), X: expr, Y: gen.floatConst()}
		}
		gen.account(stmtFootprint{loads: 2, stores: 2, fpu: float64(take), ialu: 2}, w)
		out = append(out, &hlc.AssignStmt{
			LHS: gen.floatStreamWalk(cls, 1), Op: hlc.Assign, RHS: expr,
		})
		ops = ops[take:]
	}
	return out
}

// floatSafe maps integer-only operators that can appear on float data
// (via ITOF/FTOI sequences) back to float-legal ones.
func floatSafe(tk hlc.Token) hlc.Token {
	switch tk {
	case hlc.Amp, hlc.Pipe, hlc.Caret, hlc.Shl, hlc.Shr, hlc.Percent:
		return hlc.Plus
	}
	return tk
}

// advances emits the stride-index updates for the distinct classes a
// statement touched (class 0 uses constant indices and never advances).
func (gen *generator) advances(float bool, w float64, classes ...int) []hlc.Stmt {
	seen := map[int]bool{}
	var out []hlc.Stmt
	for _, c := range classes {
		if c == 0 || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, gen.advanceStmt(c, float, w))
	}
	return out
}
