// Package core implements the paper's primary contribution: synthesizing a
// benchmark in a high-level language from a statistical profile
// (Section III.B). The pipeline is
//
//  1. scale the SFGL down by a reduction factor R (Fig. 2),
//  2. build a skeleton of loops, conditionals, and straight-line blocks by
//     weighted random walks over the scaled SFGL,
//  3. group the skeleton into synthetic functions (which deliberately do
//     not correspond to the original program's functions),
//  4. populate basic blocks with C statements through pattern recognition
//     over the profiled instruction sequences (Table II), compensating for
//     uncovered instructions,
//  5. model branches (easy branches become always/never-taken tests whose
//     dead arm prints results; hard branches become modulo tests on loop
//     iterators) and memory accesses (stride walks over pre-allocated
//     arrays, Table I).
//
// The emitted program is an hlc.Program: it can be pretty-printed for
// distribution, compiled at any optimization level for any ISA, executed,
// profiled, and fingerprinted exactly like a hand-written workload.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/compiler"
	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/sfgl"
	"repro/internal/vm"
)

// Config controls synthesis.
type Config struct {
	// Reduction is the factor R of Section III.B.1. Zero selects it
	// automatically so the clone executes roughly TargetDyn instructions.
	Reduction uint64
	// TargetDyn is the clone's intended dynamic instruction count when
	// Reduction is 0 (default 150k; the paper targets 10M on MiBench-scale
	// inputs — the repo's workloads are scaled down ~60x to keep `go
	// test` fast, and so is this default).
	TargetDyn uint64
	// Seed drives the semi-random binary-to-source translation that
	// obfuscates proprietary structure. Equal seeds reproduce clones
	// exactly.
	Seed int64
	// MaxSkeletonItems caps generated top-level code size as a safety
	// valve (default 4096).
	MaxSkeletonItems int
}

// debugSynth enables synthesis calibration tracing (tests only).
var debugSynth = false

// DefaultTargetDyn is the default synthetic dynamic instruction target.
const DefaultTargetDyn = 150_000

// Report summarizes a synthesis run.
type Report struct {
	Workload     string
	Reduction    uint64
	OriginalDyn  uint64
	ScaledBlocks int
	ScaledLoops  int
	// Coverage is the fraction of scaled-profile instructions consumed by
	// Table II patterns (the paper reports >95%).
	Coverage float64
	// Functions is the number of synthetic functions emitted.
	Functions int
	// StreamClasses lists the Table I classes that received stride arrays
	// (legacy-profile sites and always-hit fallbacks).
	StreamClasses []int
	// StreamWalkers counts the stream walkers materialized from per-site
	// stride descriptors; ChaseWalkers is the pointer-chase subset.
	StreamWalkers int
	// ChaseWalkers counts the pointer-chase walkers among StreamWalkers.
	ChaseWalkers int
	// HardBranchSites counts the profiled branches modeled with per-site
	// entropy streams.
	HardBranchSites int
	// MissScale is the final miss-rate feedback factor applied to walker
	// strides (1 = the profile's site miss rates were used unscaled).
	MissScale float64
	// Truncated reports that the skeleton hit MaxSkeletonItems.
	Truncated bool
}

// Synthesize generates a benchmark clone from a statistical profile.
func Synthesize(p *profile.Profile, cfg Config) (*hlc.Program, Report, error) {
	if p == nil || p.Graph == nil {
		return nil, Report{}, fmt.Errorf("core: nil profile")
	}
	if cfg.TargetDyn == 0 {
		cfg.TargetDyn = DefaultTargetDyn
	}
	// Small originals get proportionally smaller clones: a proxy that runs
	// nearly as long as its original defeats the simulation-time-reduction
	// purpose (the paper's R ranges from 1 to 250 for the same reason).
	if cap := p.TotalDyn / 4; cfg.TargetDyn > cap && cap > 0 {
		cfg.TargetDyn = cap
	}
	if cfg.MaxSkeletonItems == 0 {
		cfg.MaxSkeletonItems = 4096
	}
	r := cfg.Reduction
	if r == 0 {
		r = p.TotalDyn / cfg.TargetDyn
		if r == 0 {
			r = 1
		}
	}

	// The paper picks R empirically so the clone hits a fixed dynamic
	// size; we automate that by generating, executing the candidate clone
	// (cheap — it is the reduced benchmark), and correcting R. A second
	// feedback phase then drives mix compensation: the observed load
	// fraction is compared against the profile's, and the compensation
	// loop's budget grows or shrinks until the clone's mix tracks the
	// original's (Fig. 6). A third phase retargets the stream walkers: the
	// clone's aggregate miss rate at the profiling cache is measured and
	// the per-stream miss rates are scaled until it matches the profile's.
	var prog *hlc.Program
	var rep Report
	var compDyn float64
	missScale := 1.0
	fpShare := 0.0
	brPerIter := 0.0
	generate := func() *generator {
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5FC9))
		scaled := p.Graph.ScaleDown(r)
		sk := buildSkeleton(scaled, rng, cfg.MaxSkeletonItems)
		gen := newGenerator(scaled, rng)
		gen.compDyn = compDyn
		gen.missScale = missScale
		gen.fpShare = fpShare
		gen.brPerIter = brPerIter
		// Chase-permutation shuffles run before the work functions; cap
		// their total footprint (~7 instructions per element) so small
		// clones stay mostly work.
		gen.chaseBudget = float64(cfg.TargetDyn) / 28
		// A third of FP-compensation multiplies become divides when the
		// profile's own FP traffic is divide-heavy.
		fpTotal := p.Mix[isa.ClassFPAdd] + p.Mix[isa.ClassFPMul] + p.Mix[isa.ClassFPDiv]
		gen.fpDivThird = fpTotal > 0 && float64(p.Mix[isa.ClassFPDiv]) > 0.15*float64(fpTotal)
		prog = gen.program(sk.items)
		chases := 0
		for _, w := range gen.walkers {
			if w.kind == walkChase {
				chases++
			}
		}
		rep = Report{
			Workload:        p.Workload,
			Reduction:       r,
			OriginalDyn:     p.TotalDyn,
			ScaledBlocks:    len(scaled.Nodes),
			ScaledLoops:     len(scaled.Loops),
			Coverage:        gen.coverage(),
			Functions:       len(prog.Funcs) - 1, // excluding main
			StreamClasses:   gen.usedClasses(),
			StreamWalkers:   len(gen.walkers),
			ChaseWalkers:    chases,
			HardBranchSites: len(gen.hardBranches),
			MissScale:       missScale,
			Truncated:       sk.truncated,
		}
		return gen
	}
	gen := generate()
	profCache := p.CacheCfg
	if profCache == (cache.Config{}) {
		profCache = profile.DefaultCache
	}
	if cfg.Reduction == 0 {
		// Phase 1: calibrate R so the base clone (no compensation yet)
		// lands near TargetDyn.
		for attempt := 0; attempt < 3; attempt++ {
			actual, err := measureCloneDyn(prog, 16*cfg.TargetDyn)
			if err != nil {
				return nil, rep, fmt.Errorf("core: calibration run: %w", err)
			}
			ratio := float64(actual) / float64(cfg.TargetDyn)
			if ratio < 1.4 && ratio > 0.7 {
				break
			}
			nr := uint64(float64(r) * ratio)
			if nr < 1 {
				nr = 1
			}
			if nr == r {
				break
			}
			r = nr
			gen = generate()
		}
		// Phase 2: jointly fit the compensation budget and the miss scale.
		// The two knobs are near-orthogonal — compDyn sets the load
		// fraction (the compensation loop's size), missScale sets walker
		// strides and chase working sets (which leave instruction counts
		// almost untouched) — but each regeneration perturbs the other's
		// measurement, so both are updated from one shared measurement per
		// iteration until both land in band.
		//
		// Mix: solving (L + d*X)/(T + X) = f for the extra instructions X,
		// where d is the loop's load density, f the profile's load
		// fraction. The density bounds the reachable fraction, so f backs
		// off just under d, and the budget is capped so the clone keeps a
		// healthy reduction factor over the original (Fig. 4).
		//
		// Miss: the profile's misses per dynamic instruction at the
		// profiling cache vs. the clone's. The clone spends extra
		// instructions on translation overhead (iterators, indices, the
		// compensation loop), which dilutes per-instruction miss volume;
		// the scale concentrates the per-site miss rates until the clone
		// stalls like the original.
		targetLoadFrac := float64(p.Mix[isa.ClassLoad]) / float64(p.TotalDyn)
		targetFPFrac := float64(p.Mix[isa.ClassFPAdd]+p.Mix[isa.ClassFPMul]+p.Mix[isa.ClassFPDiv]) / float64(p.TotalDyn)
		targetBrFrac := float64(p.Mix[isa.ClassBranch]) / float64(p.TotalDyn)
		targetMiss := profileMissPerInstr(p)
		// The clone must stay well under the original's dynamic size or
		// the Fig. 4 reduction factor inverts — and near its configured
		// target, or the proxy stops being cheap; compensation never
		// grows the total beyond this ceiling.
		maxTotal := min(0.75*float64(p.TotalDyn), 3.8*float64(cfg.TargetDyn))
		// The measurement must be able to see past the ceiling, or the
		// loop would keep growing compDyn against a truncated reading
		// and the ceiling guard could never fire.
		budget := 16 * cfg.TargetDyn
		if mb := uint64(2 * maxTotal); budget < mb {
			budget = mb
		}
		for attempt := 0; attempt < 7; attempt++ {
			actual, mix, miss, err := measureClone(prog, budget, profCache)
			if err != nil {
				return nil, rep, fmt.Errorf("core: mix calibration: %w", err)
			}
			if debugSynth {
				fmt.Printf("[cal] attempt=%d dyn=%d loadFrac=%.3f/%.3f brFrac=%.3f/%.3f missPI=%.5f/%.5f compDyn=%.0f scale=%.2f brPI=%.1f fp=%.2f\n",
					attempt, actual, float64(mix[isa.ClassLoad])/float64(actual), targetLoadFrac,
					float64(mix[isa.ClassBranch])/float64(actual), targetBrFrac,
					miss, targetMiss, compDyn, missScale, brPerIter, fpShare)
			}
			if float64(actual) > maxTotal && compDyn > 0 {
				compDyn -= float64(actual) - maxTotal
				if compDyn < 0 {
					compDyn = 0
				}
				gen = generate()
				continue
			}
			changed := false
			density := gen.compDensity
			if density == 0 {
				density = compDensityEstimate
			}
			f := targetLoadFrac
			if f > density-0.05 {
				f = density - 0.05
			}
			loadFrac := float64(mix[isa.ClassLoad]) / float64(actual)
			if f > 0 && (loadFrac <= f-0.02 || loadFrac >= f+0.02) {
				delta := (f*float64(actual) - float64(mix[isa.ClassLoad])) / (density - f)
				if room := maxTotal - float64(actual); delta > room {
					delta = room
				}
				next := compDyn + delta
				if next < 0 {
					next = 0
				}
				if next != compDyn {
					compDyn = next
					changed = true
				}
			}
			// Branch density: the compensation mass must carry the
			// profile's conditional-branch fraction (with its hardness
			// mix) or the clone's mispredict density dilutes toward zero.
			// Branch statements are load-poor, so they only grow while the
			// load fraction is within reach of its own target — loads are
			// the paper's headline mix metric (Fig. 6) and win ties.
			// Branches may trade against loads only down to the Fig. 6
			// band (load fraction within 15 points of the original, kept
			// with margin); below that, loads win and branch mass sheds.
			if targetBrFrac > 0.01 && gen.compTrips > 0 {
				if loadFrac > targetLoadFrac-0.14 {
					brNeed := targetBrFrac*float64(actual) - float64(mix[isa.ClassBranch])
					delta := brNeed / float64(gen.compTrips)
					next := min(max(brPerIter+delta, 0), 64)
					if d := next - brPerIter; d > 0.5 || d < -0.5 {
						brPerIter = next
						changed = true
					}
				} else if brPerIter > 0 && loadFrac < targetLoadFrac-0.155 {
					// Load fraction sank well below its target: shed branch
					// mass back to load-dense statements. Loads are the
					// paper's headline mix metric and win the trade.
					brPerIter = max(brPerIter-2, 0)
					changed = true
				}
			}
			// FP share: size the float slice of the compensation loop so
			// the clone's FP fraction tracks the profile's (float comp
			// statements average fpCompDensity FP ops per instruction).
			if targetFPFrac > 0.02 && compDyn > 1 {
				const fpCompDensity = 0.16
				fpMeas := float64(mix[isa.ClassFPAdd] + mix[isa.ClassFPMul] + mix[isa.ClassFPDiv])
				fpNeed := targetFPFrac*float64(actual) - fpMeas
				share := min(max(fpShare+fpNeed/fpCompDensity/compDyn, 0), 0.9)
				if d := share - fpShare; d > 0.04 || d < -0.04 {
					fpShare = share
					changed = true
				}
			}
			if targetMiss > 0.002 && miss > 0 {
				ratio := targetMiss / miss
				if ratio <= 0.85 || ratio >= 1.15 {
					ratio = min(max(ratio, 0.5), 3)
					next := min(max(missScale*ratio, 0.25), 4)
					if next != missScale {
						missScale = next
						changed = true
					}
				}
			}
			if !changed {
				break
			}
			gen = generate()
		}
	}

	// The clone must be a valid HLC program; a failure here is a bug in
	// the generator, surfaced as an error for the caller.
	if _, err := hlc.Check(prog); err != nil {
		return nil, rep, fmt.Errorf("core: generated clone does not type-check: %w", err)
	}
	return prog, rep, nil
}

// measureClone compiles a candidate clone at -O0 and executes it to obtain
// its true dynamic instruction count, class mix, and per-access miss rate
// at the given profiling cache. The clone is self-contained (stride arrays
// start zeroed), so no input setup is needed.
func measureClone(prog *hlc.Program, budget uint64, cacheCfg cache.Config) (uint64, [isa.NumClasses]uint64, float64, error) {
	var mix [isa.NumClasses]uint64
	cp, err := hlc.Check(prog)
	if err != nil {
		return 0, mix, 0, err
	}
	mp, err := compiler.Compile(cp, isa.AMD64, compiler.O0)
	if err != nil {
		return 0, mix, 0, err
	}
	// Per-site class table: the hook indexes it by the event's dense
	// static-site ID instead of classifying the opcode per instruction.
	lay := vm.LayoutOf(mp)
	classBySite := make([]uint8, lay.NumSites())
	for s := range classBySite {
		classBySite[s] = uint8(lay.Instr(s).Class())
	}
	c := cache.New(cacheCfg)
	var misses uint64
	res, err := vm.New(mp).Run(vm.Config{
		MaxInstrs: budget,
		Hook: func(ev *vm.Event) {
			mix[classBySite[ev.Site]]++
			if ev.IsMem && !c.Access(ev.Addr) {
				misses++
			}
		},
	})
	missPI := 0.0
	if res.DynInstrs > 0 {
		missPI = float64(misses) / float64(res.DynInstrs)
	}
	if err != nil {
		if t, ok := err.(*vm.Trap); ok && t.Reason == vm.TrapBudgetExhausted {
			return res.DynInstrs, mix, missPI, nil // budget exhausted: report the cap
		}
		return 0, mix, 0, err
	}
	return res.DynInstrs, mix, missPI, nil
}

// measureCloneDyn is measureClone without instrumentation: it compiles the
// candidate and executes it through the VM's no-hook fast path, returning
// only the dynamic instruction count. Phase-1 R calibration needs nothing
// else, and the fast path interprets several times quicker than a hooked
// run.
func measureCloneDyn(prog *hlc.Program, budget uint64) (uint64, error) {
	cp, err := hlc.Check(prog)
	if err != nil {
		return 0, err
	}
	mp, err := compiler.Compile(cp, isa.AMD64, compiler.O0)
	if err != nil {
		return 0, err
	}
	res, err := vm.New(mp).Run(vm.Config{MaxInstrs: budget})
	if err != nil {
		if t, ok := err.(*vm.Trap); ok && t.Reason == vm.TrapBudgetExhausted {
			return res.DynInstrs, nil // budget exhausted: report the cap
		}
		return 0, err
	}
	return res.DynInstrs, nil
}

// profileMissPerInstr returns the profile's misses per dynamic instruction
// at the profiling cache, computed from its stream descriptors. Misses per
// instruction — not per access — is the retargeting metric because the
// clone's access population includes index and iterator overhead the
// original does not have, while both sides execute comparable instruction
// volumes per unit of profiled work. Profiles without streams report 0,
// which disables the miss-retargeting phase.
func profileMissPerInstr(p *profile.Profile) float64 {
	if p.TotalDyn == 0 {
		return 0
	}
	var missVol float64
	for _, n := range p.Graph.Nodes {
		for i := range n.Instrs {
			if s := n.Instrs[i].Stream; s != nil {
				missVol += float64(s.Accesses) * s.MissRate
			}
		}
	}
	return missVol / float64(p.TotalDyn)
}

// Consolidate merges several profiles into one (Section II.B.e, "benchmark
// consolidation"): node/edge/loop sets are concatenated with function
// indices re-based, and dynamic totals added. Synthesizing from the merged
// profile yields a single proxy representative of the whole set.
func Consolidate(name string, profiles ...*profile.Profile) (*profile.Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("core: nothing to consolidate")
	}
	out := &profile.Profile{Workload: name, Graph: &sfgl.Graph{}}
	nodeBase, funcBase, loopBase := 0, 0, 0
	for _, p := range profiles {
		out.TotalDyn += p.TotalDyn
		for i, c := range p.Mix {
			out.Mix[i] += c
		}
		g := p.Graph
		for i, fn := range g.FuncNames {
			out.Graph.FuncNames = append(out.Graph.FuncNames, fmt.Sprintf("%s.%s", p.Workload, fn))
			out.Graph.FuncCalls = append(out.Graph.FuncCalls, g.FuncCalls[i])
		}
		for _, n := range g.Nodes {
			nn := *n
			nn.ID += nodeBase
			nn.Func += funcBase
			out.Graph.Nodes = append(out.Graph.Nodes, &nn)
		}
		for _, e := range g.Edges {
			out.Graph.Edges = append(out.Graph.Edges,
				&sfgl.Edge{From: e.From + nodeBase, To: e.To + nodeBase, Count: e.Count})
		}
		for _, l := range g.Loops {
			nl := *l
			nl.ID += loopBase
			nl.Func += funcBase
			nl.Header += nodeBase
			if nl.Parent >= 0 {
				nl.Parent += loopBase
			}
			nl.Nodes = nil
			for _, id := range l.Nodes {
				nl.Nodes = append(nl.Nodes, id+nodeBase)
			}
			out.Graph.Loops = append(out.Graph.Loops, &nl)
		}
		nodeBase += len(g.Nodes)
		funcBase += len(g.FuncNames)
		loopBase += len(g.Loops)
	}
	out.CacheCfg = profiles[0].CacheCfg
	return out, nil
}
