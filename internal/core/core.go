// Package core implements the paper's primary contribution: synthesizing a
// benchmark in a high-level language from a statistical profile
// (Section III.B). The pipeline is
//
//  1. scale the SFGL down by a reduction factor R (Fig. 2),
//  2. build a skeleton of loops, conditionals, and straight-line blocks by
//     weighted random walks over the scaled SFGL,
//  3. group the skeleton into synthetic functions (which deliberately do
//     not correspond to the original program's functions),
//  4. populate basic blocks with C statements through pattern recognition
//     over the profiled instruction sequences (Table II), compensating for
//     uncovered instructions,
//  5. model branches (easy branches become always/never-taken tests whose
//     dead arm prints results; hard branches become modulo tests on loop
//     iterators) and memory accesses (stride walks over pre-allocated
//     arrays, Table I).
//
// The emitted program is an hlc.Program: it can be pretty-printed for
// distribution, compiled at any optimization level for any ISA, executed,
// profiled, and fingerprinted exactly like a hand-written workload.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/compiler"
	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/sfgl"
	"repro/internal/vm"
)

// Config controls synthesis.
type Config struct {
	// Reduction is the factor R of Section III.B.1. Zero selects it
	// automatically so the clone executes roughly TargetDyn instructions.
	Reduction uint64
	// TargetDyn is the clone's intended dynamic instruction count when
	// Reduction is 0 (default 150k; the paper targets 10M on MiBench-scale
	// inputs — the repo's workloads are scaled down ~60x to keep `go
	// test` fast, and so is this default).
	TargetDyn uint64
	// Seed drives the semi-random binary-to-source translation that
	// obfuscates proprietary structure. Equal seeds reproduce clones
	// exactly.
	Seed int64
	// MaxSkeletonItems caps generated top-level code size as a safety
	// valve (default 4096).
	MaxSkeletonItems int
}

// DefaultTargetDyn is the default synthetic dynamic instruction target.
const DefaultTargetDyn = 150_000

// Report summarizes a synthesis run.
type Report struct {
	Workload     string
	Reduction    uint64
	OriginalDyn  uint64
	ScaledBlocks int
	ScaledLoops  int
	// Coverage is the fraction of scaled-profile instructions consumed by
	// Table II patterns (the paper reports >95%).
	Coverage float64
	// Functions is the number of synthetic functions emitted.
	Functions int
	// StreamClasses lists the Table I classes that received stride arrays.
	StreamClasses []int
	// Truncated reports that the skeleton hit MaxSkeletonItems.
	Truncated bool
}

// Synthesize generates a benchmark clone from a statistical profile.
func Synthesize(p *profile.Profile, cfg Config) (*hlc.Program, Report, error) {
	if p == nil || p.Graph == nil {
		return nil, Report{}, fmt.Errorf("core: nil profile")
	}
	if cfg.TargetDyn == 0 {
		cfg.TargetDyn = DefaultTargetDyn
	}
	// Small originals get proportionally smaller clones: a proxy that runs
	// nearly as long as its original defeats the simulation-time-reduction
	// purpose (the paper's R ranges from 1 to 250 for the same reason).
	if cap := p.TotalDyn / 4; cfg.TargetDyn > cap && cap > 0 {
		cfg.TargetDyn = cap
	}
	if cfg.MaxSkeletonItems == 0 {
		cfg.MaxSkeletonItems = 4096
	}
	r := cfg.Reduction
	if r == 0 {
		r = p.TotalDyn / cfg.TargetDyn
		if r == 0 {
			r = 1
		}
	}

	// The paper picks R empirically so the clone hits a fixed dynamic
	// size; we automate that by generating, executing the candidate clone
	// (cheap — it is the reduced benchmark), and correcting R. A second
	// feedback phase then drives mix compensation: the observed load
	// fraction is compared against the profile's, and the compensation
	// loop's budget grows or shrinks until the clone's mix tracks the
	// original's (Fig. 6).
	var prog *hlc.Program
	var rep Report
	var compDyn float64
	generate := func() *generator {
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5FC9))
		scaled := p.Graph.ScaleDown(r)
		sk := buildSkeleton(scaled, rng, cfg.MaxSkeletonItems)
		gen := newGenerator(scaled, rng)
		gen.compDyn = compDyn
		prog = gen.program(sk.items)
		rep = Report{
			Workload:      p.Workload,
			Reduction:     r,
			OriginalDyn:   p.TotalDyn,
			ScaledBlocks:  len(scaled.Nodes),
			ScaledLoops:   len(scaled.Loops),
			Coverage:      gen.coverage(),
			Functions:     len(prog.Funcs) - 1, // excluding main
			StreamClasses: gen.usedClasses(),
			Truncated:     sk.truncated,
		}
		return gen
	}
	gen := generate()
	if cfg.Reduction == 0 {
		// Phase 1: calibrate R so the base clone (no compensation yet)
		// lands near TargetDyn.
		for attempt := 0; attempt < 3; attempt++ {
			actual, _, err := measureClone(prog, 16*cfg.TargetDyn)
			if err != nil {
				return nil, rep, fmt.Errorf("core: calibration run: %w", err)
			}
			ratio := float64(actual) / float64(cfg.TargetDyn)
			if ratio < 1.4 && ratio > 0.7 {
				break
			}
			nr := uint64(float64(r) * ratio)
			if nr < 1 {
				nr = 1
			}
			if nr == r {
				break
			}
			r = nr
			gen = generate()
		}
		// Phase 2: fit the compensation budget. Solving
		// (L + d*X)/(T + X) = f for the extra instructions X, where d is
		// the loop's load density, f the profile's load fraction. The
		// density bounds the reachable fraction, so f backs off just
		// under d, and the budget is capped so the clone keeps a healthy
		// reduction factor over the original (Fig. 4).
		targetLoadFrac := float64(p.Mix[isa.ClassLoad]) / float64(p.TotalDyn)
		// The clone must stay well under the original's dynamic size or
		// the Fig. 4 reduction factor inverts; compensation never grows
		// the total beyond this ceiling.
		maxTotal := 0.7 * float64(p.TotalDyn)
		// The measurement must be able to see past the ceiling, or the
		// loop would keep growing compDyn against a truncated reading
		// and the ceiling guard could never fire.
		budget := 16 * cfg.TargetDyn
		if mb := uint64(2 * maxTotal); budget < mb {
			budget = mb
		}
		for attempt := 0; attempt < 4; attempt++ {
			actual, mix, err := measureClone(prog, budget)
			if err != nil {
				return nil, rep, fmt.Errorf("core: mix calibration: %w", err)
			}
			if float64(actual) > maxTotal && compDyn > 0 {
				compDyn -= float64(actual) - maxTotal
				if compDyn < 0 {
					compDyn = 0
				}
				gen = generate()
				continue
			}
			density := gen.compDensity
			if density == 0 {
				density = compDensityEstimate
			}
			f := targetLoadFrac
			if f > density-0.05 {
				f = density - 0.05
			}
			loadFrac := float64(mix[isa.ClassLoad]) / float64(actual)
			if f <= 0 || (loadFrac > f-0.02 && loadFrac < f+0.02) {
				break
			}
			delta := (f*float64(actual) - float64(mix[isa.ClassLoad])) / (density - f)
			if room := maxTotal - float64(actual); delta > room {
				delta = room
			}
			next := compDyn + delta
			if next < 0 {
				next = 0
			}
			if next == compDyn {
				break
			}
			compDyn = next
			gen = generate()
		}
	}

	// The clone must be a valid HLC program; a failure here is a bug in
	// the generator, surfaced as an error for the caller.
	if _, err := hlc.Check(prog); err != nil {
		return nil, rep, fmt.Errorf("core: generated clone does not type-check: %w", err)
	}
	return prog, rep, nil
}

// measureClone compiles a candidate clone at -O0 and executes it to obtain
// its true dynamic instruction count and class mix. The clone is
// self-contained (stride arrays start zeroed), so no input setup is needed.
func measureClone(prog *hlc.Program, budget uint64) (uint64, [isa.NumClasses]uint64, error) {
	var mix [isa.NumClasses]uint64
	cp, err := hlc.Check(prog)
	if err != nil {
		return 0, mix, err
	}
	mp, err := compiler.Compile(cp, isa.AMD64, compiler.O0)
	if err != nil {
		return 0, mix, err
	}
	res, err := vm.New(mp).Run(vm.Config{
		MaxInstrs: budget,
		Hook:      func(ev *vm.Event) { mix[ev.Instr.Class()]++ },
	})
	if err != nil {
		if t, ok := err.(*vm.Trap); ok && t.Reason == vm.TrapBudgetExhausted {
			return res.DynInstrs, mix, nil // budget exhausted: report the cap
		}
		return 0, mix, err
	}
	return res.DynInstrs, mix, nil
}

// Consolidate merges several profiles into one (Section II.B.e, "benchmark
// consolidation"): node/edge/loop sets are concatenated with function
// indices re-based, and dynamic totals added. Synthesizing from the merged
// profile yields a single proxy representative of the whole set.
func Consolidate(name string, profiles ...*profile.Profile) (*profile.Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("core: nothing to consolidate")
	}
	out := &profile.Profile{Workload: name, Graph: &sfgl.Graph{}}
	nodeBase, funcBase, loopBase := 0, 0, 0
	for _, p := range profiles {
		out.TotalDyn += p.TotalDyn
		for i, c := range p.Mix {
			out.Mix[i] += c
		}
		g := p.Graph
		for i, fn := range g.FuncNames {
			out.Graph.FuncNames = append(out.Graph.FuncNames, fmt.Sprintf("%s.%s", p.Workload, fn))
			out.Graph.FuncCalls = append(out.Graph.FuncCalls, g.FuncCalls[i])
		}
		for _, n := range g.Nodes {
			nn := *n
			nn.ID += nodeBase
			nn.Func += funcBase
			out.Graph.Nodes = append(out.Graph.Nodes, &nn)
		}
		for _, e := range g.Edges {
			out.Graph.Edges = append(out.Graph.Edges,
				&sfgl.Edge{From: e.From + nodeBase, To: e.To + nodeBase, Count: e.Count})
		}
		for _, l := range g.Loops {
			nl := *l
			nl.ID += loopBase
			nl.Func += funcBase
			nl.Header += nodeBase
			if nl.Parent >= 0 {
				nl.Parent += loopBase
			}
			nl.Nodes = nil
			for _, id := range l.Nodes {
				nl.Nodes = append(nl.Nodes, id+nodeBase)
			}
			out.Graph.Loops = append(out.Graph.Loops, &nl)
		}
		nodeBase += len(g.Nodes)
		funcBase += len(g.FuncNames)
		loopBase += len(g.Loops)
	}
	out.CacheCfg = profiles[0].CacheCfg
	return out, nil
}
