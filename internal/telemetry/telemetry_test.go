package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTelemetryGetOrCreate pins the registry's identity contract: the same
// (name, labels) yields the same handle, label order is canonical, and
// different labels fork a new series.
func TestTelemetryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("jobs_total", "jobs", "result", "ok", "node", "n1")
	b := r.Counter("jobs_total", "jobs", "node", "n1", "result", "ok")
	if a != b {
		t.Fatalf("reordered labels returned a different series")
	}
	c := r.Counter("jobs_total", "jobs", "result", "failed", "node", "n1")
	if c == a {
		t.Fatalf("different labels returned the same series")
	}
	g1 := r.Gauge("depth", "queue depth")
	g2 := r.Gauge("depth", "queue depth")
	if g1 != g2 {
		t.Fatalf("gauge get-or-create returned different handles")
	}
	h1 := r.Histogram("lat", "latency", []float64{1, 2})
	h2 := r.Histogram("lat", "latency", []float64{1, 2})
	if h1 != h2 {
		t.Fatalf("histogram get-or-create returned different handles")
	}
}

// TestTelemetryKindMismatchPanics pins that re-registering a name under a
// different kind is a programming error.
func TestTelemetryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "x")
	defer func() {
		if recover() == nil {
			t.Fatalf("kind mismatch did not panic")
		}
	}()
	r.Gauge("x", "x")
}

// TestTelemetryExpositionGolden pins the exact Prometheus text exposition
// bytes for a representative registry.
func TestTelemetryExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("synth_jobs_total", "Jobs by result.", "result", "ok").Add(3)
	r.Counter("synth_jobs_total", "Jobs by result.", "result", "failed").Inc()
	r.Gauge("synth_queue_depth", "Pending jobs.").Set(7)
	h := r.Histogram("synth_stage_seconds", "Stage wall time.", []float64{0.5, 1}, "stage", "parse")
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)
	r.CounterFunc("synth_instrs_total", "Executed instructions.", func() uint64 { return 42 })

	const want = `# HELP synth_instrs_total Executed instructions.
# TYPE synth_instrs_total counter
synth_instrs_total 42
# HELP synth_jobs_total Jobs by result.
# TYPE synth_jobs_total counter
synth_jobs_total{result="ok"} 3
synth_jobs_total{result="failed"} 1
# HELP synth_queue_depth Pending jobs.
# TYPE synth_queue_depth gauge
synth_queue_depth 7
# HELP synth_stage_seconds Stage wall time.
# TYPE synth_stage_seconds histogram
synth_stage_seconds_bucket{stage="parse",le="0.5"} 1
synth_stage_seconds_bucket{stage="parse",le="1"} 2
synth_stage_seconds_bucket{stage="parse",le="+Inf"} 3
synth_stage_seconds_sum{stage="parse"} 3
synth_stage_seconds_count{stage="parse"} 3
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestTelemetryRegistryRace hammers counters, gauges, histograms, and
// get-or-create from many goroutines while a scraper renders the registry;
// run under -race this pins the concurrency contract.
func TestTelemetryRegistryRace(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("race_total", "race", "w", "a")
			g := r.Gauge("race_depth", "race")
			h := r.Histogram("race_seconds", "race", DefaultLatencyBuckets)
			for j := 0; j < 2000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j) / 1000)
				// Re-resolve handles to race get-or-create too.
				r.Counter("race_total", "race", "w", "a").Inc()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr := NewTracer(64)
		for i := 0; i < 500; i++ {
			_, s := tr.Start(context.Background(), "race")
			s.SetAttr("i", "x")
			s.End()
		}
	}()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Let the scraper overlap the writers, then stop it.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
	if got := r.Counter("race_total", "race", "w", "a").Value(); got != 4*2*2000 {
		t.Fatalf("race_total = %d, want %d", got, 4*2*2000)
	}
	if got := r.Histogram("race_seconds", "race", DefaultLatencyBuckets).Count(); got != 4*2000 {
		t.Fatalf("race_seconds count = %d, want %d", got, 4*2000)
	}
}

// TestTelemetryNilSafety pins that every handle type, the registry, the
// tracer, and the sink are usable as nil values — and that the disabled
// hot path does not allocate.
func TestTelemetryNilSafety(t *testing.T) {
	var r *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var sk *Sink
	if got := r.Counter("x", "x"); got != nil {
		t.Fatalf("nil registry returned non-nil counter")
	}
	r.CounterFunc("x", "x", func() uint64 { return 0 })
	r.GaugeFunc("x", "x", func() float64 { return 0 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry scrape: %v", err)
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(1)
		h.Observe(1)
		ctx2, s := tr.Start(ctx, "x")
		s.SetAttr("k", "v")
		s.End()
		if ctx2 != ctx {
			t.Errorf("nil tracer changed the context")
		}
		sk.Emit("x")
		sk.Close()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %.1f times per op, want 0", allocs)
	}
}

// TestTelemetryHistogramBuckets pins bucket routing, including the +Inf
// overflow bucket and ObserveSince.
func TestTelemetryHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(1) // boundary: le="1" is inclusive
	h.Observe(5)
	h.Observe(100)
	if got := h.counts[0].Load(); got != 2 {
		t.Fatalf("bucket le=1 = %d, want 2", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Fatalf("bucket le=10 = %d, want 1", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Fatalf("bucket +Inf = %d, want 1", got)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Fatalf("count=%d sum=%v, want 4 and 106.5", h.Count(), h.Sum())
	}
	h.ObserveSince(time.Now().Add(-2 * time.Second))
	if got := h.counts[1].Load(); got != 2 {
		t.Fatalf("ObserveSince(~2s) landed outside le=10: bucket=%d", got)
	}
}

// TestTelemetryRate pins the per-second delta sampler behind rate gauges.
func TestTelemetryRate(t *testing.T) {
	var v uint64
	rate := Rate(func() uint64 { return v })
	if got := rate(); got != 0 {
		t.Fatalf("first sample = %v, want 0", got)
	}
	v = 1_000_000
	time.Sleep(20 * time.Millisecond)
	got := rate()
	if got <= 0 {
		t.Fatalf("rate after counter advance = %v, want > 0", got)
	}
}
