package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric. All methods are
// atomic and no-ops on a nil receiver, so disabled instrumentation costs a
// single nil check.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down, stored as IEEE-754
// bits in an atomic word. All methods are atomic and no-ops on a nil
// receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta to the gauge (negative deltas decrease it).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: cumulative-on-export per-bucket
// counts, a running sum, and a total count, all updated atomically.
// Observations route to the first bucket whose upper bound is >= the
// value; values beyond the last bound land in the implicit +Inf bucket.
// All methods are no-ops on a nil receiver.
type Histogram struct {
	bounds []float64       // upper bounds, strictly increasing, no +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-added
	count  atomic.Uint64
}

// newHistogram builds a histogram over the given upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// DefaultLatencyBuckets is a general-purpose latency layout in seconds,
// spanning 1ms to 60s: wide enough for an HTTP route and a cold compile
// stage alike.
var DefaultLatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// write renders the histogram's exposition lines (cumulative _bucket
// series, then _sum and _count).
func (h *Histogram) write(w io.Writer, name, ls string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := `le="` + strconv.FormatFloat(b, 'g', -1, 64) + `"`
		fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", ls, le), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", ls, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", ls, ""), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", ls, ""), h.Count())
}

// Rate converts a monotone counter read into a per-second rate sampler:
// each call returns the counter delta divided by the seconds since the
// previous call (0 on the first call). Wrap the result in GaugeFunc for a
// live rate gauge such as MIPS. The returned func is safe for concurrent
// use.
func Rate(fn func() uint64) func() float64 {
	var mu sync.Mutex
	var lastV uint64
	var lastT time.Time
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		v := fn()
		if lastT.IsZero() {
			lastV, lastT = v, now
			return 0
		}
		dt := now.Sub(lastT).Seconds()
		if dt <= 0 {
			return 0
		}
		r := float64(v-lastV) / dt
		lastV, lastT = v, now
		return r
	}
}
