package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// syncBuffer guards a bytes.Buffer so the test can read what the drain
// goroutine wrote; the Sink itself must never interleave writes.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestTelemetrySinkSerializes hammers one sink from many goroutines and
// asserts every output line is a complete, parseable JSON object — the
// single-writer guarantee the supervisor event stream relies on. Run under
// -race this also pins the emit/close locking.
func TestTelemetrySinkSerializes(t *testing.T) {
	var buf syncBuffer
	s := NewSink(&buf, "event: ")
	const emitters, each = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < emitters; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				s.Emit(map[string]int{"emitter": id, "seq": j})
			}
		}(i)
	}
	wg.Wait()
	s.Close()
	s.Close() // idempotent
	s.Emit("after close is dropped, not a panic")

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != emitters*each {
		t.Fatalf("got %d lines, want %d", len(lines), emitters*each)
	}
	seen := make(map[int]int)
	for _, line := range lines {
		rest, ok := strings.CutPrefix(line, "event: ")
		if !ok {
			t.Fatalf("line missing prefix: %q", line)
		}
		var ev struct {
			Emitter int `json:"emitter"`
			Seq     int `json:"seq"`
		}
		if err := json.Unmarshal([]byte(rest), &ev); err != nil {
			t.Fatalf("interleaved or truncated line %q: %v", line, err)
		}
		seen[ev.Emitter]++
	}
	for i := 0; i < emitters; i++ {
		if seen[i] != each {
			t.Fatalf("emitter %d has %d lines, want %d", i, seen[i], each)
		}
	}
}
