package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// spanCtxKey is the context key under which the active span is carried.
type spanCtxKey struct{}

// Tracer records spans into a bounded ring buffer and exports them as
// Chrome trace_event JSON (load chrome://tracing or https://ui.perfetto.dev
// on the output). Spans nest through context propagation: Start returns a
// context carrying the new span, and any span started under that context
// becomes its child. Safe for concurrent use; all methods are no-ops on a
// nil *Tracer, and Start on a nil tracer returns the context unchanged
// with a nil (no-op) span — disabled tracing is allocation-free.
type Tracer struct {
	mu      sync.Mutex
	spans   []spanRecord
	next    int  // ring cursor
	wrapped bool // ring has overwritten at least one span
	cap     int
	dropped atomic.Uint64
	ids     atomic.Uint64
	epoch   time.Time
}

// spanRecord is one finished span as kept in the ring.
type spanRecord struct {
	name  string
	tid   uint64 // root span id of this span's tree — Chrome "thread"
	start time.Time
	dur   time.Duration
	attrs []spanAttr
}

// spanAttr is one key/value attribute attached to a span.
type spanAttr struct {
	key string
	val string
}

// Span is one in-flight trace region. End it exactly once; SetAttr before
// End. All methods are no-ops on a nil *Span.
type Span struct {
	tracer *Tracer
	name   string
	id     uint64
	tid    uint64
	start  time.Time
	mu     sync.Mutex
	attrs  []spanAttr
	ended  bool
}

// NewTracer returns a tracer that retains the most recent capacity spans
// (older spans are overwritten and counted as dropped). Capacity must be
// positive.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1
	}
	return &Tracer{cap: capacity, epoch: time.Now()}
}

// SpanFromContext returns the span carried by ctx, or nil if none.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// Start begins a span named name, parented under any span already carried
// by ctx, and returns a derived context carrying the new span. On a nil
// tracer it returns ctx unchanged and a nil span, so instrumented code
// needs no enabled/disabled branches.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{tracer: t, name: name, id: t.ids.Add(1), start: time.Now()}
	if parent := SpanFromContext(ctx); parent != nil && parent.tracer == t {
		s.tid = parent.tid
	} else {
		s.tid = s.id
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SetAttr attaches a string attribute to the span, shown in the trace
// viewer's args pane.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, spanAttr{key, val})
	}
	s.mu.Unlock()
}

// End finishes the span and commits it to the tracer's ring. Calling End
// more than once records the span only once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := spanRecord{name: s.name, tid: s.tid, start: s.start,
		dur: time.Since(s.start), attrs: s.attrs}
	s.mu.Unlock()
	t := s.tracer
	t.mu.Lock()
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, rec)
	} else {
		t.spans[t.next] = rec
		t.wrapped = true
		t.dropped.Add(1)
	}
	t.next = (t.next + 1) % t.cap
	t.mu.Unlock()
}

// Dropped returns how many spans were overwritten because the ring was
// full (0 on a nil tracer).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Len returns how many spans the ring currently holds (0 on a nil
// tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// traceEvent is one Chrome trace_event JSON object.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the top-level Chrome trace JSON object.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// Export writes every retained span as Chrome trace_event JSON ("X"
// complete events; ts/dur in microseconds relative to the tracer's
// creation). A span's tid is the id of the root span of its tree, so a
// nested stage DAG renders as stacked rows per top-level operation.
// Nil tracers write an empty trace.
func (t *Tracer) Export(w io.Writer) error {
	f := traceFile{TraceEvents: []traceEvent{}}
	if t != nil {
		t.mu.Lock()
		recs := make([]spanRecord, 0, len(t.spans))
		// Ring order: oldest first.
		if t.wrapped {
			recs = append(recs, t.spans[t.next:]...)
			recs = append(recs, t.spans[:t.next]...)
		} else {
			recs = append(recs, t.spans...)
		}
		epoch := t.epoch
		t.mu.Unlock()
		for _, r := range recs {
			ev := traceEvent{
				Name: r.name,
				Ph:   "X",
				Ts:   float64(r.start.Sub(epoch).Nanoseconds()) / 1e3,
				Dur:  float64(r.dur.Nanoseconds()) / 1e3,
				Pid:  1,
				Tid:  r.tid,
			}
			if len(r.attrs) > 0 {
				ev.Args = make(map[string]string, len(r.attrs))
				for _, a := range r.attrs {
					ev.Args[a.key] = a.val
				}
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
