// Package telemetry is the repo's dependency-free observability layer: a
// metrics registry (atomic counters, gauges, fixed-bucket histograms with
// Prometheus text exposition), a lightweight span tracer exporting Chrome
// trace_event JSON, and a single-writer event sink for structured logs.
//
// Everything is built for instrumentation of hot paths: metric handles are
// looked up once and then updated with a single atomic operation, every
// type is safe for concurrent use, and every method is a no-op on a nil
// receiver — disabled telemetry is a nil Registry or Tracer, and the
// instrumented code runs the same lines either way, allocation-free.
//
// See docs/observability.md for the metric name catalog and the trace and
// scrape how-tos.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind discriminates a family's exposition type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// expoType renders the kind as a Prometheus TYPE keyword.
func (k metricKind) expoType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one metric name: its metadata plus every labeled series
// registered under it.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histogram upper bounds (without +Inf)

	mu     sync.Mutex
	series map[string]any // label string -> *Counter/*Gauge/*Histogram/func
	order  []string       // label strings in first-registration order
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Lookups are get-or-create and idempotent: asking twice
// for the same (name, labels) returns the same handle, so instrumented
// packages can resolve their handles independently and still share series.
// All methods are safe for concurrent use, and safe on a nil *Registry —
// they return nil handles whose updates are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelString renders alternating key/value label pairs canonically (sorted
// by key), so two lookups with reordered labels hit the same series.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q (want key/value pairs)", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// sameBuckets reports whether two bucket lists agree.
func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// getFamily returns the family for name, creating it on first use. A name
// re-registered under a different kind or bucket layout is a programming
// error and panics — silently forking a metric would corrupt dashboards.
func (r *Registry) getFamily(name, help string, kind metricKind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s re-registered as %s (was %s)",
			name, kind.expoType(), f.kind.expoType()))
	}
	if kind == kindHistogram && !sameBuckets(f.buckets, buckets) {
		panic(fmt.Sprintf("telemetry: histogram %s re-registered with different buckets", name))
	}
	return f
}

// getSeries returns the series for ls in f, creating it with mk on first
// use.
func (f *family) getSeries(ls string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[ls]; ok {
		return s
	}
	s := mk()
	f.series[ls] = s
	f.order = append(f.order, ls)
	return s
}

// Counter returns the counter registered under name and the alternating
// key/value label pairs, creating it on first use. Nil registries return a
// nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, kindCounter, nil)
	return f.getSeries(labelString(labels), func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use. Nil registries return a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, kindGauge, nil)
	return f.getSeries(labelString(labels), func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the fixed-bucket histogram registered under name and
// labels, creating it on first use. buckets are the strictly increasing
// upper bounds; a final +Inf bucket is implicit. Nil registries return a
// nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s buckets not strictly increasing", name))
		}
	}
	f := r.getFamily(name, help, kindHistogram, buckets)
	return f.getSeries(labelString(labels), func() any { return newHistogram(buckets) }).(*Histogram)
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotone counts maintained elsewhere (the VM's executed
// instruction total). No-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...string) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, kindCounterFunc, nil)
	f.getSeries(labelString(labels), func() any { return fn })
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time —
// for point-in-time observations like queue depth or a live rate. No-op on
// a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, kindGaugeFunc, nil)
	f.getSeries(labelString(labels), func() any { return fn })
}

// formatFloat renders a sample value the way the exposition format expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName renders "name{labels}" (or bare "name" without labels), with
// extra pre-rendered label text appended inside the braces.
func seriesName(name, ls, extra string) string {
	all := ls
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		return name
	}
	return name + "{" + all + "}"
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and series in
// registration order, so output is stable for golden tests and diffs.
// Nil registries write nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind.expoType())
		for _, ls := range f.order {
			switch s := f.series[ls].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name, ls, ""), s.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, ls, ""), formatFloat(s.Value()))
			case *Histogram:
				s.write(&b, f.name, ls)
			case func() uint64:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name, ls, ""), s())
			case func() float64:
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, ls, ""), formatFloat(s()))
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}
