package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// decodeTrace parses an exported trace back into its event list.
func decodeTrace(t *testing.T, s string) []traceEvent {
	t.Helper()
	var f traceFile
	if err := json.Unmarshal([]byte(s), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, s)
	}
	return f.TraceEvents
}

// TestTelemetryTracerNesting pins context-propagated parenting: children
// share the root span's tid and sit inside the parent's [ts, ts+dur]
// window, which is exactly what the Chrome viewer uses to stack them.
func TestTelemetryTracerNesting(t *testing.T) {
	tr := NewTracer(16)
	ctx := context.Background()
	ctx1, root := tr.Start(ctx, "synthesize")
	root.SetAttr("workload", "bitcount")
	ctx2, mid := tr.Start(ctx1, "profile")
	_, leaf := tr.Start(ctx2, "compile")
	leaf.End()
	mid.End()
	root.End()
	_, other := tr.Start(ctx, "parse") // separate tree
	other.End()

	var b strings.Builder
	if err := tr.Export(&b); err != nil {
		t.Fatalf("Export: %v", err)
	}
	evs := decodeTrace(t, b.String())
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	byName := map[string]traceEvent{}
	for _, e := range evs {
		if e.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", e.Name, e.Ph)
		}
		byName[e.Name] = e
	}
	rootEv, midEv, leafEv := byName["synthesize"], byName["profile"], byName["compile"]
	if rootEv.Tid != midEv.Tid || midEv.Tid != leafEv.Tid {
		t.Fatalf("span tree split across tids: %d %d %d", rootEv.Tid, midEv.Tid, leafEv.Tid)
	}
	if byName["parse"].Tid == rootEv.Tid {
		t.Fatalf("independent tree shares the root's tid")
	}
	within := func(inner, outer traceEvent) bool {
		return inner.Ts >= outer.Ts && inner.Ts+inner.Dur <= outer.Ts+outer.Dur
	}
	if !within(midEv, rootEv) || !within(leafEv, midEv) {
		t.Fatalf("child spans not contained in parents:\nroot=%+v\nmid=%+v\nleaf=%+v",
			rootEv, midEv, leafEv)
	}
	if rootEv.Args["workload"] != "bitcount" {
		t.Fatalf("attrs not exported: %+v", rootEv.Args)
	}
}

// TestTelemetryTracerRing pins the bounded-ring contract: the most recent
// spans survive, older ones are dropped and counted.
func TestTelemetryTracerRing(t *testing.T) {
	tr := NewTracer(3)
	ctx := context.Background()
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		_, s := tr.Start(ctx, name)
		s.End()
	}
	if tr.Len() != 3 {
		t.Fatalf("ring holds %d spans, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	var b strings.Builder
	if err := tr.Export(&b); err != nil {
		t.Fatalf("Export: %v", err)
	}
	evs := decodeTrace(t, b.String())
	var names []string
	for _, e := range evs {
		names = append(names, e.Name)
	}
	if got := strings.Join(names, ""); got != "cde" {
		t.Fatalf("ring export order = %q, want oldest-first cde", got)
	}
}

// TestTelemetryTracerDoubleEnd pins that a span committed twice records
// only once.
func TestTelemetryTracerDoubleEnd(t *testing.T) {
	tr := NewTracer(8)
	_, s := tr.Start(context.Background(), "once")
	s.End()
	s.End()
	if tr.Len() != 1 {
		t.Fatalf("double End recorded %d spans, want 1", tr.Len())
	}
}

// TestTelemetryTracerNilExport pins that a nil tracer exports an empty but
// well-formed trace.
func TestTelemetryTracerNilExport(t *testing.T) {
	var tr *Tracer
	var b strings.Builder
	if err := tr.Export(&b); err != nil {
		t.Fatalf("Export: %v", err)
	}
	if evs := decodeTrace(t, b.String()); len(evs) != 0 {
		t.Fatalf("nil tracer exported %d events", len(evs))
	}
}
