package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sink serializes structured events from many goroutines onto one writer:
// Emit marshals the event to a JSON line and hands it to a single drain
// goroutine, so concurrent emitters can never interleave bytes on the
// underlying writer. The channel is bounded but Emit blocks rather than
// drops — event streams are for operators, and a silently truncated stream
// is worse than brief backpressure.
type Sink struct {
	prefix string
	ch     chan []byte
	done   chan struct{}

	mu     sync.Mutex
	closed bool
}

// sinkBuffer is the number of marshaled events the drain goroutine may lag
// behind emitters before Emit blocks.
const sinkBuffer = 256

// NewSink starts a sink writing JSON lines (each prefixed with prefix) to
// w. Close it to flush; after Close, Emit is a no-op. A nil Sink is also
// valid: Emit and Close on it are no-ops.
func NewSink(w io.Writer, prefix string) *Sink {
	s := &Sink{prefix: prefix, ch: make(chan []byte, sinkBuffer), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		for line := range s.ch {
			fmt.Fprintf(w, "%s%s\n", prefix, line)
		}
	}()
	return s
}

// Emit marshals v to JSON and queues it for the writer goroutine, blocking
// if the queue is full. Marshal failures and emits after Close are dropped
// silently. No-op on a nil sink.
func (s *Sink) Emit(v any) {
	if s == nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.ch <- b
}

// Close stops the sink after draining every queued event. Safe to call
// more than once; no-op on a nil sink.
func (s *Sink) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.ch)
	s.mu.Unlock()
	<-s.done
}
