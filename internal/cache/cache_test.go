package cache

import (
	"testing"
	"testing/quick"
)

func TestDirectMappedBasics(t *testing.T) {
	c := New(Config{Size: 1024, LineSize: 32, Assoc: 1})
	if c.Access(0) {
		t.Error("cold access should miss")
	}
	if !c.Access(0) {
		t.Error("repeat access should hit")
	}
	if !c.Access(31) {
		t.Error("same-line access should hit")
	}
	if c.Access(32) {
		t.Error("next line should miss")
	}
	// 1024/32 = 32 sets; address 1024 maps to set 0 and evicts address 0.
	if c.Access(1024) {
		t.Error("conflicting line should miss")
	}
	if c.Access(0) {
		t.Error("evicted line should miss")
	}
}

func TestAssociativityAvoidsConflict(t *testing.T) {
	dm := New(Config{Size: 1024, LineSize: 32, Assoc: 1})
	sa := New(Config{Size: 1024, LineSize: 32, Assoc: 2})
	// Two lines conflicting in the direct-mapped cache coexist 2-way.
	for i := 0; i < 10; i++ {
		dm.Access(0)
		dm.Access(1024)
		sa.Access(0)
		sa.Access(2048) // 2-way: 16 sets, 2048 maps to set 0 as well
	}
	if dm.Stats.Misses != 20 {
		t.Errorf("direct-mapped misses = %d, want 20 (ping-pong)", dm.Stats.Misses)
	}
	if sa.Stats.Misses != 2 {
		t.Errorf("2-way misses = %d, want 2 (compulsory only)", sa.Stats.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, one set: size = 2 lines.
	c := New(Config{Size: 64, LineSize: 32, Assoc: 2})
	c.Access(0)   // miss, way 0
	c.Access(64)  // miss, way 1
	c.Access(0)   // hit, 64 becomes LRU
	c.Access(128) // miss, evicts 64
	if !c.Access(0) {
		t.Error("0 should have survived (MRU)")
	}
	if c.Access(64) {
		t.Error("64 should have been evicted (LRU)")
	}
}

func TestStrideMissRates(t *testing.T) {
	// The Table I premise: a stride of S bytes over a 32-byte-line cache
	// (with a working set exceeding the cache) misses at rate S/32.
	for _, tc := range []struct {
		stride int
		want   float64
	}{
		{4, 4.0 / 32}, {8, 8.0 / 32}, {16, 16.0 / 32}, {32, 1.0},
	} {
		c := New(Config{Size: 8 * 1024, LineSize: 32, Assoc: 2})
		span := 64 * 1024 // working set larger than the cache
		addr := 0
		for i := 0; i < 200000; i++ {
			c.Access(uint64(addr))
			addr = (addr + tc.stride) % span
		}
		got := c.Stats.MissRate()
		if got < tc.want-0.02 || got > tc.want+0.02 {
			t.Errorf("stride %d: miss rate %.3f, want ≈%.3f", tc.stride, got, tc.want)
		}
	}
}

func TestZeroStrideAlwaysHits(t *testing.T) {
	c := New(Config{Size: 1024, LineSize: 32, Assoc: 2})
	for i := 0; i < 1000; i++ {
		c.Access(4096)
	}
	if c.Stats.Misses != 1 {
		t.Errorf("zero stride misses = %d, want 1 (compulsory)", c.Stats.Misses)
	}
}

func TestMultiSimSinglePassMonotone(t *testing.T) {
	// Bigger caches of the same organization must not miss more on the
	// same trace (inclusion property for LRU with fixed line size; here we
	// just assert the sweep is monotone for a realistic access pattern).
	ms := NewMultiSim(SweepConfigs())
	addr := uint64(0)
	for i := 0; i < 300000; i++ {
		// Mix of sequential and strided accesses over 24KB.
		ms.Access(addr % (24 * 1024))
		addr += 12
	}
	for i := 1; i < len(ms.Caches); i++ {
		prev, cur := ms.Caches[i-1].Stats, ms.Caches[i].Stats
		if cur.MissRate() > prev.MissRate()+1e-9 {
			t.Errorf("%s misses more than %s (%.4f > %.4f)",
				ms.Caches[i].Config().Name, ms.Caches[i-1].Config().Name,
				cur.MissRate(), prev.MissRate())
		}
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := &Hierarchy{
		L1:    New(Config{Size: 1024, LineSize: 32, Assoc: 1}),
		L2:    New(Config{Size: 8192, LineSize: 32, Assoc: 2}),
		L1Lat: 2, L2Lat: 10, MemLat: 100,
	}
	if got := h.AccessLatency(0); got != 100 {
		t.Errorf("cold access latency = %d, want 100", got)
	}
	if got := h.AccessLatency(0); got != 2 {
		t.Errorf("warm access latency = %d, want 2", got)
	}
	// Evict from L1 (1024 conflicts in L1 but not in 2-way 8KB L2).
	h.AccessLatency(1024)
	if got := h.AccessLatency(0); got != 10 {
		t.Errorf("L1-evicted access latency = %d, want 10 (L2 hit)", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Size: 0, LineSize: 32, Assoc: 1},
		{Size: 1024, LineSize: 24, Assoc: 1},
		{Size: 100, LineSize: 32, Assoc: 1},
		{Size: 1024, LineSize: 32, Assoc: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
	if err := (Config{Size: 4096, LineSize: 32, Assoc: 4}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAccessDeterministicProperty(t *testing.T) {
	// Property: replaying any address sequence yields identical stats.
	f := func(addrs []uint16) bool {
		a := New(Config{Size: 2048, LineSize: 32, Assoc: 2})
		b := New(Config{Size: 2048, LineSize: 32, Assoc: 2})
		for _, x := range addrs {
			a.Access(uint64(x))
		}
		for _, x := range addrs {
			b.Access(uint64(x))
		}
		return a.Stats == b.Stats
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMissesNeverExceedAccesses(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(Config{Size: 1024, LineSize: 32, Assoc: 1})
		for _, x := range addrs {
			c.Access(uint64(x))
		}
		return c.Stats.Misses <= c.Stats.Accesses &&
			c.Stats.Accesses == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	c := New(Config{Size: 1024, LineSize: 32, Assoc: 2})
	c.Access(0)
	c.Access(0)
	c.Reset()
	if c.Stats.Accesses != 0 {
		t.Error("stats not cleared")
	}
	if c.Access(0) {
		t.Error("contents not cleared")
	}
}
