// Package cache implements set-associative LRU data-cache simulation.
//
// The paper measures per-access hit/miss ratios by simulating a cache during
// profiling (citing Hill & Smith's single-pass multi-configuration
// evaluation); MultiSim provides exactly that: one pass over the address
// stream updates a whole range of cache configurations, which regenerates
// the 1KB–32KB sweeps of Figs. 7 and 8.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	Name     string
	Size     int // total bytes
	LineSize int // bytes per line
	Assoc    int // ways per set
}

// Validate checks structural soundness.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.Size%(c.LineSize*c.Assoc) != 0 {
		return fmt.Errorf("cache: size %d not divisible by line*assoc", c.Size)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineSize)
	}
	return nil
}

// Stats accumulates access counts.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// HitRate returns the fraction of accesses that hit (1.0 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return 1 - float64(s.Misses)/float64(s.Accesses)
}

// MissRate returns the fraction of accesses that missed.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative LRU cache model. It tracks presence only (no
// data), which is all the framework needs. Stats counts load accesses
// only; stores fill lines like any access but accumulate in StoreStats, so
// the load hit rates reports quote are not diluted by store fills.
type Cache struct {
	cfg        Config
	sets       [][]line
	setShift   uint
	setMask    uint64
	tick       uint64
	Stats      Stats
	StoreStats Stats
}

// New builds a cache; it panics on invalid geometry (configs are
// programmer-supplied constants).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nsets))
	}
	c := &Cache{cfg: cfg, sets: make([][]line, nsets)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	c.setShift = uint(log2(cfg.LineSize))
	c.setMask = uint64(nsets - 1)
	return c
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access touches addr, returns whether it hit, and updates LRU state,
// filling the line on a miss. The access counts into Stats (the load-side
// statistics).
func (c *Cache) Access(addr uint64) bool {
	return c.access(addr, &c.Stats)
}

// AccessStore touches addr on behalf of a store: identical line fill and
// LRU behavior, but the access counts into StoreStats so store traffic
// cannot skew the load hit rates.
func (c *Cache) AccessStore(addr uint64) bool {
	return c.access(addr, &c.StoreStats)
}

func (c *Cache) access(addr uint64, st *Stats) bool {
	c.tick++
	st.Accesses++
	set := (addr >> c.setShift) & c.setMask
	tag := addr >> c.setShift
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].used = c.tick
			return true
		}
	}
	st.Misses++
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].used < lines[victim].used {
			victim = i
		}
	}
	lines[victim] = line{tag: tag, valid: true, used: c.tick}
	return false
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for _, s := range c.sets {
		for i := range s {
			s[i] = line{}
		}
	}
	c.tick = 0
	c.Stats = Stats{}
	c.StoreStats = Stats{}
}

// MultiSim evaluates many cache configurations in a single pass over the
// address stream.
type MultiSim struct {
	Caches []*Cache
}

// NewMultiSim builds simulators for each configuration.
func NewMultiSim(cfgs []Config) *MultiSim {
	ms := &MultiSim{}
	for _, cfg := range cfgs {
		ms.Caches = append(ms.Caches, New(cfg))
	}
	return ms
}

// Access feeds one address to every configuration.
func (ms *MultiSim) Access(addr uint64) {
	for _, c := range ms.Caches {
		c.Access(addr)
	}
}

// SweepConfigs returns the paper's data-cache sweep: sizes 1KB..32KB,
// 2-way, 32-byte lines (Figs. 7 and 8).
func SweepConfigs() []Config {
	var out []Config
	for _, kb := range []int{1, 2, 4, 8, 16, 32} {
		out = append(out, Config{
			Name:     fmt.Sprintf("%dKB", kb),
			Size:     kb * 1024,
			LineSize: 32,
			Assoc:    2,
		})
	}
	return out
}

// Hierarchy is a two-level data-cache hierarchy with fixed latencies, used
// by the CPU timing models.
type Hierarchy struct {
	L1, L2               *Cache
	L1Lat, L2Lat, MemLat int
}

// AccessLatency touches both levels as needed and returns the load-to-use
// latency in cycles.
func (h *Hierarchy) AccessLatency(addr uint64) int {
	if h.L1.Access(addr) {
		return h.L1Lat
	}
	if h.L2.Access(addr) {
		return h.L2Lat
	}
	return h.MemLat
}

// StoreLatency is AccessLatency for the store side: lines fill and LRU
// state updates exactly as for a load at the same address, but the
// accesses count into each level's StoreStats, keeping the reported load
// hit rates honest. The returned latency is how long the store occupies
// its store-queue entry before the written line is globally visible.
func (h *Hierarchy) StoreLatency(addr uint64) int {
	if h.L1.AccessStore(addr) {
		return h.L1Lat
	}
	if h.L2.AccessStore(addr) {
		return h.L2Lat
	}
	return h.MemLat
}
