// Package plagiarism implements winnowing document fingerprinting
// (Schleimer, Wilkerson & Aiken, SIGMOD 2003) — the algorithm behind Moss,
// which the paper uses in Section V.E to verify that a synthetic clone
// shares no similarity with the workload it was generated from. Like Moss
// and JPlag, the fingerprinter is robust to renaming: identifiers and
// literal values are canonicalized before hashing, so similarity reflects
// program structure rather than spelling.
package plagiarism

import (
	"fmt"

	"repro/internal/hlc"
)

// Options configures fingerprinting. The defaults (K=8, W=4) follow common
// Moss practice: matches shorter than K tokens are noise, and any match at
// least K+W-1 tokens long is guaranteed to be caught.
type Options struct {
	K int // k-gram length in tokens
	W int // winnowing window size
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{K: 8, W: 4} }

// Fingerprint is a winnowed set of k-gram hashes.
type Fingerprint struct {
	hashes map[uint64]bool
	tokens int
}

// Size returns the number of selected fingerprints.
func (f *Fingerprint) Size() int { return len(f.hashes) }

// Tokens returns the length of the underlying canonical token stream.
func (f *Fingerprint) Tokens() int { return f.tokens }

// File fingerprints an HLC source text.
func File(src string, opts Options) (*Fingerprint, error) {
	toks, err := hlc.Tokenize(src)
	if err != nil {
		return nil, fmt.Errorf("plagiarism: %w", err)
	}
	stream := canonicalize(toks)
	return fingerprint(stream, opts), nil
}

// canonicalize maps the token stream into a rename-resistant alphabet:
// every identifier becomes the same symbol, every numeric literal becomes
// the same symbol, and structural tokens keep their identity.
func canonicalize(toks []hlc.Lexeme) []uint64 {
	const (
		symIdent = 1000
		symInt   = 1001
		symFloat = 1002
	)
	var out []uint64
	for _, t := range toks {
		switch t.Tok {
		case hlc.EOF:
		case hlc.IDENT:
			out = append(out, symIdent)
		case hlc.INTLIT:
			out = append(out, symInt)
		case hlc.FLOATLIT:
			out = append(out, symFloat)
		default:
			out = append(out, uint64(t.Tok))
		}
	}
	return out
}

// fingerprint hashes all k-grams and winnows them: from each window of W
// consecutive hashes the minimum is selected (rightmost on ties), giving a
// position-independent document signature.
func fingerprint(stream []uint64, opts Options) *Fingerprint {
	if opts.K <= 0 {
		opts.K = 8
	}
	if opts.W <= 0 {
		opts.W = 4
	}
	fp := &Fingerprint{hashes: make(map[uint64]bool), tokens: len(stream)}
	if len(stream) < opts.K {
		return fp
	}
	// Rolling polynomial hash over k-grams.
	const base = 1099511628211
	var pow uint64 = 1
	for i := 0; i < opts.K-1; i++ {
		pow *= base
	}
	var h uint64
	var grams []uint64
	for i, v := range stream {
		h = h*base + v
		if i >= opts.K-1 {
			grams = append(grams, h)
			h -= stream[i-opts.K+1] * pow // drop the oldest symbol
		}
	}
	// Winnow.
	n := len(grams)
	if n == 0 {
		return fp
	}
	w := opts.W
	if w > n {
		w = n
	}
	for i := 0; i+w <= n; i++ {
		min := grams[i]
		for j := i + 1; j < i+w; j++ {
			if grams[j] <= min {
				min = grams[j]
			}
		}
		fp.hashes[min] = true
	}
	if len(fp.hashes) == 0 {
		fp.hashes[grams[0]] = true
	}
	return fp
}

// Similarity is a Moss-style report between two documents.
type Similarity struct {
	// Shared is the number of fingerprints present in both documents.
	Shared int
	// AContainment and BContainment are the shared fraction of each
	// document's fingerprints (0..1).
	AContainment float64
	BContainment float64
}

// Score is the symmetric similarity: the larger containment.
func (s Similarity) Score() float64 {
	if s.AContainment > s.BContainment {
		return s.AContainment
	}
	return s.BContainment
}

// Compare computes the similarity between two fingerprints.
func Compare(a, b *Fingerprint) Similarity {
	shared := 0
	for h := range a.hashes {
		if b.hashes[h] {
			shared++
		}
	}
	var sim Similarity
	sim.Shared = shared
	if len(a.hashes) > 0 {
		sim.AContainment = float64(shared) / float64(len(a.hashes))
	}
	if len(b.hashes) > 0 {
		sim.BContainment = float64(shared) / float64(len(b.hashes))
	}
	return sim
}

// CompareSources is the convenience entry point: fingerprint and compare
// two HLC sources, as Moss does with two submitted files.
func CompareSources(srcA, srcB string, opts Options) (Similarity, error) {
	fa, err := File(srcA, opts)
	if err != nil {
		return Similarity{}, err
	}
	fb, err := File(srcB, opts)
	if err != nil {
		return Similarity{}, err
	}
	return Compare(fa, fb), nil
}
