package plagiarism

import (
	"strings"
	"testing"
)

const progA = `
int data[64];
int total;
int process(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) {
    acc += data[i] * 3;
    if (acc > 1000) { acc -= 500; }
  }
  return acc;
}
void main() {
  for (int i = 0; i < 64; i++) { data[i] = i; }
  total = process(64);
  print(total);
}`

// progARenamed is progA with every identifier and constant changed —
// classic plagiarism.
const progARenamed = `
int zq[64];
int wv;
int crunch(int m) {
  int s = 0;
  for (int k = 0; k < m; k++) {
    s += zq[k] * 7;
    if (s > 900) { s -= 123; }
  }
  return s;
}
void main() {
  for (int k = 0; k < 64; k++) { zq[k] = k; }
  wv = crunch(64);
  print(wv);
}`

// progB is a structurally different program.
const progB = `
float wave[128];
float power(float x) { return x * x; }
void main() {
  float e = 0.0;
  int j = 0;
  while (j < 128) {
    wave[j] = sin(itof(j) * 0.1);
    e = e + power(wave[j]);
    j++;
  }
  print(sqrt(e));
  print(e / 128.0);
}`

func TestSelfSimilarityIsFull(t *testing.T) {
	sim, err := CompareSources(progA, progA, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sim.Score() < 0.9999 {
		t.Errorf("self similarity = %.3f, want 1.0", sim.Score())
	}
}

func TestRenamedCopyIsDetected(t *testing.T) {
	// Moss's key property: renaming identifiers and tweaking constants
	// must not hide a copied structure.
	sim, err := CompareSources(progA, progARenamed, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sim.Score() < 0.85 {
		t.Errorf("renamed copy similarity = %.3f, want > 0.85", sim.Score())
	}
}

func TestDifferentProgramsAreDissimilar(t *testing.T) {
	sim, err := CompareSources(progA, progB, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sim.Score() > 0.35 {
		t.Errorf("unrelated programs similarity = %.3f, want low", sim.Score())
	}
}

func TestPartialCopyScoresBetween(t *testing.T) {
	// progB with progA's process() spliced in: containment of A should
	// land strictly between the unrelated and identical extremes.
	hybrid := progB + `
int data[64];
int process(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) {
    acc += data[i] * 3;
    if (acc > 1000) { acc -= 500; }
  }
  return acc;
}`
	simAB, err := CompareSources(progA, progB, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	simAH, err := CompareSources(progA, hybrid, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if simAH.AContainment <= simAB.AContainment {
		t.Errorf("splicing in code should raise containment: %.3f vs %.3f",
			simAH.AContainment, simAB.AContainment)
	}
	if simAH.AContainment < 0.3 {
		t.Errorf("copied function should be visible: containment %.3f", simAH.AContainment)
	}
}

func TestShortInputs(t *testing.T) {
	fp, err := File("void main() { }", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sim := Compare(fp, fp)
	if fp.Size() > 0 && sim.Score() != 1 {
		t.Errorf("tiny file self-similarity = %v", sim.Score())
	}
	empty, err := File("", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if empty.Size() != 0 {
		t.Errorf("empty file should have no fingerprints, got %d", empty.Size())
	}
	simE := Compare(empty, fp)
	if simE.Score() != 0 {
		t.Errorf("empty vs nonempty similarity = %v, want 0", simE.Score())
	}
}

func TestLexErrorPropagates(t *testing.T) {
	if _, err := File("int @ x;", DefaultOptions()); err == nil ||
		!strings.Contains(err.Error(), "unexpected character") {
		t.Errorf("expected lexer error, got %v", err)
	}
}

func TestGuaranteeThreshold(t *testing.T) {
	// Winnowing guarantee: any shared run of at least K+W-1 tokens leaves
	// at least one shared fingerprint.
	opts := Options{K: 5, W: 3}
	shared := "x = a + b * c - d / 2; y = x + a;"
	docA := "void main() { int x; int y; int a; int b; int c; int d; " + shared + " }"
	docB := "void main() { int a; int b; int c; int d; int x; int y; print(a); " + shared + " print(y); }"
	sim, err := CompareSources(docA, docB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Shared == 0 {
		t.Error("shared run left no shared fingerprints")
	}
}

func TestFingerprintDeterminism(t *testing.T) {
	a1, _ := File(progA, DefaultOptions())
	a2, _ := File(progA, DefaultOptions())
	if a1.Size() != a2.Size() || Compare(a1, a2).Score() != 1 {
		t.Error("fingerprinting is not deterministic")
	}
}
