package ir

import (
	"testing"

	"repro/internal/isa"
)

// diamond: 0 -> 1,2 ; 1 -> 3 ; 2 -> 3
func diamond() [][]int {
	return [][]int{{1, 2}, {3}, {3}, {}}
}

// simple loop: 0 -> 1 ; 1 -> 2,3 ; 2 -> 1 ; 3 -> {}
func simpleLoop() [][]int {
	return [][]int{{1}, {2, 3}, {1}, {}}
}

// nested loops:
// 0 -> 1 ; 1(outer hdr) -> 2 ; 2(inner hdr) -> 3,4 ; 3 -> 2 ; 4 -> 1,5 ; 5 -> {}
func nestedLoops() [][]int {
	return [][]int{{1}, {2}, {3, 4}, {2}, {1, 5}, {}}
}

func TestReversePostorder(t *testing.T) {
	rpo := ReversePostorder(diamond(), 0)
	if len(rpo) != 4 || rpo[0] != 0 || rpo[3] != 3 {
		t.Fatalf("rpo = %v, want 0 first and 3 last", rpo)
	}
	pos := make(map[int]int)
	for i, b := range rpo {
		pos[b] = i
	}
	if pos[1] > pos[3] || pos[2] > pos[3] {
		t.Errorf("rpo %v does not place 3 after both branches", rpo)
	}
}

func TestReversePostorderSkipsUnreachable(t *testing.T) {
	succs := [][]int{{1}, {}, {1}} // block 2 unreachable
	rpo := ReversePostorder(succs, 0)
	if len(rpo) != 2 {
		t.Fatalf("rpo = %v, want 2 reachable blocks", rpo)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	idom := Dominators(diamond(), 0)
	want := []int{0, 0, 0, 0}
	for i := range want {
		if idom[i] != want[i] {
			t.Errorf("idom[%d] = %d, want %d", i, idom[i], want[i])
		}
	}
}

func TestDominatorsLoop(t *testing.T) {
	idom := Dominators(simpleLoop(), 0)
	if idom[1] != 0 || idom[2] != 1 || idom[3] != 1 {
		t.Errorf("idom = %v", idom)
	}
	if !Dominates(idom, 1, 2) {
		t.Error("1 should dominate 2")
	}
	if Dominates(idom, 2, 3) {
		t.Error("2 should not dominate 3")
	}
	if !Dominates(idom, 0, 3) {
		t.Error("entry should dominate everything")
	}
}

func TestFindLoopsSimple(t *testing.T) {
	f := FindLoops(simpleLoop(), 0)
	if len(f.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(f.Loops))
	}
	l := f.Loops[0]
	if l.Header != 1 {
		t.Errorf("header = %d, want 1", l.Header)
	}
	if !l.Contains(1) || !l.Contains(2) || l.Contains(3) || l.Contains(0) {
		t.Errorf("loop blocks = %v", l.Blocks)
	}
	if l.Depth != 1 || l.Parent != -1 {
		t.Errorf("depth=%d parent=%d, want 1/-1", l.Depth, l.Parent)
	}
	if !f.IsBackEdge(2, 1) {
		t.Error("2->1 should be a back edge")
	}
	if f.IsBackEdge(1, 2) {
		t.Error("1->2 should not be a back edge")
	}
}

func TestFindLoopsNested(t *testing.T) {
	f := FindLoops(nestedLoops(), 0)
	if len(f.Loops) != 2 {
		t.Fatalf("found %d loops, want 2: %+v", len(f.Loops), f.Loops)
	}
	var outer, inner *Loop
	for i := range f.Loops {
		switch f.Loops[i].Header {
		case 1:
			outer = &f.Loops[i]
		case 2:
			inner = &f.Loops[i]
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("missing loop headers: %+v", f.Loops)
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths: inner=%d outer=%d, want 2/1", inner.Depth, outer.Depth)
	}
	if &f.Loops[inner.Parent] != outer {
		t.Errorf("inner.Parent should be outer")
	}
	// Block 3 is innermost in the inner loop; block 4 only in the outer.
	if f.InnermostLoop(3) != inner {
		t.Errorf("block 3 innermost loop = %+v, want inner", f.InnermostLoop(3))
	}
	if f.InnermostLoop(4) != outer {
		t.Errorf("block 4 innermost loop = %+v, want outer", f.InnermostLoop(4))
	}
	if f.InnermostLoop(5) != nil {
		t.Errorf("block 5 should not be in a loop")
	}
}

func TestFindLoopsSelfLoop(t *testing.T) {
	succs := [][]int{{1}, {1, 2}, {}}
	f := FindLoops(succs, 0)
	if len(f.Loops) != 1 || f.Loops[0].Header != 1 || len(f.Loops[0].Blocks) != 1 {
		t.Fatalf("self loop not detected: %+v", f.Loops)
	}
}

func TestFindLoopsIrreducibleIgnored(t *testing.T) {
	// 0 -> 1,2 ; 1 -> 2 ; 2 -> 1 : the 1<->2 cycle has no dominating header,
	// so no natural loop should be reported.
	succs := [][]int{{1, 2}, {2}, {1}}
	f := FindLoops(succs, 0)
	if len(f.Loops) != 0 {
		t.Fatalf("irreducible cycle misdetected as natural loop: %+v", f.Loops)
	}
}

func TestUseDef(t *testing.T) {
	cases := []struct {
		in   isa.Instr
		uses int
		def  isa.RegID
	}{
		{isa.Instr{Op: isa.ADD, Dst: 2, A: 0, B: 1}, 2, 2},
		{isa.Instr{Op: isa.MOVI, Dst: 3, Imm: 7}, 0, 3},
		{isa.Instr{Op: isa.LD, Dst: 1, A: 0, Sym: 0}, 1, 1},
		{isa.Instr{Op: isa.LD, Dst: 1, A: isa.NoReg, Sym: 0}, 0, 1},
		{isa.Instr{Op: isa.ST, A: 0, B: 1, Sym: 0}, 2, isa.NoReg},
		{isa.Instr{Op: isa.BR, A: 4}, 1, isa.NoReg},
		{isa.Instr{Op: isa.RET, A: isa.NoReg}, 0, isa.NoReg},
		{isa.Instr{Op: isa.CALL, Dst: 5, Imm: 0}, 0, 5},
		{isa.Instr{Op: isa.STL, A: 7, Imm: 0}, 1, isa.NoReg},
		{isa.Instr{Op: isa.LDL, Dst: 7, Imm: 0}, 0, 7},
		{isa.Instr{Op: isa.FSQRT, Dst: 1, A: 0}, 1, 1},
		{isa.Instr{Op: isa.PRINTI, A: 0}, 1, isa.NoReg},
	}
	for _, tc := range cases {
		uses, def := UseDef(&tc.in)
		if len(uses) != tc.uses || def != tc.def {
			t.Errorf("%v: uses=%v def=%v, want %d uses def=%d", tc.in, uses, def, tc.uses, tc.def)
		}
	}
}

func TestPreds(t *testing.T) {
	preds := Preds(diamond())
	if len(preds[3]) != 2 {
		t.Errorf("preds[3] = %v, want two predecessors", preds[3])
	}
	if len(preds[0]) != 0 {
		t.Errorf("entry should have no predecessors")
	}
}
