// Package ir provides the control-flow analyses the compiler and profiler
// share: reverse postorder, dominators, and natural-loop detection.
//
// The compiler's intermediate representation is the isa instruction set in
// virtual-register form (an isa.Func whose register operands are unbounded
// virtual registers); the analyses here therefore operate on plain adjacency
// lists so they apply equally to pre- and post-register-allocation code, and
// to the machine CFGs the profiler walks when it builds the SFGL's loop
// annotation.
package ir

import "repro/internal/isa"

// Preds computes the predecessor lists of a CFG given its successor lists.
func Preds(succs [][]int) [][]int {
	preds := make([][]int, len(succs))
	for b, ss := range succs {
		for _, s := range ss {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// ReversePostorder returns the blocks reachable from entry in reverse
// postorder of a depth-first traversal.
func ReversePostorder(succs [][]int, entry int) []int {
	n := len(succs)
	visited := make([]bool, n)
	var post []int
	// Iterative DFS to avoid stack depth limits on long CFG chains.
	type frame struct {
		b    int
		next int
	}
	stack := []frame{{entry, 0}}
	visited[entry] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(succs[f.b]) {
			s := succs[f.b][f.next]
			f.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes immediate dominators with the Cooper–Harvey–Kennedy
// iterative algorithm. The result maps each block to its immediate
// dominator; the entry maps to itself, and unreachable blocks map to -1.
func Dominators(succs [][]int, entry int) []int {
	n := len(succs)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	rpo := ReversePostorder(succs, entry)
	order := make([]int, n) // order[b] = position of b in rpo
	for i := range order {
		order[i] = -1
	}
	for i, b := range rpo {
		order[b] = i
	}
	preds := Preds(succs)
	idom[entry] = entry

	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if idom[p] == -1 {
					continue // not yet processed or unreachable
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the given idom tree.
func Dominates(idom []int, a, b int) bool {
	for {
		if a == b {
			return true
		}
		if b == idom[b] || idom[b] == -1 {
			return false
		}
		b = idom[b]
	}
}

// Loop describes one natural loop.
type Loop struct {
	Header int
	// Blocks contains every block in the loop body, including the header.
	Blocks []int
	// Parent is the index (within the forest) of the innermost enclosing
	// loop, or -1 for top-level loops.
	Parent int
	// Depth is 1 for top-level loops, 2 for loops nested once, and so on.
	Depth int
}

// Contains reports whether block b is part of the loop body.
func (l *Loop) Contains(b int) bool {
	for _, x := range l.Blocks {
		if x == b {
			return true
		}
	}
	return false
}

// LoopForest is the set of natural loops of a CFG, with nesting resolved.
type LoopForest struct {
	Loops []Loop
	// LoopOf maps each block to the index of its innermost containing
	// loop, or -1.
	LoopOf []int
}

// InnermostLoop returns the innermost loop containing block b, or nil.
func (f *LoopForest) InnermostLoop(b int) *Loop {
	if f.LoopOf[b] == -1 {
		return nil
	}
	return &f.Loops[f.LoopOf[b]]
}

// IsBackEdge reports whether the CFG edge from -> to is a back edge of some
// detected loop (i.e. to is a loop header dominating from).
func (f *LoopForest) IsBackEdge(from, to int) bool {
	for i := range f.Loops {
		l := &f.Loops[i]
		if l.Header == to && l.Contains(from) {
			return true
		}
	}
	return false
}

// FindLoops detects the natural loops of a CFG. Loops sharing a header are
// merged (as in standard loop-nest construction). The returned loops are
// ordered outermost-first within each nest.
func FindLoops(succs [][]int, entry int) *LoopForest {
	n := len(succs)
	idom := Dominators(succs, entry)
	preds := Preds(succs)

	// Collect back edges a -> h (h dominates a) and merge bodies per header.
	bodies := make(map[int]map[int]bool)
	for a := 0; a < n; a++ {
		if idom[a] == -1 && a != entry {
			continue // unreachable
		}
		for _, h := range succs[a] {
			if !Dominates(idom, h, a) {
				continue
			}
			body := bodies[h]
			if body == nil {
				body = map[int]bool{h: true}
				bodies[h] = body
			}
			// Walk predecessors backwards from a until h.
			stack := []int{a}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[b] {
					continue
				}
				body[b] = true
				for _, p := range preds[b] {
					stack = append(stack, p)
				}
			}
		}
	}

	forest := &LoopForest{LoopOf: make([]int, n)}
	for i := range forest.LoopOf {
		forest.LoopOf[i] = -1
	}
	// Deterministic order: headers ascending.
	var headers []int
	for h := range bodies {
		headers = append(headers, h)
	}
	sortInts(headers)
	for _, h := range headers {
		var blocks []int
		for b := range bodies[h] {
			blocks = append(blocks, b)
		}
		sortInts(blocks)
		forest.Loops = append(forest.Loops, Loop{Header: h, Blocks: blocks, Parent: -1})
	}

	// Resolve nesting: loop i is nested in loop j if j != i and j's body
	// contains i's header and j's body is a superset (bigger body).
	for i := range forest.Loops {
		best := -1
		for j := range forest.Loops {
			if i == j {
				continue
			}
			if !forest.Loops[j].Contains(forest.Loops[i].Header) {
				continue
			}
			if len(forest.Loops[j].Blocks) <= len(forest.Loops[i].Blocks) {
				continue
			}
			if best == -1 || len(forest.Loops[j].Blocks) < len(forest.Loops[best].Blocks) {
				best = j
			}
		}
		forest.Loops[i].Parent = best
	}
	for i := range forest.Loops {
		d := 1
		for p := forest.Loops[i].Parent; p != -1; p = forest.Loops[p].Parent {
			d++
		}
		forest.Loops[i].Depth = d
	}
	// LoopOf: innermost (deepest) loop containing each block.
	for i := range forest.Loops {
		for _, b := range forest.Loops[i].Blocks {
			cur := forest.LoopOf[b]
			if cur == -1 || forest.Loops[i].Depth > forest.Loops[cur].Depth {
				forest.LoopOf[b] = i
			}
		}
	}
	return forest
}

func sortInts(a []int) {
	// Insertion sort: loop bodies are small and this avoids importing sort
	// for a hot path used in tests only.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Succs extracts the adjacency list of a compiled function.
func Succs(f *isa.Func) [][]int {
	out := make([][]int, len(f.Blocks))
	for i, b := range f.Blocks {
		out[i] = b.Succs
	}
	return out
}

// UseDef2 is an allocation-free variant of UseDef for hot paths (timing
// models process hundreds of millions of events). Unused slots are NoReg.
func UseDef2(in *isa.Instr) (u1, u2, def isa.RegID) {
	u1, u2, def = isa.NoReg, isa.NoReg, isa.NoReg
	switch in.Op {
	case isa.NOP, isa.JMP, isa.CALL:
		if in.Op == isa.CALL {
			def = in.Dst
		}
	case isa.MOVI, isa.MOVF, isa.LDL:
		def = in.Dst
	case isa.MOV, isa.NEG, isa.NOTB, isa.FNEG, isa.ITOF, isa.FTOI,
		isa.FSQRT, isa.FSIN, isa.FCOS, isa.FABS, isa.LD:
		u1 = in.A
		def = in.Dst
	case isa.ST:
		u1, u2 = in.A, in.B
	case isa.STL, isa.BR, isa.RET, isa.PRINTI, isa.PRINTF:
		u1 = in.A
	default: // binary ALU/FP
		u1, u2 = in.A, in.B
		def = in.Dst
	}
	return u1, u2, def
}

// UseDef returns the registers read and the register written by an
// instruction (def == isa.NoReg when the instruction writes nothing).
// CALL passes arguments through memory, so it uses no registers.
func UseDef(in *isa.Instr) (uses []isa.RegID, def isa.RegID) {
	def = isa.NoReg
	add := func(r isa.RegID) {
		if r != isa.NoReg {
			uses = append(uses, r)
		}
	}
	switch in.Op {
	case isa.NOP, isa.JMP:
	case isa.MOVI, isa.MOVF:
		def = in.Dst
	case isa.MOV, isa.NEG, isa.NOTB, isa.FNEG, isa.ITOF, isa.FTOI,
		isa.FSQRT, isa.FSIN, isa.FCOS, isa.FABS:
		add(in.A)
		def = in.Dst
	case isa.LD:
		add(in.A)
		def = in.Dst
	case isa.ST:
		add(in.A)
		add(in.B)
	case isa.LDL:
		def = in.Dst
	case isa.STL:
		add(in.A)
	case isa.BR:
		add(in.A)
	case isa.RET:
		add(in.A)
	case isa.CALL:
		def = in.Dst
	case isa.PRINTI, isa.PRINTF:
		add(in.A)
	default:
		// Binary ALU/FP operations.
		add(in.A)
		add(in.B)
		def = in.Dst
	}
	return uses, def
}
