package vm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// The dynamic-count contract at traps: a genuine fault counts its faulting
// instruction exactly once (the pre-predecode interpreter double-counted
// it), while a budget trap reports MaxInstrs+1 — one past the cap, marking
// "there was more".

func runTrap(t *testing.T, main *isa.Func, globals []isa.Global, cfg Config) (Result, *Trap) {
	t.Helper()
	p := &isa.Program{ISA: isa.AMD64, Globals: globals, Funcs: []*isa.Func{main}, Entry: 0}
	res, err := New(p).Run(cfg)
	if err == nil {
		t.Fatalf("expected a trap")
	}
	trap, ok := err.(*Trap)
	if !ok {
		t.Fatalf("expected *Trap, got %T: %v", err, err)
	}
	return res, trap
}

func TestTrapCountsFaultingInstructionOnce(t *testing.T) {
	// r0=1; r1=0; r2=r0/r1 — the DIV is the third executed instruction.
	main := &isa.Func{
		Name: "main", RetKind: isa.KindVoid, NumRegs: 3, NumSlots: 1, FirstArgSlot: -1,
		Blocks: []*isa.Block{{
			Instrs: []isa.Instr{
				{Op: isa.MOVI, Dst: 0, Imm: 1},
				{Op: isa.MOVI, Dst: 1, Imm: 0},
				{Op: isa.DIV, Dst: 2, A: 0, B: 1},
				{Op: isa.RET, A: isa.NoReg},
			},
		}},
	}
	res, trap := runTrap(t, main, nil, Config{})
	if !strings.Contains(trap.Reason, "division by zero") {
		t.Fatalf("reason = %q", trap.Reason)
	}
	if trap.Block != 0 || trap.Index != 2 {
		t.Fatalf("trap at block %d index %d, want 0/2", trap.Block, trap.Index)
	}
	if res.DynInstrs != 3 {
		t.Fatalf("DynInstrs = %d, want 3 (faulting instruction counted once)", res.DynInstrs)
	}
}

func TestTrapOutOfBoundsCountsOnce(t *testing.T) {
	// r0=100; r1=g0[r0] — the LD is the second executed instruction.
	main := &isa.Func{
		Name: "main", RetKind: isa.KindVoid, NumRegs: 2, NumSlots: 1, FirstArgSlot: -1,
		Blocks: []*isa.Block{{
			Instrs: []isa.Instr{
				{Op: isa.MOVI, Dst: 0, Imm: 100},
				{Op: isa.LD, Dst: 1, A: 0, Sym: 0},
				{Op: isa.RET, A: isa.NoReg},
			},
		}},
	}
	globals := []isa.Global{{Name: "g", Kind: isa.KindInt, Len: 4}}
	res, trap := runTrap(t, main, globals, Config{})
	if !strings.Contains(trap.Reason, "out of bounds") {
		t.Fatalf("reason = %q", trap.Reason)
	}
	if res.DynInstrs != 2 {
		t.Fatalf("DynInstrs = %d, want 2", res.DynInstrs)
	}
}

func TestBudgetTrapCountsCapPlusOne(t *testing.T) {
	main := &isa.Func{
		Name: "main", RetKind: isa.KindVoid, NumRegs: 1, NumSlots: 1, FirstArgSlot: -1,
		Blocks: []*isa.Block{{
			Instrs: []isa.Instr{{Op: isa.JMP}},
			Succs:  []int{0},
		}},
	}
	for _, budget := range []uint64{1, 7, 1000} {
		res, trap := runTrap(t, main, nil, Config{MaxInstrs: budget})
		if trap.Reason != TrapBudgetExhausted {
			t.Fatalf("reason = %q", trap.Reason)
		}
		if res.DynInstrs != budget+1 {
			t.Fatalf("budget %d: DynInstrs = %d, want %d", budget, res.DynInstrs, budget+1)
		}
	}
}

func TestStackOverflowCountsOnce(t *testing.T) {
	// main calls itself forever; with MaxDepth 4 the fourth CALL traps.
	main := &isa.Func{
		Name: "main", RetKind: isa.KindVoid, NumRegs: 1, NumSlots: 1, FirstArgSlot: 0,
		Blocks: []*isa.Block{{
			Instrs: []isa.Instr{
				{Op: isa.CALL, Dst: isa.NoReg, Sym: 0},
				{Op: isa.RET, A: isa.NoReg},
			},
		}},
	}
	res, trap := runTrap(t, main, nil, Config{MaxDepth: 4})
	if trap.Reason != "stack overflow" {
		t.Fatalf("reason = %q", trap.Reason)
	}
	if res.DynInstrs != 4 {
		t.Fatalf("DynInstrs = %d, want 4", res.DynInstrs)
	}
}
