package vm_test

// Interpreter microbenchmarks. Both report instructions-per-second through
// the "instrs/s" custom metric, so `go test -bench . ./internal/vm` gives
// the raw dispatch-loop throughput that `synth bench` institutionalizes per
// PR. The fast benchmark exercises the no-hook loop (validate and phase-1
// calibration); the hooked one adds a counting hook, the floor of every
// instrumented consumer.

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/vm"
)

func benchmarkVM(b *testing.B, hook vm.Hook) {
	w, prog := compileWorkload(b, "crc32/small", compiler.O0)
	b.ReportAllocs()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		m := vm.New(prog)
		if err := w.Setup(m); err != nil {
			b.Fatal(err)
		}
		res, err := m.Run(vm.Config{Hook: hook})
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.DynInstrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkVMFast(b *testing.B)   { benchmarkVM(b, nil) }
func BenchmarkVMHooked(b *testing.B) { benchmarkVM(b, func(*vm.Event) {}) }
