package vm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// handProg builds a tiny machine program by hand: main computes
// g[0] = 7 + 35 and prints it.
func handProg() *isa.Program {
	main := &isa.Func{
		Name: "main", RetKind: isa.KindVoid, NumRegs: 4, NumSlots: 1, FirstArgSlot: -1,
		Blocks: []*isa.Block{{
			Instrs: []isa.Instr{
				{Op: isa.MOVI, Dst: 0, Imm: 7},
				{Op: isa.MOVI, Dst: 1, Imm: 35},
				{Op: isa.ADD, Dst: 2, A: 0, B: 1},
				{Op: isa.ST, A: isa.NoReg, B: 2, Sym: 0},
				{Op: isa.LD, Dst: 3, A: isa.NoReg, Sym: 0},
				{Op: isa.PRINTI, A: 3},
				{Op: isa.RET, A: isa.NoReg},
			},
		}},
	}
	return &isa.Program{
		ISA:     isa.AMD64,
		Globals: []isa.Global{{Name: "g", Kind: isa.KindInt, Len: 1}},
		Funcs:   []*isa.Func{main},
		Entry:   0,
	}
}

func TestHandProgram(t *testing.T) {
	m := New(handProg())
	res, err := m.Run(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DynInstrs != 7 {
		t.Errorf("dynamic instructions = %d, want 7", res.DynInstrs)
	}
	if len(res.Output) != 1 || res.Output[0] != "42" {
		t.Errorf("output = %v, want [42]", res.Output)
	}
	vals, err := m.Ints("g")
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 42 {
		t.Errorf("g[0] = %d, want 42", vals[0])
	}
}

func TestHookSeesEveryInstruction(t *testing.T) {
	m := New(handProg())
	var classes []isa.Class
	var memAddrs []uint64
	res, err := m.Run(Config{Hook: func(ev *Event) {
		classes = append(classes, ev.Instr.Class())
		if ev.IsMem {
			memAddrs = append(memAddrs, ev.Addr)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(classes)) != res.DynInstrs {
		t.Fatalf("hook saw %d events, want %d", len(classes), res.DynInstrs)
	}
	if len(memAddrs) != 2 {
		t.Fatalf("expected 2 memory events (ST+LD), got %d", len(memAddrs))
	}
	if memAddrs[0] != memAddrs[1] {
		t.Errorf("store and load of g should share an address: %x vs %x", memAddrs[0], memAddrs[1])
	}
}

func TestTrapOutOfBounds(t *testing.T) {
	p := handProg()
	// Index 5 of a length-1 global.
	p.Funcs[0].Blocks[0].Instrs[4] = isa.Instr{Op: isa.LD, Dst: 3, A: isa.NoReg, Imm: 5, Sym: 0}
	m := New(p)
	_, err := m.Run(Config{})
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("expected bounds trap, got %v", err)
	}
	var trap *Trap
	if !asTrap(err, &trap) || trap.Func != "main" {
		t.Fatalf("trap should identify the function: %v", err)
	}
}

func asTrap(err error, out **Trap) bool {
	t, ok := err.(*Trap)
	if ok {
		*out = t
	}
	return ok
}

func TestTrapDivByZero(t *testing.T) {
	p := handProg()
	p.Funcs[0].Blocks[0].Instrs[2] = isa.Instr{Op: isa.DIV, Dst: 2, A: 0, B: 3} // r3 is zero
	m := New(p)
	if _, err := m.Run(Config{}); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("expected div-by-zero trap, got %v", err)
	}
}

func TestInstructionBudget(t *testing.T) {
	// Infinite loop: block 0 jumps to itself.
	main := &isa.Func{
		Name: "main", RetKind: isa.KindVoid, NumRegs: 1, NumSlots: 1, FirstArgSlot: -1,
		Blocks: []*isa.Block{{
			Instrs: []isa.Instr{{Op: isa.JMP}},
			Succs:  []int{0},
		}},
	}
	p := &isa.Program{ISA: isa.AMD64, Funcs: []*isa.Func{main}, Entry: 0}
	m := New(p)
	_, err := m.Run(Config{MaxInstrs: 1000})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("expected budget trap, got %v", err)
	}
}

func TestSetAndReadGlobals(t *testing.T) {
	p := &isa.Program{
		ISA: isa.AMD64,
		Globals: []isa.Global{
			{Name: "ints", Kind: isa.KindInt, Len: 4},
			{Name: "floats", Kind: isa.KindFloat, Len: 2},
		},
		Funcs: []*isa.Func{{
			Name: "main", RetKind: isa.KindVoid, NumRegs: 1, NumSlots: 1, FirstArgSlot: -1,
			Blocks: []*isa.Block{{Instrs: []isa.Instr{{Op: isa.RET, A: isa.NoReg}}}},
		}},
		Entry: 0,
	}
	m := New(p)
	if err := m.SetInts("ints", []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetFloats("floats", []float64{1.5, -2.5}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetInts("missing", []int64{1}); err == nil {
		t.Error("expected error for unknown global")
	}
	if err := m.SetInts("floats", []int64{1}); err == nil {
		t.Error("expected kind mismatch error")
	}
	if err := m.SetInts("ints", make([]int64, 9)); err == nil {
		t.Error("expected length error")
	}
	got, err := m.Ints("ints")
	if err != nil || got[2] != 3 {
		t.Errorf("Ints readback = %v, %v", got, err)
	}
}

func TestGlobalAddressesDisjointAndAligned(t *testing.T) {
	p := &isa.Program{
		ISA: isa.AMD64,
		Globals: []isa.Global{
			{Name: "a", Kind: isa.KindInt, Len: 100},
			{Name: "b", Kind: isa.KindInt, Len: 7},
			{Name: "c", Kind: isa.KindFloat, Len: 3},
		},
		Funcs: []*isa.Func{{
			Name: "main", RetKind: isa.KindVoid, NumRegs: 1, NumSlots: 1, FirstArgSlot: -1,
			Blocks: []*isa.Block{{Instrs: []isa.Instr{{Op: isa.RET, A: isa.NoReg}}}},
		}},
		Entry: 0,
	}
	m := New(p)
	for i := range p.Globals {
		if m.globalAddr[i]%globalAlign != 0 {
			t.Errorf("global %d not aligned: %#x", i, m.globalAddr[i])
		}
	}
	aEnd := m.globalAddr[0] + uint64(100*isa.IntBytes)
	if m.globalAddr[1] < aEnd {
		t.Errorf("globals overlap: a ends %#x, b starts %#x", aEnd, m.globalAddr[1])
	}
}

func TestOutputCap(t *testing.T) {
	// A loop printing 100 values with MaxOutput 10 keeps 10 but counts 100.
	main := &isa.Func{
		Name: "main", RetKind: isa.KindVoid, NumRegs: 3, NumSlots: 1, FirstArgSlot: -1,
		Blocks: []*isa.Block{
			{Instrs: []isa.Instr{
				{Op: isa.MOVI, Dst: 0, Imm: 0},
				{Op: isa.MOVI, Dst: 1, Imm: 100},
				{Op: isa.JMP},
			}, Succs: []int{1}},
			{Instrs: []isa.Instr{
				{Op: isa.PRINTI, A: 0},
				{Op: isa.MOVI, Dst: 2, Imm: 1},
				{Op: isa.ADD, Dst: 0, A: 0, B: 2},
				{Op: isa.CMPLT, Dst: 2, A: 0, B: 1},
				{Op: isa.BR, A: 2},
			}, Succs: []int{1, 2}},
			{Instrs: []isa.Instr{{Op: isa.RET, A: isa.NoReg}}},
		},
	}
	p := &isa.Program{ISA: isa.AMD64, Funcs: []*isa.Func{main}, Entry: 0}
	res, err := New(p).Run(Config{MaxOutput: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Prints != 100 || len(res.Output) != 10 {
		t.Errorf("prints=%d outputs=%d, want 100/10", res.Prints, len(res.Output))
	}
}

func TestBranchEventsReportDirection(t *testing.T) {
	// Reuse the loop program above: BR taken 99 times, not taken once.
	main := &isa.Func{
		Name: "main", RetKind: isa.KindVoid, NumRegs: 3, NumSlots: 1, FirstArgSlot: -1,
		Blocks: []*isa.Block{
			{Instrs: []isa.Instr{
				{Op: isa.MOVI, Dst: 0, Imm: 0},
				{Op: isa.MOVI, Dst: 1, Imm: 100},
				{Op: isa.JMP},
			}, Succs: []int{1}},
			{Instrs: []isa.Instr{
				{Op: isa.MOVI, Dst: 2, Imm: 1},
				{Op: isa.ADD, Dst: 0, A: 0, B: 2},
				{Op: isa.CMPLT, Dst: 2, A: 0, B: 1},
				{Op: isa.BR, A: 2},
			}, Succs: []int{1, 2}},
			{Instrs: []isa.Instr{{Op: isa.RET, A: isa.NoReg}}},
		},
	}
	p := &isa.Program{ISA: isa.AMD64, Funcs: []*isa.Func{main}, Entry: 0}
	taken, notTaken := 0, 0
	_, err := New(p).Run(Config{Hook: func(ev *Event) {
		if ev.Instr.Op == isa.BR {
			if ev.Taken {
				taken++
			} else {
				notTaken++
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if taken != 99 || notTaken != 1 {
		t.Errorf("taken=%d notTaken=%d, want 99/1", taken, notTaken)
	}
}
