// Package vm executes compiled virtual-ISA programs. It is the functional
// simulator of the framework and, through its per-instruction observer hook,
// also its binary-instrumentation layer — the role Pin plays in the paper:
// profilers, cache simulators, and branch-prediction models all attach to
// the executed instruction stream via Hook.
//
// Loading a program predecodes it: each function's blocks are flattened
// into one contiguous instruction array with branch targets resolved to
// flat PCs, global bases and element sizes baked in, and a dense static-site
// ID stamped on every instruction (see docs/vm.md). Run then dispatches to
// one of two specialized loops — a no-hook fast path and a hooked path —
// both of which authorize the instruction budget per basic block and pool
// frame register/slot storage so calls do not allocate.
package vm

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// Event describes one executed instruction to observers.
type Event struct {
	Func, Block, Index int // static location of the instruction
	// Site is the instruction's dense static-site ID: its position in the
	// program-wide enumeration of instructions in (function, block, index)
	// order, exactly the numbering LayoutOf assigns. Hooks use it to index
	// flat per-site state instead of keying maps by location.
	Site  int
	Instr *isa.Instr
	Addr  uint64 // data address (valid when IsMem)
	IsMem bool
	Taken bool // branch outcome (valid for BR)
}

// Hook observes every executed instruction. The Event struct is reused
// between calls; implementations must copy what they keep.
type Hook func(*Event)

// Config controls one execution.
type Config struct {
	// Hook, if non-nil, is invoked for every executed instruction.
	Hook Hook
	// MaxInstrs aborts execution after this many dynamic instructions
	// (0 means the package default of 2e9).
	MaxInstrs uint64
	// MaxOutput caps how many printed values are retained verbatim in
	// Result.Output (the hash and count always cover everything).
	// 0 means the package default of 4096.
	MaxOutput int
	// MaxDepth caps the call stack (0 means the default of 1<<20).
	MaxDepth int
}

// Result summarizes an execution.
type Result struct {
	DynInstrs  uint64   // dynamic instruction count
	Prints     uint64   // number of values printed
	Output     []string // first MaxOutput printed values, formatted
	OutputHash uint64   // FNV-1a hash over all printed values
}

// Memory layout constants. Globals and stack frames live in disjoint
// address ranges so cache simulators see realistic, non-overlapping data
// addresses.
const (
	globalsBase = 0x0001_0000
	stackBase   = 0x4000_0000
	globalAlign = 64
)

const (
	defaultMaxInstrs = 2_000_000_000
	defaultMaxOutput = 4096
	defaultMaxDepth  = 1 << 20
)

// FNV-1a parameters for Result.OutputHash.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// VM holds the loaded, predecoded program and its global memory. A VM may
// be Run multiple times; each Run re-zeroes nothing — callers that need
// pristine globals should create a fresh VM (loading is cheap). Concurrent
// Runs of distinct VMs are safe; all per-run state (frames, pools) is local
// to Run.
type VM struct {
	prog       *isa.Program
	globals    [][]int64 // float elements stored as IEEE bits
	globalAddr []uint64  // byte base address per global
	fns        []fcode   // predecoded functions, indexed like prog.Funcs
}

// New loads a compiled program.
func New(prog *isa.Program) *VM {
	vm := &VM{prog: prog}
	addr := uint64(globalsBase)
	for _, g := range prog.Globals {
		vm.globals = append(vm.globals, make([]int64, g.Len))
		vm.globalAddr = append(vm.globalAddr, addr)
		size := uint64(g.Len * g.ElemBytes())
		addr += (size + globalAlign - 1) / globalAlign * globalAlign
	}
	vm.fns = predecode(prog, vm.globals, vm.globalAddr)
	return vm
}

// Prog returns the loaded program.
func (vm *VM) Prog() *isa.Program { return vm.prog }

// SetInts installs values into an int global (array or scalar).
func (vm *VM) SetInts(name string, vals []int64) error {
	gi := vm.prog.GlobalIndex(name)
	if gi < 0 {
		return fmt.Errorf("vm: no global %q", name)
	}
	g := vm.prog.Globals[gi]
	if g.Kind != isa.KindInt {
		return fmt.Errorf("vm: global %q is not int", name)
	}
	if len(vals) > g.Len {
		return fmt.Errorf("vm: global %q holds %d elements, got %d", name, g.Len, len(vals))
	}
	copy(vm.globals[gi], vals)
	return nil
}

// SetFloats installs values into a float global (array or scalar).
func (vm *VM) SetFloats(name string, vals []float64) error {
	gi := vm.prog.GlobalIndex(name)
	if gi < 0 {
		return fmt.Errorf("vm: no global %q", name)
	}
	g := vm.prog.Globals[gi]
	if g.Kind != isa.KindFloat {
		return fmt.Errorf("vm: global %q is not float", name)
	}
	if len(vals) > g.Len {
		return fmt.Errorf("vm: global %q holds %d elements, got %d", name, g.Len, len(vals))
	}
	for i, v := range vals {
		vm.globals[gi][i] = int64(math.Float64bits(v))
	}
	return nil
}

// SetInt sets a scalar int global.
func (vm *VM) SetInt(name string, v int64) error { return vm.SetInts(name, []int64{v}) }

// SetFloat sets a scalar float global.
func (vm *VM) SetFloat(name string, v float64) error { return vm.SetFloats(name, []float64{v}) }

// Ints returns a copy of an int global's contents (after a run, typically).
func (vm *VM) Ints(name string) ([]int64, error) {
	gi := vm.prog.GlobalIndex(name)
	if gi < 0 {
		return nil, fmt.Errorf("vm: no global %q", name)
	}
	out := make([]int64, len(vm.globals[gi]))
	copy(out, vm.globals[gi])
	return out, nil
}

// TrapBudgetExhausted is the Reason of the trap raised when a Run hits
// its MaxInstrs bound. Callers that treat a truncated execution as a
// valid sampled measurement (cpu.Simulate) must discriminate on this
// reason — instruction counts alone cannot distinguish a genuine fault
// on the last in-budget instruction from the budget itself.
const TrapBudgetExhausted = "instruction budget exhausted"

// Trap is the error type for runtime faults (out-of-bounds access, division
// by zero, instruction budget exhaustion, stack overflow).
type Trap struct {
	Reason string
	Func   string
	Block  int
	Index  int
}

// Error formats the trap with its static location and reason.
func (t *Trap) Error() string {
	return fmt.Sprintf("vm: trap in %s (block %d, instr %d): %s", t.Func, t.Block, t.Index, t.Reason)
}

// Run executes the program from its entry function.
func (vm *VM) Run(cfg Config) (Result, error) {
	limit := cfg.MaxInstrs
	if limit == 0 {
		limit = defaultMaxInstrs
	}
	maxOutput := cfg.MaxOutput
	if maxOutput == 0 {
		maxOutput = defaultMaxOutput
	}
	maxDepth := cfg.MaxDepth
	if maxDepth == 0 {
		maxDepth = defaultMaxDepth
	}
	entry := vm.prog.Funcs[vm.prog.Entry]
	if entry.NumParams != 0 {
		return Result{OutputHash: fnvOffset}, fmt.Errorf("vm: entry function %s takes parameters", entry.Name)
	}
	var res Result
	var err error
	if cfg.Hook == nil {
		res, err = vm.runFast(limit, maxOutput, maxDepth)
	} else {
		res, err = vm.runHooked(cfg.Hook, limit, maxOutput, maxDepth)
	}
	// One atomic add per Run, not per instruction: the process-wide
	// telemetry counter must not slow the dispatch loop.
	executedInstrs.Add(res.DynInstrs)
	return res, err
}
