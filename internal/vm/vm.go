// Package vm executes compiled virtual-ISA programs. It is the functional
// simulator of the framework and, through its per-instruction observer hook,
// also its binary-instrumentation layer — the role Pin plays in the paper:
// profilers, cache simulators, and branch-prediction models all attach to
// the executed instruction stream via Hook.
package vm

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/isa"
)

// Event describes one executed instruction to observers.
type Event struct {
	Func, Block, Index int // static location of the instruction
	Instr              *isa.Instr
	Addr               uint64 // data address (valid when IsMem)
	IsMem              bool
	Taken              bool // branch outcome (valid for BR)
}

// Hook observes every executed instruction. The Event struct is reused
// between calls; implementations must copy what they keep.
type Hook func(*Event)

// Config controls one execution.
type Config struct {
	// Hook, if non-nil, is invoked for every executed instruction.
	Hook Hook
	// MaxInstrs aborts execution after this many dynamic instructions
	// (0 means the package default of 2e9).
	MaxInstrs uint64
	// MaxOutput caps how many printed values are retained verbatim in
	// Result.Output (the hash and count always cover everything).
	// 0 means the package default of 4096.
	MaxOutput int
	// MaxDepth caps the call stack (0 means the default of 1<<20).
	MaxDepth int
}

// Result summarizes an execution.
type Result struct {
	DynInstrs  uint64   // dynamic instruction count
	Prints     uint64   // number of values printed
	Output     []string // first MaxOutput printed values, formatted
	OutputHash uint64   // FNV-1a hash over all printed values
}

// Memory layout constants. Globals and stack frames live in disjoint
// address ranges so cache simulators see realistic, non-overlapping data
// addresses.
const (
	globalsBase = 0x0001_0000
	stackBase   = 0x4000_0000
	globalAlign = 64
)

const (
	defaultMaxInstrs = 2_000_000_000
	defaultMaxOutput = 4096
	defaultMaxDepth  = 1 << 20
)

// VM holds the loaded program and its global memory. A VM may be Run
// multiple times; each Run re-zeroes nothing — callers that need pristine
// globals should create a fresh VM (loading is cheap).
type VM struct {
	prog       *isa.Program
	globals    [][]int64 // float elements stored as IEEE bits
	globalAddr []uint64  // byte base address per global
}

// New loads a compiled program.
func New(prog *isa.Program) *VM {
	vm := &VM{prog: prog}
	addr := uint64(globalsBase)
	for _, g := range prog.Globals {
		vm.globals = append(vm.globals, make([]int64, g.Len))
		vm.globalAddr = append(vm.globalAddr, addr)
		size := uint64(g.Len * g.ElemBytes())
		addr += (size + globalAlign - 1) / globalAlign * globalAlign
	}
	return vm
}

// Prog returns the loaded program.
func (vm *VM) Prog() *isa.Program { return vm.prog }

// SetInts installs values into an int global (array or scalar).
func (vm *VM) SetInts(name string, vals []int64) error {
	gi := vm.prog.GlobalIndex(name)
	if gi < 0 {
		return fmt.Errorf("vm: no global %q", name)
	}
	g := vm.prog.Globals[gi]
	if g.Kind != isa.KindInt {
		return fmt.Errorf("vm: global %q is not int", name)
	}
	if len(vals) > g.Len {
		return fmt.Errorf("vm: global %q holds %d elements, got %d", name, g.Len, len(vals))
	}
	copy(vm.globals[gi], vals)
	return nil
}

// SetFloats installs values into a float global (array or scalar).
func (vm *VM) SetFloats(name string, vals []float64) error {
	gi := vm.prog.GlobalIndex(name)
	if gi < 0 {
		return fmt.Errorf("vm: no global %q", name)
	}
	g := vm.prog.Globals[gi]
	if g.Kind != isa.KindFloat {
		return fmt.Errorf("vm: global %q is not float", name)
	}
	if len(vals) > g.Len {
		return fmt.Errorf("vm: global %q holds %d elements, got %d", name, g.Len, len(vals))
	}
	for i, v := range vals {
		vm.globals[gi][i] = int64(math.Float64bits(v))
	}
	return nil
}

// SetInt sets a scalar int global.
func (vm *VM) SetInt(name string, v int64) error { return vm.SetInts(name, []int64{v}) }

// SetFloat sets a scalar float global.
func (vm *VM) SetFloat(name string, v float64) error { return vm.SetFloats(name, []float64{v}) }

// Ints returns a copy of an int global's contents (after a run, typically).
func (vm *VM) Ints(name string) ([]int64, error) {
	gi := vm.prog.GlobalIndex(name)
	if gi < 0 {
		return nil, fmt.Errorf("vm: no global %q", name)
	}
	out := make([]int64, len(vm.globals[gi]))
	copy(out, vm.globals[gi])
	return out, nil
}

type frame struct {
	fn      *isa.Func
	fnIdx   int
	regs    []int64
	slots   []int64
	base    uint64 // frame base address for LDL/STL addresses
	block   int
	index   int
	retDst  isa.RegID // caller register receiving the return value
	argBase int64     // caller slot base of this call's arguments (unused after entry)
}

// TrapBudgetExhausted is the Reason of the trap raised when a Run hits
// its MaxInstrs bound. Callers that treat a truncated execution as a
// valid sampled measurement (cpu.Simulate) must discriminate on this
// reason — instruction counts alone cannot distinguish a genuine fault
// on the last in-budget instruction from the budget itself.
const TrapBudgetExhausted = "instruction budget exhausted"

// Trap is the error type for runtime faults (out-of-bounds access, division
// by zero, instruction budget exhaustion, stack overflow).
type Trap struct {
	Reason string
	Func   string
	Block  int
	Index  int
}

func (t *Trap) Error() string {
	return fmt.Sprintf("vm: trap in %s (block %d, instr %d): %s", t.Func, t.Block, t.Index, t.Reason)
}

// Run executes the program from its entry function.
func (vm *VM) Run(cfg Config) (Result, error) {
	maxInstrs := cfg.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = defaultMaxInstrs
	}
	maxOutput := cfg.MaxOutput
	if maxOutput == 0 {
		maxOutput = defaultMaxOutput
	}
	maxDepth := cfg.MaxDepth
	if maxDepth == 0 {
		maxDepth = defaultMaxDepth
	}

	var res Result
	res.OutputHash = 14695981039346656037 // FNV offset basis

	entry := vm.prog.Funcs[vm.prog.Entry]
	if entry.NumParams != 0 {
		return res, fmt.Errorf("vm: entry function %s takes parameters", entry.Name)
	}
	frames := make([]*frame, 0, 64)
	frames = append(frames, vm.newFrame(entry, vm.prog.Entry, uint64(stackBase)))
	cur := frames[0]

	var ev Event
	hook := cfg.Hook

	trap := func(reason string) (Result, error) {
		res.DynInstrs++
		return res, &Trap{Reason: reason, Func: cur.fn.Name, Block: cur.block, Index: cur.index}
	}

	emit := func(in *isa.Instr, isMem bool, addr uint64, taken bool) {
		if hook == nil {
			return
		}
		ev = Event{
			Func: cur.fnIdx, Block: cur.block, Index: cur.index,
			Instr: in, Addr: addr, IsMem: isMem, Taken: taken,
		}
		hook(&ev)
	}

	print := func(s string) {
		res.Prints++
		for i := 0; i < len(s); i++ {
			res.OutputHash ^= uint64(s[i])
			res.OutputHash *= 1099511628211
		}
		res.OutputHash ^= '\n'
		res.OutputHash *= 1099511628211
		if len(res.Output) < maxOutput {
			res.Output = append(res.Output, s)
		}
	}

	for {
		if res.DynInstrs >= maxInstrs {
			return trap(TrapBudgetExhausted)
		}
		blk := cur.fn.Blocks[cur.block]
		in := &blk.Instrs[cur.index]
		res.DynInstrs++
		advance := true

		switch in.Op {
		case isa.NOP:
			emit(in, false, 0, false)

		case isa.MOVI:
			cur.regs[in.Dst] = in.Imm
			emit(in, false, 0, false)
		case isa.MOVF:
			cur.regs[in.Dst] = int64(math.Float64bits(in.F))
			emit(in, false, 0, false)
		case isa.MOV:
			cur.regs[in.Dst] = cur.regs[in.A]
			emit(in, false, 0, false)

		case isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
			isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE:
			v, _ := isa.EvalIntBin(in.Op, cur.regs[in.A], cur.regs[in.B])
			cur.regs[in.Dst] = v
			emit(in, false, 0, false)
		case isa.DIV, isa.MOD:
			v, ok := isa.EvalIntBin(in.Op, cur.regs[in.A], cur.regs[in.B])
			if !ok {
				return trap("integer division by zero")
			}
			cur.regs[in.Dst] = v
			emit(in, false, 0, false)
		case isa.NEG, isa.NOTB:
			cur.regs[in.Dst] = isa.EvalIntUn(in.Op, cur.regs[in.A])
			emit(in, false, 0, false)

		case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
			a := math.Float64frombits(uint64(cur.regs[in.A]))
			b := math.Float64frombits(uint64(cur.regs[in.B]))
			cur.regs[in.Dst] = int64(math.Float64bits(isa.EvalFloatBin(in.Op, a, b)))
			emit(in, false, 0, false)
		case isa.FCMPEQ, isa.FCMPNE, isa.FCMPLT, isa.FCMPLE, isa.FCMPGT, isa.FCMPGE:
			a := math.Float64frombits(uint64(cur.regs[in.A]))
			b := math.Float64frombits(uint64(cur.regs[in.B]))
			cur.regs[in.Dst] = isa.EvalFloatCmp(in.Op, a, b)
			emit(in, false, 0, false)
		case isa.FNEG, isa.FSQRT, isa.FSIN, isa.FCOS, isa.FABS:
			a := math.Float64frombits(uint64(cur.regs[in.A]))
			cur.regs[in.Dst] = int64(math.Float64bits(isa.EvalFloatUn(in.Op, a)))
			emit(in, false, 0, false)
		case isa.ITOF:
			cur.regs[in.Dst] = int64(math.Float64bits(float64(cur.regs[in.A])))
			emit(in, false, 0, false)
		case isa.FTOI:
			cur.regs[in.Dst] = isa.F2I(math.Float64frombits(uint64(cur.regs[in.A])))
			emit(in, false, 0, false)

		case isa.LD:
			gi := in.Sym
			idx := in.Imm
			if in.A != isa.NoReg {
				idx += cur.regs[in.A]
			}
			mem := vm.globals[gi]
			if idx < 0 || idx >= int64(len(mem)) {
				return trap(fmt.Sprintf("load index %d out of bounds for %s[%d]",
					idx, vm.prog.Globals[gi].Name, len(mem)))
			}
			cur.regs[in.Dst] = mem[idx]
			addr := vm.globalAddr[gi] + uint64(idx)*uint64(vm.prog.Globals[gi].ElemBytes())
			emit(in, true, addr, false)
		case isa.ST:
			gi := in.Sym
			idx := in.Imm
			if in.A != isa.NoReg {
				idx += cur.regs[in.A]
			}
			mem := vm.globals[gi]
			if idx < 0 || idx >= int64(len(mem)) {
				return trap(fmt.Sprintf("store index %d out of bounds for %s[%d]",
					idx, vm.prog.Globals[gi].Name, len(mem)))
			}
			mem[idx] = cur.regs[in.B]
			addr := vm.globalAddr[gi] + uint64(idx)*uint64(vm.prog.Globals[gi].ElemBytes())
			emit(in, true, addr, false)
		case isa.LDL:
			cur.regs[in.Dst] = cur.slots[in.Imm]
			emit(in, true, cur.base+uint64(in.Imm)*isa.SlotBytes, false)
		case isa.STL:
			cur.slots[in.Imm] = cur.regs[in.A]
			emit(in, true, cur.base+uint64(in.Imm)*isa.SlotBytes, false)

		case isa.BR:
			taken := cur.regs[in.A] != 0
			emit(in, false, 0, taken)
			if taken {
				cur.block = blk.Succs[0]
			} else {
				cur.block = blk.Succs[1]
			}
			cur.index = 0
			advance = false
		case isa.JMP:
			emit(in, false, 0, false)
			cur.block = blk.Succs[0]
			cur.index = 0
			advance = false

		case isa.CALL:
			emit(in, false, 0, false)
			if len(frames) >= maxDepth {
				return trap("stack overflow")
			}
			callee := vm.prog.Funcs[in.Sym]
			nf := vm.newFrame(callee, int(in.Sym), cur.base+uint64(cur.fn.NumSlots)*isa.SlotBytes)
			for p := 0; p < callee.NumParams; p++ {
				nf.slots[p] = cur.slots[in.Imm+int64(p)]
			}
			nf.retDst = in.Dst
			// Resume the caller after the call when the callee returns.
			cur.index++
			frames = append(frames, nf)
			cur = nf
			advance = false

		case isa.RET:
			emit(in, false, 0, false)
			var retVal int64
			if in.A != isa.NoReg {
				retVal = cur.regs[in.A]
			}
			retDst := cur.retDst
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				return res, nil
			}
			cur = frames[len(frames)-1]
			if retDst != isa.NoReg {
				cur.regs[retDst] = retVal
			}
			advance = false

		case isa.PRINTI:
			print(strconv.FormatInt(cur.regs[in.A], 10))
			emit(in, false, 0, false)
		case isa.PRINTF:
			f := math.Float64frombits(uint64(cur.regs[in.A]))
			print(strconv.FormatFloat(f, 'g', 12, 64))
			emit(in, false, 0, false)

		default:
			return trap(fmt.Sprintf("unknown opcode %v", in.Op))
		}

		if advance {
			cur.index++
			if cur.index >= len(blk.Instrs) {
				return trap("fell off the end of a basic block")
			}
		}
	}
}

func (vm *VM) newFrame(fn *isa.Func, fnIdx int, base uint64) *frame {
	return &frame{
		fn:     fn,
		fnIdx:  fnIdx,
		regs:   make([]int64, fn.NumRegs),
		slots:  make([]int64, max(fn.NumSlots, 1)),
		base:   base,
		retDst: isa.NoReg,
	}
}
