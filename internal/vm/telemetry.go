package vm

import "sync/atomic"

// executedInstrs accumulates the dynamic instruction count of every Run in
// the process, across all VMs and both dispatch paths. The vm package does
// not depend on telemetry; callers expose ExecutedInstrs through a
// CounterFunc (and a rate gauge for live MIPS).
var executedInstrs atomic.Uint64

// ExecutedInstrs returns the total dynamic instructions executed by every
// VM Run in this process since start. It is monotone and safe for
// concurrent use; the serve and bench paths derive a live MIPS gauge from
// its rate of change.
func ExecutedInstrs() uint64 { return executedInstrs.Load() }
