package vm

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/isa"
)

// frame is one activation record. regs and slots are views into one pooled
// backing array (buf); regs carries one extra trailing register that is
// never written and always reads zero — predecode retargets scalar LD/ST
// at it so the hot path needs no NoReg test. pc holds the caller's resume
// point while a callee runs.
type frame struct {
	fc     *fcode
	buf    []int64
	regs   []int64
	slots  []int64
	base   uint64 // frame base address for LDL/STL addresses
	pc     int32
	fnIdx  int32
	retDst isa.RegID // caller register receiving the return value
}

// takeBuf pops a pooled regs+slots buffer for function fi, or allocates one.
// Reused buffers are cleared to preserve zero-initialization semantics.
func takeBuf(free [][][]int64, fi int32, fc *fcode) []int64 {
	if s := free[fi]; len(s) > 0 {
		buf := s[len(s)-1]
		free[fi] = s[:len(s)-1]
		clear(buf)
		return buf
	}
	return make([]int64, fc.nRegs+fc.nSlots)
}

// putBuf returns a buffer to function fi's free list.
func putBuf(free [][][]int64, fi int32, buf []int64) {
	free[fi] = append(free[fi], buf)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// runHooked is the instrumented dispatch loop. It must be kept in exact
// step with runFast: same semantics, same trap points, same counts — the
// only difference is the Event emitted per executed instruction.
func (vm *VM) runHooked(hook Hook, limit uint64, maxOutput, maxDepth int) (Result, error) {
	var res Result
	res.OutputHash = fnvOffset

	fns := vm.fns
	free := make([][][]int64, len(fns))

	fnIdx := int32(vm.prog.Entry)
	fc := &fns[fnIdx]
	buf := takeBuf(free, fnIdx, fc)
	frames := make([]frame, 0, 64)
	frames = append(frames, frame{
		fc: fc, fnIdx: fnIdx, base: stackBase, retDst: isa.NoReg,
		buf: buf, regs: buf[:fc.nRegs:fc.nRegs], slots: buf[fc.nRegs:],
	})

	// Hot interpreter state, kept in locals. frames[top] holds the
	// authoritative copies for suspended callers only.
	var (
		code  = fc.ins
		regs  = frames[0].regs
		slots = frames[0].slots
		base  = uint64(stackBase)
		pc    int32
		dyn   uint64
	)

	var ev Event
	emit := func(fn int32, in *pins, isMem bool, addr uint64, taken bool) {
		ev = Event{
			Func: int(fn), Block: int(in.block), Index: int(in.index), Site: int(in.site),
			Instr: in.src, Addr: addr, IsMem: isMem, Taken: taken,
		}
		hook(&ev)
	}

	trapAt := func(reason string, in *pins, count uint64) (Result, error) {
		res.DynInstrs = count
		return res, &Trap{Reason: reason, Func: fc.name, Block: int(in.block), Index: int(in.index)}
	}
	// outOfBudget raises the budget trap at the next instruction — unless
	// that instruction is a block sentinel, where the pre-predecode
	// interpreter's fell-off trap fired before it could re-check the budget.
	outOfBudget := func(in *pins, count uint64) (Result, error) {
		if in.op == opFellOff {
			return trapAt("fell off the end of a basic block", in, count)
		}
		return trapAt(TrapBudgetExhausted, in, count)
	}
	record := func(s string) {
		res.Prints++
		for i := 0; i < len(s); i++ {
			res.OutputHash ^= uint64(s[i])
			res.OutputHash *= fnvPrime
		}
		res.OutputHash ^= '\n'
		res.OutputHash *= fnvPrime
		if len(res.Output) < maxOutput {
			res.Output = append(res.Output, s)
		}
	}

run:
	for {
		// Segment entry: authorize the rest of the current basic block
		// against the budget in one comparison. Only when the block could
		// straddle the limit does the inner loop check per instruction.
		if dyn >= limit {
			return outOfBudget(&code[pc], dyn+1)
		}
		stop := ^uint64(0)
		if limit-dyn < uint64(code[pc].segLen) {
			stop = limit
		}
		for {
			if dyn >= stop {
				return outOfBudget(&code[pc], dyn+1)
			}
			in := &code[pc]
			dyn++

			switch in.op {
			case isa.NOP:
				emit(fnIdx, in, false, 0, false)

			case isa.MOVI: // also carries fused MOVF constants
				regs[in.dst] = in.imm
				emit(fnIdx, in, false, 0, false)
			case isa.MOV:
				regs[in.dst] = regs[in.a]
				emit(fnIdx, in, false, 0, false)

			case isa.ADD:
				regs[in.dst] = regs[in.a] + regs[in.b]
				emit(fnIdx, in, false, 0, false)
			case isa.SUB:
				regs[in.dst] = regs[in.a] - regs[in.b]
				emit(fnIdx, in, false, 0, false)
			case isa.MUL:
				regs[in.dst] = regs[in.a] * regs[in.b]
				emit(fnIdx, in, false, 0, false)
			case isa.DIV:
				if regs[in.b] == 0 {
					return trapAt("integer division by zero", in, dyn)
				}
				regs[in.dst] = regs[in.a] / regs[in.b]
				emit(fnIdx, in, false, 0, false)
			case isa.MOD:
				if regs[in.b] == 0 {
					return trapAt("integer division by zero", in, dyn)
				}
				regs[in.dst] = regs[in.a] % regs[in.b]
				emit(fnIdx, in, false, 0, false)
			case isa.AND:
				regs[in.dst] = regs[in.a] & regs[in.b]
				emit(fnIdx, in, false, 0, false)
			case isa.OR:
				regs[in.dst] = regs[in.a] | regs[in.b]
				emit(fnIdx, in, false, 0, false)
			case isa.XOR:
				regs[in.dst] = regs[in.a] ^ regs[in.b]
				emit(fnIdx, in, false, 0, false)
			case isa.SHL:
				regs[in.dst] = regs[in.a] << (uint64(regs[in.b]) & 63)
				emit(fnIdx, in, false, 0, false)
			case isa.SHR:
				regs[in.dst] = regs[in.a] >> (uint64(regs[in.b]) & 63)
				emit(fnIdx, in, false, 0, false)
			case isa.NEG:
				regs[in.dst] = -regs[in.a]
				emit(fnIdx, in, false, 0, false)
			case isa.NOTB:
				regs[in.dst] = ^regs[in.a]
				emit(fnIdx, in, false, 0, false)

			case isa.CMPEQ:
				regs[in.dst] = b2i(regs[in.a] == regs[in.b])
				emit(fnIdx, in, false, 0, false)
			case isa.CMPNE:
				regs[in.dst] = b2i(regs[in.a] != regs[in.b])
				emit(fnIdx, in, false, 0, false)
			case isa.CMPLT:
				regs[in.dst] = b2i(regs[in.a] < regs[in.b])
				emit(fnIdx, in, false, 0, false)
			case isa.CMPLE:
				regs[in.dst] = b2i(regs[in.a] <= regs[in.b])
				emit(fnIdx, in, false, 0, false)
			case isa.CMPGT:
				regs[in.dst] = b2i(regs[in.a] > regs[in.b])
				emit(fnIdx, in, false, 0, false)
			case isa.CMPGE:
				regs[in.dst] = b2i(regs[in.a] >= regs[in.b])
				emit(fnIdx, in, false, 0, false)

			case isa.FADD:
				a := math.Float64frombits(uint64(regs[in.a]))
				b := math.Float64frombits(uint64(regs[in.b]))
				regs[in.dst] = int64(math.Float64bits(a + b))
				emit(fnIdx, in, false, 0, false)
			case isa.FSUB:
				a := math.Float64frombits(uint64(regs[in.a]))
				b := math.Float64frombits(uint64(regs[in.b]))
				regs[in.dst] = int64(math.Float64bits(a - b))
				emit(fnIdx, in, false, 0, false)
			case isa.FMUL:
				a := math.Float64frombits(uint64(regs[in.a]))
				b := math.Float64frombits(uint64(regs[in.b]))
				regs[in.dst] = int64(math.Float64bits(a * b))
				emit(fnIdx, in, false, 0, false)
			case isa.FDIV:
				a := math.Float64frombits(uint64(regs[in.a]))
				b := math.Float64frombits(uint64(regs[in.b]))
				regs[in.dst] = int64(math.Float64bits(a / b))
				emit(fnIdx, in, false, 0, false)
			case isa.FCMPEQ:
				regs[in.dst] = b2i(math.Float64frombits(uint64(regs[in.a])) == math.Float64frombits(uint64(regs[in.b])))
				emit(fnIdx, in, false, 0, false)
			case isa.FCMPNE:
				regs[in.dst] = b2i(math.Float64frombits(uint64(regs[in.a])) != math.Float64frombits(uint64(regs[in.b])))
				emit(fnIdx, in, false, 0, false)
			case isa.FCMPLT:
				regs[in.dst] = b2i(math.Float64frombits(uint64(regs[in.a])) < math.Float64frombits(uint64(regs[in.b])))
				emit(fnIdx, in, false, 0, false)
			case isa.FCMPLE:
				regs[in.dst] = b2i(math.Float64frombits(uint64(regs[in.a])) <= math.Float64frombits(uint64(regs[in.b])))
				emit(fnIdx, in, false, 0, false)
			case isa.FCMPGT:
				regs[in.dst] = b2i(math.Float64frombits(uint64(regs[in.a])) > math.Float64frombits(uint64(regs[in.b])))
				emit(fnIdx, in, false, 0, false)
			case isa.FCMPGE:
				regs[in.dst] = b2i(math.Float64frombits(uint64(regs[in.a])) >= math.Float64frombits(uint64(regs[in.b])))
				emit(fnIdx, in, false, 0, false)
			case isa.FNEG:
				regs[in.dst] = int64(math.Float64bits(-math.Float64frombits(uint64(regs[in.a]))))
				emit(fnIdx, in, false, 0, false)
			case isa.FSQRT:
				regs[in.dst] = int64(math.Float64bits(math.Sqrt(math.Float64frombits(uint64(regs[in.a])))))
				emit(fnIdx, in, false, 0, false)
			case isa.FSIN:
				regs[in.dst] = int64(math.Float64bits(math.Sin(math.Float64frombits(uint64(regs[in.a])))))
				emit(fnIdx, in, false, 0, false)
			case isa.FCOS:
				regs[in.dst] = int64(math.Float64bits(math.Cos(math.Float64frombits(uint64(regs[in.a])))))
				emit(fnIdx, in, false, 0, false)
			case isa.FABS:
				regs[in.dst] = int64(math.Float64bits(math.Abs(math.Float64frombits(uint64(regs[in.a])))))
				emit(fnIdx, in, false, 0, false)
			case isa.ITOF:
				regs[in.dst] = int64(math.Float64bits(float64(regs[in.a])))
				emit(fnIdx, in, false, 0, false)
			case isa.FTOI:
				regs[in.dst] = isa.F2I(math.Float64frombits(uint64(regs[in.a])))
				emit(fnIdx, in, false, 0, false)

			case isa.LD:
				idx := in.imm + regs[in.a]
				if uint64(idx) >= uint64(len(in.mem)) {
					return trapAt(fmt.Sprintf("load index %d out of bounds for %s[%d]",
						idx, vm.prog.Globals[in.gi].Name, len(in.mem)), in, dyn)
				}
				regs[in.dst] = in.mem[idx]
				emit(fnIdx, in, true, in.base+uint64(idx)*in.esize, false)
			case isa.ST:
				idx := in.imm + regs[in.a]
				if uint64(idx) >= uint64(len(in.mem)) {
					return trapAt(fmt.Sprintf("store index %d out of bounds for %s[%d]",
						idx, vm.prog.Globals[in.gi].Name, len(in.mem)), in, dyn)
				}
				in.mem[idx] = regs[in.b]
				emit(fnIdx, in, true, in.base+uint64(idx)*in.esize, false)
			case isa.LDL:
				regs[in.dst] = slots[in.imm]
				emit(fnIdx, in, true, base+in.base, false)
			case isa.STL:
				slots[in.imm] = regs[in.a]
				emit(fnIdx, in, true, base+in.base, false)

			case isa.BR:
				if regs[in.a] != 0 {
					emit(fnIdx, in, false, 0, true)
					pc = in.t0
				} else {
					emit(fnIdx, in, false, 0, false)
					pc = in.t1
				}
				continue run
			case isa.JMP:
				emit(fnIdx, in, false, 0, false)
				pc = in.t0
				continue run

			case isa.CALL:
				emit(fnIdx, in, false, 0, false)
				if len(frames) >= maxDepth {
					return trapAt("stack overflow", in, dyn)
				}
				callee := &fns[in.gi]
				nbuf := takeBuf(free, in.gi, callee)
				nregs := nbuf[:callee.nRegs:callee.nRegs]
				nslots := nbuf[callee.nRegs:]
				for p := 0; p < callee.nParams; p++ {
					nslots[p] = slots[in.imm+int64(p)]
				}
				nbase := base + fc.frameBytes
				frames[len(frames)-1].pc = pc + 1 // resume after the call
				frames = append(frames, frame{
					fc: callee, fnIdx: in.gi, base: nbase, retDst: in.dst,
					buf: nbuf, regs: nregs, slots: nslots,
				})
				fc = callee
				fnIdx = in.gi
				code = fc.ins
				regs, slots, base = nregs, nslots, nbase
				pc = 0
				continue run

			case isa.RET:
				emit(fnIdx, in, false, 0, false)
				var retVal int64
				if in.a != isa.NoReg {
					retVal = regs[in.a]
				}
				top := len(frames) - 1
				rd := frames[top].retDst
				putBuf(free, fnIdx, frames[top].buf)
				frames = frames[:top]
				if top == 0 {
					res.DynInstrs = dyn
					return res, nil
				}
				cur := &frames[top-1]
				fc = cur.fc
				fnIdx = cur.fnIdx
				code = fc.ins
				regs, slots, base = cur.regs, cur.slots, cur.base
				pc = cur.pc
				if rd != isa.NoReg {
					regs[rd] = retVal
				}
				continue run

			case isa.PRINTI:
				record(strconv.FormatInt(regs[in.a], 10))
				emit(fnIdx, in, false, 0, false)
			case isa.PRINTF:
				f := math.Float64frombits(uint64(regs[in.a]))
				record(strconv.FormatFloat(f, 'g', 12, 64))
				emit(fnIdx, in, false, 0, false)

			case opFellOff:
				return trapAt("fell off the end of a basic block", in, dyn)

			default:
				return trapAt(fmt.Sprintf("unknown opcode %v", in.op), in, dyn)
			}
			pc++
		}
	}
}

// runFast is the uninstrumented dispatch loop used when no hook is
// installed (validation, calibration's instruction-count passes). It is
// runHooked minus event construction; every other behavior — trap points,
// counts, output hashing — is identical.
func (vm *VM) runFast(limit uint64, maxOutput, maxDepth int) (Result, error) {
	var res Result
	res.OutputHash = fnvOffset

	fns := vm.fns
	free := make([][][]int64, len(fns))

	fnIdx := int32(vm.prog.Entry)
	fc := &fns[fnIdx]
	buf := takeBuf(free, fnIdx, fc)
	frames := make([]frame, 0, 64)
	frames = append(frames, frame{
		fc: fc, fnIdx: fnIdx, base: stackBase, retDst: isa.NoReg,
		buf: buf, regs: buf[:fc.nRegs:fc.nRegs], slots: buf[fc.nRegs:],
	})

	var (
		code  = fc.ins
		regs  = frames[0].regs
		slots = frames[0].slots
		base  = uint64(stackBase)
		pc    int32
		dyn   uint64
	)

	trapAt := func(reason string, in *pins, count uint64) (Result, error) {
		res.DynInstrs = count
		return res, &Trap{Reason: reason, Func: fc.name, Block: int(in.block), Index: int(in.index)}
	}
	outOfBudget := func(in *pins, count uint64) (Result, error) {
		if in.op == opFellOff {
			return trapAt("fell off the end of a basic block", in, count)
		}
		return trapAt(TrapBudgetExhausted, in, count)
	}
	record := func(s string) {
		res.Prints++
		for i := 0; i < len(s); i++ {
			res.OutputHash ^= uint64(s[i])
			res.OutputHash *= fnvPrime
		}
		res.OutputHash ^= '\n'
		res.OutputHash *= fnvPrime
		if len(res.Output) < maxOutput {
			res.Output = append(res.Output, s)
		}
	}

run:
	for {
		if dyn >= limit {
			return outOfBudget(&code[pc], dyn+1)
		}
		stop := ^uint64(0)
		if limit-dyn < uint64(code[pc].segLen) {
			stop = limit
		}
		for {
			if dyn >= stop {
				return outOfBudget(&code[pc], dyn+1)
			}
			in := &code[pc]
			dyn++

			switch in.op {
			case isa.NOP:

			case isa.MOVI: // also carries fused MOVF constants
				regs[in.dst] = in.imm
			case isa.MOV:
				regs[in.dst] = regs[in.a]

			case isa.ADD:
				regs[in.dst] = regs[in.a] + regs[in.b]
			case isa.SUB:
				regs[in.dst] = regs[in.a] - regs[in.b]
			case isa.MUL:
				regs[in.dst] = regs[in.a] * regs[in.b]
			case isa.DIV:
				if regs[in.b] == 0 {
					return trapAt("integer division by zero", in, dyn)
				}
				regs[in.dst] = regs[in.a] / regs[in.b]
			case isa.MOD:
				if regs[in.b] == 0 {
					return trapAt("integer division by zero", in, dyn)
				}
				regs[in.dst] = regs[in.a] % regs[in.b]
			case isa.AND:
				regs[in.dst] = regs[in.a] & regs[in.b]
			case isa.OR:
				regs[in.dst] = regs[in.a] | regs[in.b]
			case isa.XOR:
				regs[in.dst] = regs[in.a] ^ regs[in.b]
			case isa.SHL:
				regs[in.dst] = regs[in.a] << (uint64(regs[in.b]) & 63)
			case isa.SHR:
				regs[in.dst] = regs[in.a] >> (uint64(regs[in.b]) & 63)
			case isa.NEG:
				regs[in.dst] = -regs[in.a]
			case isa.NOTB:
				regs[in.dst] = ^regs[in.a]

			case isa.CMPEQ:
				regs[in.dst] = b2i(regs[in.a] == regs[in.b])
			case isa.CMPNE:
				regs[in.dst] = b2i(regs[in.a] != regs[in.b])
			case isa.CMPLT:
				regs[in.dst] = b2i(regs[in.a] < regs[in.b])
			case isa.CMPLE:
				regs[in.dst] = b2i(regs[in.a] <= regs[in.b])
			case isa.CMPGT:
				regs[in.dst] = b2i(regs[in.a] > regs[in.b])
			case isa.CMPGE:
				regs[in.dst] = b2i(regs[in.a] >= regs[in.b])

			case isa.FADD:
				a := math.Float64frombits(uint64(regs[in.a]))
				b := math.Float64frombits(uint64(regs[in.b]))
				regs[in.dst] = int64(math.Float64bits(a + b))
			case isa.FSUB:
				a := math.Float64frombits(uint64(regs[in.a]))
				b := math.Float64frombits(uint64(regs[in.b]))
				regs[in.dst] = int64(math.Float64bits(a - b))
			case isa.FMUL:
				a := math.Float64frombits(uint64(regs[in.a]))
				b := math.Float64frombits(uint64(regs[in.b]))
				regs[in.dst] = int64(math.Float64bits(a * b))
			case isa.FDIV:
				a := math.Float64frombits(uint64(regs[in.a]))
				b := math.Float64frombits(uint64(regs[in.b]))
				regs[in.dst] = int64(math.Float64bits(a / b))
			case isa.FCMPEQ:
				regs[in.dst] = b2i(math.Float64frombits(uint64(regs[in.a])) == math.Float64frombits(uint64(regs[in.b])))
			case isa.FCMPNE:
				regs[in.dst] = b2i(math.Float64frombits(uint64(regs[in.a])) != math.Float64frombits(uint64(regs[in.b])))
			case isa.FCMPLT:
				regs[in.dst] = b2i(math.Float64frombits(uint64(regs[in.a])) < math.Float64frombits(uint64(regs[in.b])))
			case isa.FCMPLE:
				regs[in.dst] = b2i(math.Float64frombits(uint64(regs[in.a])) <= math.Float64frombits(uint64(regs[in.b])))
			case isa.FCMPGT:
				regs[in.dst] = b2i(math.Float64frombits(uint64(regs[in.a])) > math.Float64frombits(uint64(regs[in.b])))
			case isa.FCMPGE:
				regs[in.dst] = b2i(math.Float64frombits(uint64(regs[in.a])) >= math.Float64frombits(uint64(regs[in.b])))
			case isa.FNEG:
				regs[in.dst] = int64(math.Float64bits(-math.Float64frombits(uint64(regs[in.a]))))
			case isa.FSQRT:
				regs[in.dst] = int64(math.Float64bits(math.Sqrt(math.Float64frombits(uint64(regs[in.a])))))
			case isa.FSIN:
				regs[in.dst] = int64(math.Float64bits(math.Sin(math.Float64frombits(uint64(regs[in.a])))))
			case isa.FCOS:
				regs[in.dst] = int64(math.Float64bits(math.Cos(math.Float64frombits(uint64(regs[in.a])))))
			case isa.FABS:
				regs[in.dst] = int64(math.Float64bits(math.Abs(math.Float64frombits(uint64(regs[in.a])))))
			case isa.ITOF:
				regs[in.dst] = int64(math.Float64bits(float64(regs[in.a])))
			case isa.FTOI:
				regs[in.dst] = isa.F2I(math.Float64frombits(uint64(regs[in.a])))

			case isa.LD:
				idx := in.imm + regs[in.a]
				if uint64(idx) >= uint64(len(in.mem)) {
					return trapAt(fmt.Sprintf("load index %d out of bounds for %s[%d]",
						idx, vm.prog.Globals[in.gi].Name, len(in.mem)), in, dyn)
				}
				regs[in.dst] = in.mem[idx]
			case isa.ST:
				idx := in.imm + regs[in.a]
				if uint64(idx) >= uint64(len(in.mem)) {
					return trapAt(fmt.Sprintf("store index %d out of bounds for %s[%d]",
						idx, vm.prog.Globals[in.gi].Name, len(in.mem)), in, dyn)
				}
				in.mem[idx] = regs[in.b]
			case isa.LDL:
				regs[in.dst] = slots[in.imm]
			case isa.STL:
				slots[in.imm] = regs[in.a]

			case isa.BR:
				if regs[in.a] != 0 {
					pc = in.t0
				} else {
					pc = in.t1
				}
				continue run
			case isa.JMP:
				pc = in.t0
				continue run

			case isa.CALL:
				if len(frames) >= maxDepth {
					return trapAt("stack overflow", in, dyn)
				}
				callee := &fns[in.gi]
				nbuf := takeBuf(free, in.gi, callee)
				nregs := nbuf[:callee.nRegs:callee.nRegs]
				nslots := nbuf[callee.nRegs:]
				for p := 0; p < callee.nParams; p++ {
					nslots[p] = slots[in.imm+int64(p)]
				}
				nbase := base + fc.frameBytes
				frames[len(frames)-1].pc = pc + 1 // resume after the call
				frames = append(frames, frame{
					fc: callee, fnIdx: in.gi, base: nbase, retDst: in.dst,
					buf: nbuf, regs: nregs, slots: nslots,
				})
				fc = callee
				fnIdx = in.gi
				code = fc.ins
				regs, slots, base = nregs, nslots, nbase
				pc = 0
				continue run

			case isa.RET:
				var retVal int64
				if in.a != isa.NoReg {
					retVal = regs[in.a]
				}
				top := len(frames) - 1
				rd := frames[top].retDst
				putBuf(free, fnIdx, frames[top].buf)
				frames = frames[:top]
				if top == 0 {
					res.DynInstrs = dyn
					return res, nil
				}
				cur := &frames[top-1]
				fc = cur.fc
				fnIdx = cur.fnIdx
				code = fc.ins
				regs, slots, base = cur.regs, cur.slots, cur.base
				pc = cur.pc
				if rd != isa.NoReg {
					regs[rd] = retVal
				}
				continue run

			case isa.PRINTI:
				record(strconv.FormatInt(regs[in.a], 10))
			case isa.PRINTF:
				f := math.Float64frombits(uint64(regs[in.a]))
				record(strconv.FormatFloat(f, 'g', 12, 64))

			case opFellOff:
				return trapAt("fell off the end of a basic block", in, dyn)

			default:
				return trapAt(fmt.Sprintf("unknown opcode %v", in.op), in, dyn)
			}
			pc++
		}
	}
}
