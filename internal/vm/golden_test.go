package vm_test

// Golden event-stream tests: the predecoded flat-dispatch VM must emit an
// Event sequence order- and content-identical to a reference straight-line
// interpretation of the program structure (the pre-predecode interpreter,
// kept here verbatim in miniature), and concurrent Runs with pooled frames
// must stay independent. These tests live in an external test package
// because they drive the VM with real compiled workloads, and the workloads
// package itself imports vm.

import (
	"fmt"
	"math"
	"strconv"
	"testing"

	"repro/internal/compiler"
	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// goldenEvent is one recorded hook event (Instr identity is compared as a
// pointer: both interpreters must report the same static instruction).
type goldenEvent struct {
	fn, block, index int
	instr            *isa.Instr
	addr             uint64
	isMem            bool
	taken            bool
}

// refRun is the reference interpreter: a direct walk of the program's block
// structure, one instruction at a time, with a budget check before every
// instruction — the semantics the predecoded VM must reproduce. It emits
// events through emit and returns the dynamic count and final output hash
// (counting genuine traps' faulting instruction exactly once).
func refRun(prog *isa.Program, globals map[int][]int64, maxInstrs uint64, emit func(goldenEvent)) (dyn uint64, hash uint64, trap string) {
	const stackBase = 0x4000_0000
	globalAddr := make([]uint64, len(prog.Globals))
	addr := uint64(0x0001_0000)
	for i, g := range prog.Globals {
		globalAddr[i] = addr
		size := uint64(g.Len * g.ElemBytes())
		addr += (size + 63) / 64 * 64
	}
	mem := make([][]int64, len(prog.Globals))
	for i, g := range prog.Globals {
		mem[i] = make([]int64, g.Len)
		copy(mem[i], globals[i])
	}

	type rframe struct {
		fn           *isa.Func
		fnIdx        int
		regs, slots  []int64
		base         uint64
		block, index int
		retDst       isa.RegID
	}
	newf := func(fn *isa.Func, fnIdx int, base uint64) *rframe {
		return &rframe{
			fn: fn, fnIdx: fnIdx, base: base, retDst: isa.NoReg,
			regs:  make([]int64, fn.NumRegs),
			slots: make([]int64, max(fn.NumSlots, 1)),
		}
	}
	hash = 14695981039346656037
	record := func(s string) {
		for i := 0; i < len(s); i++ {
			hash ^= uint64(s[i])
			hash *= 1099511628211
		}
		hash ^= '\n'
		hash *= 1099511628211
	}

	frames := []*rframe{newf(prog.Funcs[prog.Entry], prog.Entry, stackBase)}
	cur := frames[0]
	ev := func(in *isa.Instr, isMem bool, a uint64, taken bool) {
		emit(goldenEvent{cur.fnIdx, cur.block, cur.index, in, a, isMem, taken})
	}
	for {
		if dyn >= maxInstrs {
			return dyn + 1, hash, vm.TrapBudgetExhausted
		}
		blk := cur.fn.Blocks[cur.block]
		in := &blk.Instrs[cur.index]
		dyn++
		advance := true
		switch in.Op {
		case isa.NOP:
			ev(in, false, 0, false)
		case isa.MOVI:
			cur.regs[in.Dst] = in.Imm
			ev(in, false, 0, false)
		case isa.MOVF:
			cur.regs[in.Dst] = int64(math.Float64bits(in.F))
			ev(in, false, 0, false)
		case isa.MOV:
			cur.regs[in.Dst] = cur.regs[in.A]
			ev(in, false, 0, false)
		case isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
			isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE:
			v, _ := isa.EvalIntBin(in.Op, cur.regs[in.A], cur.regs[in.B])
			cur.regs[in.Dst] = v
			ev(in, false, 0, false)
		case isa.DIV, isa.MOD:
			v, ok := isa.EvalIntBin(in.Op, cur.regs[in.A], cur.regs[in.B])
			if !ok {
				return dyn, hash, "integer division by zero"
			}
			cur.regs[in.Dst] = v
			ev(in, false, 0, false)
		case isa.NEG, isa.NOTB:
			cur.regs[in.Dst] = isa.EvalIntUn(in.Op, cur.regs[in.A])
			ev(in, false, 0, false)
		case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
			a := math.Float64frombits(uint64(cur.regs[in.A]))
			b := math.Float64frombits(uint64(cur.regs[in.B]))
			cur.regs[in.Dst] = int64(math.Float64bits(isa.EvalFloatBin(in.Op, a, b)))
			ev(in, false, 0, false)
		case isa.FCMPEQ, isa.FCMPNE, isa.FCMPLT, isa.FCMPLE, isa.FCMPGT, isa.FCMPGE:
			a := math.Float64frombits(uint64(cur.regs[in.A]))
			b := math.Float64frombits(uint64(cur.regs[in.B]))
			cur.regs[in.Dst] = isa.EvalFloatCmp(in.Op, a, b)
			ev(in, false, 0, false)
		case isa.FNEG, isa.FSQRT, isa.FSIN, isa.FCOS, isa.FABS:
			a := math.Float64frombits(uint64(cur.regs[in.A]))
			cur.regs[in.Dst] = int64(math.Float64bits(isa.EvalFloatUn(in.Op, a)))
			ev(in, false, 0, false)
		case isa.ITOF:
			cur.regs[in.Dst] = int64(math.Float64bits(float64(cur.regs[in.A])))
			ev(in, false, 0, false)
		case isa.FTOI:
			cur.regs[in.Dst] = isa.F2I(math.Float64frombits(uint64(cur.regs[in.A])))
			ev(in, false, 0, false)
		case isa.LD, isa.ST:
			gi := in.Sym
			idx := in.Imm
			if in.A != isa.NoReg {
				idx += cur.regs[in.A]
			}
			g := mem[gi]
			if idx < 0 || idx >= int64(len(g)) {
				return dyn, hash, "out of bounds"
			}
			if in.Op == isa.LD {
				cur.regs[in.Dst] = g[idx]
			} else {
				g[idx] = cur.regs[in.B]
			}
			a := globalAddr[gi] + uint64(idx)*uint64(prog.Globals[gi].ElemBytes())
			ev(in, true, a, false)
		case isa.LDL:
			cur.regs[in.Dst] = cur.slots[in.Imm]
			ev(in, true, cur.base+uint64(in.Imm)*isa.SlotBytes, false)
		case isa.STL:
			cur.slots[in.Imm] = cur.regs[in.A]
			ev(in, true, cur.base+uint64(in.Imm)*isa.SlotBytes, false)
		case isa.BR:
			taken := cur.regs[in.A] != 0
			ev(in, false, 0, taken)
			if taken {
				cur.block = blk.Succs[0]
			} else {
				cur.block = blk.Succs[1]
			}
			cur.index = 0
			advance = false
		case isa.JMP:
			ev(in, false, 0, false)
			cur.block = blk.Succs[0]
			cur.index = 0
			advance = false
		case isa.CALL:
			ev(in, false, 0, false)
			callee := prog.Funcs[in.Sym]
			nf := newf(callee, int(in.Sym), cur.base+uint64(cur.fn.NumSlots)*isa.SlotBytes)
			for p := 0; p < callee.NumParams; p++ {
				nf.slots[p] = cur.slots[in.Imm+int64(p)]
			}
			nf.retDst = in.Dst
			cur.index++
			frames = append(frames, nf)
			cur = nf
			advance = false
		case isa.RET:
			ev(in, false, 0, false)
			var retVal int64
			if in.A != isa.NoReg {
				retVal = cur.regs[in.A]
			}
			retDst := cur.retDst
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				return dyn, hash, ""
			}
			cur = frames[len(frames)-1]
			if retDst != isa.NoReg {
				cur.regs[retDst] = retVal
			}
			advance = false
		case isa.PRINTI:
			record(strconv.FormatInt(cur.regs[in.A], 10))
			ev(in, false, 0, false)
		case isa.PRINTF:
			record(strconv.FormatFloat(math.Float64frombits(uint64(cur.regs[in.A])), 'g', 12, 64))
			ev(in, false, 0, false)
		default:
			return dyn, hash, "unknown opcode"
		}
		if advance {
			cur.index++
			if cur.index >= len(blk.Instrs) {
				return dyn + 1, hash, "fell off the end of a basic block"
			}
		}
	}
}

func compileWorkload(t testing.TB, name string, level compiler.OptLevel) (*workloads.Workload, *isa.Program) {
	t.Helper()
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("workload %s not found", name)
	}
	ast, err := hlc.Parse(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := hlc.Check(ast)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(cp, isa.AMD64, level)
	if err != nil {
		t.Fatal(err)
	}
	return w, prog
}

// TestGoldenEventStream compares the predecoded VM's full event stream
// against the reference interpretation on real compiled workloads, at both
// the profiling optimization level and an optimized build.
func TestGoldenEventStream(t *testing.T) {
	cases := []struct {
		workload string
		level    compiler.OptLevel
		budget   uint64
	}{
		{"crc32/small", compiler.O0, 150_000},
		{"fft/small1", compiler.O0, 150_000},
		{"gsm/small1", compiler.O0, 150_000},
		{"dijkstra/small", compiler.O2, 150_000},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s-O%d", tc.workload, tc.level), func(t *testing.T) {
			w, prog := compileWorkload(t, tc.workload, tc.level)

			// Reference pass: record the expected event stream. Globals are
			// captured from a set-up VM so both sides see the same inputs.
			m0 := vm.New(prog)
			if err := w.Setup(m0); err != nil {
				t.Fatal(err)
			}
			// Ints returns the raw backing words of any global (floats are
			// stored as IEEE bits), so both interpreters start from
			// identical memory.
			globals := make(map[int][]int64)
			for gi, g := range prog.Globals {
				vals, err := m0.Ints(g.Name)
				if err != nil {
					t.Fatal(err)
				}
				globals[gi] = vals
			}

			var want []goldenEvent
			refDyn, refHash, refTrap := refRun(prog, globals, tc.budget, func(e goldenEvent) {
				want = append(want, e)
			})

			m := vm.New(prog)
			if err := w.Setup(m); err != nil {
				t.Fatal(err)
			}
			lay := vm.LayoutOf(prog)
			i := 0
			mismatches := 0
			hook := func(ev *vm.Event) {
				if i >= len(want) {
					if mismatches == 0 {
						t.Errorf("event %d: VM emitted beyond reference stream end", i)
					}
					mismatches++
					i++
					return
				}
				e := want[i]
				if ev.Func != e.fn || ev.Block != e.block || ev.Index != e.index ||
					ev.Instr != e.instr || ev.Addr != e.addr || ev.IsMem != e.isMem || ev.Taken != e.taken {
					if mismatches < 5 {
						t.Errorf("event %d: got {F%d B%d I%d addr=%#x mem=%v taken=%v}, want {F%d B%d I%d addr=%#x mem=%v taken=%v}",
							i, ev.Func, ev.Block, ev.Index, ev.Addr, ev.IsMem, ev.Taken,
							e.fn, e.block, e.index, e.addr, e.isMem, e.taken)
					}
					mismatches++
				}
				// The Site contract: Event.Site must equal the Layout's
				// numbering of (Func, Block, Index).
				loc := lay.Loc(ev.Site)
				if loc.Func != ev.Func || loc.Block != ev.Block || loc.Index != ev.Index {
					if mismatches < 5 {
						t.Errorf("event %d: Site %d maps to %v, want {%d %d %d}",
							i, ev.Site, loc, ev.Func, ev.Block, ev.Index)
					}
					mismatches++
				}
				i++
			}
			res, err := m.Run(vm.Config{Hook: hook, MaxInstrs: tc.budget})
			if refTrap == "" {
				if err != nil {
					t.Fatalf("VM trapped but reference completed: %v", err)
				}
			} else {
				tr, ok := err.(*vm.Trap)
				if !ok {
					t.Fatalf("reference trapped (%s) but VM returned %v", refTrap, err)
				}
				if refTrap == vm.TrapBudgetExhausted && tr.Reason != vm.TrapBudgetExhausted {
					t.Fatalf("reference hit budget, VM trapped with %q", tr.Reason)
				}
			}
			if i != len(want) {
				t.Fatalf("VM emitted %d events, reference %d", i, len(want))
			}
			if res.DynInstrs != refDyn {
				t.Errorf("DynInstrs %d, reference %d", res.DynInstrs, refDyn)
			}
			if res.OutputHash != refHash {
				t.Errorf("OutputHash %#x, reference %#x", res.OutputHash, refHash)
			}
			if mismatches > 0 {
				t.Fatalf("%d event mismatches", mismatches)
			}
		})
	}
}

// TestVMFastPathMatchesHooked asserts the no-hook fast path and the hooked
// path produce identical results (count, output hash) — they are separate
// dispatch loops and must never drift.
func TestVMFastPathMatchesHooked(t *testing.T) {
	for _, name := range []string{"crc32/small", "fft/small1"} {
		w, prog := compileWorkload(t, name, compiler.O0)
		run := func(hook vm.Hook) vm.Result {
			m := vm.New(prog)
			if err := w.Setup(m); err != nil {
				t.Fatal(err)
			}
			res, err := m.Run(vm.Config{Hook: hook, MaxInstrs: 200_000})
			if err != nil {
				if tr, ok := err.(*vm.Trap); !ok || tr.Reason != vm.TrapBudgetExhausted {
					t.Fatal(err)
				}
			}
			return res
		}
		fast := run(nil)
		var events uint64
		hooked := run(func(*vm.Event) { events++ })
		if fast.DynInstrs != hooked.DynInstrs || fast.OutputHash != hooked.OutputHash || fast.Prints != hooked.Prints {
			t.Fatalf("%s: fast %+v != hooked %+v", name, fast, hooked)
		}
		if hooked.DynInstrs > 200_000 { // budget-trapped runs report cap+1
			if events != 200_000 {
				t.Fatalf("%s: hook saw %d events, want %d", name, events, 200_000)
			}
		} else if events != hooked.DynInstrs {
			t.Fatalf("%s: hook saw %d events for %d instructions", name, events, hooked.DynInstrs)
		}
	}
}

// TestVMConcurrentRuns exercises pooled frames under the race detector:
// concurrent Runs over the same program (each on its own VM, as profiling
// fans out) must stay independent and byte-identical.
func TestVMConcurrentRuns(t *testing.T) {
	w, prog := compileWorkload(t, "crc32/small", compiler.O0)
	const n = 8
	type out struct {
		res vm.Result
		dyn uint64
	}
	outs := make([]out, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- i }()
			m := vm.New(prog)
			if err := w.Setup(m); err != nil {
				t.Error(err)
				return
			}
			var count uint64
			res, err := m.Run(vm.Config{Hook: func(*vm.Event) { count++ }, MaxInstrs: 100_000})
			if err != nil {
				if tr, ok := err.(*vm.Trap); !ok || tr.Reason != vm.TrapBudgetExhausted {
					t.Error(err)
					return
				}
			}
			outs[i] = out{res: res, dyn: count}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 1; i < n; i++ {
		if outs[i].res.DynInstrs != outs[0].res.DynInstrs ||
			outs[i].res.OutputHash != outs[0].res.OutputHash ||
			outs[i].dyn != outs[0].dyn {
			t.Fatalf("run %d diverged: %+v (events %d) vs %+v (events %d)",
				i, outs[i].res, outs[i].dyn, outs[0].res, outs[0].dyn)
		}
	}
}
