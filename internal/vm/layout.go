package vm

import "repro/internal/isa"

// SiteLoc is the static (function, block, index) location of one
// instruction site.
type SiteLoc struct {
	Func, Block, Index int
}

// Layout is the dense static numbering of a program's instruction sites and
// basic blocks. Site IDs match Event.Site exactly: instructions are numbered
// in (function, block, index) order across the whole program. Block IDs
// number blocks the same way ((function, block) order); they are the node
// IDs of the statistical flow graph. Hook consumers build a Layout once and
// replace per-event map lookups with slice indexing.
type Layout struct {
	sites     []SiteLoc
	instrs    []*isa.Instr
	blockBase []int // first block ID of each function
	numBlocks int
}

// LayoutOf computes the dense site and block numbering of a program.
func LayoutOf(prog *isa.Program) *Layout {
	l := &Layout{blockBase: make([]int, len(prog.Funcs))}
	n := 0
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	l.sites = make([]SiteLoc, 0, n)
	l.instrs = make([]*isa.Instr, 0, n)
	nb := 0
	for fi, f := range prog.Funcs {
		l.blockBase[fi] = nb
		nb += len(f.Blocks)
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				l.sites = append(l.sites, SiteLoc{Func: fi, Block: bi, Index: ii})
				l.instrs = append(l.instrs, &b.Instrs[ii])
			}
		}
	}
	l.numBlocks = nb
	return l
}

// NumSites returns the number of static instruction sites.
func (l *Layout) NumSites() int { return len(l.sites) }

// NumBlocks returns the number of basic blocks across all functions.
func (l *Layout) NumBlocks() int { return l.numBlocks }

// Loc returns the static location of a site ID.
func (l *Layout) Loc(site int) SiteLoc { return l.sites[site] }

// Instr returns the instruction at a site ID.
func (l *Layout) Instr(site int) *isa.Instr { return l.instrs[site] }

// BlockID returns the dense block ID of block `block` in function `fn`.
func (l *Layout) BlockID(fn, block int) int { return l.blockBase[fn] + block }
