package vm

import (
	"math"

	"repro/internal/isa"
)

// opFellOff is the synthetic opcode of the sentinel slot appended after
// every basic block's instructions. Well-formed code ends each block with a
// terminator and never executes it; malformed code that runs past a block's
// end lands on the sentinel and traps exactly where the pre-predecode
// interpreter did (block b, index len(instrs)).
const opFellOff isa.Opcode = -1

// pins ("predecoded instruction") is one slot of a function's flat
// instruction array. The predecode pass resolves everything resolvable at
// load time — branch targets to flat PCs, global bases and element sizes,
// frame-slot byte offsets, the dense static-site ID — so the dispatch loop
// touches no program structure beyond this array.
type pins struct {
	mem   []int64    // LD/ST: the global's backing storage
	src   *isa.Instr // the original instruction (Event.Instr identity)
	imm   int64      // immediate; MOVF is fused to MOVI with float bits here
	base  uint64     // LD/ST: global byte base; LDL/STL: slot byte offset
	esize uint64     // LD/ST: element size in bytes
	t0    int32      // BR taken / JMP target (flat PC)
	t1    int32      // BR fall-through target (flat PC)
	site  int32      // dense static-site ID (-1 for sentinels)
	block int32      // static block index within the function
	index int32      // static instruction index within the block
	// segLen is the number of instructions from this one to the end of its
	// block, inclusive. At a control transfer the dispatch loop authorizes
	// that many instructions against the budget at once, so the hot path
	// checks the budget per basic block, not per instruction.
	segLen int32
	gi     int32 // LD/ST: global index; CALL: callee function index
	op     isa.Opcode
	dst    isa.RegID
	a, b   isa.RegID
}

// fcode is one function's predecoded form.
type fcode struct {
	name       string
	ins        []pins
	blockStart []int32
	frameBytes uint64 // NumSlots * SlotBytes: callee frames start past this
	nRegs      int    // register file size including the trailing zero register
	nSlots     int    // frame slots (at least 1)
	nParams    int
}

// predecode flattens every function into its fcode. Site IDs are assigned
// densely in (function, block, instruction) order — the same numbering
// LayoutOf produces, which consumers rely on to index per-site state.
func predecode(prog *isa.Program, globals [][]int64, globalAddr []uint64) []fcode {
	fns := make([]fcode, len(prog.Funcs))
	site := int32(0)
	for fi, f := range prog.Funcs {
		fc := &fns[fi]
		fc.name = f.Name
		fc.nRegs = f.NumRegs + 1 // trailing always-zero register
		fc.nSlots = max(f.NumSlots, 1)
		fc.nParams = f.NumParams
		fc.frameBytes = uint64(f.NumSlots) * isa.SlotBytes
		fc.blockStart = make([]int32, len(f.Blocks))
		n := 0
		for _, b := range f.Blocks {
			n += len(b.Instrs) + 1 // +1 for the fell-off sentinel
		}
		fc.ins = make([]pins, 0, n)
		for bi, blk := range f.Blocks {
			fc.blockStart[bi] = int32(len(fc.ins))
			nb := len(blk.Instrs)
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				pi := pins{
					src: in, op: in.Op, dst: in.Dst, a: in.A, b: in.B, imm: in.Imm,
					site: site, block: int32(bi), index: int32(ii),
					segLen: int32(nb - ii),
				}
				site++
				switch in.Op {
				case isa.MOVF:
					// A float constant is an integer constant holding the
					// IEEE bits; fuse to MOVI (Event.Instr stays the
					// original MOVF through src).
					pi.op = isa.MOVI
					pi.imm = int64(math.Float64bits(in.F))
				case isa.LD, isa.ST:
					g := prog.Globals[in.Sym]
					pi.gi = in.Sym
					pi.base = globalAddr[in.Sym]
					pi.esize = uint64(g.ElemBytes())
					pi.mem = globals[in.Sym]
					if in.A == isa.NoReg {
						// Scalar access: read the index from the frame's
						// always-zero register so the hot path needs no
						// NoReg test.
						pi.a = isa.RegID(f.NumRegs)
					}
				case isa.LDL, isa.STL:
					pi.base = uint64(in.Imm) * isa.SlotBytes
				case isa.CALL:
					pi.gi = in.Sym
				}
				fc.ins = append(fc.ins, pi)
			}
			fc.ins = append(fc.ins, pins{
				op: opFellOff, site: -1,
				block: int32(bi), index: int32(nb), segLen: 1,
			})
		}
		// Resolve branch targets now that every block's flat start is known.
		for i := range fc.ins {
			pi := &fc.ins[i]
			switch pi.op {
			case isa.BR:
				succs := f.Blocks[pi.block].Succs
				pi.t0 = fc.blockStart[succs[0]]
				pi.t1 = fc.blockStart[succs[1]]
			case isa.JMP:
				pi.t0 = fc.blockStart[f.Blocks[pi.block].Succs[0]]
			}
		}
	}
	return fns
}
