package workloads

import (
	"fmt"
	"testing"

	"repro/internal/compiler"
	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/vm"
)

func runWorkload(t *testing.T, w *Workload, target *isa.Desc, level compiler.OptLevel) vm.Result {
	t.Helper()
	cp, err := hlc.Check(hlc.MustParse(w.Source))
	if err != nil {
		t.Fatalf("%s: check: %v", w.Name, err)
	}
	prog, err := compiler.Compile(cp, target, level)
	if err != nil {
		t.Fatalf("%s: compile: %v", w.Name, err)
	}
	m := vm.New(prog)
	if err := w.Setup(m); err != nil {
		t.Fatalf("%s: setup: %v", w.Name, err)
	}
	res, err := m.Run(vm.Config{MaxInstrs: 80_000_000})
	if err != nil {
		t.Fatalf("%s: run: %v", w.Name, err)
	}
	return res
}

func TestSuiteShape(t *testing.T) {
	if got := len(All()); got != 32 {
		t.Fatalf("suite has %d workload/input pairs, want 32 (Fig. 4)", got)
	}
	if got := len(Benchmarks()); got != 13 {
		t.Fatalf("suite has %d benchmark families, want 13", got)
	}
	counts := map[string]int{}
	for _, w := range All() {
		counts[w.Bench]++
	}
	want := map[string]int{
		"adpcm": 4, "basicmath": 2, "bitcount": 2, "crc32": 2, "dijkstra": 2,
		"fft": 3, "gsm": 4, "jpeg": 1, "patricia": 1, "qsort": 1, "sha": 2,
		"stringsearch": 2, "susan": 6,
	}
	for b, n := range want {
		if counts[b] != n {
			t.Errorf("%s has %d variants, want %d", b, counts[b], n)
		}
	}
}

func TestByNameAndByBench(t *testing.T) {
	if ByName("crc32/large") == nil {
		t.Error("crc32/large missing")
	}
	if ByName("nonesuch") != nil {
		t.Error("unknown name should return nil")
	}
	if got := len(ByBench("susan")); got != 6 {
		t.Errorf("susan variants = %d, want 6", got)
	}
}

// TestAllWorkloadsRunAtO0 executes every workload/input pair at the
// profiling level and sanity-checks its dynamic size. The size window keeps
// the Fig. 4 reduction factors meaningful: originals must be much larger
// than the ~150k-instruction synthetic target.
func TestAllWorkloadsRunAtO0(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res := runWorkload(t, w, isa.AMD64, compiler.O0)
			if res.DynInstrs < 150_000 {
				t.Errorf("%s: only %d dynamic instructions — too small to reduce", w.Name, res.DynInstrs)
			}
			if res.DynInstrs > 40_000_000 {
				t.Errorf("%s: %d dynamic instructions — too large for the test budget", w.Name, res.DynInstrs)
			}
			if res.Prints == 0 {
				t.Errorf("%s: produced no output", w.Name)
			}
		})
	}
}

// TestWorkloadOutputsStableAcrossLevels checks compiler correctness on real
// code: each workload must print identical results at every optimization
// level and on every ISA.
func TestWorkloadOutputsStableAcrossLevels(t *testing.T) {
	// A representative subset keeps the test fast while covering integer,
	// float, recursion, and irregular control flow.
	names := []string{
		"adpcm/small1", "basicmath/small", "bitcount/small", "crc32/small",
		"dijkstra/small", "fft/small1", "gsm/small1", "patricia/small",
		"qsort/large", "sha/small", "stringsearch/small", "susan/small2",
	}
	for _, name := range names {
		w := ByName(name)
		if w == nil {
			t.Fatalf("missing workload %s", name)
		}
		t.Run(name, func(t *testing.T) {
			ref := runWorkload(t, w, isa.AMD64, compiler.O0)
			for _, target := range []*isa.Desc{isa.X86, isa.AMD64, isa.IA64} {
				for _, level := range compiler.Levels {
					res := runWorkload(t, w, target, level)
					if res.OutputHash != ref.OutputHash {
						t.Errorf("%s %v: output differs from O0 reference\n got %v\nwant %v",
							target.Name, level, res.Output, ref.Output)
					}
				}
			}
		})
	}
}

func TestQsortActuallySorts(t *testing.T) {
	res := runWorkload(t, ByName("qsort/large"), isa.AMD64, compiler.O2)
	if res.Output[0] != "1" {
		t.Fatalf("qsort sorted flag = %s, want 1", res.Output[0])
	}
}

func TestDijkstraFindsPaths(t *testing.T) {
	res := runWorkload(t, ByName("dijkstra/small"), isa.AMD64, compiler.O2)
	// All sources must reach node V-1 (the ring guarantees reachability),
	// so the total must be below sources * infinity.
	var total int64
	fmt.Sscanf(res.Output[0], "%d", &total)
	if total <= 0 || total >= 6*1000000 {
		t.Fatalf("dijkstra total = %d, looks unreachable", total)
	}
}

func TestStringsearchFindsPlantedPatterns(t *testing.T) {
	res := runWorkload(t, ByName("stringsearch/small"), isa.AMD64, compiler.O2)
	var hits int64
	fmt.Sscanf(res.Output[0], "%d", &hits)
	if hits < 3 { // half the patterns are planted substrings
		t.Fatalf("stringsearch hits = %d, want at least the planted ones", hits)
	}
}

func TestShaIsDeterministicAndMasked(t *testing.T) {
	a := runWorkload(t, ByName("sha/small"), isa.AMD64, compiler.O2)
	b := runWorkload(t, ByName("sha/small"), isa.AMD64, compiler.O3)
	if a.OutputHash != b.OutputHash {
		t.Fatal("sha output unstable across levels")
	}
	var h0 int64
	fmt.Sscanf(a.Output[0], "%d", &h0)
	if h0 < 0 || h0 > 0xFFFFFFFF {
		t.Fatalf("sha h0 = %d escaped 32-bit range", h0)
	}
}

func TestSuiteHasBehavioralDiversity(t *testing.T) {
	// The suite must span FP-heavy and integer-only workloads for the
	// Fig. 6/10 contrasts to exist.
	fpShare := func(name string) float64 {
		w := ByName(name)
		cp, _ := hlc.Check(hlc.MustParse(w.Source))
		prog, err := compiler.Compile(cp, isa.AMD64, compiler.O0)
		if err != nil {
			t.Fatal(err)
		}
		m := vm.New(prog)
		if err := w.Setup(m); err != nil {
			t.Fatal(err)
		}
		var fp, total uint64
		_, err = m.Run(vm.Config{MaxInstrs: 80_000_000, Hook: func(ev *vm.Event) {
			total++
			switch ev.Instr.Class() {
			case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
				fp++
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		return float64(fp) / float64(total)
	}
	if share := fpShare("fft/small1"); share < 0.1 {
		t.Errorf("fft FP share = %.3f, want >0.1", share)
	}
	if share := fpShare("crc32/small"); share > 0.01 {
		t.Errorf("crc32 FP share = %.3f, want ~0", share)
	}
}
