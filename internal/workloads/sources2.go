package workloads

// Second half of the suite: gsm, jpeg, patricia, qsort, sha,
// stringsearch, susan.

const gsmSrc = `
int smp[19200];
int ac[16];
int frames;
int mode;
int acc;

void analyze() {
  for (int f = 0; f < frames; f++) {
    int base = f * 160;
    for (int lag = 0; lag < 9; lag++) {
      int s = 0;
      for (int i = lag; i < 160; i++) {
        s += (smp[base + i] >> 3) * (smp[base + i - lag] >> 3);
      }
      ac[lag] = s;
    }
    if (f > 0) {
      int bestLag = 40;
      int bestC = -1000000000;
      for (int lag = 40; lag <= 120; lag++) {
        int c = 0;
        for (int i = 0; i < 40; i++) {
          c += (smp[base + i] >> 3) * (smp[base + i - lag] >> 3);
        }
        if (c > bestC) {
          bestC = c;
          bestLag = lag;
        }
      }
      acc = (acc + bestLag) & 0xFFFFFF;
    }
    acc = (acc + (ac[0] >> 8)) & 0xFFFFFF;
  }
}

void synthesize() {
  for (int f = 0; f < frames; f++) {
    int base = f * 160;
    int p1 = 0;
    int p2 = 0;
    for (int i = 0; i < 160; i++) {
      int e = smp[base + i] >> 2;
      int y = e + ((p1 * 3) >> 2) - (p2 >> 1);
      if (y > 32767) { y = 32767; }
      if (y < -32768) { y = -32768; }
      p2 = p1;
      p1 = y;
      acc = (acc + (y & 255)) & 0xFFFFFF;
    }
  }
}

void main() {
  if (mode == 0) { analyze(); } else { synthesize(); }
  print(acc);
}
`

func gsmWorkload(name string, mode int64, frames int, seed int64) *Workload {
	return &Workload{
		Name: name, Bench: "gsm", Source: gsmSrc,
		Inputs: []Input{
			{Name: "smp", Ints: pcmWalk(seed, frames*160)},
			scalar("frames", int64(frames)),
			scalar("mode", mode),
		},
	}
}

const jpegSrc = `
int img[16384];
int coef[16384];
int quant[64];
float cosTab[64];
int blocks;
int acc;

void buildCos() {
  for (int u = 0; u < 8; u++) {
    for (int x = 0; x < 8; x++) {
      cosTab[u * 8 + x] = cos((2.0 * itof(x) + 1.0) * itof(u) * 3.141592653589793 / 16.0);
    }
  }
}

void main() {
  buildCos();
  for (int b = 0; b < blocks; b++) {
    int base = b * 64;
    for (int u = 0; u < 8; u++) {
      for (int v = 0; v < 8; v++) {
        float s = 0.0;
        for (int x = 0; x < 8; x++) {
          float cu = cosTab[u * 8 + x];
          for (int y = 0; y < 8; y++) {
            s = s + itof(img[base + x * 8 + y]) * cu * cosTab[v * 8 + y];
          }
        }
        int q = ftoi(s * 0.25) / quant[u * 8 + v];
        coef[base + u * 8 + v] = q;
        acc = (acc + q) & 0xFFFFFF;
      }
    }
  }
  print(acc);
}
`

func jpegWorkload(name string, blocks int, seed int64) *Workload {
	quant := make([]int64, 64)
	for i := range quant {
		quant[i] = 8 + int64(i)*2 // a plausible luminance-like ramp
	}
	return &Workload{
		Name: name, Bench: "jpeg", Source: jpegSrc,
		Inputs: []Input{
			{Name: "img", Ints: randInts(seed, blocks*64, 256)},
			{Name: "quant", Ints: quant},
			scalar("blocks", int64(blocks)),
		},
	}
}

const patriciaSrc = `
int left[32768];
int right[32768];
int leafv[32768];
int nNodes;
int keys[4096];
int n;
int hits;

int insert(int key) {
  int node = 0;
  for (int bit = 13; bit >= 0; bit--) {
    int b = (key >> bit) & 1;
    int next = 0;
    if (b == 1) { next = right[node]; } else { next = left[node]; }
    if (next == 0) {
      if (nNodes >= 32760) { return 0; }
      nNodes++;
      next = nNodes;
      if (b == 1) { right[node] = next; } else { left[node] = next; }
    }
    node = next;
  }
  leafv[node] = key;
  return node;
}

int search(int key) {
  int node = 0;
  for (int bit = 13; bit >= 0; bit--) {
    int b = (key >> bit) & 1;
    if (b == 1) { node = right[node]; } else { node = left[node]; }
    if (node == 0) { return 0; }
  }
  if (leafv[node] == key) { return 1; }
  return 0;
}

void main() {
  nNodes = 0;
  for (int i = 0; i < n; i++) {
    insert(keys[i]);
  }
  for (int i = 0; i < n; i++) {
    hits += search(keys[i]);
    hits += search((keys[i] + 7777) & 16383);
  }
  print(hits);
  print(nNodes);
}
`

func patriciaWorkload(name string, n int, seed int64) *Workload {
	return &Workload{
		Name: name, Bench: "patricia", Source: patriciaSrc,
		Inputs: []Input{
			{Name: "keys", Ints: randInts(seed, n, 16384)},
			scalar("n", int64(n)),
		},
	}
}

const qsortSrc = `
int arr[16384];
int n;
int check;

void qs(int lo, int hi) {
  if (lo >= hi) { return; }
  int p = arr[(lo + hi) / 2];
  int i = lo;
  int j = hi;
  while (i <= j) {
    while (arr[i] < p) { i++; }
    while (arr[j] > p) { j--; }
    if (i <= j) {
      int t = arr[i];
      arr[i] = arr[j];
      arr[j] = t;
      i++;
      j--;
    }
  }
  qs(lo, j);
  qs(i, hi);
}

void main() {
  qs(0, n - 1);
  for (int i = 0; i < n; i++) {
    check = (check * 31 + arr[i]) & 0xFFFFFF;
  }
  int sorted = 1;
  for (int i = 1; i < n; i++) {
    if (arr[i - 1] > arr[i]) { sorted = 0; }
  }
  print(sorted);
  print(check);
}
`

func qsortWorkload(name string, n int, seed int64) *Workload {
	return &Workload{
		Name: name, Bench: "qsort", Source: qsortSrc,
		Inputs: []Input{
			{Name: "arr", Ints: randInts(seed, n, 1<<20)},
			scalar("n", int64(n)),
		},
	}
}

const shaSrc = `
int data[16384];
int w[80];
int nBlocks;
int h0; int h1; int h2; int h3; int h4;

int rotl(int x, int s) {
  return ((x << s) | (x >> (32 - s))) & 0xFFFFFFFF;
}

void main() {
  h0 = 0x67452301;
  h1 = 0xEFCDAB89;
  h2 = 0x98BADCFE;
  h3 = 0x10325476;
  h4 = 0xC3D2E1F0;
  for (int b = 0; b < nBlocks; b++) {
    int base = b * 16;
    for (int i = 0; i < 16; i++) { w[i] = data[base + i] & 0xFFFFFFFF; }
    for (int i = 16; i < 80; i++) {
      w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    int a = h0;
    int e2 = h1;
    int c = h2;
    int d = h3;
    int e = h4;
    for (int i = 0; i < 80; i++) {
      int f = 0;
      int k = 0;
      if (i < 20) {
        f = (e2 & c) | ((e2 ^ 0xFFFFFFFF) & d);
        k = 0x5A827999;
      } else { if (i < 40) {
        f = e2 ^ c ^ d;
        k = 0x6ED9EBA1;
      } else { if (i < 60) {
        f = (e2 & c) | (e2 & d) | (c & d);
        k = 0x8F1BBCDC;
      } else {
        f = e2 ^ c ^ d;
        k = 0xCA62C1D6;
      } } }
      int tmp = (rotl(a, 5) + f + e + k + w[i]) & 0xFFFFFFFF;
      e = d;
      d = c;
      c = rotl(e2, 30);
      e2 = a;
      a = tmp;
    }
    h0 = (h0 + a) & 0xFFFFFFFF;
    h1 = (h1 + e2) & 0xFFFFFFFF;
    h2 = (h2 + c) & 0xFFFFFFFF;
    h3 = (h3 + d) & 0xFFFFFFFF;
    h4 = (h4 + e) & 0xFFFFFFFF;
  }
  print(h0);
  print(h1);
  print(h4);
}
`

func shaWorkload(name string, blocks int, seed int64) *Workload {
	return &Workload{
		Name: name, Bench: "sha", Source: shaSrc,
		Inputs: []Input{
			{Name: "data", Ints: randInts(seed, blocks*16, 1<<32)},
			scalar("nBlocks", int64(blocks)),
		},
	}
}

const stringsearchSrc = `
int text[32768];
int pats[1024];
int skip[64];
int tlen;
int npats;
int plen;
int found;

int searchOne(int pbase) {
  for (int c = 0; c < 64; c++) { skip[c] = plen; }
  for (int i = 0; i < plen - 1; i++) {
    skip[pats[pbase + i]] = plen - 1 - i;
  }
  int hits = 0;
  int pos = 0;
  while (pos + plen <= tlen) {
    int j = plen - 1;
    while (j >= 0 && text[pos + j] == pats[pbase + j]) { j--; }
    if (j < 0) {
      hits++;
      pos += plen;
    } else {
      pos += skip[text[pos + plen - 1]];
    }
  }
  return hits;
}

void main() {
  for (int p = 0; p < npats; p++) {
    found += searchOne(p * plen);
  }
  print(found);
}
`

func stringsearchWorkload(name string, tlen, npats int, seed int64) *Workload {
	const plen = 8
	text := randInts(seed, tlen, 26)
	pats := make([]int64, npats*plen)
	rng := randInts(seed+1, npats, int64(tlen-plen))
	for p := 0; p < npats; p++ {
		if p%2 == 0 {
			// Half the patterns are real substrings (guaranteed hits).
			copy(pats[p*plen:(p+1)*plen], text[rng[p]:rng[p]+plen])
		} else {
			copy(pats[p*plen:(p+1)*plen], randInts(seed+int64(p), plen, 26))
		}
	}
	return &Workload{
		Name: name, Bench: "stringsearch", Source: stringsearchSrc,
		Inputs: []Input{
			{Name: "text", Ints: text},
			{Name: "pats", Ints: pats},
			scalar("tlen", int64(tlen)),
			scalar("npats", int64(npats)),
			scalar("plen", plen),
		},
	}
}

const susanSrc = `
int img[4096];
int outimg[4096];
int W;
int H;
int mode;
int thresh;
int acc;

void smooth() {
  for (int y = 1; y < H - 1; y++) {
    for (int x = 1; x < W - 1; x++) {
      int s = img[(y - 1) * W + x - 1] + 2 * img[(y - 1) * W + x] + img[(y - 1) * W + x + 1]
            + 2 * img[y * W + x - 1] + 4 * img[y * W + x] + 2 * img[y * W + x + 1]
            + img[(y + 1) * W + x - 1] + 2 * img[(y + 1) * W + x] + img[(y + 1) * W + x + 1];
      outimg[y * W + x] = s / 16;
      acc = (acc + outimg[y * W + x]) & 0xFFFFFF;
    }
  }
}

int usan(int x, int y) {
  int c = img[y * W + x];
  int cnt = 0;
  for (int dy = -1; dy <= 1; dy++) {
    for (int dx = -1; dx <= 1; dx++) {
      int d = img[(y + dy) * W + x + dx] - c;
      if (d < 0) { d = -d; }
      if (d < thresh) { cnt++; }
    }
  }
  return cnt;
}

void edges() {
  for (int y = 1; y < H - 1; y++) {
    for (int x = 1; x < W - 1; x++) {
      int cnt = usan(x, y);
      if (cnt < 6) {
        outimg[y * W + x] = 255;
        acc++;
      } else {
        outimg[y * W + x] = 0;
      }
    }
  }
}

void corners() {
  for (int y = 1; y < H - 1; y++) {
    for (int x = 1; x < W - 1; x++) {
      int cnt = usan(x, y);
      if (cnt < 4) {
        outimg[y * W + x] = 255;
        acc++;
      } else {
        outimg[y * W + x] = 0;
      }
    }
  }
}

void main() {
  for (int pass = 0; pass < 3; pass++) {
    if (mode == 0) { smooth(); }
    else { if (mode == 1) { edges(); } else { corners(); } }
  }
  print(acc);
}
`

// susanImage synthesizes an image with smooth gradients plus speckle so the
// edge/corner detectors have structure to find.
func susanImage(seed int64, w, h int) []int64 {
	noise := randInts(seed, w*h, 64)
	img := make([]int64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := int64((x*255)/w+(y*128)/h)/2 + noise[y*w+x]
			if (x/8+y/8)%2 == 0 {
				v += 60 // blocky structure creates edges
			}
			if v > 255 {
				v = 255
			}
			img[y*w+x] = v
		}
	}
	return img
}

func susanWorkload(name string, mode int64, w, h int, seed int64) *Workload {
	return &Workload{
		Name: name, Bench: "susan", Source: susanSrc,
		Inputs: []Input{
			{Name: "img", Ints: susanImage(seed, w, h)},
			scalar("W", int64(w)),
			scalar("H", int64(h)),
			scalar("mode", mode),
			scalar("thresh", 27),
		},
	}
}

// init registers the 32 workload/input pairs of the paper's Fig. 4, in its
// x-axis order.
func init() {
	register(adpcmWorkload("adpcm/large1", 0, 12000, 101))
	register(adpcmWorkload("adpcm/large2", 1, 12000, 102))
	register(adpcmWorkload("adpcm/small1", 0, 3000, 103))
	register(adpcmWorkload("adpcm/small2", 1, 3000, 104))
	register(basicmathWorkload("basicmath/large", 2600, 201))
	register(basicmathWorkload("basicmath/small", 650, 202))
	register(bitcountWorkload("bitcount/large", 11000, 301))
	register(bitcountWorkload("bitcount/small", 2700, 302))
	register(crc32Workload("crc32/large", 40000, 401))
	register(crc32Workload("crc32/small", 10000, 402))
	register(dijkstraWorkload("dijkstra/large", 96, 10, 501))
	register(dijkstraWorkload("dijkstra/small", 48, 6, 502))
	register(fftWorkload("fft/large1", 1024, 0, 601))
	register(fftWorkload("fft/large2", 1024, 1, 602))
	register(fftWorkload("fft/small1", 512, 0, 603))
	register(gsmWorkload("gsm/large1", 0, 20, 701))
	register(gsmWorkload("gsm/large2", 1, 110, 702))
	register(gsmWorkload("gsm/small1", 0, 5, 703))
	register(gsmWorkload("gsm/small2", 1, 28, 704))
	register(jpegWorkload("jpeg/large1", 20, 801))
	register(patriciaWorkload("patricia/small", 1500, 901))
	register(qsortWorkload("qsort/large", 8000, 1001))
	register(shaWorkload("sha/large", 40, 1101))
	register(shaWorkload("sha/small", 16, 1102))
	register(stringsearchWorkload("stringsearch/large", 30000, 12, 1201))
	register(stringsearchWorkload("stringsearch/small", 8000, 6, 1202))
	register(susanWorkload("susan/large1", 0, 64, 64, 1301))
	register(susanWorkload("susan/large2", 1, 64, 64, 1302))
	register(susanWorkload("susan/large3", 2, 64, 64, 1303))
	register(susanWorkload("susan/small1", 0, 32, 32, 1304))
	register(susanWorkload("susan/small2", 1, 32, 32, 1305))
	register(susanWorkload("susan/small3", 2, 32, 32, 1306))
}
