package workloads

// First half of the suite: adpcm, basicmath, bitcount, crc32, dijkstra,
// fft. Each source is a faithful HLC re-implementation of the MiBench
// kernel's algorithm; inputs install the constant tables and synthetic
// data. Parenthesization note: in HLC (as in C) == binds tighter than &, so
// bitwise tests are always written (x & 1) == 1.

const adpcmSrc = `
int stepTab[89];
int idxTab[16];
int pcm[16384];
int code[16384];
int n;
int mode;
int result;

void encode() {
  int pred = 0;
  int index = 0;
  for (int i = 0; i < n; i++) {
    int diff = pcm[i] - pred;
    int sign = 0;
    if (diff < 0) { sign = 8; diff = -diff; }
    int step = stepTab[index];
    int tmp = step;
    int delta = 0;
    if (diff >= step) { delta = 4; diff -= step; }
    step = step >> 1;
    if (diff >= step) { delta |= 2; diff -= step; }
    step = step >> 1;
    if (diff >= step) { delta |= 1; }
    int vpdiff = tmp >> 3;
    if ((delta & 4) != 0) { vpdiff += tmp; }
    if ((delta & 2) != 0) { vpdiff += tmp >> 1; }
    if ((delta & 1) != 0) { vpdiff += tmp >> 2; }
    if (sign != 0) { pred -= vpdiff; } else { pred += vpdiff; }
    if (pred > 32767) { pred = 32767; }
    if (pred < -32768) { pred = -32768; }
    delta |= sign;
    index += idxTab[delta & 7];
    if (index < 0) { index = 0; }
    if (index > 88) { index = 88; }
    code[i] = delta;
    result = (result + delta) & 0xFFFFFF;
  }
  result += pred;
}

void decode() {
  int pred = 0;
  int index = 0;
  for (int i = 0; i < n; i++) {
    int delta = code[i];
    int sign = delta & 8;
    delta = delta & 7;
    int step = stepTab[index];
    int vpdiff = step >> 3;
    if ((delta & 4) != 0) { vpdiff += step; }
    if ((delta & 2) != 0) { vpdiff += step >> 1; }
    if ((delta & 1) != 0) { vpdiff += step >> 2; }
    if (sign != 0) { pred -= vpdiff; } else { pred += vpdiff; }
    if (pred > 32767) { pred = 32767; }
    if (pred < -32768) { pred = -32768; }
    index += idxTab[delta];
    if (index < 0) { index = 0; }
    if (index > 88) { index = 88; }
    pcm[i] = pred;
    result = (result + pred) & 0xFFFFFF;
  }
}

void main() {
  if (mode == 0) { encode(); } else { decode(); }
  print(result);
}
`

var imaStepTable = []int64{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
	41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
	190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
	724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484,
	7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818,
	18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

var imaIndexTable = []int64{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

// pcmWalk synthesizes a bounded random-walk audio signal.
func pcmWalk(seed int64, n int) []int64 {
	rng := randInts(seed, n, 2048)
	out := make([]int64, n)
	cur := int64(0)
	for i := range out {
		cur += rng[i] - 1024
		if cur > 30000 {
			cur = 30000
		}
		if cur < -30000 {
			cur = -30000
		}
		out[i] = cur
	}
	return out
}

func adpcmWorkload(name string, mode int64, n int, seed int64) *Workload {
	w := &Workload{Name: name, Bench: "adpcm", Source: adpcmSrc}
	w.Inputs = []Input{
		{Name: "stepTab", Ints: imaStepTable},
		{Name: "idxTab", Ints: imaIndexTable},
		scalar("n", int64(n)),
		scalar("mode", mode),
	}
	if mode == 0 {
		w.Inputs = append(w.Inputs, Input{Name: "pcm", Ints: pcmWalk(seed, n)})
	} else {
		w.Inputs = append(w.Inputs, Input{Name: "code", Ints: randInts(seed, n, 16)})
	}
	return w
}

const basicmathSrc = `
float vals[4096];
int ivals[4096];
int n;
float facc;
int iacc;

float cbrt(float x) {
  float y = x;
  if (y < 1.0) { y = 1.0; }
  for (int it = 0; it < 24; it++) {
    float y2 = y * y;
    float ny = (2.0 * y + x / y2) / 3.0;
    float d = ny - y;
    if (d < 0.0) { d = -d; }
    y = ny;
    if (d < 0.000001) { break; }
  }
  return y;
}

int isqrt(int v) {
  int r = 0;
  int b = 1073741824;
  while (b > v) { b = b >> 2; }
  while (b != 0) {
    if (v >= r + b) {
      v -= r + b;
      r = (r >> 1) + b;
    } else {
      r = r >> 1;
    }
    b = b >> 2;
  }
  return r;
}

void main() {
  for (int i = 0; i < n; i++) {
    facc = facc + cbrt(vals[i]);
    iacc = iacc + isqrt(ivals[i]);
    float deg = vals[i] * 57.29577951308232;
    facc = facc + deg * 0.0174532925199433 - vals[i];
  }
  print(facc);
  print(iacc);
}
`

func basicmathWorkload(name string, n int, seed int64) *Workload {
	return &Workload{
		Name: name, Bench: "basicmath", Source: basicmathSrc,
		Inputs: []Input{
			{Name: "vals", Floats: randFloats(seed, n, 1, 10000)},
			{Name: "ivals", Ints: randInts(seed+1, n, 1<<30)},
			scalar("n", int64(n)),
		},
	}
}

const bitcountSrc = `
int btbl[16];
int data[65536];
int n;
int total;

int cnt1(int v) {
  int c = 0;
  while (v != 0) {
    c += v & 1;
    v = v >> 1;
  }
  return c;
}

int cnt2(int v) {
  int c = 0;
  while (v != 0) {
    v = v & (v - 1);
    c++;
  }
  return c;
}

int cnt3(int v) {
  int c = 0;
  while (v != 0) {
    c += btbl[v & 15];
    v = v >> 4;
  }
  return c;
}

int cnt4(int v) {
  v = (v & 0x55555555) + ((v >> 1) & 0x55555555);
  v = (v & 0x33333333) + ((v >> 2) & 0x33333333);
  v = (v & 0x0F0F0F0F) + ((v >> 4) & 0x0F0F0F0F);
  v = (v & 0x00FF00FF) + ((v >> 8) & 0x00FF00FF);
  v = (v & 0x0000FFFF) + ((v >> 16) & 0x0000FFFF);
  return v;
}

void main() {
  for (int i = 0; i < n; i++) {
    int v = data[i];
    int m = i & 3;
    if (m == 0) { total += cnt1(v); }
    else { if (m == 1) { total += cnt2(v); }
    else { if (m == 2) { total += cnt3(v); }
    else { total += cnt4(v); } } }
  }
  print(total);
}
`

func bitcountWorkload(name string, n int, seed int64) *Workload {
	nibbleBits := []int64{0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4}
	return &Workload{
		Name: name, Bench: "bitcount", Source: bitcountSrc,
		Inputs: []Input{
			{Name: "btbl", Ints: nibbleBits},
			{Name: "data", Ints: randInts(seed, n, 1<<31)},
			scalar("n", int64(n)),
		},
	}
}

const crc32Src = `
int crcTab[256];
int data[65536];
int n;
int crc;

void buildTable() {
  for (int i = 0; i < 256; i++) {
    int c = i;
    for (int k = 0; k < 8; k++) {
      if ((c & 1) == 1) {
        c = (c >> 1) ^ 0xEDB88320;
      } else {
        c = c >> 1;
      }
    }
    crcTab[i] = c & 0xFFFFFFFF;
  }
}

void main() {
  buildTable();
  crc = 0xFFFFFFFF;
  for (int i = 0; i < n; i++) {
    crc = ((crc >> 8) ^ crcTab[(crc ^ data[i]) & 255]) & 0xFFFFFFFF;
  }
  crc = crc ^ 0xFFFFFFFF;
  print(crc);
}
`

func crc32Workload(name string, n int, seed int64) *Workload {
	return &Workload{
		Name: name, Bench: "crc32", Source: crc32Src,
		Inputs: []Input{
			{Name: "data", Ints: randInts(seed, n, 256)},
			scalar("n", int64(n)),
		},
	}
}

const dijkstraSrc = `
int adj[16384];
int dist[128];
int visited[128];
int V;
int sources;
int total;

int run(int src) {
  for (int i = 0; i < V; i++) {
    dist[i] = 1000000;
    visited[i] = 0;
  }
  dist[src] = 0;
  for (int iter = 0; iter < V; iter++) {
    int best = -1;
    int bd = 1000001;
    for (int i = 0; i < V; i++) {
      if (visited[i] == 0 && dist[i] < bd) {
        bd = dist[i];
        best = i;
      }
    }
    if (best < 0) { break; }
    visited[best] = 1;
    int row = best * V;
    for (int i = 0; i < V; i++) {
      int wgt = adj[row + i];
      if (wgt > 0) {
        int nd = dist[best] + wgt;
        if (nd < dist[i]) { dist[i] = nd; }
      }
    }
  }
  return dist[V - 1];
}

void main() {
  for (int s = 0; s < sources; s++) {
    total += run(s % V);
  }
  print(total);
}
`

// dijkstraGraph builds a sparse random weighted digraph as a V x V matrix
// (0 = no edge), guaranteeing a ring so every node is reachable.
func dijkstraGraph(seed int64, v int) []int64 {
	rng := randInts(seed, v*v, 1000)
	adj := make([]int64, v*v)
	for i := 0; i < v; i++ {
		for j := 0; j < v; j++ {
			if i == j {
				continue
			}
			r := rng[i*v+j]
			if r < 150 { // ~15% density
				adj[i*v+j] = 1 + r%97
			}
		}
		adj[i*v+(i+1)%v] = 1 + rng[i*v]%13
	}
	return adj
}

func dijkstraWorkload(name string, v, sources int, seed int64) *Workload {
	return &Workload{
		Name: name, Bench: "dijkstra", Source: dijkstraSrc,
		Inputs: []Input{
			{Name: "adj", Ints: dijkstraGraph(seed, v)},
			scalar("V", int64(v)),
			scalar("sources", int64(sources)),
		},
	}
}

const fftSrc = `
float re[1024];
float im[1024];
int n;
int inverse;
float spectSum;

void fft() {
  int j = 0;
  for (int i = 0; i < n - 1; i++) {
    if (i < j) {
      float tr = re[i];
      re[i] = re[j];
      re[j] = tr;
      float ti = im[i];
      im[i] = im[j];
      im[j] = ti;
    }
    int m = n >> 1;
    while (m >= 1 && j >= m) {
      j -= m;
      m = m >> 1;
    }
    j += m;
  }
  float dir = 1.0;
  if (inverse == 1) { dir = -1.0; }
  int len = 2;
  while (len <= n) {
    float ang = dir * 6.283185307179586 / itof(len);
    int half = len >> 1;
    for (int i = 0; i < n; i += len) {
      for (int k = 0; k < half; k++) {
        float a = ang * itof(k);
        float wr = cos(a);
        float wi = sin(a);
        int p = i + k;
        int q = p + half;
        float xr = re[q] * wr - im[q] * wi;
        float xi = re[q] * wi + im[q] * wr;
        re[q] = re[p] - xr;
        im[q] = im[p] - xi;
        re[p] = re[p] + xr;
        im[p] = im[p] + xi;
      }
    }
    len = len << 1;
  }
}

void main() {
  fft();
  for (int i = 0; i < n; i++) {
    spectSum = spectSum + re[i] * re[i] + im[i] * im[i];
  }
  print(spectSum);
}
`

func fftWorkload(name string, n int, inverse int64, seed int64) *Workload {
	return &Workload{
		Name: name, Bench: "fft", Source: fftSrc,
		Inputs: []Input{
			{Name: "re", Floats: randFloats(seed, n, -1, 1)},
			{Name: "im", Floats: randFloats(seed+1, n, -1, 1)},
			scalar("n", int64(n)),
			scalar("inverse", inverse),
		},
	}
}
