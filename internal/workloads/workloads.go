// Package workloads provides the MiBench-equivalent benchmark suite: the
// thirteen embedded kernels of the paper's evaluation (Guthaus et al.,
// WWC 2001), re-implemented in HLC, with deterministic synthetic inputs in
// small and large variants — the same 32 workload/input pairs that label
// the x-axis of the paper's Fig. 4.
//
// Substitution note (recorded in DESIGN.md): MiBench's C sources and input
// files are not redistributable here, so each kernel re-implements the same
// algorithm (ADPCM codec, CRC-32, Dijkstra, FFT, SHA-1 style hashing, …)
// and inputs are generated pseudo-randomly from fixed seeds. What matters
// for the paper's claims is that the suite spans the same behavioural
// range: integer vs floating point, regular vs irregular control flow,
// cache-friendly vs cache-hostile access patterns.
package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/vm"
)

// Input is one global-variable initialization.
type Input struct {
	Name   string
	Ints   []int64
	Floats []float64
}

// Workload is one benchmark/input pair.
type Workload struct {
	Name   string // e.g. "adpcm/large1"
	Bench  string // e.g. "adpcm"
	Source string // HLC source text
	Inputs []Input
}

// Setup installs the workload's inputs into a VM.
func (w *Workload) Setup(m *vm.VM) error {
	for _, in := range w.Inputs {
		if in.Floats != nil {
			if err := m.SetFloats(in.Name, in.Floats); err != nil {
				return fmt.Errorf("workload %s: %w", w.Name, err)
			}
			continue
		}
		if err := m.SetInts(in.Name, in.Ints); err != nil {
			return fmt.Errorf("workload %s: %w", w.Name, err)
		}
	}
	return nil
}

func scalar(name string, v int64) Input { return Input{Name: name, Ints: []int64{v}} }

// randInts generates a deterministic pseudo-random int array with values in
// [0, mod).
func randInts(seed int64, n int, mod int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(mod)
	}
	return out
}

// randFloats generates a deterministic pseudo-random float array in [lo,hi).
func randFloats(seed int64, n int, lo, hi float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

var registry []*Workload

func register(w *Workload) *Workload {
	registry = append(registry, w)
	return w
}

// Register adds a workload to the registry at runtime — the hook generated
// corpora use to make synthetic benchmarks addressable by name (e.g. for
// `synth explore -generate`). Re-registering an existing name replaces the
// earlier entry rather than shadowing it. Not safe for concurrent use with
// lookups; register corpora up front, before fan-out.
func Register(w *Workload) error {
	if w == nil || w.Name == "" || w.Source == "" {
		return fmt.Errorf("workloads: Register needs a name and source")
	}
	for i, old := range registry {
		if old.Name == w.Name {
			registry[i] = w
			return nil
		}
	}
	registry = append(registry, w)
	return nil
}

// All returns the full suite in the paper's Fig. 4 order. The slice is
// shared; callers must not mutate it.
func All() []*Workload { return registry }

// ByName returns the named workload, or nil.
func ByName(name string) *Workload {
	for _, w := range registry {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// Benchmarks returns the distinct benchmark family names in suite order.
func Benchmarks() []string {
	var out []string
	seen := make(map[string]bool)
	for _, w := range registry {
		if !seen[w.Bench] {
			seen[w.Bench] = true
			out = append(out, w.Bench)
		}
	}
	return out
}

// ByBench returns all workload/input pairs of one benchmark family.
func ByBench(bench string) []*Workload {
	var out []*Workload
	for _, w := range registry {
		if w.Bench == bench {
			out = append(out, w)
		}
	}
	return out
}
