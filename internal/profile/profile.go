// Package profile implements the profiling step of the framework
// (Section III.A): it executes a workload compiled at a low optimization
// level under the VM's instrumentation hook (the Pin substitute) and
// produces the statistical profile — the SFGL with loop annotation, branch
// taken/transition rates, per-access cache behavior quantized into the
// Table I classes, and the instruction mix.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/sfgl"
	"repro/internal/vm"
)

// Options configures profiling.
type Options struct {
	// Cache is the configuration simulated during profiling to classify
	// memory accesses (Section III.A.3). The zero value selects the
	// default 8KB 2-way cache with 32-byte lines.
	Cache cache.Config
	// MaxInstrs bounds the profiled execution (0 = VM default).
	MaxInstrs uint64
}

// DefaultCache is the profiling cache configuration.
var DefaultCache = cache.Config{Name: "profile-8KB", Size: 8 * 1024, LineSize: 32, Assoc: 2}

// WideCache returns the wide profiling cache derived from the primary
// one: 8x the capacity at doubled associativity. Per-site miss rates at
// this second point bound each access stream's working set — a site that
// misses the primary cache but fits the wide one is locality-bound, not
// streaming, and the synthesizer sizes its walker's range accordingly.
func WideCache(c cache.Config) cache.Config {
	return cache.Config{
		Name:     c.Name + "-wide",
		Size:     c.Size * 8,
		LineSize: c.LineSize,
		Assoc:    c.Assoc * 2,
	}
}

// Profile is the statistical profile of one workload execution.
type Profile struct {
	Workload string      `json:"workload"`
	Graph    *sfgl.Graph `json:"graph"`
	TotalDyn uint64      `json:"totalDyn"`
	// Mix counts executed instructions per class.
	Mix [isa.NumClasses]uint64 `json:"mix"`
	// CacheCfg documents the profiling cache.
	CacheCfg cache.Config `json:"cacheCfg"`
	// Output of the profiled run (for sanity checks).
	OutputHash uint64 `json:"outputHash"`
}

// MixFractions returns the instruction-mix fractions of Fig. 6: loads,
// stores, branches (conditional), and everything else.
func (p *Profile) MixFractions() (loads, stores, branches, others float64) {
	total := float64(p.TotalDyn)
	if total == 0 {
		return 0, 0, 0, 0
	}
	loads = float64(p.Mix[isa.ClassLoad]) / total
	stores = float64(p.Mix[isa.ClassStore]) / total
	branches = float64(p.Mix[isa.ClassBranch]) / total
	others = 1 - loads - stores - branches
	return loads, stores, branches, others
}

// blockKey identifies a static basic block.
type blockKey struct{ fn, block int }

// memStat tracks one static memory instruction's cache behavior and its
// stride stream: the top-K address deltas (space-saving counters), the
// stride-repeat count, and a tiny recent-line window for the coarse reuse
// summary. All per-access updates are O(1) in the number of tracked
// strides, so stream profiling does not change Collect's complexity.
type memStat struct {
	accesses, misses uint64
	missesWide       uint64

	last     uint64 // previous address
	lastStr  int64  // previous stride
	haveLast bool
	haveStr  bool
	repeats  uint64 // transitions whose stride repeated the previous one

	strides [sfgl.StreamStrides]strideCounter
	nStride int

	recent    [reuseWindow]uint64 // recently touched line addresses
	recentLen int
	recentPos int
	reuseHits uint64
}

// strideCounter is one space-saving bucket of a site's stride histogram.
type strideCounter struct {
	stride int64
	count  uint64
}

// reuseWindow is the recent-line window size behind Stream.ShortReuse.
const reuseWindow = 4

// note records one access at addr with its outcomes at the profiling
// cache and at the wide (8x) cache bounding the site's working set.
func (ms *memStat) note(addr uint64, miss, missWide bool, lineSize int) {
	ms.accesses++
	if miss {
		ms.misses++
	}
	if missWide {
		ms.missesWide++
	}

	line := addr / uint64(lineSize)
	hit := false
	for i := 0; i < ms.recentLen; i++ {
		if ms.recent[i] == line {
			hit = true
			break
		}
	}
	if hit {
		ms.reuseHits++
	} else {
		ms.recent[ms.recentPos] = line
		ms.recentPos = (ms.recentPos + 1) % reuseWindow
		if ms.recentLen < reuseWindow {
			ms.recentLen++
		}
	}

	if ms.haveLast {
		stride := int64(addr) - int64(ms.last)
		if ms.haveStr && stride == ms.lastStr {
			ms.repeats++
		}
		ms.lastStr, ms.haveStr = stride, true
		ms.bump(stride)
	}
	ms.last, ms.haveLast = addr, true
}

// bump counts one stride transition, evicting the smallest bucket when the
// table is full (space-saving: the newcomer inherits the evicted count, so
// frequent strides cannot be starved by a long irregular tail).
func (ms *memStat) bump(stride int64) {
	minAt := 0
	for i := 0; i < ms.nStride; i++ {
		if ms.strides[i].stride == stride {
			ms.strides[i].count++
			return
		}
		if ms.strides[i].count < ms.strides[minAt].count {
			minAt = i
		}
	}
	if ms.nStride < len(ms.strides) {
		ms.strides[ms.nStride] = strideCounter{stride: stride, count: 1}
		ms.nStride++
		return
	}
	ms.strides[minAt] = strideCounter{stride: stride, count: ms.strides[minAt].count + 1}
}

// stream summarizes the collected state as a serializable descriptor.
func (ms *memStat) stream() *sfgl.Stream {
	s := &sfgl.Stream{
		V:        sfgl.StreamVersion,
		Accesses: ms.accesses,
		MissRate: float64(ms.misses) / float64(ms.accesses),
		MissWide: float64(ms.missesWide) / float64(ms.accesses),
	}
	transitions := ms.accesses - 1
	if transitions > 0 {
		s.Regularity = float64(ms.repeats) / float64(transitions)
		bins := append([]strideCounter(nil), ms.strides[:ms.nStride]...)
		sort.Slice(bins, func(i, j int) bool {
			if bins[i].count != bins[j].count {
				return bins[i].count > bins[j].count
			}
			return bins[i].stride < bins[j].stride
		})
		for _, b := range bins {
			s.Strides = append(s.Strides, sfgl.StrideBin{
				Stride: b.stride,
				Frac:   float64(b.count) / float64(transitions),
			})
		}
	}
	s.ShortReuse = float64(ms.reuseHits) / float64(ms.accesses)
	return s
}

// branchStat tracks one static conditional branch.
type branchStat struct {
	taken, total, transitions uint64
	last                      bool
	any                       bool
}

// Collect profiles a compiled program. setup (optional) installs workload
// inputs before the run.
func Collect(prog *isa.Program, setup func(*vm.VM) error, name string, opts Options) (*Profile, error) {
	if opts.Cache == (cache.Config{}) {
		opts.Cache = DefaultCache
	}
	m := vm.New(prog)
	if setup != nil {
		if err := setup(m); err != nil {
			return nil, err
		}
	}

	c := cache.New(opts.Cache)
	cWide := cache.New(WideCache(opts.Cache))
	callCounts := make([]uint64, len(prog.Funcs))
	var mix [isa.NumClasses]uint64
	var total uint64

	// Per-event state is dense, indexed by the VM's static-site and block
	// IDs (see vm.Layout): the hook does pure slice arithmetic, no map
	// lookups. siteKind collapses the opcode dispatch to one byte per site.
	lay := vm.LayoutOf(prog)
	nSites, nBlocks := lay.NumSites(), lay.NumBlocks()
	classBySite := make([]isa.Class, nSites)
	kindBySite := make([]uint8, nSites)
	blockBySite := make([]int32, nSites)
	siteSym := make([]int32, nSites) // CALL callee index
	const (
		siteOther = iota
		siteMem
		siteBR
		siteJMP
		siteCALL
	)
	for s := 0; s < nSites; s++ {
		in := lay.Instr(s)
		loc := lay.Loc(s)
		classBySite[s] = in.Class()
		blockBySite[s] = int32(lay.BlockID(loc.Func, loc.Block))
		switch in.Op {
		case isa.LD, isa.ST, isa.LDL, isa.STL:
			kindBySite[s] = siteMem
		case isa.BR:
			kindBySite[s] = siteBR
		case isa.JMP:
			kindBySite[s] = siteJMP
		case isa.CALL:
			kindBySite[s] = siteCALL
			siteSym[s] = in.Sym
		}
	}
	blockCounts := make([]uint64, nBlocks)
	memStats := make([]memStat, nSites)
	branchStats := make([]branchStat, nBlocks)
	// Edge counts per originating block: the taken arm is Succs[0] (BR
	// taken and JMP), the fall-through arm Succs[1] (BR not taken).
	edgeTaken := make([]uint64, nBlocks)
	edgeNot := make([]uint64, nBlocks)
	lineSize := opts.Cache.LineSize

	hook := func(ev *vm.Event) {
		total++
		s := ev.Site
		mix[classBySite[s]]++
		if ev.Index == 0 {
			blockCounts[blockBySite[s]]++
		}
		switch kindBySite[s] {
		case siteMem:
			miss := !c.Access(ev.Addr)
			missWide := !cWide.Access(ev.Addr)
			memStats[s].note(ev.Addr, miss, missWide, lineSize)
		case siteBR:
			bs := &branchStats[blockBySite[s]]
			bs.total++
			if ev.Taken {
				bs.taken++
				edgeTaken[blockBySite[s]]++
			} else {
				edgeNot[blockBySite[s]]++
			}
			if bs.any && ev.Taken != bs.last {
				bs.transitions++
			}
			bs.last = ev.Taken
			bs.any = true
		case siteJMP:
			edgeTaken[blockBySite[s]]++
		case siteCALL:
			callCounts[siteSym[s]]++
		}
	}

	res, err := m.Run(vm.Config{Hook: hook, MaxInstrs: opts.MaxInstrs})
	if err != nil {
		return nil, fmt.Errorf("profile: %s: %w", name, err)
	}

	// Re-key the dense run state by static location for graph construction
	// (cold: one pass over static sites and blocks).
	blockCountsM := make(map[blockKey]uint64)
	branchStatsM := make(map[blockKey]*branchStat)
	edgeCounts := make(map[[2]int]uint64)
	bid := 0
	for fi, f := range prog.Funcs {
		for bi, blk := range f.Blocks {
			if blockCounts[bid] > 0 {
				blockCountsM[blockKey{fi, bi}] = blockCounts[bid]
			}
			if branchStats[bid].total > 0 {
				branchStatsM[blockKey{fi, bi}] = &branchStats[bid]
			}
			if edgeTaken[bid] > 0 {
				to := lay.BlockID(fi, blk.Succs[0])
				edgeCounts[[2]int{bid, to}] += edgeTaken[bid]
			}
			if edgeNot[bid] > 0 {
				to := lay.BlockID(fi, blk.Succs[1])
				edgeCounts[[2]int{bid, to}] += edgeNot[bid]
			}
			bid++
		}
	}
	memStatsM := make(map[[3]int]*memStat)
	for s := 0; s < nSites; s++ {
		if memStats[s].accesses > 0 {
			loc := lay.Loc(s)
			memStatsM[[3]int{loc.Func, loc.Block, loc.Index}] = &memStats[s]
		}
	}

	g := buildGraph(prog, blockCountsM, edgeCounts, memStatsM, branchStatsM, callCounts)
	return &Profile{
		Workload:   name,
		Graph:      g,
		TotalDyn:   total,
		Mix:        mix,
		CacheCfg:   opts.Cache,
		OutputHash: res.OutputHash,
	}, nil
}

// nodeID assigns a dense node ID per static block: blocks are numbered
// function by function in program order.
func nodeID(prog *isa.Program, fn, block int) int {
	id := 0
	for i := 0; i < fn; i++ {
		id += len(prog.Funcs[i].Blocks)
	}
	return id + block
}

func buildGraph(prog *isa.Program,
	blockCounts map[blockKey]uint64,
	edgeCounts map[[2]int]uint64,
	memStats map[[3]int]*memStat,
	branchStats map[blockKey]*branchStat,
	callCounts []uint64) *sfgl.Graph {

	g := &sfgl.Graph{FuncCalls: callCounts}
	for _, f := range prog.Funcs {
		g.FuncNames = append(g.FuncNames, f.Name)
	}

	// Nodes: one per static block, in nodeID order.
	for fi, f := range prog.Funcs {
		for bi, blk := range f.Blocks {
			n := &sfgl.Node{
				ID:    nodeID(prog, fi, bi),
				Func:  fi,
				Block: bi,
				Count: blockCounts[blockKey{fi, bi}],
			}
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				info := sfgl.InstrInfo{Op: in.Op, Class: in.Class(), MemClass: -1}
				if ms := memStats[[3]int{fi, bi, ii}]; ms != nil && ms.accesses > 0 {
					miss := float64(ms.misses) / float64(ms.accesses)
					info.MemClass = sfgl.MemClassFor(miss)
					info.Stream = ms.stream()
				}
				n.Instrs = append(n.Instrs, info)
			}
			if bs := branchStats[blockKey{fi, bi}]; bs != nil && bs.total > 0 {
				takenRate := float64(bs.taken) / float64(bs.total)
				transRate := 0.0
				if bs.total > 1 {
					transRate = float64(bs.transitions) / float64(bs.total-1)
				}
				n.Branch = &sfgl.BranchInfo{
					Taken:       bs.taken,
					Total:       bs.total,
					Transitions: bs.transitions,
					TakenRate:   takenRate,
					TransRate:   transRate,
					Hard:        transRate > 0.15 && transRate < 0.85,
				}
			}
			g.Nodes = append(g.Nodes, n)
		}
	}

	for k, c := range edgeCounts {
		g.Edges = append(g.Edges, &sfgl.Edge{From: k[0], To: k[1], Count: c})
	}
	sortEdges(g.Edges)

	// Loop annotation: natural loops on each function's static CFG, with
	// entry counts from edges entering the header from outside the loop.
	loopID := 0
	for fi, f := range prog.Funcs {
		forest := ir.FindLoops(ir.Succs(f), 0)
		// Map forest index -> global loop ID for parents.
		idOf := make([]int, len(forest.Loops))
		for li := range forest.Loops {
			idOf[li] = loopID + li
		}
		for li := range forest.Loops {
			l := &forest.Loops[li]
			headerID := nodeID(prog, fi, l.Header)
			iterations := blockCounts[blockKey{fi, l.Header}]
			var entries uint64
			inLoop := make(map[int]bool)
			for _, b := range l.Blocks {
				inLoop[nodeID(prog, fi, b)] = true
			}
			for k, c := range edgeCounts {
				if k[1] == headerID && !inLoop[k[0]] {
					entries += c
				}
			}
			parent := -1
			if l.Parent >= 0 {
				parent = idOf[l.Parent]
			}
			var nodes []int
			for _, b := range l.Blocks {
				nodes = append(nodes, nodeID(prog, fi, b))
			}
			g.Loops = append(g.Loops, &sfgl.Loop{
				ID:         idOf[li],
				Func:       fi,
				Header:     headerID,
				Nodes:      nodes,
				Parent:     parent,
				Depth:      l.Depth,
				Entries:    entries,
				Iterations: iterations,
			})
		}
		loopID += len(forest.Loops)
	}
	return g
}

func sortEdges(edges []*sfgl.Edge) {
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && less(edges[j], edges[j-1]); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
}

func less(a, b *sfgl.Edge) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}

// Save writes the profile as JSON.
func (p *Profile) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// Load reads a profile from JSON. Structurally broken payloads — no graph,
// or stream descriptors from an unknown version — are errors, never
// panics: profiles cross process boundaries (`synth synthesize -from`, the
// artifact store) and must fail loudly instead of synthesizing garbage.
func Load(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if p.Graph == nil {
		return nil, fmt.Errorf("profile: decode: missing graph")
	}
	if err := p.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	return &p, nil
}
