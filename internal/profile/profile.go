// Package profile implements the profiling step of the framework
// (Section III.A): it executes a workload compiled at a low optimization
// level under the VM's instrumentation hook (the Pin substitute) and
// produces the statistical profile — the SFGL with loop annotation, branch
// taken/transition rates, per-access cache behavior quantized into the
// Table I classes, and the instruction mix.
package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/sfgl"
	"repro/internal/vm"
)

// Options configures profiling.
type Options struct {
	// Cache is the configuration simulated during profiling to classify
	// memory accesses (Section III.A.3). The zero value selects the
	// default 8KB 2-way cache with 32-byte lines.
	Cache cache.Config
	// MaxInstrs bounds the profiled execution (0 = VM default).
	MaxInstrs uint64
}

// DefaultCache is the profiling cache configuration.
var DefaultCache = cache.Config{Name: "profile-8KB", Size: 8 * 1024, LineSize: 32, Assoc: 2}

// Profile is the statistical profile of one workload execution.
type Profile struct {
	Workload string      `json:"workload"`
	Graph    *sfgl.Graph `json:"graph"`
	TotalDyn uint64      `json:"totalDyn"`
	// Mix counts executed instructions per class.
	Mix [isa.NumClasses]uint64 `json:"mix"`
	// CacheCfg documents the profiling cache.
	CacheCfg cache.Config `json:"cacheCfg"`
	// Output of the profiled run (for sanity checks).
	OutputHash uint64 `json:"outputHash"`
}

// MixFractions returns the instruction-mix fractions of Fig. 6: loads,
// stores, branches (conditional), and everything else.
func (p *Profile) MixFractions() (loads, stores, branches, others float64) {
	total := float64(p.TotalDyn)
	if total == 0 {
		return 0, 0, 0, 0
	}
	loads = float64(p.Mix[isa.ClassLoad]) / total
	stores = float64(p.Mix[isa.ClassStore]) / total
	branches = float64(p.Mix[isa.ClassBranch]) / total
	others = 1 - loads - stores - branches
	return loads, stores, branches, others
}

// blockKey identifies a static basic block.
type blockKey struct{ fn, block int }

// memStat tracks one static memory instruction's cache behavior.
type memStat struct {
	accesses, misses uint64
}

// branchStat tracks one static conditional branch.
type branchStat struct {
	taken, total, transitions uint64
	last                      bool
	any                       bool
}

// Collect profiles a compiled program. setup (optional) installs workload
// inputs before the run.
func Collect(prog *isa.Program, setup func(*vm.VM) error, name string, opts Options) (*Profile, error) {
	if opts.Cache == (cache.Config{}) {
		opts.Cache = DefaultCache
	}
	m := vm.New(prog)
	if setup != nil {
		if err := setup(m); err != nil {
			return nil, err
		}
	}

	c := cache.New(opts.Cache)
	blockCounts := make(map[blockKey]uint64)
	edgeCounts := make(map[[2]int]uint64) // (nodeFrom, nodeTo) by block within func
	memStats := make(map[[3]int]*memStat)
	branchStats := make(map[blockKey]*branchStat)
	callCounts := make([]uint64, len(prog.Funcs))
	var mix [isa.NumClasses]uint64
	var total uint64

	hook := func(ev *vm.Event) {
		total++
		mix[ev.Instr.Class()]++
		if ev.Index == 0 {
			blockCounts[blockKey{ev.Func, ev.Block}]++
		}
		switch ev.Instr.Op {
		case isa.LD, isa.ST, isa.LDL, isa.STL:
			key := [3]int{ev.Func, ev.Block, ev.Index}
			ms := memStats[key]
			if ms == nil {
				ms = &memStat{}
				memStats[key] = ms
			}
			ms.accesses++
			if !c.Access(ev.Addr) {
				ms.misses++
			}
		case isa.BR:
			key := blockKey{ev.Func, ev.Block}
			bs := branchStats[key]
			if bs == nil {
				bs = &branchStat{}
				branchStats[key] = bs
			}
			bs.total++
			if ev.Taken {
				bs.taken++
			}
			if bs.any && ev.Taken != bs.last {
				bs.transitions++
			}
			bs.last = ev.Taken
			bs.any = true
			// Record the control-flow edge this branch took.
			blk := prog.Funcs[ev.Func].Blocks[ev.Block]
			to := blk.Succs[1]
			if ev.Taken {
				to = blk.Succs[0]
			}
			edgeCounts[[2]int{nodeID(prog, ev.Func, ev.Block), nodeID(prog, ev.Func, to)}]++
		case isa.JMP:
			blk := prog.Funcs[ev.Func].Blocks[ev.Block]
			edgeCounts[[2]int{nodeID(prog, ev.Func, ev.Block), nodeID(prog, ev.Func, blk.Succs[0])}]++
		case isa.CALL:
			callCounts[ev.Instr.Sym]++
		}
	}

	res, err := m.Run(vm.Config{Hook: hook, MaxInstrs: opts.MaxInstrs})
	if err != nil {
		return nil, fmt.Errorf("profile: %s: %w", name, err)
	}

	g := buildGraph(prog, blockCounts, edgeCounts, memStats, branchStats, callCounts)
	return &Profile{
		Workload:   name,
		Graph:      g,
		TotalDyn:   total,
		Mix:        mix,
		CacheCfg:   opts.Cache,
		OutputHash: res.OutputHash,
	}, nil
}

// nodeID assigns a dense node ID per static block: blocks are numbered
// function by function in program order.
func nodeID(prog *isa.Program, fn, block int) int {
	id := 0
	for i := 0; i < fn; i++ {
		id += len(prog.Funcs[i].Blocks)
	}
	return id + block
}

func buildGraph(prog *isa.Program,
	blockCounts map[blockKey]uint64,
	edgeCounts map[[2]int]uint64,
	memStats map[[3]int]*memStat,
	branchStats map[blockKey]*branchStat,
	callCounts []uint64) *sfgl.Graph {

	g := &sfgl.Graph{FuncCalls: callCounts}
	for _, f := range prog.Funcs {
		g.FuncNames = append(g.FuncNames, f.Name)
	}

	// Nodes: one per static block, in nodeID order.
	for fi, f := range prog.Funcs {
		for bi, blk := range f.Blocks {
			n := &sfgl.Node{
				ID:    nodeID(prog, fi, bi),
				Func:  fi,
				Block: bi,
				Count: blockCounts[blockKey{fi, bi}],
			}
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				info := sfgl.InstrInfo{Op: in.Op, Class: in.Class(), MemClass: -1}
				if ms := memStats[[3]int{fi, bi, ii}]; ms != nil && ms.accesses > 0 {
					miss := float64(ms.misses) / float64(ms.accesses)
					info.MemClass = sfgl.MemClassFor(miss)
				}
				n.Instrs = append(n.Instrs, info)
			}
			if bs := branchStats[blockKey{fi, bi}]; bs != nil && bs.total > 0 {
				takenRate := float64(bs.taken) / float64(bs.total)
				transRate := 0.0
				if bs.total > 1 {
					transRate = float64(bs.transitions) / float64(bs.total-1)
				}
				n.Branch = &sfgl.BranchInfo{
					Taken:       bs.taken,
					Total:       bs.total,
					Transitions: bs.transitions,
					TakenRate:   takenRate,
					TransRate:   transRate,
					Hard:        transRate > 0.15 && transRate < 0.85,
				}
			}
			g.Nodes = append(g.Nodes, n)
		}
	}

	for k, c := range edgeCounts {
		g.Edges = append(g.Edges, &sfgl.Edge{From: k[0], To: k[1], Count: c})
	}
	sortEdges(g.Edges)

	// Loop annotation: natural loops on each function's static CFG, with
	// entry counts from edges entering the header from outside the loop.
	loopID := 0
	for fi, f := range prog.Funcs {
		forest := ir.FindLoops(ir.Succs(f), 0)
		// Map forest index -> global loop ID for parents.
		idOf := make([]int, len(forest.Loops))
		for li := range forest.Loops {
			idOf[li] = loopID + li
		}
		for li := range forest.Loops {
			l := &forest.Loops[li]
			headerID := nodeID(prog, fi, l.Header)
			iterations := blockCounts[blockKey{fi, l.Header}]
			var entries uint64
			inLoop := make(map[int]bool)
			for _, b := range l.Blocks {
				inLoop[nodeID(prog, fi, b)] = true
			}
			for k, c := range edgeCounts {
				if k[1] == headerID && !inLoop[k[0]] {
					entries += c
				}
			}
			parent := -1
			if l.Parent >= 0 {
				parent = idOf[l.Parent]
			}
			var nodes []int
			for _, b := range l.Blocks {
				nodes = append(nodes, nodeID(prog, fi, b))
			}
			g.Loops = append(g.Loops, &sfgl.Loop{
				ID:         idOf[li],
				Func:       fi,
				Header:     headerID,
				Nodes:      nodes,
				Parent:     parent,
				Depth:      l.Depth,
				Entries:    entries,
				Iterations: iterations,
			})
		}
		loopID += len(forest.Loops)
	}
	return g
}

func sortEdges(edges []*sfgl.Edge) {
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && less(edges[j], edges[j-1]); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
}

func less(a, b *sfgl.Edge) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}

// Save writes the profile as JSON.
func (p *Profile) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// Load reads a profile from JSON.
func Load(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	return &p, nil
}
