package profile

import (
	"bytes"
	"testing"

	"repro/internal/compiler"
	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/sfgl"
	"repro/internal/vm"
)

func collect(t *testing.T, src string) *Profile {
	t.Helper()
	cp := hlc.MustCheck(src)
	// Profiling happens at -O0, as in the paper.
	prog, err := compiler.Compile(cp, isa.AMD64, compiler.O0)
	if err != nil {
		t.Fatal(err)
	}
	ints, floats, err := compiler.GlobalInits(cp)
	if err != nil {
		t.Fatal(err)
	}
	setup := func(m *vm.VM) error {
		for k, v := range ints {
			if err := m.SetInt(k, v); err != nil {
				return err
			}
		}
		for k, v := range floats {
			if err := m.SetFloat(k, v); err != nil {
				return err
			}
		}
		return nil
	}
	p, err := Collect(prog, setup, "test", Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCollectLoopAnnotation(t *testing.T) {
	p := collect(t, `
void main() {
  int sum = 0;
  for (int i = 0; i < 40; i++) { sum += i; }
  print(sum);
}`)
	if len(p.Graph.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(p.Graph.Loops))
	}
	l := p.Graph.Loops[0]
	if l.Entries != 1 {
		t.Errorf("loop entries = %d, want 1", l.Entries)
	}
	// Header executes 41 times (40 body + 1 exit test).
	if trip := l.AvgTrip(); trip < 40 || trip > 42 {
		t.Errorf("avg trip = %.1f, want ≈41", trip)
	}
}

func TestCollectNestedLoops(t *testing.T) {
	p := collect(t, `
void main() {
  int s = 0;
  for (int i = 0; i < 10; i++) {
    for (int j = 0; j < 20; j++) { s += j; }
  }
  print(s);
}`)
	if len(p.Graph.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(p.Graph.Loops))
	}
	var inner, outer *sfgl.Loop
	for _, l := range p.Graph.Loops {
		if l.Depth == 2 {
			inner = l
		} else {
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatalf("bad nest: %+v", p.Graph.Loops)
	}
	if inner.Parent != outer.ID {
		t.Error("inner loop's parent should be the outer loop")
	}
	if trip := inner.AvgTrip(); trip < 20 || trip > 22 {
		t.Errorf("inner trip = %.1f, want ≈21", trip)
	}
	if outer.Entries != 1 || inner.Entries != 10 {
		t.Errorf("entries outer=%d inner=%d, want 1/10", outer.Entries, inner.Entries)
	}
}

func TestCollectBranchRates(t *testing.T) {
	// Branch taken in a data-dependent alternating pattern: taken rate
	// ~0.5, transition rate ~1.0 => easy to predict (not Hard).
	p := collect(t, `
void main() {
  int x = 0;
  for (int i = 0; i < 1000; i++) {
    if (i % 2 == 0) { x += 1; } else { x += 2; }
  }
  print(x);
}`)
	var alternating *sfgl.BranchInfo
	for _, n := range p.Graph.Nodes {
		if n.Branch != nil && n.Branch.Total >= 900 && n.Branch.TakenRate > 0.4 && n.Branch.TakenRate < 0.6 {
			alternating = n.Branch
		}
	}
	if alternating == nil {
		t.Fatal("alternating branch not found in profile")
	}
	if alternating.TransRate < 0.9 {
		t.Errorf("alternating branch transition rate = %.2f, want ≈1", alternating.TransRate)
	}
	if alternating.Hard {
		t.Error("high transition rate should classify as easy to predict")
	}
}

func TestCollectBiasedBranchIsEasy(t *testing.T) {
	p := collect(t, `
void main() {
  int x = 0;
  for (int i = 0; i < 1000; i++) {
    if (i == 500) { x = 99; }
  }
  print(x);
}`)
	found := false
	for _, n := range p.Graph.Nodes {
		if n.Branch != nil && n.Branch.Total >= 900 &&
			(n.Branch.TakenRate < 0.05 || n.Branch.TakenRate > 0.95) {
			found = true
			if n.Branch.Hard {
				t.Error("strongly biased branch should be easy")
			}
			if n.Branch.TransRate > 0.15 {
				t.Errorf("biased branch transition rate = %.3f, want low", n.Branch.TransRate)
			}
		}
	}
	if !found {
		t.Fatal("biased branch not found")
	}
}

func TestCollectMemClasses(t *testing.T) {
	// Sequential walk over a large int array: 32-byte lines hold 8 ints,
	// so the load misses ~1/8 of the time => Table I class 1.
	p := collect(t, `
int big[32768];
void main() {
  int s = 0;
  for (int r = 0; r < 4; r++) {
    for (int i = 0; i < 32768; i++) { s += big[i]; }
  }
  print(s);
}`)
	classCounts := map[int]int{}
	for _, n := range p.Graph.Nodes {
		for _, in := range n.Instrs {
			if in.Op == isa.LD && in.MemClass >= 0 && n.Count > 1000 {
				classCounts[in.MemClass]++
			}
		}
	}
	if classCounts[1] == 0 {
		t.Errorf("sequential array walk should classify as class 1, got %v", classCounts)
	}
}

func TestCollectMixAndTotals(t *testing.T) {
	p := collect(t, `
int data[64];
void main() {
  for (int i = 0; i < 64; i++) { data[i] = i; }
  int s = 0;
  for (int i = 0; i < 64; i++) { s += data[i]; }
  print(s);
}`)
	if p.TotalDyn == 0 {
		t.Fatal("empty profile")
	}
	var sum uint64
	for _, c := range p.Mix {
		sum += c
	}
	if sum != p.TotalDyn {
		t.Errorf("mix sums to %d, want %d", sum, p.TotalDyn)
	}
	loads, stores, branches, others := p.MixFractions()
	if loads <= 0 || stores <= 0 || branches <= 0 || others <= 0 {
		t.Errorf("degenerate mix: %v %v %v %v", loads, stores, branches, others)
	}
	if f := loads + stores + branches + others; f < 0.999 || f > 1.001 {
		t.Errorf("mix fractions sum to %v", f)
	}
	// O0 code is memory-heavy: loads should be a large fraction.
	if loads < 0.2 {
		t.Errorf("O0 load fraction = %.2f, expected heavy load traffic", loads)
	}
}

func TestCollectNodeCountsMatchEdges(t *testing.T) {
	// Internal consistency: a node's count equals the sum of incoming
	// edge counts (plus 1 for the entry block of main per call).
	p := collect(t, `
void main() {
  int s = 0;
  for (int i = 0; i < 10; i++) {
    if (i % 3 == 0) { s += 2; } else { s -= 1; }
  }
  print(s);
}`)
	incoming := make(map[int]uint64)
	for _, e := range p.Graph.Edges {
		incoming[e.To] += e.Count
	}
	for _, n := range p.Graph.Nodes {
		if n.Count == 0 {
			continue
		}
		in := incoming[n.ID]
		// main's entry block has no incoming edges but executes once.
		if n.Block == 0 {
			in++
		}
		if in != n.Count {
			t.Errorf("node %d (f%d b%d): count %d but incoming %d",
				n.ID, n.Func, n.Block, n.Count, in)
		}
	}
}

func TestCollectFuncCalls(t *testing.T) {
	p := collect(t, `
int helper(int x) { return x * 2; }
void main() {
  int s = 0;
  for (int i = 0; i < 25; i++) { s += helper(i); }
  print(s);
}`)
	hi := -1
	for i, name := range p.Graph.FuncNames {
		if name == "helper" {
			hi = i
		}
	}
	if hi < 0 {
		t.Fatal("helper not in profile")
	}
	if p.Graph.FuncCalls[hi] != 25 {
		t.Errorf("helper called %d times in profile, want 25", p.Graph.FuncCalls[hi])
	}
}

func TestProfileSaveLoad(t *testing.T) {
	p := collect(t, `void main() { print(7); }`)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.TotalDyn != p.TotalDyn || q.Workload != p.Workload {
		t.Error("round trip mismatch")
	}
	if _, err := Load(bytes.NewBufferString("nope")); err == nil {
		t.Error("expected decode error")
	}
}
