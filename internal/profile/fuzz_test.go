package profile_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/sfgl"
)

// validProfileJSON returns a round-trippable profile payload for seeding.
func validProfileJSON(t testing.TB) []byte {
	t.Helper()
	p := &profile.Profile{
		Workload: "fuzz/seed",
		TotalDyn: 10,
		Graph: &sfgl.Graph{
			FuncNames: []string{"main"},
			FuncCalls: []uint64{1},
			Nodes: []*sfgl.Node{{
				ID: 0, Count: 5,
				Instrs: []sfgl.InstrInfo{{MemClass: 1, Stream: &sfgl.Stream{
					V: sfgl.StreamVersion, Accesses: 5, MissRate: 0.25,
					Strides: []sfgl.StrideBin{{Stride: 4, Frac: 1}},
				}}},
			}},
		},
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzProfileLoad asserts profile.Load never panics: corrupt, truncated,
// or future-versioned payloads must come back as errors. Profiles cross
// process boundaries (`synth synthesize -from`, the artifact store), so a
// hostile or damaged file must fail loudly, not crash or synthesize
// garbage.
func FuzzProfileLoad(f *testing.F) {
	valid := validProfileJSON(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                         // truncated
	f.Add([]byte(`{}`))                                                 // missing graph
	f.Add([]byte(`{"graph":null}`))                                     // explicit null graph
	f.Add([]byte(`{"graph":{"nodes":[null]}}`))                         // nil node
	f.Add([]byte(strings.Replace(string(valid), `"v":1`, `"v":99`, 1))) // future stream version
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := profile.Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever loads must satisfy the documented invariants.
		if p.Graph == nil {
			t.Fatal("Load returned nil graph without error")
		}
		if err := p.Graph.Validate(); err != nil {
			t.Fatalf("Load returned invalid graph without error: %v", err)
		}
	})
}
