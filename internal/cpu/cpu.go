// Package cpu provides the performance (timing) models: an out-of-order
// ROB-window model and an in-order EPIC model, plus the machine
// configurations of the paper's Table III. It substitutes for PTLSim and
// for the five real machines of the paper's evaluation.
//
// The out-of-order model is a one-pass trace-driven window model: each
// dynamic instruction dispatches in order (bounded by fetch width, ROB
// occupancy, and branch-mispredict refill bubbles), starts executing once
// its register inputs are ready, and completes after its functional-unit or
// memory latency. That captures exactly the effects the paper's figures
// depend on — dependence chains, cache-miss stalls, mispredict bubbles, and
// issue-width limits — at a small fraction of the cost of a detailed
// pipeline simulator.
//
// The EPIC model issues compiler-built bundles strictly in order: a bundle
// stalls until every input of every instruction in it is ready. It only
// goes fast when the static scheduler has packed independent operations
// together, which is what makes the Itanium numbers sensitive to the
// optimization level (Fig. 11).
package cpu

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Config describes one machine.
type Config struct {
	Name    string
	ISA     *isa.Desc
	FreqGHz float64

	Width             int // dispatch width (instructions/cycle); EPIC: bundles/cycle
	ROB               int // reorder-buffer entries (OoO only)
	MispredictPenalty int // front-end refill bubbles after a mispredict
	StoreQueue        int // in-flight store entries (0 = DefaultStoreQueue)

	L1KB, L1Assoc        int
	L2KB, L2Assoc        int
	L1Lat, L2Lat, MemLat int

	EPIC bool // in-order, bundle-driven (requires cfg.ISA.EPIC code)

	// NewPredictor constructs the branch predictor (nil = DefaultHybrid).
	NewPredictor func() bpred.Predictor
}

// Result summarizes a timed execution.
type Result struct {
	Machine     string
	Cycles      uint64
	Instrs      uint64
	CPI         float64
	TimeSec     float64
	L1          cache.Stats
	L2          cache.Stats
	L1Store     cache.Stats
	L2Store     cache.Stats
	BranchAcc   float64
	Branches    uint64
	Mispredicts uint64
	Run         vm.Result
}

// Summary is the serializable core of a Result: everything the design-
// space exploration engine ranks on, without the VM run details (whose
// printed output can be large and is already covered by validation). It
// is the artifact kind the pipeline's Simulate stage persists.
type Summary struct {
	// Machine names the simulated configuration.
	Machine string `json:"machine"`
	// Cycles, Instrs, CPI, and TimeSec summarize the timed execution.
	Cycles  uint64  `json:"cycles"`
	Instrs  uint64  `json:"instrs"`
	CPI     float64 `json:"cpi"`
	TimeSec float64 `json:"timeSec"`
	// L1 and L2 are the load-side data-cache access statistics; L1Store
	// and L2Store count store accesses separately so the load hit rates
	// are not diluted by store fills.
	L1      cache.Stats `json:"l1"`
	L2      cache.Stats `json:"l2"`
	L1Store cache.Stats `json:"l1Store,omitempty"`
	L2Store cache.Stats `json:"l2Store,omitempty"`
	// BranchAcc, Branches, and Mispredicts summarize branch prediction.
	BranchAcc   float64 `json:"branchAcc"`
	Branches    uint64  `json:"branches"`
	Mispredicts uint64  `json:"mispredicts"`
}

// Summary extracts the serializable core of the result.
func (r Result) Summary() Summary {
	return Summary{
		Machine: r.Machine, Cycles: r.Cycles, Instrs: r.Instrs,
		CPI: r.CPI, TimeSec: r.TimeSec, L1: r.L1, L2: r.L2,
		L1Store: r.L1Store, L2Store: r.L2Store,
		BranchAcc: r.BranchAcc, Branches: r.Branches, Mispredicts: r.Mispredicts,
	}
}

// IPC returns instructions per cycle (0 when no cycles elapsed).
func (s Summary) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// Simulate runs prog on the configured machine model. setup (optional)
// installs workload inputs into the VM before execution. A nonzero
// maxInstrs bounds the simulated execution; a run that exhausts the
// budget is a valid (truncated) measurement, not an error — sampled
// simulation is how design-space sweeps stay affordable.
func Simulate(prog *isa.Program, setup func(*vm.VM) error, cfg Config, maxInstrs uint64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.EPIC != cfg.ISA.EPIC {
		return Result{}, fmt.Errorf("cpu: machine %s EPIC=%v but ISA %s EPIC=%v",
			cfg.Name, cfg.EPIC, cfg.ISA.Name, cfg.ISA.EPIC)
	}
	if prog.ISA != cfg.ISA {
		return Result{}, fmt.Errorf("cpu: program compiled for %s, machine %s wants %s",
			prog.ISA.Name, cfg.Name, cfg.ISA.Name)
	}
	m := vm.New(prog)
	if setup != nil {
		if err := setup(m); err != nil {
			return Result{}, err
		}
	}

	var model timingModel
	if cfg.EPIC {
		model = newEPICModel(prog, cfg)
	} else {
		model = newOoOModel(prog, cfg)
	}
	runRes, err := m.Run(vm.Config{Hook: model.observe, MaxInstrs: maxInstrs})
	if err != nil {
		t, ok := err.(*vm.Trap)
		if !ok || maxInstrs == 0 || t.Reason != vm.TrapBudgetExhausted {
			return Result{}, err
		}
		// Instruction budget exhausted: keep the truncated measurement.
	}
	res := model.finish()
	res.Machine = cfg.Name
	res.Run = runRes
	res.Instrs = runRes.DynInstrs
	if res.Cycles > 0 {
		res.CPI = float64(res.Cycles) / float64(res.Instrs)
	}
	if cfg.FreqGHz > 0 {
		res.TimeSec = float64(res.Cycles) / (cfg.FreqGHz * 1e9)
	}
	return res, nil
}

type timingModel interface {
	observe(ev *vm.Event)
	finish() Result
}

// latencyFor returns the fixed functional-unit latency per class (loads and
// stores are handled separately through the cache hierarchy).
func latencyFor(class isa.Class) uint64 {
	switch class {
	case isa.ClassIntALU, isa.ClassOther:
		return 1
	case isa.ClassIntMul:
		return 3
	case isa.ClassIntDiv:
		return 20
	case isa.ClassFPAdd:
		return 3
	case isa.ClassFPMul:
		return 5
	case isa.ClassFPDiv:
		return 24
	case isa.ClassBranch, isa.ClassJump:
		return 1
	case isa.ClassCall, isa.ClassRet:
		return 2
	case isa.ClassSys:
		return 12
	}
	return 1
}

func newHierarchy(cfg Config) *cache.Hierarchy {
	return &cache.Hierarchy{
		L1: cache.New(cache.Config{
			Name: "L1D", Size: cfg.L1KB * 1024, LineSize: 32, Assoc: max(cfg.L1Assoc, 1),
		}),
		L2: cache.New(cache.Config{
			Name: "L2", Size: cfg.L2KB * 1024, LineSize: 32, Assoc: max(cfg.L2Assoc, 1),
		}),
		L1Lat:  cfg.L1Lat,
		L2Lat:  cfg.L2Lat,
		MemLat: cfg.MemLat,
	}
}

func newPredictor(cfg Config) bpred.Predictor {
	if cfg.NewPredictor != nil {
		return cfg.NewPredictor()
	}
	return bpred.DefaultHybrid()
}

// branchPC builds a stable synthetic PC for a static branch site.
func branchPC(fn, block, index int) uint64 {
	return uint64(fn)<<24 ^ uint64(block)<<10 ^ uint64(index)
}

// siteInfo is the per-static-site metadata both timing models need for
// every dynamic instruction. It is precomputed once per simulation and
// indexed by Event.Site, so observe never walks program structure, decodes
// use/def operands, or hashes a map on the hot path.
type siteInfo struct {
	pc          uint64 // kindBranch: synthetic predictor PC
	bkey        uint64 // EPIC bundle identity: block ID << 20 | bundle
	lat         uint32 // fixed functional-unit latency (non-memory)
	u1, u2, def isa.RegID
	kind        uint8
}

const (
	kindOther = iota
	kindLoad
	kindStore
	kindBranch
	kindCall
	kindRet
)

func buildSites(prog *isa.Program) []siteInfo {
	lay := vm.LayoutOf(prog)
	sites := make([]siteInfo, lay.NumSites())
	for s := range sites {
		in := lay.Instr(s)
		loc := lay.Loc(s)
		si := &sites[s]
		si.u1, si.u2, si.def = ir.UseDef2(in)
		si.lat = uint32(latencyFor(in.Class()))
		switch in.Op {
		case isa.LD, isa.LDL:
			si.kind = kindLoad
		case isa.ST, isa.STL:
			si.kind = kindStore
		case isa.BR:
			si.kind = kindBranch
			si.pc = branchPC(loc.Func, loc.Block, loc.Index)
		case isa.CALL:
			si.kind = kindCall
		case isa.RET:
			si.kind = kindRet
		}
		blk := prog.Funcs[loc.Func].Blocks[loc.Block]
		bundleID := loc.Index // unscheduled code: every instruction its own bundle
		if blk.Bundle != nil {
			bundleID = blk.Bundle[loc.Index]
		}
		si.bkey = uint64(lay.BlockID(loc.Func, loc.Block))<<20 | uint64(bundleID)&(1<<20-1)
	}
	return sites
}

// DefaultStoreQueue is the store-queue depth used when Config.StoreQueue
// is zero.
const DefaultStoreQueue = 16

// lineShift matches the 32-byte line size newHierarchy configures: store
// queue entries and load conflict checks work at cache-line granularity,
// which is the granularity a real store buffer's partial-overlap CAM
// collapses to in the common case.
const lineShift = 5

// storeEntry is one in-flight store in the store queue: its cache line,
// the cycle its data became available (forwardable to younger loads), and
// the cycle it completes through the memory hierarchy (its queue entry
// frees and conservative in-order loads stop waiting on it).
type storeEntry struct {
	line      uint64
	dataReady uint64
	done      uint64
}

// storeQueue is the bounded in-flight store window both timing models
// share. Stores enter at dispatch with a real hierarchy completion time
// instead of retiring in a cycle; a full queue stalls dispatch until the
// oldest store drains, and younger loads search it newest-first for
// same-line conflicts.
type storeQueue struct {
	q     []storeEntry
	head  int
	count int
}

func newStoreQueue(n int) *storeQueue {
	if n <= 0 {
		n = DefaultStoreQueue
	}
	return &storeQueue{q: make([]storeEntry, n)}
}

// drain retires entries completed at or before now.
func (sq *storeQueue) drain(now uint64) {
	for sq.count > 0 && sq.q[sq.head].done <= now {
		sq.head = (sq.head + 1) % len(sq.q)
		sq.count--
	}
}

func (sq *storeQueue) full() bool { return sq.count == len(sq.q) }

// oldestDone returns the completion time of the oldest in-flight store
// (0 when empty).
func (sq *storeQueue) oldestDone() uint64 {
	if sq.count == 0 {
		return 0
	}
	return sq.q[sq.head].done
}

// push enters a store (the caller guarantees space via drain/full).
func (sq *storeQueue) push(e storeEntry) {
	sq.q[(sq.head+sq.count)%len(sq.q)] = e
	sq.count++
}

// match returns the newest in-flight store on line still incomplete at
// time t.
func (sq *storeQueue) match(line uint64, t uint64) (storeEntry, bool) {
	for i := sq.count - 1; i >= 0; i-- {
		e := sq.q[(sq.head+i)%len(sq.q)]
		if e.line == line && e.done > t {
			return e, true
		}
	}
	return storeEntry{}, false
}

// regFile is the frame-versioned register-ready table both models use.
// VM registers are per-frame, so readiness keyed by bare RegID would alias
// a callee's r3 with the caller's unrelated r3 across CALL/RET; each
// frame gets a stamp, and a register's readiness only applies when its
// stamp matches the current frame. A CALL's return-value register is
// defined when the matching RET resolves, in the caller's frame.
type regFile struct {
	ready []uint64
	stamp []uint32
	frame uint32
	next  uint32
	calls []frameRet
}

// frameRet records, per active call, the caller's frame stamp and the
// caller register the callee's RET defines.
type frameRet struct {
	frame uint32
	ret   isa.RegID
}

func newRegFile(maxRegs int) *regFile {
	return &regFile{
		ready: make([]uint64, maxRegs+1),
		stamp: make([]uint32, maxRegs+1),
	}
}

// readyAt folds register r's readiness into start (identity when r is
// unwritten in the current frame).
func (rf *regFile) readyAt(r isa.RegID, start uint64) uint64 {
	if r != isa.NoReg && rf.stamp[r] == rf.frame && rf.ready[r] > start {
		return rf.ready[r]
	}
	return start
}

// define marks register r ready at time t in the current frame.
func (rf *regFile) define(r isa.RegID, t uint64) {
	if r != isa.NoReg {
		rf.ready[r] = t
		rf.stamp[r] = rf.frame
	}
}

// call enters a new frame; ret is the caller register the matching RET
// will define.
func (rf *regFile) call(ret isa.RegID) {
	rf.calls = append(rf.calls, frameRet{frame: rf.frame, ret: ret})
	rf.next++
	rf.frame = rf.next
}

// ret leaves the current frame, defining the recorded return register in
// the caller's frame at time t.
func (rf *regFile) ret(t uint64) {
	n := len(rf.calls)
	if n == 0 {
		return // program-exit RET of main
	}
	fr := rf.calls[n-1]
	rf.calls = rf.calls[:n-1]
	rf.frame = fr.frame
	rf.define(fr.ret, t)
}

// ooOModel is the out-of-order window model.
type ooOModel struct {
	cfg   Config
	hier  *cache.Hierarchy
	pred  bpred.Predictor
	sites []siteInfo
	stats struct {
		branches, mispredicts uint64
	}

	cycle          uint64 // current fetch cycle
	fetchedThis    int    // instructions dispatched in the current cycle
	regs           *regFile
	sq             *storeQueue
	depTrained     []bool   // per load site: store-set predictor entry
	rob            []uint64 // completion times, ring buffer of ROB size
	robHead        int
	robCount       int
	lastCompletion uint64
}

func newOoOModel(prog *isa.Program, cfg Config) *ooOModel {
	maxRegs := 0
	for _, f := range prog.Funcs {
		if f.NumRegs > maxRegs {
			maxRegs = f.NumRegs
		}
	}
	sites := buildSites(prog)
	return &ooOModel{
		cfg:        cfg,
		hier:       newHierarchy(cfg),
		pred:       newPredictor(cfg),
		sites:      sites,
		regs:       newRegFile(maxRegs),
		sq:         newStoreQueue(cfg.StoreQueue),
		depTrained: make([]bool, len(sites)),
		rob:        make([]uint64, max(cfg.ROB, 8)),
	}
}

func (m *ooOModel) observe(ev *vm.Event) {
	// Dispatch: bounded by width and ROB occupancy.
	if m.fetchedThis >= m.cfg.Width {
		m.cycle++
		m.fetchedThis = 0
	}
	if m.robCount == len(m.rob) {
		head := m.rob[m.robHead]
		if head > m.cycle {
			m.cycle = head
			m.fetchedThis = 0
		}
		m.robHead = (m.robHead + 1) % len(m.rob)
		m.robCount--
	}
	m.fetchedThis++

	si := &m.sites[ev.Site]
	start := m.regs.readyAt(si.u1, m.cycle)
	start = m.regs.readyAt(si.u2, start)

	var lat uint64
	switch si.kind {
	case kindLoad:
		line := ev.Addr >> lineShift
		if e, ok := m.sq.match(line, start); ok {
			// An older store to the same line is in flight: forward its
			// data (the write never reaches the cache before the load).
			// The store-set predictor learns the conflict: the first time
			// a load site hits one it has speculatively bypassed the
			// store and replays; once trained, the site waits for the
			// store data and pays only the forwarding latency.
			data := max(start, e.dataReady) + uint64(m.cfg.L1Lat)
			if !m.depTrained[ev.Site] {
				m.depTrained[ev.Site] = true
				data += uint64(m.cfg.MispredictPenalty)
			}
			lat = data - start
		} else {
			lat = uint64(m.hier.AccessLatency(ev.Addr))
		}
	case kindStore:
		// Stores occupy a queue entry until the written line completes
		// through the hierarchy; a full queue stalls dispatch until the
		// oldest drains. Retirement itself costs one cycle — the latency
		// lives in the queue, where loads and in-order issue can see it.
		m.sq.drain(start)
		if m.sq.full() {
			od := m.sq.oldestDone()
			if od > m.cycle {
				m.cycle = od
				m.fetchedThis = 0
			}
			if od > start {
				start = od
			}
			m.sq.drain(start)
		}
		m.sq.push(storeEntry{
			line:      ev.Addr >> lineShift,
			dataReady: start,
			done:      start + uint64(m.hier.StoreLatency(ev.Addr)),
		})
		lat = 1
	default:
		lat = uint64(si.lat)
	}
	done := start + lat

	if si.kind == kindBranch {
		m.stats.branches++
		predicted := m.pred.Predict(si.pc)
		m.pred.Update(si.pc, ev.Taken)
		if predicted != ev.Taken {
			m.stats.mispredicts++
			// Front end restarts after the branch resolves.
			refill := done + uint64(m.cfg.MispredictPenalty)
			if refill > m.cycle {
				m.cycle = refill
				m.fetchedThis = 0
			}
		}
	}

	switch si.kind {
	case kindCall:
		m.regs.call(si.def)
	case kindRet:
		m.regs.ret(done)
	default:
		m.regs.define(si.def, done)
	}
	if done > m.lastCompletion {
		m.lastCompletion = done
	}
	// Enter the ROB.
	tail := (m.robHead + m.robCount) % len(m.rob)
	m.rob[tail] = done
	m.robCount++
}

func (m *ooOModel) finish() Result {
	res := Result{
		Cycles:      max(m.cycle, m.lastCompletion),
		L1:          m.hier.L1.Stats,
		L2:          m.hier.L2.Stats,
		L1Store:     m.hier.L1.StoreStats,
		L2Store:     m.hier.L2.StoreStats,
		Branches:    m.stats.branches,
		Mispredicts: m.stats.mispredicts,
	}
	if m.stats.branches > 0 {
		res.BranchAcc = 1 - float64(m.stats.mispredicts)/float64(m.stats.branches)
	} else {
		res.BranchAcc = 1
	}
	return res
}

// epicModel issues statically scheduled bundles in order.
type epicModel struct {
	cfg   Config
	hier  *cache.Hierarchy
	pred  bpred.Predictor
	sites []siteInfo
	stats struct{ branches, mispredicts uint64 }

	cycle          uint64
	regs           *regFile
	sq             *storeQueue
	lastCompletion uint64

	// Current bundle identity: instructions whose site shares a bkey
	// ((func, block, bundle id) packed by buildSites) issue together.
	curKey uint64
}

func newEPICModel(prog *isa.Program, cfg Config) *epicModel {
	maxRegs := 0
	for _, f := range prog.Funcs {
		if f.NumRegs > maxRegs {
			maxRegs = f.NumRegs
		}
	}
	return &epicModel{
		cfg:    cfg,
		hier:   newHierarchy(cfg),
		pred:   newPredictor(cfg),
		sites:  buildSites(prog),
		regs:   newRegFile(maxRegs),
		sq:     newStoreQueue(cfg.StoreQueue),
		curKey: ^uint64(0), // no bundle yet
	}
}

func (m *epicModel) observe(ev *vm.Event) {
	si := &m.sites[ev.Site]
	if si.bkey != m.curKey {
		m.cycle++ // one bundle per cycle baseline
		m.curKey = si.bkey
	}

	// In-order stall: the whole machine waits for this bundle's inputs.
	start := m.regs.readyAt(si.u1, m.cycle)
	start = m.regs.readyAt(si.u2, start)
	if start > m.cycle {
		m.cycle = start // stall cycles
	}

	var lat uint64
	switch si.kind {
	case kindLoad:
		// Conservative in-order rule: a load may not issue past an
		// unresolved older store to the same line. There is no forwarding
		// network — the machine stalls until the store has executed and
		// written the cache (one L1 latency past its data being ready),
		// then the load replays and pays its own cache access.
		if e, ok := m.sq.match(ev.Addr>>lineShift, m.cycle); ok {
			if t := e.dataReady + uint64(m.cfg.L1Lat); t > m.cycle {
				m.cycle = t
			}
		}
		lat = uint64(m.hier.AccessLatency(ev.Addr))
	case kindStore:
		m.sq.drain(m.cycle)
		if m.sq.full() {
			if od := m.sq.oldestDone(); od > m.cycle {
				m.cycle = od
			}
			m.sq.drain(m.cycle)
		}
		m.sq.push(storeEntry{
			line:      ev.Addr >> lineShift,
			dataReady: m.cycle,
			done:      m.cycle + uint64(m.hier.StoreLatency(ev.Addr)),
		})
		lat = 1
	default:
		lat = uint64(si.lat)
	}
	done := m.cycle + lat

	if si.kind == kindBranch {
		m.stats.branches++
		predicted := m.pred.Predict(si.pc)
		m.pred.Update(si.pc, ev.Taken)
		if predicted != ev.Taken {
			m.stats.mispredicts++
			m.cycle = done + uint64(m.cfg.MispredictPenalty)
		}
	}

	switch si.kind {
	case kindCall:
		m.regs.call(si.def)
	case kindRet:
		m.regs.ret(done)
	default:
		m.regs.define(si.def, done)
	}
	if done > m.lastCompletion {
		m.lastCompletion = done
	}
}

func (m *epicModel) finish() Result {
	res := Result{
		Cycles:      max(m.cycle, m.lastCompletion),
		L1:          m.hier.L1.Stats,
		L2:          m.hier.L2.Stats,
		L1Store:     m.hier.L1.StoreStats,
		L2Store:     m.hier.L2.StoreStats,
		Branches:    m.stats.branches,
		Mispredicts: m.stats.mispredicts,
	}
	if m.stats.branches > 0 {
		res.BranchAcc = 1 - float64(m.stats.mispredicts)/float64(m.stats.branches)
	} else {
		res.BranchAcc = 1
	}
	return res
}
