package cpu

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/hlc"
	"repro/internal/isa"
)

func compileFor(t *testing.T, src string, target *isa.Desc, level compiler.OptLevel) *isa.Program {
	t.Helper()
	cp := hlc.MustCheck(src)
	prog, err := compiler.Compile(cp, target, level)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const loopSrc = `
int data[2048];
void main() {
  for (int i = 0; i < 2048; i++) { data[i] = i; }
  int sum = 0;
  for (int r = 0; r < 30; r++) {
    for (int i = 0; i < 2048; i++) { sum += data[i]; }
  }
  print(sum);
}`

func TestSimulateBasics(t *testing.T) {
	prog := compileFor(t, loopSrc, isa.AMD64, compiler.O2)
	res, err := Simulate(prog, nil, Simulated2Wide(16), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instrs == 0 || res.Cycles == 0 {
		t.Fatal("empty simulation result")
	}
	if res.CPI < 0.3 || res.CPI > 30 {
		t.Errorf("implausible CPI %.2f", res.CPI)
	}
	if res.BranchAcc < 0.8 {
		t.Errorf("loop branches should predict well, got %.3f", res.BranchAcc)
	}
	if res.Run.Output[0] != "62883840" { // 30 * 2047*2048/2
		t.Errorf("wrong program output: %v", res.Run.Output)
	}
}

func TestWiderMachineIsFaster(t *testing.T) {
	prog := compileFor(t, loopSrc, isa.AMD64, compiler.O2)
	narrow := Simulated2Wide(16)
	narrow.Width = 1
	wide := Simulated2Wide(16)
	wide.Width = 4
	rn, err := Simulate(prog, nil, narrow, 0)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Simulate(prog, nil, wide, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Cycles >= rn.Cycles {
		t.Errorf("4-wide (%d cycles) should beat 1-wide (%d cycles)", rw.Cycles, rn.Cycles)
	}
}

func TestCacheSizeMattersForLargeWorkingSet(t *testing.T) {
	// Dependent (index-chasing) loads over a 16KB working set: with a 4KB
	// L1 every chased load pays L2 latency on the critical path, so the
	// small-cache machine must burn more cycles — the Fig. 10 effect.
	src := `
int next[4096];
void main() {
  for (int i = 0; i < 4096; i++) { next[i] = (i * 1677 + 811) % 4096; }
  int p = 0;
  for (int r = 0; r < 200000; r++) { p = next[p]; }
  print(p);
}`
	prog := compileFor(t, src, isa.AMD64, compiler.O2)
	small, err := Simulate(prog, nil, Simulated2Wide(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Simulate(prog, nil, Simulated2Wide(32), 0)
	if err != nil {
		t.Fatal(err)
	}
	if small.L1.MissRate() <= big.L1.MissRate() {
		t.Errorf("4KB L1 miss rate (%.4f) should exceed 32KB (%.4f)",
			small.L1.MissRate(), big.L1.MissRate())
	}
	if small.Cycles <= big.Cycles {
		t.Errorf("4KB L1 (%d cycles) should be slower than 32KB (%d cycles)",
			small.Cycles, big.Cycles)
	}
}

func TestDependentChainSlowerThanIndependent(t *testing.T) {
	dep := `
void main() {
  int x = 1;
  for (int i = 0; i < 100000; i++) { x = x * 3 + 1; }
  print(x);
}`
	indep := `
void main() {
  int a = 1; int b = 1; int c = 1; int d = 1;
  for (int i = 0; i < 25000; i++) {
    a = a * 3 + 1; b = b * 3 + 1; c = c * 3 + 1; d = d * 3 + 1;
  }
  print(a + b + c + d);
}`
	cfg := Simulated2Wide(16)
	cfg.Width = 4
	rd, err := Simulate(compileFor(t, dep, isa.AMD64, compiler.O2), nil, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := Simulate(compileFor(t, indep, isa.AMD64, compiler.O2), nil, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Equal work; the independent version should achieve lower CPI.
	if ri.CPI >= rd.CPI {
		t.Errorf("independent chains CPI %.2f should beat dependent chain CPI %.2f", ri.CPI, rd.CPI)
	}
}

func TestEPICBenefitsFromScheduling(t *testing.T) {
	src := `
int out[256];
void main() {
  int a = 3; int b = 5; int c = 7; int d = 11;
  for (int r = 0; r < 200; r++) {
    for (int i = 0; i < 256; i++) {
      out[i] = a * i + b * i + c * i + d * i;
    }
  }
  print(out[255]);
}`
	o1 := compileFor(t, src, isa.IA64, compiler.O1)
	o2 := compileFor(t, src, isa.IA64, compiler.O2)
	r1, err := Simulate(o1, nil, Itanium2, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(o2, nil, Itanium2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles >= r1.Cycles {
		t.Errorf("EPIC O2 (%d cycles) should beat O1 (%d cycles) via bundling", r2.Cycles, r1.Cycles)
	}
	// The paper's Fig. 11 shows a substantial (~25%) O2-over-O1 gain on
	// Itanium; require at least a 10% improvement here.
	if float64(r2.Cycles) > 0.9*float64(r1.Cycles) {
		t.Errorf("EPIC scheduling gain too small: O1=%d O2=%d", r1.Cycles, r2.Cycles)
	}
}

func TestMispredictPenaltyCosts(t *testing.T) {
	// Data-dependent unpredictable branches (fresh pseudorandom bit each
	// iteration, taken from a high LCG bit so the sequence never repeats
	// within the run): higher penalty => more cycles.
	src := `
void main() {
  int seed = 12345;
  int sum = 0;
  for (int i = 0; i < 120000; i++) {
    seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
    if (((seed >> 16) & 1) == 1) { sum += 3; } else { sum -= 1; }
  }
  print(sum);
}`
	prog := compileFor(t, src, isa.AMD64, compiler.O2)
	cheap := Simulated2Wide(16)
	cheap.MispredictPenalty = 2
	dear := Simulated2Wide(16)
	dear.MispredictPenalty = 30
	rc, err := Simulate(prog, nil, cheap, 0)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Simulate(prog, nil, dear, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rd.BranchAcc > 0.95 {
		t.Errorf("random branches predicted too well: %.3f", rd.BranchAcc)
	}
	if rd.Cycles <= rc.Cycles {
		t.Errorf("penalty 30 (%d cycles) should cost more than penalty 2 (%d)", rd.Cycles, rc.Cycles)
	}
}

func TestMachineISAMismatchRejected(t *testing.T) {
	prog := compileFor(t, "void main() { print(1); }", isa.X86, compiler.O0)
	if _, err := Simulate(prog, nil, Core2, 0); err == nil {
		t.Error("expected ISA mismatch error")
	}
	bad := Itanium2
	bad.EPIC = false
	if _, err := Simulate(prog, nil, bad, 0); err == nil {
		t.Error("expected EPIC mismatch error")
	}
}

func TestTableIIIMachineList(t *testing.T) {
	if len(Machines) != 5 {
		t.Fatalf("Table III lists 5 machines, got %d", len(Machines))
	}
	names := map[string]bool{}
	for _, m := range Machines {
		names[m.Name] = true
		if m.FreqGHz <= 0 || m.L1KB <= 0 || m.L2KB <= 0 {
			t.Errorf("machine %s has incomplete configuration", m.Name)
		}
	}
	if !names["Itanium 2"] || !names["Core i7"] {
		t.Error("missing Table III machines")
	}
	if !Itanium2.EPIC || Itanium2.ISA != isa.IA64 {
		t.Error("Itanium 2 must be the EPIC/IA64 machine")
	}
}

func TestFrequencyScalesTime(t *testing.T) {
	prog := compileFor(t, loopSrc, isa.X86, compiler.O2)
	r30, err := Simulate(prog, nil, Pentium4_3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	prog2 := compileFor(t, loopSrc, isa.X86, compiler.O2)
	r28, err := Simulate(prog2, nil, Pentium4_2800, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nearly identical microarchitecture: the 3GHz part should win on
	// wall-clock time.
	if r30.TimeSec >= r28.TimeSec {
		t.Errorf("3GHz P4 (%.6fs) should beat 2.8GHz P4 (%.6fs)", r30.TimeSec, r28.TimeSec)
	}
}
