package cpu

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/isa"
)

// validBase returns a known-good configuration for mutation tests.
func validBase() Config { return Simulated2Wide(16) }

func TestConfigValidateAcceptsAllMachines(t *testing.T) {
	for _, m := range append(append([]Config{}, Machines...), Simulated2Wide(8)) {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestConfigValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"nil ISA", func(c *Config) { c.ISA = nil }, "nil ISA"},
		{"zero width OoO", func(c *Config) { c.Width = 0 }, "Width"},
		{"negative width OoO", func(c *Config) { c.Width = -2 }, "Width"},
		{"non-pow2 L1", func(c *Config) { c.L1KB = 12 }, "L1KB"},
		{"zero L1", func(c *Config) { c.L1KB = 0 }, "L1KB"},
		{"non-pow2 L2", func(c *Config) { c.L2KB = 768 }, "L2KB"},
		{"zero L1 latency", func(c *Config) { c.L1Lat = 0 }, "L1Lat"},
		{"zero L2 latency", func(c *Config) { c.L2Lat = 0 }, "L2Lat"},
		{"zero memory latency", func(c *Config) { c.MemLat = 0 }, "MemLat"},
		{"negative memory latency", func(c *Config) { c.MemLat = -1 }, "MemLat"},
		{"zero L1 associativity", func(c *Config) { c.L1Assoc = 0 }, "associativity"},
		{"zero L2 associativity", func(c *Config) { c.L2Assoc = 0 }, "associativity"},
		{"negative mispredict penalty", func(c *Config) { c.MispredictPenalty = -1 }, "penalty"},
		{"negative frequency", func(c *Config) { c.FreqGHz = -1 }, "frequency"},
	}
	for _, tc := range cases {
		cfg := validBase()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Zero Width on an EPIC machine is fine: bundles issue one per cycle.
	epic := Itanium2
	epic.Width = 0
	if err := epic.Validate(); err != nil {
		t.Errorf("EPIC with zero width should validate: %v", err)
	}
}

func TestSimulateRejectsInvalidConfig(t *testing.T) {
	prog := compileFor(t, "void main() { print(1); }", isa.AMD64, 0)
	bad := validBase()
	bad.L1KB = 13
	if _, err := Simulate(prog, nil, bad, 0); err == nil {
		t.Error("Simulate accepted a non-pow2 L1")
	}
}

func TestConfigFingerprint(t *testing.T) {
	base := validBase()
	// The display name is not part of the identity.
	renamed := base
	renamed.Name = "same machine, different label"
	if base.Fingerprint() != renamed.Fingerprint() {
		t.Error("fingerprint depends on the display name")
	}
	// Every swept axis changes the identity.
	for _, ax := range Axes {
		cfg := base
		var v any = 7.0
		if ax.Name == "predictor" {
			v = PredictorGShare
		}
		if ax.Name == "l1KB" || ax.Name == "l2KB" {
			v = 2048.0
		}
		if err := ax.Apply(&cfg, v); err != nil {
			t.Fatalf("axis %s: %v", ax.Name, err)
		}
		if cfg.Fingerprint() == base.Fingerprint() {
			t.Errorf("axis %s did not change the fingerprint", ax.Name)
		}
	}
}

func TestConfigSpecRoundTrip(t *testing.T) {
	for _, m := range append(append([]Config{}, Machines...), Simulated2Wide(32)) {
		spec := SpecOf(m)
		back, err := spec.Config()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if got, want := back.Fingerprint(), m.Fingerprint(); got != want {
			t.Errorf("%s: round trip changed fingerprint %s -> %s", m.Name, want, got)
		}
	}
}

func TestConfigSpecRejections(t *testing.T) {
	good := SpecOf(validBase())
	bad := good
	bad.ISA = "mips"
	if _, err := bad.Config(); err == nil {
		t.Error("unknown ISA accepted")
	}
	bad = good
	bad.Predictor = "perceptron"
	if _, err := bad.Config(); err == nil {
		t.Error("unknown predictor accepted")
	}
	bad = good
	bad.Width = 0
	if _, err := bad.Config(); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestAxesSortedAndResolvable(t *testing.T) {
	if !sort.SliceIsSorted(Axes, func(i, j int) bool { return Axes[i].Name < Axes[j].Name }) {
		t.Fatal("Axes must be sorted by name (AxisByName binary-searches them)")
	}
	for _, ax := range Axes {
		if got := AxisByName(ax.Name); got == nil || got.Name != ax.Name {
			t.Errorf("AxisByName(%q) = %v", ax.Name, got)
		}
	}
	if AxisByName("no-such-axis") != nil {
		t.Error("AxisByName resolved an unknown axis")
	}
}

func TestAxisApplyTypeErrors(t *testing.T) {
	cfg := validBase()
	if err := AxisByName("width").Apply(&cfg, "wide"); err == nil {
		t.Error("string accepted for an integer axis")
	}
	if err := AxisByName("width").Apply(&cfg, 2.5); err == nil {
		t.Error("fractional value accepted for an integer axis")
	}
	if err := AxisByName("predictor").Apply(&cfg, 3.0); err == nil {
		t.Error("number accepted for the predictor axis")
	}
	if err := AxisByName("predictor").Apply(&cfg, "perceptron"); err == nil {
		t.Error("unknown predictor accepted")
	}
}

func TestMachineByName(t *testing.T) {
	for _, m := range Machines {
		got, ok := MachineByName(m.Name)
		if !ok || got.Name != m.Name {
			t.Errorf("MachineByName(%q) = %v, %v", m.Name, got.Name, ok)
		}
	}
	if m, ok := MachineByName("2-wide OoO"); !ok || m.L1KB != 8 {
		t.Errorf("MachineByName(2-wide OoO) = %+v, %v", m, ok)
	}
	if _, ok := MachineByName("PDP-11"); ok {
		t.Error("unknown machine resolved")
	}
}

func TestSimulateBudgetTruncationIsMeasurement(t *testing.T) {
	prog := compileFor(t, loopSrc, isa.AMD64, 2)
	full, err := Simulate(prog, nil, validBase(), 0)
	if err != nil {
		t.Fatal(err)
	}
	bound := full.Instrs / 2
	trunc, err := Simulate(prog, nil, validBase(), bound)
	if err != nil {
		t.Fatalf("budget-exhausted run should be a measurement, got %v", err)
	}
	if trunc.Instrs < bound || trunc.Instrs > bound+1 {
		t.Errorf("truncated run executed %d instrs, want ~%d", trunc.Instrs, bound)
	}
	if trunc.Cycles == 0 || trunc.CPI == 0 {
		t.Errorf("truncated run carries no timing: %+v", trunc.Summary())
	}
}

func TestSimulateGenuineTrapNotMistakenForBudget(t *testing.T) {
	// A real runtime fault must stay an error even under a nonzero
	// budget — only the budget-exhausted trap is a valid truncation.
	// (The VM double-counts the trapping instruction, so count-based
	// discrimination would misclassify a fault on the boundary.)
	src := `
void main() {
  int z = 0;
  print(7 / z);
}`
	prog := compileFor(t, src, isa.AMD64, 0)
	if _, err := Simulate(prog, nil, validBase(), 1_000_000); err == nil {
		t.Fatal("division-by-zero trap accepted as a truncated measurement")
	}
}
