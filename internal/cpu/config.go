package cpu

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/bpred"
	"repro/internal/isa"
)

// This file is the design-space face of the timing models: structural
// validation of machine configurations, a canonical encoding and content
// fingerprint (the identity simulation artifacts are cached under), a
// serializable ConfigSpec for specs and job queues, and the axis metadata
// the exploration engine sweeps over.

// Validate checks a machine configuration for structural soundness: an
// out-of-order machine must have a positive dispatch width, cache sizes
// must be powers of two, and every latency in the hierarchy must be
// positive. Simulate rejects invalid configurations before running, and
// the exploration spec parser rejects them before any point is enqueued.
func (c Config) Validate() error {
	if c.ISA == nil {
		return fmt.Errorf("cpu: config %q: nil ISA", c.Name)
	}
	if !c.EPIC && c.Width <= 0 {
		return fmt.Errorf("cpu: config %q: out-of-order machine needs Width >= 1, got %d", c.Name, c.Width)
	}
	for _, kb := range []struct {
		name string
		v    int
	}{{"L1KB", c.L1KB}, {"L2KB", c.L2KB}} {
		if kb.v <= 0 || kb.v&(kb.v-1) != 0 {
			return fmt.Errorf("cpu: config %q: %s=%d is not a positive power of two", c.Name, kb.name, kb.v)
		}
	}
	for _, lat := range []struct {
		name string
		v    int
	}{{"L1Lat", c.L1Lat}, {"L2Lat", c.L2Lat}, {"MemLat", c.MemLat}} {
		if lat.v <= 0 {
			return fmt.Errorf("cpu: config %q: %s=%d must be positive", c.Name, lat.name, lat.v)
		}
	}
	if c.L1Assoc <= 0 || c.L2Assoc <= 0 {
		return fmt.Errorf("cpu: config %q: associativity must be >= 1 (L1=%d, L2=%d)", c.Name, c.L1Assoc, c.L2Assoc)
	}
	if c.MispredictPenalty < 0 {
		return fmt.Errorf("cpu: config %q: negative mispredict penalty %d", c.Name, c.MispredictPenalty)
	}
	if c.StoreQueue < 0 {
		return fmt.Errorf("cpu: config %q: negative store queue %d", c.Name, c.StoreQueue)
	}
	if c.FreqGHz < 0 || math.IsNaN(c.FreqGHz) || math.IsInf(c.FreqGHz, 0) {
		return fmt.Errorf("cpu: config %q: bad frequency %v", c.Name, c.FreqGHz)
	}
	return nil
}

// CanonicalConfig returns the versioned, unambiguous encoding of every
// field that shapes a simulation's outcome. The Name is deliberately
// excluded: two configs that differ only in display name are the same
// machine. Changing this format invalidates every cached simulation
// artifact; bump store.SchemaVersion alongside it.
func (c Config) CanonicalConfig() string {
	isaName := ""
	if c.ISA != nil {
		isaName = c.ISA.Name
	}
	return fmt.Sprintf("v2|%s|%016x|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%t|%s",
		isaName, math.Float64bits(c.FreqGHz),
		c.Width, c.ROB, c.MispredictPenalty, c.StoreQueue,
		c.L1KB, c.L1Assoc, c.L1Lat,
		c.L2KB, c.L2Assoc, c.L2Lat, c.MemLat,
		c.EPIC, newPredictor(c).Name())
}

// Fingerprint returns the printable 64-bit FNV-1a hash of the config's
// canonical encoding — the content address simulation results are cached
// and persisted under.
func (c Config) Fingerprint() string {
	h := fnv.New64a()
	h.Write([]byte(c.CanonicalConfig()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Predictor names accepted by ConfigSpec and the predictor axis. The empty
// name selects the default hybrid predictor.
const (
	PredictorHybrid  = "hybrid"
	PredictorBimodal = "bimodal"
	PredictorGShare  = "gshare"
)

// PredictorByName returns the constructor for a named branch predictor
// ("" and "hybrid" mean the default hybrid), or nil for an unknown name.
func PredictorByName(name string) func() bpred.Predictor {
	switch name {
	case "", PredictorHybrid:
		return func() bpred.Predictor { return bpred.DefaultHybrid() }
	case PredictorBimodal:
		return func() bpred.Predictor { return bpred.NewBimodal(12) }
	case PredictorGShare:
		return func() bpred.Predictor { return bpred.NewGShare(12, 12) }
	}
	return nil
}

// ConfigSpec is the serializable form of a Config: the ISA and branch
// predictor are stored by name and re-linked on resolution, everything
// else is the scalar machine parameters. It is the shape exploration
// specs, cluster job queues, and HTTP bodies carry machine
// configurations in.
type ConfigSpec struct {
	// Name labels the configuration in reports (optional).
	Name string `json:"name,omitempty"`
	// ISA names the target ISA (x86v, amd64v, ia64v).
	ISA string `json:"isa"`
	// FreqGHz is the clock frequency used for wall-clock projection.
	FreqGHz float64 `json:"freqGHz,omitempty"`
	// Width, ROB, MispredictPenalty, and StoreQueue mirror Config.
	Width             int `json:"width"`
	ROB               int `json:"rob,omitempty"`
	MispredictPenalty int `json:"mispredictPenalty"`
	StoreQueue        int `json:"storeQueue,omitempty"`
	// Cache hierarchy geometry and latencies, mirroring Config.
	L1KB    int `json:"l1KB"`
	L1Assoc int `json:"l1Assoc"`
	L1Lat   int `json:"l1Lat"`
	L2KB    int `json:"l2KB"`
	L2Assoc int `json:"l2Assoc"`
	L2Lat   int `json:"l2Lat"`
	MemLat  int `json:"memLat"`
	// EPIC selects the in-order bundle model (requires an EPIC ISA).
	EPIC bool `json:"epic,omitempty"`
	// Predictor names the branch predictor ("", hybrid, bimodal, gshare).
	Predictor string `json:"predictor,omitempty"`
}

// SpecOf captures a Config as its serializable spec. The predictor is
// recorded by constructing it once and reading its name, so a spec round
// trip preserves the config's fingerprint.
func SpecOf(c Config) ConfigSpec {
	isaName := ""
	if c.ISA != nil {
		isaName = c.ISA.Name
	}
	return ConfigSpec{
		Name: c.Name, ISA: isaName, FreqGHz: c.FreqGHz,
		Width: c.Width, ROB: c.ROB, MispredictPenalty: c.MispredictPenalty,
		StoreQueue: c.StoreQueue,
		L1KB:       c.L1KB, L1Assoc: c.L1Assoc, L1Lat: c.L1Lat,
		L2KB: c.L2KB, L2Assoc: c.L2Assoc, L2Lat: c.L2Lat, MemLat: c.MemLat,
		EPIC: c.EPIC, Predictor: newPredictor(c).Name(),
	}
}

// Canonical returns a versioned, unambiguous field-wise rendering of the
// spec, used inside cluster dispatch canonicals. Unlike CanonicalConfig
// it never resolves names, so it is total: even a spec naming an unknown
// ISA has a stable canonical.
func (s ConfigSpec) Canonical() string {
	return fmt.Sprintf("v2|%s|%016x|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%t|%s",
		s.ISA, math.Float64bits(s.FreqGHz),
		s.Width, s.ROB, s.MispredictPenalty, s.StoreQueue,
		s.L1KB, s.L1Assoc, s.L1Lat,
		s.L2KB, s.L2Assoc, s.L2Lat, s.MemLat,
		s.EPIC, s.Predictor)
}

// Config resolves the spec into a runnable machine configuration,
// re-linking the ISA descriptor and predictor constructor by name and
// validating the result.
func (s ConfigSpec) Config() (Config, error) {
	desc := isa.ByName(s.ISA)
	if desc == nil {
		return Config{}, fmt.Errorf("cpu: config spec %q: unknown ISA %q", s.Name, s.ISA)
	}
	newPred := PredictorByName(s.Predictor)
	if newPred == nil {
		return Config{}, fmt.Errorf("cpu: config spec %q: unknown predictor %q (want %s, %s, or %s)",
			s.Name, s.Predictor, PredictorHybrid, PredictorBimodal, PredictorGShare)
	}
	c := Config{
		Name: s.Name, ISA: desc, FreqGHz: s.FreqGHz,
		Width: s.Width, ROB: s.ROB, MispredictPenalty: s.MispredictPenalty,
		StoreQueue: s.StoreQueue,
		L1KB:       s.L1KB, L1Assoc: s.L1Assoc, L1Lat: s.L1Lat,
		L2KB: s.L2KB, L2Assoc: s.L2Assoc, L2Lat: s.L2Lat, MemLat: s.MemLat,
		EPIC: s.EPIC, NewPredictor: newPred,
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// MachineByName returns a copy of the named baseline machine: one of the
// Table III configurations, or "2-wide OoO" for the Fig. 10 simulated
// core with its default 8KB L1. It reports ok=false for unknown names.
func MachineByName(name string) (Config, bool) {
	for _, m := range Machines {
		if m.Name == name {
			return m, true
		}
	}
	if c := Simulated2Wide(8); c.Name == name {
		return c, true
	}
	return Config{}, false
}

// Axis is one sweepable Config parameter: the name exploration specs use
// and the application of one swept value. Numeric axes accept float64
// (the type JSON numbers decode to) and require integral values for
// integer parameters; the predictor axis accepts a string.
type Axis struct {
	// Name is the axis's spec name (e.g. "width", "l1KB", "predictor").
	Name string
	// Apply sets the axis to v on cfg, rejecting values of the wrong
	// type or domain.
	Apply func(cfg *Config, v any) error
}

// intAxis builds an Axis over an integer Config field.
func intAxis(name string, set func(*Config, int)) Axis {
	return Axis{Name: name, Apply: func(cfg *Config, v any) error {
		f, ok := v.(float64)
		if !ok || f != math.Trunc(f) {
			return fmt.Errorf("cpu: axis %s: want an integer, got %v", name, v)
		}
		set(cfg, int(f))
		return nil
	}}
}

// Axes lists every sweepable configuration axis, in spec name order. The
// exploration engine crosses subsets of these to enumerate design points.
var Axes = []Axis{
	{Name: "freqGHz", Apply: func(cfg *Config, v any) error {
		f, ok := v.(float64)
		if !ok {
			return fmt.Errorf("cpu: axis freqGHz: want a number, got %v", v)
		}
		cfg.FreqGHz = f
		return nil
	}},
	intAxis("l1Assoc", func(c *Config, v int) { c.L1Assoc = v }),
	intAxis("l1KB", func(c *Config, v int) { c.L1KB = v }),
	intAxis("l1Lat", func(c *Config, v int) { c.L1Lat = v }),
	intAxis("l2Assoc", func(c *Config, v int) { c.L2Assoc = v }),
	intAxis("l2KB", func(c *Config, v int) { c.L2KB = v }),
	intAxis("l2Lat", func(c *Config, v int) { c.L2Lat = v }),
	intAxis("memLat", func(c *Config, v int) { c.MemLat = v }),
	intAxis("mispredictPenalty", func(c *Config, v int) { c.MispredictPenalty = v }),
	{Name: "predictor", Apply: func(cfg *Config, v any) error {
		name, ok := v.(string)
		if !ok {
			return fmt.Errorf("cpu: axis predictor: want a string, got %v", v)
		}
		newPred := PredictorByName(name)
		if newPred == nil {
			return fmt.Errorf("cpu: axis predictor: unknown predictor %q", name)
		}
		cfg.NewPredictor = newPred
		return nil
	}},
	intAxis("rob", func(c *Config, v int) { c.ROB = v }),
	intAxis("storeQueue", func(c *Config, v int) { c.StoreQueue = v }),
	intAxis("width", func(c *Config, v int) { c.Width = v }),
}

// AxisByName returns the named axis, or nil for an unknown name.
func AxisByName(name string) *Axis {
	i := sort.Search(len(Axes), func(i int) bool { return Axes[i].Name >= name })
	if i < len(Axes) && Axes[i].Name == name {
		return &Axes[i]
	}
	return nil
}
