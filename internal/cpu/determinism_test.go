package cpu_test

import (
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/compiler"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/hlc"
	"repro/internal/workloads"
)

// simBudget bounds each determinism simulation so the full machine ×
// workload grid stays test-sized; truncated runs are valid measurements
// (see Simulate) and just as deterministic as complete ones.
const simBudget = 200_000

// TestSimulateDeterminism runs every quick-suite workload on every
// Table III machine twice — concurrently, so `-race` also proves the
// models share no hidden state — and requires the two results to be
// byte-identical once serialized. Simulation summaries are
// content-addressed cache artifacts: any nondeterminism here would
// poison shared stores, so this is a contract, not a smoke test.
func TestSimulateDeterminism(t *testing.T) {
	suite := experiments.Quick()
	if len(suite) == 0 {
		t.Fatal("empty quick suite")
	}
	for _, m := range cpu.Machines {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			progs := make(map[string]func() ([]byte, error), len(suite))
			for _, w := range suite {
				w := w
				cp, err := hlc.Check(mustParse(t, w))
				if err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				prog, err := compiler.Compile(cp, m.ISA, compiler.O2)
				if err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				progs[w.Name] = func() ([]byte, error) {
					res, err := cpu.Simulate(prog, w.Setup, m, simBudget)
					if err != nil {
						return nil, err
					}
					return json.Marshal(res)
				}
			}
			for _, w := range suite {
				w := w
				run := progs[w.Name]
				t.Run(w.Name, func(t *testing.T) {
					t.Parallel()
					var wg sync.WaitGroup
					out := make([][]byte, 2)
					errs := make([]error, 2)
					for i := range out {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							out[i], errs[i] = run()
						}(i)
					}
					wg.Wait()
					for i, err := range errs {
						if err != nil {
							t.Fatalf("run %d: %v", i, err)
						}
					}
					if string(out[0]) != string(out[1]) {
						t.Errorf("simulation is nondeterministic:\nrun 0: %s\nrun 1: %s", out[0], out[1])
					}
				})
			}
		})
	}
}

// mustParse parses a workload's HLC source.
func mustParse(t *testing.T, w *workloads.Workload) *hlc.Program {
	t.Helper()
	prog, err := hlc.Parse(w.Source)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return prog
}
