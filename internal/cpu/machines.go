package cpu

import "repro/internal/isa"

// The machine configurations of Table III. Sizes, frequencies, and ISAs
// follow the paper's table; pipeline parameters are chosen to reflect each
// microarchitecture's character (the Pentium 4's deep pipeline and small
// L1D, the Core i7's wide window and large last-level cache, the Itanium
// 2's in-order EPIC core at 900MHz).
var (
	// Pentium4_3000 is "Pentium 4, 3GHz — x86 — 1MB L2".
	Pentium4_3000 = Config{
		Name: "Pentium 4 3GHz", ISA: isa.X86, FreqGHz: 3.0,
		Width: 3, ROB: 128, MispredictPenalty: 20, StoreQueue: 24,
		L1KB: 8, L1Assoc: 4, L2KB: 1024, L2Assoc: 8,
		L1Lat: 2, L2Lat: 18, MemLat: 200,
	}
	// Core2 is "Core 2 at 2.2GHz — x86_64 — 2MB L2".
	Core2 = Config{
		Name: "Core 2", ISA: isa.AMD64, FreqGHz: 2.2,
		Width: 4, ROB: 96, MispredictPenalty: 12, StoreQueue: 20,
		L1KB: 32, L1Assoc: 8, L2KB: 2048, L2Assoc: 8,
		L1Lat: 3, L2Lat: 14, MemLat: 165,
	}
	// Pentium4_2800 is "Pentium 4, 2.8GHz — x86 — 1MB L2".
	Pentium4_2800 = Config{
		Name: "Pentium 4 2.8GHz", ISA: isa.X86, FreqGHz: 2.8,
		Width: 3, ROB: 128, MispredictPenalty: 20, StoreQueue: 24,
		L1KB: 8, L1Assoc: 4, L2KB: 1024, L2Assoc: 8,
		L1Lat: 2, L2Lat: 18, MemLat: 190,
	}
	// Itanium2 is "Itanium 2 at 900MHz — IA64 — 256KB L2" (in-order EPIC).
	Itanium2 = Config{
		Name: "Itanium 2", ISA: isa.IA64, FreqGHz: 0.9,
		Width: 1, MispredictPenalty: 6, StoreQueue: 16, EPIC: true,
		L1KB: 16, L1Assoc: 4, L2KB: 256, L2Assoc: 8,
		L1Lat: 1, L2Lat: 7, MemLat: 110,
	}
	// CoreI7 is "Core i7 at 2.67GHz — x86_64 — 8MB L2".
	CoreI7 = Config{
		Name: "Core i7", ISA: isa.AMD64, FreqGHz: 2.67,
		Width: 4, ROB: 128, MispredictPenalty: 14, StoreQueue: 32,
		L1KB: 32, L1Assoc: 8, L2KB: 8192, L2Assoc: 16,
		L1Lat: 3, L2Lat: 10, MemLat: 140,
	}
)

// Machines lists the Table III machines in the paper's order.
var Machines = []Config{Pentium4_3000, Core2, Pentium4_2800, Itanium2, CoreI7}

// Simulated2Wide returns the PTLSim configuration of Fig. 10: a 2-wide
// out-of-order processor with the given L1 data-cache size in KB.
//
// The window and memory-system parameters were picked by the explore
// calibration preset (see internal/explore and EXPERIMENTS.md): the
// seed's 64-entry ROB over a 512KB/12-cycle L2 hid the scaled workloads'
// memory behavior entirely, compressing CPIs into a noise-sized band
// (orig/syn correlation 0.08). A 16-entry window over a smaller, slower
// hierarchy exposes the miss behavior the clones are built to mimic.
// After the store-queue/forwarding model landed, the sweep (now with a
// storeQueue axis) re-picked a deeper memory (500 cycles) and a 4-entry
// store queue: both widen the CPI spread that store stalls and exposed
// misses produce, lifting the Fig. 10 correlation past 0.70.
func Simulated2Wide(l1KB int) Config {
	return Config{
		Name: "2-wide OoO", ISA: isa.AMD64, FreqGHz: 1.0,
		Width: 2, ROB: 16, MispredictPenalty: 12, StoreQueue: 4,
		L1KB: l1KB, L1Assoc: 2, L2KB: 64, L2Assoc: 8,
		L1Lat: 2, L2Lat: 24, MemLat: 500,
	}
}
